// Quickstart: the smallest end-to-end DiVE loop.
//
// Generates a short synthetic driving clip, runs the DiVE agent over a
// simulated 2 Mbps uplink to an edge server, and prints what the agent
// learned per frame: ego motion, extracted foreground, QP decisions, and
// the detections that came back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/agent.h"
#include "data/dataset.h"

int main() {
  using namespace dive;

  // 1. A synthetic nuScenes-like clip (12 FPS, 512x288, with ground truth).
  const auto spec = data::nuscenes_like(/*clip_count=*/1, /*frames=*/36);
  const data::Clip clip = data::generate_clip(spec, 0);
  std::printf("generated clip: %d frames @ %.0f FPS, %dx%d\n",
              clip.frame_count(), clip.fps, clip.camera.width(),
              clip.camera.height());

  // 2. A 2 Mbps uplink and an edge server.
  auto trace = std::make_shared<net::ConstantBandwidth>(
      net::mbps_to_bytes_per_sec(2.0));
  auto uplink = std::make_shared<net::Uplink>(trace, net::UplinkConfig{});
  auto server = std::make_shared<edge::EdgeServer>(edge::ServerConfig{}, 42);

  // 3. The DiVE agent.
  core::DiveConfig config;
  config.fps = clip.fps;
  codec::EncoderConfig encoder_config;
  encoder_config.width = clip.camera.width();
  encoder_config.height = clip.camera.height();
  core::DiveAgent agent(config, encoder_config, clip.camera, uplink, server);

  // 4. Drive it frame by frame.
  for (const auto& rec : clip.frames) {
    const core::FrameOutcome outcome =
        agent.process_frame(rec.image, util::from_seconds(rec.timestamp));
    const auto& pre = agent.last_preprocess();
    const auto& fg = agent.last_foreground();
    std::printf(
        "t=%5.2fs eta=%.2f %-7s regions=%zu delta=%2d qp=%2d sent=%5zuB "
        "detections=%zu response=%.0fms\n",
        rec.timestamp, pre.eta, pre.agent_moving ? "moving" : "stopped",
        fg.regions.size(), agent.last_background_delta(), outcome.base_qp,
        outcome.bytes_sent, outcome.detections.size(),
        util::to_millis(outcome.response_time));
  }
  return 0;
}
