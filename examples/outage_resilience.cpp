// Outage resilience: drives DiVE through a link that dies for one second
// every few seconds (hard handovers / multipath fading, Sec. III-E) and
// shows Motion-vector-based Offline Tracking covering the gaps. Each line
// marks whether the frame's result came from the edge or from MOT.
//
//   ./build/examples/outage_resilience
#include <cstdio>
#include <memory>

#include "core/agent.h"
#include "data/dataset.h"
#include "edge/evaluator.h"

int main() {
  using namespace dive;

  const auto spec = data::robotcar_like(/*clip_count=*/1, /*frames=*/96);
  const data::Clip clip = data::generate_clip(spec, 0);
  const double duration = clip.frame_count() / clip.fps;

  // 2 Mbps with a 1 s outage every 4 s.
  auto base = std::make_shared<net::ConstantBandwidth>(
      net::mbps_to_bytes_per_sec(2.0));
  auto trace = std::make_shared<net::OutageBandwidth>(
      base, net::OutageBandwidth::periodic(
                util::from_seconds(1.5), util::from_seconds(4.0),
                util::from_seconds(1.0), util::from_seconds(duration)));
  net::UplinkConfig uplink_config;
  uplink_config.head_timeout = util::from_millis(250);
  auto uplink = std::make_shared<net::Uplink>(trace, uplink_config);
  auto server = std::make_shared<edge::EdgeServer>(edge::ServerConfig{}, 7);

  core::DiveConfig config;
  config.fps = clip.fps;
  codec::EncoderConfig enc;
  enc.width = clip.camera.width();
  enc.height = clip.camera.height();
  core::DiveAgent agent(config, enc, clip.camera, uplink, server);

  const edge::ChromaDetector gt_detector;
  edge::ApEvaluator edge_frames, mot_frames;
  std::printf("timeline ('E' = edge result, 'M' = offline tracking):\n");
  for (const auto& rec : clip.frames) {
    const auto outcome =
        agent.process_frame(rec.image, util::from_seconds(rec.timestamp));
    std::printf("%c", outcome.offloaded ? 'E' : 'M');
    const auto truths = gt_detector.detect(rec.image);
    (outcome.offloaded ? edge_frames : mot_frames)
        .add_frame(outcome.detections, truths);
  }
  std::printf("\n\n");
  std::printf("edge-inferred frames: %d, mAP %.3f\n", edge_frames.frames(),
              edge_frames.map());
  std::printf("MOT-tracked frames:   %d, mAP %.3f\n", mot_frames.frames(),
              mot_frames.map());
  std::printf(
      "\nMOT keeps detections usable through outages; without it those\n"
      "frames would reuse stale boxes (see bench_fig13_offline_tracking).\n");
  return 0;
}
