// Compressed-domain RoI gating walkthrough: the same multi-agent serving
// scenario run twice — metadata lane off (every offloaded frame pays
// full-frame inference) and on (agents ship the coded MV field, SKIP
// flags, and foreground hulls as a sidecar; the node's per-session
// roi::RoiGate masks background tiles and infers only where the
// compressed domain says something is happening). The gate propagates
// background boxes by mean-MV shift, keeps the horizon band lit for
// appearing far-field objects, and falls back to full-frame when
// coverage is too high — accuracy stays at full-frame level while the
// detector looks at roughly half the pixels, which the scheduler turns
// into lower latency / higher session capacity.
//
//   ./build/examples/roi_gating
#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/serve_scenario.h"
#include "util/table.h"

int main() {
  using namespace dive;
  using util::TextTable;

  harness::ServeScenarioOptions opt = harness::default_serve_options();
  opt.sessions = harness::env_int("DIVE_BENCH_SESSIONS", 12);
  opt.frames_per_session = harness::env_int("DIVE_BENCH_FRAMES", 24);

  std::printf(
      "%d agents on one edge node (%d workers, batch<=%zu), "
      "full-frame vs RoI-gated inference\n\n",
      opt.sessions, opt.node.scheduler.workers, opt.node.scheduler.max_batch);

  TextTable table;
  table.set_header({"mode", "mAP", "gated", "full", "px_frac", "work",
                    "prop_boxes", "sidecar_B/frame", "e2e_ms", "done"});
  harness::ServeScenarioResult results[2];
  for (int roi = 0; roi < 2; ++roi) {
    opt.roi_metadata = roi != 0;
    results[roi] = harness::run_serve_scenario(opt);
    const harness::ServeScenarioResult& r = results[roi];
    const double sidecar_per_frame =
        r.frames > 0
            ? static_cast<double>(r.sidecar_bytes) / static_cast<double>(r.frames)
            : 0.0;
    table.add_row({roi ? "gated" : "full", TextTable::fmt(r.aggregate_map, 3),
                   std::to_string(r.gated), std::to_string(r.full_inference),
                   TextTable::fmt(r.mean_gated_pixel_fraction, 3),
                   TextTable::fmt(r.mean_gate_work, 3),
                   std::to_string(r.propagated_boxes),
                   TextTable::fmt(sidecar_per_frame, 1),
                   TextTable::fmt(r.mean_e2e_ms, 1),
                   std::to_string(r.completed)});
  }
  table.print(std::cout);

  const harness::ServeScenarioResult& full = results[0];
  const harness::ServeScenarioResult& gated = results[1];
  std::printf(
      "\nmAP delta %+.3f | detector pixels x%.2f on gated frames | "
      "e2e %.1f -> %.1f ms\n",
      gated.aggregate_map - full.aggregate_map,
      gated.mean_gated_pixel_fraction, full.mean_e2e_ms, gated.mean_e2e_ms);
  std::printf(
      "the sidecar costs %.0f bytes/frame on the uplink and buys the node "
      "a %.0f%% smaller inference bill;\nthe video bitstream is untouched "
      "— gating is pure metadata on the side.\n",
      gated.frames > 0 ? static_cast<double>(gated.sidecar_bytes) /
                             static_cast<double>(gated.frames)
                       : 0.0,
      100.0 * (1.0 - gated.mean_gate_work));
  return 0;
}
