// Codec playground: exercises the block codec directly — the substrate
// DiVE builds on. Encodes a clip at several QPs and with a differential
// QP offset map, printing rate/PSNR, and demonstrates motion-vector
// extraction (the analysis input for DiVE's foreground extraction).
//
//   ./build/examples/codec_playground
#include <cstdio>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "data/dataset.h"
#include "util/table.h"
#include "video/image_ops.h"

int main() {
  using namespace dive;

  const auto spec = data::kitti_like(/*clip_count=*/1, /*frames=*/24);
  const data::Clip clip = data::generate_clip(spec, 0);
  const int w = clip.camera.width();
  const int h = clip.camera.height();

  std::printf("rate/quality sweep over %d frames (%dx%d):\n",
              clip.frame_count(), w, h);
  util::TextTable sweep("constant-QP encoding");
  sweep.set_header({"QP", "kbit/s", "mean PSNR-Y (dB)"});
  for (int qp : {8, 16, 24, 32, 40}) {
    codec::Encoder enc({.width = w, .height = h});
    std::size_t bytes = 0;
    double psnr = 0.0;
    for (const auto& rec : clip.frames) {
      const auto encoded = enc.encode(rec.image, qp);
      bytes += encoded.bytes();
      psnr += encoded.psnr_y;
    }
    const double kbps = static_cast<double>(bytes) * 8.0 * clip.fps /
                        clip.frame_count() / 1000.0;
    sweep.add_row({std::to_string(qp), util::TextTable::fmt(kbps, 0),
                   util::TextTable::fmt(psnr / clip.frame_count(), 2)});
  }
  std::printf("%s\n", sweep.to_string().c_str());

  // Differential encoding: compress the left half of the frame hard.
  codec::Encoder enc({.width = w, .height = h});
  codec::Decoder dec;
  codec::QpOffsetMap offsets(w / 16, h / 16, 0);
  for (int row = 0; row < h / 16; ++row)
    for (int col = 0; col < w / 32; ++col) offsets.at(col, row) = 20;
  const auto& frame = clip.frames[4].image;
  dec.decode(enc.encode(clip.frames[3].image, 18).data);  // intra reference
  const auto encoded = enc.encode(frame, 18, &offsets);
  const auto decoded = dec.decode(encoded.data);
  std::printf("differential QP map: %zu bytes; whole-frame PSNR %.2f dB\n",
              encoded.bytes(), video::psnr_y(frame, decoded.frame));

  // Motion-vector extraction: the per-macroblock field DiVE consumes.
  const auto field = enc.analyze_motion(clip.frames[5].image);
  std::printf("\nmotion field (%dx%d macroblocks), eta=%.2f; row %d:\n",
              field.mb_cols, field.mb_rows, field.nonzero_ratio(),
              field.mb_rows / 2);
  for (int col = 0; col < field.mb_cols; col += 2) {
    const auto mv = field.at(col, field.mb_rows / 2).as_vec2();
    std::printf("  mb %2d: (%+5.1f, %+5.1f) px\n", col, mv.x, mv.y);
  }
  return 0;
}
