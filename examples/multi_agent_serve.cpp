// Multi-agent serving quickstart: eight mobile agents stream one edge
// node with two batched inference workers (src/serve/). Shows the
// session/admission/scheduler pipeline end to end — per-session queue
// bounds, deadline-aware drops, batching amortization — and that rejected
// frames degrade gracefully into MOT instead of unbounded queueing.
//
//   ./build/examples/multi_agent_serve
#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/serve_scenario.h"
#include "util/table.h"

int main() {
  using namespace dive;

  harness::ServeScenarioOptions opt = harness::default_serve_options();
  opt.sessions = 8;
  opt.frames_per_session = harness::env_int("DIVE_BENCH_FRAMES", 36);

  std::printf(
      "serving %d agents on one edge node: %d workers, batch<=%zu "
      "(%.0f ms window), queue<=%zu, deadline %.0f ms\n\n",
      opt.sessions, opt.node.scheduler.workers, opt.node.scheduler.max_batch,
      util::to_millis(opt.node.scheduler.batch_window),
      opt.node.admission.max_queue,
      util::to_millis(opt.node.session.deadline));

  const harness::ServeScenarioResult r = harness::run_serve_scenario(opt);

  r.metrics.session_table().print(std::cout);
  std::printf("\n");
  r.metrics.summary_table().print(std::cout);

  std::printf(
      "\naggregate mAP %.3f | offloaded %.0f%% of %ld frames | "
      "mean batch %.2f | e2e %.1f ms (p95 %.1f)\n",
      r.aggregate_map, 100.0 * r.offload_fraction, r.frames, r.mean_batch,
      r.mean_e2e_ms, r.p95_e2e_ms);
  std::printf(
      "%ld frames fell back to offline tracking (queue-full %ld, "
      "deadline %ld, uplink %ld) — overload degrades like a link outage,\n"
      "accuracy decays smoothly instead of queues growing without bound.\n",
      r.mot, r.dropped_queue, r.dropped_deadline, r.dropped_uplink);
  return 0;
}
