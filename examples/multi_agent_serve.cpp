// Multi-agent serving quickstart: eight mobile agents stream one edge
// node with two batched inference workers (src/serve/). Shows the
// session/admission/scheduler pipeline end to end — per-session queue
// bounds, deadline-aware drops, batching amortization — and that rejected
// frames degrade gracefully into MOT instead of unbounded queueing.
//
// Observability walkthrough (DESIGN.md §15): every captured frame gets a
// FrameTraceContext, so the exports carry per-frame causality:
//   DIVE_TRACE_OUT=serve_trace.json   Perfetto trace; the "frame" flow
//                                     arrows link one frame's encode →
//                                     uplink → admission → infer spans
//                                     across tracks.
//   DIVE_LEDGER_OUT=serve_ledger.json Per-frame stage breakdown for
//                                     tools/trace_report.py.
// Either variable also prints the ledger's stage / session / autopsy
// tables (latency attribution + deadline-miss causes).
//
//   ./build/examples/multi_agent_serve
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.h"
#include "harness/serve_scenario.h"
#include "obs/obs.h"
#include "util/table.h"

int main() {
  using namespace dive;

  harness::ServeScenarioOptions opt = harness::default_serve_options();
  opt.sessions = harness::env_int("DIVE_BENCH_SESSIONS", 8);
  opt.frames_per_session = harness::env_int("DIVE_BENCH_FRAMES", 36);

  std::printf(
      "serving %d agents on one edge node: %d workers, batch<=%zu "
      "(%.0f ms window), queue<=%zu, deadline %.0f ms\n\n",
      opt.sessions, opt.node.scheduler.workers, opt.node.scheduler.max_batch,
      util::to_millis(opt.node.scheduler.batch_window),
      opt.node.admission.max_queue,
      util::to_millis(opt.node.session.deadline));

  const char* trace_out = std::getenv("DIVE_TRACE_OUT");
  const char* ledger_out = std::getenv("DIVE_LEDGER_OUT");
  const bool observed = (trace_out != nullptr && *trace_out != '\0') ||
                        (ledger_out != nullptr && *ledger_out != '\0');
  obs::ObsContext obs_ctx;
  if (observed) {
    obs_ctx.tracer.set_enabled(true);
    opt.obs = &obs_ctx;
  }

  const harness::ServeScenarioResult r = harness::run_serve_scenario(opt);

  r.metrics.session_table().print(std::cout);
  std::printf("\n");
  r.metrics.summary_table().print(std::cout);

  std::printf(
      "\naggregate mAP %.3f | offloaded %.0f%% of %ld frames | "
      "mean batch %.2f | e2e %.1f ms (p95 %.1f)\n",
      r.aggregate_map, 100.0 * r.offload_fraction, r.frames, r.mean_batch,
      r.mean_e2e_ms, r.p95_e2e_ms);
  std::printf(
      "%ld frames fell back to offline tracking (queue-full %ld, "
      "deadline %ld, uplink %ld) — overload degrades like a link outage,\n"
      "accuracy decays smoothly instead of queues growing without bound.\n",
      r.mot, r.dropped_queue, r.dropped_deadline, r.dropped_uplink);

  if (observed) {
    std::printf("\n");
    obs_ctx.ledger.stage_table().print(std::cout);
    std::printf("\n");
    obs_ctx.ledger.session_table().print(std::cout);
    std::printf("\n");
    obs_ctx.ledger.autopsy_table().print(std::cout);
    if (trace_out != nullptr && *trace_out != '\0') {
      if (!obs_ctx.tracer.write_chrome_json(trace_out,
                                            obs::TraceClock::kSim)) {
        std::fprintf(stderr, "failed to write trace to %s\n", trace_out);
        return 1;
      }
      std::printf(
          "\nwrote %s (%zu events; open at ui.perfetto.dev — the \"frame\" "
          "flow arrows\nfollow one frame across agent/serve/session "
          "tracks)\n",
          trace_out, obs_ctx.tracer.event_count());
    }
    if (ledger_out != nullptr && *ledger_out != '\0') {
      if (!obs_ctx.ledger.write_json(ledger_out)) {
        std::fprintf(stderr, "failed to write ledger to %s\n", ledger_out);
        return 1;
      }
      std::printf(
          "wrote %s (%zu frames; render with tools/trace_report.py)\n",
          ledger_out, obs_ctx.ledger.size());
    }
  }
  return 0;
}
