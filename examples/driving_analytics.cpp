// Driving analytics: compares all analytics schemes on the same urban
// driving scenario — the paper's motivating workload (autonomous-driving
// perception offloaded to the edge). Reports accuracy, response time, and
// bytes on the wire, and renders one frame with DiVE's detections drawn
// in as a PGM image you can open with any viewer.
//
//   ./build/examples/driving_analytics [mbps]
//
// Profiling: set DIVE_TRACE_OUT=/path/to/trace.json to run the final
// DiVE pass with tracing on and write a Chrome trace-event file (open it
// at ui.perfetto.dev); a metrics table for the same run is printed to
// stdout. DIVE_BENCH_CLIPS / DIVE_BENCH_FRAMES scale the dataset.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "harness/experiment.h"
#include "obs/obs.h"
#include "util/table.h"
#include "video/image_ops.h"

int main(int argc, char** argv) {
  using namespace dive;
  const double mbps = argc > 1 ? std::atof(argv[1]) : 2.0;

  std::printf("urban driving scenario, %.1f Mbps uplink\n\n", mbps);
  const auto spec = data::nuscenes_like(
      harness::env_int("DIVE_BENCH_CLIPS", 2),
      harness::env_int("DIVE_BENCH_FRAMES", 48));
  const auto clips = data::generate_dataset(spec);

  harness::NetworkScenario net;
  net.mbps = mbps;

  util::TextTable table("scheme comparison");
  table.set_header({"scheme", "mAP", "AP car", "AP ped", "resp (ms)",
                    "p95 (ms)", "kB/frame", "offloaded"});
  for (const auto kind :
       {harness::SchemeKind::kDive, harness::SchemeKind::kDds,
        harness::SchemeKind::kEaar, harness::SchemeKind::kO3,
        harness::SchemeKind::kUniform}) {
    const auto r = harness::run_experiment(kind, clips, net);
    table.add_row({r.scheme, util::TextTable::fmt(r.map, 3),
                   util::TextTable::fmt(r.ap_car, 3),
                   util::TextTable::fmt(r.ap_ped, 3),
                   util::TextTable::fmt(r.mean_response_ms, 1),
                   util::TextTable::fmt(r.p95_response_ms, 1),
                   util::TextTable::fmt(r.mean_kbytes_per_frame, 1),
                   util::TextTable::fmt_pct(r.offload_fraction, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Render one annotated frame: run DiVE on a clip and draw its final
  // detections into the raw frame. With DIVE_TRACE_OUT set this pass is
  // also the profiled one: full metrics + a Perfetto-loadable trace.
  const char* trace_out = std::getenv("DIVE_TRACE_OUT");
  obs::ObsContext obs_ctx;
  harness::SchemeOptions render_opts;
  if (trace_out != nullptr && *trace_out != '\0') {
    obs_ctx.tracer.set_enabled(true);
    render_opts.obs = &obs_ctx;
  }
  auto scheme = harness::make_scheme(harness::SchemeKind::kDive, render_opts,
                                     net, clips[0],
                                     clips[0].frame_count() / clips[0].fps);
  core::FrameOutcome last;
  for (const auto& rec : clips[0].frames)
    last = scheme->process_frame(rec.image, util::from_seconds(rec.timestamp));
  video::Frame annotated = clips[0].frames.back().image;
  for (const auto& det : last.detections) video::draw_box(annotated, det.box);
  std::ofstream out("driving_analytics_frame.pgm", std::ios::binary);
  const std::string pgm = video::to_pgm(annotated.y);
  out.write(pgm.data(), static_cast<std::streamsize>(pgm.size()));
  std::printf("wrote driving_analytics_frame.pgm (%zu detections drawn)\n",
              last.detections.size());

  if (render_opts.obs != nullptr) {
    if (obs_ctx.tracer.write_chrome_json(trace_out, obs::TraceClock::kSim)) {
      std::printf("wrote %s (%zu trace events; open at ui.perfetto.dev)\n",
                  trace_out, obs_ctx.tracer.event_count());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out);
      return 1;
    }
    std::printf("\n");
    obs_ctx.metrics.to_table().print(std::cout);
  }
  return 0;
}
