// Driving analytics: compares all analytics schemes on the same urban
// driving scenario — the paper's motivating workload (autonomous-driving
// perception offloaded to the edge). Reports accuracy, response time, and
// bytes on the wire, and renders one frame with DiVE's detections drawn
// in as a PGM image you can open with any viewer.
//
//   ./build/examples/driving_analytics [mbps]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "harness/experiment.h"
#include "util/table.h"
#include "video/image_ops.h"

int main(int argc, char** argv) {
  using namespace dive;
  const double mbps = argc > 1 ? std::atof(argv[1]) : 2.0;

  std::printf("urban driving scenario, %.1f Mbps uplink\n\n", mbps);
  const auto spec = data::nuscenes_like(/*clip_count=*/2, /*frames=*/48);
  const auto clips = data::generate_dataset(spec);

  harness::NetworkScenario net;
  net.mbps = mbps;

  util::TextTable table("scheme comparison");
  table.set_header({"scheme", "mAP", "AP car", "AP ped", "resp (ms)",
                    "p95 (ms)", "kB/frame", "offloaded"});
  for (const auto kind :
       {harness::SchemeKind::kDive, harness::SchemeKind::kDds,
        harness::SchemeKind::kEaar, harness::SchemeKind::kO3,
        harness::SchemeKind::kUniform}) {
    const auto r = harness::run_experiment(kind, clips, net);
    table.add_row({r.scheme, util::TextTable::fmt(r.map, 3),
                   util::TextTable::fmt(r.ap_car, 3),
                   util::TextTable::fmt(r.ap_ped, 3),
                   util::TextTable::fmt(r.mean_response_ms, 1),
                   util::TextTable::fmt(r.p95_response_ms, 1),
                   util::TextTable::fmt(r.mean_kbytes_per_frame, 1),
                   util::TextTable::fmt_pct(r.offload_fraction, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Render one annotated frame: run DiVE on a clip and draw its final
  // detections into the raw frame.
  auto scheme = harness::make_scheme(harness::SchemeKind::kDive, {}, net,
                                     clips[0],
                                     clips[0].frame_count() / clips[0].fps);
  core::FrameOutcome last;
  for (const auto& rec : clips[0].frames)
    last = scheme->process_frame(rec.image, util::from_seconds(rec.timestamp));
  video::Frame annotated = clips[0].frames.back().image;
  for (const auto& det : last.detections) video::draw_box(annotated, det.box);
  std::ofstream out("driving_analytics_frame.pgm", std::ios::binary);
  const std::string pgm = video::to_pgm(annotated.y);
  out.write(pgm.data(), static_cast<std::streamsize>(pgm.size()));
  std::printf("wrote driving_analytics_frame.pgm (%zu detections drawn)\n",
              last.detections.size());
  return 0;
}
