// Ablation of DiVE's foreground-extraction design choices (DESIGN.md §5):
// cluster merging, temporal carry, and rotation correction are disabled
// one at a time; the table reports the end-to-end mAP impact at 2 Mbps.
#include <cstdio>

#include "bench_util.h"
#include "core/agent.h"

namespace {

using namespace dive;

double run_variant(const std::vector<data::Clip>& clips,
                   core::DiveConfig cfg) {
  edge::ApEvaluator evaluator;
  const edge::ChromaDetector gt_detector;
  for (const auto& clip : clips) {
    auto trace = std::make_shared<net::ConstantBandwidth>(
        net::mbps_to_bytes_per_sec(2.0));
    auto uplink = std::make_shared<net::Uplink>(trace, net::UplinkConfig{});
    auto server = std::make_shared<edge::EdgeServer>(edge::ServerConfig{}, 5);
    cfg.fps = clip.fps;
    codec::EncoderConfig enc;
    enc.width = clip.camera.width();
    enc.height = clip.camera.height();
    core::DiveAgent agent(cfg, enc, clip.camera, uplink, server);
    for (const auto& rec : clip.frames) {
      const auto outcome =
          agent.process_frame(rec.image, util::from_seconds(rec.timestamp));
      evaluator.add_frame(outcome.detections, gt_detector.detect(rec.image));
    }
  }
  return evaluator.map();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: foreground-extraction design choices (2 Mbps, nuScenes)",
      "each mechanism contributes to the full system's mAP");

  const auto spec = bench::scaled(data::nuscenes_like(), 2, 56);
  const auto clips = data::generate_dataset(spec);

  util::TextTable t("FE ablation");
  t.set_header({"variant", "mAP"});

  core::DiveConfig full;
  t.add_row({"full DiVE", util::TextTable::fmt(run_variant(clips, full), 3)});

  core::DiveConfig no_merge;
  no_merge.foreground.clustering.merge_cos_min = 2.0;  // merge never fires
  t.add_row({"no cluster merge",
             util::TextTable::fmt(run_variant(clips, no_merge), 3)});

  core::DiveConfig no_carry;
  no_carry.foreground.temporal_carry_frames = 0;
  t.add_row({"no temporal carry",
             util::TextTable::fmt(run_variant(clips, no_carry), 3)});

  core::DiveConfig no_rotation;
  no_rotation.preprocess.rotation.ransac_iterations = 0;  // never estimates
  t.add_row({"no rotation correction",
             util::TextTable::fmt(run_variant(clips, no_rotation), 3)});

  core::DiveConfig no_pad;
  no_pad.foreground.hull_padding_px = 0.0;
  t.add_row({"no hull padding",
             util::TextTable::fmt(run_variant(clips, no_pad), 3)});

  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
