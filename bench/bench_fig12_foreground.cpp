// Fig. 12: effectiveness of Foreground Extraction. CRF-style setup with
// no network: foreground macroblocks stay at QP 0 while the background QP
// sweeps 4..36. AP should decay slowly to BG QP 20 and stay usable even
// at 36 — evidence that the extracted foreground covers the real objects.
#include <cstdio>

#include "bench_util.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/foreground_extractor.h"
#include "core/preprocess.h"
#include "core/qp_assigner.h"
#include "edge/evaluator.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 12: AP vs background QP with foreground fixed at QP 0",
      "AP ~0.97+ up to BG QP 20; >= ~0.85 even at BG QP 36");

  const data::DatasetSpec specs[] = {
      bench::scaled(data::robotcar_like(), 1, 48),
      bench::scaled(data::nuscenes_like(), 1, 48),
  };

  for (const auto& spec : specs) {
    const auto clips = data::generate_dataset(spec);
    util::TextTable t(std::string("Fig. 12 on ") + data::to_string(spec.kind));
    t.set_header({"background QP", "AP car", "AP ped", "FG fraction"});

    for (int bg_qp : {4, 12, 20, 28, 36}) {
      edge::ApEvaluator evaluator;
      const edge::ChromaDetector detector;
      double fg_fraction_sum = 0.0;
      long frames = 0;
      for (const auto& clip : clips) {
        codec::Encoder enc({.width = spec.width, .height = spec.height});
        codec::Decoder dec;
        core::Preprocessor pre({}, 31);
        core::ForegroundExtractor extractor;
        const core::QpAssigner assigner;
        const int mb_cols = spec.width / codec::kMacroblockSize;
        const int mb_rows = spec.height / codec::kMacroblockSize;

        for (const auto& rec : clip.frames) {
          const auto field = enc.analyze_motion(rec.image);
          const auto prep = pre.run(field, clip.camera);
          const auto fg = extractor.extract(prep, clip.camera);
          // Base QP = background QP; foreground offset pulls it to 0.
          const auto mask =
              core::QpAssigner::foreground_mask(fg, mb_cols, mb_rows);
          codec::QpOffsetMap offsets(mb_cols, mb_rows, 0);
          long fg_mbs = 0;
          for (int r = 0; r < mb_rows; ++r)
            for (int c = 0; c < mb_cols; ++c)
              if (mask[static_cast<std::size_t>(r) * mb_cols + c]) {
                offsets.at(c, r) = static_cast<std::int8_t>(-bg_qp);
                ++fg_mbs;
              }
          const auto encoded = enc.encode(rec.image, bg_qp, &offsets,
                                          field.empty() ? nullptr : &field);
          const auto decoded = dec.decode(encoded.data);
          evaluator.add_frame(detector.detect(decoded.frame),
                              detector.detect(rec.image));
          fg_fraction_sum +=
              static_cast<double>(fg_mbs) / (mb_cols * mb_rows);
          ++frames;
        }
      }
      t.add_row({std::to_string(bg_qp),
                 util::TextTable::fmt(evaluator.ap(video::ObjectClass::kCar), 3),
                 util::TextTable::fmt(
                     evaluator.ap(video::ObjectClass::kPedestrian), 3),
                 util::TextTable::fmt(fg_fraction_sum / std::max(1L, frames), 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
