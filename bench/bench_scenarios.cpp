// Hostile-conditions scenario matrix: runs the scenario fuzzer over
// {condition} x {motion state} (plus a bandwidth sweep on the clear
// scenario), printing the accuracy/latency matrix and emitting
// BENCH_scenarios.json so a regression in any condition is visible per
// PR (the baseline is pinned in bench/baselines/). Exits nonzero when
// any case violates its accuracy/response-time envelope and prints a
// one-line repro for each failing case (uploaded as a CI artifact).
//
// Scale knobs: DIVE_BENCH_FRAMES (frames per clip, default 36),
// DIVE_BENCH_SEEDS (seeds per case, default 1).
//
//   ./build/bench/bench_scenarios
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_record.h"
#include "harness/scenario_fuzzer.h"
#include "util/table.h"

int main() {
  using namespace dive;

  harness::FuzzerOptions opt;
  opt.frames_per_clip = harness::env_int("DIVE_BENCH_FRAMES", 36);
  opt.seeds_per_case = harness::env_int("DIVE_BENCH_SEEDS", 1);

  // Condition x motion matrix under the ample-bandwidth profile: the
  // weather/scene dimension with the network held comfortable.
  opt.bandwidths = {harness::BandwidthProfile::kAmple};
  const harness::FuzzerReport matrix = harness::run_scenario_fuzzer(opt);

  // Bandwidth dimension on the clear/straight scenario: the network
  // dimension with the world held easy.
  harness::FuzzerOptions bw_opt = opt;
  bw_opt.conditions = {harness::Condition::kClear};
  bw_opt.motions = {harness::MotionProfile::kStraight};
  bw_opt.bandwidths = {harness::BandwidthProfile::kAmple,
                       harness::BandwidthProfile::kConstrained,
                       harness::BandwidthProfile::kOutage};
  const harness::FuzzerReport bw = harness::run_scenario_fuzzer(bw_opt);

  bench::BenchRecorder recorder("scenarios");

  util::TextTable table("scenario matrix (DiVE agent, ample uplink)");
  table.set_header({"condition", "motion", "mAP", "floor", "mean_ms",
                    "p95_ms", "offload%", "kB/frame", "ok"});
  for (const harness::ScenarioOutcome& out : matrix.outcomes) {
    const std::string cond = harness::to_string(out.scenario.condition);
    const std::string motion = harness::to_string(out.scenario.motion);
    const std::string tag = cond + "." + motion;
    recorder.add("map." + tag, out.result.map, "mAP");
    recorder.add("mean_ms." + tag, out.result.mean_response_ms, "ms");
    recorder.add("p95_ms." + tag, out.result.p95_response_ms, "ms");
    table.add_row({cond, motion, util::TextTable::fmt(out.result.map, 3),
                   util::TextTable::fmt(out.envelope.min_map, 2),
                   util::TextTable::fmt(out.result.mean_response_ms, 1),
                   util::TextTable::fmt(out.result.p95_response_ms, 1),
                   util::TextTable::fmt_pct(out.result.offload_fraction, 1),
                   util::TextTable::fmt(out.result.mean_kbytes_per_frame, 2),
                   out.pass() ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::printf("\n");
  util::TextTable bw_table("bandwidth sweep (clear world, straight drive)");
  bw_table.set_header(
      {"bandwidth", "mAP", "floor", "mean_ms", "p95_ms", "offload%", "ok"});
  for (const harness::ScenarioOutcome& out : bw.outcomes) {
    const std::string tag = harness::to_string(out.scenario.bandwidth);
    recorder.add("bw." + tag + ".map", out.result.map, "mAP");
    recorder.add("bw." + tag + ".mean_ms", out.result.mean_response_ms, "ms");
    recorder.add("bw." + tag + ".p95_ms", out.result.p95_response_ms, "ms");
    bw_table.add_row({tag, util::TextTable::fmt(out.result.map, 3),
                      util::TextTable::fmt(out.envelope.min_map, 2),
                      util::TextTable::fmt(out.result.mean_response_ms, 1),
                      util::TextTable::fmt(out.result.p95_response_ms, 1),
                      util::TextTable::fmt_pct(out.result.offload_fraction, 1),
                      out.pass() ? "yes" : "NO"});
  }
  bw_table.print(std::cout);

  const int failures = matrix.failures + bw.failures;
  const int cases = static_cast<int>(matrix.outcomes.size() +
                                     bw.outcomes.size());
  recorder.add("cases", static_cast<double>(cases), "count");
  recorder.add("failures", static_cast<double>(failures), "count");
  recorder.write();

  // Failing-seed repro lines: printed, and written next to the bench
  // record when DIVE_BENCH_OUT is set so CI can upload them.
  if (failures > 0) {
    std::printf("\n%d envelope violation(s):\n", failures);
    std::string repro_text;
    for (const harness::FuzzerReport* rep : {&matrix, &bw})
      for (const harness::ScenarioOutcome& out : rep->outcomes)
        for (const std::string& v : out.violations) {
          std::printf("  %s\n", v.c_str());
          repro_text += v + "\n";
        }
    if (const char* dir = std::getenv("DIVE_BENCH_OUT")) {
      std::ofstream f(std::string(dir) + "/scenario_repro.txt");
      f << repro_text;
    }
  } else {
    std::printf("\nall %d scenario cases inside their envelopes\n", cases);
  }
  return failures > 0 ? 1 : 0;
}
