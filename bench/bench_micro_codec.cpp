// Microbenchmarks of the codec substrate (google-benchmark): transform,
// quantization, SAD kernels, the five motion-search methods, and full
// frame encode/decode.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "codec/dct.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/motion_search.h"
#include "codec/quant.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace dive;

video::Frame textured_frame(int w, int h, std::uint64_t seed) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (auto& px : f.y.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(20, 235));
  for (auto& px : f.u.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(110, 150));
  for (auto& px : f.v.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(110, 150));
  return f;
}

void BM_ForwardDct(benchmark::State& state) {
  util::Rng rng(1);
  codec::Block8x8 in, out;
  for (auto& v : in) v = rng.uniform(-128, 128);
  for (auto _ : state) {
    codec::forward_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ForwardDct);

void BM_InverseDct(benchmark::State& state) {
  util::Rng rng(2);
  codec::Block8x8 in, out;
  for (auto& v : in) v = rng.uniform(-512, 512);
  for (auto _ : state) {
    codec::inverse_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_InverseDct);

void BM_Quantize(benchmark::State& state) {
  util::Rng rng(3);
  codec::Block8x8 in;
  codec::QuantBlock levels;
  for (auto& v : in) v = rng.uniform(-512, 512);
  for (auto _ : state) {
    codec::quantize(in, static_cast<int>(state.range(0)), levels);
    benchmark::DoNotOptimize(levels);
  }
}
BENCHMARK(BM_Quantize)->Arg(10)->Arg(30)->Arg(50);

void BM_Sad16x16(benchmark::State& state) {
  const auto frame = textured_frame(256, 256, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::sad_16x16(frame.y, frame.y, 64, 64,
                         {static_cast<int>(state.range(0)), 2}));
  }
}
BENCHMARK(BM_Sad16x16)->Arg(0)->Arg(1);  // full-pel vs half-pel path

void BM_MotionSearchMethod(benchmark::State& state) {
  const auto cur = textured_frame(256, 128, 5);
  const auto ref = textured_frame(256, 128, 6);
  codec::MotionSearchConfig cfg;
  cfg.method = static_cast<codec::MotionSearchMethod>(state.range(0));
  const codec::MotionSearcher searcher(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search_frame(cur.y, ref.y));
  }
  state.SetLabel(codec::to_string(cfg.method));
}
BENCHMARK(BM_MotionSearchMethod)->DenseRange(0, 4);

void BM_EncodeInter(benchmark::State& state) {
  codec::Encoder enc({.width = 256, .height = 128});
  enc.encode(textured_frame(256, 128, 7), 26);
  const auto frame = textured_frame(256, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frame, 26));
  }
}
BENCHMARK(BM_EncodeInter);

// Same encode with an observability context attached. Arg(0): tracing
// disabled — the instrumentation cost is a null/relaxed-atomic check per
// stage and must stay within ~2% of BM_EncodeInter. Arg(1): tracing
// enabled, showing the full recording cost.
void BM_EncodeInterObs(benchmark::State& state) {
  obs::ObsContext ctx;
  ctx.tracer.set_enabled(state.range(0) != 0);
  codec::Encoder enc({.width = 256, .height = 128});
  enc.set_obs(&ctx);
  enc.encode(textured_frame(256, 128, 7), 26);
  const auto frame = textured_frame(256, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frame, 26));
    if (ctx.tracer.event_count() > 1u << 20) ctx.tracer.clear();
  }
  state.SetLabel(state.range(0) != 0 ? "tracing" : "obs-attached-disabled");
}
BENCHMARK(BM_EncodeInterObs)->Arg(0)->Arg(1);

void BM_EncodeInterThreads(benchmark::State& state) {
  codec::Encoder enc(
      {.width = 256, .height = 128, .threads = static_cast<int>(state.range(0))});
  enc.encode(textured_frame(256, 128, 7), 26);
  const auto frame = textured_frame(256, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frame, 26));
  }
}
BENCHMARK(BM_EncodeInterThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_MotionSearchThreads(benchmark::State& state) {
  const auto cur = textured_frame(256, 128, 5);
  const auto ref = textured_frame(256, 128, 6);
  const codec::MotionSearcher searcher;
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search_frame(cur.y, ref.y, &pool));
  }
}
BENCHMARK(BM_MotionSearchThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_EncodeToTarget(benchmark::State& state) {
  codec::Encoder enc({.width = 256, .height = 128});
  enc.encode(textured_frame(256, 128, 9), 26);
  const auto frame = textured_frame(256, 128, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_to_target(frame, 6000));
  }
}
BENCHMARK(BM_EncodeToTarget);

void BM_EncodeToTargetReuse(benchmark::State& state) {
  codec::Encoder enc({.width = 256,
                      .height = 128,
                      .reuse_trials = state.range(0) != 0});
  enc.encode(textured_frame(256, 128, 9), 26);
  const auto frame = textured_frame(256, 128, 10);
  int trials = 0, full_passes = 0, iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_to_target(frame, 6000));
    trials += enc.rate_control_stats().trials_attempted;
    full_passes += enc.rate_control_stats().full_transform_passes;
    ++iters;
  }
  state.counters["trials/frame"] =
      static_cast<double>(trials) / std::max(iters, 1);
  state.counters["full_passes/frame"] =
      static_cast<double>(full_passes) / std::max(iters, 1);
  state.SetLabel(state.range(0) != 0 ? "reuse" : "no-reuse");
}
BENCHMARK(BM_EncodeToTargetReuse)->Arg(0)->Arg(1);

void BM_Decode(benchmark::State& state) {
  codec::Encoder enc({.width = 256, .height = 128});
  const auto intra = enc.encode(textured_frame(256, 128, 11), 26);
  for (auto _ : state) {
    codec::Decoder dec;
    benchmark::DoNotOptimize(dec.decode(intra.data));
  }
}
BENCHMARK(BM_Decode);

}  // namespace

BENCHMARK_MAIN();
