// Microbenchmarks of the codec substrate (google-benchmark): transform,
// quantization, SAD kernels (scalar vs. SIMD dispatch), the five
// motion-search methods, full frame encode/decode, and the pipelined
// overlap schedule.
//
// Besides the google-benchmark suite, main() emits three machine-readable
// records (bench_record.h, schema-checked in CI):
//   BENCH_micro_sad.json      scalar vs. dispatched SAD kernel timing
//   BENCH_micro_sse.json      scalar vs. dispatched PSNR/SSE kernel timing
//   BENCH_micro_overlap.json  per-frame encode time, overlap off vs. on
//   BENCH_micro_hme.json      hierarchical pyramid search vs. the other
//                             methods on a synthetic driving pan (time +
//                             PSNR), plus the SKIP rate on static frames
//   BENCH_micro_obs.json      observability tax: span site cost with a
//                             null context / disabled tracer / enabled
//                             tracer, and the ledger per-frame record
// Set DIVE_BENCH_RECORDS_ONLY=1 to emit only the records and skip the
// google-benchmark run (the CI smoke mode).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench_record.h"
#include "codec/dct.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/motion_search.h"
#include "codec/quant.h"
#include "codec/sad_kernels.h"
#include "video/sse_kernels.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace dive;

video::Frame textured_frame(int w, int h, std::uint64_t seed) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (auto& px : f.y.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(20, 235));
  for (auto& px : f.u.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(110, 150));
  for (auto& px : f.v.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(110, 150));
  return f;
}

void BM_ForwardDct(benchmark::State& state) {
  util::Rng rng(1);
  codec::Block8x8 in, out;
  for (auto& v : in) v = rng.uniform(-128, 128);
  for (auto _ : state) {
    codec::forward_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ForwardDct);

void BM_InverseDct(benchmark::State& state) {
  util::Rng rng(2);
  codec::Block8x8 in, out;
  for (auto& v : in) v = rng.uniform(-512, 512);
  for (auto _ : state) {
    codec::inverse_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_InverseDct);

void BM_Quantize(benchmark::State& state) {
  util::Rng rng(3);
  codec::Block8x8 in;
  codec::QuantBlock levels;
  for (auto& v : in) v = rng.uniform(-512, 512);
  for (auto _ : state) {
    codec::quantize(in, static_cast<int>(state.range(0)), levels);
    benchmark::DoNotOptimize(levels);
  }
}
BENCHMARK(BM_Quantize)->Arg(10)->Arg(30)->Arg(50);

void BM_Sad16x16(benchmark::State& state) {
  const auto frame = textured_frame(256, 256, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::sad_16x16(frame.y, frame.y, 64, 64,
                         {static_cast<int>(state.range(0)), 2}));
  }
}
BENCHMARK(BM_Sad16x16)->Arg(0)->Arg(1);  // full-pel vs half-pel path

// Raw kernel comparison: Arg(0) canonical scalar, Arg(1) the dispatched
// kernel (SSE2/AVX2/NEON when available). Sweeps block positions so the
// working set exceeds one cache line pattern.
void BM_SadKernel(benchmark::State& state) {
  const auto cur = textured_frame(256, 256, 4);
  const auto ref = textured_frame(256, 256, 14);
  const codec::Sad16Fn fn = state.range(0) != 0 ? codec::sad_16x16_fn()
                                                : &codec::sad_16x16_scalar;
  int pos = 0;
  for (auto _ : state) {
    const int x = (pos * 37) % (256 - 16);
    const int y = (pos * 17) % (256 - 16);
    ++pos;
    benchmark::DoNotOptimize(
        fn(&cur.y.data[static_cast<std::size_t>(y) * 256 + x], 256,
           &ref.y.data[static_cast<std::size_t>(y) * 256 + ((x + 8) % (256 - 16))], 256));
  }
  state.SetLabel(state.range(0) != 0
                     ? codec::to_string(codec::active_sad_kernel())
                     : "scalar");
}
BENCHMARK(BM_SadKernel)->Arg(0)->Arg(1);

// PSNR accumulation kernel (video/sse_kernels.h): Arg(0) canonical
// scalar, Arg(1) the dispatched kernel, over a full 256x256 plane per
// call — the shape psnr_y pays once per encoded frame.
void BM_SseKernel(benchmark::State& state) {
  const auto cur = textured_frame(256, 256, 4);
  const auto ref = textured_frame(256, 256, 14);
  const dive::video::SseU8Fn fn = state.range(0) != 0
                                      ? dive::video::sse_u8_fn()
                                      : &dive::video::sse_u8_scalar;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fn(cur.y.data.data(), ref.y.data.data(), cur.y.data.size()));
  }
  state.SetLabel(state.range(0) != 0
                     ? dive::video::to_string(dive::video::active_sse_kernel())
                     : "scalar");
}
BENCHMARK(BM_SseKernel)->Arg(0)->Arg(1);

void BM_MotionSearchMethod(benchmark::State& state) {
  const auto cur = textured_frame(256, 128, 5);
  const auto ref = textured_frame(256, 128, 6);
  codec::MotionSearchConfig cfg;
  cfg.method = static_cast<codec::MotionSearchMethod>(state.range(0));
  const codec::MotionSearcher searcher(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search_frame(cur.y, ref.y));
  }
  state.SetLabel(codec::to_string(cfg.method));
}
BENCHMARK(BM_MotionSearchMethod)->DenseRange(0, 5);

/// Structured driving-style scene: road-side checker texture and a
/// global horizontal pan of `shift` pixels — real matchable content, in
/// contrast to textured_frame's per-pixel noise, so search quality
/// (PSNR) is meaningful and the pan exceeds pattern-search basins.
video::Frame driving_frame(int w, int h, int shift) {
  video::Frame f(w, h);
  util::Rng rng(77);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int xs = x - shift;
      double v = 70 + 0.2 * xs + 0.15 * y;
      if ((xs / 16 + y / 12) % 2 == 0) v += 45;
      v += rng.uniform(-3, 3);  // same noise field every call (seed fixed)
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.u.at(x, y) = static_cast<std::uint8_t>(118 + ((x - shift / 2) / 9) % 16);
      f.v.at(x, y) = static_cast<std::uint8_t>(132 + (y / 7) % 10);
    }
  return f;
}

// Inter encode of a fast pan under each search method; counters report
// the SKIP rate the encoder achieved. HME should sit near pattern-search
// time while matching exhaustive-search quality on the pan.
void BM_EncodeHme(benchmark::State& state) {
  const auto method = static_cast<codec::MotionSearchMethod>(state.range(0));
  codec::Encoder enc(
      {.width = 256, .height = 128, .search = {.method = method}});
  enc.encode(driving_frame(256, 128, 0), 28);
  const auto frame = driving_frame(256, 128, 18);
  long skipped = 0, frames = 0;
  for (auto _ : state) {
    const auto out = enc.encode(frame, 28);
    benchmark::DoNotOptimize(out);
    skipped += out.skipped_mbs;
    ++frames;
  }
  const double mbs = (256.0 / 16.0) * (128.0 / 16.0);
  state.counters["skip_rate"] =
      static_cast<double>(skipped) / (mbs * static_cast<double>(std::max(frames, 1L)));
  state.SetLabel(codec::to_string(method));
}
BENCHMARK(BM_EncodeHme)
    ->Arg(static_cast<int>(codec::MotionSearchMethod::kHex))
    ->Arg(static_cast<int>(codec::MotionSearchMethod::kEsa))
    ->Arg(static_cast<int>(codec::MotionSearchMethod::kTesa))
    ->Arg(static_cast<int>(codec::MotionSearchMethod::kHme));

void BM_EncodeInter(benchmark::State& state) {
  codec::Encoder enc({.width = 256, .height = 128});
  enc.encode(textured_frame(256, 128, 7), 26);
  const auto frame = textured_frame(256, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frame, 26));
  }
}
BENCHMARK(BM_EncodeInter);

// Same encode with an observability context attached. Arg(0): tracing
// disabled — the instrumentation cost is a null/relaxed-atomic check per
// stage and must stay within ~2% of BM_EncodeInter. Arg(1): tracing
// enabled, showing the full recording cost.
void BM_EncodeInterObs(benchmark::State& state) {
  obs::ObsContext ctx;
  ctx.tracer.set_enabled(state.range(0) != 0);
  codec::Encoder enc({.width = 256, .height = 128});
  enc.set_obs(&ctx);
  enc.encode(textured_frame(256, 128, 7), 26);
  const auto frame = textured_frame(256, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frame, 26));
    if (ctx.tracer.event_count() > 1u << 20) ctx.tracer.clear();
  }
  state.SetLabel(state.range(0) != 0 ? "tracing" : "obs-attached-disabled");
}
BENCHMARK(BM_EncodeInterObs)->Arg(0)->Arg(1);

void BM_EncodeInterThreads(benchmark::State& state) {
  codec::Encoder enc(
      {.width = 256, .height = 128, .threads = static_cast<int>(state.range(0))});
  enc.encode(textured_frame(256, 128, 7), 26);
  const auto frame = textured_frame(256, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frame, 26));
  }
}
BENCHMARK(BM_EncodeInterThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_MotionSearchThreads(benchmark::State& state) {
  const auto cur = textured_frame(256, 128, 5);
  const auto ref = textured_frame(256, 128, 6);
  const codec::MotionSearcher searcher;
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search_frame(cur.y, ref.y, &pool));
  }
}
BENCHMARK(BM_MotionSearchThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_EncodeToTarget(benchmark::State& state) {
  codec::Encoder enc({.width = 256, .height = 128});
  enc.encode(textured_frame(256, 128, 9), 26);
  const auto frame = textured_frame(256, 128, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_to_target(frame, 6000));
  }
}
BENCHMARK(BM_EncodeToTarget);

void BM_EncodeToTargetReuse(benchmark::State& state) {
  codec::Encoder enc({.width = 256,
                      .height = 128,
                      .reuse_trials = state.range(0) != 0});
  enc.encode(textured_frame(256, 128, 9), 26);
  const auto frame = textured_frame(256, 128, 10);
  int trials = 0, full_passes = 0, iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_to_target(frame, 6000));
    trials += enc.rate_control_stats().trials_attempted;
    full_passes += enc.rate_control_stats().full_transform_passes;
    ++iters;
  }
  state.counters["trials/frame"] =
      static_cast<double>(trials) / std::max(iters, 1);
  state.counters["full_passes/frame"] =
      static_cast<double>(full_passes) / std::max(iters, 1);
  state.SetLabel(state.range(0) != 0 ? "reuse" : "no-reuse");
}
BENCHMARK(BM_EncodeToTargetReuse)->Arg(0)->Arg(1);

// End-to-end pipelined schedule: encode a moving sequence with the
// next-frame lookahead hint on vs. off. Arg(0) = threads, Arg(1) = hint.
// With >=2 worker lanes the hinted run overlaps frame N+1's motion
// search with frame N's serial bitstream emission.
void BM_EncodeOverlap(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool hint = state.range(1) != 0;
  std::vector<video::Frame> seq;
  for (int i = 0; i < 8; ++i)
    seq.push_back(textured_frame(256, 128, 40 + static_cast<std::uint64_t>(i)));
  for (auto _ : state) {
    state.PauseTiming();
    codec::Encoder enc({.width = 256, .height = 128, .threads = threads});
    state.ResumeTiming();
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const video::Frame* next =
          (hint && i + 1 < seq.size()) ? &seq[i + 1] : nullptr;
      benchmark::DoNotOptimize(enc.encode(seq[i], 26, nullptr, nullptr, next));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(seq.size()));
  state.SetLabel(hint ? "overlap" : "serial-schedule");
}
BENCHMARK(BM_EncodeOverlap)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1});

void BM_Decode(benchmark::State& state) {
  codec::Encoder enc({.width = 256, .height = 128});
  const auto intra = enc.encode(textured_frame(256, 128, 11), 26);
  for (auto _ : state) {
    codec::Decoder dec;
    benchmark::DoNotOptimize(dec.decode(intra.data));
  }
}
BENCHMARK(BM_Decode);

// --- Machine-readable records (bench_record.h) ----------------------

using Clock = std::chrono::steady_clock;

/// Median-of-reps wall time of `fn()` in nanoseconds.
template <typename Fn>
double timed_ns(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// BENCH_micro_sad.json: per-call cost of the canonical scalar kernel
/// vs. the runtime-dispatched kernel over a position sweep, plus the
/// resulting speedup. The SIMD metric reports the dispatched kernel even
/// when that IS scalar (DIVE_FORCE_SCALAR / no SIMD), so the record
/// stays well-formed on every matrix leg.
void emit_sad_record() {
  const auto cur = textured_frame(256, 256, 4);
  const auto ref = textured_frame(256, 256, 14);
  constexpr int kCalls = 200000;
  const auto sweep = [&](codec::Sad16Fn fn) {
    std::uint64_t acc = 0;
    for (int i = 0; i < kCalls; ++i) {
      const int x = (i * 37) % (256 - 16);
      const int y = (i * 17) % (256 - 16);
      acc += fn(&cur.y.data[static_cast<std::size_t>(y) * 256 + x], 256,
                &ref.y.data[static_cast<std::size_t>(y) * 256 + ((x + 8) % (256 - 16))], 256);
    }
    benchmark::DoNotOptimize(acc);
  };
  const double scalar_ns =
      timed_ns(5, [&] { sweep(&codec::sad_16x16_scalar); }) / kCalls;
  const double simd_ns =
      timed_ns(5, [&] { sweep(codec::sad_16x16_fn()); }) / kCalls;

  dive::bench::BenchRecorder rec("micro_sad");
  rec.add("sad16.scalar", scalar_ns, "ns/call");
  rec.add(std::string("sad16.") + codec::to_string(codec::active_sad_kernel()),
          simd_ns, "ns/call");
  rec.add("sad16.speedup", simd_ns > 0 ? scalar_ns / simd_ns : 0.0, "x");
  rec.write();
}

/// BENCH_micro_sse.json: full-plane SSE accumulation (the PSNR hot loop)
/// with the canonical scalar kernel vs. the dispatched one. Same
/// matrix-leg caveat as the SAD record.
void emit_sse_record() {
  const auto cur = textured_frame(256, 256, 4);
  const auto ref = textured_frame(256, 256, 14);
  constexpr int kCalls = 2000;
  const auto sweep = [&](dive::video::SseU8Fn fn) {
    std::uint64_t acc = 0;
    for (int i = 0; i < kCalls; ++i)
      acc += fn(cur.y.data.data(), ref.y.data.data(), cur.y.data.size());
    benchmark::DoNotOptimize(acc);
  };
  const double scalar_ns =
      timed_ns(5, [&] { sweep(&dive::video::sse_u8_scalar); }) / kCalls;
  const double simd_ns =
      timed_ns(5, [&] { sweep(dive::video::sse_u8_fn()); }) / kCalls;

  dive::bench::BenchRecorder rec("micro_sse");
  rec.add("sse_plane.scalar", scalar_ns, "ns/call");
  rec.add(std::string("sse_plane.") +
              dive::video::to_string(dive::video::active_sse_kernel()),
          simd_ns, "ns/call");
  rec.add("sse_plane.speedup", simd_ns > 0 ? scalar_ns / simd_ns : 0.0, "x");
  rec.write();
}

/// BENCH_micro_overlap.json: per-frame encode time of an 8-frame moving
/// sequence with the pipelined lookahead hint off vs. on, at 1/2/4
/// worker lanes. On a single-core host the overlap win collapses (the
/// prefetch thread shares the core); the record still captures that.
void emit_overlap_record() {
  std::vector<video::Frame> seq;
  for (int i = 0; i < 8; ++i)
    seq.push_back(textured_frame(256, 128, 40 + static_cast<std::uint64_t>(i)));
  dive::bench::BenchRecorder rec("micro_overlap");
  for (const int threads : {1, 2, 4}) {
    for (const bool hint : {false, true}) {
      const double seq_ns = timed_ns(3, [&] {
        codec::Encoder enc({.width = 256, .height = 128, .threads = threads});
        for (std::size_t i = 0; i < seq.size(); ++i) {
          const video::Frame* next =
              (hint && i + 1 < seq.size()) ? &seq[i + 1] : nullptr;
          benchmark::DoNotOptimize(
              enc.encode(seq[i], 26, nullptr, nullptr, next));
        }
      });
      rec.add("encode.t" + std::to_string(threads) +
                  (hint ? ".overlap" : ".serial"),
              seq_ns / 1e6 / static_cast<double>(seq.size()), "ms/frame");
    }
  }
  rec.write();
}

/// BENCH_micro_hme.json: per-frame encode time and reconstruction PSNR
/// of a 6-frame synthetic driving pan (18 px/frame — beyond the hex
/// descent basin) for hex/esa/tesa/hme, plus the SKIP rate on a static
/// sequence. The headline claims: hme beats the exhaustive searches on
/// wall-clock at equal-or-better PSNR, and static content produces a
/// nonzero forced-SKIP rate.
void emit_hme_record() {
  constexpr int kFrames = 6;
  std::vector<video::Frame> pan;
  for (int i = 0; i < kFrames; ++i)
    pan.push_back(driving_frame(256, 128, i * 18));

  dive::bench::BenchRecorder rec("micro_hme");
  for (const auto method :
       {codec::MotionSearchMethod::kHex, codec::MotionSearchMethod::kEsa,
        codec::MotionSearchMethod::kTesa, codec::MotionSearchMethod::kHme}) {
    double psnr_acc = 0.0;
    const double seq_ns = timed_ns(3, [&] {
      codec::Encoder enc(
          {.width = 256, .height = 128, .search = {.method = method}});
      psnr_acc = 0.0;
      for (const auto& f : pan) {
        const auto out = enc.encode(f, 28);
        benchmark::DoNotOptimize(out);
        psnr_acc += out.psnr_y;
      }
    });
    const std::string name = codec::to_string(method);
    rec.add("encode." + name, seq_ns / 1e6 / kFrames, "ms/frame");
    rec.add("psnr." + name, psnr_acc / kFrames, "dB");
  }

  // SKIP rate on static frames: same source encoded repeatedly.
  codec::Encoder enc({.width = 256, .height = 128});
  const auto still = driving_frame(256, 128, 0);
  (void)enc.encode(still, 28);  // intra
  for (int i = 0; i < 3; ++i) (void)enc.encode(still, 28);
  const auto& skip = enc.skip_stats();
  rec.add("skip.static_rate",
          skip.inter_mbs > 0 ? static_cast<double>(skip.skipped_mbs) /
                                   static_cast<double>(skip.inter_mbs)
                             : 0.0,
          "fraction");
  rec.write();
}

// Observability overhead: cost of one DIVE_OBS_SPAN at a hot-path call
// site in its three runtime states — null context (unobserved run),
// attached-but-disabled tracer, and enabled tracer — plus the frame
// ledger's per-frame record cost. The enabled variants clear the sink
// every batch so memory stays bounded; the clear cost amortizes to
// noise and is part of real periodic-export usage anyway.
constexpr int kObsBatch = 1 << 12;

void BM_ObsSpanNullContext(benchmark::State& state) {
  obs::ObsContext* obs = nullptr;
  for (auto _ : state) {
    DIVE_OBS_SPAN(span, obs, "codec.encode", obs::kTrackCodec);
    benchmark::DoNotOptimize(obs);
  }
}
BENCHMARK(BM_ObsSpanNullContext);

void BM_ObsSpanDisabledTracer(benchmark::State& state) {
  obs::ObsContext ctx;  // tracer default-disabled
  obs::ObsContext* obs = &ctx;
  for (auto _ : state) {
    DIVE_OBS_SPAN(span, obs, "codec.encode", obs::kTrackCodec);
    benchmark::DoNotOptimize(obs);
  }
}
BENCHMARK(BM_ObsSpanDisabledTracer);

void BM_ObsSpanEnabledTracer(benchmark::State& state) {
  obs::ObsContext ctx;
  ctx.tracer.set_enabled(true);
  obs::ObsContext* obs = &ctx;
  int n = 0;
  for (auto _ : state) {
    DIVE_OBS_SPAN(span, obs, "codec.encode", obs::kTrackCodec);
    benchmark::DoNotOptimize(obs);
    if (++n == kObsBatch) {
      n = 0;
      ctx.tracer.clear();
    }
  }
}
BENCHMARK(BM_ObsSpanEnabledTracer);

void BM_ObsLedgerFrame(benchmark::State& state) {
  obs::FrameLedger ledger;
  std::uint64_t frame = 0;
  for (auto _ : state) {
    const auto ctx = ledger.begin_frame(0, frame, 0, 400000);
    ledger.stage(ctx, obs::FrameStage::kEncode, 0, 16000);
    ledger.stage(ctx, obs::FrameStage::kTransmit, 16000, 36000);
    ledger.stage(ctx, obs::FrameStage::kInference, 46000, 67000);
    ledger.outcome(ctx, obs::FrameOutcome::kCompleted, 75000);
    if (++frame % kObsBatch == 0) ledger.clear();
  }
}
BENCHMARK(BM_ObsLedgerFrame);

/// BENCH_micro_obs.json: the observability tax at a hot-path call site.
/// The headline claims: a null-context span site costs ~nothing (the
/// pointer test), a disabled tracer stays cheap (one atomic load), and
/// the enabled cost is the price of opting into a trace — plus the
/// ledger's full per-frame record cost (mint + 3 stages + outcome).
void emit_obs_record() {
  constexpr int kCalls = 200000;

  const auto span_sweep = [&](obs::ObsContext* obs) {
    for (int i = 0; i < kCalls; ++i) {
      DIVE_OBS_SPAN(span, obs, "codec.encode", obs::kTrackCodec);
      benchmark::DoNotOptimize(obs);
    }
  };

  const double null_ns = timed_ns(5, [&] { span_sweep(nullptr); }) / kCalls;

  obs::ObsContext disabled;
  const double disabled_ns =
      timed_ns(5, [&] { span_sweep(&disabled); }) / kCalls;

  obs::ObsContext enabled;
  enabled.tracer.set_enabled(true);
  const double enabled_ns = timed_ns(5, [&] {
                              enabled.tracer.clear();
                              span_sweep(&enabled);
                            }) /
                            kCalls;

  obs::FrameLedger ledger;
  const double ledger_ns = timed_ns(5, [&] {
                             ledger.clear();
                             for (int i = 0; i < kCalls; ++i) {
                               const auto ctx = ledger.begin_frame(
                                   0, static_cast<std::uint64_t>(i), 0,
                                   400000);
                               ledger.stage(ctx, obs::FrameStage::kEncode, 0,
                                            16000);
                               ledger.stage(ctx, obs::FrameStage::kTransmit,
                                            16000, 36000);
                               ledger.stage(ctx, obs::FrameStage::kInference,
                                            46000, 67000);
                               ledger.outcome(ctx,
                                              obs::FrameOutcome::kCompleted,
                                              75000);
                             }
                           }) /
                           kCalls;

  dive::bench::BenchRecorder rec("micro_obs");
  rec.add("span.null_context", null_ns, "ns/call");
  rec.add("span.disabled_tracer", disabled_ns, "ns/call");
  rec.add("span.enabled_tracer", enabled_ns, "ns/call");
  rec.add("ledger.frame_record", ledger_ns, "ns/call");
  rec.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_sad_record();
  emit_sse_record();
  emit_overlap_record();
  emit_hme_record();
  emit_obs_record();
  if (const char* only = std::getenv("DIVE_BENCH_RECORDS_ONLY");
      only != nullptr && *only != '\0' && std::string_view(only) != "0") {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
