// Fig. 11: effectiveness of Optimal QP Assignment — mAP for fixed deltas
// (5/15/25) vs the adaptive delta, across 1..5 Mbps, on both datasets.
// The adaptive rule should win at most bandwidths, with the largest gap
// over delta=5 at 1 Mbps.
#include <cstdio>
#include <string>

#include "bench_record.h"
#include "bench_util.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 11: fixed vs adaptive background delta (mAP)",
      "adaptive delta highest at most bandwidths; big win over delta=5 at 1 Mbps");

  const data::DatasetSpec specs[] = {
      bench::scaled(data::robotcar_like(), 1, 40),
      bench::scaled(data::nuscenes_like(), 1, 40),
  };
  const int deltas[] = {5, 15, 25, -1};  // -1 = adaptive

  bench::BenchRecorder recorder("fig11_qp_assignment");
  for (const auto& spec : specs) {
    const auto clips = data::generate_dataset(spec);
    util::TextTable t(std::string("Fig. 11 on ") + data::to_string(spec.kind));
    t.set_header({"bandwidth", "delta=5", "delta=15", "delta=25", "adaptive"});
    for (double mbps = 1.0; mbps <= 5.0; mbps += 1.0) {
      harness::NetworkScenario net;
      net.mbps = mbps;
      std::vector<std::string> row{util::TextTable::fmt(mbps, 0) + " Mbps"};
      for (int delta : deltas) {
        harness::SchemeOptions opts;
        opts.fixed_delta = delta;
        const auto r = harness::run_experiment(harness::SchemeKind::kDive,
                                               clips, net, opts);
        row.push_back(util::TextTable::fmt(r.map, 3));
        recorder.add(std::string(data::to_string(spec.kind)) + ".map." +
                         (delta < 0 ? "adaptive"
                                    : "delta" + std::to_string(delta)) +
                         "." + util::TextTable::fmt(mbps, 0) + "mbps",
                     r.map, "mAP");
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  recorder.write();
  return 0;
}
