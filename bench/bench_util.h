// Shared plumbing for the figure benches: env-scalable dataset sizes and
// consistent headers.
#pragma once

#include <cstdio>

#include "data/dataset.h"
#include "harness/experiment.h"
#include "util/table.h"

namespace dive::bench {

/// Dataset sized for a bench run; DIVE_BENCH_CLIPS / DIVE_BENCH_FRAMES
/// override the defaults (the paper-scale runs use larger values).
inline data::DatasetSpec scaled(data::DatasetSpec spec, int default_clips,
                                int default_frames) {
  spec.clip_count = harness::env_int("DIVE_BENCH_CLIPS", default_clips);
  spec.frames_per_clip = harness::env_int("DIVE_BENCH_FRAMES", default_frames);
  return spec;
}

inline void print_header(const char* id, const char* paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper: %s\n", paper_summary);
  std::printf("==============================================================\n");
}

}  // namespace dive::bench
