// Machine-readable bench records: every figure bench can emit a
// BENCH_<name>.json file next to its table output so CI and regression
// tooling can track metrics without scraping text tables.
//
// File shape (schema 1):
//   {"bench":"fig16_end_to_end_robotcar","schema":1,
//    "git_rev":"<hash or unknown>",
//    "records":[{"metric":"dive.map.1mbps","value":0.62,"unit":"mAP"},...]}
//
// Output directory: $DIVE_BENCH_OUT when set, else the current working
// directory. Git revision: $DIVE_GIT_REV when set, else resolved by
// walking up from the cwd to the nearest .git/HEAD (no subprocesses, so
// records work in sandboxed CI).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace dive::bench {

struct BenchRecord {
  std::string metric;
  double value = 0.0;
  std::string unit;
};

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

inline std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

inline std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    return line;
  }
  return {};
}

}  // namespace detail

/// Best-effort current git revision; "unknown" when unresolvable.
inline std::string git_revision() {
  if (const char* env = std::getenv("DIVE_GIT_REV");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string prefix;
  for (int depth = 0; depth < 8; ++depth) {
    const std::string head =
        detail::read_first_line(prefix + ".git/HEAD");
    if (!head.empty()) {
      if (head.rfind("ref: ", 0) != 0) return head;  // detached HEAD
      const std::string ref = head.substr(5);
      const std::string direct =
          detail::read_first_line(prefix + ".git/" + ref);
      if (!direct.empty()) return direct;
      // Ref may only exist in packed-refs.
      std::ifstream packed(prefix + ".git/packed-refs");
      std::string line;
      while (packed && std::getline(packed, line)) {
        if (line.size() == ref.size() + 41 && line[40] == ' ' &&
            line.compare(41, ref.size(), ref) == 0) {
          return line.substr(0, 40);
        }
      }
      return "unknown";
    }
    prefix += "../";
  }
  return "unknown";
}

/// Collects (metric, value, unit) rows for one bench run and writes them
/// as BENCH_<name>.json. Insertion order is preserved, so records are
/// deterministic whenever the bench itself is.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name) : name_(std::move(name)) {}

  void add(std::string metric, double value, std::string unit) {
    records_.push_back({std::move(metric), value, std::move(unit)});
  }

  [[nodiscard]] const std::vector<BenchRecord>& records() const {
    return records_;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"bench\":\"" + detail::json_escape(name_) +
                      "\",\"schema\":1,\"git_rev\":\"" +
                      detail::json_escape(git_revision()) +
                      "\",\"records\":[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"metric\":\"" + detail::json_escape(records_[i].metric) +
             "\",\"value\":" + detail::fmt_value(records_[i].value) +
             ",\"unit\":\"" + detail::json_escape(records_[i].unit) + "\"}";
    }
    out += "]}\n";
    return out;
  }

  /// Writes BENCH_<name>.json into $DIVE_BENCH_OUT (or cwd); prints the
  /// path on success so CI logs show where the record landed.
  bool write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("DIVE_BENCH_OUT");
        env != nullptr && *env != '\0') {
      dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_record: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = to_json();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!out) return false;
    std::printf("bench record: %s (%zu metrics)\n", path.c_str(),
                records_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<BenchRecord> records_;
};

}  // namespace dive::bench
