// Fig. 16: end-to-end comparison of DiVE vs O3/EAAR/DDS on RobotCar-like
// data across 1..5 Mbps: (a) mAP, (b) response time.
#include "end_to_end_common.h"

int main() {
  using namespace dive;
  return bench::run_end_to_end(
      bench::scaled(data::robotcar_like(), 1, 64),
      "Fig. 16: end-to-end comparison on RobotCar",
      "fig16_end_to_end_robotcar",
      "DiVE highest mAP at every bandwidth (+2.8%..+39.1% over DDS); "
      "response <= ~134 ms, 1.7-8.4% below DDS; EAAR fastest but far less "
      "accurate");
}
