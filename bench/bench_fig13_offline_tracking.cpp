// Fig. 13: effectiveness of Motion-vector-based Offline Tracking (MOT)
// under periodic link outages: 1 s interruptions every 5/10/15/20 s at
// 2 Mbps, with MOT enabled vs disabled. MOT should recover most of the
// accuracy lost during outages (paper: +12.8% / +8.6% mAP at 5 s).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 13: mAP with and without offline tracking under outages",
      "MOT recovers accuracy; +12.8%/+8.6% mAP at 5 s intervals");

  // Clips must span more than the largest outage interval (20 s), or all
  // intervals degenerate to "one outage per clip".
  const double clip_seconds =
      harness::env_int("DIVE_BENCH_SECONDS", 23);
  data::DatasetSpec specs[] = {
      bench::scaled(data::robotcar_like(), 1, 72),
      bench::scaled(data::nuscenes_like(), 1, 72),
  };
  for (auto& spec : specs) {
    spec.frames_per_clip = std::max(
        spec.frames_per_clip, static_cast<int>(clip_seconds * spec.fps));
  }

  for (const auto& spec : specs) {
    const auto clips = data::generate_dataset(spec);
    util::TextTable t(std::string("Fig. 13 on ") + data::to_string(spec.kind));
    t.set_header({"outage interval", "mAP w/ MOT", "mAP w/o MOT", "gain"});
    for (double interval : {5.0, 10.0, 15.0, 20.0}) {
      harness::NetworkScenario net;
      net.mbps = 2.0;
      net.outage_interval_s = interval;
      net.outage_duration_s = 1.0;
      net.first_outage_s = 2.0;
      net.head_timeout = util::from_millis(250.0);

      harness::SchemeOptions with_mot;
      with_mot.enable_offline_tracking = true;
      const auto on = harness::run_experiment(harness::SchemeKind::kDive,
                                              clips, net, with_mot);
      harness::SchemeOptions without_mot;
      without_mot.enable_offline_tracking = false;
      const auto off = harness::run_experiment(harness::SchemeKind::kDive,
                                               clips, net, without_mot);
      t.add_row({util::TextTable::fmt(interval, 0) + " s",
                 util::TextTable::fmt(on.map, 3),
                 util::TextTable::fmt(off.map, 3),
                 util::TextTable::fmt_pct(on.map - off.map, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
