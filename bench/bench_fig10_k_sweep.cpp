// Fig. 10: effect of the number of R-sampling points k — rotation
// estimation error (a) and RANSAC time cost (b) as k sweeps 10..100.
// The paper picks k = 70 (error converges there, cost is linear in k).
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "codec/encoder.h"
#include "core/rotation_estimator.h"
#include "util/stats.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 10: effect of the number of sampled points k",
      "error decreases with k and converges near k=70; time linear in k");

  const auto spec = bench::scaled(data::kitti_like(), 3, 56);
  const int k_step = harness::env_int("DIVE_BENCH_K_STEP", 10);

  // Pre-compute the motion fields once (they do not depend on k).
  struct FrameSample {
    codec::MotionField field;
    geom::Vec3 gt;
    double fps;
    geom::PinholeCamera camera{1.0, 16, 16};
  };
  std::vector<FrameSample> samples;
  for (int c = 0; c < spec.clip_count; ++c) {
    const auto clip = data::generate_clip(spec, c);
    codec::Encoder enc({.width = spec.width, .height = spec.height});
    for (int i = 0; i < clip.frame_count(); ++i) {
      const auto& rec = clip.frames[static_cast<std::size_t>(i)];
      auto field = enc.analyze_motion(rec.image);
      enc.encode(rec.image, 24, nullptr, field.empty() ? nullptr : &field);
      if (field.empty() || rec.ego.speed < 2.0) continue;
      FrameSample s;
      s.field = std::move(field);
      s.gt = video::mean_gyro(
          clip.imu, clip.frames[static_cast<std::size_t>(i - 1)].timestamp,
          rec.timestamp);
      s.fps = clip.fps;
      s.camera = clip.camera;
      samples.push_back(std::move(s));
    }
  }

  util::TextTable t("Fig. 10: rotation error and time cost vs k");
  t.set_header({"k", "mean |err wx| (rad/s)", "mean |err wy| (rad/s)",
                "time per frame (ms)"});
  for (int k = 10; k <= 100; k += k_step) {
    core::RotationEstimatorConfig cfg;
    cfg.sample_count = k;
    core::RotationEstimator estimator(cfg, 23);
    util::RunningStats ex, ey;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& s : samples) {
      const auto est = estimator.estimate(s.field, s.camera);
      if (!est) continue;
      ex.add(std::abs(est->rotation.dphi_x * s.fps - s.gt.x));
      ey.add(std::abs(est->rotation.dphi_y * s.fps - s.gt.y));
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    t.add_row({std::to_string(k), util::TextTable::fmt(ex.mean(), 4),
               util::TextTable::fmt(ey.mean(), 4),
               util::TextTable::fmt(
                   elapsed / std::max<std::size_t>(1, samples.size()), 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(%zu frames per k setting)\n", samples.size());
  return 0;
}
