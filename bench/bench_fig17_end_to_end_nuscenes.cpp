// Fig. 17: end-to-end comparison of DiVE vs O3/EAAR/DDS on nuScenes-like
// data across 1..5 Mbps: (a) mAP, (b) response time.
#include "end_to_end_common.h"

int main() {
  using namespace dive;
  return bench::run_end_to_end(
      bench::scaled(data::nuscenes_like(), 1, 64),
      "Fig. 17: end-to-end comparison on nuScenes",
      "fig17_end_to_end_nuscenes",
      "DiVE highest mAP at every bandwidth (+4.7%..+17.6% over DDS); "
      "response <= ~156 ms, 14-19.1% below DDS");
}
