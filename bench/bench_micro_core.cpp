// Microbenchmarks of DiVE's per-frame analytics pipeline: preprocessing,
// ground estimation, clustering, QP-map construction, offline tracking,
// and AP evaluation. These are the costs that must stay small on a
// resource-constrained agent.
#include <benchmark/benchmark.h>

#include "core/foreground_extractor.h"
#include "core/offline_tracker.h"
#include "core/preprocess.h"
#include "core/qp_assigner.h"
#include "edge/evaluator.h"

namespace {

using namespace dive;

const geom::PinholeCamera kCamera(403.0, 512, 288);

codec::MotionField scene_field() {
  codec::MotionField field(32, 18);
  for (int row = 0; row < 18; ++row)
    for (int col = 0; col < 32; ++col) {
      const geom::Vec2 p = kCamera.to_centered(field.mb_center(col, row));
      geom::Vec2 mv{};
      if (p.y > 4.0)
        mv = core::translational_mv(p, 0.9, 403.0 * 1.5 / p.y);
      if (col >= 14 && col <= 17 && row >= 9 && row <= 12)
        mv = core::translational_mv(p, 0.9, 18.0) + geom::Vec2{4.0, 0.0};
      field.at(col, row) = {static_cast<int>(std::lround(mv.x * 2)),
                            static_cast<int>(std::lround(mv.y * 2))};
    }
  return field;
}

void BM_Preprocess(benchmark::State& state) {
  core::Preprocessor pre({}, 1);
  const auto field = scene_field();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pre.run(field, kCamera));
  }
}
BENCHMARK(BM_Preprocess);

void BM_GroundEstimation(benchmark::State& state) {
  core::Preprocessor pre({}, 2);
  const auto prep = pre.run(scene_field(), kCamera);
  const core::GroundEstimator est;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(prep, kCamera));
  }
}
BENCHMARK(BM_GroundEstimation);

void BM_ForegroundExtraction(benchmark::State& state) {
  core::Preprocessor pre({}, 3);
  const auto prep = pre.run(scene_field(), kCamera);
  core::ForegroundExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(prep, kCamera));
  }
}
BENCHMARK(BM_ForegroundExtraction);

void BM_QpMapConstruction(benchmark::State& state) {
  core::Preprocessor pre({}, 4);
  const auto prep = pre.run(scene_field(), kCamera);
  core::ForegroundExtractor extractor;
  const auto fg = extractor.extract(prep, kCamera);
  const core::QpAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.build_map(fg, 32, 18));
  }
}
BENCHMARK(BM_QpMapConstruction);

void BM_OfflineTracking(benchmark::State& state) {
  const core::OfflineTracker tracker;
  const auto field = scene_field();
  edge::DetectionList boxes;
  for (int i = 0; i < 8; ++i) {
    boxes.push_back({video::ObjectClass::kCar,
                     {40.0 * i, 150, 40.0 * i + 36, 180}, 0.8});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.track(boxes, field, 512, 288));
  }
}
BENCHMARK(BM_OfflineTracking);

void BM_ApEvaluation(benchmark::State& state) {
  edge::DetectionList dets, truths;
  for (int i = 0; i < 12; ++i) {
    const geom::Box b{30.0 * i, 100, 30.0 * i + 25, 140};
    truths.push_back({video::ObjectClass::kCar, b, 1.0});
    dets.push_back({video::ObjectClass::kCar, b.shifted({2, 1}), 0.9});
  }
  for (auto _ : state) {
    edge::ApEvaluator ev;
    for (int f = 0; f < 10; ++f) ev.add_frame(dets, truths);
    benchmark::DoNotOptimize(ev.map());
  }
}
BENCHMARK(BM_ApEvaluation);

}  // namespace

BENCHMARK_MAIN();
