// Fig. 9: effect of the x264 motion-estimation method (DIA/HEX/UMH/TESA/
// ESA) on end-to-end mAP and per-frame motion-estimation time at 2 Mbps.
// The paper picks HEX: mAP on par with UMH at lower cost, while DIA
// under-searches and ESA/TESA chase residual minima that are not true
// motion.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "codec/motion_search.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 9: motion-estimation method vs mAP and time cost (2 Mbps)",
      "HEX/UMH best mAP; HEX cheapest of the two; DIA/ESA/TESA worse");

  const codec::MotionSearchMethod methods[] = {
      codec::MotionSearchMethod::kDia, codec::MotionSearchMethod::kHex,
      codec::MotionSearchMethod::kUmh, codec::MotionSearchMethod::kTesa,
      codec::MotionSearchMethod::kEsa, codec::MotionSearchMethod::kHme};

  const data::DatasetSpec specs[] = {
      bench::scaled(data::robotcar_like(), 1, 24),
      bench::scaled(data::nuscenes_like(), 1, 24),
  };

  for (const auto& spec : specs) {
    const auto clips = data::generate_dataset(spec);
    util::TextTable t(std::string("Fig. 9 on ") + data::to_string(spec.kind));
    t.set_header({"method", "mAP", "AP car", "AP ped", "ME time/frame (ms)"});

    for (const auto method : methods) {
      // Measure pure motion-estimation cost on the raw clip.
      codec::MotionSearcher searcher({.method = method});
      const auto t0 = std::chrono::steady_clock::now();
      int me_frames = 0;
      for (std::size_t i = 1; i < clips[0].frames.size(); i += 6) {
        searcher.search_frame(clips[0].frames[i].image.y,
                              clips[0].frames[i - 1].image.y);
        ++me_frames;
      }
      const double me_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count() /
                           std::max(1, me_frames);

      harness::NetworkScenario net;
      net.mbps = 2.0;
      harness::SchemeOptions opts;
      opts.search = method;
      const auto r =
          harness::run_experiment(harness::SchemeKind::kDive, clips, net, opts);
      t.add_row({codec::to_string(method), util::TextTable::fmt(r.map, 3),
                 util::TextTable::fmt(r.ap_car, 3),
                 util::TextTable::fmt(r.ap_ped, 3),
                 util::TextTable::fmt(me_ms, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
