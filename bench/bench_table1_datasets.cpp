// Table I: dataset summary — frame rate, clip/frame counts, and annotated
// car/pedestrian totals. We render a sample and report measured per-frame
// densities plus the totals extrapolated to the paper's scale.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Table I: summary of datasets",
      "nuScenes: 12 FPS, 50 videos, 9605 frames, 45605 cars, 10221 peds | "
      "RobotCar: 16 FPS, 8 videos, 8150 frames, 19365 cars, 25423 peds");

  struct PaperRow {
    const char* name;
    double fps;
    long frames;
    long cars;
    long peds;
  };
  const PaperRow paper[] = {
      {"nuScenes", 12, 9605, 45605, 10221},
      {"RobotCar", 16, 8150, 19365, 25423},
  };

  util::TextTable table("Table I (measured sample, extrapolated to paper scale)");
  table.set_header({"dataset", "FPS", "sample frames", "cars/frame",
                    "peds/frame", "cars@paper", "paper cars", "peds@paper",
                    "paper peds"});

  const data::DatasetSpec specs[] = {
      bench::scaled(data::nuscenes_like(), 3, 64),
      bench::scaled(data::robotcar_like(), 3, 64),
  };
  for (int i = 0; i < 2; ++i) {
    const auto clips = data::generate_dataset(specs[i]);
    const auto stats = data::accumulate_stats(specs[i], clips);
    const double cars_pf = static_cast<double>(stats.cars) / stats.frames;
    const double peds_pf =
        static_cast<double>(stats.pedestrians) / stats.frames;
    table.add_row(
        {data::to_string(specs[i].kind), util::TextTable::fmt(specs[i].fps, 0),
         std::to_string(stats.frames), util::TextTable::fmt(cars_pf, 2),
         util::TextTable::fmt(peds_pf, 2),
         util::TextTable::fmt(cars_pf * paper[i].frames, 0),
         std::to_string(paper[i].cars),
         util::TextTable::fmt(peds_pf * paper[i].frames, 0),
         std::to_string(paper[i].peds)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
