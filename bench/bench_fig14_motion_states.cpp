// Fig. 14: DiVE's detection AP broken down by the ego vehicle's motion
// state (static / moving straight / turning) at 2 Mbps. Paper: pedestrian
// AP > 0.6 everywhere, car AP > 0.8, best car AP when static.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 14: AP per ego motion state (2 Mbps)",
      "car AP > 0.8 in all states, highest when static; ped AP > 0.6");

  data::DatasetSpec specs[] = {
      bench::scaled(data::robotcar_like(), 1, 64),
      bench::scaled(data::nuscenes_like(), 1, 64),
  };
  for (auto& spec : specs) {
    // Guarantee all three motion states: one clip per trajectory profile
    // (the profile is drawn from these fractions per clip).
    std::vector<data::Clip> clips;
    auto stop_spec = spec;
    stop_spec.stop_and_go_fraction = 1.0;
    stop_spec.turning_fraction = 0.0;
    clips.push_back(data::generate_clip(stop_spec, 0));
    auto straight_spec = spec;
    straight_spec.stop_and_go_fraction = 0.0;
    straight_spec.turning_fraction = 0.0;
    clips.push_back(data::generate_clip(straight_spec, 1));
    auto turn_spec = spec;
    turn_spec.stop_and_go_fraction = 0.0;
    turn_spec.turning_fraction = 1.0;
    clips.push_back(data::generate_clip(turn_spec, 2));
    harness::NetworkScenario net;
    net.mbps = 2.0;
    const auto r =
        harness::run_experiment(harness::SchemeKind::kDive, clips, net);

    util::TextTable t(std::string("Fig. 14 on ") + data::to_string(spec.kind));
    t.set_header({"motion state", "AP car", "AP ped", "frames"});
    for (int s = 0; s < 3; ++s) {
      t.add_row({data::to_string(static_cast<data::MotionState>(s)),
                 util::TextTable::fmt(
                     r.ap_car_by_state[static_cast<std::size_t>(s)], 3),
                 util::TextTable::fmt(
                     r.ap_ped_by_state[static_cast<std::size_t>(s)], 3),
                 std::to_string(
                     r.frames_by_state[static_cast<std::size_t>(s)])});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
