// Serving-layer scaling sweep: how many agents can one edge node sustain
// before accuracy degrades? Runs the multi-agent scenario at 1/4/16/64
// concurrent sessions against a fixed node (2 workers, batch<=4) and
// reports admission drops, MOT fallbacks, latency, and aggregate mAP.
// With ~163 inferred frames/s of amortized capacity, demand crosses the
// node's limit between 4 sessions (48 f/s) and 16 (192 f/s): drops and
// MOT fallbacks rise, queues stay bounded, and mAP degrades gracefully.
//
// Scale knobs: DIVE_BENCH_FRAMES (frames per session, default 24),
// DIVE_BENCH_SESSIONS (cap on the largest sweep point, default 64).
//
//   ./build/bench/bench_serve_scaling
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_record.h"
#include "harness/experiment.h"
#include "harness/serve_scenario.h"
#include "util/table.h"

int main() {
  using namespace dive;

  const int frames = harness::env_int("DIVE_BENCH_FRAMES", 24);
  const int max_sessions = harness::env_int("DIVE_BENCH_SESSIONS", 64);

  util::TextTable table("edge-node scaling (2 workers, batch<=4, deadline 400 ms)");
  table.set_header({"sessions", "frames", "offload%", "drop_q", "drop_dl",
                    "drop_up", "mot", "depth", "batch", "wait_ms", "e2e_ms",
                    "e2e_p95", "mAP"});

  bench::BenchRecorder recorder("serve_scaling");
  for (int sessions : {1, 4, 16, 64}) {
    if (sessions > max_sessions) break;
    harness::ServeScenarioOptions opt = harness::default_serve_options();
    opt.sessions = sessions;
    opt.frames_per_session = frames;
    const harness::ServeScenarioResult r = harness::run_serve_scenario(opt);
    const std::string tag = std::to_string(sessions) + "sessions";
    recorder.add("map." + tag, r.aggregate_map, "mAP");
    recorder.add("e2e_ms." + tag, r.mean_e2e_ms, "ms");
    recorder.add("e2e_p95_ms." + tag, r.p95_e2e_ms, "ms");
    recorder.add("dropped." + tag,
                 static_cast<double>(r.dropped_queue + r.dropped_deadline +
                                     r.dropped_uplink),
                 "count");
    table.add_row({std::to_string(sessions), std::to_string(r.frames),
                   util::TextTable::fmt_pct(r.offload_fraction, 1),
                   std::to_string(r.dropped_queue),
                   std::to_string(r.dropped_deadline),
                   std::to_string(r.dropped_uplink), std::to_string(r.mot),
                   util::TextTable::fmt(r.mean_queue_depth, 2),
                   util::TextTable::fmt(r.mean_batch, 2),
                   util::TextTable::fmt(r.mean_wait_ms, 1),
                   util::TextTable::fmt(r.mean_e2e_ms, 1),
                   util::TextTable::fmt(r.p95_e2e_ms, 1),
                   util::TextTable::fmt(r.aggregate_map, 3)});
  }
  table.print(std::cout);

  // Determinism spot check: the same seed must reproduce identical
  // metrics (the whole serving layer is event-driven simulated time).
  {
    harness::ServeScenarioOptions opt = harness::default_serve_options();
    opt.sessions = 4;
    opt.frames_per_session = frames;
    const auto a = harness::run_serve_scenario(opt);
    const auto b = harness::run_serve_scenario(opt);
    const bool identical = a.aggregate_map == b.aggregate_map &&
                           a.mean_e2e_ms == b.mean_e2e_ms &&
                           a.p95_e2e_ms == b.p95_e2e_ms &&
                           a.dropped_queue == b.dropped_queue &&
                           a.dropped_deadline == b.dropped_deadline &&
                           a.completed == b.completed;
    std::printf("\ndeterminism check (4 sessions, same seed re-run): %s\n",
                identical ? "identical metrics" : "MISMATCH");
    if (!identical) return 1;
  }
  recorder.write();
  return 0;
}
