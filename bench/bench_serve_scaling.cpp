// Serving-layer scaling sweep: how many agents can one edge node sustain
// before accuracy degrades? Runs the multi-agent scenario at 1/4/16/64
// concurrent sessions against a fixed node (2 workers, batch<=4) and
// reports admission drops, MOT fallbacks, latency, and aggregate mAP.
// With ~163 inferred frames/s of amortized capacity, demand crosses the
// node's limit between 4 sessions (48 f/s) and 16 (192 f/s): drops and
// MOT fallbacks rise, queues stay bounded, and mAP degrades gracefully.
//
// Scale knobs: DIVE_BENCH_FRAMES (frames per session, default 24),
// DIVE_BENCH_SESSIONS (cap on the largest sweep point, default 64).
//
//   ./build/bench/bench_serve_scaling
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_record.h"
#include "harness/experiment.h"
#include "harness/serve_scenario.h"
#include "obs/obs.h"
#include "util/table.h"

int main() {
  using namespace dive;

  const int frames = harness::env_int("DIVE_BENCH_FRAMES", 24);
  const int max_sessions = harness::env_int("DIVE_BENCH_SESSIONS", 64);

  util::TextTable table("edge-node scaling (2 workers, batch<=4, deadline 400 ms)");
  table.set_header({"sessions", "frames", "offload%", "drop_q", "drop_dl",
                    "drop_up", "mot", "depth", "batch", "wait_ms", "e2e_ms",
                    "e2e_p95", "mAP"});

  // The largest executed sweep point runs observed: frame ledger +
  // deterministic sim-clock metric timeline (DESIGN.md §15).
  int observed_sessions = 1;
  for (int sessions : {1, 4, 16, 64})
    if (sessions <= max_sessions) observed_sessions = sessions;
  obs::ObsContext obs_ctx;
  obs::MetricsSnapshotter timeline(&obs_ctx.metrics, util::from_millis(250.0));

  bench::BenchRecorder recorder("serve_scaling");
  for (int sessions : {1, 4, 16, 64}) {
    if (sessions > max_sessions) break;
    harness::ServeScenarioOptions opt = harness::default_serve_options();
    opt.sessions = sessions;
    opt.frames_per_session = frames;
    if (sessions == observed_sessions) {
      opt.obs = &obs_ctx;
      opt.timeline = &timeline;
    }
    const harness::ServeScenarioResult r = harness::run_serve_scenario(opt);
    const std::string tag = std::to_string(sessions) + "sessions";
    recorder.add("map." + tag, r.aggregate_map, "mAP");
    recorder.add("e2e_ms." + tag, r.mean_e2e_ms, "ms");
    recorder.add("e2e_p95_ms." + tag, r.p95_e2e_ms, "ms");
    recorder.add("dropped." + tag,
                 static_cast<double>(r.dropped_queue + r.dropped_deadline +
                                     r.dropped_uplink),
                 "count");
    table.add_row({std::to_string(sessions), std::to_string(r.frames),
                   util::TextTable::fmt_pct(r.offload_fraction, 1),
                   std::to_string(r.dropped_queue),
                   std::to_string(r.dropped_deadline),
                   std::to_string(r.dropped_uplink), std::to_string(r.mot),
                   util::TextTable::fmt(r.mean_queue_depth, 2),
                   util::TextTable::fmt(r.mean_batch, 2),
                   util::TextTable::fmt(r.mean_wait_ms, 1),
                   util::TextTable::fmt(r.mean_e2e_ms, 1),
                   util::TextTable::fmt(r.p95_e2e_ms, 1),
                   util::TextTable::fmt(r.aggregate_map, 3)});
  }
  table.print(std::cout);

  // Latency attribution from the observed point's frame ledger: what
  // fraction of each frame's end-to-end budget the stage breakdown
  // names, and whether every drop / deadline miss carries a cause.
  {
    std::printf("\n");
    timeline
        .to_table({"serve.submitted", "serve.completed",
                   "serve.dropped_queue", "serve.dropped_deadline",
                   "serve.e2e_ms.p99"})
        .print(std::cout);
    std::printf("\n");
    obs_ctx.ledger.stage_table().print(std::cout);
    std::printf("\n");
    obs_ctx.ledger.autopsy_table().print(std::cout);

    double attributed = 0.0, e2e = 0.0;
    long terminal = 0;
    long autopsied = 0, autopsy_with_cause = 0;
    for (const obs::FrameRecord& rec : obs_ctx.ledger.records()) {
      if (rec.outcome == obs::FrameOutcome::kPending) continue;
      ++terminal;
      attributed += rec.attributed_ms();
      e2e += rec.e2e_ms();
    }
    for (const obs::FrameLedger::Autopsy& a : obs_ctx.ledger.autopsies()) {
      ++autopsied;
      if (a.dominant_ms > 0.0) ++autopsy_with_cause;
    }
    const double attribution = e2e > 0.0 ? attributed / e2e : 1.0;
    const double coverage =
        autopsied > 0 ? static_cast<double>(autopsy_with_cause) /
                            static_cast<double>(autopsied)
                      : 1.0;
    std::printf(
        "\nledger (%d sessions): %ld terminal frames, %.1f%% of e2e "
        "latency attributed to named stages; %ld/%ld autopsied frames "
        "carry a dominant-stage cause\n",
        observed_sessions, terminal, 100.0 * attribution, autopsy_with_cause,
        autopsied);
    recorder.add("ledger.attribution", attribution, "frac");
    recorder.add("ledger.autopsy_coverage", coverage, "frac");
    recorder.add("ledger.timeline_rows",
                 static_cast<double>(timeline.rows().size()), "count");
  }

  // Determinism spot check: the same seed must reproduce identical
  // metrics (the whole serving layer is event-driven simulated time).
  {
    harness::ServeScenarioOptions opt = harness::default_serve_options();
    opt.sessions = 4;
    opt.frames_per_session = frames;
    const auto a = harness::run_serve_scenario(opt);
    const auto b = harness::run_serve_scenario(opt);
    const bool identical = a.aggregate_map == b.aggregate_map &&
                           a.mean_e2e_ms == b.mean_e2e_ms &&
                           a.p95_e2e_ms == b.p95_e2e_ms &&
                           a.dropped_queue == b.dropped_queue &&
                           a.dropped_deadline == b.dropped_deadline &&
                           a.completed == b.completed;
    std::printf("\ndeterminism check (4 sessions, same seed re-run): %s\n",
                identical ? "identical metrics" : "MISMATCH");
    if (!identical) return 1;
  }
  recorder.write();

  // RoI gating: metadata lane on vs off (BENCH_roi_gating.json). Two
  // questions: (1) accuracy — at a load the node can fully serve, how
  // much mAP does tile-gated inference give up, per ego-motion state;
  // (2) capacity — at a load past saturation, how many more frames does
  // the node complete when gated frames cost work < 1.
  {
    bench::BenchRecorder roi_recorder("roi_gating");

    util::TextTable roi_table("RoI gating: metadata lane off vs on");
    roi_table.set_header({"scenario", "mode", "sessions", "mAP", "gated",
                          "px_frac", "work", "e2e_ms", "done"});
    auto roi_row = [&](const std::string& scenario, const char* mode,
                       int sessions, const harness::ServeScenarioResult& r) {
      roi_table.add_row({scenario, mode, std::to_string(sessions),
                         util::TextTable::fmt(r.aggregate_map, 3),
                         std::to_string(r.gated),
                         util::TextTable::fmt(r.mean_gated_pixel_fraction, 3),
                         util::TextTable::fmt(r.mean_gate_work, 3),
                         util::TextTable::fmt(r.mean_e2e_ms, 1),
                         std::to_string(r.completed)});
    };

    auto run_pair = [&](int sessions, double stop_frac, double turn_frac) {
      harness::ServeScenarioOptions opt = harness::default_serve_options();
      opt.sessions = sessions;
      opt.frames_per_session = frames;
      opt.stop_and_go_fraction = stop_frac;
      opt.turning_fraction = turn_frac;
      const harness::ServeScenarioResult full = harness::run_serve_scenario(opt);
      opt.roi_metadata = true;
      const harness::ServeScenarioResult gated = harness::run_serve_scenario(opt);
      return std::make_pair(full, gated);
    };

    // Accuracy points: light load (every frame served), the clip pool
    // pinned to one ego-motion scenario per run, so the mAP delta is the
    // cost of gated inference in that regime and nothing else.
    struct Scenario {
      const char* label;
      double stop_frac;
      double turn_frac;
    };
    const Scenario kScenarios[] = {{"stop_and_go", 1.0, 0.0},
                                   {"straight", 0.0, 0.0},
                                   {"turning", 0.0, 1.0}};
    const int acc_sessions = std::min(4, max_sessions);
    double pixel_fraction_sum = 0.0;
    int pixel_fraction_n = 0;
    for (const Scenario& sc : kScenarios) {
      const auto [full, gated] =
          run_pair(acc_sessions, sc.stop_frac, sc.turn_frac);
      const std::string label = sc.label;
      roi_recorder.add("map_full." + label, full.aggregate_map, "mAP");
      roi_recorder.add("map_gated." + label, gated.aggregate_map, "mAP");
      roi_recorder.add("map_delta." + label,
                       full.aggregate_map - gated.aggregate_map, "mAP");
      roi_recorder.add("gated_pixel_fraction." + label,
                       gated.mean_gated_pixel_fraction, "frac");
      roi_recorder.add("gate_work_mean." + label, gated.mean_gate_work,
                       "frac");
      roi_recorder.add("gated_frames." + label,
                       static_cast<double>(gated.gated), "count");
      roi_recorder.add("propagated_boxes." + label,
                       static_cast<double>(gated.propagated_boxes), "count");
      roi_recorder.add(
          "sidecar_bytes_per_frame." + label,
          gated.frames > 0 ? static_cast<double>(gated.sidecar_bytes) /
                                 static_cast<double>(gated.frames)
                           : 0.0,
          "count");
      if (gated.gated > 0) {
        pixel_fraction_sum += gated.mean_gated_pixel_fraction;
        ++pixel_fraction_n;
      }
      roi_row(label, "full", acc_sessions, full);
      roi_row(label, "gated", acc_sessions, gated);
    }
    if (pixel_fraction_n > 0) {
      const double mean_px = pixel_fraction_sum / pixel_fraction_n;
      roi_recorder.add("gated_pixel_fraction", mean_px, "frac");
      roi_recorder.add("gated_pixel_drop", 1.0 - mean_px, "frac");
    }

    // Capacity point: past saturation (default profile mix), completed
    // frames measure how much extra session throughput gating buys.
    if (max_sessions >= 16) {
      const auto [full16, gated16] = run_pair(16, 0.25, 0.2);
      roi_recorder.add("completed_full.16sessions",
                       static_cast<double>(full16.completed), "count");
      roi_recorder.add("completed_gated.16sessions",
                       static_cast<double>(gated16.completed), "count");
      if (full16.completed > 0) {
        roi_recorder.add("capacity_gain.16sessions",
                         static_cast<double>(gated16.completed) /
                             static_cast<double>(full16.completed),
                         "x");
      }
      roi_row("mixed", "full", 16, full16);
      roi_row("mixed", "gated", 16, gated16);
    }
    roi_table.print(std::cout);
    roi_recorder.write();
  }
  return 0;
}
