// Fig. 7: R-sampling vs random sampling for rotational-speed estimation
// on KITTI-like clips with IMU ground truth. (a)/(b): CDFs of the wx/wy
// estimation error for R-sampling k=30 and random sampling k=30/500;
// (c): an example wy trace.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "codec/encoder.h"
#include "core/rotation_estimator.h"
#include "util/stats.h"

namespace {

struct Variant {
  const char* label;
  dive::core::SamplingPolicy policy;
  int k;
};

}  // namespace

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 7: efficiency of R-sampling (rotation estimation error CDFs)",
      "R-sampling with 30 samples beats random sampling with 500");

  const auto spec = bench::scaled(data::kitti_like(), 4, 64);
  const Variant variants[] = {
      {"R-sampling k=30", core::SamplingPolicy::kRSampling, 30},
      {"random k=30", core::SamplingPolicy::kRandom, 30},
      {"random k=500", core::SamplingPolicy::kRandom, 500},
  };

  util::SampleSet err_x[3], err_y[3];
  std::vector<std::pair<double, std::pair<double, double>>> trace;  // t, gt/est

  for (int v = 0; v < 3; ++v) {
    for (int c = 0; c < spec.clip_count; ++c) {
      const auto clip = data::generate_clip(spec, c);
      codec::Encoder enc({.width = spec.width, .height = spec.height});
      core::RotationEstimatorConfig cfg;
      cfg.policy = variants[v].policy;
      cfg.sample_count = variants[v].k;
      core::RotationEstimator estimator(cfg, 17);
      for (int i = 0; i < clip.frame_count(); ++i) {
        const auto& rec = clip.frames[static_cast<std::size_t>(i)];
        const auto field = enc.analyze_motion(rec.image);
        enc.encode(rec.image, 24, nullptr, field.empty() ? nullptr : &field);
        if (field.empty() || rec.ego.speed < 2.0) continue;
        const auto est = estimator.estimate(field, clip.camera);
        if (!est) continue;
        const auto gt = video::mean_gyro(
            clip.imu, clip.frames[static_cast<std::size_t>(i - 1)].timestamp,
            rec.timestamp);
        const double wx = est->rotation.dphi_x * clip.fps;
        const double wy = est->rotation.dphi_y * clip.fps;
        err_x[v].add(std::abs(wx - gt.x));
        err_y[v].add(std::abs(wy - gt.y));
        if (v == 0 && c == 0) trace.push_back({rec.timestamp, {gt.y, wy}});
      }
    }
  }

  for (auto [name, sets] : {std::pair{"(a) wx", err_x}, {"(b) wy", err_y}}) {
    util::TextTable t(std::string("Fig. 7") + name +
                      " estimation error CDF (rad/s)");
    t.set_header({"error <=", variants[0].label, variants[1].label,
                  variants[2].label});
    for (double e : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
      std::vector<std::string> row{util::TextTable::fmt(e, 3)};
      for (int v = 0; v < 3; ++v)
        row.push_back(sets[v].empty() ? "-"
                                      : util::TextTable::fmt(sets[v].cdf_at(e), 3));
      t.add_row(row);
    }
    std::vector<std::string> mean_row{"mean |err|"};
    for (int v = 0; v < 3; ++v)
      mean_row.push_back(util::TextTable::fmt(sets[v].mean(), 4));
    t.add_row(mean_row);
    std::printf("%s\n", t.to_string().c_str());
  }

  util::TextTable tr("Fig. 7(c): example wy trace (R-sampling k=30)");
  tr.set_header({"t (s)", "gt wy (rad/s)", "est wy (rad/s)"});
  for (std::size_t i = 0; i < trace.size(); i += 4) {
    tr.add_row({util::TextTable::fmt(trace[i].first, 2),
                util::TextTable::fmt(trace[i].second.first, 3),
                util::TextTable::fmt(trace[i].second.second, 3)});
  }
  std::printf("%s\n", tr.to_string().c_str());
  return 0;
}
