// Shared driver for the Fig. 16/17 end-to-end comparisons: every scheme
// (DiVE, O3, EAAR, DDS) across 1..5 Mbps on one dataset, reporting mAP
// and response time.
#pragma once

#include <cctype>
#include <cstdio>

#include "bench_record.h"
#include "bench_util.h"

namespace dive::bench {

/// `record_name` becomes BENCH_<record_name>.json (see bench_record.h).
inline int run_end_to_end(data::DatasetSpec spec, const char* figure_id,
                          const char* record_name,
                          const char* paper_summary) {
  print_header(figure_id, paper_summary);
  const auto clips = data::generate_dataset(spec);
  BenchRecorder recorder(record_name);

  const harness::SchemeKind kinds[] = {
      harness::SchemeKind::kDive, harness::SchemeKind::kO3,
      harness::SchemeKind::kEaar, harness::SchemeKind::kDds};

  util::TextTable map_table(std::string("(a) mAP on ") +
                            data::to_string(spec.kind));
  map_table.set_header(
      {"bandwidth", "DiVE", "O3", "EAAR", "DDS", "DiVE vs DDS"});
  util::TextTable rt_table(std::string("(b) mean response time (ms) on ") +
                           data::to_string(spec.kind));
  rt_table.set_header({"bandwidth", "DiVE", "O3", "EAAR", "DDS"});

  for (double mbps = 1.0; mbps <= 5.0; mbps += 1.0) {
    harness::NetworkScenario net;
    net.mbps = mbps;
    double maps[4] = {};
    double rts[4] = {};
    const std::string bw_tag =
        util::TextTable::fmt(mbps, 0) + "mbps";
    for (int k = 0; k < 4; ++k) {
      const auto r = harness::run_experiment(kinds[k], clips, net);
      maps[k] = r.map;
      rts[k] = r.mean_response_ms;
      std::string scheme = harness::to_string(kinds[k]);
      for (char& c : scheme) c = static_cast<char>(std::tolower(c));
      recorder.add(scheme + ".map." + bw_tag, r.map, "mAP");
      recorder.add(scheme + ".response_ms." + bw_tag, r.mean_response_ms,
                   "ms");
    }
    const std::string bw = util::TextTable::fmt(mbps, 0) + " Mbps";
    map_table.add_row(
        {bw, util::TextTable::fmt(maps[0], 3), util::TextTable::fmt(maps[1], 3),
         util::TextTable::fmt(maps[2], 3), util::TextTable::fmt(maps[3], 3),
         util::TextTable::fmt_pct(
             maps[3] > 0 ? (maps[0] - maps[3]) / maps[3] : 0.0, 1)});
    rt_table.add_row({bw, util::TextTable::fmt(rts[0], 1),
                      util::TextTable::fmt(rts[1], 1),
                      util::TextTable::fmt(rts[2], 1),
                      util::TextTable::fmt(rts[3], 1)});
  }
  std::printf("%s\n%s\n", map_table.to_string().c_str(),
              rt_table.to_string().c_str());
  recorder.write();
  return 0;
}

}  // namespace dive::bench
