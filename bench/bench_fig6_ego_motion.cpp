// Fig. 6: the non-zero motion-vector ratio eta separates stopped from
// moving ego vehicles. (a) CDFs of eta for the two classes; (b) eta over
// time on a stop-and-go clip vs. the ground-truth motion state.
#include <cstdio>

#include "bench_record.h"
#include "bench_util.h"
#include "codec/encoder.h"
#include "util/stats.h"

int main() {
  using namespace dive;
  bench::print_header(
      "Fig. 6: eta-based ego-motion judgement",
      "(a) >98% separation at eta = 0.15; (b) eta tracks stop-and-go truth");

  auto spec = bench::scaled(data::nuscenes_like(), 4, 72);
  spec.stop_and_go_fraction = 0.5;  // ensure both classes appear

  util::SampleSet eta_moving, eta_stopped;
  long correct = 0, total = 0;
  const double threshold = 0.15;

  for (int c = 0; c < spec.clip_count; ++c) {
    const auto clip = data::generate_clip(spec, c);
    codec::Encoder enc({.width = spec.width, .height = spec.height});
    for (const auto& rec : clip.frames) {
      const auto field = enc.analyze_motion(rec.image);
      enc.encode(rec.image, 26, nullptr, field.empty() ? nullptr : &field);
      if (field.empty()) continue;
      const double eta = field.nonzero_ratio();
      const bool truly_moving = rec.ego.speed >= 0.5;
      (truly_moving ? eta_moving : eta_stopped).add(eta);
      if ((eta > threshold) == truly_moving) ++correct;
      ++total;
    }
  }

  util::TextTable cdf("Fig. 6(a): CDF of eta per motion state");
  cdf.set_header({"eta", "CDF stopped", "CDF moving"});
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    cdf.add_row({util::TextTable::fmt(x, 1),
                 eta_stopped.empty()
                     ? "-"
                     : util::TextTable::fmt(eta_stopped.cdf_at(x), 3),
                 eta_moving.empty()
                     ? "-"
                     : util::TextTable::fmt(eta_moving.cdf_at(x), 3)});
  }
  std::printf("%s\n", cdf.to_string().c_str());
  std::printf("judgement accuracy at eta > %.2f: %.1f%% (%ld frames; paper: >98%%)\n\n",
              threshold, 100.0 * correct / std::max(1L, total), total);

  bench::BenchRecorder recorder("fig6_ego_motion");
  recorder.add("judgement_accuracy",
               100.0 * correct / std::max(1L, total), "%");
  recorder.add("frames_judged", static_cast<double>(total), "count");
  if (!eta_stopped.empty())
    recorder.add("eta_stopped.p90", eta_stopped.quantile(0.90), "ratio");
  if (!eta_moving.empty())
    recorder.add("eta_moving.p10", eta_moving.quantile(0.10), "ratio");
  recorder.write();

  // (b) eta trace on one stop-and-go clip.
  auto trace_spec = spec;
  trace_spec.stop_and_go_fraction = 1.0;
  trace_spec.turning_fraction = 0.0;
  const auto clip = data::generate_clip(trace_spec, 1);
  codec::Encoder enc({.width = spec.width, .height = spec.height});
  util::TextTable trace("Fig. 6(b): eta over time (stop-and-go clip)");
  trace.set_header({"t (s)", "eta", "judged", "truth"});
  for (const auto& rec : clip.frames) {
    const auto field = enc.analyze_motion(rec.image);
    enc.encode(rec.image, 26, nullptr, field.empty() ? nullptr : &field);
    if (field.empty()) continue;
    const double eta = field.nonzero_ratio();
    if (static_cast<int>(rec.timestamp * spec.fps) % 3 != 0) continue;
    trace.add_row({util::TextTable::fmt(rec.timestamp, 2),
                   util::TextTable::fmt(eta, 3),
                   eta > threshold ? "moving" : "stopped",
                   rec.ego.speed >= 0.5 ? "moving" : "stopped"});
  }
  std::printf("%s\n", trace.to_string().c_str());
  return 0;
}
