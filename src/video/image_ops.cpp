#include "video/image_ops.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "video/sse_kernels.h"

namespace dive::video {

std::uint64_t plane_sse(const Plane& a, const Plane& b) {
  if (a.width != b.width || a.height != b.height)
    throw std::invalid_argument("plane_sse: dimension mismatch");
  if (a.data.empty()) return 0;
  return sse_u8_fn()(a.data.data(), b.data.data(), a.data.size());
}

double plane_mse(const Plane& a, const Plane& b) {
  // Integer SSE then one division: squared byte differences are exact in
  // u64, so this is bit-identical to the old double accumulation (which
  // was itself exact — the sum stays far below 2^53) on every kernel.
  if (a.width != b.width || a.height != b.height)
    throw std::invalid_argument("plane_mse: dimension mismatch");
  if (a.data.empty()) return 0.0;
  return static_cast<double>(plane_sse(a, b)) /
         static_cast<double>(a.data.size());
}

namespace {
double mse_to_psnr(double mse) {
  if (mse <= 1e-12) return 100.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}
}  // namespace

double psnr_y(const Frame& a, const Frame& b) {
  return mse_to_psnr(plane_mse(a.y, b.y));
}

double psnr_yuv(const Frame& a, const Frame& b) {
  const double total = static_cast<double>(a.y.size() + a.u.size() + a.v.size());
  const double mse = (plane_mse(a.y, b.y) * static_cast<double>(a.y.size()) +
                      plane_mse(a.u, b.u) * static_cast<double>(a.u.size()) +
                      plane_mse(a.v, b.v) * static_cast<double>(a.v.size())) /
                     total;
  return mse_to_psnr(mse);
}

double mean_abs_diff_y(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height())
    throw std::invalid_argument("mean_abs_diff_y: dimension mismatch");
  if (a.y.data.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.y.data.size(); ++i) {
    acc += std::abs(static_cast<int>(a.y.data[i]) - static_cast<int>(b.y.data[i]));
  }
  return acc / static_cast<double>(a.y.data.size());
}

double region_mean(const Plane& p, int x0, int y0, int x1, int y1) {
  x0 = std::clamp(x0, 0, p.width);
  x1 = std::clamp(x1, 0, p.width);
  y0 = std::clamp(y0, 0, p.height);
  y1 = std::clamp(y1, 0, p.height);
  if (x1 <= x0 || y1 <= y0) return 0.0;
  double acc = 0.0;
  for (int y = y0; y < y1; ++y)
    for (int x = x0; x < x1; ++x) acc += p.at(x, y);
  return acc / (static_cast<double>(x1 - x0) * (y1 - y0));
}

void draw_box(Frame& frame, const geom::Box& box, std::uint8_t luma) {
  const auto clipped = box.clipped(frame.width(), frame.height());
  const int x0 = static_cast<int>(clipped.x0);
  const int y0 = static_cast<int>(clipped.y0);
  const int x1 = std::max(x0, static_cast<int>(clipped.x1) - 1);
  const int y1 = std::max(y0, static_cast<int>(clipped.y1) - 1);
  if (clipped.empty()) return;
  for (int x = x0; x <= x1; ++x) {
    frame.y.at(x, y0) = luma;
    frame.y.at(x, y1) = luma;
  }
  for (int y = y0; y <= y1; ++y) {
    frame.y.at(x0, y) = luma;
    frame.y.at(x1, y) = luma;
  }
}

std::string to_pgm(const Plane& p) {
  std::ostringstream os;
  os << "P5\n" << p.width << " " << p.height << "\n255\n";
  os.write(reinterpret_cast<const char*>(p.data.data()),
           static_cast<std::streamsize>(p.data.size()));
  return os.str();
}

}  // namespace dive::video
