// Procedural 3-D driving scene: textured ground plane with lane markings,
// roadside buildings, parked/moving cars, and pedestrians. The renderer
// ray-casts this model to produce the synthetic stand-in for the
// nuScenes / RobotCar / KITTI footage the paper evaluates on (see
// DESIGN.md, substitution table).
//
// Object classes carry distinctive chroma signatures that the edge
// detector keys on (src/edge/detector.h); codec quantization genuinely
// erodes those signatures, which is what makes AP respond to encoding
// quality the way the paper's DNN does.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "geom/vec.h"
#include "util/rng.h"
#include "video/trajectory.h"

namespace dive::video {

enum class ObjectClass : std::uint8_t { kCar = 0, kPedestrian = 1, kBuilding = 2 };

/// Number of *detectable* classes (car, pedestrian).
constexpr int kNumDetectableClasses = 2;

const char* to_string(ObjectClass cls);

/// An oriented box standing on the ground plane, following an ObjectTrack.
struct SceneObject {
  ObjectClass cls = ObjectClass::kCar;
  geom::Vec3 half;        ///< half extents: x (width), y (height), z (length)
  ObjectTrack track;
  std::uint32_t appearance_seed = 0;  ///< texture/body-tone variation

  /// Object center in world coordinates at time t (y-down: center sits at
  /// -half.y so the box rests on the ground plane Y = 0).
  [[nodiscard]] geom::Vec3 center_at(double t) const {
    const geom::Vec2 p = track.position_at(t);
    return {p.x, -half.y, p.y};
  }
  [[nodiscard]] double yaw_at(double t) const { return track.heading_at(t); }
};

/// Scripted global luma step: while t is inside [enter_t, exit_t) the
/// frame-wide illumination is multiplied by luma_scale. Models tunnel
/// entry/exit — the entry and exit edges are the two luma steps the
/// encoder's average-luma scene-change detection must catch.
struct TunnelSegment {
  double enter_t = 0.0;
  double exit_t = 0.0;
  double luma_scale = 0.22;
};

/// Composable hostile-condition models layered over the base world
/// (DESIGN.md §16). Defaults are a no-op: with luma_scale == 1 and zero
/// attenuation/tunnels the rendered bytes are bit-identical to a build
/// without the conditions layer.
struct SceneConditions {
  /// Global illumination scale: 1 = clean daylight, ~0.4 = night. Also
  /// compresses chroma contrast toward neutral, eroding the detector's
  /// chroma keys the way low light erodes a real DNN's features.
  double luma_scale = 1.0;
  /// Depth-dependent contrast attenuation (fog/rain haze): per-meter
  /// extinction in [0, 1]; visibility at depth d is exp(-attenuation*d)
  /// and shading blends toward fog_luma / neutral chroma. Sky is treated
  /// as infinitely far (fully hazed).
  double fog_attenuation = 0.0;
  double fog_luma = 150.0;  ///< haze tone blended in by the attenuation
  /// Scripted luma steps (tunnels), applied multiplicatively on top of
  /// luma_scale. Kept sorted by the caller; segments must not overlap.
  std::vector<TunnelSegment> tunnels;

  /// Effective global luma scale at simulation time t.
  [[nodiscard]] double luma_scale_at(double t) const {
    double s = luma_scale;
    for (const TunnelSegment& seg : tunnels)
      if (t >= seg.enter_t && t < seg.exit_t) s *= seg.luma_scale;
    return s;
  }
};

/// Road/texture parameters shared by the material shaders.
struct SceneParams {
  double road_half_width = 6.0;   ///< meters; |x| < this is asphalt
  double lane_width = 3.5;
  double building_band_near = 8.0;
  double building_band_far = 18.0;
  double luma_noise_amplitude = 1.5;  ///< per-pixel sensor noise (DN)
  double texture_scale = 0.35;        ///< meters per texture-noise cell
  /// Fraction of the ground with suppressed texture (plain patches that
  /// yield the noisy motion vectors called out in Sec. II-C).
  double plain_patch_fraction = 0.35;
  /// Hostile-conditions layer (night/fog/tunnel); defaults are a no-op.
  SceneConditions conditions;
};

/// Rejects out-of-domain knobs with std::invalid_argument: negative
/// noise amplitude, attenuation outside [0, 1], non-positive texture or
/// luma scales. Called by the Scene constructor so an invalid world can
/// never be rendered.
void validate(const SceneParams& params);

class Scene {
 public:
  explicit Scene(SceneParams params = {}) : params_(params) {
    validate(params_);
  }

  void add_object(SceneObject obj) { objects_.push_back(std::move(obj)); }

  [[nodiscard]] const std::vector<SceneObject>& objects() const {
    return objects_;
  }
  [[nodiscard]] const SceneParams& params() const { return params_; }

  /// Populates roadside buildings over z in [z_min, z_max].
  void add_buildings(double z_min, double z_max, util::Rng& rng);

  /// Adds `count` parked cars on the road shoulders over the z range.
  void add_parked_cars(int count, double z_min, double z_max, util::Rng& rng);

  /// Adds `count` cars driving in lanes (mixed directions/speeds).
  void add_moving_cars(int count, double z_min, double z_max, util::Rng& rng);

  /// Adds `count` pedestrians on sidewalks / crossing the road.
  void add_pedestrians(int count, double z_min, double z_max, util::Rng& rng);

 private:
  SceneParams params_;
  std::vector<SceneObject> objects_;
};

}  // namespace dive::video
