// Procedural 3-D driving scene: textured ground plane with lane markings,
// roadside buildings, parked/moving cars, and pedestrians. The renderer
// ray-casts this model to produce the synthetic stand-in for the
// nuScenes / RobotCar / KITTI footage the paper evaluates on (see
// DESIGN.md, substitution table).
//
// Object classes carry distinctive chroma signatures that the edge
// detector keys on (src/edge/detector.h); codec quantization genuinely
// erodes those signatures, which is what makes AP respond to encoding
// quality the way the paper's DNN does.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec.h"
#include "util/rng.h"
#include "video/trajectory.h"

namespace dive::video {

enum class ObjectClass : std::uint8_t { kCar = 0, kPedestrian = 1, kBuilding = 2 };

/// Number of *detectable* classes (car, pedestrian).
constexpr int kNumDetectableClasses = 2;

const char* to_string(ObjectClass cls);

/// An oriented box standing on the ground plane, following an ObjectTrack.
struct SceneObject {
  ObjectClass cls = ObjectClass::kCar;
  geom::Vec3 half;        ///< half extents: x (width), y (height), z (length)
  ObjectTrack track;
  std::uint32_t appearance_seed = 0;  ///< texture/body-tone variation

  /// Object center in world coordinates at time t (y-down: center sits at
  /// -half.y so the box rests on the ground plane Y = 0).
  [[nodiscard]] geom::Vec3 center_at(double t) const {
    const geom::Vec2 p = track.position_at(t);
    return {p.x, -half.y, p.y};
  }
  [[nodiscard]] double yaw_at(double t) const { return track.heading_at(t); }
};

/// Road/texture parameters shared by the material shaders.
struct SceneParams {
  double road_half_width = 6.0;   ///< meters; |x| < this is asphalt
  double lane_width = 3.5;
  double building_band_near = 8.0;
  double building_band_far = 18.0;
  double luma_noise_amplitude = 1.5;  ///< per-pixel sensor noise (DN)
  double texture_scale = 0.35;        ///< meters per texture-noise cell
  /// Fraction of the ground with suppressed texture (plain patches that
  /// yield the noisy motion vectors called out in Sec. II-C).
  double plain_patch_fraction = 0.35;
};

class Scene {
 public:
  explicit Scene(SceneParams params = {}) : params_(params) {}

  void add_object(SceneObject obj) { objects_.push_back(std::move(obj)); }

  [[nodiscard]] const std::vector<SceneObject>& objects() const {
    return objects_;
  }
  [[nodiscard]] const SceneParams& params() const { return params_; }

  /// Populates roadside buildings over z in [z_min, z_max].
  void add_buildings(double z_min, double z_max, util::Rng& rng);

  /// Adds `count` parked cars on the road shoulders over the z range.
  void add_parked_cars(int count, double z_min, double z_max, util::Rng& rng);

  /// Adds `count` cars driving in lanes (mixed directions/speeds).
  void add_moving_cars(int count, double z_min, double z_max, util::Rng& rng);

  /// Adds `count` pedestrians on sidewalks / crossing the road.
  void add_pedestrians(int count, double z_min, double z_max, util::Rng& rng);

 private:
  SceneParams params_;
  std::vector<SceneObject> objects_;
};

}  // namespace dive::video
