#include "video/renderer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dive::video {

void validate(const RenderOptions& options) {
  if (options.min_annotation_pixels < 0)
    throw std::invalid_argument(
        "RenderOptions: negative min_annotation_pixels");
  if (options.rain_streak_density < 0.0 || options.rain_streak_density > 1.0)
    throw std::invalid_argument(
        "RenderOptions: rain_streak_density outside [0, 1]");
  if (options.rain_streak_luma < 0.0)
    throw std::invalid_argument("RenderOptions: negative rain_streak_luma");
}

namespace {

using geom::Vec2;
using geom::Vec3;

// ---------------------------------------------------------------------
// Deterministic procedural textures (value noise on a hashed lattice).
// ---------------------------------------------------------------------

std::uint32_t hash_u32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x7FEB352DU;
  x ^= x >> 15;
  x *= 0x846CA68BU;
  x ^= x >> 16;
  return x;
}

std::uint32_t hash2(std::int32_t x, std::int32_t y, std::uint32_t seed) {
  return hash_u32(static_cast<std::uint32_t>(x) * 0x8DA6B343U ^
                  static_cast<std::uint32_t>(y) * 0xD8163841U ^ seed);
}

/// Uniform [0,1) from a lattice cell.
double lattice(std::int32_t x, std::int32_t y, std::uint32_t seed) {
  return static_cast<double>(hash2(x, y, seed)) / 4294967296.0;
}

/// Bilinear value noise in [0,1); `scale` is meters per cell.
double value_noise(double x, double y, double scale, std::uint32_t seed) {
  const double fx = x / scale;
  const double fy = y / scale;
  const auto ix = static_cast<std::int32_t>(std::floor(fx));
  const auto iy = static_cast<std::int32_t>(std::floor(fy));
  const double tx = fx - std::floor(fx);
  const double ty = fy - std::floor(fy);
  const double v00 = lattice(ix, iy, seed);
  const double v10 = lattice(ix + 1, iy, seed);
  const double v01 = lattice(ix, iy + 1, seed);
  const double v11 = lattice(ix + 1, iy + 1, seed);
  const double a = v00 * (1.0 - tx) + v10 * tx;
  const double b = v01 * (1.0 - tx) + v11 * tx;
  return a * (1.0 - ty) + b * ty;
}

double fract(double x) { return x - std::floor(x); }

std::uint8_t clamp_u8(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

struct Yuv {
  double y = 0.0, u = 128.0, v = 128.0;
};

// ---------------------------------------------------------------------
// Materials. Chroma signatures: cars push U up (detector key), pedestrians
// push V up; everything else stays within +-10 of neutral 128.
// ---------------------------------------------------------------------

Yuv shade_ground(const SceneParams& p, double wx, double wz) {
  Yuv out;
  // Plain-patch gate: low-frequency noise decides where the asphalt is
  // featureless (those areas produce the noisy MVs the paper discusses).
  const double gate = value_noise(wx, wz, 9.0, 0xA11CE5u);
  const double strength =
      gate < p.plain_patch_fraction ? 0.12 : 0.55 + 0.45 * gate;
  const double tex = value_noise(wx, wz, p.texture_scale, 0x50ADu) - 0.5;

  if (std::abs(wx) < p.road_half_width) {
    out.y = 74.0 + 52.0 * tex * strength;
    // Dashed lane markings at x = 0 and +-lane_width.
    for (double lane_x : {-p.lane_width, 0.0, p.lane_width}) {
      if (std::abs(wx - lane_x) < 0.09 && fract(wz / 3.0) < 0.45) {
        out.y = 205.0 + 30.0 * tex;
      }
    }
    out.u = 128.0 + 10.0 * tex;
    out.v = 128.0 + 8.0 * tex;
  } else {
    // Sidewalk / verge: brighter, slightly green.
    const double tex2 = value_noise(wx, wz, 0.6, 0x51DEu) - 0.5;
    out.y = 108.0 + 48.0 * tex2 * (0.3 + 0.7 * strength);
    out.u = 121.0 + 8.0 * tex2;
    out.v = 123.0 + 8.0 * tex2;
  }
  return out;
}

Yuv shade_sky(Vec3 dir) {
  Yuv out;
  const double up = std::clamp(-dir.y, 0.0, 1.0);  // y-down: up is -y
  out.y = 232.0 - 55.0 * up;
  out.u = 133.0;
  out.v = 122.0;
  return out;
}

Yuv shade_building(std::uint32_t seed, Vec3 local, Vec3 half) {
  Yuv out;
  const double base = 80.0 + 50.0 * lattice(0, 0, seed);
  // Window grid keyed to the face's in-plane coordinates. Spacing varies
  // per building and every window cell gets its own brightness: a
  // perfectly periodic facade would let block matching lock onto the
  // wrong window (a one-period shift), fabricating a coherent phantom
  // motion field — real facades are not that regular.
  const bool x_face = std::abs(std::abs(local.x) - half.x) < 1e-6;
  const double uu = x_face ? local.z : local.x;
  const double vv = -local.y;  // height above ground
  const double period_u = 1.8 + 1.4 * lattice(3, 0, seed);
  const double period_v = 2.3 + 1.0 * lattice(4, 0, seed);
  const auto iu = static_cast<std::int32_t>(std::floor(uu / period_u));
  const auto iv = static_cast<std::int32_t>(std::floor(vv / period_v));
  const bool window = fract(uu / period_u) > 0.35 &&
                      fract(uu / period_u) < 0.8 &&
                      fract(vv / period_v) > 0.3 && fract(vv / period_v) < 0.75;
  const double cell_tone = 60.0 * (lattice(iu, iv, seed ^ 0x77AAu) - 0.5);
  const double tex = value_noise(uu, vv, 0.3, seed ^ 0xB11Du) - 0.5;
  out.y = (window ? base - 45.0 + cell_tone : base + 25.0) + 18.0 * tex;
  out.u = 128.0 + 9.0 * (lattice(1, 0, seed) - 0.5);
  out.v = 128.0 + 9.0 * (lattice(2, 0, seed) - 0.5);
  return out;
}

Yuv shade_car(std::uint32_t seed, Vec3 local, Vec3 half) {
  Yuv out;
  const double body = 70.0 + 120.0 * lattice(0, 1, seed);
  const double h = -local.y;  // height above ground within [0, 2*half.y]
  const double window_lo = 2.0 * half.y * 0.55;
  const double window_hi = 2.0 * half.y * 0.9;
  const bool window_band = h > window_lo && h < window_hi;
  const bool x_face = std::abs(std::abs(local.x) - half.x) < 1e-6;
  const double uu = x_face ? local.z : local.x;
  const double tex = value_noise(uu, h, 0.22, seed ^ 0xCA3u) - 0.5;
  out.y = (window_band ? 48.0 : body) + 26.0 * tex;
  // Car chroma key: +U excess with texture — the margin over the detector
  // threshold is deliberately moderate so codec quantization genuinely
  // erodes detectability (Fig. 12's AP-vs-QP knee).
  out.u = 160.0 + 18.0 * tex;
  out.v = 119.0 + 8.0 * tex;
  return out;
}

Yuv shade_pedestrian(std::uint32_t seed, Vec3 local, Vec3 half) {
  Yuv out;
  const double h = -local.y;
  const bool head = h > 2.0 * half.y * 0.82;
  const double uu = local.x + local.z;
  const double stripes =
      value_noise(uu * 3.0, h * 2.0, 0.25, seed ^ 0x9EDu) - 0.5;
  out.y = (head ? 150.0 : 95.0) + 52.0 * stripes;
  // Pedestrian chroma key: +V excess, same moderate-margin rationale as
  // the car key.
  out.u = 119.0 + 8.0 * stripes;
  out.v = 163.0 + 16.0 * stripes;
  return out;
}

// ---------------------------------------------------------------------
// Geometry helpers.
// ---------------------------------------------------------------------

struct ObjectPose {
  Vec3 center;
  double cos_yaw = 1.0;
  double sin_yaw = 0.0;
  Vec3 half;
};

/// Ray/oriented-box intersection via slab test in the box frame.
/// Returns hit distance and the local hit point.
bool ray_obb(const ObjectPose& obb, Vec3 origin, Vec3 dir, double& t_hit,
             Vec3& local_hit) {
  // World -> box-local (rotate by -yaw about y).
  const Vec3 rel = origin - obb.center;
  const double c = obb.cos_yaw, s = obb.sin_yaw;
  const Vec3 o{c * rel.x - s * rel.z, rel.y, s * rel.x + c * rel.z};
  const Vec3 d{c * dir.x - s * dir.z, dir.y, s * dir.x + c * dir.z};

  double t0 = 1e-4;
  double t1 = std::numeric_limits<double>::infinity();
  const double od[3] = {o.x, o.y, o.z};
  const double dd[3] = {d.x, d.y, d.z};
  const double hh[3] = {obb.half.x, obb.half.y, obb.half.z};
  for (int a = 0; a < 3; ++a) {
    if (std::abs(dd[a]) < 1e-12) {
      if (std::abs(od[a]) > hh[a]) return false;
      continue;
    }
    double near = (-hh[a] - od[a]) / dd[a];
    double far = (hh[a] - od[a]) / dd[a];
    if (near > far) std::swap(near, far);
    t0 = std::max(t0, near);
    t1 = std::min(t1, far);
    if (t0 > t1) return false;
  }
  t_hit = t0;
  local_hit = {o.x + d.x * t0, o.y + d.y * t0, o.z + d.z * t0};
  // Snap the dominant axis exactly onto the face so shaders can detect it.
  double best = -1.0;
  int axis = 0;
  const double lv[3] = {local_hit.x, local_hit.y, local_hit.z};
  for (int a = 0; a < 3; ++a) {
    const double closeness = std::abs(std::abs(lv[a]) - hh[a]);
    if (best < 0.0 || closeness < best) {
      best = closeness;
      axis = a;
    }
  }
  if (axis == 0) local_hit.x = std::copysign(hh[0], local_hit.x);
  if (axis == 1) local_hit.y = std::copysign(hh[1], local_hit.y);
  if (axis == 2) local_hit.z = std::copysign(hh[2], local_hit.z);
  return true;
}

constexpr int kTileShift = 5;  // 32-pixel screen tiles for object culling

}  // namespace

RenderResult Renderer::render(const Scene& scene, double t,
                              const geom::CameraPose& pose,
                              std::uint64_t noise_seed) const {
  const int W = camera_.width();
  const int H = camera_.height();
  RenderResult result;
  result.frame = Frame(W, H);

  const geom::Mat3 cam_to_world = pose.camera_to_world();
  const Vec3 origin = pose.position;

  // Resolve object poses once and build per-tile candidate lists.
  const auto& objects = scene.objects();
  std::vector<ObjectPose> poses(objects.size());
  const int tiles_x = (W + (1 << kTileShift) - 1) >> kTileShift;
  const int tiles_y = (H + (1 << kTileShift) - 1) >> kTileShift;
  std::vector<std::vector<std::uint16_t>> tile_objects(
      static_cast<std::size_t>(tiles_x) * tiles_y);

  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& obj = objects[i];
    ObjectPose& op = poses[i];
    op.center = obj.center_at(t);
    const double yaw = obj.yaw_at(t);
    op.cos_yaw = std::cos(yaw);
    op.sin_yaw = std::sin(yaw);
    op.half = obj.half;

    // Conservative screen bound from the 8 corners.
    double x0 = 1e18, y0 = 1e18, x1 = -1e18, y1 = -1e18;
    bool any_front = false, any_behind = false;
    for (int cx = -1; cx <= 1; cx += 2)
      for (int cy = -1; cy <= 1; cy += 2)
        for (int cz = -1; cz <= 1; cz += 2) {
          // Box-local corner -> world (rotate by +yaw).
          const Vec3 lc{cx * obj.half.x, cy * obj.half.y, cz * obj.half.z};
          const Vec3 wc{op.center.x + op.cos_yaw * lc.x + op.sin_yaw * lc.z,
                        op.center.y + lc.y,
                        op.center.z - op.sin_yaw * lc.x + op.cos_yaw * lc.z};
          const Vec3 pc = pose.world_to_camera(wc);
          if (pc.z <= 0.1) {
            any_behind = true;
            continue;
          }
          any_front = true;
          const Vec2 pix = camera_.to_pixel(
              {camera_.focal() * pc.x / pc.z, camera_.focal() * pc.y / pc.z});
          x0 = std::min(x0, pix.x);
          y0 = std::min(y0, pix.y);
          x1 = std::max(x1, pix.x);
          y1 = std::max(y1, pix.y);
        }
    if (!any_front) continue;  // fully behind the camera
    if (any_behind) {
      // Straddles the near plane: conservatively cover the screen.
      x0 = 0; y0 = 0; x1 = W; y1 = H;
    }
    const int tx0 = std::clamp(static_cast<int>(x0) >> kTileShift, 0, tiles_x - 1);
    const int ty0 = std::clamp(static_cast<int>(y0) >> kTileShift, 0, tiles_y - 1);
    const int tx1 = std::clamp(static_cast<int>(x1) >> kTileShift, 0, tiles_x - 1);
    const int ty1 = std::clamp(static_cast<int>(y1) >> kTileShift, 0, tiles_y - 1);
    if (x1 < 0 || y1 < 0 || x0 >= W || y0 >= H) continue;
    for (int ty = ty0; ty <= ty1; ++ty)
      for (int tx = tx0; tx <= tx1; ++tx)
        tile_objects[static_cast<std::size_t>(ty) * tiles_x + tx].push_back(
            static_cast<std::uint16_t>(i));
  }

  // Per-object visibility accumulators.
  struct Accum {
    int count = 0;
    double x0 = 1e18, y0 = 1e18, x1 = -1e18, y1 = -1e18;
    double depth_sum = 0.0;
  };
  std::vector<Accum> accum(objects.size());

  const auto frame_noise =
      static_cast<std::uint32_t>(noise_seed ^ (noise_seed >> 32));
  const SceneParams& sp = scene.params();

  // Hostile-conditions layer (DESIGN.md §16). All branches below are
  // gated so the default (clear daylight) render is bit-identical to a
  // build without the layer.
  const SceneConditions& cond = sp.conditions;
  const double cond_luma = cond.luma_scale_at(t);
  const bool dim_on = cond_luma != 1.0;
  const bool fog_on = cond.fog_attenuation > 0.0;
  // Low light compresses chroma toward neutral as well: the detector's
  // chroma keys erode with illumination, like a real DNN's features.
  const double chroma_keep = 0.35 + 0.65 * std::min(1.0, cond_luma);

  // Rain droplet streaks: one candidate streak per 8-pixel column band,
  // activated and positioned by a pure hash of the frame noise seed, so
  // every frame gets a fresh fast-falling pattern deterministically.
  const bool rain_on = options_.rain_streak_density > 0.0;
  std::vector<std::int32_t> streak_y0;
  std::vector<std::int32_t> streak_len;
  if (rain_on) {
    streak_y0.assign(static_cast<std::size_t>(W), -1);
    streak_len.assign(static_cast<std::size_t>(W), 0);
    for (int cell = 0; cell * 8 < W; ++cell) {
      const std::uint32_t h = hash2(cell, 911, frame_noise ^ 0x9A1Du);
      if (static_cast<double>(h & 0xFFFFu) / 65536.0 >=
          options_.rain_streak_density)
        continue;
      const int x = cell * 8 + static_cast<int>((h >> 16) & 7u);
      if (x >= W) continue;
      const std::uint32_t h2v = hash2(cell, 912, frame_noise ^ 0x9A1Du);
      streak_y0[static_cast<std::size_t>(x)] =
          static_cast<std::int32_t>(h2v % static_cast<std::uint32_t>(H));
      streak_len[static_cast<std::size_t>(x)] = static_cast<std::int32_t>(
          H / 6 + static_cast<int>((h2v >> 8) % static_cast<std::uint32_t>(
                                       std::max(1, H / 4))));
    }
  }

  std::vector<Yuv> row_yuv(static_cast<std::size_t>(W));
  for (int py = 0; py < H; ++py) {
    const auto* tile_row =
        &tile_objects[static_cast<std::size_t>(py >> kTileShift) * tiles_x];
    for (int px = 0; px < W; ++px) {
      const Vec2 centered = camera_.to_centered({px + 0.5, py + 0.5});
      const Vec3 dir_cam{centered.x / camera_.focal(),
                         centered.y / camera_.focal(), 1.0};
      const Vec3 dir = cam_to_world * dir_cam;

      double best_t = std::numeric_limits<double>::infinity();
      int hit_obj = -1;
      Vec3 hit_local;

      for (std::uint16_t oi : tile_row[px >> kTileShift]) {
        double th;
        Vec3 lh;
        if (ray_obb(poses[oi], origin, dir, th, lh) && th < best_t) {
          best_t = th;
          hit_obj = oi;
          hit_local = lh;
        }
      }

      // Ground plane Y = 0 (camera is above ground: origin.y < 0).
      double ground_t = std::numeric_limits<double>::infinity();
      if (dir.y > 1e-9) ground_t = -origin.y / dir.y;

      Yuv sh;
      if (hit_obj >= 0 && best_t < ground_t) {
        const auto& obj = objects[static_cast<std::size_t>(hit_obj)];
        switch (obj.cls) {
          case ObjectClass::kCar:
            sh = shade_car(obj.appearance_seed, hit_local, obj.half);
            break;
          case ObjectClass::kPedestrian:
            sh = shade_pedestrian(obj.appearance_seed, hit_local, obj.half);
            break;
          case ObjectClass::kBuilding:
            sh = shade_building(obj.appearance_seed, hit_local, obj.half);
            break;
        }
        if (obj.cls != ObjectClass::kBuilding) {
          Accum& a = accum[static_cast<std::size_t>(hit_obj)];
          ++a.count;
          a.x0 = std::min(a.x0, static_cast<double>(px));
          a.y0 = std::min(a.y0, static_cast<double>(py));
          a.x1 = std::max(a.x1, px + 1.0);
          a.y1 = std::max(a.y1, py + 1.0);
          a.depth_sum += best_t;
        }
      } else if (ground_t < std::numeric_limits<double>::infinity()) {
        const double wx = origin.x + dir.x * ground_t;
        const double wz = origin.z + dir.z * ground_t;
        sh = shade_ground(sp, wx, wz);
      } else {
        sh = shade_sky(dir);
      }

      if (fog_on) {
        // Depth-dependent contrast attenuation toward the haze tone; sky
        // rays are infinitely far and fully hazed.
        const double depth =
            hit_obj >= 0 && best_t < ground_t ? best_t : ground_t;
        const double vis = std::isfinite(depth)
                               ? std::exp(-cond.fog_attenuation * depth)
                               : 0.0;
        sh.y = sh.y * vis + cond.fog_luma * (1.0 - vis);
        sh.u = sh.u * vis + 128.0 * (1.0 - vis);
        sh.v = sh.v * vis + 128.0 * (1.0 - vis);
      }
      if (dim_on) {
        sh.y *= cond_luma;
        sh.u = 128.0 + (sh.u - 128.0) * chroma_keep;
        sh.v = 128.0 + (sh.v - 128.0) * chroma_keep;
      }
      if (rain_on && streak_y0[static_cast<std::size_t>(px)] >= 0) {
        // Streaks sit on the lens: applied after fog/dimming, luma only,
        // fading along the streak. Row distance wraps so density stays
        // uniform over the frame.
        int d = py - streak_y0[static_cast<std::size_t>(px)];
        if (d < 0) d += H;
        const std::int32_t len = streak_len[static_cast<std::size_t>(px)];
        if (d < len)
          sh.y += options_.rain_streak_luma *
                  (1.0 - static_cast<double>(d) / static_cast<double>(len));
      }

      if (options_.sensor_noise) {
        const double n =
            (lattice(px, py, frame_noise) - 0.5) * 2.0 * sp.luma_noise_amplitude;
        sh.y += n;
      }
      result.frame.y.at(px, py) = clamp_u8(sh.y);
      row_yuv[static_cast<std::size_t>(px)] = sh;
    }
    // 4:2:0 chroma: average the two columns of each even row pair is
    // overkill; sample even rows/columns (co-sited top-left).
    if ((py & 1) == 0) {
      const int cy = py / 2;
      for (int cx = 0; cx < W / 2; ++cx) {
        const Yuv& s = row_yuv[static_cast<std::size_t>(cx) * 2];
        result.frame.u.at(cx, cy) = clamp_u8(s.u);
        result.frame.v.at(cx, cy) = clamp_u8(s.v);
      }
    }
  }

  for (std::size_t i = 0; i < objects.size(); ++i) {
    const Accum& a = accum[i];
    if (a.count < options_.min_annotation_pixels) continue;
    RenderedObject ro;
    ro.object_index = static_cast<int>(i);
    ro.cls = objects[i].cls;
    ro.pixel_box = {a.x0, a.y0, a.x1, a.y1};
    ro.pixel_count = a.count;
    ro.depth = a.depth_sum / a.count;
    result.objects.push_back(ro);
  }
  return result;
}

}  // namespace dive::video
