#include "video/imu.h"

namespace dive::video {

std::vector<ImuSample> synthesize_imu(const EgoTrajectory& trajectory,
                                      const ImuOptions& options,
                                      util::Rng& rng) {
  std::vector<ImuSample> out;
  const double dt = 1.0 / options.rate_hz;
  const double duration = trajectory.total_duration();
  out.reserve(static_cast<std::size_t>(duration / dt) + 1);
  constexpr double kGravity = 9.81;

  for (double t = 0.0; t <= duration; t += dt) {
    const EgoState st = trajectory.state_at(t);
    ImuSample s;
    s.timestamp = t;
    s.gyro = {st.pitch_rate + rng.gaussian(0.0, options.gyro_noise),
              st.yaw_rate + rng.gaussian(0.0, options.gyro_noise),
              rng.gaussian(0.0, options.gyro_noise)};
    // Camera frame, y-down: gravity reads +g on y; longitudinal accel on z;
    // centripetal (v * yaw_rate) on x.
    s.accel = {st.speed * st.yaw_rate + rng.gaussian(0.0, options.accel_noise),
               kGravity + rng.gaussian(0.0, options.accel_noise),
               st.accel + rng.gaussian(0.0, options.accel_noise)};
    out.push_back(s);
  }
  return out;
}

geom::Vec3 mean_gyro(const std::vector<ImuSample>& samples, double t0,
                     double t1) {
  geom::Vec3 acc;
  int n = 0;
  for (const auto& s : samples) {
    if (s.timestamp >= t0 && s.timestamp < t1) {
      acc += s.gyro;
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : geom::Vec3{};
}

}  // namespace dive::video
