// Ray-casting renderer: Scene + time + camera pose -> YUV420 frame with
// exact per-object pixel annotations.
//
// Per pixel, the renderer intersects the view ray with the ground plane
// and every oriented-box object whose projected screen bound covers the
// pixel's tile, shades the nearest hit with a procedural world- or
// object-anchored texture, and adds per-frame sensor noise. Textures are
// anchored in world space (ground/buildings) or object space (cars,
// pedestrians) so that codec block matching recovers the true projective
// motion field — the property all of DiVE's observations rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/pinhole_camera.h"
#include "video/frame.h"
#include "video/scene.h"

namespace dive::video {

/// Ground-truth record for one visible object in a rendered frame.
struct RenderedObject {
  int object_index = -1;        ///< index into Scene::objects()
  ObjectClass cls = ObjectClass::kCar;
  geom::Box pixel_box;          ///< tight box over actually visible pixels
  int pixel_count = 0;          ///< visible (unoccluded) pixels
  double depth = 0.0;           ///< mean hit depth, meters
};

struct RenderResult {
  Frame frame;
  std::vector<RenderedObject> objects;  ///< cars + pedestrians only
};

struct RenderOptions {
  /// Minimum visible pixels for an object to be annotated.
  int min_annotation_pixels = 30;
  /// Disable sensor noise (tests).
  bool sensor_noise = true;
  /// Rain droplet streaks (DESIGN.md §16): expected fraction of 8-pixel
  /// screen columns carrying a bright streak per frame, in [0, 1]. The
  /// streak layout is a pure hash of the per-frame noise seed, so renders
  /// stay deterministic and every frame gets a fresh (fast-falling)
  /// streak pattern. 0 disables (bit-identical to no rain layer).
  double rain_streak_density = 0.0;
  /// Luma lift at a streak's core (falls off over the streak length).
  double rain_streak_luma = 42.0;
};

/// Rejects out-of-domain render knobs with std::invalid_argument
/// (rain density outside [0, 1], negative annotation floor).
void validate(const RenderOptions& options);

class Renderer {
 public:
  Renderer(geom::PinholeCamera camera, RenderOptions options = {})
      : camera_(camera), options_(options) {
    validate(options_);
  }

  [[nodiscard]] const geom::PinholeCamera& camera() const { return camera_; }

  /// Renders the scene at simulation time `t` from `pose`. `noise_seed`
  /// varies per frame so sensor noise decorrelates across frames.
  [[nodiscard]] RenderResult render(const Scene& scene, double t,
                                    const geom::CameraPose& pose,
                                    std::uint64_t noise_seed) const;

 private:
  geom::PinholeCamera camera_;
  RenderOptions options_;
};

}  // namespace dive::video
