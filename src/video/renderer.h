// Ray-casting renderer: Scene + time + camera pose -> YUV420 frame with
// exact per-object pixel annotations.
//
// Per pixel, the renderer intersects the view ray with the ground plane
// and every oriented-box object whose projected screen bound covers the
// pixel's tile, shades the nearest hit with a procedural world- or
// object-anchored texture, and adds per-frame sensor noise. Textures are
// anchored in world space (ground/buildings) or object space (cars,
// pedestrians) so that codec block matching recovers the true projective
// motion field — the property all of DiVE's observations rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/pinhole_camera.h"
#include "video/frame.h"
#include "video/scene.h"

namespace dive::video {

/// Ground-truth record for one visible object in a rendered frame.
struct RenderedObject {
  int object_index = -1;        ///< index into Scene::objects()
  ObjectClass cls = ObjectClass::kCar;
  geom::Box pixel_box;          ///< tight box over actually visible pixels
  int pixel_count = 0;          ///< visible (unoccluded) pixels
  double depth = 0.0;           ///< mean hit depth, meters
};

struct RenderResult {
  Frame frame;
  std::vector<RenderedObject> objects;  ///< cars + pedestrians only
};

struct RenderOptions {
  /// Minimum visible pixels for an object to be annotated.
  int min_annotation_pixels = 30;
  /// Disable sensor noise (tests).
  bool sensor_noise = true;
};

class Renderer {
 public:
  Renderer(geom::PinholeCamera camera, RenderOptions options = {})
      : camera_(camera), options_(options) {}

  [[nodiscard]] const geom::PinholeCamera& camera() const { return camera_; }

  /// Renders the scene at simulation time `t` from `pose`. `noise_seed`
  /// varies per frame so sensor noise decorrelates across frames.
  [[nodiscard]] RenderResult render(const Scene& scene, double t,
                                    const geom::CameraPose& pose,
                                    std::uint64_t noise_seed) const;

 private:
  geom::PinholeCamera camera_;
  RenderOptions options_;
};

}  // namespace dive::video
