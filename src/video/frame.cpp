#include "video/frame.h"

// Frame is a plain value type; all behaviour lives in the header. This TU
// exists so the library has a stable home for future out-of-line helpers.
namespace dive::video {}
