#include "video/sse_kernels.h"

#include <algorithm>
#include <cstdlib>

#if !defined(DIVE_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIVE_SSE_X86 1
#include <immintrin.h>
#endif

#if !defined(DIVE_DISABLE_SIMD) && defined(__aarch64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIVE_SSE_NEON 1
#include <arm_neon.h>
#endif

namespace dive::video {

const char* to_string(SseKernel k) {
  switch (k) {
    case SseKernel::kScalar: return "scalar";
    case SseKernel::kSse2: return "sse2";
    case SseKernel::kAvx2: return "avx2";
    case SseKernel::kNeon: return "neon";
  }
  return "?";
}

std::uint64_t sse_u8_scalar(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    acc += static_cast<std::uint64_t>(d * d);
  }
  return acc;
}

namespace {

// The SIMD kernels accumulate squared differences in 32-bit lanes and
// drain into the u64 total every kBlockBytes input bytes. A 32-bit lane
// gains at most 4 * 255^2 = 260100 per 16 input bytes, so a block of
// 4096 vectors peaks at ~1.07e9 < 2^31 — no lane can overflow.
constexpr std::size_t kBlockBytes = 4096 * 16;

#if defined(DIVE_SSE_X86)

__attribute__((target("sse2"))) std::uint64_t sse_u8_sse2(
    const std::uint8_t* a, const std::uint8_t* b, std::size_t n) {
  std::uint64_t total = 0;
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  while (i + 16 <= n) {
    const std::size_t block_end = std::min(n, i + kBlockBytes);
    __m128i acc = _mm_setzero_si128();
    for (; i + 16 <= block_end; i += 16) {
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
      // |a - b| as u8 via saturating subtraction in both directions, then
      // widen to u16 and square-accumulate pairwise into i32 lanes
      // (PMADDWD on values <= 255 is exact; 2 * 255^2 fits i32 easily).
      const __m128i d =
          _mm_or_si128(_mm_subs_epu8(va, vb), _mm_subs_epu8(vb, va));
      const __m128i lo = _mm_unpacklo_epi8(d, zero);
      const __m128i hi = _mm_unpackhi_epi8(d, zero);
      acc = _mm_add_epi32(acc, _mm_madd_epi16(lo, lo));
      acc = _mm_add_epi32(acc, _mm_madd_epi16(hi, hi));
    }
    alignas(16) std::uint32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
    total += static_cast<std::uint64_t>(lanes[0]) + lanes[1] + lanes[2] +
             lanes[3];
  }
  for (; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    total += static_cast<std::uint64_t>(d * d);
  }
  return total;
}

__attribute__((target("avx2"))) std::uint64_t sse_u8_avx2(
    const std::uint8_t* a, const std::uint8_t* b, std::size_t n) {
  std::uint64_t total = 0;
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  while (i + 32 <= n) {
    const std::size_t block_end = std::min(n, i + kBlockBytes);
    __m256i acc = _mm256_setzero_si256();
    for (; i + 32 <= block_end; i += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i d =
          _mm256_or_si256(_mm256_subs_epu8(va, vb), _mm256_subs_epu8(vb, va));
      const __m256i lo = _mm256_unpacklo_epi8(d, zero);
      const __m256i hi = _mm256_unpackhi_epi8(d, zero);
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(lo, lo));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(hi, hi));
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (const std::uint32_t lane : lanes) total += lane;
  }
  // The scalar tail also covers 16..31 trailing bytes; exactness makes
  // the split irrelevant to the result.
  for (; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    total += static_cast<std::uint64_t>(d * d);
  }
  return total;
}

#endif  // DIVE_SSE_X86

#if defined(DIVE_SSE_NEON)

std::uint64_t sse_u8_neon(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  while (i + 16 <= n) {
    const std::size_t block_end = std::min(n, i + kBlockBytes);
    uint32x4_t acc = vdupq_n_u32(0);
    for (; i + 16 <= block_end; i += 16) {
      // VABD is exact on u8; VMULL squares into u16 (255^2 < 65536), and
      // VPADAL widens pairwise into the u32 accumulator.
      const uint8x16_t d = vabdq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
      const uint8x8_t dlo = vget_low_u8(d);
      const uint8x8_t dhi = vget_high_u8(d);
      acc = vpadalq_u16(acc, vmull_u8(dlo, dlo));
      acc = vpadalq_u16(acc, vmull_u8(dhi, dhi));
    }
    total += vaddlvq_u32(acc);
  }
  for (; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    total += static_cast<std::uint64_t>(d * d);
  }
  return total;
}

#endif  // DIVE_SSE_NEON

bool env_forces_scalar() {
  const char* e = std::getenv("DIVE_FORCE_SCALAR");
  if (e == nullptr || *e == '\0') return false;
  return !(e[0] == '0' && e[1] == '\0');
}

struct Resolved {
  SseKernel kind = SseKernel::kScalar;
  SseU8Fn fn = &sse_u8_scalar;
};

Resolved resolve() {
#if !defined(DIVE_DISABLE_SIMD)
  if (!env_forces_scalar()) {
#if defined(DIVE_SSE_X86)
    if (__builtin_cpu_supports("avx2")) return {SseKernel::kAvx2, &sse_u8_avx2};
    if (__builtin_cpu_supports("sse2")) return {SseKernel::kSse2, &sse_u8_sse2};
#elif defined(DIVE_SSE_NEON)
    return {SseKernel::kNeon, &sse_u8_neon};
#endif
  }
#endif
  return {};
}

const Resolved& resolved() {
  static const Resolved r = resolve();
  return r;
}

}  // namespace

SseKernel active_sse_kernel() { return resolved().kind; }

SseU8Fn sse_u8_fn() { return resolved().fn; }

}  // namespace dive::video
