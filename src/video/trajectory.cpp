#include "video/trajectory.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dive::video {

EgoTrajectory::EgoTrajectory(std::vector<MotionSegment> segments,
                             double camera_height, double initial_speed,
                             PitchWobble wobble)
    : camera_height_(camera_height), wobble_(wobble) {
  for (const auto& s : segments) total_duration_ += s.duration;

  // Forward-integrate the unicycle model at dt_ resolution.
  Sample cur{};
  cur.speed = std::max(0.0, initial_speed);
  samples_.reserve(static_cast<std::size_t>(total_duration_ / dt_) + 2);
  samples_.push_back(cur);

  double seg_t = 0.0;
  std::size_t seg_i = 0;
  const std::size_t steps = static_cast<std::size_t>(total_duration_ / dt_);
  for (std::size_t step = 0; step < steps; ++step) {
    while (seg_i < segments.size() && seg_t >= segments[seg_i].duration) {
      seg_t -= segments[seg_i].duration;
      ++seg_i;
    }
    const MotionSegment seg =
        seg_i < segments.size() ? segments[seg_i] : MotionSegment{};
    cur.accel = seg.accel;
    cur.yaw_rate = cur.speed > 1e-3 || seg.accel > 0.0 ? seg.yaw_rate : 0.0;
    // Integrate position with the state at the start of the step.
    cur.pos_xz.x += cur.speed * std::sin(cur.yaw) * dt_;
    cur.pos_xz.y += cur.speed * std::cos(cur.yaw) * dt_;
    cur.yaw += cur.yaw_rate * dt_;
    cur.speed = std::max(0.0, cur.speed + seg.accel * dt_);
    if (cur.speed == 0.0 && seg.accel <= 0.0) cur.accel = 0.0;
    seg_t += dt_;
    samples_.push_back(cur);
  }
}

EgoState EgoTrajectory::state_at(double t) const {
  EgoState st = base_state_at(t);
  if (vibration_.enabled()) {
    // High-frequency rotation jitter, not speed-gated (a parked robot
    // still shakes). Rates carry the analytic derivatives so the IMU
    // synthesis sees the vibration too.
    const double omega = 2.0 * std::numbers::pi * vibration_.frequency;
    st.pitch += vibration_.pitch_amplitude *
                std::sin(omega * t + vibration_.pitch_phase);
    st.pitch_rate += vibration_.pitch_amplitude * omega *
                     std::cos(omega * t + vibration_.pitch_phase);
    st.yaw +=
        vibration_.yaw_amplitude * std::sin(omega * t + vibration_.yaw_phase);
    st.yaw_rate += vibration_.yaw_amplitude * omega *
                   std::cos(omega * t + vibration_.yaw_phase);
  }
  return st;
}

EgoState EgoTrajectory::base_state_at(double t) const {
  t = std::clamp(t, 0.0, total_duration_);
  const double pos = t / dt_;
  const auto lo = std::min(static_cast<std::size_t>(pos), samples_.size() - 1);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  auto lerp = [frac](double a, double b) { return a * (1.0 - frac) + b * frac; };

  const Sample& a = samples_[lo];
  const Sample& b = samples_[hi];
  EgoState st;
  st.position = {lerp(a.pos_xz.x, b.pos_xz.x), -camera_height_,
                 lerp(a.pos_xz.y, b.pos_xz.y)};
  st.yaw = lerp(a.yaw, b.yaw);
  st.speed = lerp(a.speed, b.speed);
  st.yaw_rate = lerp(a.yaw_rate, b.yaw_rate);
  st.accel = lerp(a.accel, b.accel);

  // Pitch wobble rides on top, scaled by speed so a parked vehicle is
  // still. The wobble models road-surface excitation.
  const double speed_gate = std::min(1.0, st.speed / 3.0);
  const double omega = 2.0 * std::numbers::pi * wobble_.frequency;
  st.pitch = wobble_.amplitude * speed_gate * std::sin(omega * t + wobble_.phase);
  st.pitch_rate =
      wobble_.amplitude * speed_gate * omega * std::cos(omega * t + wobble_.phase);
  return st;
}

EgoTrajectory EgoTrajectory::straight(double speed, double duration,
                                      double camera_height) {
  return EgoTrajectory({{duration, 0.0, 0.0}}, camera_height, speed);
}

EgoTrajectory EgoTrajectory::stop_and_go(double speed, double drive_s,
                                         double brake_s, double dwell_s,
                                         double accel_s, double tail_s,
                                         double camera_height) {
  const double decel = brake_s > 0.0 ? -speed / brake_s : 0.0;
  const double accel = accel_s > 0.0 ? speed / accel_s : 0.0;
  return EgoTrajectory({{drive_s, 0.0, 0.0},
                        {brake_s, decel, 0.0},
                        {dwell_s, 0.0, 0.0},
                        {accel_s, accel, 0.0},
                        {tail_s, 0.0, 0.0}},
                       camera_height, speed);
}

EgoTrajectory EgoTrajectory::with_turn(double speed, double lead_s,
                                       double turn_deg, double turn_s,
                                       double tail_s, double camera_height) {
  const double yaw_rate =
      turn_s > 0.0 ? turn_deg * std::numbers::pi / 180.0 / turn_s : 0.0;
  return EgoTrajectory({{lead_s, 0.0, 0.0},
                        {turn_s, 0.0, yaw_rate},
                        {tail_s, 0.0, 0.0}},
                       camera_height, speed);
}

EgoTrajectory EgoTrajectory::parked(double duration, double camera_height) {
  return EgoTrajectory({{duration, 0.0, 0.0}}, camera_height, 0.0);
}

}  // namespace dive::video
