// Runtime-dispatched sum-of-squared-errors kernels for PSNR/MSE
// accumulation (video/image_ops.h).
//
// Same contract and dispatch scheme as codec/sad_kernels.h: the scalar
// kernel is the canonical reference and every SIMD variant must return
// the exact same integer sum for the same inputs (squared differences of
// u8 are integers, and the u64 accumulator cannot overflow for any
// realistic plane — 2^64 / 255^2 pixels is ~280 petapixels). Dispatch
// order: the DIVE_DISABLE_SIMD compile gate wins, then the
// DIVE_FORCE_SCALAR environment variable (any value other than "0"),
// then CPU detection (AVX2 > SSE2 on x86, NEON on AArch64), resolved
// once per process on first use.
//
// Kernels operate on contiguous byte spans: planes store their pixels
// densely, so PSNR over a plane is one call — no stride plumbing needed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dive::video {

/// Which concrete kernel backs sse_u8_fn() in this process.
enum class SseKernel : std::uint8_t { kScalar, kSse2, kAvx2, kNeon };

const char* to_string(SseKernel k);

/// Sum of squared differences between `n` bytes at `a` and `b`.
using SseU8Fn = std::uint64_t (*)(const std::uint8_t* a,
                                  const std::uint8_t* b, std::size_t n);

/// Canonical scalar kernel (the reference all SIMD paths must match).
std::uint64_t sse_u8_scalar(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n);

/// The kernel dispatch resolved for this process (see file comment).
SseKernel active_sse_kernel();

/// Function pointer matching active_sse_kernel().
SseU8Fn sse_u8_fn();

}  // namespace dive::video
