// Synthetic IMU aligned with the camera, mirroring the KITTI setup the
// paper uses to obtain rotation ground truth for the R-sampling
// experiments (Sec. III-B3, Fig. 7 and Fig. 10): 100 Hz three-axis
// angular velocity + linear acceleration, timestamped for exact
// synchronization with camera frames.
#pragma once

#include <vector>

#include "geom/vec.h"
#include "util/rng.h"
#include "video/trajectory.h"

namespace dive::video {

struct ImuSample {
  double timestamp = 0.0;   ///< seconds
  geom::Vec3 gyro;          ///< rad/s about camera x (pitch), y (yaw), z (roll)
  geom::Vec3 accel;         ///< m/s^2 in the camera frame (y-down => gravity +y)
};

struct ImuOptions {
  double rate_hz = 100.0;
  double gyro_noise = 0.002;   ///< rad/s std-dev
  double accel_noise = 0.05;   ///< m/s^2 std-dev
};

/// Samples the trajectory's angular velocity / acceleration at IMU rate.
std::vector<ImuSample> synthesize_imu(const EgoTrajectory& trajectory,
                                      const ImuOptions& options,
                                      util::Rng& rng);

/// Mean gyro reading over [t0, t1) — the ground-truth rotational speed for
/// a frame interval, matching how the paper integrates IMU between frames.
geom::Vec3 mean_gyro(const std::vector<ImuSample>& samples, double t0,
                     double t1);

}  // namespace dive::video
