#include "video/scene.h"

#include <cmath>

namespace dive::video {

void validate(const SceneParams& params) {
  if (params.luma_noise_amplitude < 0.0)
    throw std::invalid_argument("SceneParams: negative luma_noise_amplitude");
  if (params.texture_scale <= 0.0)
    throw std::invalid_argument("SceneParams: non-positive texture_scale");
  const SceneConditions& c = params.conditions;
  if (c.luma_scale <= 0.0)
    throw std::invalid_argument("SceneConditions: non-positive luma_scale");
  if (c.fog_attenuation < 0.0 || c.fog_attenuation > 1.0)
    throw std::invalid_argument(
        "SceneConditions: fog_attenuation outside [0, 1]");
  if (c.fog_luma < 0.0 || c.fog_luma > 255.0)
    throw std::invalid_argument("SceneConditions: fog_luma outside [0, 255]");
  for (const TunnelSegment& seg : c.tunnels) {
    if (seg.luma_scale <= 0.0)
      throw std::invalid_argument(
          "TunnelSegment: non-positive luma_scale");
    if (seg.exit_t <= seg.enter_t)
      throw std::invalid_argument("TunnelSegment: exit_t <= enter_t");
  }
}

const char* to_string(ObjectClass cls) {
  switch (cls) {
    case ObjectClass::kCar: return "car";
    case ObjectClass::kPedestrian: return "pedestrian";
    case ObjectClass::kBuilding: return "building";
  }
  return "?";
}

void Scene::add_buildings(double z_min, double z_max, util::Rng& rng) {
  for (int side = -1; side <= 1; side += 2) {
    double z = z_min + rng.uniform(0.0, 8.0);
    while (z < z_max) {
      const double depth = rng.uniform(6.0, 14.0);
      // Leave occasional gaps (cross streets).
      if (rng.chance(0.8)) {
        SceneObject b;
        b.cls = ObjectClass::kBuilding;
        const double height = rng.uniform(5.0, 16.0);
        const double width = rng.uniform(3.0, 6.0);
        b.half = {width / 2.0, height / 2.0, depth / 2.0};
        const double x = side * rng.uniform(params_.building_band_near + width,
                                            params_.building_band_far);
        b.track.base_xz = {x, z + depth / 2.0};
        b.track.heading = 0.0;
        b.appearance_seed = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
        objects_.push_back(b);
      }
      z += depth + rng.uniform(1.0, 6.0);
    }
  }
}

namespace {
SceneObject make_car(util::Rng& rng) {
  SceneObject c;
  c.cls = ObjectClass::kCar;
  c.half = {rng.uniform(0.85, 1.0), rng.uniform(0.7, 0.85),
            rng.uniform(2.0, 2.5)};
  c.appearance_seed = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
  return c;
}

SceneObject make_pedestrian(util::Rng& rng) {
  SceneObject p;
  p.cls = ObjectClass::kPedestrian;
  p.half = {rng.uniform(0.22, 0.3), rng.uniform(0.78, 0.92),
            rng.uniform(0.22, 0.3)};
  p.appearance_seed = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
  return p;
}
}  // namespace

void Scene::add_parked_cars(int count, double z_min, double z_max,
                            util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    SceneObject c = make_car(rng);
    const double side = rng.chance(0.5) ? 1.0 : -1.0;
    c.track.base_xz = {side * (params_.road_half_width - 1.2),
                       rng.uniform(z_min, z_max)};
    c.track.velocity_xz = {};
    c.track.heading = rng.chance(0.9) ? 0.0 : 3.14159265;
    objects_.push_back(c);
  }
}

void Scene::add_moving_cars(int count, double z_min, double z_max,
                            util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    SceneObject c = make_car(rng);
    const bool oncoming = rng.chance(0.4);
    const double lane_x = oncoming ? -params_.lane_width / 2.0 - 0.2
                                   : params_.lane_width / 2.0 + 0.2;
    const double speed = rng.uniform(4.0, 14.0) * (oncoming ? -1.0 : 1.0);
    c.track.base_xz = {lane_x + rng.uniform(-0.3, 0.3),
                       rng.uniform(z_min, z_max)};
    c.track.velocity_xz = {0.0, speed};
    objects_.push_back(c);
  }
}

void Scene::add_pedestrians(int count, double z_min, double z_max,
                            util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    SceneObject p = make_pedestrian(rng);
    const double side = rng.chance(0.5) ? 1.0 : -1.0;
    const double z = rng.uniform(z_min, z_max);
    if (rng.chance(0.25)) {
      // Road crosser.
      p.track.base_xz = {side * (params_.road_half_width + 0.5), z};
      p.track.velocity_xz = {-side * rng.uniform(0.8, 1.6), 0.0};
    } else {
      // Sidewalk walker (either direction along z).
      p.track.base_xz = {side * (params_.road_half_width + rng.uniform(0.3, 1.5)),
                         z};
      p.track.velocity_xz = {0.0, rng.uniform(-1.5, 1.5)};
    }
    objects_.push_back(p);
  }
}

}  // namespace dive::video
