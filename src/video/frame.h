// Planar YUV 4:2:0 frame — the pixel currency of the whole system.
// The renderer produces frames, the codec encodes/decodes them, and the
// edge detector consumes them.
#pragma once

#include <cstdint>
#include <vector>

namespace dive::video {

/// One image plane of 8-bit samples.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> data;

  Plane() = default;
  Plane(int w, int h, std::uint8_t fill = 0)
      : width(w), height(h),
        data(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), fill) {}

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return data[static_cast<std::size_t>(y) * width + x];
  }
  std::uint8_t& at(int x, int y) {
    return data[static_cast<std::size_t>(y) * width + x];
  }
  /// Clamped read — out-of-frame coordinates return the nearest edge
  /// sample (used by motion search near borders).
  [[nodiscard]] std::uint8_t at_clamped(int x, int y) const {
    x = x < 0 ? 0 : (x >= width ? width - 1 : x);
    y = y < 0 ? 0 : (y >= height ? height - 1 : y);
    return at(x, y);
  }

  [[nodiscard]] std::size_t size() const { return data.size(); }
  bool operator==(const Plane&) const = default;
};

/// YUV 4:2:0: full-resolution luma, half-resolution chroma.
/// Luma dimensions must be even.
struct Frame {
  Plane y;
  Plane u;
  Plane v;

  Frame() = default;
  Frame(int width, int height)
      : y(width, height, 16),
        u(width / 2, height / 2, 128),
        v(width / 2, height / 2, 128) {}

  [[nodiscard]] int width() const { return y.width; }
  [[nodiscard]] int height() const { return y.height; }
  [[nodiscard]] bool empty() const { return y.data.empty(); }
  [[nodiscard]] std::size_t byte_size() const {
    return y.size() + u.size() + v.size();
  }
  bool operator==(const Frame&) const = default;

  /// Chroma samples co-sited with luma pixel (x, y).
  [[nodiscard]] std::uint8_t u_at_luma(int x, int y_) const {
    return u.at_clamped(x / 2, y_ / 2);
  }
  [[nodiscard]] std::uint8_t v_at_luma(int x, int y_) const {
    return v.at_clamped(x / 2, y_ / 2);
  }
};

}  // namespace dive::video
