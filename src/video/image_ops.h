// Pixel-level utilities: distortion metrics, plane arithmetic, and simple
// drawing for example programs.
#pragma once

#include <cstdint>
#include <string>

#include "geom/box.h"
#include "video/frame.h"

namespace dive::video {

/// Integer sum of squared differences between two planes of identical
/// dimensions, accumulated by the dispatched SIMD kernel
/// (video/sse_kernels.h) — exact on every backend.
std::uint64_t plane_sse(const Plane& a, const Plane& b);

/// Mean squared error between two planes of identical dimensions.
double plane_mse(const Plane& a, const Plane& b);

/// Luma PSNR in dB (infinity-capped at 100 dB for identical planes).
double psnr_y(const Frame& a, const Frame& b);

/// PSNR over all three planes (weighted by sample count).
double psnr_yuv(const Frame& a, const Frame& b);

/// Mean absolute luma difference — cheap frame-difference signal used by
/// key-frame selection in the baseline schemes.
double mean_abs_diff_y(const Frame& a, const Frame& b);

/// Average of a plane region (clamped to plane bounds).
double region_mean(const Plane& p, int x0, int y0, int x1, int y1);

/// Draw an axis-aligned box outline into the luma plane (examples only).
void draw_box(Frame& frame, const geom::Box& box, std::uint8_t luma = 255);

/// Serialize the luma plane as binary PGM (P5) for eyeballing output.
std::string to_pgm(const Plane& p);

}  // namespace dive::video
