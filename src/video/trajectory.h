// Ego-vehicle trajectories and scene-object tracks.
//
// World frame (see geom/pinhole_camera.h): x right, y DOWN, z forward.
// The ground plane is Y = 0; the camera rides at Y = -camera_height.
//
// An EgoTrajectory is a sequence of constant-(accel, yaw-rate) segments —
// enough to express the paper's three motion states (static, moving
// straight, turning; Fig. 14) and stop-and-go profiles (Fig. 6b). A small
// sinusoidal pitch wobble models road-surface excitation so that the
// pitch-rate ωx estimated by DiVE's preprocessing has a nonzero ground
// truth (Fig. 7a).
#pragma once

#include <vector>

#include "geom/pinhole_camera.h"
#include "geom/vec.h"

namespace dive::video {

/// One constant-control piece of an ego trajectory.
struct MotionSegment {
  double duration = 0.0;  ///< seconds
  double accel = 0.0;     ///< longitudinal acceleration, m/s^2
  double yaw_rate = 0.0;  ///< rad/s (positive = turning toward +x)
};

/// Ego state at a queried time.
struct EgoState {
  geom::Vec3 position;   ///< camera position (world, y-down)
  double yaw = 0.0;      ///< heading, radians
  double pitch = 0.0;    ///< pitch wobble, radians
  double speed = 0.0;    ///< m/s (>= 0; clamped at 0 when decelerating)
  double yaw_rate = 0.0; ///< rad/s at this instant
  double pitch_rate = 0.0;
  double accel = 0.0;

  [[nodiscard]] geom::CameraPose camera_pose() const {
    return {position, pitch, yaw};
  }
  [[nodiscard]] bool is_stopped(double eps = 0.05) const { return speed < eps; }
};

/// Amplitude/frequency of the pitch wobble.
struct PitchWobble {
  double amplitude = 0.0025;  ///< radians (~0.14 deg)
  double frequency = 1.3;     ///< Hz
  double phase = 0.0;
};

/// High-frequency rotation jitter riding on the trajectory (drone/robot
/// mounts, hostile-conditions layer; DESIGN.md §16). Unlike PitchWobble
/// it is not speed-gated — a hovering or parked agent still vibrates —
/// and it shakes yaw as well as pitch, which is what stresses DiVE's
/// R-sampling: the rotation estimator must track a rotation field that
/// changes significantly between consecutive frames. Phases are seeded
/// by the caller (util::Rng::fork) so renders stay deterministic.
struct CameraVibration {
  double pitch_amplitude = 0.0;  ///< radians; 0 disables
  double yaw_amplitude = 0.0;    ///< radians; 0 disables
  double frequency = 9.0;        ///< Hz; well above the wobble band
  double pitch_phase = 0.0;
  double yaw_phase = 0.0;

  [[nodiscard]] bool enabled() const {
    return pitch_amplitude > 0.0 || yaw_amplitude > 0.0;
  }
};

class EgoTrajectory {
 public:
  /// `camera_height` meters above ground; `initial_speed` m/s.
  EgoTrajectory(std::vector<MotionSegment> segments, double camera_height,
                double initial_speed, PitchWobble wobble = {});

  /// Injects rotation jitter into every state_at() query (additive on
  /// yaw/pitch and their rates). base_state_at() stays jitter-free.
  void set_vibration(CameraVibration vibration) { vibration_ = vibration; }
  [[nodiscard]] const CameraVibration& vibration() const { return vibration_; }

  [[nodiscard]] EgoState state_at(double t) const;
  /// State without the injected camera vibration: the vehicle's actual
  /// path. Used for motion-state labeling, which classifies the drive,
  /// not the camera shake.
  [[nodiscard]] EgoState base_state_at(double t) const;
  [[nodiscard]] double total_duration() const { return total_duration_; }
  [[nodiscard]] double camera_height() const { return camera_height_; }

  // ---- Canonical profiles used by the dataset generators ----

  /// Constant-speed straight drive.
  static EgoTrajectory straight(double speed, double duration,
                                double camera_height = 1.5);
  /// Drive, brake to a stop, dwell, accelerate back to speed (Fig. 6b).
  static EgoTrajectory stop_and_go(double speed, double drive_s, double brake_s,
                                   double dwell_s, double accel_s,
                                   double tail_s, double camera_height = 1.5);
  /// Straight, then a turn of `turn_deg` over `turn_s`, then straight.
  static EgoTrajectory with_turn(double speed, double lead_s, double turn_deg,
                                 double turn_s, double tail_s,
                                 double camera_height = 1.5);
  /// Fully stopped.
  static EgoTrajectory parked(double duration, double camera_height = 1.5);

 private:
  // Sampled forward-integrated states at fixed dt, linearly interpolated.
  struct Sample {
    geom::Vec2 pos_xz;
    double yaw;
    double speed;
    double yaw_rate;
    double accel;
  };

  std::vector<Sample> samples_;
  double dt_ = 1e-3;
  double total_duration_ = 0.0;
  double camera_height_ = 1.5;
  PitchWobble wobble_;
  CameraVibration vibration_;
};

/// Track of a dynamic (or parked) scene object. Objects translate with a
/// constant velocity in the ground plane; heading follows velocity for
/// movers and is fixed for parked objects.
struct ObjectTrack {
  geom::Vec2 base_xz;      ///< ground-contact reference point at t = 0
  geom::Vec2 velocity_xz;  ///< m/s
  double heading = 0.0;    ///< used when the object is (near) stationary

  [[nodiscard]] geom::Vec2 position_at(double t) const {
    return base_xz + velocity_xz * t;
  }
  [[nodiscard]] double heading_at(double) const {
    const double v = velocity_xz.norm();
    return v > 0.1 ? std::atan2(velocity_xz.x, velocity_xz.y) : heading;
  }
  [[nodiscard]] bool moving() const { return velocity_xz.norm() > 0.1; }
};

}  // namespace dive::video
