#include "net/bandwidth.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dive::net {

namespace {
constexpr util::SimTime kFarFuture = std::numeric_limits<util::SimTime>::max() / 4;
}

double BandwidthTrace::bytes_between(util::SimTime t0, util::SimTime t1) const {
  if (t1 <= t0) return 0.0;
  double acc = 0.0;
  util::SimTime t = t0;
  while (t < t1) {
    const util::SimTime seg_end = std::min(t1, next_change(t));
    acc += bytes_per_sec(t) * util::to_seconds(seg_end - t);
    if (seg_end <= t) break;  // defensive: a trace must make progress
    t = seg_end;
  }
  return acc;
}

util::SimTime BandwidthTrace::time_to_send(util::SimTime t0, double bytes,
                                           util::SimTime horizon) const {
  if (bytes <= 0.0) return t0;
  double remaining = bytes;
  util::SimTime t = t0;
  while (t < horizon) {
    const util::SimTime seg_end = std::min(horizon, next_change(t));
    const double rate = bytes_per_sec(t);
    const double capacity = rate * util::to_seconds(seg_end - t);
    if (capacity >= remaining && rate > 0.0) {
      // Round the fractional microsecond UP: truncating would return a
      // completion time at which slightly less than `bytes` has drained
      // (bytes_between(t0, result) < bytes), letting callers double-count
      // the missing tail. Ceil keeps the completion conservative and,
      // since capacity >= remaining over an integer-microsecond segment,
      // can never overshoot seg_end (or the horizon).
      return t + static_cast<util::SimTime>(
                     std::ceil(remaining / rate * util::kMicrosPerSec));
    }
    remaining -= capacity;
    if (seg_end <= t) break;
    t = seg_end;
  }
  return horizon;
}

util::SimTime ConstantBandwidth::next_change(util::SimTime) const {
  return kFarFuture;
}

SteppedBandwidth::SteppedBandwidth(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  if (steps_.empty())
    throw std::invalid_argument("SteppedBandwidth: no steps");
  if (!std::is_sorted(steps_.begin(), steps_.end(),
                      [](const Step& a, const Step& b) {
                        return a.start < b.start;
                      }))
    throw std::invalid_argument("SteppedBandwidth: steps must be sorted");
}

double SteppedBandwidth::bytes_per_sec(util::SimTime t) const {
  // Last step whose start <= t; before the first step, use the first rate.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](util::SimTime v, const Step& s) { return v < s.start; });
  if (it == steps_.begin()) return steps_.front().bytes_per_sec;
  return std::prev(it)->bytes_per_sec;
}

util::SimTime SteppedBandwidth::next_change(util::SimTime t) const {
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](util::SimTime v, const Step& s) { return v < s.start; });
  return it == steps_.end() ? kFarFuture : it->start;
}

FluctuatingBandwidth::FluctuatingBandwidth(double mean_bytes_per_sec,
                                           double depth, util::SimTime bucket,
                                           std::uint64_t seed)
    : mean_(mean_bytes_per_sec), depth_(std::clamp(depth, 0.0, 1.0)),
      bucket_(bucket), seed_(seed) {
  if (bucket_ <= 0)
    throw std::invalid_argument("FluctuatingBandwidth: bucket must be > 0");
}

double FluctuatingBandwidth::bytes_per_sec(util::SimTime t) const {
  const auto bucket_index =
      static_cast<std::uint64_t>(t >= 0 ? t / bucket_ : 0);
  // SplitMix64 of (seed, bucket) -> uniform in [-1, 1).
  std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (bucket_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  const double u =
      static_cast<double>(z >> 11) / static_cast<double>(1ULL << 53);
  return mean_ * (1.0 + depth_ * (2.0 * u - 1.0));
}

util::SimTime FluctuatingBandwidth::next_change(util::SimTime t) const {
  if (t < 0) return 0;
  return (t / bucket_ + 1) * bucket_;
}

OutageBandwidth::OutageBandwidth(std::shared_ptr<const BandwidthTrace> base,
                                 std::vector<Outage> outages)
    : base_(std::move(base)), outages_(std::move(outages)) {
  if (base_ == nullptr)
    throw std::invalid_argument("OutageBandwidth: null base trace");
  std::sort(outages_.begin(), outages_.end(),
            [](const Outage& a, const Outage& b) { return a.start < b.start; });
}

std::vector<OutageBandwidth::Outage> OutageBandwidth::periodic(
    util::SimTime first_start, util::SimTime interval, util::SimTime duration,
    util::SimTime until) {
  if (interval <= 0)
    throw std::invalid_argument(
        "OutageBandwidth::periodic: interval must be > 0");
  if (duration < 0)
    throw std::invalid_argument(
        "OutageBandwidth::periodic: duration must be >= 0");
  std::vector<Outage> out;
  for (util::SimTime s = first_start; s < until; s += interval) {
    out.push_back({s, s + duration});
  }
  return out;
}

double OutageBandwidth::bytes_per_sec(util::SimTime t) const {
  for (const auto& o : outages_) {
    if (t >= o.start && t < o.end) return 0.0;
    if (o.start > t) break;
  }
  return base_->bytes_per_sec(t);
}

util::SimTime OutageBandwidth::next_change(util::SimTime t) const {
  util::SimTime next = base_->next_change(t);
  for (const auto& o : outages_) {
    if (o.start > t) {
      next = std::min(next, o.start);
      break;
    }
    if (t >= o.start && t < o.end) {
      next = std::min(next, o.end);
      break;
    }
  }
  return next;
}

}  // namespace dive::net
