// Uplink bandwidth traces — the "dynamic uplink" of the problem statement
// (Sec. II-A) and the controlled scenarios of the evaluation: constant
// rates 1..5 Mbps (Fig. 11/16/17), fluctuating cellular-style links, and
// periodic 1 s outages (Fig. 13).
//
// Traces are piecewise-constant functions of simulated time, which keeps
// byte integrals exact and transmission-completion queries fast.
#pragma once

#include <memory>
#include <vector>

#include "util/sim_clock.h"

namespace dive::net {

/// Bits per second helper (the paper quotes Mbps everywhere).
constexpr double mbps_to_bytes_per_sec(double mbps) {
  return mbps * 1'000'000.0 / 8.0;
}

/// A piecewise-constant uplink rate profile.
class BandwidthTrace {
 public:
  virtual ~BandwidthTrace() = default;

  /// Instantaneous rate at time t, bytes/second.
  [[nodiscard]] virtual double bytes_per_sec(util::SimTime t) const = 0;

  /// First time strictly greater than t at which the rate may change.
  /// Used to integrate exactly across segments.
  [[nodiscard]] virtual util::SimTime next_change(util::SimTime t) const = 0;

  /// Exact integral of the rate over [t0, t1), bytes.
  [[nodiscard]] double bytes_between(util::SimTime t0, util::SimTime t1) const;

  /// Earliest completion time for `bytes` of data starting at t0.
  /// Returns `horizon` if the data cannot finish before then.
  [[nodiscard]] util::SimTime time_to_send(util::SimTime t0, double bytes,
                                           util::SimTime horizon) const;
};

/// Fixed-rate link.
class ConstantBandwidth final : public BandwidthTrace {
 public:
  explicit ConstantBandwidth(double bytes_per_sec) : rate_(bytes_per_sec) {}
  [[nodiscard]] double bytes_per_sec(util::SimTime) const override {
    return rate_;
  }
  [[nodiscard]] util::SimTime next_change(util::SimTime t) const override;

 private:
  double rate_;
};

/// Explicit step schedule: rate i applies from steps[i].start until the
/// next step (the first step should start at or before 0).
class SteppedBandwidth final : public BandwidthTrace {
 public:
  struct Step {
    util::SimTime start;
    double bytes_per_sec;
  };
  explicit SteppedBandwidth(std::vector<Step> steps);
  [[nodiscard]] double bytes_per_sec(util::SimTime t) const override;
  [[nodiscard]] util::SimTime next_change(util::SimTime t) const override;

 private:
  std::vector<Step> steps_;
};

/// Deterministic pseudo-random fluctuation around a mean: the rate is
/// re-drawn per `bucket` interval from [mean*(1-depth), mean*(1+depth)]
/// using a hash of the bucket index. Models cellular-rate churn while
/// staying bit-reproducible.
class FluctuatingBandwidth final : public BandwidthTrace {
 public:
  FluctuatingBandwidth(double mean_bytes_per_sec, double depth,
                       util::SimTime bucket, std::uint64_t seed);
  [[nodiscard]] double bytes_per_sec(util::SimTime t) const override;
  [[nodiscard]] util::SimTime next_change(util::SimTime t) const override;

 private:
  double mean_;
  double depth_;
  util::SimTime bucket_;
  std::uint64_t seed_;
};

/// Wraps a base trace with total outages (rate 0) during given intervals —
/// the Fig. 13 scenario: 1 s interruptions every 5..20 s.
class OutageBandwidth final : public BandwidthTrace {
 public:
  struct Outage {
    util::SimTime start;
    util::SimTime end;
  };
  OutageBandwidth(std::shared_ptr<const BandwidthTrace> base,
                  std::vector<Outage> outages);

  /// Convenience: outages of `duration` every `interval`, starting at
  /// `first_start`, repeated until `until`.
  static std::vector<Outage> periodic(util::SimTime first_start,
                                      util::SimTime interval,
                                      util::SimTime duration,
                                      util::SimTime until);

  [[nodiscard]] double bytes_per_sec(util::SimTime t) const override;
  [[nodiscard]] util::SimTime next_change(util::SimTime t) const override;

 private:
  std::shared_ptr<const BandwidthTrace> base_;
  std::vector<Outage> outages_;  // sorted, non-overlapping
};

}  // namespace dive::net
