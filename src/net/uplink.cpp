#include "net/uplink.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace dive::net {

Uplink::Uplink(std::shared_ptr<const BandwidthTrace> trace,
               UplinkConfig config)
    : trace_(std::move(trace)), config_(config) {
  if (trace_ == nullptr) throw std::invalid_argument("Uplink: null trace");
}

/// Metric/span/ledger bookkeeping shared by both transmit paths;
/// everything is computed from simulated timestamps, so observation is
/// deterministic.
TransmitResult Uplink::record(const char* span_name, const TransmitResult& r,
                              double bytes, util::SimTime enqueue_time,
                              const obs::FrameTraceContext* trace) {
  if (obs_ == nullptr) return r;
  auto& m = obs_->metrics;
  const std::uint64_t flow =
      trace != nullptr && trace->valid() ? trace->flow_id() : 0;
  m.counter("net.transmits").add();
  m.distribution("net.queue_ms", "ms")
      .add(util::to_millis(r.started - enqueue_time));
  if (r.delivered) {
    m.counter("net.delivered").add();
    m.counter("net.bytes_delivered", "bytes")
        .add(static_cast<std::int64_t>(bytes));
    m.distribution("net.transmit_ms", "ms")
        .add(util::to_millis(r.sent_complete - r.started));
    obs_->tracer.span_at(span_name, obs::kTrackNet, r.started,
                         r.sent_complete,
                         {{"bytes", static_cast<long long>(bytes)}}, flow);
  } else {
    m.counter("net.outages").add();
    obs_->tracer.span_at("net.timeout", obs::kTrackNet, r.started,
                         r.gave_up_at,
                         {{"bytes", static_cast<long long>(bytes)}}, flow);
  }
  if (trace != nullptr && trace->valid()) {
    auto& ledger = obs_->ledger;
    ledger.stage(*trace, obs::FrameStage::kUplinkQueue, enqueue_time,
                 r.started);
    ledger.stage(*trace, obs::FrameStage::kTransmit, r.started,
                 r.delivered ? r.sent_complete : r.gave_up_at);
    if (r.delivered)
      ledger.stage(*trace, obs::FrameStage::kPropagation, r.sent_complete,
                   r.arrival);
  }
  return r;
}

TransmitResult Uplink::transmit(double bytes, util::SimTime enqueue_time,
                                const obs::FrameTraceContext* trace) {
  const util::SimTime start = std::max(enqueue_time, busy_until_);
  // A generous horizon: nothing in the evaluation waits more than minutes.
  const util::SimTime horizon = start + 600 * util::kMicrosPerSec;
  const util::SimTime complete =
      trace_->time_to_send(start, bytes, horizon + 1);
  if (complete > horizon) {
    // The trace cannot move the data inside the horizon (an outage longer
    // than the horizon): report the failure instead of fabricating a
    // horizon-clamped completion time (mirrors transmit_with_timeout).
    TransmitResult r;
    r.delivered = false;
    r.started = start;
    r.gave_up_at = horizon;
    busy_until_ = std::max(busy_until_, horizon);
    return record("net.transmit", r, bytes, enqueue_time, trace);
  }
  busy_until_ = complete;
  return record("net.transmit",
                {true, start, complete, complete + config_.propagation_delay,
                 0},
                bytes, enqueue_time, trace);
}

TransmitResult Uplink::transmit_with_timeout(
    double bytes, util::SimTime enqueue_time,
    const obs::FrameTraceContext* trace) {
  const util::SimTime head_time = std::max(enqueue_time, busy_until_);
  const util::SimTime deadline = head_time + config_.head_timeout;
  const util::SimTime complete =
      trace_->time_to_send(head_time, bytes, deadline + 1);
  if (complete > deadline) {
    TransmitResult r;
    r.delivered = false;
    r.started = head_time;
    r.gave_up_at = deadline;
    // Dropped frame: the radio is idle again from the moment we gave up.
    busy_until_ = std::max(busy_until_, deadline);
    return record("net.transmit", r, bytes, enqueue_time, trace);
  }
  busy_until_ = complete;
  return record("net.transmit",
                {true, head_time, complete,
                 complete + config_.propagation_delay, 0},
                bytes, enqueue_time, trace);
}

double Uplink::capacity_between(util::SimTime t0, util::SimTime t1) const {
  return trace_->bytes_between(t0, t1);
}

}  // namespace dive::net
