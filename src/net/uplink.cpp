#include "net/uplink.h"

#include <algorithm>
#include <stdexcept>

namespace dive::net {

Uplink::Uplink(std::shared_ptr<const BandwidthTrace> trace,
               UplinkConfig config)
    : trace_(std::move(trace)), config_(config) {
  if (trace_ == nullptr) throw std::invalid_argument("Uplink: null trace");
}

TransmitResult Uplink::transmit(double bytes, util::SimTime enqueue_time) {
  const util::SimTime start = std::max(enqueue_time, busy_until_);
  // A generous horizon: nothing in the evaluation waits more than minutes.
  const util::SimTime horizon = start + 600 * util::kMicrosPerSec;
  const util::SimTime complete =
      trace_->time_to_send(start, bytes, horizon + 1);
  if (complete > horizon) {
    // The trace cannot move the data inside the horizon (an outage longer
    // than the horizon): report the failure instead of fabricating a
    // horizon-clamped completion time (mirrors transmit_with_timeout).
    TransmitResult r;
    r.delivered = false;
    r.started = start;
    r.gave_up_at = horizon;
    busy_until_ = std::max(busy_until_, horizon);
    return r;
  }
  busy_until_ = complete;
  return {true, start, complete, complete + config_.propagation_delay, 0};
}

TransmitResult Uplink::transmit_with_timeout(double bytes,
                                             util::SimTime enqueue_time) {
  const util::SimTime head_time = std::max(enqueue_time, busy_until_);
  const util::SimTime deadline = head_time + config_.head_timeout;
  const util::SimTime complete =
      trace_->time_to_send(head_time, bytes, deadline + 1);
  if (complete > deadline) {
    TransmitResult r;
    r.delivered = false;
    r.started = head_time;
    r.gave_up_at = deadline;
    // Dropped frame: the radio is idle again from the moment we gave up.
    busy_until_ = std::max(busy_until_, deadline);
    return r;
  }
  busy_until_ = complete;
  return {true, head_time, complete, complete + config_.propagation_delay, 0};
}

double Uplink::capacity_between(util::SimTime t0, util::SimTime t1) const {
  return trace_->bytes_between(t0, t1);
}

}  // namespace dive::net
