// Simulated FIFO uplink from a mobile agent to the edge server.
//
// Serialization follows the bandwidth trace exactly; arrival adds a fixed
// propagation delay. The transmit-queue head-of-line timeout implements
// the paper's link-outage detector (Sec. III-E): if a frame sits at the
// queue head longer than the timeout, the agent gives up on it and falls
// back to motion-vector-based offline tracking.
#pragma once

#include <memory>
#include <optional>

#include "net/bandwidth.h"
#include "obs/frame_context.h"
#include "util/sim_clock.h"

namespace dive::obs {
struct ObsContext;
}  // namespace dive::obs

namespace dive::net {

struct UplinkConfig {
  util::SimTime propagation_delay = util::from_millis(10.0);
  /// Head-of-line timeout used by transmit_with_timeout.
  util::SimTime head_timeout = util::from_millis(400.0);
};

/// Result of a transmission attempt.
struct TransmitResult {
  bool delivered = false;
  util::SimTime started = 0;        ///< first byte entered the radio
  util::SimTime sent_complete = 0;  ///< last byte left the radio
  util::SimTime arrival = 0;        ///< last byte reached the server
  /// When not delivered: the time at which the agent detected the outage
  /// (head-of-line timer expiry).
  util::SimTime gave_up_at = 0;
};

class Uplink {
 public:
  Uplink(std::shared_ptr<const BandwidthTrace> trace, UplinkConfig config);

  /// Transmits `bytes` enqueued at `enqueue_time`; the link serializes
  /// after any earlier traffic completes. Patience is bounded by a 600 s
  /// horizon: when the trace cannot move the data inside it (an extreme
  /// outage), the result reports `delivered == false` with `gave_up_at`
  /// set to the horizon rather than a fabricated completion time.
  /// `trace` (optional) ties the transmission to a frame: the uplink
  /// span joins the frame's flow and the queue/serialize/propagation
  /// intervals are recorded into the context's FrameLedger.
  TransmitResult transmit(double bytes, util::SimTime enqueue_time,
                          const obs::FrameTraceContext* trace = nullptr);

  /// Transmits unless the head-of-line timer (config.head_timeout)
  /// expires first; on expiry the frame is dropped and the link is left
  /// idle (real stacks flush the socket on outage detection).
  TransmitResult transmit_with_timeout(
      double bytes, util::SimTime enqueue_time,
      const obs::FrameTraceContext* trace = nullptr);

  /// Bytes the link could move in [t0, t1) — used by tests and by
  /// bandwidth-estimator ground truth.
  [[nodiscard]] double capacity_between(util::SimTime t0,
                                        util::SimTime t1) const;

  [[nodiscard]] util::SimTime busy_until() const { return busy_until_; }
  [[nodiscard]] const UplinkConfig& config() const { return config_; }

  /// Attaches an observability context (non-owning, null detaches):
  /// "net.*" counters/distributions and serialization spans on
  /// obs::kTrackNet, all derived from simulated time (deterministic).
  void set_obs(obs::ObsContext* obs) { obs_ = obs; }

 private:
  TransmitResult record(const char* span_name, const TransmitResult& r,
                        double bytes, util::SimTime enqueue_time,
                        const obs::FrameTraceContext* trace);

  std::shared_ptr<const BandwidthTrace> trace_;
  UplinkConfig config_;
  obs::ObsContext* obs_ = nullptr;
  util::SimTime busy_until_ = 0;
};

}  // namespace dive::net
