// Runtime-dispatched SAD kernels for the 16x16 motion-search hot loop.
//
// The scalar kernel is the canonical reference: every SIMD variant must
// return the exact same sum for the same inputs (SAD is integer, so this
// is achievable and enforced by the `differential` test label). Dispatch
// order: the DIVE_DISABLE_SIMD compile gate wins, then the
// DIVE_FORCE_SCALAR environment variable (any value other than "0"),
// then CPU detection (AVX2 > SSE2 on x86, NEON on AArch64). The choice
// is resolved once per process on first use.
//
// Kernels operate on raw row pointers with independent strides so they
// serve both full planes (stride == width, including odd widths) and any
// future tiled layout. Blocks must lie fully inside their planes; the
// clamped border path stays in motion_search.cpp and is scalar by
// construction.
#pragma once

#include <cstdint>

namespace dive::codec {

/// Which concrete kernel backs sad_16x16_fn() in this process.
enum class SadKernel : std::uint8_t { kScalar, kSse2, kAvx2, kNeon };

const char* to_string(SadKernel k);

/// Per-searcher kernel policy (MotionSearchConfig::sad). kAuto uses the
/// process-wide dispatched kernel; kScalar pins the reference kernel so
/// scalar/SIMD cells can be compared inside one process.
enum class SadKernelPolicy : std::uint8_t { kAuto = 0, kScalar = 1 };

/// 16x16 sum of absolute differences between the block at `cur` (rows
/// `cur_stride` apart) and the block at `ref` (rows `ref_stride` apart).
using Sad16Fn = std::uint32_t (*)(const std::uint8_t* cur, int cur_stride,
                                  const std::uint8_t* ref, int ref_stride);

/// Canonical scalar kernel (the reference all SIMD paths must match).
std::uint32_t sad_16x16_scalar(const std::uint8_t* cur, int cur_stride,
                               const std::uint8_t* ref, int ref_stride);

/// The kernel dispatch resolved for this process (see file comment).
SadKernel active_sad_kernel();

/// Function pointer matching active_sad_kernel().
Sad16Fn sad_16x16_fn();

/// Resolves a policy to a concrete kernel function.
inline Sad16Fn resolve_sad_fn(SadKernelPolicy policy) {
  return policy == SadKernelPolicy::kScalar ? &sad_16x16_scalar
                                            : sad_16x16_fn();
}

}  // namespace dive::codec
