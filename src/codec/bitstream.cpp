#include "codec/bitstream.h"

#include <bit>

namespace dive::codec {

void BitWriter::put_bit(bool bit) {
  cur_ = static_cast<std::uint8_t>((cur_ << 1) | (bit ? 1 : 0));
  if (++cur_bits_ == 8) {
    bytes_.push_back(cur_);
    cur_ = 0;
    cur_bits_ = 0;
  }
  ++bit_count_;
}

void BitWriter::put_bits(std::uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) put_bit((value >> i) & 1U);
}

void BitWriter::put_ue(std::uint32_t value) {
  // code = value + 1 in "leading zeros + binary" form.
  const std::uint64_t code = static_cast<std::uint64_t>(value) + 1;
  const int bits = 64 - std::countl_zero(code);
  for (int i = 0; i < bits - 1; ++i) put_bit(false);
  for (int i = bits - 1; i >= 0; --i) put_bit((code >> i) & 1U);
}

void BitWriter::put_se(std::int32_t value) {
  const std::uint32_t mapped =
      value > 0 ? static_cast<std::uint32_t>(value) * 2 - 1
                : static_cast<std::uint32_t>(-static_cast<std::int64_t>(value)) * 2;
  put_ue(mapped);
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (cur_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(cur_ << (8 - cur_bits_)));
    cur_ = 0;
    cur_bits_ = 0;
  }
  return std::move(bytes_);
}

int BitWriter::ue_bits(std::uint32_t value) {
  const std::uint64_t code = static_cast<std::uint64_t>(value) + 1;
  const int bits = 64 - std::countl_zero(code);
  return 2 * bits - 1;
}

int BitWriter::se_bits(std::int32_t value) {
  const std::uint32_t mapped =
      value > 0 ? static_cast<std::uint32_t>(value) * 2 - 1
                : static_cast<std::uint32_t>(-static_cast<std::int64_t>(value)) * 2;
  return ue_bits(mapped);
}

bool BitReader::get_bit() {
  if (pos_byte_ >= data_.size())
    throw BitstreamError("BitReader: read past end of stream");
  const bool bit = (data_[pos_byte_] >> (7 - pos_bit_)) & 1U;
  if (++pos_bit_ == 8) {
    pos_bit_ = 0;
    ++pos_byte_;
  }
  return bit;
}

std::uint32_t BitReader::get_bits(int count) {
  std::uint32_t v = 0;
  for (int i = 0; i < count; ++i) v = (v << 1) | (get_bit() ? 1U : 0U);
  return v;
}

std::uint32_t BitReader::get_ue() {
  int zeros = 0;
  while (!get_bit()) {
    if (++zeros > 32) throw BitstreamError("BitReader: malformed ue code");
  }
  std::uint64_t code = 1;
  for (int i = 0; i < zeros; ++i) code = (code << 1) | (get_bit() ? 1U : 0U);
  // A 32-zero prefix admits 33-bit codes; anything whose value does not
  // fit uint32 is hostile input, not a real code — reject instead of
  // silently truncating.
  if (code - 1 > 0xFFFFFFFFULL)
    throw BitstreamError("BitReader: ue code exceeds 32 bits");
  return static_cast<std::uint32_t>(code - 1);
}

std::int32_t BitReader::get_se() {
  const std::uint32_t mapped = get_ue();
  // mapped == UINT32_MAX would wrap (mapped + 1) to 0 below; the signed
  // domain tops out one code earlier, so reject it as malformed.
  if (mapped == 0xFFFFFFFFU)
    throw BitstreamError("BitReader: se code out of range");
  if (mapped % 2 == 1) return static_cast<std::int32_t>((mapped + 1) / 2);
  return -static_cast<std::int32_t>(mapped / 2);
}

}  // namespace dive::codec
