#include "codec/sad_kernels.h"

#include <cstdlib>

#if !defined(DIVE_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIVE_SAD_X86 1
#include <immintrin.h>
#endif

#if !defined(DIVE_DISABLE_SIMD) && defined(__aarch64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIVE_SAD_NEON 1
#include <arm_neon.h>
#endif

namespace dive::codec {

namespace {
constexpr int kMb = 16;
}  // namespace

const char* to_string(SadKernel k) {
  switch (k) {
    case SadKernel::kScalar: return "scalar";
    case SadKernel::kSse2: return "sse2";
    case SadKernel::kAvx2: return "avx2";
    case SadKernel::kNeon: return "neon";
  }
  return "?";
}

std::uint32_t sad_16x16_scalar(const std::uint8_t* cur, int cur_stride,
                               const std::uint8_t* ref, int ref_stride) {
  std::uint32_t acc = 0;
  for (int y = 0; y < kMb; ++y) {
    const std::uint8_t* c = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* r = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    for (int x = 0; x < kMb; ++x) {
      const int d = static_cast<int>(c[x]) - static_cast<int>(r[x]);
      acc += static_cast<std::uint32_t>(d < 0 ? -d : d);
    }
  }
  return acc;
}

namespace {

#if defined(DIVE_SAD_X86)

// PSADBW computes the exact u8 absolute-difference sum per 8-byte lane,
// so both x86 kernels are bit-equal to the scalar reference by ISA
// definition — no rounding or saturation is involved anywhere.
__attribute__((target("sse2"))) std::uint32_t sad_16x16_sse2(
    const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
    int ref_stride) {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < kMb; ++y) {
    const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride));
    const __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        ref + static_cast<std::ptrdiff_t>(y) * ref_stride));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
  }
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc)) +
         static_cast<std::uint32_t>(
             _mm_cvtsi128_si32(_mm_srli_si128(acc, 8)));
}

__attribute__((target("avx2"))) std::uint32_t sad_16x16_avx2(
    const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
    int ref_stride) {
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < kMb; y += 2) {
    const std::uint8_t* c0 = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* r0 = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    const __m256i c = _mm256_inserti128_si256(
        _mm256_castsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0))),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0 + cur_stride)), 1);
    const __m256i r = _mm256_inserti128_si256(
        _mm256_castsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0))),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + ref_stride)), 1);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, r));
  }
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s)) +
         static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm_srli_si128(s, 8)));
}

#endif  // DIVE_SAD_X86

#if defined(DIVE_SAD_NEON)

// VABD on u8 is exact; VADDLV widens to u16 before the cross-lane sum
// (one row sums to at most 16*255 = 4080 < 65535), so the NEON kernel is
// bit-equal to the scalar reference as well.
std::uint32_t sad_16x16_neon(const std::uint8_t* cur, int cur_stride,
                             const std::uint8_t* ref, int ref_stride) {
  std::uint32_t acc = 0;
  for (int y = 0; y < kMb; ++y) {
    const uint8x16_t c =
        vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    const uint8x16_t r =
        vld1q_u8(ref + static_cast<std::ptrdiff_t>(y) * ref_stride);
    acc += vaddlvq_u8(vabdq_u8(c, r));
  }
  return acc;
}

#endif  // DIVE_SAD_NEON

bool env_forces_scalar() {
  const char* e = std::getenv("DIVE_FORCE_SCALAR");
  if (e == nullptr || *e == '\0') return false;
  return !(e[0] == '0' && e[1] == '\0');
}

struct Resolved {
  SadKernel kind = SadKernel::kScalar;
  Sad16Fn fn = &sad_16x16_scalar;
};

Resolved resolve() {
#if !defined(DIVE_DISABLE_SIMD)
  if (!env_forces_scalar()) {
#if defined(DIVE_SAD_X86)
    if (__builtin_cpu_supports("avx2"))
      return {SadKernel::kAvx2, &sad_16x16_avx2};
    if (__builtin_cpu_supports("sse2"))
      return {SadKernel::kSse2, &sad_16x16_sse2};
#elif defined(DIVE_SAD_NEON)
    return {SadKernel::kNeon, &sad_16x16_neon};
#endif
  }
#endif
  return {};
}

const Resolved& resolved() {
  static const Resolved r = resolve();
  return r;
}

}  // namespace

SadKernel active_sad_kernel() { return resolved().kind; }

Sad16Fn sad_16x16_fn() { return resolved().fn; }

}  // namespace dive::codec
