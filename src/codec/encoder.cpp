#include "codec/encoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "codec/block_io.h"
#include "codec/dct.h"
#include "codec/quant.h"
#include "video/image_ops.h"

namespace dive::codec {

namespace {

constexpr int kMb = kMacroblockSize;

std::uint8_t clamp_pixel(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

/// Mean of the reconstructed samples above and left of the 8x8 block at
/// pixel origin (bx, by). Mirrors H.264 DC intra prediction; the decoder
/// runs the identical function on its own reconstruction.
double dc_predict(const video::Plane& recon, int bx, int by) {
  double acc = 0.0;
  int n = 0;
  if (by > 0) {
    for (int x = 0; x < kBlockSize; ++x) {
      acc += recon.at(bx + x, by - 1);
      ++n;
    }
  }
  if (bx > 0) {
    for (int y = 0; y < kBlockSize; ++y) {
      acc += recon.at(bx - 1, by + y);
      ++n;
    }
  }
  return n > 0 ? acc / n : 128.0;
}

/// Motion-compensated 8x8 prediction block from a reference plane;
/// (hdx, hdy) is the displacement in half-pel units of that plane.
Block8x8 mc_predict(const video::Plane& ref, int bx, int by, int hdx,
                    int hdy) {
  Block8x8 pred;
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      pred[static_cast<std::size_t>(y * kBlockSize + x)] =
          static_cast<double>(half_pel_sample(ref, 2 * (bx + x) - hdx,
                                              2 * (by + y) - hdy));
  return pred;
}

Block8x8 const_predict(double v) {
  Block8x8 p;
  p.fill(v);
  return p;
}

/// Transform + quantize the (src - pred) residual of one 8x8 block.
/// Returns true when any level is nonzero.
bool transform_block(const video::Plane& src, int bx, int by,
                     const Block8x8& pred, int qp, QuantBlock& levels) {
  Block8x8 residual;
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      residual[static_cast<std::size_t>(y * kBlockSize + x)] =
          static_cast<double>(src.at(bx + x, by + y)) -
          pred[static_cast<std::size_t>(y * kBlockSize + x)];
  Block8x8 coeffs;
  forward_dct(residual, coeffs);
  quantize(coeffs, qp, levels);
  return !all_zero(levels);
}

/// Reconstruct one 8x8 block into `recon` from prediction + (optional)
/// coded levels.
void reconstruct_block(video::Plane& recon, int bx, int by,
                       const Block8x8& pred, const QuantBlock* levels,
                       int qp) {
  Block8x8 res{};
  if (levels != nullptr) {
    Block8x8 deq;
    dequantize(*levels, qp, deq);
    inverse_dct(deq, res);
  }
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      recon.at(bx + x, by + y) =
          clamp_pixel(pred[static_cast<std::size_t>(y * kBlockSize + x)] +
                      res[static_cast<std::size_t>(y * kBlockSize + x)]);
}

}  // namespace

const char* to_string(MotionSearchMethod m) {
  switch (m) {
    case MotionSearchMethod::kDia: return "dia";
    case MotionSearchMethod::kHex: return "hex";
    case MotionSearchMethod::kUmh: return "umh";
    case MotionSearchMethod::kTesa: return "tesa";
    case MotionSearchMethod::kEsa: return "esa";
  }
  return "?";
}

Encoder::Encoder(EncoderConfig config)
    : config_(config), searcher_(config.search) {
  if (config_.width <= 0 || config_.height <= 0 ||
      config_.width % kMb != 0 || config_.height % kMb != 0) {
    throw std::invalid_argument(
        "Encoder: frame dimensions must be positive multiples of 16");
  }
}

MotionField Encoder::analyze_motion(const video::Frame& src) const {
  if (!has_reference_) return {};
  return searcher_.search_frame(src.y, reference_.y);
}

FrameType Encoder::next_frame_type() const {
  if (force_intra_ || !has_reference_) return FrameType::kIntra;
  if (config_.gop_length > 0 && frame_index_ % config_.gop_length == 0)
    return FrameType::kIntra;
  return FrameType::kInter;
}

Encoder::Trial Encoder::run_trial(const video::Frame& src, FrameType type,
                                  int base_qp, const QpOffsetMap* offsets,
                                  const MotionField* motion) const {
  base_qp = std::clamp(base_qp, kMinQp, kMaxQp);
  const int mb_cols = config_.width / kMb;
  const int mb_rows = config_.height / kMb;

  Trial trial;
  trial.base_qp = base_qp;
  trial.recon = video::Frame(config_.width, config_.height);

  BitWriter bw;
  bw.put_bits(0xD1, 8);  // magic
  bw.put_bit(type == FrameType::kInter);
  bw.put_bits(static_cast<std::uint32_t>(base_qp), 6);
  bw.put_ue(static_cast<std::uint32_t>(mb_cols));
  bw.put_ue(static_cast<std::uint32_t>(mb_rows));

  // Per-macroblock block geometry: 4 luma 8x8 + U + V.
  struct BlockRef {
    const video::Plane* src;
    video::Plane* recon;
    const video::Plane* ref;
    int bx, by;
    bool chroma;
  };

  int prev_qp = base_qp;
  for (int row = 0; row < mb_rows; ++row) {
    for (int col = 0; col < mb_cols; ++col) {
      const int px = col * kMb;
      const int py = row * kMb;
      const int cx = px / 2;
      const int cy = py / 2;
      int qp = base_qp;
      if (offsets != nullptr && !offsets->empty())
        qp = std::clamp(base_qp + offsets->at(col, row), kMinQp, kMaxQp);

      const BlockRef blocks[6] = {
          {&src.y, &trial.recon.y, &reference_.y, px, py, false},
          {&src.y, &trial.recon.y, &reference_.y, px + 8, py, false},
          {&src.y, &trial.recon.y, &reference_.y, px, py + 8, false},
          {&src.y, &trial.recon.y, &reference_.y, px + 8, py + 8, false},
          {&src.u, &trial.recon.u, &reference_.u, cx, cy, true},
          {&src.v, &trial.recon.v, &reference_.v, cx, cy, true},
      };

      if (type == FrameType::kInter) {
        const MotionVector mv = motion->at(col, row);
        // Chroma planes are half resolution: halve the half-pel units.
        const int cdx = mv.dx / 2;
        const int cdy = mv.dy / 2;

        Block8x8 preds[6];
        QuantBlock levels[6];
        int cbp = 0;
        for (int b = 0; b < 6; ++b) {
          const auto& blk = blocks[b];
          preds[b] = mc_predict(*blk.ref, blk.bx, blk.by,
                                blk.chroma ? cdx : mv.dx,
                                blk.chroma ? cdy : mv.dy);
          if (transform_block(*blk.src, blk.bx, blk.by, preds[b], qp,
                              levels[b]))
            cbp |= 1 << b;
        }

        const bool skip = mv.is_zero() && cbp == 0;
        bw.put_bit(skip);
        if (!skip) {
          const MotionVector pred_mv =
              col > 0 ? motion->at(col - 1, row) : MotionVector{};
          bw.put_se(mv.dx - pred_mv.dx);
          bw.put_se(mv.dy - pred_mv.dy);
          bw.put_se(qp - prev_qp);
          prev_qp = qp;
          bw.put_bits(static_cast<std::uint32_t>(cbp), 6);
          for (int b = 0; b < 6; ++b)
            if (cbp & (1 << b)) write_block(bw, levels[b]);
        }
        for (int b = 0; b < 6; ++b) {
          const auto& blk = blocks[b];
          reconstruct_block(*blk.recon, blk.bx, blk.by, preds[b],
                            (cbp & (1 << b)) ? &levels[b] : nullptr, qp);
        }
      } else {
        // Intra macroblock: DC-predicted 8x8 blocks. Prediction depends on
        // the running reconstruction, so transform/emit/reconstruct
        // proceed block by block.
        bw.put_se(qp - prev_qp);
        prev_qp = qp;
        for (int b = 0; b < 6; ++b) {
          const auto& blk = blocks[b];
          const Block8x8 pred =
              const_predict(dc_predict(*blk.recon, blk.bx, blk.by));
          QuantBlock levels;
          const bool coded =
              transform_block(*blk.src, blk.bx, blk.by, pred, qp, levels);
          bw.put_bit(coded);
          if (coded) write_block(bw, levels);
          reconstruct_block(*blk.recon, blk.bx, blk.by, pred,
                            coded ? &levels : nullptr, qp);
        }
      }
    }
  }

  trial.data = bw.finish();
  return trial;
}

EncodedFrame Encoder::commit(Trial trial, FrameType type,
                             const MotionField* motion,
                             const video::Frame& src) {
  EncodedFrame out;
  out.data = std::move(trial.data);
  out.type = type;
  out.base_qp = trial.base_qp;
  if (type == FrameType::kInter && motion != nullptr) out.motion = *motion;
  out.psnr_y = video::psnr_y(src, trial.recon);

  reference_ = std::move(trial.recon);
  has_reference_ = true;
  force_intra_ = false;
  ++frame_index_;
  last_qp_ = out.base_qp;
  return out;
}

EncodedFrame Encoder::encode(const video::Frame& src, int base_qp,
                             const QpOffsetMap* offsets,
                             const MotionField* motion) {
  if (src.width() != config_.width || src.height() != config_.height)
    throw std::invalid_argument("Encoder::encode: frame size mismatch");
  const FrameType type = next_frame_type();
  MotionField local;
  if (type == FrameType::kInter && motion == nullptr) {
    local = analyze_motion(src);
    motion = &local;
  }
  Trial trial = run_trial(src, type, base_qp, offsets, motion);
  return commit(std::move(trial), type, motion, src);
}

EncodedFrame Encoder::encode_to_target(const video::Frame& src,
                                       std::size_t target_bytes,
                                       const QpOffsetMap* offsets,
                                       const MotionField* motion) {
  if (src.width() != config_.width || src.height() != config_.height)
    throw std::invalid_argument("Encoder::encode_to_target: size mismatch");
  const FrameType type = next_frame_type();
  MotionField local;
  if (type == FrameType::kInter && motion == nullptr) {
    local = analyze_motion(src);
    motion = &local;
  }

  // Binary search over base QP for the best quality that fits the budget.
  int lo = kMinQp;
  int hi = kMaxQp;
  int qp = std::clamp(last_qp_, kMinQp, kMaxQp);
  std::optional<Trial> best;  // smallest-QP fitting trial so far
  Trial last_over{};          // fallback when nothing fits

  for (int iter = 0; iter < std::max(1, config_.rate_iterations); ++iter) {
    Trial trial = run_trial(src, type, qp, offsets, motion);
    if (trial.data.size() <= target_bytes) {
      hi = trial.base_qp - 1;
      if (!best || trial.base_qp < best->base_qp) best = std::move(trial);
    } else {
      lo = trial.base_qp + 1;
      last_over = std::move(trial);
    }
    if (lo > hi) break;
    qp = (lo + hi) / 2;
  }

  Trial chosen = best ? std::move(*best) : std::move(last_over);
  if (chosen.data.empty())
    chosen = run_trial(src, type, kMaxQp, offsets, motion);
  return commit(std::move(chosen), type, motion, src);
}

}  // namespace dive::codec
