#include "codec/encoder.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "codec/bitstream.h"
#include "codec/block_io.h"
#include "codec/dct.h"
#include "codec/quant.h"
#include "obs/obs.h"
#include "video/image_ops.h"

namespace dive::codec {

namespace {

constexpr int kMb = kMacroblockSize;
constexpr int kBlocksPerMb = 6;  ///< 4 luma 8x8 + U + V

std::uint8_t clamp_pixel(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

/// Mean of the reconstructed samples above and left of the 8x8 block at
/// pixel origin (bx, by). Mirrors H.264 DC intra prediction; the decoder
/// runs the identical function on its own reconstruction.
double dc_predict(const video::Plane& recon, int bx, int by) {
  double acc = 0.0;
  int n = 0;
  if (by > 0) {
    for (int x = 0; x < kBlockSize; ++x) {
      acc += recon.at(bx + x, by - 1);
      ++n;
    }
  }
  if (bx > 0) {
    for (int y = 0; y < kBlockSize; ++y) {
      acc += recon.at(bx - 1, by + y);
      ++n;
    }
  }
  return n > 0 ? acc / n : 128.0;
}

/// Motion-compensated 8x8 prediction block from a reference plane;
/// (hdx, hdy) is the displacement in half-pel units of that plane.
Block8x8 mc_predict(const video::Plane& ref, int bx, int by, int hdx,
                    int hdy) {
  Block8x8 pred;
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      pred[static_cast<std::size_t>(y * kBlockSize + x)] =
          static_cast<double>(half_pel_sample(ref, 2 * (bx + x) - hdx,
                                              2 * (by + y) - hdy));
  return pred;
}

Block8x8 const_predict(double v) {
  Block8x8 p;
  p.fill(v);
  return p;
}

/// Forward DCT of the (src - pred) residual of one 8x8 block.
void residual_dct(const video::Plane& src, int bx, int by,
                  const Block8x8& pred, Block8x8& coeffs) {
  Block8x8 residual;
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      residual[static_cast<std::size_t>(y * kBlockSize + x)] =
          static_cast<double>(src.at(bx + x, by + y)) -
          pred[static_cast<std::size_t>(y * kBlockSize + x)];
  forward_dct(residual, coeffs);
}

/// Transform + quantize the (src - pred) residual of one 8x8 block.
/// Returns true when any level is nonzero.
bool transform_block(const video::Plane& src, int bx, int by,
                     const Block8x8& pred, int qp, QuantBlock& levels) {
  Block8x8 coeffs;
  residual_dct(src, bx, by, pred, coeffs);
  quantize(coeffs, qp, levels);
  return !all_zero(levels);
}

/// Reconstruct one 8x8 block into `recon` from prediction + (optional)
/// coded levels.
void reconstruct_block(video::Plane& recon, int bx, int by,
                       const Block8x8& pred, const QuantBlock* levels,
                       int qp) {
  Block8x8 res{};
  if (levels != nullptr) {
    Block8x8 deq;
    dequantize(*levels, qp, deq);
    inverse_dct(deq, res);
  }
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      recon.at(bx + x, by + y) =
          clamp_pixel(pred[static_cast<std::size_t>(y * kBlockSize + x)] +
                      res[static_cast<std::size_t>(y * kBlockSize + x)]);
}

/// Pixel geometry of the 6 coded 8x8 blocks of a macroblock.
struct BlockGeometry {
  int bx, by;
  bool chroma;
};

std::array<BlockGeometry, kBlocksPerMb> mb_blocks(int col, int row) {
  const int px = col * kMb;
  const int py = row * kMb;
  const int cx = px / 2;
  const int cy = py / 2;
  return {{{px, py, false},
           {px + 8, py, false},
           {px, py + 8, false},
           {px + 8, py + 8, false},
           {cx, cy, true},
           {cx, cy, true}}};
}

void write_frame_header(BitWriter& bw, FrameType type, int base_qp,
                        int mb_cols, int mb_rows) {
  bw.put_bits(0xD1, 8);  // magic
  bw.put_bit(type == FrameType::kInter);
  bw.put_bits(static_cast<std::uint32_t>(base_qp), 6);
  bw.put_ue(static_cast<std::uint32_t>(mb_cols));
  bw.put_ue(static_cast<std::uint32_t>(mb_rows));
}

int mb_qp(int base_qp, const QpOffsetMap* offsets, int col, int row) {
  if (offsets == nullptr || offsets->empty()) return base_qp;
  return std::clamp(base_qp + offsets->at(col, row), kMinQp, kMaxQp);
}

}  // namespace

const char* to_string(MotionSearchMethod m) {
  switch (m) {
    case MotionSearchMethod::kDia: return "dia";
    case MotionSearchMethod::kHex: return "hex";
    case MotionSearchMethod::kUmh: return "umh";
    case MotionSearchMethod::kTesa: return "tesa";
    case MotionSearchMethod::kEsa: return "esa";
    case MotionSearchMethod::kHme: return "hme";
  }
  return "?";
}

Encoder::Encoder(EncoderConfig config)
    : config_(config), searcher_(config.search) {
  if (config_.width <= 0 || config_.height <= 0 ||
      config_.width % kMb != 0 || config_.height % kMb != 0) {
    throw std::invalid_argument(
        "Encoder: frame dimensions must be positive multiples of 16");
  }
  if (util::ThreadPool::resolve_thread_count(config_.threads) > 1)
    pool_ = std::make_unique<util::ThreadPool>(config_.threads);
}

Encoder::~Encoder() {
  if (prefetch_) prefetch_->lane.wait();
}

void Encoder::set_obs(obs::ObsContext* obs) {
  obs_ = obs;
  obs_handles_ = {};
  if (obs == nullptr) return;
  auto& m = obs->metrics;
  obs_handles_.frames = &m.counter("codec.frames");
  obs_handles_.motion_searches = &m.counter("codec.motion_searches");
  obs_handles_.trials_attempted = &m.counter("codec.rc.trials_attempted");
  obs_handles_.trials_encoded = &m.counter("codec.rc.trials_encoded");
  obs_handles_.trials_reused = &m.counter("codec.rc.trials_reused");
  obs_handles_.full_passes = &m.counter("codec.rc.full_transform_passes");
  obs_handles_.prefetch_launched = &m.counter("codec.prefetch.launched");
  obs_handles_.prefetch_hits = &m.counter("codec.prefetch.hits");
  obs_handles_.prefetch_misses = &m.counter("codec.prefetch.misses");
  obs_handles_.skip_skipped_mbs = &m.counter("codec.skip.skipped_mbs");
  obs_handles_.skip_inter_mbs = &m.counter("codec.skip.inter_mbs");
  obs_handles_.scene_cuts = &m.counter("codec.scene_cuts");
  obs_handles_.bytes_per_frame =
      &m.distribution("codec.bytes_per_frame", "bytes");
  obs_handles_.base_qp = &m.distribution("codec.base_qp", "qp");
  obs_handles_.psnr_y = &m.distribution("codec.psnr_y", "dB");
}

MotionField Encoder::analyze_motion(const video::Frame& src) const {
  if (!has_reference_) {
    discard_prefetch();
    return {};
  }
  DIVE_OBS_SPAN(span, obs_, "codec.motion_search", obs::kTrackCodec);
  span.flow(frame_ctx_);
  if (obs_handles_.motion_searches != nullptr)
    obs_handles_.motion_searches->add();
  return motion_with_prefetch(src);
}

MotionField Encoder::motion_with_prefetch(const video::Frame& src) const {
  if (prefetch_ && prefetch_->pending) {
    prefetch_->lane.wait();  // rethrows a failed background search
    prefetch_->pending = false;
    if (prefetch_->src_y == src.y) {
      ++prefetch_stats_.hits;
      if (obs_handles_.prefetch_hits != nullptr)
        obs_handles_.prefetch_hits->add();
      return std::move(prefetch_->field);
    }
    // Hint didn't match the frame actually encoded: fall through to a
    // fresh search. Same inputs would have produced the same field, so a
    // miss only costs time, never bytes.
    ++prefetch_stats_.misses;
    if (obs_handles_.prefetch_misses != nullptr)
      obs_handles_.prefetch_misses->add();
  }
  return searcher_.search_frame(src.y, reference_.y, pool_.get());
}

void Encoder::discard_prefetch() const {
  if (!prefetch_) return;
  prefetch_->lane.wait();
  if (prefetch_->pending) {
    prefetch_->pending = false;
    ++prefetch_stats_.misses;
    if (obs_handles_.prefetch_misses != nullptr)
      obs_handles_.prefetch_misses->add();
  }
}

void Encoder::launch_prefetch(const video::Frame& next_src) {
  if (!config_.pipeline_overlap) return;
  if (next_src.width() != config_.width ||
      next_src.height() != config_.height)
    return;
  if (!prefetch_) prefetch_ = std::make_unique<Prefetch>();
  prefetch_->lane.wait();  // idle by contract; defensive drain
  prefetch_->src_y = next_src.y;  // copy: hint needs no lifetime
  prefetch_->pending = true;
  ++prefetch_stats_.launched;
  if (obs_handles_.prefetch_launched != nullptr)
    obs_handles_.prefetch_launched->add();
  // The lane thread acts as the pool's caller lane; reference_ is final
  // for this frame and nothing else touches the pool until the next
  // encode/analyze call drains the lane.
  prefetch_->lane.run([this] {
    prefetch_->field =
        searcher_.search_frame(prefetch_->src_y, reference_.y, pool_.get());
  });
}

namespace {
/// Mean luma of a plane via an exact integer sum (deterministic: no
/// float-reduction ordering hazards on this path).
double mean_luma(const video::Plane& p) {
  std::uint64_t sum = 0;
  for (const std::uint8_t v : p.data) sum += v;
  const auto n = static_cast<std::uint64_t>(p.width) *
                 static_cast<std::uint64_t>(p.height);
  return n > 0 ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
}
}  // namespace

FrameType Encoder::next_frame_type(const video::Frame& src) {
  if (force_intra_ || !has_reference_) return FrameType::kIntra;
  if (config_.gop_length > 0 && frame_index_ % config_.gop_length == 0)
    return FrameType::kIntra;
  if (config_.scene_change_detection && config_.scene_change_luma_delta > 0.0) {
    const double step =
        std::abs(mean_luma(src.y) - mean_luma(reference_.y));
    if (step > config_.scene_change_luma_delta) {
      ++scene_changes_;
      if (obs_handles_.scene_cuts != nullptr) obs_handles_.scene_cuts->add();
      return FrameType::kIntra;
    }
  }
  return FrameType::kInter;
}

Encoder::InterPlan Encoder::build_inter_plan(const video::Frame& src,
                                             const MotionField& motion) const {
  const int mb_cols = config_.width / kMb;
  const int mb_rows = config_.height / kMb;
  const std::size_t mb_count =
      static_cast<std::size_t>(mb_cols) * static_cast<std::size_t>(mb_rows);

  DIVE_OBS_SPAN(span, obs_, "codec.inter_plan", obs::kTrackCodec);
  span.flow(frame_ctx_);

  InterPlan plan;
  plan.preds.resize(mb_count * kBlocksPerMb);
  plan.coeffs.resize(mb_count * kBlocksPerMb);
  plan.skip.assign(mb_count, 0);
  plan.eff_motion = motion;

  // SKIP decisions and predictions/residual DCTs, row-parallel. The SKIP
  // chain is serial WITHIN a row (the predicted MV is the previous
  // macroblock's coded MV, and the predictor chain resets per row —
  // mirroring bitstream emission), so rows stay independent and the
  // decisions are bit-identical for every thread count. A skipped
  // macroblock is predicted at the predicted MV and never pays the
  // residual DCT; its coefficients stay zero (value-initialized).
  const bool skip_on = config_.skip_blocks;
  const auto skip_budget =
      static_cast<std::uint32_t>(std::max(0, config_.skip_threshold));
  const Sad16Fn sad_fn = searcher_.sad_fn();
  const auto plan_row = [&](int row) {
    MotionVector pred{};  // coded-MV predictor chain, reset per row
    for (int col = 0; col < mb_cols; ++col) {
      const std::size_t mb = static_cast<std::size_t>(row) * mb_cols + col;
      const std::size_t base = mb * kBlocksPerMb;
      MotionVector mv = motion.at(col, row);
      bool skip = false;
      if (skip_on) {
        const std::uint32_t pred_sad = sad_16x16(
            src.y, reference_.y, col * kMb, row * kMb, pred, sad_fn);
        skip = pred_sad < skip_budget;
      }
      if (skip) {
        plan.skip[mb] = 1;
        mv = pred;
      }
      plan.eff_motion.at(col, row) = mv;
      pred = mv;
      // Chroma planes are half resolution: halve the half-pel units.
      const int cdx = mv.dx / 2;
      const int cdy = mv.dy / 2;
      const auto blocks = mb_blocks(col, row);
      for (int b = 0; b < kBlocksPerMb; ++b) {
        const auto& blk = blocks[static_cast<std::size_t>(b)];
        const video::Plane& sp =
            blk.chroma ? (b == 4 ? src.u : src.v) : src.y;
        const video::Plane& rp =
            blk.chroma ? (b == 4 ? reference_.u : reference_.v) : reference_.y;
        plan.preds[base + static_cast<std::size_t>(b)] =
            mc_predict(rp, blk.bx, blk.by, blk.chroma ? cdx : mv.dx,
                       blk.chroma ? cdy : mv.dy);
        if (!skip) {
          residual_dct(sp, blk.bx, blk.by,
                       plan.preds[base + static_cast<std::size_t>(b)],
                       plan.coeffs[base + static_cast<std::size_t>(b)]);
        }
      }
    }
  };
  if (pool_) pool_->parallel_for(0, mb_rows, plan_row);
  else for (int row = 0; row < mb_rows; ++row) plan_row(row);
  return plan;
}

Encoder::PreparedInter Encoder::prepare_inter_trial(
    const InterPlan& plan, int base_qp, const QpOffsetMap* offsets) const {
  base_qp = std::clamp(base_qp, kMinQp, kMaxQp);
  DIVE_OBS_SPAN(span, obs_, "codec.inter_trial", obs::kTrackCodec);
  span.flow(frame_ctx_);
  span.arg("qp", base_qp);
  const int mb_cols = config_.width / kMb;
  const int mb_rows = config_.height / kMb;
  const std::size_t mb_count =
      static_cast<std::size_t>(mb_cols) * static_cast<std::size_t>(mb_rows);

  PreparedInter prep;
  prep.base_qp = base_qp;
  prep.recon = video::Frame(config_.width, config_.height);

  // Parallel by row: quantize the precomputed residual coefficients at
  // this trial's QP and reconstruct. Each row writes a disjoint slice of
  // the scratch arrays and the reconstruction.
  prep.levels.resize(mb_count * kBlocksPerMb);
  prep.cbp.assign(mb_count, 0);
  prep.qps.assign(mb_count, base_qp);

  const auto quant_row = [&](int row) {
    for (int col = 0; col < mb_cols; ++col) {
      const std::size_t mb = static_cast<std::size_t>(row) * mb_cols + col;
      const std::size_t base = mb * kBlocksPerMb;
      const int qp = mb_qp(base_qp, offsets, col, row);
      prep.qps[mb] = qp;
      const bool skip = plan.skip[mb] != 0;
      int mask = 0;
      const auto blocks = mb_blocks(col, row);
      for (int b = 0; b < kBlocksPerMb; ++b) {
        const std::size_t i = base + static_cast<std::size_t>(b);
        if (!skip) {
          quantize(plan.coeffs[i], qp, prep.levels[i]);
          if (!all_zero(prep.levels[i])) mask |= 1 << b;
        }
        const auto& blk = blocks[static_cast<std::size_t>(b)];
        video::Plane& rp =
            blk.chroma ? (b == 4 ? prep.recon.u : prep.recon.v)
                       : prep.recon.y;
        // SKIP macroblocks reconstruct as the bare prediction — exactly
        // the reference copy the decoder performs on a skip bit.
        reconstruct_block(rp, blk.bx, blk.by, plan.preds[i],
                          (mask & (1 << b)) ? &prep.levels[i] : nullptr, qp);
      }
      prep.cbp[mb] = mask;
    }
  };
  if (pool_) pool_->parallel_for(0, mb_rows, quant_row);
  else for (int row = 0; row < mb_rows; ++row) quant_row(row);
  return prep;
}

std::vector<std::uint8_t> Encoder::emit_inter_trial(
    const PreparedInter& prep, const InterPlan& plan) const {
  // Serial raster-order bitstream emission. This is the only
  // order-dependent state (prev_qp chain, MV prediction), so running it
  // serially keeps the bytes bit-identical for every thread count. It
  // reads only prep.levels/cbp/qps and the plan's coded field — never
  // the reconstruction — which is what lets the pipelined schedule hand
  // prep.recon to reference_ (and start the next frame's motion search)
  // before emission finishes.
  //
  // SKIP bit semantics: "this macroblock's MV equals the predicted MV
  // and it carries no residual" — the decoder copies the reference at
  // the predicted MV. Threshold-forced skips satisfy the condition by
  // construction (build_inter_plan coded them at the predicted MV), so
  // forced and natural skips share one emission rule.
  const int mb_cols = config_.width / kMb;
  const int mb_rows = config_.height / kMb;
  BitWriter bw;
  write_frame_header(bw, FrameType::kInter, prep.base_qp, mb_cols, mb_rows);
  int prev_qp = prep.base_qp;
  for (int row = 0; row < mb_rows; ++row) {
    for (int col = 0; col < mb_cols; ++col) {
      const std::size_t mb = static_cast<std::size_t>(row) * mb_cols + col;
      const std::size_t base = mb * kBlocksPerMb;
      const MotionVector mv = plan.eff_motion.at(col, row);
      const MotionVector pred_mv =
          col > 0 ? plan.eff_motion.at(col - 1, row) : MotionVector{};
      const bool skip = mv == pred_mv && prep.cbp[mb] == 0;
      bw.put_bit(skip);
      if (skip) continue;
      bw.put_se(mv.dx - pred_mv.dx);
      bw.put_se(mv.dy - pred_mv.dy);
      bw.put_se(prep.qps[mb] - prev_qp);
      prev_qp = prep.qps[mb];
      bw.put_bits(static_cast<std::uint32_t>(prep.cbp[mb]), 6);
      for (int b = 0; b < kBlocksPerMb; ++b)
        if (prep.cbp[mb] & (1 << b))
          write_block(bw, prep.levels[base + static_cast<std::size_t>(b)]);
    }
  }
  return bw.finish();
}

/// Per-macroblock SKIP flags of one emitted trial, raster order: forced
/// skips plus the natural ones (coded MV equal to its predictor, zero
/// coded-block pattern — the same predicate emit_inter_trial writes a
/// skip bit for).
std::vector<std::uint8_t> Encoder::skip_map(const PreparedInter& prep,
                                            const InterPlan& plan) const {
  const int mb_cols = config_.width / kMb;
  const int mb_rows = config_.height / kMb;
  std::vector<std::uint8_t> skip(
      static_cast<std::size_t>(mb_cols) * static_cast<std::size_t>(mb_rows),
      0);
  for (int row = 0; row < mb_rows; ++row) {
    for (int col = 0; col < mb_cols; ++col) {
      const std::size_t mb = static_cast<std::size_t>(row) * mb_cols + col;
      const MotionVector mv = plan.eff_motion.at(col, row);
      const MotionVector pred_mv =
          col > 0 ? plan.eff_motion.at(col - 1, row) : MotionVector{};
      if (mv == pred_mv && prep.cbp[mb] == 0) skip[mb] = 1;
    }
  }
  return skip;
}

Encoder::Trial Encoder::run_inter_trial(const InterPlan& plan, int base_qp,
                                        const QpOffsetMap* offsets) const {
  PreparedInter prep = prepare_inter_trial(plan, base_qp, offsets);
  Trial trial;
  trial.base_qp = prep.base_qp;
  trial.data = emit_inter_trial(prep, plan);
  trial.skip = skip_map(prep, plan);
  trial.skipped_mbs = static_cast<int>(
      std::count(trial.skip.begin(), trial.skip.end(), std::uint8_t{1}));
  trial.recon = std::move(prep.recon);
  return trial;
}

Encoder::Trial Encoder::run_intra_trial(const video::Frame& src, int base_qp,
                                        const QpOffsetMap* offsets) const {
  base_qp = std::clamp(base_qp, kMinQp, kMaxQp);
  DIVE_OBS_SPAN(span, obs_, "codec.intra_trial", obs::kTrackCodec);
  span.flow(frame_ctx_);
  span.arg("qp", base_qp);
  const int mb_cols = config_.width / kMb;
  const int mb_rows = config_.height / kMb;

  Trial trial;
  trial.base_qp = base_qp;
  trial.recon = video::Frame(config_.width, config_.height);

  BitWriter bw;
  write_frame_header(bw, FrameType::kIntra, base_qp, mb_cols, mb_rows);

  // Intra macroblocks DC-predict from the running reconstruction, so
  // transform/emit/reconstruct proceed strictly in raster order.
  int prev_qp = base_qp;
  for (int row = 0; row < mb_rows; ++row) {
    for (int col = 0; col < mb_cols; ++col) {
      const int qp = mb_qp(base_qp, offsets, col, row);
      bw.put_se(qp - prev_qp);
      prev_qp = qp;
      const auto blocks = mb_blocks(col, row);
      for (int b = 0; b < kBlocksPerMb; ++b) {
        const auto& blk = blocks[static_cast<std::size_t>(b)];
        const video::Plane& sp =
            blk.chroma ? (b == 4 ? src.u : src.v) : src.y;
        video::Plane& rp =
            blk.chroma ? (b == 4 ? trial.recon.u : trial.recon.v)
                       : trial.recon.y;
        const Block8x8 pred = const_predict(dc_predict(rp, blk.bx, blk.by));
        QuantBlock levels;
        const bool coded = transform_block(sp, blk.bx, blk.by, pred, qp,
                                           levels);
        bw.put_bit(coded);
        if (coded) write_block(bw, levels);
        reconstruct_block(rp, blk.bx, blk.by, pred, coded ? &levels : nullptr,
                          qp);
      }
    }
  }

  trial.data = bw.finish();
  return trial;
}

EncodedFrame Encoder::finish_frame(std::vector<std::uint8_t> data,
                                   int base_qp, FrameType type,
                                   const MotionField* motion,
                                   const video::Frame& src,
                                   std::vector<std::uint8_t> skip) {
  // reference_ already holds this frame's reconstruction (the pipelined
  // schedule hands it over before emission so the prefetch can start).
  EncodedFrame out;
  out.data = std::move(data);
  out.type = type;
  out.base_qp = base_qp;
  if (type == FrameType::kInter && motion != nullptr) out.motion = *motion;
  out.psnr_y = video::psnr_y(src, reference_);
  if (type == FrameType::kInter) {
    out.skip = std::move(skip);
    out.skipped_mbs = static_cast<int>(
        std::count(out.skip.begin(), out.skip.end(), std::uint8_t{1}));
  }

  force_intra_ = false;
  ++frame_index_;
  last_qp_ = out.base_qp;

  if (type == FrameType::kInter) {
    const long mb_count = static_cast<long>(config_.width / kMb) *
                          static_cast<long>(config_.height / kMb);
    skip_stats_.skipped_mbs += out.skipped_mbs;
    skip_stats_.inter_mbs += mb_count;
    if (obs_handles_.skip_skipped_mbs != nullptr) {
      obs_handles_.skip_skipped_mbs->add(out.skipped_mbs);
      obs_handles_.skip_inter_mbs->add(mb_count);
    }
  }

  if (obs_handles_.frames != nullptr) {
    obs_handles_.frames->add();
    obs_handles_.bytes_per_frame->add(static_cast<double>(out.bytes()));
    obs_handles_.base_qp->add(out.base_qp);
    obs_handles_.psnr_y->add(out.psnr_y);
  }
  return out;
}

EncodedFrame Encoder::encode(const video::Frame& src, int base_qp,
                             const QpOffsetMap* offsets,
                             const MotionField* motion,
                             const video::Frame* next_src) {
  if (src.width() != config_.width || src.height() != config_.height)
    throw std::invalid_argument("Encoder::encode: frame size mismatch");
  DIVE_OBS_SPAN(span, obs_, "codec.encode", obs::kTrackCodec);
  span.flow(frame_ctx_);
  span.arg("base_qp", base_qp);
  const FrameType type = next_frame_type(src);
  MotionField local;
  if (type == FrameType::kInter && motion == nullptr) {
    local = analyze_motion(src);  // drains/consumes any pending prefetch
    motion = &local;
  } else {
    // Externally supplied motion (or intra): any pending prefetch must be
    // drained before the pool or reference_ are touched.
    discard_prefetch();
  }

  if (type == FrameType::kInter) {
    const InterPlan plan = build_inter_plan(src, *motion);
    PreparedInter prep = prepare_inter_trial(plan, base_qp, offsets);
    // Early reference handoff: the reconstruction is final once the
    // parallel pass is done, so publish it and start the next frame's
    // motion search while this frame's bitstream is emitted serially.
    reference_ = std::move(prep.recon);
    has_reference_ = true;
    if (next_src != nullptr) launch_prefetch(*next_src);
    std::vector<std::uint8_t> data = emit_inter_trial(prep, plan);
    return finish_frame(std::move(data), prep.base_qp, type,
                        &plan.eff_motion, src, skip_map(prep, plan));
  }

  Trial trial = run_intra_trial(src, base_qp, offsets);
  reference_ = std::move(trial.recon);
  has_reference_ = true;
  if (next_src != nullptr) launch_prefetch(*next_src);
  return finish_frame(std::move(trial.data), trial.base_qp, type, motion,
                      src);
}

EncodedFrame Encoder::encode_to_target(const video::Frame& src,
                                       std::size_t target_bytes,
                                       const QpOffsetMap* offsets,
                                       const MotionField* motion,
                                       const video::Frame* next_src) {
  if (src.width() != config_.width || src.height() != config_.height)
    throw std::invalid_argument("Encoder::encode_to_target: size mismatch");
  DIVE_OBS_SPAN(span, obs_, "codec.encode_to_target", obs::kTrackCodec);
  span.flow(frame_ctx_);
  span.arg("target_bytes", static_cast<long long>(target_bytes));
  const FrameType type = next_frame_type(src);
  MotionField local;
  if (type == FrameType::kInter && motion == nullptr) {
    local = analyze_motion(src);  // drains/consumes any pending prefetch
    motion = &local;
  } else {
    discard_prefetch();
  }

  rc_stats_ = {};

  // QP-independent work, paid once per frame when trial reuse is on.
  std::optional<InterPlan> shared_plan;
  if (type == FrameType::kInter && config_.reuse_trials) {
    shared_plan = build_inter_plan(src, *motion);
    rc_stats_.full_transform_passes = 1;
  }

  // Encode one QP trial. The memo stores every encoded trial (so the
  // final pick is always a move, never a re-encode); it serves as a
  // cache for revisited QPs only when reuse is on.
  std::map<int, Trial> memo;
  MotionField coded_motion;  // eff_motion when reuse is off (QP-independent)
  const auto eval = [&](int qp) -> Trial& {
    ++rc_stats_.trials_attempted;
    if (config_.reuse_trials) {
      if (auto it = memo.find(qp); it != memo.end()) {
        ++rc_stats_.trials_reused;
        return it->second;
      }
    }
    ++rc_stats_.trials_encoded;
    Trial t;
    if (type == FrameType::kInter) {
      if (shared_plan) {
        t = run_inter_trial(*shared_plan, qp, offsets);
      } else {
        // Reuse disabled: every trial pays the full motion-compensation
        // + DCT pass, matching the historical cost model. The coded
        // field is QP-independent, so every trial's plan carries the
        // same eff_motion; stash the first for finish_frame.
        ++rc_stats_.full_transform_passes;
        InterPlan plan = build_inter_plan(src, *motion);
        if (coded_motion.empty()) coded_motion = plan.eff_motion;
        t = run_inter_trial(plan, qp, offsets);
      }
    } else {
      // Intra prediction depends on the QP-dependent reconstruction, so
      // an intra trial is always a full pass.
      ++rc_stats_.full_transform_passes;
      t = run_intra_trial(src, qp, offsets);
    }
    return memo.emplace(qp, std::move(t)).first->second;
  };

  // Binary search over base QP for the best quality that fits the budget.
  int lo = kMinQp;
  int hi = kMaxQp;
  int qp = std::clamp(last_qp_, kMinQp, kMaxQp);
  int best_qp = -1;  // smallest fitting QP seen so far
  int over_qp = -1;  // most recent non-fitting QP

  for (int iter = 0; iter < std::max(1, config_.rate_iterations); ++iter) {
    const Trial& trial = eval(qp);
    if (trial.data.size() <= target_bytes) {
      hi = trial.base_qp - 1;
      if (best_qp < 0 || trial.base_qp < best_qp) best_qp = trial.base_qp;
    } else {
      lo = trial.base_qp + 1;
      over_qp = trial.base_qp;
    }
    if (lo > hi) break;
    qp = (lo + hi) / 2;
  }

  // The memo guarantees materializing the winner never re-encodes it.
  const int chosen_qp = best_qp >= 0 ? best_qp : over_qp;
  span.arg("chosen_qp", chosen_qp);
  if (obs_handles_.trials_attempted != nullptr) {
    obs_handles_.trials_attempted->add(rc_stats_.trials_attempted);
    obs_handles_.trials_encoded->add(rc_stats_.trials_encoded);
    obs_handles_.trials_reused->add(rc_stats_.trials_reused);
    obs_handles_.full_passes->add(rc_stats_.full_transform_passes);
  }
  Trial chosen = std::move(memo.at(chosen_qp));
  // The winner is already fully emitted; publish its reconstruction and
  // start the next frame's motion search before PSNR/bookkeeping, so the
  // prefetch also overlaps whatever the caller does until the next
  // analyze/encode call (transmit simulation, detector inference, ...).
  reference_ = std::move(chosen.recon);
  has_reference_ = true;
  if (next_src != nullptr) launch_prefetch(*next_src);
  const MotionField* coded =
      type != FrameType::kInter ? nullptr
      : shared_plan             ? &shared_plan->eff_motion
                                : &coded_motion;
  return finish_frame(std::move(chosen.data), chosen.base_qp, type, coded,
                      src, std::move(chosen.skip));
}

}  // namespace dive::codec
