// Block-matching motion estimation over 16x16 luma macroblocks.
//
// Implements the five x264 search strategies the paper sweeps in Fig. 9
// (DIA, HEX, UMH, TESA, ESA). The pattern searches (DIA/HEX/UMH) start
// from the spatial predictor and pay a rate penalty for straying from it,
// so they produce spatially coherent fields; the exhaustive searches
// chase the global residual minimum, which on aliased or plain texture
// need not be the true motion — exactly the noise source the paper
// observes ("motion estimation methods are designed for obtaining minimal
// residual data but not real object matching").
//
// A sixth method, HME, runs a hierarchical coarse-to-fine pyramid search:
// the luma plane is downsampled 2x per level, a cheap full search at the
// coarsest level covers the entire displacement range, and the top
// candidates are refined at each finer level with the same rate-aware
// `consider` machinery the pattern searches use. HME therefore finds the
// large global displacements only ESA/TESA are guaranteed to reach, at a
// small multiple of HEX's cost, and keeps the predictor bias that makes
// pattern fields spatially coherent.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/sad_kernels.h"
#include "codec/types.h"
#include "video/frame.h"

namespace dive::util {
class ThreadPool;
}

namespace dive::codec {

struct MotionSearchConfig {
  MotionSearchMethod method = MotionSearchMethod::kHex;
  /// Max |component| of a motion vector in pixels. 24 keeps fast pans
  /// (vehicle turns reach ~15-25 px/frame at our focal lengths) inside
  /// the window; vectors at the limit are saturated and unreliable.
  int range = 24;
  double lambda = 6.0;   ///< rate-cost weight for pattern searches
  /// SAD kernel policy for the interior 16x16 fast path. kAuto follows
  /// the process-wide dispatch (SIMD when available, see sad_kernels.h);
  /// kScalar pins the canonical scalar kernel. Every kernel returns the
  /// same sums, so the searched field is identical either way.
  SadKernelPolicy sad = SadKernelPolicy::kAuto;
  /// Pyramid levels ABOVE full resolution for kHme (each level halves
  /// the luma). 2 gives a 3-level pyramid; clamped so the coarsest block
  /// stays at least 4x4.
  int hme_levels = 2;
  /// Coarse-level candidates carried down the pyramid for kHme. More
  /// candidates approach exhaustive quality at linear extra cost.
  int hme_candidates = 3;
};

/// Downsampled luma pyramid for hierarchical search. levels[0] is the
/// half-resolution plane, levels[1] quarter, ... Each sample is the
/// rounded mean of the 2x2 source quad (odd edges clamp).
struct LumaPyramid {
  std::vector<video::Plane> levels;
};

/// Builds `levels` pyramid planes above `base` (2x downsample each).
LumaPyramid build_pyramid(const video::Plane& base, int levels);

/// Reference sample at half-pel coordinates (hx, hy) = pixel position
/// (hx/2, hy/2), bilinearly averaged on odd components; reads clamp to
/// the plane border. Shared by motion search and motion compensation so
/// search cost and prediction agree exactly.
int half_pel_sample(const video::Plane& ref, int hx, int hy);

/// Sum of absolute differences between the 16x16 block of `cur` at
/// (cx, cy) and the block of `ref` displaced by `mv` (half-pel units);
/// reads outside `ref` clamp to the border. Even-component (full-pel)
/// interior displacements take the dispatched `fast` kernel (null = the
/// process-wide auto dispatch); half-pel and border reads stay scalar.
std::uint32_t sad_16x16(const video::Plane& cur, const video::Plane& ref,
                        int cx, int cy, MotionVector mv,
                        Sad16Fn fast = nullptr);

/// Sum of absolute Hadamard-transformed differences (TESA metric).
std::uint32_t satd_16x16(const video::Plane& cur, const video::Plane& ref,
                         int cx, int cy, MotionVector mv);

class MotionSearcher {
 public:
  explicit MotionSearcher(MotionSearchConfig config = {})
      : config_(config), sad_fn_(resolve_sad_fn(config.sad)) {}

  [[nodiscard]] const MotionSearchConfig& config() const { return config_; }

  /// The SAD kernel this searcher resolved from its policy.
  [[nodiscard]] Sad16Fn sad_fn() const { return sad_fn_; }

  /// Estimates the motion field of `cur` against reference `ref`
  /// (both luma planes; dimensions must match and be multiples of 16).
  /// Rows are searched independently (the spatial predictor chain resets
  /// per row), so a pool parallelizes over rows with a result that is
  /// bit-identical to the serial field for every thread count.
  [[nodiscard]] MotionField search_frame(const video::Plane& cur,
                                         const video::Plane& ref,
                                         util::ThreadPool* pool = nullptr) const;

 private:
  /// Current/reference pyramids, only populated for kHme.
  struct PyramidPair {
    LumaPyramid cur;
    LumaPyramid ref;
  };

  MotionVector search_block(const video::Plane& cur, const video::Plane& ref,
                            int cx, int cy, MotionVector pred,
                            std::uint32_t& best_cost,
                            const PyramidPair* pyr) const;

  MotionSearchConfig config_;
  Sad16Fn sad_fn_;  ///< resolved once from config_.sad
};

}  // namespace dive::codec
