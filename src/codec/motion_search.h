// Block-matching motion estimation over 16x16 luma macroblocks.
//
// Implements the five x264 search strategies the paper sweeps in Fig. 9
// (DIA, HEX, UMH, TESA, ESA). The pattern searches (DIA/HEX/UMH) start
// from the spatial predictor and pay a rate penalty for straying from it,
// so they produce spatially coherent fields; the exhaustive searches
// chase the global residual minimum, which on aliased or plain texture
// need not be the true motion — exactly the noise source the paper
// observes ("motion estimation methods are designed for obtaining minimal
// residual data but not real object matching").
#pragma once

#include <cstdint>

#include "codec/sad_kernels.h"
#include "codec/types.h"
#include "video/frame.h"

namespace dive::util {
class ThreadPool;
}

namespace dive::codec {

struct MotionSearchConfig {
  MotionSearchMethod method = MotionSearchMethod::kHex;
  /// Max |component| of a motion vector in pixels. 24 keeps fast pans
  /// (vehicle turns reach ~15-25 px/frame at our focal lengths) inside
  /// the window; vectors at the limit are saturated and unreliable.
  int range = 24;
  double lambda = 6.0;   ///< rate-cost weight for pattern searches
  /// SAD kernel policy for the interior 16x16 fast path. kAuto follows
  /// the process-wide dispatch (SIMD when available, see sad_kernels.h);
  /// kScalar pins the canonical scalar kernel. Every kernel returns the
  /// same sums, so the searched field is identical either way.
  SadKernelPolicy sad = SadKernelPolicy::kAuto;
};

/// Reference sample at half-pel coordinates (hx, hy) = pixel position
/// (hx/2, hy/2), bilinearly averaged on odd components; reads clamp to
/// the plane border. Shared by motion search and motion compensation so
/// search cost and prediction agree exactly.
int half_pel_sample(const video::Plane& ref, int hx, int hy);

/// Sum of absolute differences between the 16x16 block of `cur` at
/// (cx, cy) and the block of `ref` displaced by `mv` (half-pel units);
/// reads outside `ref` clamp to the border. Even-component (full-pel)
/// interior displacements take the dispatched `fast` kernel (null = the
/// process-wide auto dispatch); half-pel and border reads stay scalar.
std::uint32_t sad_16x16(const video::Plane& cur, const video::Plane& ref,
                        int cx, int cy, MotionVector mv,
                        Sad16Fn fast = nullptr);

/// Sum of absolute Hadamard-transformed differences (TESA metric).
std::uint32_t satd_16x16(const video::Plane& cur, const video::Plane& ref,
                         int cx, int cy, MotionVector mv);

class MotionSearcher {
 public:
  explicit MotionSearcher(MotionSearchConfig config = {})
      : config_(config), sad_fn_(resolve_sad_fn(config.sad)) {}

  [[nodiscard]] const MotionSearchConfig& config() const { return config_; }

  /// The SAD kernel this searcher resolved from its policy.
  [[nodiscard]] Sad16Fn sad_fn() const { return sad_fn_; }

  /// Estimates the motion field of `cur` against reference `ref`
  /// (both luma planes; dimensions must match and be multiples of 16).
  /// Rows are searched independently (the spatial predictor chain resets
  /// per row), so a pool parallelizes over rows with a result that is
  /// bit-identical to the serial field for every thread count.
  [[nodiscard]] MotionField search_frame(const video::Plane& cur,
                                         const video::Plane& ref,
                                         util::ThreadPool* pool = nullptr) const;

 private:
  MotionVector search_block(const video::Plane& cur, const video::Plane& ref,
                            int cx, int cy, MotionVector pred,
                            std::uint32_t& best_cost) const;

  MotionSearchConfig config_;
  Sad16Fn sad_fn_;  ///< resolved once from config_.sad
};

}  // namespace dive::codec
