// Shared codec vocabulary: macroblocks, motion vectors, QP offset maps,
// frame types, and the motion-estimation method menu (Sec. II-B and the
// x264 method sweep of Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec.h"

namespace dive::codec {

/// Macroblock edge length in luma pixels (the paper's "typical size").
constexpr int kMacroblockSize = 16;

/// Transform block edge (8x8 DCT).
constexpr int kBlockSize = 8;

/// Valid quantizer-parameter range (H.264-style).
constexpr int kMinQp = 0;
constexpr int kMaxQp = 51;

enum class FrameType : std::uint8_t { kIntra = 0, kInter = 1 };

/// Block-matching search strategies, in ascending x264 complexity order,
/// plus the hierarchical pyramid search (HME) that covers the same
/// displacement range as the exhaustive methods at pattern-search cost.
enum class MotionSearchMethod : std::uint8_t {
  kDia = 0,   ///< small-diamond iterative search
  kHex = 1,   ///< hexagon search (DiVE's default)
  kUmh = 2,   ///< uneven multi-hexagon search
  kTesa = 3,  ///< exhaustive with Hadamard (SATD) metric
  kEsa = 4,   ///< exhaustive SAD search
  kHme = 5,   ///< hierarchical coarse-to-fine pyramid search
};

const char* to_string(MotionSearchMethod m);

/// Motion vector of one macroblock in HALF-PEL units (the vector points
/// from the reference block to the current block, i.e. it is the
/// on-screen motion of the content). dx = 3 means 1.5 pixels rightward.
struct MotionVector {
  int dx = 0;  ///< half-pel units
  int dy = 0;  ///< half-pel units

  bool operator==(const MotionVector&) const = default;
  [[nodiscard]] bool is_zero() const { return dx == 0 && dy == 0; }
  /// The motion in PIXELS.
  [[nodiscard]] geom::Vec2 as_vec2() const {
    return {static_cast<double>(dx) * 0.5, static_cast<double>(dy) * 0.5};
  }
  /// Construct from whole-pixel displacement.
  static constexpr MotionVector from_fullpel(int px, int py) {
    return {px * 2, py * 2};
  }
};

/// Per-macroblock motion field for one frame.
struct MotionField {
  int mb_cols = 0;
  int mb_rows = 0;
  std::vector<MotionVector> mvs;   ///< row-major, mb_cols * mb_rows
  std::vector<std::uint32_t> sad;  ///< matching cost of the chosen MV

  MotionField() = default;
  MotionField(int cols, int rows)
      : mb_cols(cols), mb_rows(rows),
        mvs(static_cast<std::size_t>(cols) * rows),
        sad(static_cast<std::size_t>(cols) * rows, 0) {}

  [[nodiscard]] bool empty() const { return mvs.empty(); }
  [[nodiscard]] std::size_t size() const { return mvs.size(); }
  [[nodiscard]] const MotionVector& at(int col, int row) const {
    return mvs[static_cast<std::size_t>(row) * mb_cols + col];
  }
  MotionVector& at(int col, int row) {
    return mvs[static_cast<std::size_t>(row) * mb_cols + col];
  }

  /// Fraction of macroblocks with a non-zero MV — the paper's η signal
  /// for ego-motion judgement (Sec. III-B2).
  [[nodiscard]] double nonzero_ratio() const {
    if (mvs.empty()) return 0.0;
    std::size_t nz = 0;
    for (const auto& mv : mvs)
      if (!mv.is_zero()) ++nz;
    return static_cast<double>(nz) / static_cast<double>(mvs.size());
  }

  /// Pixel center of macroblock (col, row).
  [[nodiscard]] geom::Vec2 mb_center(int col, int row) const {
    return {col * static_cast<double>(kMacroblockSize) + kMacroblockSize / 2.0,
            row * static_cast<double>(kMacroblockSize) + kMacroblockSize / 2.0};
  }
};

/// Per-macroblock QP offsets (added to the frame base QP). A positive
/// value compresses that macroblock harder — the paper's QP offset map
/// (Sec. II-B); DiVE writes 0 for foreground and +delta for background.
struct QpOffsetMap {
  int mb_cols = 0;
  int mb_rows = 0;
  std::vector<std::int8_t> offsets;

  QpOffsetMap() = default;
  QpOffsetMap(int cols, int rows, std::int8_t fill = 0)
      : mb_cols(cols), mb_rows(rows),
        offsets(static_cast<std::size_t>(cols) * rows, fill) {}

  [[nodiscard]] bool empty() const { return offsets.empty(); }
  [[nodiscard]] std::int8_t at(int col, int row) const {
    return offsets[static_cast<std::size_t>(row) * mb_cols + col];
  }
  std::int8_t& at(int col, int row) {
    return offsets[static_cast<std::size_t>(row) * mb_cols + col];
  }
};

}  // namespace dive::codec
