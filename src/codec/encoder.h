// Block video encoder: I/P GoP structure, per-macroblock QP via offset
// maps, motion-compensated prediction, 8x8 DCT + quantization, Exp-Golomb
// entropy coding — the "basic video encoding operation" the paper assumes
// on the mobile agent (Sec. II-A/II-B), plus byte-budget targeting used by
// DiVE's Adaptive Video Encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "codec/motion_search.h"
#include "codec/types.h"
#include "video/frame.h"

namespace dive::codec {

struct EncoderConfig {
  int width = 0;   ///< must be a multiple of 16
  int height = 0;  ///< must be a multiple of 16
  MotionSearchConfig search;
  int gop_length = 120;         ///< distance between intra frames
  int rate_iterations = 5;      ///< QP trials for encode_to_target
};

struct EncodedFrame {
  std::vector<std::uint8_t> data;
  FrameType type = FrameType::kIntra;
  int base_qp = 0;
  /// Motion field the encoder used (empty for intra frames).
  MotionField motion;
  double psnr_y = 0.0;  ///< reconstruction quality vs. the source

  [[nodiscard]] std::size_t bytes() const { return data.size(); }
};

class Encoder {
 public:
  explicit Encoder(EncoderConfig config);

  [[nodiscard]] const EncoderConfig& config() const { return config_; }
  [[nodiscard]] int frame_index() const { return frame_index_; }
  [[nodiscard]] bool has_reference() const { return has_reference_; }
  [[nodiscard]] const video::Frame& reference() const { return reference_; }

  /// Motion analysis of `src` against the current reference without
  /// encoding (used by DiVE preprocessing, which needs MVs before the QP
  /// map exists). Empty field when no reference frame is available yet.
  [[nodiscard]] MotionField analyze_motion(const video::Frame& src) const;

  /// Encodes at a fixed base QP (CRF-style). `offsets`, when given, adds a
  /// per-macroblock delta. `motion` reuses a precomputed field (must come
  /// from analyze_motion on the same source). Advances codec state.
  EncodedFrame encode(const video::Frame& src, int base_qp,
                      const QpOffsetMap* offsets = nullptr,
                      const MotionField* motion = nullptr);

  /// Encodes the frame to fit `target_bytes`: searches base QP over a few
  /// trials (single motion-estimation pass), commits the best-fitting
  /// trial. The result may exceed the target if even QP 51 cannot fit.
  EncodedFrame encode_to_target(const video::Frame& src,
                                std::size_t target_bytes,
                                const QpOffsetMap* offsets = nullptr,
                                const MotionField* motion = nullptr);

  /// Force the next encoded frame to be intra.
  void request_intra() { force_intra_ = true; }

 private:
  struct Trial {
    std::vector<std::uint8_t> data;
    video::Frame recon;
    int base_qp = 0;
  };

  [[nodiscard]] FrameType next_frame_type() const;
  Trial run_trial(const video::Frame& src, FrameType type, int base_qp,
                  const QpOffsetMap* offsets, const MotionField* motion) const;
  EncodedFrame commit(Trial trial, FrameType type, const MotionField* motion,
                      const video::Frame& src);

  EncoderConfig config_;
  MotionSearcher searcher_;
  video::Frame reference_;
  bool has_reference_ = false;
  bool force_intra_ = false;
  int frame_index_ = 0;
  int last_qp_ = 30;
};

}  // namespace dive::codec
