// Block video encoder: I/P GoP structure, per-macroblock QP via offset
// maps, motion-compensated prediction, 8x8 DCT + quantization, Exp-Golomb
// entropy coding — the "basic video encoding operation" the paper assumes
// on the mobile agent (Sec. II-A/II-B), plus byte-budget targeting used by
// DiVE's Adaptive Video Encoding.
//
// Threading: motion search and the per-macroblock transform/quantize/
// reconstruct loops of inter frames run on a fixed worker pool
// (EncoderConfig::threads, DIVE_THREADS). Bitstream emission stays a
// serial raster-order pass over precomputed per-macroblock levels, so the
// encoded bytes are bit-identical for every thread count. Intra frames
// are inherently serial (DC prediction reads the running reconstruction).
//
// Rate control: encode_to_target binary-searches the base QP. The
// QP-independent work of an inter frame — motion field, motion-
// compensated predictions, and the DCT coefficients of the prediction
// residual — is computed once per frame; each QP trial only re-quantizes,
// entropy-codes, and reconstructs. Trials are additionally memoized by QP
// for the duration of the frame, so no QP is ever encoded twice.
//
// Frame pipelining: when the caller hands encode()/encode_to_target() a
// `next_src` hint, the motion search of frame N+1 starts on the worker
// pool (driven from a background util::AsyncLane) as soon as frame N's
// reconstruction is final — for fixed-QP encodes that is before the
// serial bitstream emission of frame N begins, so the two overlap. The
// prefetched field is consumed by the next analyze_motion/encode call;
// because motion search is a pure function of (source luma, reference
// luma) and the reference is the identical reconstruction either way,
// prefetching never changes a single output bit (see DESIGN.md §11).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/dct.h"
#include "codec/motion_search.h"
#include "codec/quant.h"
#include "codec/types.h"
#include "obs/frame_context.h"
#include "util/async_lane.h"
#include "util/thread_pool.h"
#include "video/frame.h"

namespace dive::obs {
struct ObsContext;
class Counter;
class Distribution;
}  // namespace dive::obs

namespace dive::codec {

struct EncoderConfig {
  int width = 0;   ///< must be a multiple of 16
  int height = 0;  ///< must be a multiple of 16
  MotionSearchConfig search;
  int gop_length = 120;         ///< distance between intra frames
  int rate_iterations = 5;      ///< QP trials for encode_to_target
  /// Worker lanes (including the calling thread) for motion search and
  /// the inter-frame macroblock loop. 0 = DIVE_THREADS env var, else all
  /// hardware threads; 1 = fully serial. Output is bit-identical for
  /// every value.
  int threads = 0;
  /// Compute QP-independent work (predictions, residual DCT) once per
  /// frame and memoize rate-control trials by QP. Purely a caching
  /// layer: the encoded bytes are identical with it on or off.
  bool reuse_trials = true;
  /// Honor `next_src` hints: overlap the next frame's motion search with
  /// the current frame's serial bitstream emission (fixed-QP path) or
  /// with commit/PSNR and caller-side work (rate-controlled path).
  /// Purely a scheduling change: output is identical with it on or off,
  /// with hints present or absent, for every thread count.
  bool pipeline_overlap = true;
  /// Per-macroblock SKIP mode: when the luma SAD at the PREDICTED motion
  /// vector (the left-neighbor chain the bitstream codes against) is
  /// below skip_threshold, the macroblock is coded as a one-bit SKIP —
  /// the decoder copies the reference at the predicted MV and no
  /// residual is transformed, quantized, or emitted. Changes the
  /// bitstream (that is the point); deterministic for every thread
  /// count / kernel / overlap setting.
  bool skip_blocks = true;
  /// Luma SAD budget (16x16, so 512 = 2 per pixel) under which a
  /// macroblock is forced to SKIP. Only meaningful with skip_blocks.
  int skip_threshold = 512;
  /// Average-luma scene-change detection (the DSV encoders' heuristic):
  /// when the mean luma of the incoming frame differs from the current
  /// reference's by more than scene_change_luma_delta, the frame is
  /// coded intra — a global luma step (tunnel entry/exit, lighting cut)
  /// would otherwise leave every macroblock with a large DC residual and
  /// defeat SKIP/temporal prediction for the rest of the GoP. Forcing
  /// the I-frame resets the temporal chain exactly like a cold start.
  bool scene_change_detection = true;
  /// Mean-luma step (DN, 0..255 scale) that triggers the cut detector.
  double scene_change_luma_delta = 24.0;
};

/// Accounting of the most recent encode_to_target call.
struct RateControlStats {
  int trials_attempted = 0;  ///< QP points the search evaluated
  int trials_encoded = 0;    ///< trials that ran quantize + entropy coding
  int trials_reused = 0;     ///< trials served from the per-frame QP cache
  /// Motion-compensate + forward-DCT passes over the whole frame. With
  /// reuse_trials this is 1 per inter frame regardless of trial count;
  /// without it, every trial pays a full pass.
  int full_transform_passes = 0;
};

struct EncodedFrame {
  std::vector<std::uint8_t> data;
  FrameType type = FrameType::kIntra;
  int base_qp = 0;
  /// Motion field the encoder CODED (empty for intra frames): SKIP
  /// macroblocks carry their predicted MV, matching what the decoder
  /// reconstructs. The searched field is available via analyze_motion.
  MotionField motion;
  double psnr_y = 0.0;  ///< reconstruction quality vs. the source
  /// Macroblocks coded as SKIP (inter frames; threshold-forced and
  /// natural skips both count).
  int skipped_mbs = 0;
  /// Per-macroblock SKIP flags in raster order (inter frames; empty for
  /// intra). Exactly the skip bits the bitstream carries — free
  /// compression metadata that roi::RoiMetadata ships to the edge.
  std::vector<std::uint8_t> skip;

  [[nodiscard]] std::size_t bytes() const { return data.size(); }
};

class Encoder {
 public:
  explicit Encoder(EncoderConfig config);
  ~Encoder();  ///< drains any in-flight motion prefetch

  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;

  [[nodiscard]] const EncoderConfig& config() const { return config_; }
  [[nodiscard]] int frame_index() const { return frame_index_; }
  [[nodiscard]] bool has_reference() const { return has_reference_; }
  [[nodiscard]] const video::Frame& reference() const { return reference_; }

  /// Motion analysis of `src` against the current reference without
  /// encoding (used by DiVE preprocessing, which needs MVs before the QP
  /// map exists). Empty field when no reference frame is available yet.
  /// Consumes a pending motion prefetch when its source matches `src`
  /// byte-for-byte (the result is identical either way — a mismatched
  /// hint only costs a fresh search).
  [[nodiscard]] MotionField analyze_motion(const video::Frame& src) const;

  /// Encodes at a fixed base QP (CRF-style). `offsets`, when given, adds a
  /// per-macroblock delta. `motion` reuses a precomputed field (must come
  /// from analyze_motion on the same source). `next_src`, when given and
  /// pipeline_overlap is on, starts the next frame's motion search on the
  /// pool while this frame's bitstream is emitted serially (the luma is
  /// copied, so the hint needs no lifetime beyond this call). Advances
  /// codec state.
  EncodedFrame encode(const video::Frame& src, int base_qp,
                      const QpOffsetMap* offsets = nullptr,
                      const MotionField* motion = nullptr,
                      const video::Frame* next_src = nullptr);

  /// Encodes the frame to fit `target_bytes`: searches base QP over a few
  /// trials (single motion-estimation pass), commits the best-fitting
  /// trial. The result may exceed the target if even QP 51 cannot fit.
  /// `next_src` behaves as in encode(); here the prefetch launches once
  /// the winning trial is chosen, overlapping commit/PSNR and whatever
  /// the caller does before the next frame.
  EncodedFrame encode_to_target(const video::Frame& src,
                                std::size_t target_bytes,
                                const QpOffsetMap* offsets = nullptr,
                                const MotionField* motion = nullptr,
                                const video::Frame* next_src = nullptr);

  /// Force the next encoded frame to be intra.
  void request_intra() { force_intra_ = true; }

  /// Attaches an observability context (non-owning, null detaches):
  /// "codec.*" metrics plus motion-search/plan/trial spans on
  /// obs::kTrackCodec. Metric handles are resolved once here, so the
  /// per-frame hot path pays only pointer checks; spans additionally
  /// require the context's tracer to be enabled. All spans are emitted
  /// from the calling thread — never from pool workers — so recorded
  /// observations are identical for every thread count.
  void set_obs(obs::ObsContext* obs);

  /// Per-frame causal identity: spans emitted while encoding the next
  /// frame carry this context's flow id, linking them to the frame's
  /// uplink/serve/edge spans across tracks. The harness mints one
  /// context per captured frame; an unminted (default) context leaves
  /// spans untagged. Plain data — survives DIVE_OBS_DISABLED builds.
  void set_frame_context(const obs::FrameTraceContext& ctx) {
    frame_ctx_ = ctx;
  }

  /// Trial accounting of the latest encode_to_target call.
  [[nodiscard]] const RateControlStats& rate_control_stats() const {
    return rc_stats_;
  }

  /// Lifetime accounting of the motion-prefetch pipeline.
  struct PrefetchStats {
    long launched = 0;  ///< prefetches started from next_src hints
    long hits = 0;      ///< consumed by a matching analyze/encode
    long misses = 0;    ///< discarded (source mismatch or unused)
  };
  [[nodiscard]] const PrefetchStats& prefetch_stats() const {
    return prefetch_stats_;
  }

  /// Lifetime accounting of SKIP coding across committed inter frames.
  struct SkipStats {
    long skipped_mbs = 0;  ///< macroblocks coded as SKIP
    long inter_mbs = 0;    ///< all inter macroblocks committed
  };
  [[nodiscard]] const SkipStats& skip_stats() const { return skip_stats_; }

  /// Scene cuts detected so far (frames forced intra by the average-luma
  /// change heuristic; GoP-boundary and requested intras don't count).
  [[nodiscard]] long scene_change_count() const { return scene_changes_; }

  /// Resolved worker-lane count (after DIVE_THREADS / hardware defaults).
  [[nodiscard]] int thread_count() const {
    return pool_ ? pool_->thread_count() : 1;
  }

 private:
  struct Trial {
    std::vector<std::uint8_t> data;
    video::Frame recon;
    int base_qp = 0;
    int skipped_mbs = 0;
    std::vector<std::uint8_t> skip;  ///< per-mb emitted SKIP flags
  };

  /// QP-independent per-frame state of an inter frame: the SKIP decision
  /// and effective (coded) motion field, and for every 8x8 block (6 per
  /// macroblock: 4 luma + U + V) the motion-compensated prediction and
  /// the forward DCT of the prediction residual. SKIP macroblocks carry
  /// predictions at the predicted MV and never pay the residual DCT.
  struct InterPlan {
    std::vector<Block8x8> preds;   ///< mb_count * 6, block-major
    std::vector<Block8x8> coeffs;  ///< mb_count * 6, block-major
    std::vector<std::uint8_t> skip;  ///< per-mb SKIP decision
    /// Coded field: SKIP entries replaced by their predicted MV (the
    /// exact field the decoder will reconstruct).
    MotionField eff_motion;
  };

  /// Output of the parallel half of an inter trial (quantize +
  /// reconstruct); the serial emission pass reads it without touching
  /// the reconstruction, which is what makes the early reference
  /// handoff of the pipelined schedule safe.
  struct PreparedInter {
    std::vector<QuantBlock> levels;  ///< mb_count * 6, block-major
    std::vector<int> cbp;            ///< coded-block pattern per mb
    std::vector<int> qps;            ///< resolved QP per mb
    video::Frame recon;
    int base_qp = 0;
  };

  /// In-flight next-frame motion search (see DESIGN.md §11). The lane
  /// owns the background thread; `src_y` is a copy of the hinted luma so
  /// the hint has no lifetime requirements. Mutable because consuming a
  /// prefetch from the logically-const analyze_motion() is a pure cache
  /// hit. Declared after pool_/reference_ so it is destroyed (and its
  /// task drained) first.
  struct Prefetch {
    util::AsyncLane lane;
    bool pending = false;
    video::Plane src_y;
    MotionField field;
  };

  /// Frame-type decision for `src`: forced/GoP intra checks plus the
  /// average-luma scene-change detector (which needs the source pixels).
  /// Non-const: detected cuts are counted.
  [[nodiscard]] FrameType next_frame_type(const video::Frame& src);
  [[nodiscard]] InterPlan build_inter_plan(const video::Frame& src,
                                           const MotionField& motion) const;
  [[nodiscard]] PreparedInter prepare_inter_trial(const InterPlan& plan,
                                                  int base_qp,
                                                  const QpOffsetMap* offsets)
      const;
  [[nodiscard]] std::vector<std::uint8_t> emit_inter_trial(
      const PreparedInter& prep, const InterPlan& plan) const;
  [[nodiscard]] std::vector<std::uint8_t> skip_map(const PreparedInter& prep,
                                                   const InterPlan& plan)
      const;
  [[nodiscard]] Trial run_inter_trial(const InterPlan& plan, int base_qp,
                                      const QpOffsetMap* offsets) const;
  [[nodiscard]] Trial run_intra_trial(const video::Frame& src, int base_qp,
                                      const QpOffsetMap* offsets) const;

  /// Motion for `src`: a matching pending prefetch (hit), else a fresh
  /// pool search. Always drains the lane first.
  [[nodiscard]] MotionField motion_with_prefetch(const video::Frame& src)
      const;
  /// Drains and drops any pending prefetch (intra frames, mismatched
  /// flow). Must be called before mutating reference_ or using the pool
  /// while a prefetch could still be running.
  void discard_prefetch() const;
  /// Starts the next frame's motion search against reference_ on the
  /// async lane (which drives the worker pool). Requires the lane idle
  /// and reference_ final for this frame.
  void launch_prefetch(const video::Frame& next_src);

  /// Finalizes the frame: PSNR against reference_ (which must already
  /// hold this frame's reconstruction), codec-state bookkeeping, obs.
  /// `motion` is the CODED field (InterPlan::eff_motion for inter);
  /// `skip` the emitted per-mb SKIP flags (inter only, may be empty).
  EncodedFrame finish_frame(std::vector<std::uint8_t> data, int base_qp,
                            FrameType type, const MotionField* motion,
                            const video::Frame& src,
                            std::vector<std::uint8_t> skip = {});

  /// Cached metric handles (see set_obs); all null when unobserved.
  struct ObsHandles {
    obs::Counter* frames = nullptr;
    obs::Counter* motion_searches = nullptr;
    obs::Counter* trials_attempted = nullptr;
    obs::Counter* trials_encoded = nullptr;
    obs::Counter* trials_reused = nullptr;
    obs::Counter* full_passes = nullptr;
    obs::Counter* prefetch_launched = nullptr;
    obs::Counter* prefetch_hits = nullptr;
    obs::Counter* prefetch_misses = nullptr;
    obs::Counter* skip_skipped_mbs = nullptr;
    obs::Counter* skip_inter_mbs = nullptr;
    obs::Counter* scene_cuts = nullptr;
    obs::Distribution* bytes_per_frame = nullptr;
    obs::Distribution* base_qp = nullptr;
    obs::Distribution* psnr_y = nullptr;
  };

  EncoderConfig config_;
  MotionSearcher searcher_;
  obs::ObsContext* obs_ = nullptr;
  ObsHandles obs_handles_;
  obs::FrameTraceContext frame_ctx_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when serial
  video::Frame reference_;
  bool has_reference_ = false;
  bool force_intra_ = false;
  int frame_index_ = 0;
  int last_qp_ = 30;
  RateControlStats rc_stats_;
  SkipStats skip_stats_;
  long scene_changes_ = 0;
  mutable PrefetchStats prefetch_stats_;
  /// Lazily created on the first next_src hint; must stay the LAST
  /// member so its destructor drains the background task before the
  /// pool and reference it reads are torn down.
  mutable std::unique_ptr<Prefetch> prefetch_;
};

}  // namespace dive::codec
