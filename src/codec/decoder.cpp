#include "codec/decoder.h"

#include <algorithm>

#include "codec/bitstream.h"
#include "codec/block_io.h"
#include "codec/motion_search.h"
#include "codec/dct.h"
#include "codec/quant.h"

namespace dive::codec {

namespace {

constexpr int kMb = kMacroblockSize;

std::uint8_t clamp_pixel(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

double dc_predict(const video::Plane& recon, int bx, int by) {
  double acc = 0.0;
  int n = 0;
  if (by > 0) {
    for (int x = 0; x < kBlockSize; ++x) {
      acc += recon.at(bx + x, by - 1);
      ++n;
    }
  }
  if (bx > 0) {
    for (int y = 0; y < kBlockSize; ++y) {
      acc += recon.at(bx - 1, by + y);
      ++n;
    }
  }
  return n > 0 ? acc / n : 128.0;
}

void add_residual_and_store(video::Plane& out, int bx, int by,
                            const double* pred /*64*/,
                            const QuantBlock* levels, int qp) {
  Block8x8 res{};
  if (levels != nullptr) {
    Block8x8 deq;
    dequantize(*levels, qp, deq);
    inverse_dct(deq, res);
  }
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      out.at(bx + x, by + y) =
          clamp_pixel(pred[y * kBlockSize + x] + res[static_cast<std::size_t>(y * kBlockSize + x)]);
}

void mc_predict(const video::Plane& ref, int bx, int by, int hdx, int hdy,
                double* pred /*64*/) {
  // (hdx, hdy) are half-pel units of this plane; mirror the encoder's
  // bilinear interpolation exactly.
  for (int y = 0; y < kBlockSize; ++y)
    for (int x = 0; x < kBlockSize; ++x)
      pred[y * kBlockSize + x] = static_cast<double>(
          half_pel_sample(ref, 2 * (bx + x) - hdx, 2 * (by + y) - hdy));
}

}  // namespace

DecodedFrame Decoder::decode(std::span<const std::uint8_t> data) {
  BitReader br(data);
  if (br.get_bits(8) != 0xD1)
    throw BitstreamError("Decoder: bad magic");
  const FrameType type = br.get_bit() ? FrameType::kInter : FrameType::kIntra;
  const int base_qp = static_cast<int>(br.get_bits(6));
  if (base_qp < kMinQp || base_qp > kMaxQp)
    throw BitstreamError("Decoder: base QP out of range");
  const int mb_cols = static_cast<int>(br.get_ue());
  const int mb_rows = static_cast<int>(br.get_ue());
  if (mb_cols <= 0 || mb_rows <= 0 || mb_cols > 1024 || mb_rows > 1024)
    throw BitstreamError("Decoder: implausible frame geometry");
  if (type == FrameType::kInter && !has_reference_)
    throw BitstreamError("Decoder: inter frame without reference");

  const int width = mb_cols * kMb;
  const int height = mb_rows * kMb;
  if (has_reference_ &&
      (reference_.width() != width || reference_.height() != height))
    throw BitstreamError("Decoder: frame size changed mid-stream");

  DecodedFrame out;
  out.type = type;
  out.base_qp = base_qp;
  out.frame = video::Frame(width, height);
  out.motion = MotionField(mb_cols, mb_rows);

  double pred[64];
  QuantBlock levels;
  int prev_qp = base_qp;

  for (int row = 0; row < mb_rows; ++row) {
    for (int col = 0; col < mb_cols; ++col) {
      const int px = col * kMb;
      const int py = row * kMb;
      const int cx = px / 2;
      const int cy = py / 2;

      if (type == FrameType::kInter) {
        // SKIP bit: the macroblock moves with the PREDICTED motion vector
        // (left neighbor, zero at the row start) and carries no residual
        // — copy the reference at that displacement.
        const bool skip = br.get_bit();
        const MotionVector pred_mv =
            col > 0 ? out.motion.at(col - 1, row) : MotionVector{};
        MotionVector mv = pred_mv;
        int qp = prev_qp;
        int cbp = 0;
        if (!skip) {
          // Accumulate prediction + delta in 64 bits: hostile deltas are
          // near INT32_MAX and would overflow int (UB) before the
          // plausibility check below could reject them.
          const std::int64_t dx64 =
              static_cast<std::int64_t>(pred_mv.dx) + br.get_se();
          const std::int64_t dy64 =
              static_cast<std::int64_t>(pred_mv.dy) + br.get_se();
          // Half-pel units: no real vector points further than one full
          // frame away. Keeps half_pel_sample coordinate math far from
          // int overflow.
          if (dx64 < -2 * width || dx64 > 2 * width || dy64 < -2 * height ||
              dy64 > 2 * height)
            throw BitstreamError("Decoder: implausible motion vector");
          mv.dx = static_cast<int>(dx64);
          mv.dy = static_cast<int>(dy64);
          const std::int64_t qp64 =
              static_cast<std::int64_t>(prev_qp) + br.get_se();
          if (qp64 < kMinQp || qp64 > kMaxQp)
            throw BitstreamError("Decoder: QP out of range");
          qp = static_cast<int>(qp64);
          prev_qp = qp;
          cbp = static_cast<int>(br.get_bits(6));
        }
        out.motion.at(col, row) = mv;
        const int cdx = mv.dx / 2;
        const int cdy = mv.dy / 2;

        struct B {
          const video::Plane* ref;
          video::Plane* dst;
          int bx, by, dx, dy;
        };
        const B blocks[6] = {
            {&reference_.y, &out.frame.y, px, py, mv.dx, mv.dy},
            {&reference_.y, &out.frame.y, px + 8, py, mv.dx, mv.dy},
            {&reference_.y, &out.frame.y, px, py + 8, mv.dx, mv.dy},
            {&reference_.y, &out.frame.y, px + 8, py + 8, mv.dx, mv.dy},
            {&reference_.u, &out.frame.u, cx, cy, cdx, cdy},
            {&reference_.v, &out.frame.v, cx, cy, cdx, cdy},
        };
        for (int b = 0; b < 6; ++b) {
          mc_predict(*blocks[b].ref, blocks[b].bx, blocks[b].by, blocks[b].dx,
                     blocks[b].dy, pred);
          const bool coded = (cbp & (1 << b)) != 0;
          if (coded) read_block(br, levels);
          add_residual_and_store(*blocks[b].dst, blocks[b].bx, blocks[b].by,
                                 pred, coded ? &levels : nullptr, qp);
        }
      } else {
        const std::int64_t qp64 =
            static_cast<std::int64_t>(prev_qp) + br.get_se();
        if (qp64 < kMinQp || qp64 > kMaxQp)
          throw BitstreamError("Decoder: QP out of range");
        const int qp = static_cast<int>(qp64);
        prev_qp = qp;

        struct B {
          video::Plane* dst;
          int bx, by;
        };
        const B blocks[6] = {
            {&out.frame.y, px, py},       {&out.frame.y, px + 8, py},
            {&out.frame.y, px, py + 8},   {&out.frame.y, px + 8, py + 8},
            {&out.frame.u, cx, cy},       {&out.frame.v, cx, cy},
        };
        for (const auto& blk : blocks) {
          const double dc = dc_predict(*blk.dst, blk.bx, blk.by);
          for (double& p : pred) p = dc;
          const bool coded = br.get_bit();
          if (coded) read_block(br, levels);
          add_residual_and_store(*blk.dst, blk.bx, blk.by, pred,
                                 coded ? &levels : nullptr, qp);
        }
      }
    }
  }

  reference_ = out.frame;
  has_reference_ = true;
  return out;
}

std::optional<DecodedFrame> Decoder::try_decode(
    std::span<const std::uint8_t> data, std::string* error) {
  // decode() commits reference_/has_reference_ only after the whole frame
  // parsed, so catching here leaves the decoder exactly as it was.
  try {
    return decode(data);
  } catch (const BitstreamError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace dive::codec
