// Serialization of one quantized 8x8 block, shared verbatim by encoder and
// decoder so the two sides cannot drift apart.
//
// Format: nonzero-count (ue) followed by `count` (zero-run ue, level se)
// pairs in zigzag order.
#pragma once

#include "codec/bitstream.h"
#include "codec/quant.h"

namespace dive::codec {

inline void write_block(BitWriter& bw, const QuantBlock& levels) {
  const auto& zz = zigzag_order();
  int nonzero = 0;
  for (int i = 0; i < 64; ++i)
    if (levels[static_cast<std::size_t>(zz[static_cast<std::size_t>(i)])] != 0)
      ++nonzero;
  bw.put_ue(static_cast<std::uint32_t>(nonzero));
  int run = 0;
  for (int i = 0; i < 64 && nonzero > 0; ++i) {
    const std::int32_t level =
        levels[static_cast<std::size_t>(zz[static_cast<std::size_t>(i)])];
    if (level == 0) {
      ++run;
    } else {
      bw.put_ue(static_cast<std::uint32_t>(run));
      bw.put_se(level);
      run = 0;
      --nonzero;
    }
  }
}

inline void read_block(BitReader& br, QuantBlock& levels) {
  levels.fill(0);
  const auto& zz = zigzag_order();
  const std::uint32_t nonzero = br.get_ue();
  if (nonzero > 64) throw BitstreamError("block: nonzero count > 64");
  int pos = 0;
  for (std::uint32_t k = 0; k < nonzero; ++k) {
    const std::uint32_t run = br.get_ue();
    pos += static_cast<int>(run);
    if (pos >= 64) throw BitstreamError("block: zigzag overrun");
    const std::int32_t level = br.get_se();
    if (level == 0) throw BitstreamError("block: zero level coded");
    levels[static_cast<std::size_t>(zz[static_cast<std::size_t>(pos)])] = level;
    ++pos;
  }
}

}  // namespace dive::codec
