// Bit-level I/O with Exp-Golomb entropy codes — the serialization layer of
// the codec (Sec. II-B step 3: entropy encoding of transformed/quantized
// data).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dive::codec {

class BitWriter {
 public:
  void put_bit(bool bit);
  void put_bits(std::uint32_t value, int count);  ///< MSB-first, count<=32

  /// Unsigned Exp-Golomb.
  void put_ue(std::uint32_t value);
  /// Signed Exp-Golomb (zigzag mapping 0,1,-1,2,-2,...).
  void put_se(std::int32_t value);

  /// Pads the final partial byte with zeros and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

  /// Size in bits of the Exp-Golomb code for `value` — used by motion
  /// search for rate-aware cost.
  static int ue_bits(std::uint32_t value);
  static int se_bits(std::int32_t value);

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t cur_ = 0;
  int cur_bits_ = 0;
  std::size_t bit_count_ = 0;
};

class BitstreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool get_bit();
  std::uint32_t get_bits(int count);
  std::uint32_t get_ue();
  std::int32_t get_se();

  [[nodiscard]] bool exhausted() const {
    return pos_byte_ >= data_.size();
  }
  [[nodiscard]] std::size_t bits_consumed() const {
    return pos_byte_ * 8 + pos_bit_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_byte_ = 0;
  int pos_bit_ = 0;
};

}  // namespace dive::codec
