// Quantization (Sec. II-B step 2): maps DCT coefficients to integer
// levels under a QP-controlled step size, H.264-style: the step doubles
// every 6 QP. QP 0 is near-lossless; QP 51 obliterates texture.
#pragma once

#include <array>
#include <cstdint>

#include "codec/dct.h"
#include "codec/types.h"

namespace dive::codec {

using QuantBlock = std::array<std::int32_t, 64>;

/// Quantizer step size for a QP (clamped into [kMinQp, kMaxQp]).
double qp_step(int qp);

/// Coefficients -> levels (round-to-nearest with a small dead zone).
void quantize(const Block8x8& coeffs, int qp, QuantBlock& levels);

/// Levels -> reconstructed coefficients.
void dequantize(const QuantBlock& levels, int qp, Block8x8& coeffs);

/// Zigzag scan order for an 8x8 block (low frequencies first).
const std::array<int, 64>& zigzag_order();

/// True if every level is zero (block can be skipped in the bitstream).
bool all_zero(const QuantBlock& levels);

}  // namespace dive::codec
