// Block video decoder — the edge server's half of the codec. Maintains its
// own reference frame; decoding a stream produced by Encoder reproduces
// the encoder's reconstruction exactly (asserted by round-trip tests).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "codec/types.h"
#include "video/frame.h"

namespace dive::codec {

struct DecodedFrame {
  video::Frame frame;
  FrameType type = FrameType::kIntra;
  int base_qp = 0;
  /// Motion field parsed from the stream (inter frames; skip MBs read as
  /// zero vectors).
  MotionField motion;
};

class Decoder {
 public:
  Decoder() = default;

  /// Decodes one encoded frame. Throws BitstreamError on malformed input
  /// (including an inter frame arriving before any reference exists).
  DecodedFrame decode(std::span<const std::uint8_t> data);

  /// Total-function variant for untrusted bytes: never throws, never
  /// invokes UB, allocation bounded by the 1024x1024-macroblock geometry
  /// cap. Returns nullopt on any malformed input (optionally reporting
  /// why via `error`); the decoder state is untouched on failure, so a
  /// session survives a corrupt frame and resumes on the next good one.
  std::optional<DecodedFrame> try_decode(std::span<const std::uint8_t> data,
                                         std::string* error = nullptr);

  [[nodiscard]] bool has_reference() const { return has_reference_; }
  [[nodiscard]] const video::Frame& reference() const { return reference_; }

 private:
  video::Frame reference_;
  bool has_reference_ = false;
};

}  // namespace dive::codec
