// 8x8 type-II DCT / inverse DCT used as the codec's residual transform.
// Orthonormal formulation: applying forward then inverse reproduces the
// input up to rounding.
#pragma once

#include <array>

namespace dive::codec {

using Block8x8 = std::array<double, 64>;  ///< row-major 8x8 block

/// Forward 2-D DCT (orthonormal).
void forward_dct(const Block8x8& input, Block8x8& output);

/// Inverse 2-D DCT.
void inverse_dct(const Block8x8& input, Block8x8& output);

}  // namespace dive::codec
