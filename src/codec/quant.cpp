#include "codec/quant.h"

#include <algorithm>
#include <cmath>

namespace dive::codec {

double qp_step(int qp) {
  qp = std::clamp(qp, kMinQp, kMaxQp);
  return 0.625 * std::pow(2.0, static_cast<double>(qp) / 6.0);
}

void quantize(const Block8x8& coeffs, int qp, QuantBlock& levels) {
  const double step = qp_step(qp);
  // Dead zone of 1/6 step suppresses near-zero noise coefficients, which
  // is what makes low-texture blocks cheap (and their MVs noisy).
  const double deadzone = step / 6.0;
  for (int i = 0; i < 64; ++i) {
    const double c = coeffs[static_cast<std::size_t>(i)];
    if (std::abs(c) <= deadzone) {
      levels[static_cast<std::size_t>(i)] = 0;
    } else {
      levels[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(std::lround(c / step));
    }
  }
}

void dequantize(const QuantBlock& levels, int qp, Block8x8& coeffs) {
  const double step = qp_step(qp);
  for (int i = 0; i < 64; ++i) {
    coeffs[static_cast<std::size_t>(i)] =
        static_cast<double>(levels[static_cast<std::size_t>(i)]) * step;
  }
}

const std::array<int, 64>& zigzag_order() {
  static const std::array<int, 64> order = [] {
    std::array<int, 64> o{};
    int idx = 0;
    for (int s = 0; s < 15; ++s) {
      if (s % 2 == 0) {
        // Walk up-right.
        for (int y = std::min(s, 7); y >= std::max(0, s - 7); --y)
          o[static_cast<std::size_t>(idx++)] = y * 8 + (s - y);
      } else {
        for (int x = std::min(s, 7); x >= std::max(0, s - 7); --x)
          o[static_cast<std::size_t>(idx++)] = (s - x) * 8 + x;
      }
    }
    return o;
  }();
  return order;
}

bool all_zero(const QuantBlock& levels) {
  return std::all_of(levels.begin(), levels.end(),
                     [](std::int32_t l) { return l == 0; });
}

}  // namespace dive::codec
