#include "codec/dct.h"

#include <cmath>
#include <numbers>

namespace dive::codec {

namespace {

/// cos((2x+1) u pi / 16) basis, and orthonormal scale factors.
struct DctTables {
  double basis[8][8];  // [u][x]
  double scale[8];

  DctTables() {
    for (int u = 0; u < 8; ++u) {
      scale[u] = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        basis[u][x] = std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
      }
    }
  }
};

const DctTables& tables() {
  static const DctTables t;
  return t;
}

void dct_1d(const double* in, double* out, int stride_in, int stride_out) {
  const auto& t = tables();
  for (int u = 0; u < 8; ++u) {
    double acc = 0.0;
    for (int x = 0; x < 8; ++x) acc += in[x * stride_in] * t.basis[u][x];
    out[u * stride_out] = acc * t.scale[u];
  }
}

void idct_1d(const double* in, double* out, int stride_in, int stride_out) {
  const auto& t = tables();
  for (int x = 0; x < 8; ++x) {
    double acc = 0.0;
    for (int u = 0; u < 8; ++u)
      acc += t.scale[u] * in[u * stride_in] * t.basis[u][x];
    out[x * stride_out] = acc;
  }
}

}  // namespace

void forward_dct(const Block8x8& input, Block8x8& output) {
  Block8x8 tmp;
  for (int r = 0; r < 8; ++r) dct_1d(&input[r * 8], &tmp[r * 8], 1, 1);
  for (int c = 0; c < 8; ++c) dct_1d(&tmp[c], &output[c], 8, 8);
}

void inverse_dct(const Block8x8& input, Block8x8& output) {
  Block8x8 tmp;
  for (int c = 0; c < 8; ++c) idct_1d(&input[c], &tmp[c], 8, 8);
  for (int r = 0; r < 8; ++r) idct_1d(&tmp[r * 8], &output[r * 8], 1, 1);
}

}  // namespace dive::codec
