#include "codec/motion_search.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "codec/bitstream.h"
#include "util/thread_pool.h"

namespace dive::codec {

namespace {

constexpr int kMb = kMacroblockSize;

/// True when the 16x16 reference read at (x0, y0) stays inside the plane
/// (with one extra sample right/below for half-pel interpolation).
bool ref_inside(const video::Plane& ref, int x0, int y0, int margin = 0) {
  return x0 >= 0 && y0 >= 0 && x0 + kMb + margin <= ref.width &&
         y0 + kMb + margin <= ref.height;
}

/// SAD against a full-pel displaced reference block. The interior case
/// runs the dispatched `fast` kernel; the border case clamps per sample
/// and stays scalar (kernels assume in-plane reads).
std::uint32_t sad_fullpel(const video::Plane& cur, const video::Plane& ref,
                          int cx, int cy, int dx, int dy, Sad16Fn fast) {
  const int rx = cx - dx;
  const int ry = cy - dy;
  std::uint32_t acc = 0;
  if (ref_inside(ref, rx, ry)) {
    return fast(&cur.data[static_cast<std::size_t>(cy) * cur.width + cx],
                cur.width,
                &ref.data[static_cast<std::size_t>(ry) * ref.width + rx],
                ref.width);
  }
  for (int y = 0; y < kMb; ++y)
    for (int x = 0; x < kMb; ++x)
      acc += static_cast<std::uint32_t>(
          std::abs(static_cast<int>(cur.at(cx + x, cy + y)) -
                   static_cast<int>(ref.at_clamped(rx + x, ry + y))));
  return acc;
}

}  // namespace

int half_pel_sample(const video::Plane& ref, int hx, int hy) {
  const int x0 = hx >> 1;
  const int y0 = hy >> 1;
  const bool fx = hx & 1;
  const bool fy = hy & 1;
  if (!fx && !fy) return ref.at_clamped(x0, y0);
  if (fx && !fy)
    return (ref.at_clamped(x0, y0) + ref.at_clamped(x0 + 1, y0) + 1) >> 1;
  if (!fx)
    return (ref.at_clamped(x0, y0) + ref.at_clamped(x0, y0 + 1) + 1) >> 1;
  return (ref.at_clamped(x0, y0) + ref.at_clamped(x0 + 1, y0) +
          ref.at_clamped(x0, y0 + 1) + ref.at_clamped(x0 + 1, y0 + 1) + 2) >>
         2;
}


std::uint32_t sad_16x16(const video::Plane& cur, const video::Plane& ref,
                        int cx, int cy, MotionVector mv, Sad16Fn fast) {
  if (fast == nullptr) fast = sad_16x16_fn();
  if ((mv.dx & 1) == 0 && (mv.dy & 1) == 0)
    return sad_fullpel(cur, ref, cx, cy, mv.dx >> 1, mv.dy >> 1, fast);
  std::uint32_t acc = 0;
  for (int y = 0; y < kMb; ++y)
    for (int x = 0; x < kMb; ++x) {
      const int r = half_pel_sample(ref, 2 * (cx + x) - mv.dx,
                                       2 * (cy + y) - mv.dy);
      acc += static_cast<std::uint32_t>(
          std::abs(static_cast<int>(cur.at(cx + x, cy + y)) - r));
    }
  return acc;
}

LumaPyramid build_pyramid(const video::Plane& base, int levels) {
  LumaPyramid pyr;
  pyr.levels.reserve(static_cast<std::size_t>(std::max(0, levels)));
  const video::Plane* src = &base;
  for (int l = 0; l < levels; ++l) {
    video::Plane down(std::max(1, src->width / 2), std::max(1, src->height / 2));
    for (int y = 0; y < down.height; ++y) {
      for (int x = 0; x < down.width; ++x) {
        const int sx = 2 * x;
        const int sy = 2 * y;
        const int sum = src->at(sx, sy) + src->at_clamped(sx + 1, sy) +
                        src->at_clamped(sx, sy + 1) +
                        src->at_clamped(sx + 1, sy + 1);
        down.at(x, y) = static_cast<std::uint8_t>((sum + 2) >> 2);
      }
    }
    pyr.levels.push_back(std::move(down));
    src = &pyr.levels.back();
  }
  return pyr;
}

namespace {

/// 8x8 Hadamard transform of integer residuals, sum of |coefficients|.
std::uint32_t hadamard8_cost(int d[8][8]) {
  for (int r = 0; r < 8; ++r) {
    int* v = d[r];
    for (int len = 1; len < 8; len <<= 1) {
      for (int i = 0; i < 8; i += len << 1) {
        for (int j = i; j < i + len; ++j) {
          const int a = v[j], b = v[j + len];
          v[j] = a + b;
          v[j + len] = a - b;
        }
      }
    }
  }
  for (int c = 0; c < 8; ++c) {
    for (int len = 1; len < 8; len <<= 1) {
      for (int i = 0; i < 8; i += len << 1) {
        for (int j = i; j < i + len; ++j) {
          const int a = d[j][c], b = d[j + len][c];
          d[j][c] = a + b;
          d[j + len][c] = a - b;
        }
      }
    }
  }
  std::uint32_t acc = 0;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      acc += static_cast<std::uint32_t>(std::abs(d[r][c]));
  return acc / 8;  // normalize roughly to SAD scale
}

}  // namespace

std::uint32_t satd_16x16(const video::Plane& cur, const video::Plane& ref,
                         int cx, int cy, MotionVector mv) {
  std::uint32_t acc = 0;
  int d[8][8];
  for (int by = 0; by < 2; ++by) {
    for (int bx = 0; bx < 2; ++bx) {
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x) {
          const int px = cx + bx * 8 + x;
          const int py = cy + by * 8 + y;
          d[y][x] = static_cast<int>(cur.at(px, py)) -
                    half_pel_sample(ref, 2 * px - mv.dx, 2 * py - mv.dy);
        }
      acc += hadamard8_cost(d);
    }
  }
  return acc;
}

namespace {

struct Candidate {
  int dx = 0;  // full-pel during the coarse stage
  int dy = 0;
  std::uint32_t cost = std::numeric_limits<std::uint32_t>::max();
};

/// Rate-aware cost for full-pel candidates (pattern searches). Bits are
/// counted for the half-pel codes actually emitted into the stream.
std::uint32_t pattern_cost(const video::Plane& cur, const video::Plane& ref,
                           int cx, int cy, int dx, int dy, MotionVector pred,
                           double lambda, Sad16Fn fast) {
  const std::uint32_t dist = sad_fullpel(cur, ref, cx, cy, dx, dy, fast);
  const int bits = BitWriter::se_bits(2 * dx - pred.dx) +
                   BitWriter::se_bits(2 * dy - pred.dy);
  return dist + static_cast<std::uint32_t>(lambda * bits);
}

void consider(Candidate& best, const video::Plane& cur,
              const video::Plane& ref, int cx, int cy, int dx, int dy,
              MotionVector pred, double lambda, int range, Sad16Fn fast) {
  if (std::abs(dx) > range || std::abs(dy) > range) return;
  const std::uint32_t cost =
      pattern_cost(cur, ref, cx, cy, dx, dy, pred, lambda, fast);
  if (cost < best.cost) {
    best.cost = cost;
    best.dx = dx;
    best.dy = dy;
  }
}

template <std::size_t N>
void refine(Candidate& best, const std::array<std::pair<int, int>, N>& pattern,
            const video::Plane& cur, const video::Plane& ref, int cx, int cy,
            MotionVector pred, double lambda, int range, int max_iters,
            Sad16Fn fast) {
  for (int iter = 0; iter < max_iters; ++iter) {
    const int cdx = best.dx;
    const int cdy = best.dy;
    for (const auto& [dx, dy] : pattern) {
      consider(best, cur, ref, cx, cy, cdx + dx, cdy + dy, pred, lambda,
               range, fast);
    }
    if (best.dx == cdx && best.dy == cdy) break;
  }
}

/// SAD of the n x n block of `cur` at (cx, cy) against `ref` displaced by
/// full-pel (dx, dy) at the same pyramid level; ref reads clamp to the
/// border. Used only on the small downsampled planes, so it stays scalar.
std::uint32_t sad_nxn(const video::Plane& cur, const video::Plane& ref,
                      int cx, int cy, int dx, int dy, int n) {
  std::uint32_t acc = 0;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      acc += static_cast<std::uint32_t>(
          std::abs(static_cast<int>(cur.at(cx + x, cy + y)) -
                   static_cast<int>(ref.at_clamped(cx + x - dx, cy + y - dy))));
  return acc;
}

/// Ranked candidate list for the pyramid descent. Insertion keeps the
/// list sorted by cost with first-seen winning ties, so the selection is
/// a pure function of evaluation order (which is fixed raster order).
struct CandidateList {
  std::array<Candidate, 8> slots;
  int count = 0;
  int capacity = 0;

  explicit CandidateList(int cap)
      : capacity(std::min<int>(cap, static_cast<int>(slots.size()))) {}

  void offer(int dx, int dy, std::uint32_t cost) {
    // Already tracked? Keep the first (equal cost by construction).
    for (int i = 0; i < count; ++i)
      if (slots[static_cast<std::size_t>(i)].dx == dx &&
          slots[static_cast<std::size_t>(i)].dy == dy)
        return;
    int pos = count;
    while (pos > 0 &&
           slots[static_cast<std::size_t>(pos - 1)].cost > cost)
      --pos;
    if (pos >= capacity) return;
    const int last = std::min(count, capacity - 1);
    for (int i = last; i > pos; --i)
      slots[static_cast<std::size_t>(i)] =
          slots[static_cast<std::size_t>(i - 1)];
    slots[static_cast<std::size_t>(pos)] = {dx, dy, cost};
    count = std::min(count + 1, capacity);
  }
};

constexpr std::array<std::pair<int, int>, 4> kDiamond{
    {{1, 0}, {-1, 0}, {0, 1}, {0, -1}}};
constexpr std::array<std::pair<int, int>, 6> kHexagon{
    {{2, 0}, {-2, 0}, {1, 2}, {1, -2}, {-1, 2}, {-1, -2}}};
constexpr std::array<std::pair<int, int>, 16> kHexadecagon{
    {{4, 0},  {4, 1},   {4, 2},  {2, 3},  {0, 4},  {-2, 3}, {-4, 2}, {-4, 1},
     {-4, 0}, {-4, -1}, {-4, -2},{-2, -3},{0, -4}, {2, -3}, {4, -2}, {4, -1}}};

}  // namespace

MotionVector MotionSearcher::search_block(const video::Plane& cur,
                                          const video::Plane& ref, int cx,
                                          int cy, MotionVector pred,
                                          std::uint32_t& best_sad,
                                          const PyramidPair* pyr) const {
  const int range = config_.range;
  const double lambda = config_.lambda;
  const Sad16Fn fast = sad_fn_;
  const bool exhaustive = config_.method == MotionSearchMethod::kEsa ||
                          config_.method == MotionSearchMethod::kTesa;

  Candidate best;
  if (exhaustive) {
    // Exhaustive full-pel search, pure-distortion objective (x264's
    // ESA/TESA rank candidates by residual cost; on repetitive or plain
    // texture the global optimum is frequently not the true motion).
    const bool satd = config_.method == MotionSearchMethod::kTesa;
    for (int dy = -range; dy <= range; ++dy) {
      for (int dx = -range; dx <= range; ++dx) {
        const std::uint32_t cost =
            satd ? satd_16x16(cur, ref, cx, cy, MotionVector::from_fullpel(dx, dy))
                 : sad_fullpel(cur, ref, cx, cy, dx, dy, fast);
        if (cost < best.cost) {
          best.cost = cost;
          best.dx = dx;
          best.dy = dy;
        }
      }
    }
  } else {
    // Pattern searches start from the predictor and the zero vector.
    const int pfx = pred.dx / 2;
    const int pfy = pred.dy / 2;
    consider(best, cur, ref, cx, cy, 0, 0, pred, lambda, range, fast);
    consider(best, cur, ref, cx, cy, pfx, pfy, pred, lambda, range, fast);

    switch (config_.method) {
      case MotionSearchMethod::kDia:
        refine(best, kDiamond, cur, ref, cx, cy, pred, lambda, range,
               2 * range, fast);
        break;
      case MotionSearchMethod::kHex:
        refine(best, kHexagon, cur, ref, cx, cy, pred, lambda, range, range,
               fast);
        refine(best, kDiamond, cur, ref, cx, cy, pred, lambda, range, 2,
               fast);
        break;
      case MotionSearchMethod::kUmh: {
        // 1) Cross search at progressively coarser stride.
        for (int d = 2; d <= range; d += 2) {
          consider(best, cur, ref, cx, cy, d, 0, pred, lambda, range, fast);
          consider(best, cur, ref, cx, cy, -d, 0, pred, lambda, range, fast);
          if (d <= range / 2) {
            consider(best, cur, ref, cx, cy, 0, d, pred, lambda, range, fast);
            consider(best, cur, ref, cx, cy, 0, -d, pred, lambda, range,
                     fast);
          }
        }
        // 2) 5x5 full search around the current best.
        const int c5x = best.dx;
        const int c5y = best.dy;
        for (int dy = -2; dy <= 2; ++dy)
          for (int dx = -2; dx <= 2; ++dx)
            consider(best, cur, ref, cx, cy, c5x + dx, c5y + dy, pred, lambda,
                     range, fast);
        // 3) Uneven multi-hexagon rings.
        const int rcx = best.dx;
        const int rcy = best.dy;
        for (int scale = 1; scale * 4 <= range; scale *= 2) {
          for (const auto& [dx, dy] : kHexadecagon)
            consider(best, cur, ref, cx, cy, rcx + dx * scale,
                     rcy + dy * scale, pred, lambda, range, fast);
        }
        // 4) Hexagon + diamond refinement.
        refine(best, kHexagon, cur, ref, cx, cy, pred, lambda, range, range,
               fast);
        refine(best, kDiamond, cur, ref, cx, cy, pred, lambda, range, 2,
               fast);
        break;
      }
      case MotionSearchMethod::kHme: {
        // Coarse-to-fine pyramid descent. A cheap full search at the
        // coarsest level covers the whole range; the top candidates are
        // re-ranked one level at a time (3x3 around each doubled
        // position) and finally evaluated with the rate-aware cost at
        // full resolution, feeding the shared refinement below.
        const int levels = pyr ? static_cast<int>(pyr->cur.levels.size()) : 0;
        if (levels > 0) {
          const int top = levels - 1;
          const int top_shift = top + 1;  // downsample factor 1 << shift
          const int n_top = kMb >> top_shift;
          const int top_range = std::max(1, range >> top_shift);
          CandidateList cands(std::max(1, config_.hme_candidates));
          const video::Plane& tc = pyr->cur.levels[static_cast<std::size_t>(top)];
          const video::Plane& tr = pyr->ref.levels[static_cast<std::size_t>(top)];
          const int tx = cx >> top_shift;
          const int ty = cy >> top_shift;
          for (int dy = -top_range; dy <= top_range; ++dy)
            for (int dx = -top_range; dx <= top_range; ++dx)
              cands.offer(dx, dy, sad_nxn(tc, tr, tx, ty, dx, dy, n_top));
          for (int lvl = top - 1; lvl >= 0; --lvl) {
            const int shift = lvl + 1;
            const int n = kMb >> shift;
            const int lrange = std::max(1, range >> shift);
            const video::Plane& lc =
                pyr->cur.levels[static_cast<std::size_t>(lvl)];
            const video::Plane& lr =
                pyr->ref.levels[static_cast<std::size_t>(lvl)];
            const int lx = cx >> shift;
            const int ly = cy >> shift;
            CandidateList next(cands.capacity);
            for (int i = 0; i < cands.count; ++i) {
              const Candidate c = cands.slots[static_cast<std::size_t>(i)];
              for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx) {
                  const int ndx = std::clamp(2 * c.dx + dx, -lrange, lrange);
                  const int ndy = std::clamp(2 * c.dy + dy, -lrange, lrange);
                  next.offer(ndx, ndy, sad_nxn(lc, lr, lx, ly, ndx, ndy, n));
                }
            }
            cands = next;
          }
          for (int i = 0; i < cands.count; ++i) {
            const Candidate c = cands.slots[static_cast<std::size_t>(i)];
            for (int dy = -1; dy <= 1; ++dy)
              for (int dx = -1; dx <= 1; ++dx)
                consider(best, cur, ref, cx, cy, 2 * c.dx + dx,
                         2 * c.dy + dy, pred, lambda, range, fast);
          }
        }
        refine(best, kDiamond, cur, ref, cx, cy, pred, lambda, range, 2,
               fast);
        break;
      }
      case MotionSearchMethod::kEsa:
      case MotionSearchMethod::kTesa:
        break;  // handled above
    }
  }

  // Half-pel refinement around the full-pel winner (all methods; x264's
  // subpel stage). Pure SAD objective.
  MotionVector hp = MotionVector::from_fullpel(best.dx, best.dy);
  std::uint32_t hp_sad = sad_16x16(cur, ref, cx, cy, hp, fast);
  for (int iter = 0; iter < 2; ++iter) {
    const MotionVector center = hp;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const MotionVector cand{center.dx + dx, center.dy + dy};
        if (std::abs(cand.dx) > 2 * range || std::abs(cand.dy) > 2 * range)
          continue;
        const std::uint32_t s = sad_16x16(cur, ref, cx, cy, cand, fast);
        if (s < hp_sad) {
          hp_sad = s;
          hp = cand;
        }
      }
    }
    if (hp == center) break;
  }

  // Zero-MV bias (pattern searches only, like production encoders): when
  // the stationary candidate is nearly as cheap as the winner, prefer it.
  // This keeps sensor noise in plain regions from fabricating motion,
  // which matters for the eta-based ego-motion judgement (Fig. 6).
  if (!exhaustive && !hp.is_zero()) {
    const std::uint32_t zero_sad = sad_fullpel(cur, ref, cx, cy, 0, 0, fast);
    if (zero_sad <= hp_sad + std::max<std::uint32_t>(48, zero_sad / 16)) {
      hp = {0, 0};
      hp_sad = zero_sad;
    }
  }
  best_sad = hp_sad;
  return hp;
}

MotionField MotionSearcher::search_frame(const video::Plane& cur,
                                         const video::Plane& ref,
                                         util::ThreadPool* pool) const {
  const int cols = cur.width / kMb;
  const int rows = cur.height / kMb;
  MotionField field(cols, rows);
  // The pyramid is a pure function of the two planes, built once per
  // frame (serially, before the row fan-out) and shared read-only by
  // every row, so the parallel field stays bit-identical to the serial
  // one. Levels are clamped so the coarsest block is at least 4x4.
  PyramidPair pyr_storage;
  const PyramidPair* pyr = nullptr;
  if (config_.method == MotionSearchMethod::kHme) {
    const int levels = std::clamp(config_.hme_levels, 1, 2);
    pyr_storage.cur = build_pyramid(cur, levels);
    pyr_storage.ref = build_pyramid(ref, levels);
    pyr = &pyr_storage;
  }
  const auto search_row = [&](int row) {
    MotionVector pred{};  // left-neighbor predictor, reset per row
    for (int col = 0; col < cols; ++col) {
      std::uint32_t sad = 0;
      const MotionVector mv =
          search_block(cur, ref, col * kMb, row * kMb, pred, sad, pyr);
      field.at(col, row) = mv;
      field.sad[static_cast<std::size_t>(row) * cols + col] = sad;
      pred = mv;
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->parallel_for(0, rows, search_row);
  } else {
    for (int row = 0; row < rows; ++row) search_row(row);
  }
  return field;
}

}  // namespace dive::codec
