#include "core/offline_tracker.h"

#include "edge/box_shift.h"

namespace dive::core {

edge::DetectionList OfflineTracker::track(const edge::DetectionList& previous,
                                          const codec::MotionField& field,
                                          int width, int height) const {
  return edge::shift_by_mean_mv(
      previous, field, width, height,
      {.min_area_keep = config_.min_area_keep,
       .confidence_decay = config_.confidence_decay});
}

}  // namespace dive::core
