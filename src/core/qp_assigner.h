// Optimal QP assignment (Sec. III-D2): foreground macroblocks get QP
// offset 0; background macroblocks get +delta. The paper's adaptive delta
// is proportional to the extracted foreground size — a larger foreground
// is more likely to already cover the true objects, so the background can
// be compressed harder.
#pragma once

#include <vector>

#include "codec/types.h"
#include "core/foreground_extractor.h"

namespace dive::core {

struct QpAssignerConfig {
  /// delta = round(coefficient * foreground_area_fraction), clamped.
  double adaptive_coefficient = 80.0;
  int delta_min = 4;
  int delta_max = 26;
  /// When >= 0, overrides the adaptive rule with a fixed delta
  /// (the Fig. 11 ablation: delta in {5, 15, 25}).
  int fixed_delta = -1;
};

class QpAssigner {
 public:
  explicit QpAssigner(QpAssignerConfig config = {}) : config_(config) {}

  [[nodiscard]] const QpAssignerConfig& config() const { return config_; }

  /// Rasterizes the foreground hulls onto the macroblock grid
  /// (true = foreground).
  [[nodiscard]] static std::vector<bool> foreground_mask(
      const ForegroundResult& fg, int mb_cols, int mb_rows);

  /// The background delta for a given foreground extraction result; the
  /// adaptive rule uses the *union* area of the extracted foreground.
  [[nodiscard]] int background_delta(const ForegroundResult& fg, int mb_cols,
                                     int mb_rows) const;

  /// Builds the per-macroblock QP offset map for a frame of
  /// `mb_cols` x `mb_rows` macroblocks.
  [[nodiscard]] codec::QpOffsetMap build_map(const ForegroundResult& fg,
                                             int mb_cols, int mb_rows) const;

 private:
  [[nodiscard]] int delta_from_mask(const ForegroundResult& fg,
                                    const std::vector<bool>& mask) const;

  QpAssignerConfig config_;
};

}  // namespace dive::core
