#include "core/foe_estimator.h"

#include <cmath>

#include "geom/ransac.h"

namespace dive::core {

namespace {

/// One motion-vector line: point p, unit direction d.
struct MvLine {
  geom::Vec2 p;
  geom::Vec2 d;
};

/// Perpendicular distance from `x` to the line.
double line_distance(const MvLine& line, geom::Vec2 x) {
  const geom::Vec2 r = x - line.p;
  return std::abs(r.cross(line.d));
}

/// Least-squares intersection of a set of lines: minimizes the sum of
/// squared perpendicular distances. Normal equations of
///   sum (I - d d^T) (x - p) = 0.
std::optional<geom::Vec2> intersect_lines(const std::vector<MvLine>& lines,
                                          std::span<const std::size_t> idx) {
  double a11 = 0, a12 = 0, a22 = 0, b1 = 0, b2 = 0;
  for (const std::size_t i : idx) {
    const geom::Vec2 d = lines[i].d;
    const geom::Vec2 p = lines[i].p;
    // M = I - d d^T (projector onto the line normal).
    const double m11 = 1.0 - d.x * d.x;
    const double m12 = -d.x * d.y;
    const double m22 = 1.0 - d.y * d.y;
    a11 += m11;
    a12 += m12;
    a22 += m22;
    b1 += m11 * p.x + m12 * p.y;
    b2 += m12 * p.x + m22 * p.y;
  }
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) < 1e-9) return std::nullopt;  // all lines parallel
  return geom::Vec2{(b1 * a22 - b2 * a12) / det, (b2 * a11 - b1 * a12) / det};
}

}  // namespace

std::optional<FoeEstimate> FoeEstimator::estimate(
    const codec::MotionField& field, const geom::PinholeCamera& camera) {
  if (field.empty()) return std::nullopt;

  std::vector<MvLine> lines;
  lines.reserve(field.size());
  for (int row = 0; row < field.mb_rows; ++row) {
    for (int col = 0; col < field.mb_cols; ++col) {
      const geom::Vec2 v = field.at(col, row).as_vec2();
      if (v.norm() < config_.min_mv_magnitude) continue;
      lines.push_back(
          {camera.to_centered(field.mb_center(col, row)), v.normalized()});
    }
  }
  if (lines.size() < 8) return std::nullopt;

  geom::RansacOptions opts;
  opts.iterations = config_.ransac_iterations;
  opts.sample_size = 2;
  opts.inlier_threshold = config_.inlier_threshold_px;
  opts.min_inliers = std::max(
      4, static_cast<int>(config_.min_inlier_fraction *
                          static_cast<double>(lines.size())));

  auto fit = [&lines](std::span<const std::size_t> idx) {
    return intersect_lines(lines, idx);
  };
  auto error = [&lines](const geom::Vec2& model, std::size_t i) {
    return line_distance(lines[i], model);
  };
  const auto result =
      geom::ransac<geom::Vec2>(lines.size(), opts, rng_, fit, error);
  if (!result) return std::nullopt;

  FoeEstimate est;
  est.foe = result->model;
  est.inliers = static_cast<int>(result->inliers.size());
  est.candidates = static_cast<int>(lines.size());
  return est;
}

std::optional<FoeEstimate> FoeEstimator::update_calibration(
    const codec::MotionField& field, const geom::PinholeCamera& camera) {
  auto est = estimate(field, camera);
  if (!est) return est;
  // Only trust frames with a strong expansion consensus: during turns the
  // best "intersection" is an artifact.
  if (est->inliers < est->candidates / 2) return std::nullopt;
  if (!calibrated_) {
    calibrated_ = est->foe;
  } else {
    *calibrated_ = *calibrated_ * (1.0 - config_.calibration_alpha) +
                   est->foe * config_.calibration_alpha;
  }
  ++calibration_frames_;
  return est;
}

}  // namespace dive::core
