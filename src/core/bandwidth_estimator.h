// Uplink bandwidth estimation (Sec. III-D1): the agent estimates capacity
// from the encoded data it successfully pushed through the radio inside a
// sliding window. We measure goodput per transmission burst (bytes over
// the busy interval), which tracks true capacity even when the link is
// idle between frames, and average the bursts that overlap the window.
#pragma once

#include <deque>

#include "util/sim_clock.h"

namespace dive::core {

struct BandwidthEstimatorConfig {
  util::SimTime window = util::from_seconds(2.0);
  double prior_bytes_per_sec = 125'000.0;  ///< 1 Mbps until the first ack
  /// Safety factor applied by `target_bytes_per_sec` so queues drain.
  double safety = 0.9;
};

class BandwidthEstimator {
 public:
  explicit BandwidthEstimator(BandwidthEstimatorConfig config = {})
      : config_(config) {}

  /// Records a completed transmission: `bytes` serialized over
  /// [start, end) (from the transport's ack feedback).
  void add_transmission(double bytes, util::SimTime start, util::SimTime end);

  /// Capacity estimate at time `now`, bytes/second.
  [[nodiscard]] double estimate(util::SimTime now) const;

  /// estimate() with the safety factor applied.
  [[nodiscard]] double target_bytes_per_sec(util::SimTime now) const {
    return estimate(now) * config_.safety;
  }

  [[nodiscard]] const BandwidthEstimatorConfig& config() const {
    return config_;
  }

  void reset() { samples_.clear(); }

 private:
  struct Sample {
    double bytes;
    util::SimTime start;
    util::SimTime end;
  };

  BandwidthEstimatorConfig config_;
  std::deque<Sample> samples_;
};

}  // namespace dive::core
