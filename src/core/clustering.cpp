#include "core/clustering.h"

#include <algorithm>
#include <deque>

namespace dive::core {

std::vector<Cluster> ForegroundClusterer::grow(
    const PreprocessResult& pre, const std::vector<int>& seeds,
    const std::vector<bool>& ground_mask,
    const std::vector<bool>& in_hull_mask) const {
  std::vector<Cluster> clusters;
  const int cols = pre.mb_cols;
  const int rows = pre.mb_rows;
  if (cols == 0 || rows == 0) return clusters;
  std::vector<int> assignment(pre.mvs.size(), -1);

  auto joinable = [&](std::size_t idx) {
    if (!ground_mask.empty() && ground_mask[idx]) return false;
    if (!in_hull_mask.empty() && !in_hull_mask[idx] &&
        pre.mvs[idx].corrected.norm() < config_.min_outside_mv)
      return false;
    return true;
  };

  for (int seed : seeds) {
    if (seed < 0 || static_cast<std::size_t>(seed) >= pre.mvs.size()) continue;
    if (assignment[static_cast<std::size_t>(seed)] != -1) continue;

    Cluster cluster;
    const int cluster_id = static_cast<int>(clusters.size());
    const geom::Vec2 anchor = pre.mvs[static_cast<std::size_t>(seed)].corrected;
    const double anchor_bound =
        std::max(config_.anchor_abs, config_.anchor_rel * anchor.norm());
    geom::Vec2 sum = anchor;
    cluster.members.push_back(seed);
    assignment[static_cast<std::size_t>(seed)] = cluster_id;
    cluster.mean_mv = sum;
    cluster.col_min = cluster.col_max = seed % cols;
    cluster.row_min = cluster.row_max = seed / cols;

    std::deque<int> frontier{seed};
    while (!frontier.empty()) {
      const int cur = frontier.front();
      frontier.pop_front();
      const geom::Vec2 cur_mv = pre.mvs[static_cast<std::size_t>(cur)].corrected;
      const int cc = cur % cols;
      const int cr = cur / cols;
      const int neighbors[4] = {cur - 1, cur + 1, cur - cols, cur + cols};
      const bool valid[4] = {cc > 0, cc < cols - 1, cr > 0, cr < rows - 1};
      for (int n = 0; n < 4; ++n) {
        if (!valid[n]) continue;
        const int nb = neighbors[n];
        if (assignment[static_cast<std::size_t>(nb)] != -1) continue;
        if (!joinable(static_cast<std::size_t>(nb))) continue;
        const geom::Vec2 nb_mv = pre.mvs[static_cast<std::size_t>(nb)].corrected;
        // Similar to the expanding block AND to the cluster mean
        // (the anti-over-growth condition of Sec. III-C2), AND within the
        // drift-proof bound of the seed.
        if ((nb_mv - cur_mv).norm() > config_.pair_distance) continue;
        if ((nb_mv - cluster.mean_mv).norm() > config_.mean_distance) continue;
        if ((nb_mv - anchor).norm() > anchor_bound) continue;

        assignment[static_cast<std::size_t>(nb)] = cluster_id;
        cluster.members.push_back(nb);
        sum += nb_mv;
        cluster.mean_mv = sum / static_cast<double>(cluster.members.size());
        cluster.col_min = std::min(cluster.col_min, nb % cols);
        cluster.col_max = std::max(cluster.col_max, nb % cols);
        cluster.row_min = std::min(cluster.row_min, nb / cols);
        cluster.row_max = std::max(cluster.row_max, nb / cols);
        frontier.push_back(nb);
      }
    }
    if (cluster.size() >= config_.min_cluster_mbs) {
      clusters.push_back(std::move(cluster));
    }
  }
  return clusters;
}

bool ForegroundClusterer::mergeable(const Cluster& a, const Cluster& b) const {
  // Spatial adjacency of the MB bounding boxes.
  const int gap = config_.merge_adjacency_mb;
  const bool near =
      a.col_min <= b.col_max + gap && b.col_min <= a.col_max + gap &&
      a.row_min <= b.row_max + gap && b.row_min <= a.row_max + gap;
  if (!near) return false;

  const double na = a.mean_mv.norm();
  const double nb = b.mean_mv.norm();
  if (na < 1e-9 || nb < 1e-9) return true;  // degenerate means: spatial only
  const double cosine = a.mean_mv.dot(b.mean_mv) / (na * nb);
  if (cosine < config_.merge_cos_min) return false;
  const double ratio = na > nb ? na / nb : nb / na;
  return ratio <= config_.merge_magnitude_ratio;
}

std::vector<Cluster> ForegroundClusterer::merge(
    std::vector<Cluster> clusters) const {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < clusters.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < clusters.size() && !changed; ++j) {
        if (!mergeable(clusters[i], clusters[j])) continue;
        Cluster& a = clusters[i];
        Cluster& b = clusters[j];
        const double wa = a.size();
        const double wb = b.size();
        a.mean_mv = (a.mean_mv * wa + b.mean_mv * wb) / (wa + wb);
        a.members.insert(a.members.end(), b.members.begin(), b.members.end());
        a.col_min = std::min(a.col_min, b.col_min);
        a.col_max = std::max(a.col_max, b.col_max);
        a.row_min = std::min(a.row_min, b.row_min);
        a.row_max = std::max(a.row_max, b.row_max);
        clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(j));
        changed = true;
      }
    }
  }
  return clusters;
}

}  // namespace dive::core
