// The analytic motion-vector model of Sec. II-C/II-D: projections of
// camera translation and rotation onto the image plane. Shared by the
// preprocessing pipeline (to subtract rotational components) and by tests
// (to synthesize fields with known ground truth).
//
// All image coordinates here are *centered* (principal point at origin,
// y down), matching geom::PinholeCamera::to_centered.
#pragma once

#include "geom/vec.h"

namespace dive::core {

/// Rotational speeds about the camera axes (radians per frame interval).
struct Rotation {
  double dphi_x = 0.0;  ///< pitch
  double dphi_y = 0.0;  ///< yaw
};

/// Motion vector induced at centered image point `p` by a camera rotation
/// (Eq. 5, with roll = 0 as the paper assumes for wheeled agents).
inline geom::Vec2 rotational_mv(geom::Vec2 p, Rotation rot, double focal) {
  const double vx = -rot.dphi_y * focal + rot.dphi_x * p.x * p.y / focal -
                    rot.dphi_y * p.x * p.x / focal;
  const double vy = rot.dphi_x * focal - rot.dphi_y * p.x * p.y / focal +
                    rot.dphi_x * p.y * p.y / focal;
  return {vx, vy};
}

/// Motion vector induced at `p` by pure forward translation `dz` of the
/// camera, for a point at depth `depth` (Eq. 2 with FOE at the origin).
inline geom::Vec2 translational_mv(geom::Vec2 p, double dz, double depth) {
  return {dz * p.x / depth, dz * p.y / depth};
}

/// Normalized magnitude of a purely translational MV (Eq. 8):
/// |v| / (R * y) where R is the distance from `p` to the FOE. For static
/// points this equals dz / (f * Y) — constant along any world height Y
/// (Observation 2); it is the ground-estimation feature.
inline double normalized_magnitude(geom::Vec2 p, geom::Vec2 mv,
                                   geom::Vec2 foe) {
  const geom::Vec2 r = p - foe;
  const double R = r.norm();
  if (R < 1e-9 || p.y <= 0.0) return 0.0;
  return mv.norm() / (R * p.y);
}

}  // namespace dive::core
