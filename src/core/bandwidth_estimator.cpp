#include "core/bandwidth_estimator.h"

#include <algorithm>

namespace dive::core {

void BandwidthEstimator::add_transmission(double bytes, util::SimTime start,
                                          util::SimTime end) {
  if (bytes <= 0.0 || end <= start) return;
  samples_.push_back({bytes, start, end});
  // Retire samples that ended more than a window before the newest one.
  const util::SimTime cutoff = end - config_.window;
  while (!samples_.empty() && samples_.front().end < cutoff)
    samples_.pop_front();
}

double BandwidthEstimator::estimate(util::SimTime now) const {
  const util::SimTime cutoff = now - config_.window;
  double weighted = 0.0;
  double weight = 0.0;
  for (const auto& s : samples_) {
    if (s.end < cutoff) continue;
    const double duration = util::to_seconds(s.end - s.start);
    if (duration <= 0.0) continue;
    const double rate = s.bytes / duration;
    // Weight by burst duration: long transfers are better capacity probes.
    weighted += rate * duration;
    weight += duration;
  }
  if (weight <= 0.0) return config_.prior_bytes_per_sec;
  return weighted / weight;
}

}  // namespace dive::core
