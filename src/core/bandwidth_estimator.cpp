#include "core/bandwidth_estimator.h"

#include <algorithm>

namespace dive::core {

void BandwidthEstimator::add_transmission(double bytes, util::SimTime start,
                                          util::SimTime end) {
  if (bytes <= 0.0 || end <= start) return;
  samples_.push_back({bytes, start, end});
  // Retire samples with no overlap left against the window ending at the
  // newest ack. A sample that merely straddles the cutoff stays: its
  // in-window share still carries information and estimate() prorates it.
  const util::SimTime cutoff = end - config_.window;
  while (!samples_.empty() && samples_.front().end <= cutoff)
    samples_.pop_front();
}

double BandwidthEstimator::estimate(util::SimTime now) const {
  const util::SimTime cutoff = now - config_.window;
  double weighted = 0.0;
  double weight = 0.0;
  for (const auto& s : samples_) {
    const double duration = util::to_seconds(s.end - s.start);
    if (duration <= 0.0) continue;
    // Prorate by the overlap with [now - window, now]: a burst straddling
    // the cutoff contributes only its in-window share of bytes and time,
    // so one stale long transfer cannot dominate the post-outage average.
    const util::SimTime ov_start = std::max(s.start, cutoff);
    const util::SimTime ov_end = std::min(s.end, now);
    if (ov_end <= ov_start) continue;
    const double overlap = util::to_seconds(ov_end - ov_start);
    const double rate = s.bytes / duration;
    weighted += rate * overlap;
    weight += overlap;
  }
  if (weight <= 0.0) return config_.prior_bytes_per_sec;
  return weighted / weight;
}

}  // namespace dive::core
