#include "core/foreground_extractor.h"

#include <algorithm>

#include "codec/types.h"
#include "geom/convex_hull.h"

namespace dive::core {

double ForegroundResult::area_fraction(int width, int height) const {
  if (width <= 0 || height <= 0) return 0.0;
  double area = 0.0;
  for (const auto& r : regions) area += r.bounds.area();
  return std::clamp(area / (static_cast<double>(width) * height), 0.0, 1.0);
}

ForegroundResult ForegroundExtractor::extract(
    const PreprocessResult& pre, const geom::PinholeCamera& camera) {
  // Fallback path: stopped agent or unusable field -> reuse latest
  // foreground (Sec. III-A, FE component).
  if (pre.mvs.empty() || !pre.agent_moving) {
    ForegroundResult out = last_;
    out.from_fallback = true;
    return out;
  }

  const GroundEstimate ground = ground_.estimate(pre, camera);
  if (!ground.valid) {
    ForegroundResult out = last_;
    out.from_fallback = true;
    return out;
  }

  auto clusters = clusterer_.grow(pre, ground.seed_indices,
                                  ground.ground_mask, ground.in_hull_mask);
  clusters = clusterer_.merge(std::move(clusters));

  ForegroundResult out;
  out.valid = true;
  out.ground_threshold = ground.threshold;
  out.seed_count = static_cast<int>(ground.seed_indices.size());

  const double mb = codec::kMacroblockSize;
  const double pad = config_.hull_padding_px;
  for (const auto& cluster : clusters) {
    // Hull over all four corners of every member macroblock, padded.
    std::vector<geom::Vec2> corners;
    corners.reserve(cluster.members.size() * 4);
    for (int idx : cluster.members) {
      const double col = idx % pre.mb_cols;
      const double row = idx / pre.mb_cols;
      const double x0 = col * mb - pad;
      const double y0 = row * mb - pad;
      const double x1 = (col + 1) * mb + pad;
      const double y1 = (row + 1) * mb + pad;
      corners.push_back({x0, y0});
      corners.push_back({x1, y0});
      corners.push_back({x0, y1});
      corners.push_back({x1, y1});
    }
    ForegroundRegion region;
    region.hull = geom::convex_hull(std::move(corners));
    region.bounds = geom::bounding_box(region.hull)
                        .clipped(camera.width(), camera.height());
    region.mean_mv = cluster.mean_mv;
    region.macroblocks = cluster.size();
    if (!region.bounds.empty()) out.regions.push_back(std::move(region));
  }

  // Temporal carry: ride recent regions forward along their motion unless
  // a fresh region already covers them.
  for (const auto& prev : last_.regions) {
    if (prev.age + 1 > config_.temporal_carry_frames) continue;
    ForegroundRegion carried = prev;
    ++carried.age;
    for (auto& v : carried.hull) v += prev.mean_mv;
    carried.bounds = geom::bounding_box(carried.hull)
                         .clipped(camera.width(), camera.height());
    if (carried.bounds.empty()) continue;
    bool suppressed = false;
    for (const auto& fresh : out.regions) {
      if (fresh.age == 0 &&
          geom::iou(fresh.bounds, carried.bounds) > config_.carry_suppress_iou) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.regions.push_back(std::move(carried));
  }

  last_ = out;
  return out;
}

}  // namespace dive::core
