#include "core/foreground_extractor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "codec/types.h"
#include "geom/convex_hull.h"

namespace dive::core {

double ForegroundResult::area_fraction(int width, int height) const {
  if (width <= 0 || height <= 0) return 0.0;
  // Exact union area of the clipped bounding boxes (x-slab sweep with
  // y-interval merging), so overlapping regions are not double-counted —
  // summing per-region areas inflated the adaptive background delta.
  std::vector<geom::Box> boxes;
  boxes.reserve(regions.size());
  for (const auto& r : regions) {
    const geom::Box b = r.bounds.clipped(width, height);
    if (!b.empty()) boxes.push_back(b);
  }
  if (boxes.empty()) return 0.0;

  std::vector<double> xs;
  xs.reserve(boxes.size() * 2);
  for (const auto& b : boxes) {
    xs.push_back(b.x0);
    xs.push_back(b.x1);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  double area = 0.0;
  std::vector<std::pair<double, double>> spans;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const double slab_w = xs[i + 1] - xs[i];
    if (slab_w <= 0.0) continue;
    spans.clear();
    for (const auto& b : boxes)
      if (b.x0 <= xs[i] && b.x1 >= xs[i + 1]) spans.emplace_back(b.y0, b.y1);
    if (spans.empty()) continue;
    std::sort(spans.begin(), spans.end());
    double covered = 0.0;
    double cur_lo = spans.front().first;
    double cur_hi = spans.front().second;
    for (const auto& [lo, hi] : spans) {
      if (lo > cur_hi) {
        covered += cur_hi - cur_lo;
        cur_lo = lo;
        cur_hi = hi;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    covered += cur_hi - cur_lo;
    area += covered * slab_w;
  }
  return std::clamp(area / (static_cast<double>(width) * height), 0.0, 1.0);
}

ForegroundResult ForegroundExtractor::extract(
    const PreprocessResult& pre, const geom::PinholeCamera& camera) {
  // Fallback path: stopped agent or unusable field -> reuse latest
  // foreground (Sec. III-A, FE component).
  if (pre.mvs.empty() || !pre.agent_moving) {
    ForegroundResult out = last_;
    out.from_fallback = true;
    return out;
  }

  const GroundEstimate ground = ground_.estimate(pre, camera);
  if (!ground.valid) {
    ForegroundResult out = last_;
    out.from_fallback = true;
    return out;
  }

  auto clusters = clusterer_.grow(pre, ground.seed_indices,
                                  ground.ground_mask, ground.in_hull_mask);
  clusters = clusterer_.merge(std::move(clusters));

  ForegroundResult out;
  out.valid = true;
  out.ground_threshold = ground.threshold;
  out.seed_count = static_cast<int>(ground.seed_indices.size());

  const double mb = codec::kMacroblockSize;
  const double pad = config_.hull_padding_px;
  for (const auto& cluster : clusters) {
    // Hull over all four corners of every member macroblock, padded.
    std::vector<geom::Vec2> corners;
    corners.reserve(cluster.members.size() * 4);
    for (int idx : cluster.members) {
      const double col = idx % pre.mb_cols;
      const double row = idx / pre.mb_cols;
      const double x0 = col * mb - pad;
      const double y0 = row * mb - pad;
      const double x1 = (col + 1) * mb + pad;
      const double y1 = (row + 1) * mb + pad;
      corners.push_back({x0, y0});
      corners.push_back({x1, y0});
      corners.push_back({x0, y1});
      corners.push_back({x1, y1});
    }
    ForegroundRegion region;
    region.hull = geom::convex_hull(std::move(corners));
    region.bounds = geom::bounding_box(region.hull)
                        .clipped(camera.width(), camera.height());
    region.mean_mv = cluster.mean_mv;
    region.macroblocks = cluster.size();
    if (!region.bounds.empty()) out.regions.push_back(std::move(region));
  }

  // Temporal carry: ride recently *extracted* regions forward along their
  // motion unless a fresh region already covers them. Every carried copy
  // is derived from its age-0 original (hull + age * mean_mv), never from
  // a previously carried copy, so clipping losses and stale motion do not
  // compound frame over frame; once a fresh extraction covers the object
  // the source is dropped and the fresh geometry takes over.
  std::vector<CarrySource> kept;
  kept.reserve(carry_.size());
  for (auto& src : carry_) {
    ++src.age;
    if (src.age > config_.temporal_carry_frames) continue;
    ForegroundRegion carried;
    carried.hull = src.hull;
    const geom::Vec2 shift = src.mean_mv * static_cast<double>(src.age);
    for (auto& v : carried.hull) v += shift;
    carried.bounds = geom::bounding_box(carried.hull)
                         .clipped(camera.width(), camera.height());
    carried.mean_mv = src.mean_mv;
    carried.macroblocks = src.macroblocks;
    carried.age = src.age;
    if (carried.bounds.empty()) continue;
    bool suppressed = false;
    for (const auto& fresh : out.regions) {
      if (fresh.age == 0 &&
          geom::iou(fresh.bounds, carried.bounds) > config_.carry_suppress_iou) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) continue;  // replaced by a fresh extraction
    out.regions.push_back(std::move(carried));
    kept.push_back(std::move(src));
  }
  carry_ = std::move(kept);

  // This frame's fresh regions seed the next frames' carries.
  for (const auto& r : out.regions)
    if (r.age == 0)
      carry_.push_back({r.hull, r.mean_mv, r.macroblocks, 0});

  last_ = out;
  return out;
}

}  // namespace dive::core
