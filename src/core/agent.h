// The DiVE mobile agent (Fig. 5): per captured frame it
//   1. pulls motion vectors from the codec's motion estimation,
//   2. preprocesses them (ego-motion judgement, rotation removal),
//   3. extracts foreground regions,
//   4. assigns QP offsets (foreground 0, background adaptive delta) and
//      encodes to the bandwidth-estimator's byte budget,
//   5. uploads; on head-of-line timeout it falls back to motion-vector
//      offline tracking until the link recovers.
#pragma once

#include <memory>

#include "codec/encoder.h"
#include "core/bandwidth_estimator.h"
#include "core/foreground_extractor.h"
#include "core/offline_tracker.h"
#include "core/preprocess.h"
#include "core/qp_assigner.h"
#include "core/scheme.h"
#include "edge/server.h"
#include "geom/pinhole_camera.h"
#include "net/uplink.h"
#include "roi/gate.h"
#include "roi/metadata.h"

namespace dive::obs {
struct ObsContext;
}  // namespace dive::obs

namespace dive::core {

struct DiveConfig {
  PreprocessConfig preprocess;
  ForegroundExtractorConfig foreground;
  QpAssignerConfig qp;
  BandwidthEstimatorConfig bandwidth;
  OfflineTrackerConfig tracker;
  AgentLatencies latencies;
  double fps = 12.0;
  bool enable_offline_tracking = true;  ///< Fig. 13 ablation switch
  /// Ship the compressed-domain RoI sidecar (MV field + SKIP flags +
  /// foreground hulls) with every upload and gate edge inference on it
  /// through roi::RoiGate. Sidecar bytes count against the bandwidth
  /// budget; the video bitstream is byte-identical on or off.
  bool roi_metadata = false;
  roi::RoiGateConfig roi_gate;  ///< gating policy (only with roi_metadata)
  std::uint64_t seed = 7;
  /// Encoder worker lanes (motion search + macroblock loop). Applied to
  /// the encoder config unless that already names a count. 0 defers to
  /// the DIVE_THREADS env var / hardware default; 1 forces serial.
  /// Encoded output is bit-identical for every value.
  int encode_threads = 0;
  /// Observability context (non-owning; null = unobserved). The agent
  /// forwards it to its encoder, uplink, and edge server, and emits
  /// per-stage spans (MV harvest, preprocess/eta, foreground, QP
  /// assignment, encode, transmit, MOT fallback) plus "agent.*" metrics.
  /// Stage spans are recorded from the calling thread onto fixed tracks,
  /// so a same-seed run observes identically for every encode_threads.
  obs::ObsContext* obs = nullptr;
};

class DiveAgent final : public AnalyticsScheme {
 public:
  /// The agent owns its encoder; uplink and server are shared with the
  /// harness that constructs the experiment.
  DiveAgent(DiveConfig config, codec::EncoderConfig encoder_config,
            geom::PinholeCamera camera, std::shared_ptr<net::Uplink> uplink,
            std::shared_ptr<edge::EdgeServer> server);

  [[nodiscard]] const char* name() const override { return "DiVE"; }

  FrameOutcome process_frame(const video::Frame& frame,
                             util::SimTime capture_time) override;

  /// Stores the lookahead hint; the next process_frame forwards it to the
  /// encoder, which prefetches that frame's motion search on its worker
  /// pool while the current frame's bitstream is emitted (encoder.h).
  void hint_next_frame(const video::Frame& next) override {
    next_hint_ = &next;
  }

  /// Most recent preprocessing/foreground state (exposed for the
  /// component-level benchmarks and examples).
  [[nodiscard]] const PreprocessResult& last_preprocess() const {
    return last_pre_;
  }
  [[nodiscard]] const ForegroundResult& last_foreground() const {
    return last_fg_;
  }
  [[nodiscard]] int last_background_delta() const { return last_delta_; }

  /// RoI gating state of the most recent offloaded frame (only
  /// meaningful with DiveConfig::roi_metadata).
  [[nodiscard]] const roi::GatePlan& last_gate_plan() const {
    return last_plan_;
  }
  [[nodiscard]] const roi::RoiGate& gate() const { return gate_; }

 private:
  DiveConfig config_;
  codec::Encoder encoder_;
  geom::PinholeCamera camera_;
  std::shared_ptr<net::Uplink> uplink_;
  std::shared_ptr<edge::EdgeServer> server_;

  Preprocessor preprocessor_;
  ForegroundExtractor extractor_;
  QpAssigner qp_assigner_;
  BandwidthEstimator bandwidth_;
  OfflineTracker tracker_;
  roi::RoiGate gate_;  ///< wraps server_; used only with roi_metadata
  roi::GatePlan last_plan_;

  edge::DetectionList last_detections_;
  PreprocessResult last_pre_;
  ForegroundResult last_fg_;
  int last_delta_ = 0;
  bool need_resync_ = false;  ///< next upload must be intra (after a drop)
  std::uint64_t frame_seq_ = 0;  ///< frames processed; ledger frame index
  /// Lookahead frame from hint_next_frame; consumed (and cleared) by the
  /// next process_frame call. Non-owning — see hint_next_frame lifetime.
  const video::Frame* next_hint_ = nullptr;
};

}  // namespace dive::core
