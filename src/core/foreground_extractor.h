// Foreground Extraction (FE, Sec. III-C): ground estimation + region
// growing + cluster merge + per-object convex hulls, with the paper's
// fallback of reusing the latest foreground when the agent is stopped (or
// no motion field exists, e.g. at intra frames).
#pragma once

#include <vector>

#include "core/clustering.h"
#include "core/ground_estimator.h"
#include "core/preprocess.h"
#include "geom/box.h"

namespace dive::core {

struct ForegroundRegion {
  std::vector<geom::Vec2> hull;  ///< convex contour, pixel coordinates
  geom::Box bounds;              ///< hull bounding box
  geom::Vec2 mean_mv;
  int macroblocks = 0;
  /// 0 = extracted this frame; >0 = carried from an earlier frame,
  /// shifted along its mean motion vector.
  int age = 0;
};

struct ForegroundResult {
  std::vector<ForegroundRegion> regions;
  bool from_fallback = false;  ///< reused the previous frame's foreground
  bool valid = false;          ///< any foreground knowledge at all
  double ground_threshold = 0.0;
  int seed_count = 0;

  /// Fraction of the frame area covered by foreground bounding hulls
  /// (drives the adaptive delta of the QP assigner).
  [[nodiscard]] double area_fraction(int width, int height) const;
};

struct ForegroundExtractorConfig {
  GroundEstimatorConfig ground;
  ClusteringConfig clustering;
  /// Hull vertices are padded outward by this many pixels so that object
  /// borders (where chroma matters most) stay inside the foreground.
  double hull_padding_px = 8.0;
  /// Regions extracted in the last N frames are carried forward (shifted
  /// by their mean MV) and unioned with the current extraction. Motion
  /// vectors are sparse and coarse, so single-frame extraction misses
  /// objects intermittently; short temporal carry smooths that out.
  int temporal_carry_frames = 2;
  /// A carried region is dropped once a fresh region overlaps it.
  double carry_suppress_iou = 0.4;
};

class ForegroundExtractor {
 public:
  explicit ForegroundExtractor(ForegroundExtractorConfig config = {})
      : config_(config), ground_(config.ground), clusterer_(config.clustering) {}

  [[nodiscard]] const ForegroundExtractorConfig& config() const {
    return config_;
  }

  /// Extracts the foreground for one preprocessed frame. When the agent
  /// is stopped or preprocessing produced nothing usable, returns the
  /// previous result flagged `from_fallback`.
  ForegroundResult extract(const PreprocessResult& pre,
                           const geom::PinholeCamera& camera);

  /// Last successfully extracted foreground (fallback source).
  [[nodiscard]] const ForegroundResult& last() const { return last_; }

  void reset() {
    last_ = {};
    carry_.clear();
  }

 private:
  /// Age-0 geometry of a recently extracted region. Carried copies are
  /// always rebuilt from this original (hull + age * mean_mv) instead of
  /// re-shifting the previous frame's carried copy, so motion and
  /// clipping errors cannot compound across the carry window.
  struct CarrySource {
    std::vector<geom::Vec2> hull;
    geom::Vec2 mean_mv;
    int macroblocks = 0;
    int age = 0;  ///< frames since extraction
  };

  ForegroundExtractorConfig config_;
  GroundEstimator ground_;
  ForegroundClusterer clusterer_;
  ForegroundResult last_;
  std::vector<CarrySource> carry_;
};

}  // namespace dive::core
