#include "core/qp_assigner.h"

#include <algorithm>
#include <cmath>

#include "geom/polygon.h"

namespace dive::core {

std::vector<bool> QpAssigner::foreground_mask(const ForegroundResult& fg,
                                              int mb_cols, int mb_rows) {
  std::vector<bool> mask(static_cast<std::size_t>(mb_cols) * mb_rows, false);
  if (!fg.valid) return mask;
  const double mb = codec::kMacroblockSize;
  for (const auto& region : fg.regions) {
    if (region.hull.size() < 3) continue;
    const geom::Box b = region.bounds;
    const int c0 = std::max(0, static_cast<int>(b.x0 / mb));
    const int c1 = std::min(mb_cols - 1, static_cast<int>(b.x1 / mb));
    const int r0 = std::max(0, static_cast<int>(b.y0 / mb));
    const int r1 = std::min(mb_rows - 1, static_cast<int>(b.y1 / mb));
    for (int row = r0; row <= r1; ++row) {
      for (int col = c0; col <= c1; ++col) {
        const geom::Vec2 center{(col + 0.5) * mb, (row + 0.5) * mb};
        if (geom::point_in_polygon(center, region.hull)) {
          mask[static_cast<std::size_t>(row) * mb_cols + col] = true;
        }
      }
    }
  }
  return mask;
}

int QpAssigner::delta_from_mask(const ForegroundResult& fg,
                                const std::vector<bool>& mask) const {
  if (config_.fixed_delta >= 0) return config_.fixed_delta;
  if (!fg.valid || fg.regions.empty()) {
    // No foreground knowledge: compress uniformly but gently — encoding
    // everything as "background" at a large delta would risk the true
    // foreground.
    return config_.delta_min;
  }
  const std::size_t covered = static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), true));
  const double fraction =
      mask.empty() ? 0.0
                   : static_cast<double>(covered) /
                         static_cast<double>(mask.size());
  const int delta =
      static_cast<int>(std::lround(config_.adaptive_coefficient * fraction));
  return std::clamp(delta, config_.delta_min, config_.delta_max);
}

int QpAssigner::background_delta(const ForegroundResult& fg, int mb_cols,
                                 int mb_rows) const {
  return delta_from_mask(fg, foreground_mask(fg, mb_cols, mb_rows));
}

codec::QpOffsetMap QpAssigner::build_map(const ForegroundResult& fg,
                                         int mb_cols, int mb_rows) const {
  const std::vector<bool> mask = foreground_mask(fg, mb_cols, mb_rows);
  const int delta = delta_from_mask(fg, mask);
  codec::QpOffsetMap map(mb_cols, mb_rows, static_cast<std::int8_t>(delta));
  for (int row = 0; row < mb_rows; ++row)
    for (int col = 0; col < mb_cols; ++col)
      if (mask[static_cast<std::size_t>(row) * mb_cols + col])
        map.at(col, row) = 0;
  return map;
}

}  // namespace dive::core
