#include "core/ground_estimator.h"

#include <algorithm>
#include <cmath>

#include "codec/types.h"
#include "geom/convex_hull.h"
#include "geom/polygon.h"
#include "geom/triangle_threshold.h"
#include "util/histogram.h"

namespace dive::core {

GroundEstimate GroundEstimator::estimate(
    const PreprocessResult& pre, const geom::PinholeCamera& camera) const {
  GroundEstimate out;
  const std::size_t mb_count = pre.mvs.size();
  out.ground_mask.assign(mb_count, false);
  out.in_hull_mask.assign(mb_count, false);
  if (mb_count == 0) return out;

  // Usable candidates: long enough, below the horizon, pointing at the FOE.
  struct Candidate {
    std::size_t index;
    double norm_mag;
  };
  std::vector<Candidate> candidates;
  std::vector<double> mags;
  for (std::size_t i = 0; i < mb_count; ++i) {
    const CorrectedMv& m = pre.mvs[i];
    const geom::Vec2 v = m.corrected;
    if (v.norm() < config_.min_mv_magnitude) continue;
    if (m.position.y < config_.min_y) continue;
    const geom::Vec2 radial = (m.position - config_.foe).normalized();
    const double cosine = v.normalized().dot(radial);
    if (cosine < config_.radial_cos_min) continue;  // noisy / moving object
    const double nm = normalized_magnitude(m.position, v, config_.foe);
    if (nm <= 0.0) continue;
    candidates.push_back({i, nm});
    mags.push_back(nm);
  }
  if (candidates.size() < 8) return out;

  // Triangle threshold over the normalized-magnitude histogram. Range is
  // anchored at a robust location estimate so foreground outliers do not
  // flatten the ground mode.
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(mags.size() / 2),
                   mags.end());
  const double median = mags[mags.size() / 2];
  const double hi = std::max(median * config_.histogram_range_medians, 1e-9);
  util::Histogram hist(0.0, hi, static_cast<std::size_t>(config_.histogram_bins));
  for (const auto& c : candidates) hist.add(c.norm_mag);
  const auto tri = geom::triangle_threshold(hist);
  out.threshold = tri.threshold;

  // Ground macroblocks: normalized magnitude below the threshold (with a
  // relative epsilon — values exactly on a bin edge must classify as
  // ground, not float-round their way out).
  std::vector<geom::Vec2> ground_points;
  const double cutoff = out.threshold * (1.0 + 1e-9);
  for (const auto& c : candidates) {
    if (c.norm_mag <= cutoff) {
      out.ground_mask[c.index] = true;
      ++out.ground_count;
      // Use the macroblock's pixel center for the hull.
      const CorrectedMv& m = pre.mvs[c.index];
      ground_points.push_back(camera.to_pixel(m.position));
    }
  }
  if (ground_points.size() < 3) return out;

  out.hull = geom::convex_hull(ground_points);
  if (out.hull.size() < 3) return out;

  // Morphological hole fill: an isolated non-ground block surrounded by
  // ground (3+ of its 4 neighbors) is a noisy MV on the road, not an
  // object seed.
  const int cols = pre.mb_cols;
  const int rows = pre.mb_rows;
  std::vector<bool> filled = out.ground_mask;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * cols + c;
      if (out.ground_mask[i]) continue;
      int ground_neighbors = 0;
      if (c > 0 && out.ground_mask[i - 1]) ++ground_neighbors;
      if (c < cols - 1 && out.ground_mask[i + 1]) ++ground_neighbors;
      if (r > 0 && out.ground_mask[i - static_cast<std::size_t>(cols)])
        ++ground_neighbors;
      if (r < rows - 1 && out.ground_mask[i + static_cast<std::size_t>(cols)])
        ++ground_neighbors;
      if (ground_neighbors >= 3) filled[i] = true;
    }
  }
  out.ground_mask = std::move(filled);

  // Hull membership for every macroblock; foreground seeds are the
  // non-ground macroblocks inside the hull.
  for (std::size_t i = 0; i < mb_count; ++i) {
    const geom::Vec2 pixel = camera.to_pixel(pre.mvs[i].position);
    if (geom::point_in_polygon(pixel, out.hull)) {
      out.in_hull_mask[i] = true;
      if (!out.ground_mask[i]) out.seed_indices.push_back(static_cast<int>(i));
    }
  }
  out.valid = true;
  return out;
}

}  // namespace dive::core
