// Region-growing foreground clustering and cluster merging (Sec. III-C2).
//
// Starting from the foreground seed macroblocks inside the ground hull, a
// BFS grows each cluster over 4-connected neighbors whose motion vector is
// similar both to the neighbor being expanded and to the cluster's running
// mean (the second test prevents over-growing). Clusters with similar
// mean-MV direction that are spatially adjacent are then merged to close
// the holes left by sparse motion vectors.
#pragma once

#include <vector>

#include "core/preprocess.h"
#include "geom/vec.h"

namespace dive::core {

struct ClusteringConfig {
  /// Max |mv_i - mv_j| between adjacent blocks, pixels.
  double pair_distance = 1.8;
  /// Max |mv_j - cluster_mean|, pixels.
  double mean_distance = 2.5;
  /// Blocks outside the ground hull may only join a cluster when their MV
  /// magnitude is at least this (real motion evidence). Without it,
  /// clusters seeded near the horizon leak through the far field, where
  /// every static block's MV is mutually similar, and swallow the frame.
  double min_outside_mv = 1.0;
  /// Drift-proof anchor: every member must stay within
  /// max(anchor_abs, anchor_rel * |seed_mv|) of the seed's MV. The pair
  /// and mean tests alone allow a cluster to creep up a building column
  /// where the MV magnitude grows gradually row by row.
  double anchor_abs = 2.0;
  double anchor_rel = 0.5;
  /// Merge condition: cosine between cluster mean directions.
  double merge_cos_min = 0.85;
  /// Merge condition: max ratio between cluster mean magnitudes.
  double merge_magnitude_ratio = 2.2;
  /// Merge condition: clusters' MB bounding boxes must be within this
  /// many macroblocks of each other.
  int merge_adjacency_mb = 2;
  /// Clusters smaller than this many macroblocks are dropped as noise.
  int min_cluster_mbs = 2;
};

struct Cluster {
  std::vector<int> members;  ///< macroblock indices (row-major)
  geom::Vec2 mean_mv;
  int col_min = 0, col_max = 0, row_min = 0, row_max = 0;

  [[nodiscard]] int size() const { return static_cast<int>(members.size()); }
};

class ForegroundClusterer {
 public:
  explicit ForegroundClusterer(ClusteringConfig config = {})
      : config_(config) {}

  [[nodiscard]] const ClusteringConfig& config() const { return config_; }

  /// Grows clusters from `seeds` over the corrected motion field.
  /// `ground_mask` blocks are confirmed background and never joined;
  /// blocks outside `in_hull_mask` additionally require min_outside_mv
  /// of motion. Empty masks disable the respective constraint.
  [[nodiscard]] std::vector<Cluster> grow(
      const PreprocessResult& pre, const std::vector<int>& seeds,
      const std::vector<bool>& ground_mask = {},
      const std::vector<bool>& in_hull_mask = {}) const;

  /// Iteratively merges direction-compatible adjacent clusters until a
  /// fixed point.
  [[nodiscard]] std::vector<Cluster> merge(std::vector<Cluster> clusters) const;

 private:
  [[nodiscard]] bool mergeable(const Cluster& a, const Cluster& b) const;

  ClusteringConfig config_;
};

}  // namespace dive::core
