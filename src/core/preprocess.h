// DiVE preprocessing (Sec. III-B): ego-motion judgement from the non-zero
// motion-vector ratio, rotation estimation via R-sampling + RANSAC, and
// removal of the rotational component from every motion vector.
#pragma once

#include <vector>

#include "codec/types.h"
#include "core/motion_model.h"
#include "core/rotation_estimator.h"
#include "geom/pinhole_camera.h"

namespace dive::core {

struct PreprocessConfig {
  /// Ego-motion threshold on the non-zero MV ratio (Fig. 6: eta > 0.15).
  double eta_threshold = 0.15;
  RotationEstimatorConfig rotation;
};

/// A corrected per-macroblock motion vector with its image geometry.
struct CorrectedMv {
  int col = 0;
  int row = 0;
  geom::Vec2 position;  ///< centered image coordinates of the MB center
  geom::Vec2 raw;       ///< codec motion vector
  geom::Vec2 corrected; ///< raw minus the rotational component
  bool nonzero = false; ///< raw MV was nonzero
};

struct PreprocessResult {
  double eta = 0.0;
  bool agent_moving = false;
  bool rotation_valid = false;
  Rotation rotation;              ///< estimated (dphi_x, dphi_y), rad/frame
  std::vector<CorrectedMv> mvs;   ///< one entry per macroblock
  int mb_cols = 0;
  int mb_rows = 0;
};

class Preprocessor {
 public:
  Preprocessor(PreprocessConfig config, std::uint64_t seed)
      : config_(config), rotation_estimator_(config.rotation, seed) {}

  [[nodiscard]] const PreprocessConfig& config() const { return config_; }

  /// Full preprocessing of one frame's motion field.
  PreprocessResult run(const codec::MotionField& field,
                       const geom::PinholeCamera& camera);

 private:
  PreprocessConfig config_;
  RotationEstimator rotation_estimator_;
};

}  // namespace dive::core
