// Motion-vector-based Offline Tracking (MOT, Sec. III-E): when the uplink
// is out, shift each previously detected bounding box by the mean motion
// vector of the macroblocks inside it. Also used by the O3/EAAR baselines
// for their non-key frames (the paper applies the same tracker to all
// three for fairness).
#pragma once

#include "codec/types.h"
#include "edge/detection.h"

namespace dive::core {

struct OfflineTrackerConfig {
  /// Boxes whose clipped area falls below this fraction of their original
  /// area are dropped (they left the frame).
  double min_area_keep = 0.25;
  /// Confidence decay per tracked frame (tracking degrades with horizon).
  double confidence_decay = 0.92;
};

class OfflineTracker {
 public:
  explicit OfflineTracker(OfflineTrackerConfig config = {})
      : config_(config) {}

  [[nodiscard]] const OfflineTrackerConfig& config() const { return config_; }

  /// Advances `previous` detections by one frame using the frame's motion
  /// field. `width`/`height` clip the results.
  [[nodiscard]] edge::DetectionList track(const edge::DetectionList& previous,
                                          const codec::MotionField& field,
                                          int width, int height) const;

 private:
  OfflineTrackerConfig config_;
};

}  // namespace dive::core
