#include "core/preprocess.h"

namespace dive::core {

PreprocessResult Preprocessor::run(const codec::MotionField& field,
                                   const geom::PinholeCamera& camera) {
  PreprocessResult out;
  if (field.empty()) return out;
  out.mb_cols = field.mb_cols;
  out.mb_rows = field.mb_rows;
  out.eta = field.nonzero_ratio();
  out.agent_moving = out.eta > config_.eta_threshold;

  if (out.agent_moving) {
    if (const auto est = rotation_estimator_.estimate(field, camera)) {
      out.rotation_valid = true;
      out.rotation = est->rotation;
    }
  }

  out.mvs.reserve(field.size());
  for (int row = 0; row < field.mb_rows; ++row) {
    for (int col = 0; col < field.mb_cols; ++col) {
      CorrectedMv c;
      c.col = col;
      c.row = row;
      c.position = camera.to_centered(field.mb_center(col, row));
      c.raw = field.at(col, row).as_vec2();
      c.nonzero = !field.at(col, row).is_zero();
      c.corrected =
          out.rotation_valid
              ? c.raw - rotational_mv(c.position, out.rotation, camera.focal())
              : c.raw;
      out.mvs.push_back(c);
    }
  }
  return out;
}

}  // namespace dive::core
