#include "core/agent.h"

#include <algorithm>

namespace dive::core {

namespace {

/// The agent-level thread knob fills in the encoder config unless the
/// caller already pinned a count there.
codec::EncoderConfig with_threads(codec::EncoderConfig ec, int threads) {
  if (ec.threads == 0) ec.threads = threads;
  return ec;
}

}  // namespace

DiveAgent::DiveAgent(DiveConfig config, codec::EncoderConfig encoder_config,
                     geom::PinholeCamera camera,
                     std::shared_ptr<net::Uplink> uplink,
                     std::shared_ptr<edge::EdgeServer> server)
    : config_(config),
      encoder_(with_threads(encoder_config, config.encode_threads)),
      camera_(camera),
      uplink_(std::move(uplink)),
      server_(std::move(server)),
      preprocessor_(config.preprocess, config.seed),
      extractor_(config.foreground),
      qp_assigner_(config.qp),
      bandwidth_(config.bandwidth),
      tracker_(config.tracker) {}

FrameOutcome DiveAgent::process_frame(const video::Frame& frame,
                                      util::SimTime capture_time) {
  FrameOutcome outcome;

  // 1-2. Motion vectors from the codec, then preprocessing.
  const codec::MotionField motion = encoder_.analyze_motion(frame);
  last_pre_ = preprocessor_.run(motion, camera_);

  // 3. Foreground extraction (falls back to the last foreground when the
  //    agent is stopped or no motion field exists).
  last_fg_ = extractor_.extract(last_pre_, camera_);

  // 4. Adaptive video encoding to the estimated uplink budget.
  const codec::QpOffsetMap offsets = qp_assigner_.build_map(
      last_fg_, frame.width() / codec::kMacroblockSize,
      frame.height() / codec::kMacroblockSize);
  last_delta_ = qp_assigner_.background_delta(
      last_fg_, frame.width() / codec::kMacroblockSize,
      frame.height() / codec::kMacroblockSize);
  const double budget_rate = bandwidth_.target_bytes_per_sec(capture_time);
  const auto target_bytes =
      static_cast<std::size_t>(std::max(1.0, budget_rate / config_.fps));

  if (need_resync_) encoder_.request_intra();
  const codec::EncodedFrame encoded = encoder_.encode_to_target(
      frame, target_bytes, &offsets, motion.empty() ? nullptr : &motion);
  outcome.base_qp = encoded.base_qp;

  const util::SimTime ready =
      capture_time + config_.latencies.analysis + config_.latencies.encode;

  // 5. Upload with head-of-line outage detection.
  const net::TransmitResult tx =
      uplink_->transmit_with_timeout(static_cast<double>(encoded.bytes()),
                                     ready);
  if (tx.delivered) {
    need_resync_ = false;
    outcome.bytes_sent = encoded.bytes();
    outcome.offloaded = true;
    bandwidth_.add_transmission(static_cast<double>(encoded.bytes()),
                                tx.started, tx.sent_complete);
    const edge::InferenceResult inference =
        server_->process(encoded.data, tx.arrival);
    last_detections_ = inference.detections;
    outcome.detections = inference.detections;
    outcome.response_time = inference.result_at_agent - capture_time;
    return outcome;
  }

  // Link outage: the frame never reached the edge. The decoder state at
  // the server is now behind ours, so the next delivered frame must be
  // intra-coded.
  need_resync_ = true;
  if (config_.enable_offline_tracking) {
    last_detections_ = tracker_.track(last_detections_, motion, frame.width(),
                                      frame.height());
    outcome.detections = last_detections_;
  } else {
    // Without MOT the agent simply reuses the stale result.
    outcome.detections = last_detections_;
  }
  outcome.response_time =
      (tx.gave_up_at - capture_time) + config_.latencies.local_track;
  outcome.offloaded = false;
  return outcome;
}

}  // namespace dive::core
