#include "core/agent.h"

#include <algorithm>

#include "obs/obs.h"

namespace dive::core {

namespace {

/// The agent-level thread knob fills in the encoder config unless the
/// caller already pinned a count there.
codec::EncoderConfig with_threads(codec::EncoderConfig ec, int threads) {
  if (ec.threads == 0) ec.threads = threads;
  return ec;
}

}  // namespace

DiveAgent::DiveAgent(DiveConfig config, codec::EncoderConfig encoder_config,
                     geom::PinholeCamera camera,
                     std::shared_ptr<net::Uplink> uplink,
                     std::shared_ptr<edge::EdgeServer> server)
    : config_(config),
      encoder_(with_threads(encoder_config, config.encode_threads)),
      camera_(camera),
      uplink_(std::move(uplink)),
      server_(std::move(server)),
      preprocessor_(config.preprocess, config.seed),
      extractor_(config.foreground),
      qp_assigner_(config.qp),
      bandwidth_(config.bandwidth),
      tracker_(config.tracker),
      gate_(config.roi_gate, server_.get()) {
  if (config_.obs != nullptr) {
    encoder_.set_obs(config_.obs);
    uplink_->set_obs(config_.obs);
    server_->set_obs(config_.obs);
  }
}

FrameOutcome DiveAgent::process_frame(const video::Frame& frame,
                                      util::SimTime capture_time) {
  FrameOutcome outcome;
  obs::ObsContext* obs = config_.obs;
  if (obs != nullptr) obs->tracer.set_sim_now(capture_time);
  // Causal identity for this frame (single-agent pipeline = session 0):
  // encoder/edge spans join its flow, the ledger collects its stages.
  const std::uint64_t frame_index = frame_seq_++;
  obs::FrameTraceContext trace_ctx;
  if (obs != nullptr) {
    trace_ctx = obs->ledger.begin_frame(0, frame_index, capture_time);
    encoder_.set_frame_context(trace_ctx);
    server_->set_frame_context(trace_ctx);
  }
  DIVE_OBS_SPAN(frame_span, obs, "agent.frame", obs::kTrackAgent);
  frame_span.flow(trace_ctx);

  // 1-2. Motion vectors from the codec, then preprocessing.
  codec::MotionField motion;
  {
    DIVE_OBS_SPAN(span, obs, "agent.mv_harvest", obs::kTrackAgent);
    motion = encoder_.analyze_motion(frame);
    span.arg("nonzero_permille",
             static_cast<long long>(motion.empty()
                                        ? 0
                                        : motion.nonzero_ratio() * 1000.0));
  }
  {
    // Ego-motion judgement (eta) + R-sampling/RANSAC rotation estimate.
    DIVE_OBS_SPAN(span, obs, "agent.preprocess", obs::kTrackAgent);
    last_pre_ = preprocessor_.run(motion, camera_);
    span.arg("eta_permille", static_cast<long long>(last_pre_.eta * 1000.0));
    span.arg("moving", last_pre_.agent_moving ? 1 : 0);
    span.arg("rotation_valid", last_pre_.rotation_valid ? 1 : 0);
  }

  // 3. Foreground extraction (falls back to the last foreground when the
  //    agent is stopped or no motion field exists).
  {
    DIVE_OBS_SPAN(span, obs, "agent.foreground", obs::kTrackAgent);
    last_fg_ = extractor_.extract(last_pre_, camera_);
    span.arg("regions", static_cast<long long>(last_fg_.regions.size()));
    span.arg("fallback", last_fg_.from_fallback ? 1 : 0);
  }

  // 4. Adaptive video encoding to the estimated uplink budget.
  const int mb_cols = frame.width() / codec::kMacroblockSize;
  const int mb_rows = frame.height() / codec::kMacroblockSize;
  codec::QpOffsetMap offsets;
  {
    DIVE_OBS_SPAN(span, obs, "agent.qp_assign", obs::kTrackAgent);
    offsets = qp_assigner_.build_map(last_fg_, mb_cols, mb_rows);
    last_delta_ = qp_assigner_.background_delta(last_fg_, mb_cols, mb_rows);
    span.arg("bg_delta", last_delta_);
  }
  const double budget_rate = bandwidth_.target_bytes_per_sec(capture_time);
  const auto target_bytes =
      static_cast<std::size_t>(std::max(1.0, budget_rate / config_.fps));

  if (need_resync_) {
    encoder_.request_intra();
    if (obs != nullptr) obs->metrics.counter("agent.intra_resyncs").add();
  }
  // Consume the harness lookahead hint: the encoder prefetches the next
  // frame's motion search once this frame's reconstruction is final.
  const video::Frame* next_src = next_hint_;
  next_hint_ = nullptr;
  codec::EncodedFrame encoded;
  {
    DIVE_OBS_SPAN(span, obs, "agent.encode", obs::kTrackAgent);
    encoded = encoder_.encode_to_target(frame, target_bytes, &offsets,
                                        motion.empty() ? nullptr : &motion,
                                        next_src);
    span.arg("prefetch", next_src != nullptr ? 1 : 0);
    span.arg("base_qp", encoded.base_qp);
    span.arg("bytes", static_cast<long long>(encoded.bytes()));
    span.arg("trials",
             static_cast<long long>(
                 encoder_.rate_control_stats().trials_attempted));
  }
  outcome.base_qp = encoded.base_qp;

  // Compressed-domain RoI sidecar: free codec metadata (coded MV field +
  // SKIP flags) plus the FE hulls, serialized into the metadata lane.
  // Its bytes ride the uplink with the frame — they count against the
  // bandwidth budget, while the video bitstream stays byte-identical.
  roi::RoiMetadata meta;
  std::vector<std::uint8_t> sidecar;
  if (config_.roi_metadata) {
    DIVE_OBS_SPAN(span, obs, "agent.roi_metadata", obs::kTrackAgent);
    meta = roi::from_encoded(encoded, frame.width(), frame.height());
    for (const auto& region : last_fg_.regions)
      roi::add_region(meta, region.hull, region.mean_mv);
    sidecar = meta.serialize();
    span.arg("bytes", static_cast<long long>(sidecar.size()));
  }
  const std::size_t upload_bytes = encoded.bytes() + sidecar.size();

  const util::SimTime ready =
      capture_time + config_.latencies.analysis + config_.latencies.encode;
  if (obs != nullptr) {
    // Simulated-timeline view of the Fig. 5 pipeline: the modelled
    // on-agent compute interval; the uplink and edge emit their own.
    obs->tracer.span_at("agent.analyze+encode", obs::kTrackAgent,
                        capture_time, ready,
                        {{"bytes", static_cast<long long>(encoded.bytes())}},
                        trace_ctx.flow_id());
    obs->ledger.stage(trace_ctx, obs::FrameStage::kEncode, capture_time,
                      ready);
    if (config_.roi_metadata) {
      // Sidecar serialization is modeled at zero sim latency; the stage
      // still appears so the breakdown names it (bytes ride the uplink).
      obs->ledger.stage(trace_ctx, obs::FrameStage::kSidecar, ready, ready);
    }
    auto& m = obs->metrics;
    m.counter("agent.frames").add();
    m.distribution("agent.eta", "ratio").add(last_pre_.eta);
    m.distribution("agent.fg_area_pct", "%")
        .add(100.0 * last_fg_.area_fraction(frame.width(), frame.height()));
    m.distribution("agent.bg_delta", "qp").add(last_delta_);
    m.distribution("agent.encode_trials", "count")
        .add(encoder_.rate_control_stats().trials_attempted);
    m.gauge("agent.last_eta", "ratio").set(last_pre_.eta);
  }

  // 5. Upload with head-of-line outage detection.
  net::TransmitResult tx;
  {
    DIVE_OBS_SPAN(span, obs, "agent.transmit", obs::kTrackAgent);
    tx = uplink_->transmit_with_timeout(static_cast<double>(upload_bytes),
                                        ready, &trace_ctx);
    span.arg("delivered", tx.delivered ? 1 : 0);
  }
  if (tx.delivered) {
    need_resync_ = false;
    outcome.bytes_sent = upload_bytes;
    outcome.offloaded = true;
    bandwidth_.add_transmission(static_cast<double>(upload_bytes),
                                tx.started, tx.sent_complete);
    edge::InferenceResult inference;
    {
      DIVE_OBS_SPAN(span, obs, "agent.edge_infer", obs::kTrackAgent);
      if (config_.roi_metadata) {
        inference = gate_.process(encoded.data, &meta, tx.arrival,
                                  &last_plan_);
        span.arg("gated", last_plan_.gated ? 1 : 0);
      } else {
        inference = server_->process(encoded.data, tx.arrival);
      }
    }
    last_detections_ = inference.detections;
    outcome.detections = inference.detections;
    outcome.response_time = inference.result_at_agent - capture_time;
    if (obs != nullptr) {
      const util::SimTime served =
          inference.result_at_agent - server_->config().downlink_delay;
      obs->ledger.stage(trace_ctx, obs::FrameStage::kInference, tx.arrival,
                        served);
      obs->ledger.stage(trace_ctx, obs::FrameStage::kResult, served,
                        inference.result_at_agent);
      obs->ledger.outcome(trace_ctx, obs::FrameOutcome::kCompleted,
                          inference.result_at_agent);
      obs->metrics.counter("agent.offloaded").add();
      obs->metrics.counter("agent.bytes_sent", "bytes")
          .add(static_cast<std::int64_t>(upload_bytes));
      obs->metrics.distribution("agent.response_ms", "ms")
          .add(util::to_millis(outcome.response_time));
      if (config_.roi_metadata) {
        auto& m = obs->metrics;
        m.counter("roi.sidecar_bytes", "bytes")
            .add(static_cast<std::int64_t>(sidecar.size()));
        m.counter(last_plan_.gated ? "roi.gated_frames" : "roi.full_frames")
            .add();
        m.distribution("roi.pixel_fraction", "ratio")
            .add(last_plan_.pixel_fraction);
        m.distribution("roi.coverage", "ratio").add(last_plan_.coverage);
        m.gauge("roi.propagated_boxes", "count")
            .set(static_cast<double>(gate_.stats().propagated_boxes));
      }
    }
    return outcome;
  }

  // Link outage: the frame never reached the edge. The decoder state at
  // the server is now behind ours, so the next delivered frame must be
  // intra-coded.
  need_resync_ = true;
  {
    DIVE_OBS_SPAN(span, obs, "agent.mot_fallback", obs::kTrackAgent);
    if (config_.enable_offline_tracking) {
      last_detections_ = tracker_.track(last_detections_, motion,
                                        frame.width(), frame.height());
      outcome.detections = last_detections_;
    } else {
      // Without MOT the agent simply reuses the stale result.
      outcome.detections = last_detections_;
    }
  }
  outcome.response_time =
      (tx.gave_up_at - capture_time) + config_.latencies.local_track;
  outcome.offloaded = false;
  if (obs != nullptr) {
    obs->metrics.counter("agent.fallbacks").add();
    obs->metrics.distribution("agent.response_ms", "ms")
        .add(util::to_millis(outcome.response_time));
    obs->tracer.span_at("agent.mot_track", obs::kTrackAgent, tx.gave_up_at,
                        tx.gave_up_at + config_.latencies.local_track, {},
                        trace_ctx.flow_id());
    obs->ledger.outcome(trace_ctx, obs::FrameOutcome::kDroppedUplink,
                        tx.gave_up_at);
  }
  return outcome;
}

}  // namespace dive::core
