// Common interface every edge-assisted video-analytics scheme implements
// (DiVE plus the O3 / EAAR / DDS baselines of Sec. IV-A). The experiment
// harness drives a scheme frame by frame against simulated time and scores
// the detections it reports for each frame.
#pragma once

#include <cstddef>

#include "edge/detection.h"
#include "util/sim_clock.h"
#include "video/frame.h"

namespace dive::core {

/// What a scheme produced for one captured frame.
struct FrameOutcome {
  edge::DetectionList detections;
  /// Capture -> final result in the agent's hands (the paper's Response
  /// Time metric).
  util::SimTime response_time = 0;
  /// True when the result came from edge inference of this very frame
  /// (false: local tracking / reuse).
  bool offloaded = false;
  std::size_t bytes_sent = 0;
  int base_qp = -1;
};

class AnalyticsScheme {
 public:
  virtual ~AnalyticsScheme() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Processes the frame captured at `capture_time` and returns the
  /// detections the agent ends up holding for it.
  virtual FrameOutcome process_frame(const video::Frame& frame,
                                     util::SimTime capture_time) = 0;

  /// Optional lookahead: announces the frame the harness will feed to the
  /// NEXT process_frame call, letting a scheme pipeline work across frame
  /// boundaries (the DiVE agent starts frame N+1's motion search while
  /// frame N's bitstream is still being emitted). `next` must stay valid
  /// until the following process_frame call returns. Purely a scheduling
  /// hint: every outcome is identical whether or not it is called.
  virtual void hint_next_frame(const video::Frame& next) { (void)next; }
};

/// Latency constants modelling on-agent compute, shared across schemes so
/// comparisons are fair.
struct AgentLatencies {
  util::SimTime encode = util::from_millis(12.0);
  util::SimTime analysis = util::from_millis(4.0);  ///< DiVE FE etc.
  util::SimTime local_track = util::from_millis(2.0);
};

}  // namespace dive::core
