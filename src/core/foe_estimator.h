// Focus-of-expansion estimation and calibration.
//
// Observation 1 (Sec. II-C): when the agent translates forward, the
// motion vectors of static points all point away from a single image
// point — the FOE, which coincides with the vanishing point. R-sampling
// and the normalized-magnitude feature both take the FOE as given,
// "calibrated when the agent moves forward". This component performs that
// calibration: per frame it finds the point minimizing the perpendicular
// distance to all motion-vector lines (robustly, via RANSAC), and across
// frames it accumulates a running calibration.
//
// For a vehicle whose camera is aligned with the direction of travel the
// calibrated FOE sits at the principal point, which is why the rest of
// the library defaults to (0, 0) in centered coordinates; this estimator
// verifies that assumption and supports mounted-at-an-angle cameras.
#pragma once

#include <optional>
#include <vector>

#include "codec/types.h"
#include "geom/pinhole_camera.h"
#include "util/rng.h"

namespace dive::core {

struct FoeEstimatorConfig {
  /// MVs shorter than this carry too little direction to constrain the
  /// intersection point.
  double min_mv_magnitude = 1.5;
  int ransac_iterations = 60;
  /// Max perpendicular point-to-line distance (pixels) for an inlier.
  double inlier_threshold_px = 6.0;
  double min_inlier_fraction = 0.4;
  /// Exponential smoothing factor of the cross-frame calibration.
  double calibration_alpha = 0.15;
};

struct FoeEstimate {
  geom::Vec2 foe;  ///< centered image coordinates
  int inliers = 0;
  int candidates = 0;
};

class FoeEstimator {
 public:
  FoeEstimator(FoeEstimatorConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  [[nodiscard]] const FoeEstimatorConfig& config() const { return config_; }

  /// Single-frame estimate from a (rotation-corrected) motion field.
  /// Empty when too few usable vectors or no consensus exists (e.g. the
  /// agent is rotating or stopped).
  std::optional<FoeEstimate> estimate(const codec::MotionField& field,
                                      const geom::PinholeCamera& camera);

  /// Feeds a frame into the running calibration; returns the per-frame
  /// estimate when one was made.
  std::optional<FoeEstimate> update_calibration(
      const codec::MotionField& field, const geom::PinholeCamera& camera);

  /// Smoothed cross-frame calibration; nullopt until the first accepted
  /// frame.
  [[nodiscard]] std::optional<geom::Vec2> calibrated() const {
    return calibrated_;
  }
  [[nodiscard]] int calibration_frames() const { return calibration_frames_; }

  void reset() {
    calibrated_.reset();
    calibration_frames_ = 0;
  }

 private:
  FoeEstimatorConfig config_;
  util::Rng rng_;
  std::optional<geom::Vec2> calibrated_;
  int calibration_frames_ = 0;
};

}  // namespace dive::core
