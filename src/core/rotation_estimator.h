// Rotational-component estimation from motion vectors (Sec. III-B3).
//
// For a forward-translating, pitch/yaw-rotating agent, eliminating the
// unknown depth from the combined MV model (Eq. 6) yields one linear
// equation per motion vector in the two rotational speeds (Eq. 7):
//     (x f) dphi_x + (y f) dphi_y = y*vx - x*vy .
// The estimator picks the k motion vectors closest to the calibrated FOE
// ("R-sampling": those MVs have the smallest translational component and
// are the most rotation-sensitive) and solves the over-determined system
// with RANSAC.
#pragma once

#include <optional>
#include <vector>

#include "codec/types.h"
#include "core/motion_model.h"
#include "geom/pinhole_camera.h"
#include "geom/ransac.h"
#include "util/rng.h"

namespace dive::core {

enum class SamplingPolicy {
  kRSampling,  ///< k MVs nearest the FOE (the paper's method)
  kRandom,     ///< k uniformly random MVs (the Fig. 7 baseline)
};

struct RotationEstimatorConfig {
  SamplingPolicy policy = SamplingPolicy::kRSampling;
  int sample_count = 70;  ///< k; the paper settles on 70 (Fig. 10)
  geom::Vec2 foe{0.0, 0.0};  ///< calibrated FOE, centered coordinates
  /// RANSAC knobs: residual is the tangential MV mismatch in pixels.
  int ransac_iterations = 80;
  double inlier_threshold_px = 1.0;
  /// Reject estimates whose consensus covers less than this fraction of
  /// the sampled rows (no usable static structure in the sample).
  double min_inlier_fraction = 0.2;

  /// MVs shorter than this are skipped. Default 0: even a zero MV is a
  /// valid measurement ("no apparent rotation at this block"), and near
  /// the FOE the static background's MVs are legitimately tiny — dropping
  /// them would leave mostly moving-object vectors in the sample.
  double min_mv_magnitude = 0.0;
  /// MVs with a component at/above this are treated as saturated by the
  /// codec's search window and discarded (true motion exceeded the range,
  /// so the vector's value is arbitrary). Keep just under the encoder's
  /// MotionSearchConfig::range.
  double saturation_limit_px = 23.0;
  /// Rows with |y| below this contribute almost nothing to the yaw
  /// estimate (their Eq. (7) coefficient on dphi_y vanishes), so
  /// R-sampling reserves half the sample for blocks with |y| above it.
  /// Wide-short sensors (KITTI's 1242x375) are degenerate without this.
  double y_diversity_px = 10.0;
};

struct RotationEstimate {
  Rotation rotation;   ///< radians per frame interval
  int inliers = 0;
  int samples_used = 0;
};

class RotationEstimator {
 public:
  RotationEstimator(RotationEstimatorConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  [[nodiscard]] const RotationEstimatorConfig& config() const {
    return config_;
  }

  /// Estimates (dphi_x, dphi_y) from the frame's motion field. Returns
  /// nullopt when fewer than 3 usable vectors exist or RANSAC finds no
  /// consensus.
  std::optional<RotationEstimate> estimate(const codec::MotionField& field,
                                           const geom::PinholeCamera& camera);

 private:
  RotationEstimatorConfig config_;
  util::Rng rng_;
};

}  // namespace dive::core
