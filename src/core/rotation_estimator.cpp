#include "core/rotation_estimator.h"

#include <algorithm>
#include <cmath>

#include "geom/least_squares.h"

namespace dive::core {

std::optional<RotationEstimate> RotationEstimator::estimate(
    const codec::MotionField& field, const geom::PinholeCamera& camera) {
  if (field.empty()) return std::nullopt;
  const double f = camera.focal();

  // Collect candidate (position, mv) pairs with usable magnitude.
  struct Datum {
    geom::Vec2 p;   // centered position
    geom::Vec2 mv;
    double foe_dist;
  };
  std::vector<Datum> candidates;
  candidates.reserve(field.size());
  for (int row = 0; row < field.mb_rows; ++row) {
    for (int col = 0; col < field.mb_cols; ++col) {
      const codec::MotionVector mv = field.at(col, row);
      const geom::Vec2 v = mv.as_vec2();
      if (v.norm() < config_.min_mv_magnitude) continue;
      if (std::abs(v.x) >= config_.saturation_limit_px ||
          std::abs(v.y) >= config_.saturation_limit_px)
        continue;
      const geom::Vec2 p = camera.to_centered(field.mb_center(col, row));
      candidates.push_back({p, v, (p - config_.foe).norm()});
    }
  }
  if (candidates.size() < 3) return std::nullopt;

  // Sampling policy.
  std::vector<Datum> selected;
  const auto k = static_cast<std::size_t>(
      std::max(3, std::min<int>(config_.sample_count,
                                static_cast<int>(candidates.size()))));
  if (config_.policy == SamplingPolicy::kRSampling) {
    // Nearest-to-FOE selection, with half the quota reserved for rows
    // carrying vertical offset (they are the only ones that constrain
    // dphi_y on wide-aspect sensors).
    std::sort(candidates.begin(), candidates.end(),
              [](const Datum& a, const Datum& b) {
                return a.foe_dist < b.foe_dist;
              });
    std::vector<std::uint8_t> taken(candidates.size(), 0);
    std::size_t high_y_taken = 0;
    for (std::size_t i = 0;
         i < candidates.size() && high_y_taken < k / 2; ++i) {
      if (std::abs(candidates[i].p.y) >= config_.y_diversity_px) {
        taken[i] = 1;
        ++high_y_taken;
      }
    }
    std::size_t remaining = k - high_y_taken;
    for (std::size_t i = 0; i < candidates.size() && remaining > 0; ++i) {
      if (!taken[i]) {
        taken[i] = 1;
        --remaining;
      }
    }
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (taken[i]) selected.push_back(candidates[i]);
  } else {
    selected.reserve(k);
    // Sample without replacement via partial Fisher-Yates.
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = static_cast<std::size_t>(rng_.uniform_int(
          static_cast<int>(i), static_cast<int>(candidates.size()) - 1));
      std::swap(candidates[i], candidates[j]);
      selected.push_back(candidates[i]);
    }
  }

  // Build the Eq. (7) rows. Substituting Eq. (5) into the combined model
  // and eliminating the depth term gives
  //     y*vx - x*vy = -(x f) dphi_x - (y f) dphi_y ,
  // one row per motion vector. (The paper's Eq. (7) prints the right-hand
  // side with the opposite sign; the derivation from its own Eq. (6)
  // yields the negative form used here.)
  std::vector<geom::LinearRow2> rows;
  rows.reserve(selected.size());
  for (const auto& d : selected) {
    rows.push_back(
        {-d.p.x * f, -d.p.y * f, d.p.y * d.mv.x - d.p.x * d.mv.y});
  }

  geom::RansacOptions opts;
  opts.iterations = config_.ransac_iterations;
  opts.sample_size = 2;
  opts.min_inliers = std::max(
      3, static_cast<int>(config_.min_inlier_fraction *
                          static_cast<double>(rows.size())));
  opts.inlier_threshold = config_.inlier_threshold_px;

  auto fit = [&rows](std::span<const std::size_t> idx)
      -> std::optional<geom::Vec2> {
    std::vector<geom::LinearRow2> subset;
    subset.reserve(idx.size());
    for (auto i : idx) subset.push_back(rows[i]);
    return geom::solve_least_squares_2(subset);
  };
  // Residual normalized by the point's FOE distance: the tangential MV
  // mismatch in pixels, comparable across the frame.
  auto error = [&rows, &selected](const geom::Vec2& model, std::size_t i) {
    const double denom = std::max(1.0, selected[i].foe_dist);
    return geom::residual(rows[i], model) / denom;
  };

  const auto result = geom::ransac<geom::Vec2>(rows.size(), opts, rng_, fit,
                                               error);
  if (!result) return std::nullopt;

  RotationEstimate est;
  est.rotation = {result->model.x, result->model.y};
  est.inliers = static_cast<int>(result->inliers.size());
  est.samples_used = static_cast<int>(rows.size());
  return est;
}

}  // namespace dive::core
