// Ground estimation from corrected motion vectors (Sec. III-C1).
//
// Observation 2: after rotation removal, static points at the same world
// height share the same normalized MV magnitude |v| / (R * y). The ground
// is the lowest (and largest) surface, so its normalized magnitude is the
// smallest mode of the distribution. The estimator:
//   1. keeps MVs that point at the FOE (radial-consistency filter — the
//      paper's "filter out those random vectors that do not point to the
//      FOE");
//   2. histograms normalized magnitudes and applies the Triangle (Zack)
//      threshold;
//   3. declares macroblocks under the threshold "ground", wraps them in a
//      convex hull, and returns the non-ground blocks inside the hull as
//      the foreground seed set S^t.
#pragma once

#include <vector>

#include "core/preprocess.h"
#include "geom/pinhole_camera.h"
#include "geom/vec.h"

namespace dive::core {

struct GroundEstimatorConfig {
  geom::Vec2 foe{0.0, 0.0};       ///< centered coordinates
  double radial_cos_min = 0.9;    ///< min cosine between MV and radial dir
  double min_mv_magnitude = 1.0;  ///< MVs shorter than this are unusable
  double min_y = 4.0;             ///< only points below the FOE row qualify
  int histogram_bins = 48;
  /// Histogram upper range as a multiple of the median normalized
  /// magnitude (robust to outliers).
  double histogram_range_medians = 4.0;
};

struct GroundEstimate {
  bool valid = false;
  double threshold = 0.0;            ///< normalized-magnitude cutoff
  std::vector<bool> ground_mask;     ///< per-MB, row-major
  std::vector<bool> in_hull_mask;    ///< per-MB: center inside ground hull
  std::vector<geom::Vec2> hull;      ///< ground convex hull, pixel coords
  std::vector<int> seed_indices;     ///< foreground seeds (MB index)
  int ground_count = 0;
};

class GroundEstimator {
 public:
  explicit GroundEstimator(GroundEstimatorConfig config = {})
      : config_(config) {}

  [[nodiscard]] const GroundEstimatorConfig& config() const { return config_; }

  [[nodiscard]] GroundEstimate estimate(const PreprocessResult& pre,
                                        const geom::PinholeCamera& camera) const;

 private:
  GroundEstimatorConfig config_;
};

}  // namespace dive::core
