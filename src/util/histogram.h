// Fixed-bin histogram. The DiVE ground estimator feeds normalized motion
// vector magnitudes into a histogram and applies the Triangle (Zack)
// threshold method to it (geom/triangle_threshold.h).
#pragma once

#include <cstddef>
#include <vector>

namespace dive::util {

class Histogram {
 public:
  /// `bins` uniform-width buckets spanning [lo, hi). Finite values outside
  /// the range (and ±inf) are clamped into the first/last bin; NaN is
  /// counted separately (nan_count) and lands in no bin.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// NaN samples seen by add(); excluded from every bin and from total().
  [[nodiscard]] std::size_t nan_count() const { return nan_count_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const { return counts_; }

  /// Center value of bin `i`.
  [[nodiscard]] double bin_center(std::size_t i) const;
  /// Lower edge of bin `i`.
  [[nodiscard]] double bin_lower(std::size_t i) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Index of the fullest bin (first on ties).
  [[nodiscard]] std::size_t peak_bin() const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_count_ = 0;
};

}  // namespace dive::util
