// Fixed-size worker pool with a blocking parallel_for over index ranges.
//
// Built for the codec's per-frame hot loops (motion search rows, the
// macroblock transform/quantize pass): the caller thread participates in
// the work, jobs are partitioned by an atomic index so the result of a
// parallel_for is identical for every thread count as long as iterations
// write disjoint data, and a pool of size 1 degrades to a plain serial
// loop (no threads spawned, no synchronization) so single-threaded test
// runs and TSan-free builds behave exactly like the pre-threading code.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dive::util {

class ThreadPool {
 public:
  /// `threads` is the TOTAL lane count including the calling thread:
  /// a pool of N spawns N-1 workers. 0 resolves via
  /// `resolve_thread_count` (DIVE_THREADS env var, then hardware).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread), always >= 1.
  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(i) for every i in [begin, end), distributing indices over
  /// the pool; blocks until all iterations finished. The calling thread
  /// works too. The first exception thrown by any iteration is rethrown
  /// on the caller; remaining indices are abandoned once an iteration
  /// has failed. NOT reentrant: fn must not call parallel_for on the
  /// same pool.
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

  /// Thread-count policy shared by every DIVE_THREADS consumer:
  /// requested > 0 wins, else the DIVE_THREADS environment variable
  /// (when a positive integer), else std::thread::hardware_concurrency.
  [[nodiscard]] static int resolve_thread_count(int requested);

 private:
  void worker_loop();
  void drain(const std::function<void(int)>& fn);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // valid while acks_ > 0
  std::atomic<int> next_{0};
  int end_ = 0;
  int acks_ = 0;            ///< workers yet to finish the current epoch
  std::uint64_t epoch_ = 0; ///< bumped per parallel_for to wake workers
  bool stop_ = false;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

}  // namespace dive::util
