#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dive::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

/// One-time env initialization, hooked into the first level query so no
/// static-init ordering is imposed on callers.
std::once_flag g_env_once;
void ensure_env_init() {
  std::call_once(g_env_once, [] { init_log_level_from_env(); });
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel parse_log_level(const char* value, LogLevel fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2")
    return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return fallback;
}

void init_log_level_from_env() {
  g_level.store(parse_log_level(std::getenv("DIVE_LOG_LEVEL")));
}

void set_log_level(LogLevel level) {
  ensure_env_init();  // a later explicit set always wins over the env
  g_level.store(level);
}

LogLevel log_level() {
  ensure_env_init();
  return g_level.load();
}

void log_line(LogLevel level, const std::string& msg) {
  ensure_env_init();
  if (level < g_level.load()) return;
  // Format the complete line first, then emit it with one write under a
  // mutex: concurrent thread-pool workers get whole lines, never shreds.
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace dive::util
