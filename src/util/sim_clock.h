// Simulated wall clock shared by the network, agent, and edge models.
//
// All DiVE timing experiments (response time, bandwidth estimation windows,
// link-outage timers) run against simulated time so that results are
// deterministic and independent of host load.
#pragma once

#include <cstdint>

namespace dive::util {

/// Simulation time in microseconds. Signed to make interval arithmetic safe.
using SimTime = std::int64_t;

constexpr SimTime kMicrosPerMilli = 1'000;
constexpr SimTime kMicrosPerSec = 1'000'000;

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSec);
}
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerMilli);
}
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kMicrosPerSec));
}
constexpr SimTime from_millis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMicrosPerMilli));
}

/// A monotonically advancing simulated clock.
///
/// The experiment harness owns one SimClock and advances it as frames are
/// captured, encoded, transmitted, and inferred. Components hold a pointer
/// and may only read it.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }

  /// Advance the clock by `delta` microseconds. `delta` must be >= 0.
  void advance(SimTime delta) {
    if (delta > 0) now_ += delta;
  }

  /// Jump to an absolute time; never moves backwards.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_ = 0;
};

}  // namespace dive::util
