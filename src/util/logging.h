// Minimal leveled logging. Kept deliberately small: the library is used
// inside tight per-frame loops, so logging must be cheap when disabled.
#pragma once

#include <sstream>
#include <string>

namespace dive::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. The initial
/// level honors the DIVE_LOG_LEVEL environment variable at startup
/// ("debug" | "info" | "warn" | "error" | "off", case-insensitive, or
/// the numeric values 0-4); unset or unparsable falls back to kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a DIVE_LOG_LEVEL-style value; `fallback` when unrecognized.
LogLevel parse_log_level(const char* value, LogLevel fallback = LogLevel::kWarn);

/// Re-reads DIVE_LOG_LEVEL and applies it (startup does this once;
/// exposed for tests and long-running tools that reload config).
void init_log_level_from_env();

/// Emit one line to stderr with a level prefix (no-op below threshold).
/// The whole line is formatted into a single buffer and written under a
/// mutex, so concurrent callers (thread-pool workers) never interleave
/// fragments of their lines.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dive::util

#define DIVE_LOG(level) ::dive::util::detail::LogMessage(level)
#define DIVE_LOG_DEBUG DIVE_LOG(::dive::util::LogLevel::kDebug)
#define DIVE_LOG_INFO DIVE_LOG(::dive::util::LogLevel::kInfo)
#define DIVE_LOG_WARN DIVE_LOG(::dive::util::LogLevel::kWarn)
#define DIVE_LOG_ERROR DIVE_LOG(::dive::util::LogLevel::kError)
