// One persistent background lane executing a single task at a time.
//
// The encoder's pipelined frame schedule needs exactly this shape: hand
// the motion search of frame N+1 to another thread, emit frame N's
// bitstream on the caller, then join before the next frame touches any
// shared state. A full task queue would invite overlap bugs; a single
// occupied/idle slot makes the handoff protocol checkable: run() requires
// (and waits for) an idle lane, wait() returns only when the slot is
// empty again, and the worker persists across frames so steady-state use
// never spawns threads.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace dive::util {

class AsyncLane {
 public:
  AsyncLane();
  ~AsyncLane();  ///< waits for the in-flight task, then joins the worker

  AsyncLane(const AsyncLane&) = delete;
  AsyncLane& operator=(const AsyncLane&) = delete;

  /// Schedules `task` on the lane. If a previous task is still running,
  /// blocks until it finished (its exception, if any, is swallowed into
  /// the slot and rethrown by the next wait()).
  void run(std::function<void()> task);

  /// Blocks until the lane is idle. Rethrows the exception of the task
  /// that just drained, if it threw.
  void wait();

  /// True when no task is running or queued.
  [[nodiscard]] bool idle() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::function<void()> task_;   ///< non-empty while a task is queued
  bool busy_ = false;            ///< a task is queued or executing
  bool stop_ = false;
  std::exception_ptr error_;
  std::thread worker_;
};

}  // namespace dive::util
