#include "util/rng.h"

namespace dive::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

Rng Rng::fork(std::uint64_t stream) const {
  // SplitMix-style mixing of (seed, stream) so that forked streams are
  // decorrelated from the parent and from each other.
  std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return Rng(z);
}

}  // namespace dive::util
