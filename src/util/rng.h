// Deterministic random number generation.
//
// Every stochastic component in the reproduction (scene generation,
// bandwidth traces, detector jitter) draws from a seeded Rng so that tests
// and benchmark tables are bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <random>

namespace dive::util {

/// Seeded pseudo-random source with convenience distributions.
///
/// Wraps a mersenne twister; cheap to copy is NOT a goal — pass by
/// reference. Use `fork()` to derive an independent stream for a
/// sub-component so that adding draws in one component does not perturb
/// another.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  /// Gaussian with mean/stddev.
  double gaussian(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p);
  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Derive an independent generator; distinct `stream` values give
  /// distinct sequences for the same parent seed.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace dive::util
