#include "util/thread_pool.h"

#include <cstdlib>

namespace dive::util {

int ThreadPool::resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DIVE_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (int i = 0; i < n - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(const std::function<void(int)>& fn) {
  for (;;) {
    if (failed_.load(std::memory_order_relaxed)) return;
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end_) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const std::function<void(int)>* fn = job_;
    lock.unlock();
    drain(*fn);
    lock.lock();
    if (--acks_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(int begin, int end,
                              const std::function<void(int)>& fn) {
  if (end <= begin) return;
  // Serial fast path: no workers, or nothing worth fanning out.
  if (workers_.empty() || end - begin == 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }

  std::unique_lock lock(mutex_);
  job_ = &fn;
  next_.store(begin, std::memory_order_relaxed);
  end_ = end;
  acks_ = static_cast<int>(workers_.size());
  error_ = nullptr;
  failed_.store(false, std::memory_order_relaxed);
  ++epoch_;
  lock.unlock();
  start_cv_.notify_all();

  drain(fn);

  lock.lock();
  // Every worker must acknowledge this epoch before the caller returns,
  // otherwise a late-waking worker could touch a dead `fn`.
  done_cv_.wait(lock, [&] { return acks_ == 0; });
  job_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace dive::util
