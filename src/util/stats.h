// Streaming statistics and empirical-CDF helpers used by the evaluation
// harness and benchmark tables.
#pragma once

#include <cstddef>
#include <vector>

namespace dive::util {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples to answer quantile/CDF queries. Used for the
/// CDF figures (Fig. 6a, Fig. 7a/b).
///
/// THREAD-SAFETY CONTRACT: the const query methods (quantile, median,
/// cdf_at, cdf_curve) lazily sort `mutable` state on first use, so two
/// concurrent const queries on a not-yet-sorted set race on the backing
/// vector. Either serialize queries, or call sort_samples() once after
/// the last mutation — after that, const queries only read and are safe
/// to run concurrently until the next add()/merge() dirties the order
/// again (exercised under ThreadSanitizer in obs_test).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  /// Appends every sample of `other` (aggregating per-session sets).
  void merge(const SampleSet& other);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Sorts the backing store now. Publishing a set for concurrent
  /// read-only quantile/CDF queries requires calling this first (see the
  /// class-level thread-safety contract).
  void sort_samples() const { ensure_sorted(); }

  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;

  /// Empirical CDF evaluated at x: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  /// (value, cumulative_fraction) pairs at `points` evenly spaced values
  /// spanning [min, max] — directly plottable as a CDF curve.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_curve(
      std::size_t points = 20) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace dive::util
