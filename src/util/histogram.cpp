#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dive::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  // NaN has no meaningful bin; counting it separately keeps total() equal
  // to the sum of bin counts.
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  // Clamp in the DOUBLE domain before converting: a huge or infinite x
  // makes (x - lo_) / width_ exceed the range of long, and casting an
  // out-of-range double to an integer is undefined behavior — not merely
  // a large value that the old post-cast clamp could fix up.
  const double pos = (x - lo_) / width_;
  const double hi_bin = static_cast<double>(counts_.size()) - 1.0;
  const auto idx =
      static_cast<std::size_t>(std::clamp(std::floor(pos), 0.0, hi_bin));
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::bin_lower(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

std::size_t Histogram::peak_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

}  // namespace dive::util
