#include "util/histogram.h"

#include <algorithm>
#include <stdexcept>

namespace dive::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<long>((x - lo_) / width_);
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::bin_lower(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

std::size_t Histogram::peak_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

}  // namespace dive::util
