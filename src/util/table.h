// Plain-text table / CSV emitters for the benchmark harness. Every paper
// table and figure is reproduced as rows printed by a bench binary; this
// keeps the formatting consistent.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dive::util {

/// A simple column-aligned text table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double v, int precision = 1);  ///< 0.391 -> "39.1%"

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dive::util
