#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dive::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void SampleSet::merge(const SampleSet& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("quantile of empty SampleSet");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points < 2) return curve;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.emplace_back(x, cdf_at(x));
  }
  return curve;
}

}  // namespace dive::util
