#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dive::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::fmt_pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_string() const {
  // Compute per-column widths over header + rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto account = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace dive::util
