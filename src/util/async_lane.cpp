#include "util/async_lane.h"

#include <utility>

namespace dive::util {

AsyncLane::AsyncLane() : worker_([this] { worker_loop(); }) {}

AsyncLane::~AsyncLane() {
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !busy_; });
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void AsyncLane::run(std::function<void()> task) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !busy_; });
  error_ = nullptr;
  task_ = std::move(task);
  busy_ = true;
  lock.unlock();
  cv_.notify_all();
}

void AsyncLane::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !busy_; });
  if (error_ != nullptr) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

bool AsyncLane::idle() const {
  std::lock_guard lock(mutex_);
  return !busy_;
}

void AsyncLane::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || task_; });
      if (stop_) return;
      task = std::move(task_);
      task_ = nullptr;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      error_ = error;
      busy_ = false;
    }
    cv_.notify_all();
  }
}

}  // namespace dive::util
