#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace dive::data {

const char* to_string(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kNuScenesLike: return "nuScenes";
    case DatasetKind::kRobotCarLike: return "RobotCar";
    case DatasetKind::kKittiLike: return "KITTI";
  }
  return "?";
}

const char* to_string(MotionState state) {
  switch (state) {
    case MotionState::kStatic: return "static";
    case MotionState::kStraight: return "straight";
    case MotionState::kTurning: return "turning";
  }
  return "?";
}

DatasetSpec nuscenes_like(int clip_count, int frames_per_clip,
                          std::uint64_t seed) {
  DatasetSpec s;
  s.kind = DatasetKind::kNuScenesLike;
  // 1600x900 @ f~1260px scaled to 512 wide.
  s.width = 512;
  s.height = 288;
  s.focal_px = 1260.0 * 512.0 / 1600.0;
  s.fps = 12.0;
  s.clip_count = clip_count;
  s.frames_per_clip = frames_per_clip;
  s.seed = seed;
  // Dense urban scenes: ~4.7 visible cars and ~1.1 pedestrians per frame.
  s.parked_cars_per_100m = 4.5;
  s.moving_cars_per_100m = 2.2;
  s.pedestrians_per_100m = 3.0;
  s.stop_and_go_fraction = 0.25;
  s.turning_fraction = 0.2;
  return s;
}

DatasetSpec robotcar_like(int clip_count, int frames_per_clip,
                          std::uint64_t seed) {
  DatasetSpec s;
  s.kind = DatasetKind::kRobotCarLike;
  // 1280x960 @ f~983px scaled to 512 wide (4:3).
  s.width = 512;
  s.height = 384;
  s.focal_px = 983.0 * 512.0 / 1280.0;
  s.fps = 16.0;
  s.clip_count = clip_count;
  s.frames_per_clip = frames_per_clip;
  s.seed = seed;
  // Oxford city centre: fewer cars (~2.4/frame), more pedestrians
  // (~3.1/frame).
  s.parked_cars_per_100m = 1.4;
  s.moving_cars_per_100m = 1.0;
  s.pedestrians_per_100m = 7.5;
  s.stop_and_go_fraction = 0.3;
  s.turning_fraction = 0.2;
  return s;
}

DatasetSpec kitti_like(int clip_count, int frames_per_clip,
                       std::uint64_t seed) {
  DatasetSpec s;
  s.kind = DatasetKind::kKittiLike;
  // 1242x375 @ f~721px scaled to 512 wide.
  s.width = 512;
  s.height = 160;
  s.focal_px = 721.0 * 512.0 / 1242.0;
  s.fps = 10.0;
  s.clip_count = clip_count;
  s.frames_per_clip = frames_per_clip;
  s.seed = seed;
  // Rural/highway: sparser scenes.
  s.parked_cars_per_100m = 2.5;
  s.moving_cars_per_100m = 2.0;
  s.pedestrians_per_100m = 0.8;
  s.stop_and_go_fraction = 0.15;
  s.turning_fraction = 0.3;  // rotation experiments want turning data
  return s;
}

MotionState classify_motion(const video::EgoState& ego) {
  if (ego.speed < 0.5) return MotionState::kStatic;
  if (std::abs(ego.yaw_rate) > 0.02) return MotionState::kTurning;
  return MotionState::kStraight;
}

namespace {

video::EgoTrajectory make_trajectory(const DatasetSpec& spec, double duration,
                                     util::Rng& rng) {
  const double speed = rng.uniform(6.0, 13.0);
  const double draw = rng.uniform(0.0, 1.0);
  video::PitchWobble wobble;
  wobble.amplitude = rng.uniform(0.0015, 0.0035);
  wobble.frequency = rng.uniform(0.9, 1.8);
  wobble.phase = rng.uniform(0.0, 6.28);

  if (draw < spec.stop_and_go_fraction) {
    // Drive, brake, dwell, re-accelerate; proportions randomized.
    const double brake_s = rng.uniform(1.0, 2.0);
    const double dwell_s = rng.uniform(0.2, 0.35) * duration;
    const double accel_s = rng.uniform(1.5, 2.5);
    const double drive_s =
        std::max(1.0, (duration - brake_s - dwell_s - accel_s) * 0.5);
    const double tail_s =
        std::max(0.5, duration - drive_s - brake_s - dwell_s - accel_s);
    return video::EgoTrajectory(
        {{drive_s, 0.0, 0.0},
         {brake_s, -speed / brake_s, 0.0},
         {dwell_s, 0.0, 0.0},
         {accel_s, speed / accel_s, 0.0},
         {tail_s, 0.0, 0.0}},
        1.5, speed, wobble);
  }
  if (draw < spec.stop_and_go_fraction + spec.turning_fraction) {
    const double turn_deg =
        rng.uniform(25.0, 80.0) * (rng.chance(0.5) ? 1.0 : -1.0);
    const double turn_s = rng.uniform(0.25, 0.4) * duration;
    const double lead_s = rng.uniform(0.2, 0.35) * duration;
    const double tail_s = std::max(0.5, duration - lead_s - turn_s);
    return video::EgoTrajectory(
        {{lead_s, 0.0, 0.0},
         {turn_s, 0.0, turn_deg * 3.14159265 / 180.0 / turn_s},
         {tail_s, 0.0, 0.0}},
        1.5, speed, wobble);
  }
  return video::EgoTrajectory({{duration, 0.0, 0.0}}, 1.5, speed, wobble);
}

}  // namespace

Clip generate_clip(const DatasetSpec& spec, int clip_index) {
  util::Rng root(spec.seed);
  util::Rng rng = root.fork(static_cast<std::uint64_t>(clip_index));

  const double duration = spec.frames_per_clip / spec.fps;
  video::EgoTrajectory trajectory = make_trajectory(spec, duration + 0.5, rng);
  if (spec.vibration.enabled()) {
    // Dedicated fork: enabling vibration must not perturb the scene /
    // noise / imu streams of the base world.
    util::Rng vib_rng = rng.fork(4);
    video::CameraVibration vib = spec.vibration;
    vib.pitch_phase = vib_rng.uniform(0.0, 6.28318530718);
    vib.yaw_phase = vib_rng.uniform(0.0, 6.28318530718);
    trajectory.set_vibration(vib);
  }

  // Corridor length: from a little behind the start to past the farthest
  // point the ego reaches plus visibility range.
  double z_max = 0.0;
  double x_extent = 0.0;
  for (double t = 0.0; t <= duration; t += 0.25) {
    const auto st = trajectory.state_at(t);
    z_max = std::max(z_max, st.position.z);
    x_extent = std::max(x_extent, std::abs(st.position.x));
  }
  const double z_lo = -40.0 - x_extent;
  const double z_hi = z_max + 140.0 + x_extent;
  const double corridor_m = z_hi - z_lo;

  video::SceneParams scene_params;
  scene_params.conditions = spec.conditions;
  scene_params.luma_noise_amplitude = spec.luma_noise_amplitude;
  video::Scene scene(scene_params);
  util::Rng scene_rng = rng.fork(1);
  scene.add_buildings(z_lo, z_hi, scene_rng);
  scene.add_parked_cars(
      static_cast<int>(spec.parked_cars_per_100m * corridor_m / 100.0), z_lo,
      z_hi, scene_rng);
  scene.add_moving_cars(
      static_cast<int>(spec.moving_cars_per_100m * corridor_m / 100.0), z_lo,
      z_hi, scene_rng);
  scene.add_pedestrians(
      static_cast<int>(spec.pedestrians_per_100m * corridor_m / 100.0), z_lo,
      z_hi, scene_rng);

  Clip clip;
  clip.index = clip_index;
  clip.camera = geom::PinholeCamera(spec.focal_px, spec.width, spec.height);
  clip.fps = spec.fps;

  video::RenderOptions render_options;
  render_options.rain_streak_density = spec.rain_streak_density;
  const video::Renderer renderer(clip.camera, render_options);
  util::Rng noise_rng = rng.fork(2);
  clip.frames.reserve(static_cast<std::size_t>(spec.frames_per_clip));
  for (int i = 0; i < spec.frames_per_clip; ++i) {
    const double t = i / spec.fps;
    FrameRecord rec;
    rec.timestamp = t;
    rec.ego = trajectory.state_at(t);
    // Motion-state labels classify the drive, not the camera shake: the
    // vibration-free base state keeps Fig. 14 buckets stable under the
    // vibration condition.
    rec.motion_state = classify_motion(trajectory.base_state_at(t));
    auto rendered = renderer.render(
        scene, t, rec.ego.camera_pose(),
        static_cast<std::uint64_t>(noise_rng.uniform_int(0, 1 << 30)));
    rec.image = std::move(rendered.frame);
    rec.objects = std::move(rendered.objects);
    clip.frames.push_back(std::move(rec));
  }

  if (spec.kind == DatasetKind::kKittiLike) {
    util::Rng imu_rng = rng.fork(3);
    clip.imu = video::synthesize_imu(trajectory, {}, imu_rng);
  }
  return clip;
}

std::vector<Clip> generate_dataset(const DatasetSpec& spec) {
  std::vector<Clip> clips;
  clips.reserve(static_cast<std::size_t>(spec.clip_count));
  for (int i = 0; i < spec.clip_count; ++i)
    clips.push_back(generate_clip(spec, i));
  return clips;
}

DatasetStats accumulate_stats(const DatasetSpec&,
                              const std::vector<Clip>& clips) {
  DatasetStats stats;
  stats.clips = static_cast<int>(clips.size());
  for (const auto& clip : clips) {
    stats.frames += clip.frame_count();
    for (const auto& f : clip.frames) {
      for (const auto& obj : f.objects) {
        if (obj.cls == video::ObjectClass::kCar) ++stats.cars;
        else if (obj.cls == video::ObjectClass::kPedestrian) ++stats.pedestrians;
      }
    }
  }
  return stats;
}

}  // namespace dive::data
