// Synthetic dataset generators standing in for nuScenes, RobotCar, and
// KITTI (Sec. II-E / Table I). Each dataset keeps its real frame rate and
// aspect ratio (at reduced resolution with field-of-view-preserving focal
// scaling) and is calibrated to the paper's per-frame object densities:
//   nuScenes (Table I): 9605 frames, 45605 cars (~4.7/frame), 10221 peds (~1.1/frame)
//   RobotCar (Table I): 8150 frames, 19365 cars (~2.4/frame), 25423 peds (~3.1/frame)
// KITTI-like clips additionally carry 100 Hz IMU for rotation ground
// truth (Fig. 7 / Fig. 10 experiments).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/pinhole_camera.h"
#include "video/imu.h"
#include "video/renderer.h"
#include "video/scene.h"
#include "video/trajectory.h"

namespace dive::data {

enum class DatasetKind : std::uint8_t {
  kNuScenesLike = 0,
  kRobotCarLike = 1,
  kKittiLike = 2,
};

const char* to_string(DatasetKind kind);

/// Ego motion category used by the Fig. 14 breakdown.
enum class MotionState : std::uint8_t { kStatic = 0, kStraight = 1, kTurning = 2 };

const char* to_string(MotionState state);

struct DatasetSpec {
  DatasetKind kind = DatasetKind::kNuScenesLike;
  int width = 512;        ///< multiple of 16
  int height = 288;       ///< multiple of 16
  double focal_px = 403.0;
  double fps = 12.0;
  int clip_count = 6;
  int frames_per_clip = 96;
  std::uint64_t seed = 2025;

  // Scene densities, per 100 m of corridor.
  double parked_cars_per_100m = 5.0;
  double moving_cars_per_100m = 3.0;
  double pedestrians_per_100m = 2.0;

  // Trajectory profile mix.
  double stop_and_go_fraction = 0.25;
  double turning_fraction = 0.2;

  // ---- Hostile-conditions layer (DESIGN.md §16) ----
  // Defaults are a no-op: a default-conditions spec generates clips
  // bit-identical to a build without the layer.

  /// Scene/illumination conditions (night, fog haze, tunnel luma steps).
  video::SceneConditions conditions;
  /// Per-pixel sensor noise amplitude forwarded to SceneParams (night
  /// presets elevate it).
  double luma_noise_amplitude = 1.5;
  /// Rain droplet streaks (RenderOptions::rain_streak_density).
  double rain_streak_density = 0.0;
  /// Camera rotation jitter injected into every clip's trajectory.
  /// Phases are drawn per clip from the clip's forked RNG stream, so
  /// amplitudes/frequency here fully determine the ensemble.
  video::CameraVibration vibration;
};

/// Paper-matched presets (reduced resolution; see DESIGN.md).
DatasetSpec nuscenes_like(int clip_count = 6, int frames_per_clip = 96,
                          std::uint64_t seed = 2025);
DatasetSpec robotcar_like(int clip_count = 4, int frames_per_clip = 96,
                          std::uint64_t seed = 4051);
DatasetSpec kitti_like(int clip_count = 6, int frames_per_clip = 80,
                       std::uint64_t seed = 1207);

/// One rendered frame with full ground truth.
struct FrameRecord {
  video::Frame image;
  std::vector<video::RenderedObject> objects;
  video::EgoState ego;
  double timestamp = 0.0;
  MotionState motion_state = MotionState::kStraight;
};

struct Clip {
  int index = 0;
  geom::PinholeCamera camera{1.0, 16, 16};
  double fps = 12.0;
  std::vector<FrameRecord> frames;
  std::vector<video::ImuSample> imu;  ///< populated for KITTI-like clips

  [[nodiscard]] int frame_count() const {
    return static_cast<int>(frames.size());
  }
};

/// Classify an ego state into the paper's three motion states.
MotionState classify_motion(const video::EgoState& ego);

/// Deterministically generates clip `clip_index` of the dataset.
Clip generate_clip(const DatasetSpec& spec, int clip_index);

/// Aggregate annotation statistics (Table I).
struct DatasetStats {
  int clips = 0;
  long frames = 0;
  long cars = 0;
  long pedestrians = 0;
};

DatasetStats accumulate_stats(const DatasetSpec& spec,
                              const std::vector<Clip>& clips);

/// Generates all clips of a dataset (convenience for the harness).
std::vector<Clip> generate_dataset(const DatasetSpec& spec);

}  // namespace dive::data
