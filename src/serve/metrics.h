// Serving-layer observability: per-session and aggregate counters and
// distributions, exported through the existing util::stats / util::table
// facilities so bench output matches the rest of the repo.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/stats.h"
#include "util/table.h"

namespace dive::serve {

/// Counters and distributions for one session (also used as the
/// aggregate, where every session's samples are merged).
struct SessionCounters {
  long submitted = 0;         ///< frames that reached the edge
  long admitted = 0;
  long dropped_queue = 0;     ///< admission: per-session queue full
  long dropped_deadline = 0;  ///< admission: predicted to miss deadline
  long dropped_uplink = 0;    ///< agent side: head-of-line timeout
  long completed = 0;         ///< results delivered back to the agent

  // RoI gating (frames that carried sidecar metadata; zero when the RoI
  // lane is off, in which case none of these appear in published output).
  long gated = 0;             ///< frames inferred through tile gating
  long full_inference = 0;    ///< sidecar frames that still ran full-frame
  long fresh_boxes = 0;       ///< detector outputs on gated frames
  long propagated_boxes = 0;  ///< background boxes carried by MV shift

  util::RunningStats queue_depth;  ///< session queue depth at admission
  util::RunningStats batch_size;   ///< batch each frame was served in
  util::SampleSet wait_ms;         ///< edge arrival -> inference start
  util::SampleSet e2e_ms;          ///< capture -> result at the agent
  util::RunningStats gate_work;    ///< scheduler work fraction (RoI frames)
  util::RunningStats gate_pixel_fraction;  ///< gated frames only

  [[nodiscard]] long dropped() const {
    return dropped_queue + dropped_deadline;
  }
  void merge(const SessionCounters& other);
};

class ServeMetrics {
 public:
  /// Per-session counters, growing the table on first touch.
  SessionCounters& session(std::uint32_t id);
  [[nodiscard]] const SessionCounters& session(std::uint32_t id) const;
  [[nodiscard]] std::size_t sessions() const { return per_session_.size(); }

  /// Everything merged across sessions.
  [[nodiscard]] SessionCounters aggregate() const;

  /// One row per session: submitted/admitted/drops/completed, mean queue
  /// depth, mean wait, mean + p95 end-to-end latency.
  [[nodiscard]] util::TextTable session_table() const;

  /// Single-row node summary of the aggregate.
  [[nodiscard]] util::TextTable summary_table() const;

  /// Publishes everything into a unified metrics registry under
  /// "serve.*": aggregate counters (serve.submitted, serve.admitted,
  /// serve.dropped_*, serve.completed), latency/batch distributions
  /// (serve.wait_ms, serve.e2e_ms, serve.batch_size, serve.queue_depth),
  /// and cross-session spread distributions (serve.per_session.*, one
  /// sample per session). Publication is idempotent — counters are `set`
  /// and distributions `assign`ed — so calling it after every drain
  /// leaves the registry equal to the latest state, and the serving
  /// layer shares one export surface with the agent/codec/net metrics.
  void publish(obs::MetricsRegistry& registry) const;

 private:
  std::vector<SessionCounters> per_session_;  ///< indexed by session id
};

}  // namespace dive::serve
