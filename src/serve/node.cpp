#include "serve/node.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dive::serve {

ServeNode::ServeNode(ServeNodeConfig config)
    : config_(config),
      admission_(config.admission),
      scheduler_(config.scheduler, config.server.decode_latency,
                 config.server.inference_latency) {}

Session& ServeNode::open_session(std::shared_ptr<net::Uplink> uplink) {
  const auto id = static_cast<std::uint32_t>(sessions_.size());
  sessions_.push_back(std::make_unique<Session>(
      id, config_.session, std::move(uplink), config_.server, config_.seed));
  metrics_.session(id);  // materialize the row even if nothing arrives
  return *sessions_.back();
}

Session& ServeNode::session(std::uint32_t id) {
  if (id >= sessions_.size())
    throw std::out_of_range("ServeNode: unknown session");
  return *sessions_[id];
}

AdmissionVerdict ServeNode::submit(FrameJob job) {
  Session& s = session(job.session_id);
  SessionCounters& counters = metrics_.session(job.session_id);
  ++counters.submitted;

  const util::SimTime predicted_done =
      scheduler_.estimated_completion(job.arrival);
  const AdmissionVerdict verdict = admission_.decide(
      s, job.capture_time, predicted_done, config_.server.downlink_delay);
  const std::uint64_t flow = job.trace.flow_id();
  switch (verdict) {
    case AdmissionVerdict::kQueueFull:
      ++counters.dropped_queue;
      if (obs_ != nullptr) {
        obs_->tracer.instant("serve.drop_queue", obs::kTrackServe, job.arrival,
                             {{"session", job.session_id},
                              {"frame", static_cast<long long>(job.frame_index)}},
                             flow);
        obs_->ledger.outcome(job.trace, obs::FrameOutcome::kDroppedQueue,
                             job.arrival);
      }
      return verdict;
    case AdmissionVerdict::kDeadline:
      ++counters.dropped_deadline;
      if (obs_ != nullptr) {
        obs_->tracer.instant("serve.drop_deadline", obs::kTrackServe,
                             job.arrival,
                             {{"session", job.session_id},
                              {"frame", static_cast<long long>(job.frame_index)}},
                             flow);
        obs_->ledger.outcome(job.trace, obs::FrameOutcome::kDroppedDeadline,
                             job.arrival);
      }
      return verdict;
    case AdmissionVerdict::kAdmit: break;
  }

  ++counters.admitted;
  counters.queue_depth.add(static_cast<double>(s.queue_depth()));
  if (obs_ != nullptr) {
    obs_->tracer.instant("serve.queued",
                         obs::kTrackSessionBase + job.session_id, job.arrival,
                         {{"frame", static_cast<long long>(job.frame_index)},
                          {"depth", static_cast<long long>(s.queue_depth())}},
                         flow);
  }
  s.on_admitted();

  // RoI lane: parse the sidecar and plan the gate now, in admission order
  // (per-session frame order), so the scheduler can price the job and the
  // gate's refresh cadence never depends on dispatch interleaving. An
  // unparsable sidecar degrades to a full-frame plan.
  PendingPayload pending;
  pending.data = std::move(job.data);
  if (!job.roi_metadata.empty()) {
    pending.roi = true;
    pending.meta = roi::RoiMetadata::parse(job.roi_metadata);
    const roi::RoiMetadata* m = pending.meta ? &*pending.meta : nullptr;
    pending.plan = s.gate().plan(m, m != nullptr ? m->width() : 0,
                                 m != nullptr ? m->height() : 0);
  }
  const double work = pending.roi ? pending.plan.work : 1.0;
  payloads_.emplace(std::make_pair(job.session_id, job.frame_index),
                    std::move(pending));
  scheduler_.submit({job.session_id, job.frame_index, job.capture_time,
                     job.arrival, work, job.trace});
  return verdict;
}

std::vector<JobResult> ServeNode::realize(std::vector<Batch> batches) {
  std::vector<JobResult> results;
  for (const Batch& batch : batches) {
    for (const ScheduledJob& job : batch.jobs) {
      Session& s = session(job.session_id);
      s.on_dispatched();

      const auto key = std::make_pair(job.session_id, job.frame_index);
      const auto payload = payloads_.find(key);
      if (payload == payloads_.end())
        throw std::logic_error("ServeNode: dispatched job without payload");

      JobResult r;
      r.session_id = job.session_id;
      r.frame_index = job.frame_index;
      r.capture_time = job.capture_time;
      r.arrival = job.arrival;
      r.infer_start = batch.start;
      r.infer_done = batch.done;
      r.batch_size = batch.jobs.size();
      r.work = job.work;
      // Per-session jitter stream, indexed by the agent's frame number:
      // invariant under batching and other sessions' load.
      r.result_at_agent = batch.done +
                          s.server().inference_jitter(job.frame_index) +
                          config_.server.downlink_delay;
      SessionCounters& counters = metrics_.session(job.session_id);
      PendingPayload& pp = payload->second;
      if (pp.roi) {
        // Per-session dispatch order equals frame order (the scheduler
        // keeps arrivals sorted and per-session arrivals are monotonic),
        // so the gate's held-box state evolves identically for every
        // worker count and batch interleaving.
        const roi::RoiMetadata* m = pp.meta ? &*pp.meta : nullptr;
        roi::GatedDetections gated = s.gate().run(pp.data, m, pp.plan);
        r.gated = gated.gated;
        r.detections = std::move(gated.detections);
        if (gated.gated) {
          ++counters.gated;
          counters.fresh_boxes += gated.fresh;
          counters.propagated_boxes += gated.propagated;
          counters.gate_pixel_fraction.add(gated.pixel_fraction);
        } else {
          ++counters.full_inference;
        }
        counters.gate_work.add(pp.plan.work);
      } else {
        r.detections = s.server().decode_and_detect(pp.data);
      }
      payloads_.erase(payload);

      ++counters.completed;
      counters.batch_size.add(static_cast<double>(batch.jobs.size()));
      counters.wait_ms.add(util::to_millis(batch.start - job.arrival));
      counters.e2e_ms.add(
          util::to_millis(r.result_at_agent - job.capture_time));
      if (obs_ != nullptr) {
        // Wait decomposition on the session's own track, flow-linked to
        // the frame's encode/uplink spans: [arrival, open) waited for a
        // worker+window (admission wait), [open', start) for the batch
        // to form. open can precede this member's arrival (it joined an
        // already-open window), so the boundary clamps to arrival.
        const std::uint32_t track = obs::kTrackSessionBase + job.session_id;
        const util::SimTime open_at = std::max(job.arrival, batch.open);
        const std::uint64_t flow = job.trace.flow_id();
        obs_->tracer.span_at(
            "serve.admission_wait", track, job.arrival, open_at,
            {{"frame", static_cast<long long>(job.frame_index)}}, flow);
        obs_->tracer.span_at(
            "serve.batch_wait", track, open_at, batch.start,
            {{"frame", static_cast<long long>(job.frame_index)},
             {"batch", static_cast<long long>(batch.jobs.size())}},
            flow);
        // One span per completed inference on the session's own track:
        // queue wait is visible as the gap from the preceding
        // serve.queued instant to this span's start.
        obs_->tracer.span_at(
            "serve.infer", track, batch.start, batch.done,
            {{"frame", static_cast<long long>(job.frame_index)},
             {"batch", static_cast<long long>(batch.jobs.size())},
             {"detections", static_cast<long long>(r.detections.size())}},
            flow);
        obs_->tracer.span_at(
            "serve.result", track, batch.done, r.result_at_agent,
            {{"frame", static_cast<long long>(job.frame_index)}}, flow);
        auto& ledger = obs_->ledger;
        ledger.stage(job.trace, obs::FrameStage::kAdmissionWait, job.arrival,
                     open_at);
        ledger.stage(job.trace, obs::FrameStage::kBatchWait, open_at,
                     batch.start);
        ledger.stage(job.trace, obs::FrameStage::kInference, batch.start,
                     batch.done);
        ledger.stage(job.trace, obs::FrameStage::kResult, batch.done,
                     r.result_at_agent);
        ledger.outcome(job.trace, obs::FrameOutcome::kCompleted,
                       r.result_at_agent);
      }
      results.push_back(std::move(r));
    }
  }
  std::sort(results.begin(), results.end(),
            [](const JobResult& a, const JobResult& b) {
              if (a.result_at_agent != b.result_at_agent)
                return a.result_at_agent < b.result_at_agent;
              if (a.session_id != b.session_id)
                return a.session_id < b.session_id;
              return a.frame_index < b.frame_index;
            });
  return results;
}

std::vector<JobResult> ServeNode::run_until(util::SimTime now) {
  return realize(scheduler_.run_until(now));
}

std::vector<JobResult> ServeNode::drain() {
  std::vector<JobResult> results = realize(scheduler_.drain());
  if (obs_ != nullptr) metrics_.publish(obs_->metrics);
  return results;
}

}  // namespace dive::serve
