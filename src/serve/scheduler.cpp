#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dive::serve {

namespace {

/// Queue order: earliest arrival first, ties broken by session then frame
/// so the schedule never depends on submission interleaving.
bool before(const ScheduledJob& a, const ScheduledJob& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  if (a.session_id != b.session_id) return a.session_id < b.session_id;
  return a.frame_index < b.frame_index;
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig config, util::SimTime decode_latency,
                     util::SimTime inference_latency)
    : config_(config),
      decode_latency_(decode_latency),
      inference_latency_(inference_latency) {
  if (config_.workers < 1)
    throw std::invalid_argument("Scheduler: workers must be >= 1");
  if (config_.max_batch < 1)
    throw std::invalid_argument("Scheduler: max_batch must be >= 1");
  free_at_.assign(static_cast<std::size_t>(config_.workers), 0);
}

void Scheduler::submit(ScheduledJob job) {
  const auto pos =
      std::lower_bound(pending_.begin(), pending_.end(), job, before);
  pending_.insert(pos, std::move(job));
}

int Scheduler::earliest_worker() const {
  int best = 0;
  for (int w = 1; w < config_.workers; ++w) {
    if (free_at_[static_cast<std::size_t>(w)] <
        free_at_[static_cast<std::size_t>(best)]) {
      best = w;
    }
  }
  return best;
}

util::SimTime Scheduler::batch_service_time(std::size_t n) const {
  if (n == 0) return 0;
  const auto amortized = static_cast<util::SimTime>(std::llround(
      static_cast<double>(n - 1) * config_.batch_marginal *
      static_cast<double>(inference_latency_)));
  return static_cast<util::SimTime>(n) * decode_latency_ +
         inference_latency_ + amortized;
}

util::SimTime Scheduler::batch_service_time_for(
    const std::vector<ScheduledJob>& jobs) const {
  if (jobs.empty()) return 0;
  double max_work = 0.0;
  double total_work = 0.0;
  for (const ScheduledJob& job : jobs) {
    max_work = std::max(max_work, job.work);
    total_work += job.work;
  }
  // max_work leads a full (scaled) pass; the rest amortizes at its own
  // fraction. All-1 work reduces integer-exactly to batch_service_time(n):
  // llround(1.0 * L) == L and total - max == n - 1 exactly.
  const auto lead = static_cast<util::SimTime>(
      std::llround(max_work * static_cast<double>(inference_latency_)));
  const auto amortized = static_cast<util::SimTime>(std::llround(
      (total_work - max_work) * config_.batch_marginal *
      static_cast<double>(inference_latency_)));
  return static_cast<util::SimTime>(jobs.size()) * decode_latency_ + lead +
         amortized;
}

std::vector<Batch> Scheduler::run_until(util::SimTime now) {
  std::vector<Batch> out;
  while (!pending_.empty()) {
    const int w = earliest_worker();
    const ScheduledJob& head = pending_.front();
    const util::SimTime open =
        std::max(free_at_[static_cast<std::size_t>(w)], head.arrival);
    const util::SimTime close =
        config_.max_batch > 1 ? open + config_.batch_window : open;

    // Jobs already known to fall inside the window, in queue order.
    std::size_t take = 0;
    while (take < pending_.size() && take < config_.max_batch &&
           pending_[take].arrival <= close) {
      ++take;
    }
    const bool full = take == config_.max_batch;
    const util::SimTime last_arrival = pending_[take - 1].arrival;

    util::SimTime start = 0;
    if (full) {
      // The batch filled; it can only be finalized once no future
      // submission (strictly after `now`) could displace a member.
      if (last_arrival > now) break;
      start = std::max(open, last_arrival);
    } else {
      // The window must have verifiably expired before dispatching a
      // partial batch: stragglers arriving <= close could still join.
      if (close > now) break;
      start = close;
    }

    Batch batch;
    batch.worker = w;
    batch.open = open;
    batch.start = start;
    batch.jobs.assign(pending_.begin(),
                      pending_.begin() + static_cast<std::ptrdiff_t>(take));
    batch.done = start + batch_service_time_for(batch.jobs);
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    free_at_[static_cast<std::size_t>(w)] = batch.done;
    out.push_back(std::move(batch));
  }
  return out;
}

std::vector<Batch> Scheduler::drain() {
  return run_until(std::numeric_limits<util::SimTime>::max());
}

util::SimTime Scheduler::estimated_completion(util::SimTime arrival) const {
  // Backlog ahead of the job, serviced at the amortized per-frame rate
  // spread across the pool, plus the batch window a light-load partial
  // batch waits out. A deterministic heuristic, not an exact simulation:
  // admission only needs to know roughly when the frame would finish.
  const util::SimTime base =
      *std::min_element(free_at_.begin(), free_at_.end());
  const double n = static_cast<double>(config_.max_batch);
  const double amortized_infer =
      static_cast<double>(inference_latency_) *
      (1.0 + (n - 1.0) * config_.batch_marginal) / n;
  const double per_frame =
      static_cast<double>(decode_latency_) + amortized_infer;
  const auto backlog = static_cast<util::SimTime>(std::llround(
      static_cast<double>(pending_.size()) * per_frame /
      static_cast<double>(config_.workers)));
  const util::SimTime window =
      config_.max_batch > 1 ? config_.batch_window : 0;
  const util::SimTime start = std::max(arrival, base + backlog) + window;
  return start + decode_latency_ + inference_latency_;
}

}  // namespace dive::serve
