#include "serve/admission.h"

namespace dive::serve {

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmit: return "admit";
    case AdmissionVerdict::kQueueFull: return "queue-full";
    case AdmissionVerdict::kDeadline: return "deadline";
  }
  return "?";
}

AdmissionVerdict AdmissionController::decide(
    const Session& session, util::SimTime capture_time,
    util::SimTime predicted_done, util::SimTime downlink_delay) const {
  if (session.queue_depth() >= config_.max_queue)
    return AdmissionVerdict::kQueueFull;
  if (config_.deadline_aware &&
      predicted_done + downlink_delay >
          capture_time + session.config().deadline) {
    return AdmissionVerdict::kDeadline;
  }
  return AdmissionVerdict::kAdmit;
}

}  // namespace dive::serve
