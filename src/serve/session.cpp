#include "serve/session.h"

#include <stdexcept>

#include "util/rng.h"

namespace dive::serve {

Session::Session(std::uint32_t id, SessionConfig config,
                 std::shared_ptr<net::Uplink> uplink,
                 const edge::ServerConfig& server_config,
                 std::uint64_t node_seed)
    : id_(id),
      config_(config),
      uplink_(std::move(uplink)),
      server_(server_config, util::Rng(node_seed).fork(id).seed()),
      gate_(config.roi_gate, &server_) {
  if (uplink_ == nullptr) throw std::invalid_argument("Session: null uplink");
}

void Session::on_dispatched() {
  if (queued_ == 0) throw std::logic_error("Session: dispatch without admit");
  --queued_;
}

}  // namespace dive::serve
