// Deterministic multi-session inference scheduler: multiplexes admitted
// frames onto a fixed pool of inference workers, optionally forming
// batches to amortize the per-pass cost of the detector DNN.
//
// Timing model. A batch of n frames occupies one worker for
//     n * decode_latency + inference_latency * (1 + (n - 1) * batch_marginal)
// i.e. decode stays per-frame while inference amortizes: batch_marginal
// is the incremental cost of each extra frame relative to a full pass
// (1.0 = no amortization, GPU-style batching sits well below 1).
//
// RoI-gated work. A job may carry a `work` fraction < 1 (the gated pixel
// fraction from roi::RoiGate): the batch then costs
//     n * decode_latency + inference_latency * (max_work
//                          + batch_marginal * (total_work - max_work))
// — the heaviest member leads the pass and every other member amortizes
// at its own fraction. With all work == 1 this reduces, integer-exactly,
// to the formula above, so schedules without gating are byte-identical
// to the pre-RoI scheduler. The cost depends only on the work multiset,
// never on member order, preserving determinism.
//
// Batch formation. Pending jobs are kept in (arrival, session, frame)
// order. The batch window opens when the earliest pending job meets the
// earliest free worker; it closes `batch_window` later or as soon as
// `max_batch` jobs have arrived, whichever is first. The scheduler is
// event-driven over simulated time and only finalizes a batch once no
// future submission could still join or reorder it, which makes the
// schedule a pure function of the submitted jobs — independent of how the
// driving loop slices run_until() calls.
//
// Callers must submit every job with arrival <= t before calling
// run_until(t), and future submissions must arrive strictly after t (the
// harness guarantees both: frames are processed in capture order and
// arrival >= capture + encode latency > capture).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/frame_context.h"
#include "util/sim_clock.h"

namespace dive::serve {

struct SchedulerConfig {
  int workers = 2;  ///< parallel inference lanes on the edge node
  /// Batching: largest batch one worker accepts (1 disables batching).
  std::size_t max_batch = 1;
  /// How long a worker may hold an open batch waiting for it to fill.
  util::SimTime batch_window = util::from_millis(4.0);
  /// Incremental inference cost of each extra frame in a batch, as a
  /// fraction of a single-frame pass.
  double batch_marginal = 0.35;
};

/// A frame admitted for inference (timing view — the payload stays with
/// the node, keeping the scheduler free of codec dependencies).
struct ScheduledJob {
  std::uint32_t session_id = 0;
  std::uint64_t frame_index = 0;  ///< per-session, assigned by the agent
  util::SimTime capture_time = 0;
  util::SimTime arrival = 0;  ///< last byte reached the edge
  /// Inference cost scale in (0, 1]: 1 = full-frame, < 1 = RoI-gated
  /// (roi::GatePlan::work, the floored gated pixel fraction).
  double work = 1.0;
  /// Causal identity minted at encode time; carried by value so wait/
  /// inference spans and the FrameLedger can attribute this job's
  /// latency. Plain data, never read by scheduling decisions.
  obs::FrameTraceContext trace;
};

/// One dispatched batch: `jobs` in queue order, serviced on `worker`
/// during [start, done). `open` is when the batch window opened (the
/// earliest pending job met the earliest free worker): [arrival, open)
/// is a member's admission wait, [max(arrival, open), start) its batch
/// wait — the split the per-frame ledger reports.
struct Batch {
  std::vector<ScheduledJob> jobs;
  int worker = 0;
  util::SimTime open = 0;
  util::SimTime start = 0;
  util::SimTime done = 0;
};

class Scheduler {
 public:
  Scheduler(SchedulerConfig config, util::SimTime decode_latency,
            util::SimTime inference_latency);

  void submit(ScheduledJob job);

  /// Forms and dispatches every batch finalizable given that all arrivals
  /// <= now are known; returns them in dispatch order.
  std::vector<Batch> run_until(util::SimTime now);

  /// Flushes everything pending (end of the experiment).
  std::vector<Batch> drain();

  /// Admission hint: estimated completion (last byte of inference) for a
  /// job arriving at `arrival`, accounting for the current backlog spread
  /// across the pool at the amortized batch rate.
  [[nodiscard]] util::SimTime estimated_completion(util::SimTime arrival) const;

  /// Worker time a batch of n full-frame (work == 1) jobs consumes.
  [[nodiscard]] util::SimTime batch_service_time(std::size_t n) const;

  /// Worker time for a concrete job set, honoring per-job work
  /// fractions. Equals batch_service_time(jobs.size()) when every job
  /// has work == 1.
  [[nodiscard]] util::SimTime batch_service_time_for(
      const std::vector<ScheduledJob>& jobs) const;

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  [[nodiscard]] int earliest_worker() const;

  SchedulerConfig config_;
  util::SimTime decode_latency_;
  util::SimTime inference_latency_;
  std::deque<ScheduledJob> pending_;  ///< sorted by (arrival, session, frame)
  std::vector<util::SimTime> free_at_;
};

}  // namespace dive::serve
