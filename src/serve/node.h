// The multi-agent edge node: a facade composing Session (per-agent
// decoder + uplink), AdmissionController (bounded queues + deadline
// policy), Scheduler (batched inference worker pool), and ServeMetrics.
//
// Driving loop (one simulated node, N agents):
//   Session& s = node.open_session(uplink);       // once per agent
//   ... agent encodes a frame and transmits on s.uplink() ...
//   verdict = node.submit({s.id(), frame, capture, tx.arrival, bytes});
//   if (verdict != kAdmit) -> agent falls back to MOT, next frame intra
//   results = node.run_until(next_capture);       // completed inferences
//   ... finally: node.drain();
//
// Determinism: with a fixed node seed the full schedule, every jitter
// draw, and every metric are pure functions of the submitted frames;
// per-session results additionally do not depend on what other sessions
// do (see edge/server.h). run_until() requires frames be submitted in
// capture order — the same contract as Scheduler::run_until.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "edge/server.h"
#include "obs/obs.h"
#include "roi/gate.h"
#include "roi/metadata.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/scheduler.h"
#include "serve/session.h"

namespace dive::serve {

struct ServeNodeConfig {
  SessionConfig session;
  AdmissionConfig admission;
  SchedulerConfig scheduler;
  edge::ServerConfig server;  ///< shared latency constants; decoders are per-session
  std::uint64_t seed = 1;
};

/// One frame handed to the node, payload included.
struct FrameJob {
  std::uint32_t session_id = 0;
  std::uint64_t frame_index = 0;
  util::SimTime capture_time = 0;
  util::SimTime arrival = 0;
  std::vector<std::uint8_t> data;
  /// Serialized roi::RoiMetadata sidecar (empty = no RoI lane: the frame
  /// is inferred full-frame exactly as before the RoI subsystem). Its
  /// bytes already rode the uplink with the frame.
  std::vector<std::uint8_t> roi_metadata;
  /// Causal identity minted at encode time (harness). Unminted = frame
  /// not traced: spans fall back to untagged, the ledger skips it.
  obs::FrameTraceContext trace;
};

/// A completed inference on its way back to the agent.
struct JobResult {
  std::uint32_t session_id = 0;
  std::uint64_t frame_index = 0;
  edge::DetectionList detections;
  util::SimTime capture_time = 0;
  util::SimTime arrival = 0;
  util::SimTime infer_start = 0;      ///< batch service start
  util::SimTime infer_done = 0;       ///< batch service end
  util::SimTime result_at_agent = 0;  ///< after jitter + downlink
  std::size_t batch_size = 1;
  bool gated = false;  ///< inferred through the session's RoI gate
  double work = 1.0;   ///< inference cost fraction the scheduler charged
};

class ServeNode {
 public:
  explicit ServeNode(ServeNodeConfig config);

  /// Registers a new agent; ids are dense and assigned in call order.
  Session& open_session(std::shared_ptr<net::Uplink> uplink);
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] Session& session(std::uint32_t id);

  /// Admission decision for a frame that reached the edge. Admitted
  /// frames complete during a later run_until()/drain(); rejected frames
  /// are accounted and discarded (the agent treats the rejection like a
  /// link outage).
  AdmissionVerdict submit(FrameJob job);

  /// Dispatches every batch decidable by `now` and returns the finished
  /// results ordered by (result_at_agent, session, frame).
  std::vector<JobResult> run_until(util::SimTime now);
  std::vector<JobResult> drain();

  [[nodiscard]] ServeMetrics& metrics() { return metrics_; }
  [[nodiscard]] const ServeMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const ServeNodeConfig& config() const { return config_; }

  /// Attaches an observability context (non-owning, null detaches).
  /// Every realized inference emits a span on its session's track
  /// (obs::kTrackSessionBase + id) over [infer_start, infer_done] in
  /// simulated time; admission rejections emit instants on
  /// obs::kTrackServe; drain() republishes ServeMetrics into the
  /// registry so all layers share one export surface.
  void set_obs(obs::ObsContext* obs) { obs_ = obs; }

 private:
  /// An admitted job awaiting dispatch: bitstream plus (when the frame
  /// carried a sidecar) the parsed metadata and the gate plan computed
  /// at submission, which priced the scheduler job.
  struct PendingPayload {
    std::vector<std::uint8_t> data;
    bool roi = false;  ///< frame arrived with a sidecar lane
    std::optional<roi::RoiMetadata> meta;  ///< nullopt: sidecar unparsable
    roi::GatePlan plan;
  };

  std::vector<JobResult> realize(std::vector<Batch> batches);

  ServeNodeConfig config_;
  AdmissionController admission_;
  Scheduler scheduler_;
  ServeMetrics metrics_;
  obs::ObsContext* obs_ = nullptr;
  std::vector<std::unique_ptr<Session>> sessions_;
  /// Payloads of admitted jobs awaiting dispatch.
  std::map<std::pair<std::uint32_t, std::uint64_t>, PendingPayload> payloads_;
};

}  // namespace dive::serve
