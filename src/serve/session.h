// One mobile agent's state on the edge node. A session owns the per-agent
// decoder (wrapped in an EdgeServer so the serving layer shares the
// latency constants and jitter contract with the single-agent model) and
// the agent's uplink; the admission controller charges queued frames
// against it.
//
// Lifecycle: ServeNode::open_session() creates the session and seeds its
// server with util::Rng(node_seed).fork(id), so every session draws
// inference jitter from an independent stream and its results do not
// depend on how the scheduler interleaves it with other sessions (see the
// determinism contract in edge/server.h). Sessions live for the duration
// of the node; an agent that stops submitting simply leaves an idle
// session behind.
#pragma once

#include <cstdint>
#include <memory>

#include "edge/server.h"
#include "net/uplink.h"
#include "roi/gate.h"
#include "util/sim_clock.h"

namespace dive::serve {

struct SessionConfig {
  /// End-to-end deadline (capture -> result at the agent) the admission
  /// controller enforces; a frame predicted to miss it is not admitted.
  util::SimTime deadline = util::from_millis(400.0);
  /// Gating policy of the per-session roi::RoiGate (active only for
  /// frames submitted with sidecar metadata).
  roi::RoiGateConfig roi_gate;
};

class Session {
 public:
  Session(std::uint32_t id, SessionConfig config,
          std::shared_ptr<net::Uplink> uplink,
          const edge::ServerConfig& server_config, std::uint64_t node_seed);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }
  [[nodiscard]] net::Uplink& uplink() { return *uplink_; }
  [[nodiscard]] const std::shared_ptr<net::Uplink>& uplink_ptr() const {
    return uplink_;
  }
  [[nodiscard]] edge::EdgeServer& server() { return server_; }
  [[nodiscard]] const edge::EdgeServer& server() const { return server_; }
  /// Per-session RoI gate wrapping this session's server. The node plans
  /// through it at submission and runs it at dispatch, both in
  /// per-session frame order, so gated results are schedule-independent.
  [[nodiscard]] roi::RoiGate& gate() { return gate_; }
  [[nodiscard]] const roi::RoiGate& gate() const { return gate_; }

  /// Frames currently admitted but not yet dispatched to a worker — the
  /// quantity the admission controller bounds.
  [[nodiscard]] std::size_t queue_depth() const { return queued_; }
  void on_admitted() { ++queued_; }
  void on_dispatched();

 private:
  std::uint32_t id_;
  SessionConfig config_;
  std::shared_ptr<net::Uplink> uplink_;
  edge::EdgeServer server_;
  roi::RoiGate gate_;  ///< wraps server_ (declared after it)
  std::size_t queued_ = 0;
};

}  // namespace dive::serve
