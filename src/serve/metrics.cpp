#include "serve/metrics.h"

#include <stdexcept>
#include <string>

namespace dive::serve {

void SessionCounters::merge(const SessionCounters& other) {
  submitted += other.submitted;
  admitted += other.admitted;
  dropped_queue += other.dropped_queue;
  dropped_deadline += other.dropped_deadline;
  dropped_uplink += other.dropped_uplink;
  completed += other.completed;
  gated += other.gated;
  full_inference += other.full_inference;
  fresh_boxes += other.fresh_boxes;
  propagated_boxes += other.propagated_boxes;
  queue_depth.merge(other.queue_depth);
  batch_size.merge(other.batch_size);
  wait_ms.merge(other.wait_ms);
  e2e_ms.merge(other.e2e_ms);
  gate_work.merge(other.gate_work);
  gate_pixel_fraction.merge(other.gate_pixel_fraction);
}

SessionCounters& ServeMetrics::session(std::uint32_t id) {
  if (id >= per_session_.size()) per_session_.resize(id + 1);
  return per_session_[id];
}

const SessionCounters& ServeMetrics::session(std::uint32_t id) const {
  if (id >= per_session_.size())
    throw std::out_of_range("ServeMetrics: unknown session");
  return per_session_[id];
}

SessionCounters ServeMetrics::aggregate() const {
  SessionCounters total;
  for (const auto& s : per_session_) total.merge(s);
  return total;
}

namespace {

std::vector<std::string> counters_row(const std::string& label,
                                      const SessionCounters& c) {
  return {label,
          std::to_string(c.submitted),
          std::to_string(c.admitted),
          std::to_string(c.dropped_queue),
          std::to_string(c.dropped_deadline),
          std::to_string(c.dropped_uplink),
          std::to_string(c.completed),
          util::TextTable::fmt(c.queue_depth.mean(), 2),
          util::TextTable::fmt(c.batch_size.mean(), 2),
          util::TextTable::fmt(c.wait_ms.mean(), 1),
          util::TextTable::fmt(c.e2e_ms.mean(), 1),
          util::TextTable::fmt(
              c.e2e_ms.empty() ? 0.0 : c.e2e_ms.quantile(0.95), 1)};
}

std::vector<std::string> counters_header() {
  return {"session", "submit", "admit", "drop_q", "drop_dl", "drop_up",
          "done",    "depth",  "batch", "wait_ms", "e2e_ms", "e2e_p95"};
}

}  // namespace

util::TextTable ServeMetrics::session_table() const {
  util::TextTable table("per-session serving metrics");
  table.set_header(counters_header());
  for (std::size_t id = 0; id < per_session_.size(); ++id) {
    table.add_row(counters_row(std::to_string(id), per_session_[id]));
  }
  return table;
}

util::TextTable ServeMetrics::summary_table() const {
  util::TextTable table("edge-node serving summary");
  table.set_header(counters_header());
  table.add_row(counters_row("all", aggregate()));
  return table;
}

void ServeMetrics::publish(obs::MetricsRegistry& registry) const {
  const SessionCounters total = aggregate();
  registry.counter("serve.sessions").set(
      static_cast<std::int64_t>(per_session_.size()));
  registry.counter("serve.submitted").set(total.submitted);
  registry.counter("serve.admitted").set(total.admitted);
  registry.counter("serve.dropped_queue").set(total.dropped_queue);
  registry.counter("serve.dropped_deadline").set(total.dropped_deadline);
  registry.counter("serve.dropped_uplink").set(total.dropped_uplink);
  registry.counter("serve.completed").set(total.completed);
  registry.gauge("serve.queue_depth_mean").set(total.queue_depth.mean());
  registry.gauge("serve.batch_size_mean").set(total.batch_size.mean());
  registry.distribution("serve.wait_ms", "ms").assign(total.wait_ms);
  registry.distribution("serve.e2e_ms", "ms").assign(total.e2e_ms);

  // RoI gating. Published only when at least one sidecar frame completed,
  // so roi-off runs export a registry identical to the pre-RoI layer.
  if (total.gated + total.full_inference > 0) {
    registry.counter("roi.gated_frames").set(total.gated);
    registry.counter("roi.full_frames").set(total.full_inference);
    registry.counter("roi.fresh_boxes").set(total.fresh_boxes);
    registry.counter("roi.propagated_boxes").set(total.propagated_boxes);
    registry.gauge("roi.work_mean").set(total.gate_work.mean());
    registry.gauge("roi.gated_pixel_fraction_mean")
        .set(total.gate_pixel_fraction.mean());
  }

  // Cross-session spread: one sample per session, so p99 answers "how
  // unfair is the node under load" without exploding the name space.
  util::SampleSet completed, dropped, e2e_mean;
  for (const auto& s : per_session_) {
    completed.add(static_cast<double>(s.completed));
    dropped.add(static_cast<double>(s.dropped() + s.dropped_uplink));
    if (!s.e2e_ms.empty()) e2e_mean.add(s.e2e_ms.mean());
  }
  registry.distribution("serve.per_session.completed", "count")
      .assign(completed);
  registry.distribution("serve.per_session.dropped", "count").assign(dropped);
  registry.distribution("serve.per_session.e2e_mean_ms", "ms")
      .assign(e2e_mean);
}

}  // namespace dive::serve
