// Admission control for the multi-agent serving layer: bounded
// per-session queues plus a deadline-aware overload policy.
//
// A frame rejected here behaves, from the agent's point of view, exactly
// like a head-of-line link outage (Sec. III-E): the agent falls back to
// motion-vector offline tracking and marks its next upload intra, since
// the session's decoder at the edge never saw the rejected frame. That
// keeps overload degradation graceful — accuracy decays through MOT
// instead of queues growing without bound.
//
// Policies, applied in order:
//   1. Queue bound: a session may hold at most `max_queue` admitted
//      frames awaiting a worker (kQueueFull otherwise). This caps node
//      memory and bounds any one session's claim on the pool.
//   2. Deadline: using the scheduler's completion estimate, a frame whose
//      result would reach the agent after capture + deadline is dropped
//      up front (kDeadline) — serving it would waste worker time on an
//      answer the agent supersedes anyway.
#pragma once

#include <cstdint>

#include "serve/session.h"
#include "util/sim_clock.h"

namespace dive::serve {

enum class AdmissionVerdict : std::uint8_t {
  kAdmit = 0,
  kQueueFull = 1,
  kDeadline = 2,
};

const char* to_string(AdmissionVerdict verdict);

struct AdmissionConfig {
  /// Bounded per-session queue of admitted-but-undispatched frames.
  std::size_t max_queue = 4;
  /// Disable to admit regardless of predicted lateness (queue bound still
  /// applies) — the ablation arm of the overload experiments.
  bool deadline_aware = true;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Decides for a frame of `session` captured at `capture_time`;
  /// `predicted_done` is the scheduler's service-completion estimate and
  /// `downlink_delay` the return-path cost to the agent.
  [[nodiscard]] AdmissionVerdict decide(const Session& session,
                                        util::SimTime capture_time,
                                        util::SimTime predicted_done,
                                        util::SimTime downlink_delay) const;

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
};

}  // namespace dive::serve
