#include "baselines/keyframe_scheme.h"

#include <algorithm>

#include "video/image_ops.h"

namespace dive::baselines {

KeyframeScheme::KeyframeScheme(KeyframeSchemeConfig config,
                               codec::EncoderConfig encoder_config,
                               std::shared_ptr<net::Uplink> uplink,
                               std::shared_ptr<edge::EdgeServer> server)
    : config_(config),
      encoder_(encoder_config),
      tracker_searcher_(encoder_config.search),
      uplink_(std::move(uplink)),
      server_(std::move(server)),
      bandwidth_(config.bandwidth),
      tracker_(config.tracker) {}

bool KeyframeScheme::is_keyframe(const video::Frame& frame) const {
  if (!has_keyframe_) return true;
  if (frame_index_ - last_keyframe_index_ >= config_.keyframe_interval)
    return true;
  // Scene-change trigger on the consecutive-frame difference.
  return has_previous_ && video::mean_abs_diff_y(frame, previous_raw_) >
                              config_.diff_trigger;
}

void KeyframeScheme::adopt_ready_results(util::SimTime now) {
  while (!pending_.empty() && pending_.front().available_at <= now) {
    PendingResult ready = std::move(pending_.front());
    pending_.pop_front();
    // Fast-forward the key frame's detections through the motion of the
    // frames captured while the result was in flight.
    edge::DetectionList dets = std::move(ready.detections);
    for (const auto& [idx, field] : field_history_) {
      if (idx <= ready.keyframe_index) continue;
      dets = tracker_.track(dets, field, field.mb_cols * codec::kMacroblockSize,
                            field.mb_rows * codec::kMacroblockSize);
    }
    current_ = std::move(dets);
    // History up to this key frame is no longer needed.
    while (!field_history_.empty() &&
           field_history_.front().first <= ready.keyframe_index)
      field_history_.pop_front();
  }
}

core::FrameOutcome KeyframeScheme::process_frame(const video::Frame& frame,
                                                 util::SimTime capture_time) {
  core::FrameOutcome outcome;

  // Per-frame motion field on raw frames (for local tracking).
  codec::MotionField field;
  if (has_previous_) {
    field = tracker_searcher_.search_frame(frame.y, previous_raw_.y);
    field_history_.emplace_back(frame_index_, field);
    if (field_history_.size() > 64) field_history_.pop_front();
    // Advance the live result to this frame...
    if (!current_.empty())
      current_ = tracker_.track(current_, field, frame.width(), frame.height());
  }
  // ...then replace it if a fresher edge result has landed (it is
  // fast-forwarded through the same history, ending at this frame too).
  adopt_ready_results(capture_time + config_.latencies.local_track);

  const bool keyframe = is_keyframe(frame);
  util::SimTime keyframe_result_at = 0;
  if (keyframe) {
    // Budget: the bandwidth accumulated since the previous key frame,
    // capped at what the head-of-line timeout can actually deliver (a
    // bigger key frame would be dropped mid-flight).
    const double budget_rate = bandwidth_.target_bytes_per_sec(capture_time);
    const long spacing =
        has_keyframe_
            ? std::clamp(frame_index_ - last_keyframe_index_, 1L,
                         static_cast<long>(config_.keyframe_interval))
            : config_.keyframe_interval;
    const double spacing_budget =
        budget_rate * static_cast<double>(spacing) / config_.fps;
    const double deliverable =
        budget_rate * util::to_seconds(uplink_->config().head_timeout) * 0.7;
    const auto budget = static_cast<std::size_t>(
        std::max(1.0, std::min(spacing_budget, deliverable)));
    codec::EncodedFrame encoded = encode_keyframe(frame, budget);
    outcome.base_qp = encoded.base_qp;

    const util::SimTime ready = capture_time + config_.latencies.encode;
    const net::TransmitResult tx = uplink_->transmit_with_timeout(
        static_cast<double>(encoded.bytes()), ready);
    if (tx.delivered) {
      outcome.bytes_sent = encoded.bytes();
      bandwidth_.add_transmission(static_cast<double>(encoded.bytes()),
                                  tx.started, tx.sent_complete);
      edge::InferenceResult inference =
          server_->process(encoded.data, tx.arrival);
      PendingResult pr;
      pr.detections = std::move(inference.detections);
      pr.available_at =
          adjust_result_time(inference.result_at_agent, tx.arrival);
      pr.keyframe_index = frame_index_;
      keyframe_result_at = pr.available_at;
      pending_.push_back(std::move(pr));
    } else {
      // Keyframe lost to an outage; the decoder never saw it, so force
      // the next upload to stand alone.
      encoder_.request_intra();
    }
    last_keyframe_index_ = frame_index_;
    has_keyframe_ = true;
  }

  outcome.detections = current_;
  // Response time: a delivered key frame's own inference result defines
  // its response (the paper's metric); tracked frames answer locally.
  if (keyframe_result_at > 0) {
    outcome.offloaded = true;
    outcome.response_time = keyframe_result_at - capture_time;
  } else {
    outcome.offloaded = false;
    outcome.response_time = config_.latencies.local_track +
                            (keyframe ? config_.latencies.encode : 0);
  }

  previous_raw_ = frame;
  has_previous_ = true;
  ++frame_index_;
  return outcome;
}

}  // namespace dive::baselines
