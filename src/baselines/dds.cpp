#include "baselines/dds.h"

#include <algorithm>

namespace dive::baselines {

DdsScheme::DdsScheme(DdsConfig config, codec::EncoderConfig encoder_config,
                     std::shared_ptr<net::Uplink> uplink,
                     const edge::ServerConfig& server_config,
                     std::uint64_t seed)
    : config_(config),
      encoder_low_(encoder_config),
      encoder_high_(encoder_config),
      uplink_(std::move(uplink)),
      server_low_(server_config, seed),
      server_high_(server_config, seed + 1),
      bandwidth_(config.bandwidth) {}

core::FrameOutcome DdsScheme::process_frame(const video::Frame& frame,
                                            util::SimTime capture_time) {
  core::FrameOutcome outcome;

  // Behind the camera: skip this frame and keep the stale result. The
  // encoders do not advance, so encoder and decoder references stay in
  // sync without an intra resync.
  if (uplink_->busy_until() - capture_time > config_.skip_backlog) {
    outcome.detections = last_detections_;
    outcome.response_time = config_.latencies.local_track;
    return outcome;
  }

  const double budget_rate = bandwidth_.target_bytes_per_sec(capture_time);
  const double frame_budget = std::max(1.0, budget_rate / config_.fps);

  // ---- Pass 1: whole frame, low quality ----
  const auto budget1 = static_cast<std::size_t>(
      frame_budget * config_.pass1_budget_share);
  const codec::EncodedFrame pass1 =
      encoder_low_.encode_to_target(frame, budget1);
  const util::SimTime ready1 = capture_time + config_.latencies.encode;
  const net::TransmitResult tx1 = uplink_->transmit_with_timeout(
      static_cast<double>(pass1.bytes()), ready1);
  if (!tx1.delivered) {
    // Outage: DDS has no local fallback; it reuses the stale result.
    encoder_low_.request_intra();
    encoder_high_.request_intra();
    outcome.detections = last_detections_;
    outcome.response_time =
        (tx1.gave_up_at - capture_time) + config_.latencies.local_track;
    return outcome;
  }
  bandwidth_.add_transmission(static_cast<double>(pass1.bytes()), tx1.started,
                              tx1.sent_complete);
  const edge::InferenceResult feedback =
      server_low_.process(pass1.data, tx1.arrival);
  outcome.bytes_sent += pass1.bytes();

  // ---- Feedback -> pass 2 QP map ----
  const int mb_cols = frame.width() / codec::kMacroblockSize;
  const int mb_rows = frame.height() / codec::kMacroblockSize;
  codec::QpOffsetMap offsets(
      mb_cols, mb_rows,
      static_cast<std::int8_t>(config_.pass2_background_delta));
  const double mb = codec::kMacroblockSize;
  for (const auto& det : feedback.detections) {
    const geom::Box roi{det.box.x0 - config_.region_padding_px,
                        det.box.y0 - config_.region_padding_px,
                        det.box.x1 + config_.region_padding_px,
                        det.box.y1 + config_.region_padding_px};
    const int c0 = std::max(0, static_cast<int>(roi.x0 / mb));
    const int c1 = std::min(mb_cols - 1, static_cast<int>(roi.x1 / mb));
    const int r0 = std::max(0, static_cast<int>(roi.y0 / mb));
    const int r1 = std::min(mb_rows - 1, static_cast<int>(roi.y1 / mb));
    for (int row = r0; row <= r1; ++row)
      for (int col = c0; col <= c1; ++col) offsets.at(col, row) = 0;
  }

  // ---- Pass 2: high-quality regions, after the feedback lands ----
  const auto budget2 = static_cast<std::size_t>(
      std::max(1.0, frame_budget * (1.0 - config_.pass1_budget_share)));
  const codec::EncodedFrame pass2 =
      encoder_high_.encode_to_target(frame, budget2, &offsets);
  outcome.base_qp = pass2.base_qp;
  const util::SimTime ready2 =
      feedback.result_at_agent + config_.latencies.encode;
  const net::TransmitResult tx2 = uplink_->transmit_with_timeout(
      static_cast<double>(pass2.bytes()), ready2);
  if (!tx2.delivered) {
    encoder_high_.request_intra();
    // Keep the pass-1 detections: better than nothing.
    last_detections_ = feedback.detections;
    outcome.detections = last_detections_;
    outcome.response_time = feedback.result_at_agent - capture_time;
    return outcome;
  }
  bandwidth_.add_transmission(static_cast<double>(pass2.bytes()), tx2.started,
                              tx2.sent_complete);
  const edge::InferenceResult final_result =
      server_high_.process(pass2.data, tx2.arrival);
  outcome.bytes_sent += pass2.bytes();

  last_detections_ = final_result.detections;
  outcome.detections = last_detections_;
  outcome.offloaded = true;
  outcome.response_time = final_result.result_at_agent - capture_time;
  return outcome;
}

}  // namespace dive::baselines
