// O3 baseline (Hanyao et al., INFOCOM 2021): uploads key frames to the
// edge for detection and corrects local tracking with the returned
// results. Key frames are intra-coded (each upload stands alone) and
// rate-adapted to the bandwidth budget accumulated since the previous
// key frame.
#pragma once

#include "baselines/keyframe_scheme.h"

namespace dive::baselines {

class O3Scheme final : public KeyframeScheme {
 public:
  using KeyframeScheme::KeyframeScheme;

  [[nodiscard]] const char* name() const override { return "O3"; }

 protected:
  codec::EncodedFrame encode_keyframe(const video::Frame& frame,
                                      std::size_t budget_bytes) override {
    encoder().request_intra();
    return encoder().encode_to_target(frame, budget_bytes);
  }
};

}  // namespace dive::baselines
