#include "baselines/eaar.h"

#include <algorithm>

namespace dive::baselines {

codec::EncodedFrame EaarScheme::encode_keyframe(const video::Frame& frame,
                                                std::size_t /*budget*/) {
  // EAAR does not rate-adapt: fixed QP 30 in cached-detection ROIs,
  // QP 40 elsewhere.
  const int mb_cols = frame.width() / codec::kMacroblockSize;
  const int mb_rows = frame.height() / codec::kMacroblockSize;
  const int delta = eaar_.low_quality_qp - eaar_.high_quality_qp;
  codec::QpOffsetMap offsets(mb_cols, mb_rows,
                             static_cast<std::int8_t>(delta));

  const double pad = eaar_.roi_padding_px;
  for (const auto& det : last_keyframe_detections()) {
    const geom::Box roi{det.box.x0 - pad, det.box.y0 - pad, det.box.x1 + pad,
                        det.box.y1 + pad};
    const double mb = codec::kMacroblockSize;
    const int c0 = std::max(0, static_cast<int>(roi.x0 / mb));
    const int c1 = std::min(mb_cols - 1, static_cast<int>(roi.x1 / mb));
    const int r0 = std::max(0, static_cast<int>(roi.y0 / mb));
    const int r1 = std::min(mb_rows - 1, static_cast<int>(roi.y1 / mb));
    for (int row = r0; row <= r1; ++row)
      for (int col = c0; col <= c1; ++col) offsets.at(col, row) = 0;
  }
  return encoder().encode(frame, eaar_.high_quality_qp, &offsets);
}

util::SimTime EaarScheme::adjust_result_time(util::SimTime nominal,
                                             util::SimTime arrival) const {
  // Parallel streaming and inference: decoding happens per slice during
  // transfer and inference overlaps roughly half its span.
  const util::SimTime saved =
      util::from_millis(3.0) + util::from_millis(9.0);
  return std::max(arrival, nominal - saved);
}

}  // namespace dive::baselines
