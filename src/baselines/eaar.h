// EAAR baseline (Liu et al., SIGCOMM 2019): edge-assisted AR object
// detection with (a) ROI encoding of key frames guided by the cached
// detection results — QP 30 inside regions of interest, QP 40 elsewhere,
// the paper's defaults — and (b) parallel streaming + inference, modelled
// as the decode latency and half the inference latency overlapping the
// transfer.
#pragma once

#include "baselines/keyframe_scheme.h"

namespace dive::baselines {

struct EaarConfig {
  int high_quality_qp = 30;
  int low_quality_qp = 40;
  /// Cached detection boxes are inflated by this many pixels when forming
  /// the ROI map (objects move between key frames).
  double roi_padding_px = 12.0;
};

class EaarScheme final : public KeyframeScheme {
 public:
  EaarScheme(KeyframeSchemeConfig config, EaarConfig eaar,
             codec::EncoderConfig encoder_config,
             std::shared_ptr<net::Uplink> uplink,
             std::shared_ptr<edge::EdgeServer> server)
      : KeyframeScheme(config, encoder_config, std::move(uplink),
                       std::move(server)),
        eaar_(eaar) {}

  [[nodiscard]] const char* name() const override { return "EAAR"; }

 protected:
  codec::EncodedFrame encode_keyframe(const video::Frame& frame,
                                      std::size_t budget_bytes) override;

  util::SimTime adjust_result_time(util::SimTime nominal,
                                   util::SimTime arrival) const override;

 private:
  EaarConfig eaar_;
};

}  // namespace dive::baselines
