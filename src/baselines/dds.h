// DDS baseline (Du et al., SIGCOMM 2020): server-driven two-pass
// streaming, at frame granularity (as the paper configures it for fair
// comparison). Pass 1 uploads the whole frame at low quality; the server's
// detections come back as feedback regions; pass 2 re-uploads those
// regions at high quality and the server re-infers for the final result.
// Every frame therefore pays two upload+inference round trips — the source
// of DDS's higher response time — while its accuracy tracks DiVE's except
// when the low-quality pass misses objects entirely (low bandwidth).
#pragma once

#include <memory>

#include "codec/encoder.h"
#include "core/bandwidth_estimator.h"
#include "core/scheme.h"
#include "edge/server.h"
#include "net/uplink.h"

namespace dive::baselines {

struct DdsConfig {
  double fps = 12.0;
  /// Budget split between the low-quality and high-quality passes.
  double pass1_budget_share = 0.45;
  /// Feedback regions are detection boxes inflated by this padding.
  double region_padding_px = 14.0;
  /// Background offset applied outside feedback regions in pass 2.
  int pass2_background_delta = 18;
  /// When the uplink backlog at capture exceeds this, the frame is
  /// skipped (stale result reused) — real DDS deployments drop to a lower
  /// processing rate rather than queueing unboundedly, since each frame
  /// costs two serialized uploads plus a feedback round trip.
  util::SimTime skip_backlog = util::from_millis(70.0);
  core::AgentLatencies latencies;
  core::BandwidthEstimatorConfig bandwidth;
};

class DdsScheme final : public core::AnalyticsScheme {
 public:
  /// DDS keeps two streams (low-quality full video + high-quality
  /// regions), hence two decoders on the server side; it owns both
  /// servers to keep the decoder states private.
  DdsScheme(DdsConfig config, codec::EncoderConfig encoder_config,
            std::shared_ptr<net::Uplink> uplink,
            const edge::ServerConfig& server_config, std::uint64_t seed);

  [[nodiscard]] const char* name() const override { return "DDS"; }

  core::FrameOutcome process_frame(const video::Frame& frame,
                             util::SimTime capture_time) override;

 private:
  DdsConfig config_;
  codec::Encoder encoder_low_;
  codec::Encoder encoder_high_;
  std::shared_ptr<net::Uplink> uplink_;
  edge::EdgeServer server_low_;
  edge::EdgeServer server_high_;
  core::BandwidthEstimator bandwidth_;
  edge::DetectionList last_detections_;
};

}  // namespace dive::baselines
