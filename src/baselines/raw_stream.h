// Upper-bound reference scheme: every frame uploaded with rate-adaptive
// uniform quality (no foreground differentiation, no tracking fallback).
// Not one of the paper's baselines — used by tests and ablations to
// isolate the contribution of DiVE's differential encoding.
#pragma once

#include <memory>

#include "codec/encoder.h"
#include "core/bandwidth_estimator.h"
#include "core/scheme.h"
#include "edge/server.h"
#include "net/uplink.h"

namespace dive::baselines {

struct RawStreamConfig {
  double fps = 12.0;
  core::AgentLatencies latencies;
  core::BandwidthEstimatorConfig bandwidth;
};

class RawStreamScheme final : public core::AnalyticsScheme {
 public:
  RawStreamScheme(RawStreamConfig config, codec::EncoderConfig encoder_config,
                  std::shared_ptr<net::Uplink> uplink,
                  std::shared_ptr<edge::EdgeServer> server)
      : config_(config),
        encoder_(encoder_config),
        uplink_(std::move(uplink)),
        server_(std::move(server)),
        bandwidth_(config.bandwidth) {}

  [[nodiscard]] const char* name() const override { return "Uniform"; }

  core::FrameOutcome process_frame(const video::Frame& frame,
                             util::SimTime capture_time) override;

 private:
  RawStreamConfig config_;
  codec::Encoder encoder_;
  std::shared_ptr<net::Uplink> uplink_;
  std::shared_ptr<edge::EdgeServer> server_;
  core::BandwidthEstimator bandwidth_;
  edge::DetectionList last_detections_;
};

}  // namespace dive::baselines
