// Shared machinery for the key-frame-based baselines (O3 and EAAR,
// Sec. IV-A): select key frames, upload them for edge inference, and run
// motion-vector tracking locally for every other frame — using the same
// tracker as DiVE's MOT, as the paper does for fairness.
//
// Edge results arrive asynchronously: a key frame's detections only
// become usable once they land back on the agent, at which point they are
// fast-forwarded through the motion fields of the frames captured in the
// meantime.
#pragma once

#include <deque>
#include <memory>

#include "codec/encoder.h"
#include "codec/motion_search.h"
#include "core/bandwidth_estimator.h"
#include "core/offline_tracker.h"
#include "core/scheme.h"
#include "edge/server.h"
#include "net/uplink.h"

namespace dive::baselines {

struct KeyframeSchemeConfig {
  int keyframe_interval = 6;    ///< upload every Nth frame
  /// Additional trigger: a key frame is also forced when the mean |luma
  /// diff| between consecutive frames spikes above this (scene change).
  double diff_trigger = 20.0;
  double fps = 12.0;
  core::AgentLatencies latencies;
  core::BandwidthEstimatorConfig bandwidth;
  core::OfflineTrackerConfig tracker;
};

class KeyframeScheme : public core::AnalyticsScheme {
 public:
  KeyframeScheme(KeyframeSchemeConfig config,
                 codec::EncoderConfig encoder_config,
                 std::shared_ptr<net::Uplink> uplink,
                 std::shared_ptr<edge::EdgeServer> server);

  core::FrameOutcome process_frame(const video::Frame& frame,
                                   util::SimTime capture_time) final;

 protected:
  /// Encodes a key frame; subclasses choose intra-vs-ROI policy and QP.
  virtual codec::EncodedFrame encode_keyframe(const video::Frame& frame,
                                              std::size_t budget_bytes) = 0;

  /// Hook for modelling pipelined transmission/inference (EAAR): maps the
  /// server's nominal result time to the scheme's effective one.
  [[nodiscard]] virtual util::SimTime adjust_result_time(
      util::SimTime nominal, util::SimTime arrival) const {
    (void)arrival;
    return nominal;
  }

  codec::Encoder& encoder() { return encoder_; }
  core::BandwidthEstimator& bandwidth() { return bandwidth_; }
  [[nodiscard]] const edge::DetectionList& last_keyframe_detections() const {
    return current_;
  }

 private:
  struct PendingResult {
    edge::DetectionList detections;
    util::SimTime available_at = 0;
    long keyframe_index = 0;
  };

  [[nodiscard]] bool is_keyframe(const video::Frame& frame) const;
  void adopt_ready_results(util::SimTime now);

  KeyframeSchemeConfig config_;
  codec::Encoder encoder_;
  codec::MotionSearcher tracker_searcher_;
  std::shared_ptr<net::Uplink> uplink_;
  std::shared_ptr<edge::EdgeServer> server_;
  core::BandwidthEstimator bandwidth_;
  core::OfflineTracker tracker_;

  video::Frame previous_raw_;      ///< tracking + diff-trigger reference
  bool has_previous_ = false;
  bool has_keyframe_ = false;
  long frame_index_ = 0;
  long last_keyframe_index_ = 0;

  edge::DetectionList current_;    ///< agent's live (tracked) detections
  std::deque<PendingResult> pending_;
  /// Motion fields since the oldest outstanding key frame, for
  /// fast-forwarding results when they arrive.
  std::deque<std::pair<long, codec::MotionField>> field_history_;
};

}  // namespace dive::baselines
