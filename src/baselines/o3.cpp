#include "baselines/o3.h"

// O3Scheme is fully defined inline; this TU anchors the target.
namespace dive::baselines {}
