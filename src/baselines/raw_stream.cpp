#include "baselines/raw_stream.h"

#include <algorithm>

namespace dive::baselines {

core::FrameOutcome RawStreamScheme::process_frame(const video::Frame& frame,
                                                  util::SimTime capture_time) {
  core::FrameOutcome outcome;
  const double budget_rate = bandwidth_.target_bytes_per_sec(capture_time);
  const auto target = static_cast<std::size_t>(
      std::max(1.0, budget_rate / config_.fps));

  const codec::EncodedFrame encoded = encoder_.encode_to_target(frame, target);
  outcome.base_qp = encoded.base_qp;
  const util::SimTime ready = capture_time + config_.latencies.encode;
  const net::TransmitResult tx = uplink_->transmit_with_timeout(
      static_cast<double>(encoded.bytes()), ready);
  if (!tx.delivered) {
    encoder_.request_intra();
    outcome.detections = last_detections_;
    outcome.response_time =
        (tx.gave_up_at - capture_time) + config_.latencies.local_track;
    return outcome;
  }
  bandwidth_.add_transmission(static_cast<double>(encoded.bytes()), tx.started,
                              tx.sent_complete);
  const edge::InferenceResult inference =
      server_->process(encoded.data, tx.arrival);
  last_detections_ = inference.detections;
  outcome.detections = last_detections_;
  outcome.bytes_sent = encoded.bytes();
  outcome.offloaded = true;
  outcome.response_time = inference.result_at_agent - capture_time;
  return outcome;
}

}  // namespace dive::baselines
