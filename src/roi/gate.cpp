#include "roi/gate.h"

#include <algorithm>
#include <cmath>

#include "geom/polygon.h"

namespace dive::roi {
namespace {

/// Pixel rectangle of tile (tx, ty) as a half-open box.
geom::Box tile_box(int tx, int ty, int tile, int width, int height) {
  const double x0 = static_cast<double>(tx) * tile;
  const double y0 = static_cast<double>(ty) * tile;
  return {x0, y0, std::min(x0 + tile, static_cast<double>(width)),
          std::min(y0 + tile, static_cast<double>(height))};
}

void fill_rect(video::Plane& plane, int x0, int y0, int x1, int y1,
               std::uint8_t value) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, plane.width);
  y1 = std::min(y1, plane.height);
  for (int y = y0; y < y1; ++y)
    for (int x = x0; x < x1; ++x) plane.at(x, y) = value;
}

/// Deterministic detection order: confidence descending, then class and
/// geometry — merged fresh+propagated lists compare equal across runs.
void sort_detections(edge::DetectionList& dets) {
  std::sort(dets.begin(), dets.end(),
            [](const edge::Detection& a, const edge::Detection& b) {
              if (a.confidence != b.confidence)
                return a.confidence > b.confidence;
              if (a.cls != b.cls) return a.cls < b.cls;
              if (a.box.x0 != b.box.x0) return a.box.x0 < b.box.x0;
              if (a.box.y0 != b.box.y0) return a.box.y0 < b.box.y0;
              if (a.box.x1 != b.box.x1) return a.box.x1 < b.box.x1;
              return a.box.y1 < b.box.y1;
            });
}

}  // namespace

GatePlan RoiGate::plan(const RoiMetadata* meta, int width, int height) {
  const long k = planned_++;
  ++stats_.planned;
  const int tile = std::max(1, config_.tile_px);
  GatePlan p;
  p.tile_cols = (width + tile - 1) / tile;
  p.tile_rows = (height + tile - 1) / tile;

  const bool refresh_due = config_.full_refresh_interval > 0 &&
                           k % config_.full_refresh_interval == 0;
  if (meta == nullptr || refresh_due || meta->width() != width ||
      meta->height() != height ||
      (meta->regions.empty() && !meta->has_motion()))
    return p;  // full-frame fallback

  const std::size_t tile_count =
      static_cast<std::size_t>(p.tile_cols) * p.tile_rows;
  std::vector<std::uint8_t> lit(tile_count, 0);
  const auto mark = [&](int tx, int ty) {
    if (tx < 0 || ty < 0 || tx >= p.tile_cols || ty >= p.tile_rows) return;
    lit[static_cast<std::size_t>(ty) * p.tile_cols + tx] = 1;
  };

  // Foreground hulls: tiles whose center falls inside a hull, plus the
  // tile under every vertex (so hulls smaller than a tile still light
  // their tile up).
  for (const auto& region : meta->regions) {
    if (region.hull.size() < 3) continue;  // degenerate: carried, not used
    const std::vector<geom::Vec2> hull = region.hull_px();
    const geom::Box bounds = geom::bounding_box(hull);
    const int tx0 = std::max(0, static_cast<int>(bounds.x0) / tile);
    const int ty0 = std::max(0, static_cast<int>(bounds.y0) / tile);
    const int tx1 = std::min(p.tile_cols - 1, static_cast<int>(bounds.x1) / tile);
    const int ty1 = std::min(p.tile_rows - 1, static_cast<int>(bounds.y1) / tile);
    for (int ty = ty0; ty <= ty1; ++ty)
      for (int tx = tx0; tx <= tx1; ++tx)
        if (geom::point_in_polygon(tile_box(tx, ty, tile, width, height).center(),
                                   hull))
          mark(tx, ty);
    for (const auto& v : hull)
      mark(static_cast<int>(v.x) / tile, static_cast<int>(v.y) / tile);
  }

  // Codec motion: macroblocks whose MV stands out against the frame's
  // median MV are content the hulls may have missed (appearing objects,
  // close parallax). The median absorbs the ego-motion component that
  // dominates raw MVs on a moving agent.
  if (meta->has_motion()) {
    std::vector<int> xs, ys;
    xs.reserve(meta->mvs.size());
    ys.reserve(meta->mvs.size());
    for (const auto& mv : meta->mvs) {
      xs.push_back(mv.dx);
      ys.push_back(mv.dy);
    }
    const auto median = [](std::vector<int>& v) {
      const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
      std::nth_element(v.begin(), mid, v.end());
      return *mid;
    };
    const int med_dx = median(xs);
    const int med_dy = median(ys);
    for (int row = 0; row < meta->mb_rows; ++row) {
      for (int col = 0; col < meta->mb_cols; ++col) {
        const std::size_t mb =
            static_cast<std::size_t>(row) * meta->mb_cols + col;
        if (!meta->skip.empty() && meta->skip[mb] != 0) continue;
        const int dev = std::abs(meta->mvs[mb].dx - med_dx) +
                        std::abs(meta->mvs[mb].dy - med_dy);
        if (dev <= config_.motion_deviation) continue;
        const int cx = col * codec::kMacroblockSize + codec::kMacroblockSize / 2;
        const int cy = row * codec::kMacroblockSize + codec::kMacroblockSize / 2;
        mark(cx / tile, cy / tile);
      }
    }
  }

  // Halo dilation (chebyshev radius) so object borders stay visible.
  if (config_.halo_tiles > 0) {
    const int r = config_.halo_tiles;
    std::vector<std::uint8_t> dilated(tile_count, 0);
    for (int ty = 0; ty < p.tile_rows; ++ty) {
      for (int tx = 0; tx < p.tile_cols; ++tx) {
        if (lit[static_cast<std::size_t>(ty) * p.tile_cols + tx] == 0)
          continue;
        for (int dy = -r; dy <= r; ++dy) {
          for (int dx = -r; dx <= r; ++dx) {
            const int nx = tx + dx;
            const int ny = ty + dy;
            if (nx < 0 || ny < 0 || nx >= p.tile_cols || ny >= p.tile_rows)
              continue;
            dilated[static_cast<std::size_t>(ny) * p.tile_cols + nx] = 1;
          }
        }
      }
    }
    lit = std::move(dilated);
  }

  // Rotating scan refresh (after the halo — stripes need no border
  // margin): a column subset the compressed domain did not nominate,
  // revisited round-robin so appearing objects are discovered within
  // scan_stripes frames of entering the scene. Far-field objects move
  // with the background until they are close, and the full refresh only
  // looks every full_refresh_interval frames.
  if (config_.scan_stripes > 0) {
    const int stripe = static_cast<int>(k % config_.scan_stripes);
    for (int tx = stripe; tx < p.tile_cols; tx += config_.scan_stripes)
      for (int ty = 0; ty < p.tile_rows; ++ty) mark(tx, ty);
  }

  // Horizon band: distant objects enter the scene near the focus of
  // expansion — the image center row for a level camera — as tiny blobs
  // that move with the background, so neither hulls nor MV deviation nor
  // (until its stripe comes around) the rotating scan sees them on their
  // first frame. Keeping the horizon tile rows always lit removes that
  // discovery delay where it matters most.
  if (config_.horizon_rows > 0) {
    const int center_ty = (height / 2) / tile;
    const int first = center_ty - (config_.horizon_rows - 1) / 2;
    for (int i = 0; i < config_.horizon_rows; ++i)
      for (int tx = 0; tx < p.tile_cols; ++tx) mark(tx, first + i);
  }

  std::size_t lit_tiles = 0;
  double lit_pixels = 0.0;
  for (int ty = 0; ty < p.tile_rows; ++ty) {
    for (int tx = 0; tx < p.tile_cols; ++tx) {
      if (lit[static_cast<std::size_t>(ty) * p.tile_cols + tx] == 0) continue;
      ++lit_tiles;
      lit_pixels += tile_box(tx, ty, tile, width, height).area();
    }
  }
  p.coverage = tile_count == 0
                   ? 1.0
                   : static_cast<double>(lit_tiles) /
                         static_cast<double>(tile_count);
  if (p.coverage >= config_.max_coverage) {
    p.coverage = 1.0;
    return p;  // gating buys too little: full-frame
  }

  p.gated = true;
  p.tiles = std::move(lit);
  p.pixel_fraction =
      lit_pixels / (static_cast<double>(width) * static_cast<double>(height));
  p.work = std::max(config_.min_work_fraction, p.pixel_fraction);
  return p;
}

GatedDetections RoiGate::infer(const video::Frame& frame,
                               const RoiMetadata* meta, const GatePlan& plan) {
  GatedDetections out;
  if (!plan.gated) {
    out.detections = server_->infer_raw(frame);
    out.fresh = static_cast<int>(out.detections.size());
    held_ = out.detections;
    ++stats_.full;
    return out;
  }
  ++stats_.gated;

  const int width = frame.width();
  const int height = frame.height();
  const int tile = std::max(1, config_.tile_px);

  // Known objects ride the motion field to their expected positions
  // first, and the tiles under them are lit on top of the plan's
  // hull/motion tiles: a previously seen object stays FULLY visible to
  // the detector, because a cut object yields a fragment box that scores
  // as both a false positive and a miss. Held boxes are run-time state
  // updated strictly in per-session frame order, so the augmented tile
  // set — like everything else here — is independent of scheduling.
  const codec::MotionField field =
      meta != nullptr ? meta->motion_field() : codec::MotionField{};
  edge::DetectionList shifted = edge::shift_by_mean_mv(
      held_, field, width, height, config_.propagate);
  std::vector<std::uint8_t> tiles = plan.tiles;
  for (const auto& det : shifted) {
    if (det.confidence < config_.propagate_min_confidence) continue;
    const double m = config_.held_box_margin_px;
    const int tx0 = std::max(0, static_cast<int>(det.box.x0 - m) / tile);
    const int ty0 = std::max(0, static_cast<int>(det.box.y0 - m) / tile);
    const int tx1 =
        std::min(plan.tile_cols - 1, static_cast<int>(det.box.x1 + m) / tile);
    const int ty1 =
        std::min(plan.tile_rows - 1, static_cast<int>(det.box.y1 + m) / tile);
    for (int ty = ty0; ty <= ty1; ++ty)
      for (int tx = tx0; tx <= tx1; ++tx)
        tiles[static_cast<std::size_t>(ty) * plan.tile_cols + tx] = 1;
  }

  // Reset background tiles to neutral so the detector only sees the
  // foreground. Chroma rectangles round outward (4:2:0 planes).
  video::Frame masked = frame;
  double lit_pixels = 0.0;
  for (int ty = 0; ty < plan.tile_rows; ++ty) {
    for (int tx = 0; tx < plan.tile_cols; ++tx) {
      const int x0 = tx * tile;
      const int y0 = ty * tile;
      const int x1 = std::min(x0 + tile, width);
      const int y1 = std::min(y0 + tile, height);
      if (tiles[static_cast<std::size_t>(ty) * plan.tile_cols + tx] != 0) {
        lit_pixels += static_cast<double>(x1 - x0) * (y1 - y0);
        continue;
      }
      fill_rect(masked.y, x0, y0, x1, y1, 16);
      fill_rect(masked.u, x0 / 2, y0 / 2, (x1 + 1) / 2, (y1 + 1) / 2, 128);
      fill_rect(masked.v, x0 / 2, y0 / 2, (x1 + 1) / 2, (y1 + 1) / 2, 128);
    }
  }
  out.pixel_fraction =
      lit_pixels / (static_cast<double>(width) * static_cast<double>(height));
  stats_.gated_pixel_fraction_sum += out.pixel_fraction;

  edge::DetectionList merged = server_->infer_raw(masked);
  out.fresh = static_cast<int>(merged.size());
  out.gated = true;

  // Propagation now only covers detector misses: a fresh detection
  // overlapping a shifted box claims the object and supersedes the
  // carried copy; unclaimed boxes survive with decayed confidence.
  // Claiming is one-to-one — a single fresh box over two close objects
  // must not absorb both carried copies, or the second object vanishes.
  const auto iou = [](const geom::Box& a, const geom::Box& b) {
    const double inter = a.intersect(b).area();
    const double uni = a.area() + b.area() - inter;
    return uni > 0.0 ? inter / uni : 0.0;
  };
  std::vector<bool> fresh_used(static_cast<std::size_t>(out.fresh), false);
  for (auto& det : shifted) {
    if (det.confidence < config_.propagate_min_confidence) continue;
    int best = -1;
    double best_iou = config_.dedup_iou;
    for (int i = 0; i < out.fresh; ++i) {
      if (fresh_used[static_cast<std::size_t>(i)]) continue;
      if (merged[static_cast<std::size_t>(i)].cls != det.cls) continue;
      const double overlap = iou(merged[static_cast<std::size_t>(i)].box,
                                 det.box);
      if (overlap >= best_iou) {
        best = i;
        best_iou = overlap;
      }
    }
    if (best >= 0) {
      fresh_used[static_cast<std::size_t>(best)] = true;
      continue;
    }
    merged.push_back(det);
    ++out.propagated;
  }

  sort_detections(merged);
  stats_.fresh_boxes += out.fresh;
  stats_.propagated_boxes += out.propagated;
  out.detections = merged;
  held_ = std::move(merged);
  return out;
}

GatedDetections RoiGate::run(std::span<const std::uint8_t> data,
                             const RoiMetadata* meta, const GatePlan& plan) {
  const codec::DecodedFrame decoded = server_->decode(data);
  return infer(decoded.frame, meta, plan);
}

edge::InferenceResult RoiGate::process(std::span<const std::uint8_t> data,
                                       const RoiMetadata* meta,
                                       util::SimTime arrival,
                                       GatePlan* plan_out) {
  codec::DecodedFrame decoded = server_->decode(data);
  GatePlan p = plan(meta, decoded.frame.width(), decoded.frame.height());
  GatedDetections gated = infer(decoded.frame, meta, p);

  const auto& sc = server_->config();
  const util::SimTime inference = static_cast<util::SimTime>(std::llround(
      static_cast<double>(sc.inference_latency) * p.work));
  const util::SimTime jitter = server_->take_jitter();

  edge::InferenceResult result;
  result.decoded = std::move(decoded.frame);
  result.detections = std::move(gated.detections);
  result.result_at_agent =
      arrival + sc.decode_latency + inference + jitter + sc.downlink_delay;
  if (plan_out != nullptr) *plan_out = p;
  return result;
}

}  // namespace dive::roi
