#include "roi/metadata.h"

#include <cmath>

namespace dive::roi {
namespace {

constexpr std::uint8_t kMagic = 0x52;  // 'R'
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagMotion = 0x01;
constexpr std::uint8_t kFlagSkip = 0x02;

// Sanity bounds while parsing untrusted bytes: reject before allocating.
constexpr int kMaxMbDim = 1 << 12;
constexpr std::size_t kMaxRegions = 1 << 16;
constexpr std::size_t kMaxHullPoints = 1 << 16;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Strict cursor over the wire bytes; every read can fail.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos >= bytes.size()) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }

  /// Canonical LEB128: at most 10 bytes, the 10th byte carries only bit
  /// 64 (reject silent truncation), and a terminating zero byte is only
  /// legal as the sole byte (reject overlong encodings like 80 00).
  /// Canonicality makes encoding a bijection, which is what lets the
  /// sidecar digest check trust serialize(parse(bytes)) == bytes — a
  /// re-encoded spoof of an accepted sidecar is byte-identical or
  /// rejected, never a digest collision.
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      if (!ok) return 0;
      if (shift == 63 && (b & 0x7F) > 1) {
        ok = false;  // bits beyond 64 — value overflows uint64
        return 0;
      }
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        if (shift > 0 && b == 0) {
          ok = false;  // overlong (non-canonical) encoding
          return 0;
        }
        return v;
      }
    }
    ok = false;  // > 10 bytes
    return 0;
  }

  std::int64_t svarint() { return unzigzag(varint()); }

  /// svarint bounded to int32 — the wire stores int32 quantities, and
  /// accepting wider values would truncate on store and then overflow
  /// (UB) when serialize() re-derives deltas in int arithmetic.
  std::int32_t svarint32() {
    const std::int64_t v = svarint();
    if (v < INT32_MIN || v > INT32_MAX) {
      ok = false;
      return 0;
    }
    return static_cast<std::int32_t>(v);
  }
};

}  // namespace

HullPoint HullPoint::from_vec2(geom::Vec2 p) {
  return {static_cast<std::int32_t>(std::llround(p.x * (1 << kHullFracBits))),
          static_cast<std::int32_t>(std::llround(p.y * (1 << kHullFracBits)))};
}

std::vector<geom::Vec2> RoiRegion::hull_px() const {
  std::vector<geom::Vec2> out;
  out.reserve(hull.size());
  for (const auto& p : hull) out.push_back(p.as_vec2());
  return out;
}

codec::MotionField RoiMetadata::motion_field() const {
  codec::MotionField field(mb_cols, mb_rows);
  if (has_motion()) field.mvs = mvs;
  return field;
}

std::vector<std::uint8_t> RoiMetadata::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(kMagic);
  out.push_back(kVersion);
  put_varint(out, static_cast<std::uint64_t>(mb_cols));
  put_varint(out, static_cast<std::uint64_t>(mb_rows));

  std::uint8_t flags = 0;
  if (!mvs.empty()) flags |= kFlagMotion;
  if (!skip.empty()) flags |= kFlagSkip;
  out.push_back(flags);

  if (!mvs.empty()) {
    for (const auto& mv : mvs) {
      put_svarint(out, mv.dx);
      put_svarint(out, mv.dy);
    }
  }
  if (!skip.empty()) {
    // Bit-packed, LSB-first within each byte.
    std::uint8_t acc = 0;
    int used = 0;
    for (const std::uint8_t s : skip) {
      if (s != 0) acc |= static_cast<std::uint8_t>(1 << used);
      if (++used == 8) {
        out.push_back(acc);
        acc = 0;
        used = 0;
      }
    }
    if (used > 0) out.push_back(acc);
  }

  put_varint(out, regions.size());
  for (const auto& region : regions) {
    put_svarint(out, region.mean_mv.dx);
    put_svarint(out, region.mean_mv.dy);
    put_varint(out, region.hull.size());
    // Delta-coded vertices: convex hulls walk the contour, so deltas are
    // small and the varints short.
    HullPoint prev{};
    for (const auto& p : region.hull) {
      // int64 deltas: two int32 vertices can sit 2^32 apart, which would
      // overflow (UB) in int arithmetic.
      put_svarint(out, static_cast<std::int64_t>(p.x) - prev.x);
      put_svarint(out, static_cast<std::int64_t>(p.y) - prev.y);
      prev = p;
    }
  }
  return out;
}

std::optional<RoiMetadata> RoiMetadata::parse(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u8() != kMagic || r.u8() != kVersion || !r.ok) return std::nullopt;

  RoiMetadata meta;
  const std::uint64_t cols = r.varint();
  const std::uint64_t rows = r.varint();
  if (!r.ok || cols > kMaxMbDim || rows > kMaxMbDim) return std::nullopt;
  meta.mb_cols = static_cast<int>(cols);
  meta.mb_rows = static_cast<int>(rows);
  const std::size_t mb_count = static_cast<std::size_t>(cols) * rows;

  const std::uint8_t flags = r.u8();
  if (!r.ok || (flags & ~(kFlagMotion | kFlagSkip)) != 0) return std::nullopt;

  if ((flags & kFlagMotion) != 0) {
    meta.mvs.resize(mb_count);
    for (auto& mv : meta.mvs) {
      mv.dx = r.svarint32();
      mv.dy = r.svarint32();
    }
  }
  if ((flags & kFlagSkip) != 0) {
    meta.skip.resize(mb_count, 0);
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < mb_count; ++i) {
      const int used = static_cast<int>(i % 8);
      if (used == 0) acc = r.u8();
      meta.skip[i] = (acc >> used) & 1;
    }
    // Unused high bits of the final byte must be zero padding, or two
    // distinct byte strings would parse to the same metadata and the
    // digest check could be spoofed.
    const std::size_t tail = mb_count % 8;
    if (tail != 0 && (acc >> tail) != 0) return std::nullopt;
  }
  if (!r.ok) return std::nullopt;

  const std::uint64_t region_count = r.varint();
  if (!r.ok || region_count > kMaxRegions) return std::nullopt;
  meta.regions.resize(region_count);
  for (auto& region : meta.regions) {
    region.mean_mv.dx = r.svarint32();
    region.mean_mv.dy = r.svarint32();
    const std::uint64_t points = r.varint();
    if (!r.ok || points > kMaxHullPoints) return std::nullopt;
    region.hull.resize(points);
    // Deltas are int64 on the wire (two int32 endpoints can be 2^32
    // apart); each accumulated vertex must land back in int32.
    HullPoint prev{};
    for (auto& p : region.hull) {
      const std::int64_t x = static_cast<std::int64_t>(prev.x) + r.svarint();
      const std::int64_t y = static_cast<std::int64_t>(prev.y) + r.svarint();
      if (x < INT32_MIN || x > INT32_MAX || y < INT32_MIN || y > INT32_MAX)
        return std::nullopt;
      p.x = static_cast<std::int32_t>(x);
      p.y = static_cast<std::int32_t>(y);
      prev = p;
    }
  }
  if (!r.ok || r.pos != bytes.size()) return std::nullopt;
  return meta;
}

RoiMetadata from_encoded(const codec::EncodedFrame& encoded, int width,
                         int height) {
  RoiMetadata meta;
  meta.mb_cols = width / codec::kMacroblockSize;
  meta.mb_rows = height / codec::kMacroblockSize;
  if (!encoded.motion.empty()) meta.mvs = encoded.motion.mvs;
  if (!encoded.skip.empty()) {
    meta.skip = encoded.skip;
    for (auto& s : meta.skip) s = s != 0 ? 1 : 0;  // normalize to the wire
  }
  return meta;
}

void add_region(RoiMetadata& meta, const std::vector<geom::Vec2>& hull,
                geom::Vec2 mean_mv_px) {
  RoiRegion region;
  region.hull.reserve(hull.size());
  for (const auto& p : hull) region.hull.push_back(HullPoint::from_vec2(p));
  region.mean_mv.dx = static_cast<int>(std::llround(mean_mv_px.x * 2.0));
  region.mean_mv.dy = static_cast<int>(std::llround(mean_mv_px.y * 2.0));
  meta.regions.push_back(std::move(region));
}

}  // namespace dive::roi
