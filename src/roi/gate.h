// RoiGate: compressed-domain inference gating in front of edge::EdgeServer.
//
// The gate tiles the decoded frame, rasterizes the sidecar's foreground
// hulls (plus MBs the codec says are moving and not SKIPped) into the
// tile grid, dilates by a halo, and runs the detector only on those
// tiles — the background is reset to neutral luma/chroma so the blob
// detector cannot fire there. Background boxes from the previous frame
// are propagated by mean-MV shift (edge::shift_by_mean_mv, the same
// primitive as the agent's MOT fallback). Full-frame inference remains
// the fallback when metadata is absent, foreground coverage exceeds a
// threshold, or the periodic refresh is due (bounds propagation
// staleness, which is what keeps gated mAP within points of full-frame).
//
// Determinism: plan() and run() are deterministic functions of the gate
// state and their inputs; the serving layer calls plan() once per frame
// at submission and run() once at dispatch, both in per-session frame
// order, so gated detections are identical for every worker count and
// batch interleaving (locked by the differential suite).
#pragma once

#include <cstdint>
#include <span>

#include "edge/box_shift.h"
#include "edge/detection.h"
#include "edge/server.h"
#include "roi/metadata.h"
#include "util/sim_clock.h"

namespace dive::roi {

struct RoiGateConfig {
  /// Tile edge in luma pixels (frame edges may get partial tiles).
  int tile_px = 32;
  /// Dilation radius, in tiles, around every foreground tile — keeps
  /// object borders inside the detector's view.
  int halo_tiles = 1;
  /// A non-SKIP macroblock lights its tile when its MV deviates from the
  /// frame's component-wise median MV by more than this (half-pel L1).
  /// The median is the ego-motion estimate the compressed domain gives
  /// for free: raw MVs on a moving agent are dominated by camera motion,
  /// and gating on them directly would light the whole frame.
  int motion_deviation = 4;
  /// When the (post-halo) foreground tile fraction reaches this, gating
  /// buys too little: fall back to full-frame inference.
  double max_coverage = 0.65;
  /// Force a full-frame pass every N planned frames (0 = never). Bounds
  /// how stale propagated background boxes can get.
  int full_refresh_interval = 12;
  /// Rotating scan refresh: on every gated frame, additionally light the
  /// tile columns with (tx % scan_stripes == frame % scan_stripes), so
  /// every column is revisited at least every scan_stripes frames
  /// (0 = off). This is what discovers objects the compressed domain
  /// cannot see coming — appearing far-field objects move with the
  /// background until they are close, and a full refresh only looks
  /// every full_refresh_interval frames.
  int scan_stripes = 4;
  /// Tile rows centered on the horizon (image center row — the focus of
  /// expansion for a level forward camera) that stay lit on every gated
  /// frame (0 = off). Distant objects enter the scene there as tiny
  /// blobs that move with the background; no compressed-domain cue sees
  /// them on their first frame, and a missed appearance costs a full
  /// false negative until the scan stripe or refresh comes around.
  int horizon_rows = 1;
  /// Floor on the work fraction reported to the scheduler: decode and
  /// dispatch overhead never vanish, however small the foreground.
  double min_work_fraction = 0.15;
  /// Propagation of background boxes between full passes: light decay,
  /// same shift primitive as the MOT tracker.
  edge::BoxShiftOptions propagate{.min_area_keep = 0.25,
                                  .confidence_decay = 0.97};
  /// Propagated boxes below this confidence are dropped (a box never
  /// re-confirmed by the detector eventually ages out).
  double propagate_min_confidence = 0.2;
  /// A shifted previous-frame box is dropped when a fresh detection
  /// overlaps it by at least this IoU — the detector re-found the object
  /// and owns it. Below, the carried copy survives: the object sat on
  /// masked tiles (or the masked fragment fell under the detector's blob
  /// floor) and propagation is the only source that still covers it.
  double dedup_iou = 0.3;
  /// Margin added around every held (previous-frame, MV-shifted) box
  /// before lighting the tiles under it, absorbing shift error and
  /// object growth. Held boxes are lit at run time so known objects stay
  /// fully visible to the detector — a cut object yields a fragment box
  /// that scores as both a false positive and a miss.
  double held_box_margin_px = 4.0;
};

/// How one frame will be inferred. Computed before dispatch so the
/// scheduler can price gated work.
struct GatePlan {
  bool gated = false;  ///< false = full-frame inference
  int tile_cols = 0;
  int tile_rows = 0;
  std::vector<std::uint8_t> tiles;  ///< row-major; 1 = detector runs here
  double coverage = 1.0;        ///< post-halo foreground tile fraction
  double pixel_fraction = 1.0;  ///< detector pixels / frame pixels
  double work = 1.0;            ///< scheduler cost scale (floored fraction)
};

/// Gated inference outcome of one frame.
struct GatedDetections {
  edge::DetectionList detections;  ///< fresh + propagated, merged
  int fresh = 0;       ///< boxes from the detector on foreground tiles
  int propagated = 0;  ///< background boxes carried by mean-MV shift
  bool gated = false;  ///< false when this frame ran full-frame
  /// Actual detector pixel fraction, including the tiles lit under held
  /// boxes at run time (>= the plan's estimate; 1.0 on full frames).
  double pixel_fraction = 1.0;
};

/// Lifetime accounting of one gate (monotonic; diff across calls for
/// per-frame deltas).
struct GateStats {
  long planned = 0;           ///< plan() calls
  long gated = 0;             ///< frames inferred through tile gating
  long full = 0;              ///< frames inferred full-frame
  long fresh_boxes = 0;       ///< detector outputs on gated frames
  long propagated_boxes = 0;  ///< background boxes carried by MV shift
  double gated_pixel_fraction_sum = 0.0;  ///< over gated frames only
};

class RoiGate {
 public:
  RoiGate(RoiGateConfig config, edge::EdgeServer* server)
      : config_(config), server_(server) {}

  [[nodiscard]] const RoiGateConfig& config() const { return config_; }
  [[nodiscard]] const GateStats& stats() const { return stats_; }

  /// Decides how the next frame is inferred. Advances the refresh
  /// counter — call exactly once per frame, in per-session frame order.
  /// `meta` null (or dimension mismatch / no signal) => full-frame.
  [[nodiscard]] GatePlan plan(const RoiMetadata* meta, int width, int height);

  /// Decode + gated inference, no latency model (the serving layer
  /// schedules timing itself). Always decodes — inter frames reference
  /// the decoder state regardless of gating.
  GatedDetections run(std::span<const std::uint8_t> data,
                      const RoiMetadata* meta, const GatePlan& plan);

  /// Drop-in replacement for EdgeServer::process(): same latency model
  /// and the SAME sequential jitter stream (EdgeServer::take_jitter), but
  /// inference latency scaled by the plan's work fraction. Plans
  /// internally; `plan_out`, when given, receives the plan used.
  edge::InferenceResult process(std::span<const std::uint8_t> data,
                                const RoiMetadata* meta, util::SimTime arrival,
                                GatePlan* plan_out = nullptr);

  [[nodiscard]] edge::EdgeServer& server() { return *server_; }
  /// Detections the gate would propagate from (previous frame's merged
  /// output).
  [[nodiscard]] const edge::DetectionList& held() const { return held_; }

 private:
  /// Gated inference on an already-decoded frame.
  GatedDetections infer(const video::Frame& frame, const RoiMetadata* meta,
                        const GatePlan& plan);

  RoiGateConfig config_;
  edge::EdgeServer* server_;
  long planned_ = 0;           ///< frames plan() has seen (refresh cadence)
  edge::DetectionList held_;   ///< previous frame's output, for propagation
  GateStats stats_;
};

}  // namespace dive::roi
