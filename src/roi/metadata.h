// RoiMetadata: the compressed-domain sidecar of one encoded frame.
//
// DiVE's agent computes a per-macroblock motion field, per-MB SKIP flags,
// and per-object foreground hulls to drive QP assignment — all of it free
// by the time the frame is encoded. This module packages that metadata
// into a compact byte lane that travels with the bitstream through
// net::Uplink (its bytes count against the bandwidth budget; the video
// bytes are untouched), so the edge can gate inference on it (roi::RoiGate).
//
// Everything is stored in integer domain — half-pel motion vectors,
// 1/16-pixel fixed-point hull vertices, 0/1 skip flags — so
// parse(serialize(m)) == m holds bit-exactly, which the differential
// suite locks down.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "codec/encoder.h"
#include "codec/types.h"
#include "geom/vec.h"

namespace dive::roi {

/// Fixed-point shift for hull vertex coordinates: 4 bits = 1/16 pixel,
/// far below the macroblock granularity the hulls were built from.
constexpr int kHullFracBits = 4;

/// Hull vertex in 1/16-pixel fixed point.
struct HullPoint {
  std::int32_t x = 0;
  std::int32_t y = 0;

  bool operator==(const HullPoint&) const = default;

  [[nodiscard]] geom::Vec2 as_vec2() const {
    constexpr double kScale = 1.0 / (1 << kHullFracBits);
    return {static_cast<double>(x) * kScale, static_cast<double>(y) * kScale};
  }
  static HullPoint from_vec2(geom::Vec2 p);
};

/// One foreground region: convex hull + mean motion, both quantized.
struct RoiRegion {
  std::vector<HullPoint> hull;    ///< convex contour, 1/16-px fixed point
  codec::MotionVector mean_mv;    ///< mean region motion, half-pel units

  bool operator==(const RoiRegion&) const = default;

  /// Hull in pixel coordinates (for point-in-polygon tests).
  [[nodiscard]] std::vector<geom::Vec2> hull_px() const;
};

/// Sidecar metadata of one encoded frame.
struct RoiMetadata {
  int mb_cols = 0;
  int mb_rows = 0;
  /// Coded motion field, row-major mb_cols x mb_rows (empty for intra
  /// frames — the codec has no inter field to ship).
  std::vector<codec::MotionVector> mvs;
  /// Per-MB SKIP flags, 0/1, row-major (empty when the frame carried
  /// none, e.g. intra).
  std::vector<std::uint8_t> skip;
  /// Foreground hull regions from the agent's FE stage.
  std::vector<RoiRegion> regions;

  bool operator==(const RoiMetadata&) const = default;

  [[nodiscard]] bool has_motion() const { return !mvs.empty(); }
  [[nodiscard]] int width() const { return mb_cols * codec::kMacroblockSize; }
  [[nodiscard]] int height() const { return mb_rows * codec::kMacroblockSize; }

  /// Rebuilds a MotionField (SAD costs zeroed — they are not shipped).
  /// Zero field when has_motion() is false.
  [[nodiscard]] codec::MotionField motion_field() const;

  /// Compact wire form: varint/zigzag integers, bit-packed skip flags,
  /// delta-coded hull vertices. serialize() then parse() is bit-exact.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<RoiMetadata> parse(std::span<const std::uint8_t> bytes);
};

/// Seeds a sidecar from one encoded frame's free compression metadata
/// (coded MV field + SKIP flags). `width`/`height` pin the MB grid even
/// when the frame is intra (empty field).
[[nodiscard]] RoiMetadata from_encoded(const codec::EncodedFrame& encoded,
                                       int width, int height);

/// Appends one foreground region (quantizing hull + mean MV). Degenerate
/// hulls (< 3 vertices) are kept verbatim — the gate ignores them, but
/// the wire format must round-trip whatever the extractor produced.
void add_region(RoiMetadata& meta, const std::vector<geom::Vec2>& hull,
                geom::Vec2 mean_mv_px);

}  // namespace dive::roi
