// Experiment harness: runs an analytics scheme over a generated dataset
// through a simulated uplink, scoring accuracy against the paper's
// protocol (detections on raw frames are ground truth) and collecting
// response-time statistics. Every figure bench in bench/ is a thin driver
// over this module.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dds.h"
#include "baselines/eaar.h"
#include "baselines/o3.h"
#include "baselines/raw_stream.h"
#include "core/agent.h"
#include "data/dataset.h"
#include "edge/evaluator.h"
#include "net/bandwidth.h"
#include "util/stats.h"

namespace dive::obs {
struct ObsContext;
}

namespace dive::harness {

enum class SchemeKind {
  kDive = 0,
  kO3 = 1,
  kEaar = 2,
  kDds = 3,
  kUniform = 4,
};

const char* to_string(SchemeKind kind);

/// Network scenario: a factory so every run gets a fresh trace/uplink.
struct NetworkScenario {
  double mbps = 2.0;
  /// When > 0: 1 outage of `outage_duration_s` every `outage_interval_s`.
  double outage_interval_s = 0.0;
  double outage_duration_s = 1.0;
  double first_outage_s = 3.0;
  /// Bandwidth churn around the mean (0 = constant).
  double fluctuation_depth = 0.0;
  util::SimTime head_timeout = util::from_millis(350.0);
  util::SimTime propagation_delay = util::from_millis(10.0);

  [[nodiscard]] std::shared_ptr<net::BandwidthTrace> make_trace(
      double clip_duration_s, std::uint64_t seed) const;
};

/// Per-run knobs, covering every ablation the paper sweeps.
struct SchemeOptions {
  codec::MotionSearchMethod search = codec::MotionSearchMethod::kHex;
  /// Per-macroblock SKIP coding (encoder.h): forced reference copies for
  /// macroblocks whose residual at the predicted MV is negligible.
  bool skip_blocks = true;
  /// Luma SAD budget for a forced SKIP; <0 keeps the encoder default.
  int skip_threshold = -1;
  /// Fixed background delta for Fig. 11 (-1 = adaptive).
  int fixed_delta = -1;
  bool enable_offline_tracking = true;  ///< Fig. 13
  /// Ship the compressed-domain RoI sidecar and gate edge inference on
  /// it (DiVE only; see roi/). Off: uploads and encoded bytes are
  /// byte-identical to a build without the RoI subsystem.
  bool roi_metadata = false;
  int keyframe_interval = 6;            ///< O3 / EAAR
  int gop_length = 48;
  std::uint64_t seed = 99;
  /// Optional observability context, forwarded into the DiVE agent (and
  /// its encoder/uplink/edge server). Non-owning; must outlive the run.
  obs::ObsContext* obs = nullptr;
};

struct RunResult {
  std::string scheme;
  double ap_car = 0.0;
  double ap_ped = 0.0;
  double map = 0.0;
  double mean_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double mean_kbytes_per_frame = 0.0;
  double offload_fraction = 0.0;
  double mean_base_qp = 0.0;
  long frames = 0;
  /// Per-motion-state AP (Fig. 14): indexed by data::MotionState.
  std::array<double, 3> ap_car_by_state{};
  std::array<double, 3> ap_ped_by_state{};
  std::array<long, 3> frames_by_state{};
};

/// Builds a scheme instance bound to a fresh uplink/server pair.
std::unique_ptr<core::AnalyticsScheme> make_scheme(
    SchemeKind kind, const SchemeOptions& options,
    const NetworkScenario& network, const data::Clip& clip,
    double clip_duration_s);

/// Runs `kind` over all clips (fresh network + scheme state per clip) and
/// aggregates.
RunResult run_experiment(SchemeKind kind, const std::vector<data::Clip>& clips,
                         const NetworkScenario& network,
                         const SchemeOptions& options = {});

/// Reads an integer override from the environment (used by benches to
/// scale clip counts/frames without recompiling), falling back to
/// `fallback` when unset or unparsable.
int env_int(const char* name, int fallback);

}  // namespace dive::harness
