#include "harness/experiment.h"

#include <algorithm>
#include <cstdlib>

namespace dive::harness {

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kDive: return "DiVE";
    case SchemeKind::kO3: return "O3";
    case SchemeKind::kEaar: return "EAAR";
    case SchemeKind::kDds: return "DDS";
    case SchemeKind::kUniform: return "Uniform";
  }
  return "?";
}

std::shared_ptr<net::BandwidthTrace> NetworkScenario::make_trace(
    double clip_duration_s, std::uint64_t seed) const {
  std::shared_ptr<net::BandwidthTrace> base;
  const double rate = net::mbps_to_bytes_per_sec(mbps);
  if (fluctuation_depth > 0.0) {
    base = std::make_shared<net::FluctuatingBandwidth>(
        rate, fluctuation_depth, util::from_millis(200.0), seed);
  } else {
    base = std::make_shared<net::ConstantBandwidth>(rate);
  }
  if (outage_interval_s > 0.0) {
    auto outages = net::OutageBandwidth::periodic(
        util::from_seconds(first_outage_s),
        util::from_seconds(outage_interval_s),
        util::from_seconds(outage_duration_s),
        util::from_seconds(clip_duration_s + 5.0));
    base = std::make_shared<net::OutageBandwidth>(base, std::move(outages));
  }
  return base;
}

namespace {

codec::EncoderConfig encoder_config_for(const data::Clip& clip,
                                        const SchemeOptions& options) {
  codec::EncoderConfig cfg;
  cfg.width = clip.camera.width();
  cfg.height = clip.camera.height();
  cfg.search.method = options.search;
  cfg.gop_length = options.gop_length;
  cfg.skip_blocks = options.skip_blocks;
  if (options.skip_threshold >= 0) cfg.skip_threshold = options.skip_threshold;
  return cfg;
}

}  // namespace

std::unique_ptr<core::AnalyticsScheme> make_scheme(
    SchemeKind kind, const SchemeOptions& options,
    const NetworkScenario& network, const data::Clip& clip,
    double clip_duration_s) {
  net::UplinkConfig uplink_cfg;
  uplink_cfg.propagation_delay = network.propagation_delay;
  uplink_cfg.head_timeout = network.head_timeout;
  auto uplink = std::make_shared<net::Uplink>(
      network.make_trace(clip_duration_s, options.seed), uplink_cfg);

  const edge::ServerConfig server_cfg;
  auto server = std::make_shared<edge::EdgeServer>(server_cfg, options.seed);
  const codec::EncoderConfig enc_cfg = encoder_config_for(clip, options);

  switch (kind) {
    case SchemeKind::kDive: {
      core::DiveConfig cfg;
      cfg.fps = clip.fps;
      cfg.qp.fixed_delta = options.fixed_delta;
      cfg.enable_offline_tracking = options.enable_offline_tracking;
      cfg.roi_metadata = options.roi_metadata;
      cfg.seed = options.seed;
      cfg.obs = options.obs;
      return std::make_unique<core::DiveAgent>(cfg, enc_cfg, clip.camera,
                                               uplink, server);
    }
    case SchemeKind::kO3: {
      baselines::KeyframeSchemeConfig cfg;
      cfg.fps = clip.fps;
      cfg.keyframe_interval = options.keyframe_interval;
      return std::make_unique<baselines::O3Scheme>(cfg, enc_cfg, uplink,
                                                   server);
    }
    case SchemeKind::kEaar: {
      baselines::KeyframeSchemeConfig cfg;
      cfg.fps = clip.fps;
      cfg.keyframe_interval = options.keyframe_interval;
      return std::make_unique<baselines::EaarScheme>(
          cfg, baselines::EaarConfig{}, enc_cfg, uplink, server);
    }
    case SchemeKind::kDds: {
      baselines::DdsConfig cfg;
      cfg.fps = clip.fps;
      return std::make_unique<baselines::DdsScheme>(cfg, enc_cfg, uplink,
                                                    server_cfg, options.seed);
    }
    case SchemeKind::kUniform: {
      baselines::RawStreamConfig cfg;
      cfg.fps = clip.fps;
      return std::make_unique<baselines::RawStreamScheme>(cfg, enc_cfg, uplink,
                                                          server);
    }
  }
  return nullptr;
}

RunResult run_experiment(SchemeKind kind, const std::vector<data::Clip>& clips,
                         const NetworkScenario& network,
                         const SchemeOptions& options) {
  RunResult result;
  result.scheme = to_string(kind);

  edge::ApEvaluator evaluator;
  std::array<edge::ApEvaluator, 3> state_evaluators;
  util::SampleSet responses;
  util::RunningStats bytes_stats;
  util::RunningStats qp_stats;
  long offloaded = 0;
  long frames = 0;

  // The ground-truth detector mirrors the edge server's.
  const edge::ChromaDetector gt_detector{edge::ServerConfig{}.detector};

  for (const auto& clip : clips) {
    const double duration_s = clip.frame_count() / clip.fps;
    auto scheme = make_scheme(kind, options, network, clip, duration_s);

    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
      const auto& rec = clip.frames[i];
      // Lookahead hint: lets pipelining schemes (DiVE) overlap the next
      // frame's motion search with this frame's encode. Clip storage
      // outlives the loop, satisfying the hint's lifetime contract.
      if (i + 1 < clip.frames.size())
        scheme->hint_next_frame(clip.frames[i + 1].image);
      const util::SimTime capture = util::from_seconds(rec.timestamp);
      const core::FrameOutcome outcome =
          scheme->process_frame(rec.image, capture);
      const edge::DetectionList truths = gt_detector.detect(rec.image);

      evaluator.add_frame(outcome.detections, truths);
      state_evaluators[static_cast<std::size_t>(rec.motion_state)].add_frame(
          outcome.detections, truths);
      ++result.frames_by_state[static_cast<std::size_t>(rec.motion_state)];

      responses.add(util::to_millis(outcome.response_time));
      bytes_stats.add(static_cast<double>(outcome.bytes_sent) / 1024.0);
      if (outcome.base_qp >= 0) qp_stats.add(outcome.base_qp);
      if (outcome.offloaded) ++offloaded;
      ++frames;
    }
  }

  result.ap_car = evaluator.ap(video::ObjectClass::kCar);
  result.ap_ped = evaluator.ap(video::ObjectClass::kPedestrian);
  result.map = evaluator.map();
  result.mean_response_ms = responses.mean();
  result.p95_response_ms = responses.empty() ? 0.0 : responses.quantile(0.95);
  result.mean_kbytes_per_frame = bytes_stats.mean();
  result.mean_base_qp = qp_stats.mean();
  result.offload_fraction =
      frames > 0 ? static_cast<double>(offloaded) / static_cast<double>(frames)
                 : 0.0;
  result.frames = frames;
  for (int s = 0; s < 3; ++s) {
    result.ap_car_by_state[static_cast<std::size_t>(s)] =
        state_evaluators[static_cast<std::size_t>(s)].ap(
            video::ObjectClass::kCar);
    result.ap_ped_by_state[static_cast<std::size_t>(s)] =
        state_evaluators[static_cast<std::size_t>(s)].ap(
            video::ObjectClass::kPedestrian);
  }
  return result;
}

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || v <= 0) return fallback;
  return static_cast<int>(v);
}

}  // namespace dive::harness
