#include "harness/serve_scenario.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "codec/encoder.h"
#include "core/foreground_extractor.h"
#include "core/offline_tracker.h"
#include "core/preprocess.h"
#include "data/dataset.h"
#include "edge/detector.h"
#include "edge/evaluator.h"
#include "harness/experiment.h"
#include "net/bandwidth.h"
#include "roi/metadata.h"
#include "util/rng.h"

namespace dive::harness {

ServeScenarioOptions default_serve_options() {
  ServeScenarioOptions opt;
  opt.node.scheduler.workers = 2;
  opt.node.scheduler.max_batch = 4;
  opt.node.scheduler.batch_window = util::from_millis(4.0);
  opt.node.admission.max_queue = 4;
  opt.node.session.deadline = util::from_millis(400.0);
  // Gate tuned for the scenario's reduced-resolution clips: 32 px tiles
  // and a one-tile halo would each cover a third of a 192x112 frame, and
  // the foreground extractor's 8 px hull padding already provides the
  // border margin a halo exists for. Parallax deviation from the median
  // MV is coarser at this scale, hence the higher motion threshold.
  opt.node.session.roi_gate.tile_px = 16;
  opt.node.session.roi_gate.halo_tiles = 0;
  opt.node.session.roi_gate.motion_deviation = 12;
  // The horizon band (on by default) catches appearing far-field
  // objects, so the rotating stripe only backstops mid-frame surprises
  // and can be sparse.
  opt.node.session.roi_gate.scan_stripes = 8;
  // CI's differential job runs the label twice, DIVE_ROI_METADATA=0 and
  // =1, so every default-options scenario is exercised with the lane in
  // both states on every dispatch leg. Tests that pin roi_metadata
  // explicitly are unaffected.
  opt.roi_metadata = env_int("DIVE_ROI_METADATA", 0) != 0;
  return opt;
}

namespace {

/// Agent-side state of one session (the edge-side state lives in
/// serve::Session).
struct AgentState {
  const data::Clip* clip = nullptr;
  int clip_index = 0;
  std::unique_ptr<codec::Encoder> encoder;
  /// RoI metadata lane only: hull extraction mirroring the full DiVE
  /// agent (preprocess for ego-motion correction, then foreground hulls).
  std::unique_ptr<core::Preprocessor> preprocessor;
  core::ForegroundExtractor extractor;
  /// Most recent detections the agent physically holds, advanced by MOT
  /// on fallback frames.
  edge::DetectionList belief;
  std::uint64_t belief_frame = 0;
  bool has_belief = false;
  bool need_resync = false;
  /// Per-frame detections credited to the agent, for AP scoring.
  std::vector<edge::DetectionList> outcome;
  std::vector<bool> offloaded;
};

}  // namespace

ServeScenarioResult run_serve_scenario(const ServeScenarioOptions& options) {
  // Shared clip pool: session i plays clip (i % clip_pool); decoder and
  // jitter state stay strictly per-session.
  data::DatasetSpec spec;
  spec.width = options.width;
  spec.height = options.height;
  spec.focal_px = 403.0 * options.width / 512.0;
  spec.clip_count = std::max(1, options.clip_pool);
  spec.frames_per_clip = options.frames_per_session;
  spec.stop_and_go_fraction = options.stop_and_go_fraction;
  spec.turning_fraction = options.turning_fraction;
  spec.seed = options.seed;
  std::vector<data::Clip> pool;
  pool.reserve(static_cast<std::size_t>(spec.clip_count));
  for (int i = 0; i < spec.clip_count; ++i)
    pool.push_back(data::generate_clip(spec, i));

  serve::ServeNodeConfig node_cfg = options.node;
  node_cfg.seed = options.seed;  // the scenario seed governs everything
  serve::ServeNode node(node_cfg);
  node.set_obs(options.obs);

  const double fps = pool.front().fps;
  const util::SimTime frame_period = util::from_seconds(1.0 / fps);

  net::UplinkConfig uplink_cfg;
  uplink_cfg.propagation_delay = options.propagation_delay;
  uplink_cfg.head_timeout = options.head_timeout;

  std::vector<AgentState> agents(static_cast<std::size_t>(options.sessions));
  for (int i = 0; i < options.sessions; ++i) {
    auto trace = std::make_shared<net::ConstantBandwidth>(
        net::mbps_to_bytes_per_sec(options.mbps));
    auto uplink = std::make_shared<net::Uplink>(trace, uplink_cfg);
    // Observed uplinks record net.* spans and the frame ledger's
    // uplink-queue / transmit / propagation stages.
    uplink->set_obs(options.obs);
    node.open_session(std::move(uplink));

    AgentState& agent = agents[static_cast<std::size_t>(i)];
    agent.clip_index = i % spec.clip_count;
    agent.clip = &pool[static_cast<std::size_t>(agent.clip_index)];
    codec::EncoderConfig enc_cfg;
    enc_cfg.width = options.width;
    enc_cfg.height = options.height;
    enc_cfg.gop_length = 48;
    enc_cfg.threads = options.encoder_threads;
    agent.encoder = std::make_unique<codec::Encoder>(enc_cfg);
    if (options.roi_metadata) {
      agent.preprocessor = std::make_unique<core::Preprocessor>(
          core::PreprocessConfig{},
          util::Rng(options.seed).fork(static_cast<std::uint64_t>(i)).seed());
    }
    agent.outcome.resize(static_cast<std::size_t>(options.frames_per_session));
    agent.offloaded.assign(
        static_cast<std::size_t>(options.frames_per_session), false);
  }

  const core::OfflineTracker tracker;

  // Results in flight back to their agents, kept sorted by delivery time.
  std::vector<serve::JobResult> inbox;
  auto absorb = [&](std::vector<serve::JobResult> results) {
    for (serve::JobResult& r : results) {
      AgentState& agent = agents[r.session_id];
      agent.outcome[r.frame_index] = r.detections;
      agent.offloaded[r.frame_index] = true;
      inbox.push_back(std::move(r));
    }
    std::sort(inbox.begin(), inbox.end(),
              [](const serve::JobResult& a, const serve::JobResult& b) {
                return a.result_at_agent < b.result_at_agent;
              });
  };
  auto deliver_until = [&](util::SimTime now) {
    std::size_t popped = 0;
    while (popped < inbox.size() &&
           inbox[popped].result_at_agent <= now) {
      const serve::JobResult& r = inbox[popped];
      AgentState& agent = agents[r.session_id];
      if (!agent.has_belief || r.frame_index >= agent.belief_frame) {
        agent.belief = r.detections;
        agent.belief_frame = r.frame_index;
        agent.has_belief = true;
      }
      ++popped;
    }
    inbox.erase(inbox.begin(),
                inbox.begin() + static_cast<std::ptrdiff_t>(popped));
  };

  long total_sidecar_bytes = 0;

  // Global capture order: per-session phase offsets spread arrivals
  // inside each frame period (and make capture times unique), so the
  // (frame, session) double loop IS time order.
  for (int f = 0; f < options.frames_per_session; ++f) {
    for (int s = 0; s < options.sessions; ++s) {
      AgentState& agent = agents[static_cast<std::size_t>(s)];
      const util::SimTime capture =
          static_cast<util::SimTime>(f) * frame_period +
          static_cast<util::SimTime>(s) * frame_period / options.sessions;

      absorb(node.run_until(capture));
      deliver_until(capture);

      // Causal identity: minted here, in global capture order on the
      // driving thread, so sequence (= flow id) assignment is identical
      // for every encoder thread count. The context rides the frame
      // through encoder spans, the uplink, admission, and dispatch.
      obs::FrameTraceContext ctx;
      if (options.obs != nullptr) {
        ctx = options.obs->ledger.begin_frame(
            static_cast<std::uint32_t>(s), static_cast<std::uint64_t>(f),
            capture, capture + node_cfg.session.deadline);
        options.obs->tracer.set_sim_now(capture);
        if (options.timeline != nullptr &&
            capture >= options.timeline->next()) {
          node.metrics().publish(options.obs->metrics);
          options.timeline->sample(capture);
        }
      }
      agent.encoder->set_frame_context(ctx);

      const video::Frame& image =
          agent.clip->frames[static_cast<std::size_t>(f)].image;
      const codec::MotionField motion = agent.encoder->analyze_motion(image);
      if (agent.need_resync) agent.encoder->request_intra();
      codec::EncodedFrame encoded = agent.encoder->encode(
          image, options.base_qp, nullptr, motion.empty() ? nullptr : &motion);

      // RoI metadata lane: sidecar rides the uplink with the bitstream,
      // so its bytes count against the same bandwidth budget.
      std::vector<std::uint8_t> sidecar;
      if (options.roi_metadata) {
        const core::PreprocessResult pre =
            agent.preprocessor->run(motion, agent.clip->camera);
        const core::ForegroundResult fg =
            agent.extractor.extract(pre, agent.clip->camera);
        roi::RoiMetadata meta =
            roi::from_encoded(encoded, options.width, options.height);
        for (const auto& region : fg.regions)
          roi::add_region(meta, region.hull, region.mean_mv);
        sidecar = meta.serialize();
        total_sidecar_bytes += static_cast<long>(sidecar.size());
      }

      const util::SimTime ready =
          capture + options.latencies.analysis + options.latencies.encode;
      if (options.obs != nullptr) {
        // The modeled encode interval as a flow-linked span on the
        // session's track (encoder ScopedSpans are wall-clocked and
        // anchor at a sim instant; this is the sim-time stage).
        options.obs->tracer.span_at(
            "agent.encode", obs::kTrackSessionBase +
                                static_cast<std::uint32_t>(s),
            capture, ready,
            {{"frame", static_cast<long long>(f)},
             {"bytes", static_cast<long long>(encoded.bytes())}},
            ctx.flow_id());
        options.obs->ledger.stage(ctx, obs::FrameStage::kEncode, capture,
                                  ready);
        if (options.roi_metadata) {
          // Sidecar serialization is modeled as zero sim latency; the
          // zero-width stage still appears in the breakdown so sidecar
          // cost is named (its bytes are charged to transmit).
          options.obs->ledger.stage(ctx, obs::FrameStage::kSidecar, ready,
                                    ready);
        }
      }
      const net::TransmitResult tx =
          node.session(static_cast<std::uint32_t>(s))
              .uplink()
              .transmit_with_timeout(
                  static_cast<double>(encoded.bytes() + sidecar.size()),
                  ready, &ctx);

      bool fallback = false;
      if (!tx.delivered) {
        ++node.metrics().session(static_cast<std::uint32_t>(s)).dropped_uplink;
        if (options.obs != nullptr) {
          options.obs->ledger.outcome(ctx, obs::FrameOutcome::kDroppedUplink,
                                      tx.gave_up_at);
        }
        fallback = true;
      } else {
        serve::FrameJob job;
        job.session_id = static_cast<std::uint32_t>(s);
        job.frame_index = static_cast<std::uint64_t>(f);
        job.capture_time = capture;
        job.arrival = tx.arrival;
        job.data = std::move(encoded.data);
        job.roi_metadata = std::move(sidecar);
        job.trace = ctx;
        fallback = node.submit(std::move(job)) !=
                   serve::AdmissionVerdict::kAdmit;
      }

      if (fallback) {
        // Rejections degrade exactly like a link outage: MOT carries the
        // last known boxes forward and the decoder state at the edge is
        // behind, so the next upload must be intra.
        agent.need_resync = true;
        if (options.enable_offline_tracking && agent.has_belief) {
          agent.belief = tracker.track(agent.belief, motion, options.width,
                                       options.height);
        }
        agent.outcome[static_cast<std::size_t>(f)] = agent.belief;
      } else {
        agent.need_resync = false;
      }
    }
  }
  absorb(node.drain());
  if (options.obs != nullptr && options.timeline != nullptr) {
    // Final row after drain: node.drain() republished serve metrics, so
    // this snapshot carries the end-of-run totals.
    options.timeline->force_sample(
        static_cast<util::SimTime>(options.frames_per_session) *
        frame_period);
  }

  // Scoring: detections on raw frames are ground truth (paper protocol).
  const edge::ChromaDetector gt_detector{node_cfg.server.detector};
  std::vector<std::vector<edge::DetectionList>> truths(pool.size());
  for (std::size_t c = 0; c < pool.size(); ++c) {
    truths[c].reserve(pool[c].frames.size());
    for (const auto& rec : pool[c].frames)
      truths[c].push_back(gt_detector.detect(rec.image));
  }

  ServeScenarioResult result;
  edge::ApEvaluator all_eval;
  edge::ApEvaluator state_eval[3];
  for (int s = 0; s < options.sessions; ++s) {
    const AgentState& agent = agents[static_cast<std::size_t>(s)];
    const serve::SessionCounters& counters =
        node.metrics().session(static_cast<std::uint32_t>(s));
    edge::ApEvaluator session_eval;
    long offloaded = 0;
    for (int f = 0; f < options.frames_per_session; ++f) {
      const auto fi = static_cast<std::size_t>(f);
      const edge::DetectionList& truth =
          truths[static_cast<std::size_t>(agent.clip_index)][fi];
      session_eval.add_frame(agent.outcome[fi], truth);
      all_eval.add_frame(agent.outcome[fi], truth);
      const auto state =
          static_cast<std::size_t>(agent.clip->frames[fi].motion_state);
      state_eval[state].add_frame(agent.outcome[fi], truth);
      ++result.frames_by_state[state];
      if (agent.offloaded[fi]) ++offloaded;
    }

    ServeSessionResult sr;
    sr.id = static_cast<std::uint32_t>(s);
    sr.frames = options.frames_per_session;
    sr.offloaded = offloaded;
    sr.mot = sr.frames - offloaded;
    sr.dropped_queue = counters.dropped_queue;
    sr.dropped_deadline = counters.dropped_deadline;
    sr.dropped_uplink = counters.dropped_uplink;
    sr.map = session_eval.map();
    sr.mean_e2e_ms = counters.e2e_ms.mean();
    result.sessions.push_back(sr);
  }

  const serve::SessionCounters agg = node.metrics().aggregate();
  result.aggregate_map = all_eval.map();
  result.frames = static_cast<long>(options.sessions) *
                  options.frames_per_session;
  result.submitted = agg.submitted;
  result.admitted = agg.admitted;
  result.completed = agg.completed;
  result.dropped_queue = agg.dropped_queue;
  result.dropped_deadline = agg.dropped_deadline;
  result.dropped_uplink = agg.dropped_uplink;
  result.mot = result.frames - agg.completed;
  result.offload_fraction =
      result.frames > 0
          ? static_cast<double>(agg.completed) /
                static_cast<double>(result.frames)
          : 0.0;
  result.mean_e2e_ms = agg.e2e_ms.mean();
  result.p95_e2e_ms = agg.e2e_ms.empty() ? 0.0 : agg.e2e_ms.quantile(0.95);
  result.mean_wait_ms = agg.wait_ms.mean();
  result.mean_batch = agg.batch_size.mean();
  result.mean_queue_depth = agg.queue_depth.mean();
  for (int st = 0; st < 3; ++st) {
    if (result.frames_by_state[st] > 0)
      result.map_by_state[st] = state_eval[st].map();
  }
  result.gated = agg.gated;
  result.full_inference = agg.full_inference;
  result.propagated_boxes = agg.propagated_boxes;
  result.sidecar_bytes = total_sidecar_bytes;
  result.mean_gate_work = agg.gate_work.mean();
  result.mean_gated_pixel_fraction = agg.gate_pixel_fraction.mean();
  result.metrics = node.metrics();
  return result;
}

}  // namespace dive::harness
