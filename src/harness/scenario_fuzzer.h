// Scenario fuzzer: sweeps {hostile condition} x {motion state} x
// {bandwidth trace} seed tuples through the full agent -> uplink -> serve
// path and asserts per-condition accuracy / response-time envelopes
// (DESIGN.md §16). Every case is a deterministic function of its seed
// tuple, so a failing case is reproducible from its one-line repro string
// and a regression in any condition is visible per PR via the
// BENCH_scenarios.json matrix (bench/bench_scenarios.cpp, pinned in
// bench/baselines/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "harness/experiment.h"

namespace dive::harness {

/// Hostile conditions layered over the procedural world. kClear is the
/// seed-state daylight world; everything else composes the condition
/// models in video::SceneConditions / RenderOptions / CameraVibration.
enum class Condition : std::uint8_t {
  kClear = 0,
  kNight = 1,      ///< global luma scale + elevated sensor noise
  kFog = 2,        ///< depth-dependent contrast attenuation
  kRain = 3,       ///< light haze + deterministic droplet streaks
  kVibration = 4,  ///< high-frequency rotation jitter (stresses R-sampling)
  kTunnel = 5,     ///< scripted global luma steps (scene-change detection)
  kCrowd = 6,      ///< pedestrian-dense occlusion scenes
};
constexpr int kConditionCount = 7;

const char* to_string(Condition c);

/// Ego-motion profile pinned for the whole clip (the dataset generator's
/// profile mix collapsed onto one branch per case).
enum class MotionProfile : std::uint8_t {
  kStraight = 0,
  kStopAndGo = 1,  ///< covers the static (dwell) motion state
  kTurning = 2,
};
constexpr int kMotionProfileCount = 3;

const char* to_string(MotionProfile m);

/// Bandwidth-trace family for the simulated uplink.
enum class BandwidthProfile : std::uint8_t {
  kAmple = 0,        ///< comfortable constant uplink
  kConstrained = 1,  ///< tight mean with deep fluctuation
  kOutage = 2,       ///< periodic hard outages
};
constexpr int kBandwidthProfileCount = 3;

const char* to_string(BandwidthProfile b);

/// One point of the sweep; fully determines dataset + network + scheme.
struct ScenarioCase {
  Condition condition = Condition::kClear;
  MotionProfile motion = MotionProfile::kStraight;
  BandwidthProfile bandwidth = BandwidthProfile::kAmple;
  std::uint64_t seed = 7001;
};

/// One-line reproduction string for a case (printed for every envelope
/// violation; CI uploads them as artifacts).
std::string repro_line(const ScenarioCase& c);

/// Per-condition accuracy / response-time envelope. Bounds are asserted
/// per case; they encode "how much degradation this condition is allowed
/// to cost", not point estimates (the bench matrix tracks those).
struct ScenarioEnvelope {
  double min_map = 0.0;             ///< accuracy floor
  double max_mean_response_ms = 0.0;///< mean per-frame response ceiling
  double max_p95_response_ms = 0.0; ///< tail response ceiling
};

/// Envelope for a condition under a bandwidth profile (hostile networks
/// relax the accuracy floor and raise the latency ceilings).
ScenarioEnvelope envelope_for(Condition c, BandwidthProfile b);

/// Applies the condition preset to a dataset spec (scene conditions,
/// rain streaks, vibration amplitudes, crowd densities). Tunnel timings
/// are derived from the spec's clip duration.
void apply_condition(data::DatasetSpec& spec, Condition c);

/// Network scenario for a bandwidth profile.
NetworkScenario network_for(BandwidthProfile b);

/// Outcome of one case: the run's headline metrics plus the envelope it
/// was judged against and any violations (empty = pass).
struct ScenarioOutcome {
  ScenarioCase scenario;
  RunResult result;
  ScenarioEnvelope envelope;
  std::vector<std::string> violations;

  [[nodiscard]] bool pass() const { return violations.empty(); }
};

struct FuzzerOptions {
  /// Dimensions swept (full cross product x seeds_per_case). Empty
  /// vectors mean "all values of the dimension".
  std::vector<Condition> conditions;
  std::vector<MotionProfile> motions;
  std::vector<BandwidthProfile> bandwidths;
  int seeds_per_case = 1;
  std::uint64_t base_seed = 7001;

  // Clip shape per case (kept small: the sweep is the point, not the
  // per-case sample size).
  int width = 256;
  int height = 144;
  int frames_per_clip = 48;
  int clips_per_case = 1;
  double fps = 12.0;

  SchemeKind scheme = SchemeKind::kDive;
};

struct FuzzerReport {
  std::vector<ScenarioOutcome> outcomes;
  int failures = 0;
  /// repro_line() of every failing case, in sweep order.
  std::vector<std::string> failing_repro_lines;
};

/// Runs the sweep. Deterministic: same options -> same report.
FuzzerReport run_scenario_fuzzer(const FuzzerOptions& options = {});

}  // namespace dive::harness
