#include "harness/scenario_fuzzer.h"

#include <sstream>

namespace dive::harness {

const char* to_string(Condition c) {
  switch (c) {
    case Condition::kClear: return "clear";
    case Condition::kNight: return "night";
    case Condition::kFog: return "fog";
    case Condition::kRain: return "rain";
    case Condition::kVibration: return "vibration";
    case Condition::kTunnel: return "tunnel";
    case Condition::kCrowd: return "crowd";
  }
  return "?";
}

const char* to_string(MotionProfile m) {
  switch (m) {
    case MotionProfile::kStraight: return "straight";
    case MotionProfile::kStopAndGo: return "stop_and_go";
    case MotionProfile::kTurning: return "turning";
  }
  return "?";
}

const char* to_string(BandwidthProfile b) {
  switch (b) {
    case BandwidthProfile::kAmple: return "ample";
    case BandwidthProfile::kConstrained: return "constrained";
    case BandwidthProfile::kOutage: return "outage";
  }
  return "?";
}

std::string repro_line(const ScenarioCase& c) {
  std::ostringstream os;
  os << "scenario_fuzzer --condition " << to_string(c.condition)
     << " --motion " << to_string(c.motion) << " --bandwidth "
     << to_string(c.bandwidth) << " --seed " << c.seed;
  return os.str();
}

void apply_condition(data::DatasetSpec& spec, Condition c) {
  switch (c) {
    case Condition::kClear:
      break;
    case Condition::kNight:
      // Low light: dimmed illumination (which also compresses the
      // detector's chroma keys) plus elevated sensor noise.
      spec.conditions.luma_scale = 0.45;
      spec.luma_noise_amplitude = 4.0;
      break;
    case Condition::kFog:
      // ~30 m visibility half-life; far objects haze out first.
      spec.conditions.fog_attenuation = 0.035;
      spec.conditions.fog_luma = 155.0;
      break;
    case Condition::kRain:
      // Light haze + on-lens droplet streaks + wetter sensor noise.
      spec.conditions.fog_attenuation = 0.015;
      spec.rain_streak_density = 0.45;
      spec.luma_noise_amplitude = 2.5;
      break;
    case Condition::kVibration:
      // Drone/robot mount: ~0.2-0.25 deg rotation jitter at 9 Hz, far
      // above the road-surface wobble band. Phases are drawn per clip
      // from the clip's forked RNG stream (data/dataset.cpp).
      spec.vibration.pitch_amplitude = 0.0035;
      spec.vibration.yaw_amplitude = 0.004;
      spec.vibration.frequency = 9.0;
      break;
    case Condition::kTunnel: {
      // Scripted luma steps at ~30% and ~62% of the clip: entry and exit
      // are the two global steps the encoder's scene-change detection
      // must answer with forced I-frames.
      const double duration = spec.frames_per_clip / spec.fps;
      video::TunnelSegment seg;
      seg.enter_t = 0.30 * duration;
      seg.exit_t = 0.62 * duration;
      seg.luma_scale = 0.25;
      spec.conditions.tunnels = {seg};
      break;
    }
    case Condition::kCrowd:
      // Pedestrian-dense urban block: heavy mutual occlusion plus more
      // parked cars to occlude against.
      spec.pedestrians_per_100m = 16.0;
      spec.parked_cars_per_100m = 7.0;
      spec.moving_cars_per_100m = 3.0;
      break;
  }
}

NetworkScenario network_for(BandwidthProfile b) {
  NetworkScenario net;
  switch (b) {
    case BandwidthProfile::kAmple:
      net.mbps = 6.0;
      break;
    case BandwidthProfile::kConstrained:
      net.mbps = 1.2;
      net.fluctuation_depth = 0.5;
      break;
    case BandwidthProfile::kOutage:
      net.mbps = 2.5;
      net.outage_interval_s = 2.5;
      net.outage_duration_s = 0.8;
      net.first_outage_s = 1.0;
      break;
  }
  return net;
}

ScenarioEnvelope envelope_for(Condition c, BandwidthProfile b) {
  // Accuracy floors: how much of the clean-daylight mAP the condition is
  // allowed to cost. Conditions that erode the chroma signal (night,
  // fog, tunnel) get lower floors by design — the envelope asserts
  // "degrades, but the pipeline still tracks", not "nothing happened".
  ScenarioEnvelope env;
  switch (c) {
    case Condition::kClear: env.min_map = 0.60; break;
    case Condition::kNight: env.min_map = 0.30; break;
    // Fog has the heaviest seed tail (a turning clip can spend most of
    // its frames deep in the haze), so its floor sits lowest.
    case Condition::kFog: env.min_map = 0.20; break;
    case Condition::kRain: env.min_map = 0.40; break;
    case Condition::kVibration: env.min_map = 0.45; break;
    case Condition::kTunnel: env.min_map = 0.25; break;
    case Condition::kCrowd: env.min_map = 0.40; break;
  }
  // Response-time ceilings come from the network, not the weather: the
  // uplink is the bottleneck in every condition.
  switch (b) {
    case BandwidthProfile::kAmple:
      env.max_mean_response_ms = 250.0;
      env.max_p95_response_ms = 450.0;
      break;
    case BandwidthProfile::kConstrained:
      env.min_map *= 0.85;
      env.max_mean_response_ms = 450.0;
      env.max_p95_response_ms = 800.0;
      break;
    case BandwidthProfile::kOutage:
      env.min_map *= 0.70;
      env.max_mean_response_ms = 600.0;
      env.max_p95_response_ms = 1500.0;
      break;
  }
  return env;
}

namespace {

std::vector<Condition> all_conditions() {
  std::vector<Condition> v;
  for (int i = 0; i < kConditionCount; ++i)
    v.push_back(static_cast<Condition>(i));
  return v;
}

std::vector<MotionProfile> all_motions() {
  std::vector<MotionProfile> v;
  for (int i = 0; i < kMotionProfileCount; ++i)
    v.push_back(static_cast<MotionProfile>(i));
  return v;
}

std::vector<BandwidthProfile> all_bandwidths() {
  std::vector<BandwidthProfile> v;
  for (int i = 0; i < kBandwidthProfileCount; ++i)
    v.push_back(static_cast<BandwidthProfile>(i));
  return v;
}

data::DatasetSpec spec_for(const ScenarioCase& c, const FuzzerOptions& opt) {
  data::DatasetSpec spec;
  spec.kind = data::DatasetKind::kNuScenesLike;
  spec.width = opt.width;
  spec.height = opt.height;
  // Field-of-view-preserving focal scaling (nuScenes-like intrinsics).
  spec.focal_px = 1260.0 * opt.width / 1600.0;
  spec.fps = opt.fps;
  spec.clip_count = opt.clips_per_case;
  spec.frames_per_clip = opt.frames_per_clip;
  spec.seed = c.seed;
  // Collapse the profile mix onto the pinned motion branch.
  switch (c.motion) {
    case MotionProfile::kStraight:
      spec.stop_and_go_fraction = 0.0;
      spec.turning_fraction = 0.0;
      break;
    case MotionProfile::kStopAndGo:
      spec.stop_and_go_fraction = 1.0;
      spec.turning_fraction = 0.0;
      break;
    case MotionProfile::kTurning:
      spec.stop_and_go_fraction = 0.0;
      spec.turning_fraction = 1.0;
      break;
  }
  apply_condition(spec, c.condition);
  return spec;
}

void check_envelope(ScenarioOutcome& out) {
  const auto violate = [&out](const std::string& what) {
    out.violations.push_back(what + " [" + repro_line(out.scenario) + "]");
  };
  std::ostringstream os;
  if (out.result.map < out.envelope.min_map) {
    os.str("");
    os << "mAP " << out.result.map << " < floor " << out.envelope.min_map;
    violate(os.str());
  }
  if (out.result.mean_response_ms > out.envelope.max_mean_response_ms) {
    os.str("");
    os << "mean response " << out.result.mean_response_ms << " ms > ceiling "
       << out.envelope.max_mean_response_ms;
    violate(os.str());
  }
  if (out.result.p95_response_ms > out.envelope.max_p95_response_ms) {
    os.str("");
    os << "p95 response " << out.result.p95_response_ms << " ms > ceiling "
       << out.envelope.max_p95_response_ms;
    violate(os.str());
  }
}

}  // namespace

FuzzerReport run_scenario_fuzzer(const FuzzerOptions& options) {
  const std::vector<Condition> conditions =
      options.conditions.empty() ? all_conditions() : options.conditions;
  const std::vector<MotionProfile> motions =
      options.motions.empty() ? all_motions() : options.motions;
  const std::vector<BandwidthProfile> bandwidths =
      options.bandwidths.empty() ? all_bandwidths() : options.bandwidths;

  FuzzerReport report;
  for (std::size_t ci = 0; ci < conditions.size(); ++ci) {
    for (std::size_t mi = 0; mi < motions.size(); ++mi) {
      for (std::size_t bi = 0; bi < bandwidths.size(); ++bi) {
        for (int s = 0; s < options.seeds_per_case; ++s) {
          ScenarioCase c;
          c.condition = conditions[ci];
          c.motion = motions[mi];
          c.bandwidth = bandwidths[bi];
          // Stable per-tuple seed: independent of which subset of the
          // cross product a caller sweeps.
          c.seed = options.base_seed +
                   static_cast<std::uint64_t>(c.condition) * 9176ULL +
                   static_cast<std::uint64_t>(c.motion) * 389ULL +
                   static_cast<std::uint64_t>(c.bandwidth) * 53ULL +
                   static_cast<std::uint64_t>(s) * 100003ULL;

          const data::DatasetSpec spec = spec_for(c, options);
          const std::vector<data::Clip> clips = data::generate_dataset(spec);

          SchemeOptions scheme_opt;
          scheme_opt.seed = c.seed;
          ScenarioOutcome out;
          out.scenario = c;
          out.envelope = envelope_for(c.condition, c.bandwidth);
          out.result = run_experiment(options.scheme, clips,
                                      network_for(c.bandwidth), scheme_opt);
          check_envelope(out);
          if (!out.pass()) {
            ++report.failures;
            report.failing_repro_lines.push_back(repro_line(c));
          }
          report.outcomes.push_back(std::move(out));
        }
      }
    }
  }
  return report;
}

}  // namespace dive::harness
