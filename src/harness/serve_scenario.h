// Multi-agent serving scenario: N mobile agents stream synthetic driving
// clips to ONE edge node through per-agent uplinks; the node multiplexes
// them over a bounded inference worker pool (serve::ServeNode). This is
// the harness behind examples/multi_agent_serve and bench_serve_scaling,
// answering "how many agents can one edge node sustain before accuracy
// degrades".
//
// Each agent runs a deliberately simple pipeline (fixed-QP encode,
// head-of-line timeout upload, MOT fallback) so that the contended
// resource is the node's inference capacity, not the codec: a frame the
// node rejects — queue full or predicted deadline miss — degrades exactly
// like a link outage (Sec. III-E): the agent tracks the last known boxes
// forward with the frame's motion field and marks its next upload intra.
//
// Determinism: everything is seeded (clips, node, jitter streams), frames
// are processed in global capture order with per-session phase offsets,
// and the serve scheduler is event-driven — the same options produce
// bit-identical results on every run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.h"
#include "serve/node.h"
#include "util/sim_clock.h"

namespace dive::harness {

struct ServeScenarioOptions {
  int sessions = 4;
  int frames_per_session = 48;
  /// Distinct synthetic clips; session i plays clip (i % clip_pool).
  int clip_pool = 2;
  /// Trajectory profile mix of the clip pool (see data::DatasetSpec).
  /// Force 1.0 / 0.0 to pin every clip to one ego-motion scenario.
  double stop_and_go_fraction = 0.25;
  double turning_fraction = 0.2;
  /// Reduced resolution (multiples of 16) keeps 64-session sweeps fast.
  int width = 192;
  int height = 112;
  int base_qp = 28;
  /// Encoder worker threads per agent (0 = hardware threads, 1 = serial).
  /// Encoded bytes are bit-identical either way — the gated-determinism
  /// suite sweeps this to prove it holds through the RoI lane too.
  int encoder_threads = 0;
  double mbps = 2.0;  ///< per-agent uplink rate
  util::SimTime head_timeout = util::from_millis(350.0);
  util::SimTime propagation_delay = util::from_millis(10.0);
  core::AgentLatencies latencies;
  bool enable_offline_tracking = true;
  /// RoI metadata lane: every agent ships the compressed-domain sidecar
  /// (coded MV field + SKIP flags + foreground hulls) with each frame —
  /// its bytes ride the uplink — and the node infers through the
  /// per-session roi::RoiGate. Gate policy: node.session.roi_gate.
  bool roi_metadata = false;
  serve::ServeNodeConfig node;
  std::uint64_t seed = 99;
  /// Optional observability context attached to the node (per-session
  /// infer spans, admission-drop instants, serve.* metrics on drain).
  /// When set, the scenario additionally mints one FrameTraceContext per
  /// captured frame (global capture order -> deterministic sequence /
  /// flow ids) and records every stage into obs->ledger, so the trace
  /// export carries cross-track flow arrows and the ledger a per-frame
  /// latency breakdown + deadline-miss autopsy.
  obs::ObsContext* obs = nullptr;
  /// Optional deterministic time series (requires obs): the scenario
  /// republishes serve metrics and samples the registry at each of the
  /// snapshotter's sim-clock boundaries, plus a final row after drain.
  obs::MetricsSnapshotter* timeline = nullptr;
};

/// Defaults tuned so the 1 -> 64 sweep crosses the node's capacity:
/// 2 workers, batches of 4 with a 4 ms window, 4-deep session queues,
/// 400 ms deadline.
ServeScenarioOptions default_serve_options();

struct ServeSessionResult {
  std::uint32_t id = 0;
  long frames = 0;
  long offloaded = 0;  ///< frames answered by edge inference
  long mot = 0;        ///< frames covered by offline tracking
  long dropped_queue = 0;
  long dropped_deadline = 0;
  long dropped_uplink = 0;
  double map = 0.0;
  double mean_e2e_ms = 0.0;  ///< offloaded frames, capture -> result
};

struct ServeScenarioResult {
  std::vector<ServeSessionResult> sessions;

  // Aggregates over every frame of every session.
  double aggregate_map = 0.0;
  double offload_fraction = 0.0;
  double mean_e2e_ms = 0.0;
  double p95_e2e_ms = 0.0;
  double mean_wait_ms = 0.0;
  double mean_batch = 0.0;
  double mean_queue_depth = 0.0;
  long frames = 0;
  long submitted = 0;
  long admitted = 0;
  long completed = 0;
  long dropped_queue = 0;
  long dropped_deadline = 0;
  long dropped_uplink = 0;
  long mot = 0;

  /// Accuracy by ego-motion state, indexed by data::MotionState
  /// (0 = static / stop-and-go, 1 = straight, 2 = turning); -1 when the
  /// state never occurred.
  double map_by_state[3] = {-1.0, -1.0, -1.0};
  long frames_by_state[3] = {0, 0, 0};

  // RoI gating (all zero when the metadata lane is off).
  long gated = 0;              ///< completed frames inferred tile-gated
  long full_inference = 0;     ///< sidecar frames that ran full-frame
  long propagated_boxes = 0;   ///< background boxes carried by MV shift
  long sidecar_bytes = 0;      ///< total metadata bytes sent over uplinks
  double mean_gate_work = 0.0; ///< scheduler work fraction, sidecar frames
  double mean_gated_pixel_fraction = 0.0;  ///< gated frames only

  /// The node's metrics, for table output.
  serve::ServeMetrics metrics;
};

ServeScenarioResult run_serve_scenario(const ServeScenarioOptions& options);

}  // namespace dive::harness
