#include "geom/triangle_threshold.h"

#include <cmath>

namespace dive::geom {

TriangleResult triangle_threshold(const util::Histogram& hist) {
  const auto& counts = hist.counts();
  const std::size_t bins = counts.size();
  TriangleResult result;
  if (bins == 0 || hist.total() == 0) return result;

  const std::size_t peak = hist.peak_bin();
  const double peak_count = static_cast<double>(counts[peak]);

  // Find the farthest non-empty bin on each side; use the longer tail.
  std::size_t lo = 0;
  while (lo < peak && counts[lo] == 0) ++lo;
  std::size_t hi = bins - 1;
  while (hi > peak && counts[hi] == 0) --hi;

  const bool right_tail = (hi - peak) >= (peak - lo);
  const std::size_t tail = right_tail ? hi : lo;
  if (tail == peak) {
    result.bin = peak;
    result.threshold = hist.bin_lower(peak) + hist.bin_width();
    return result;
  }

  // Line from (peak, peak_count) to (tail, counts[tail]); pick the bin
  // between them with maximum perpendicular distance under the line.
  const double x0 = static_cast<double>(peak);
  const double y0 = peak_count;
  const double x1 = static_cast<double>(tail);
  const double y1 = static_cast<double>(counts[tail]);
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double len = std::sqrt(dx * dx + dy * dy);

  double best_dist = -1.0;
  std::size_t best_bin = peak;
  const std::size_t step_begin = right_tail ? peak : tail;
  const std::size_t step_end = right_tail ? tail : peak;
  for (std::size_t b = step_begin; b <= step_end; ++b) {
    const double x = static_cast<double>(b);
    const double y = static_cast<double>(counts[b]);
    // Signed distance; bins *below* the chord have the right sign.
    const double dist = (dy * x - dx * y + x1 * y0 - y1 * x0) / len;
    const double below = right_tail ? dist : -dist;
    if (below > best_dist) {
      best_dist = below;
      best_bin = b;
    }
  }
  result.bin = best_bin;
  result.threshold = hist.bin_lower(best_bin) + hist.bin_width();
  return result;
}

}  // namespace dive::geom
