#include "geom/pinhole_camera.h"

namespace dive::geom {

PinholeCamera PinholeCamera::scaled_to(int new_width, int new_height) const {
  const double scale = static_cast<double>(new_width) / width_;
  return PinholeCamera(f_ * scale, new_width, new_height);
}

}  // namespace dive::geom
