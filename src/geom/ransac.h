// Generic RANSAC (Fischler & Bolles, 1981) over an arbitrary model.
//
// DiVE uses RANSAC to solve the rotational-speed system of Eq. (7)
// robustly against noisy motion vectors selected by R-sampling
// (Sec. III-B3). The implementation is model-agnostic so tests can
// exercise it on simple line fits too.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace dive::geom {

struct RansacOptions {
  int iterations = 50;          ///< number of minimal-sample hypotheses
  int sample_size = 2;          ///< datums per minimal sample
  double inlier_threshold = 1.0;///< max residual to count as inlier
  int min_inliers = 2;          ///< reject models with fewer inliers
  bool refit_on_inliers = true; ///< final least-squares refit over inliers
};

template <typename Model>
struct RansacResult {
  Model model{};
  std::vector<std::size_t> inliers;  ///< indices of inlier datums
  double inlier_rms = 0.0;           ///< RMS residual over the inliers
};

/// Runs RANSAC over `n` datums.
///  * `fit(indices)`   -> optional<Model> from a subset of datum indices
///  * `error(model,i)` -> residual of datum i under the model
/// Returns the model with the most inliers (ties: lower inlier RMS),
/// refit on its full inlier set when `refit_on_inliers` is set.
template <typename Model>
std::optional<RansacResult<Model>> ransac(
    std::size_t n, const RansacOptions& opts, util::Rng& rng,
    const std::function<std::optional<Model>(std::span<const std::size_t>)>& fit,
    const std::function<double(const Model&, std::size_t)>& error) {
  if (n < static_cast<std::size_t>(opts.sample_size)) return std::nullopt;

  std::optional<RansacResult<Model>> best;
  std::vector<std::size_t> sample(static_cast<std::size_t>(opts.sample_size));

  for (int iter = 0; iter < opts.iterations; ++iter) {
    // Draw a minimal sample without replacement.
    for (auto& s : sample) {
      bool fresh = true;
      do {
        s = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(n) - 1));
        fresh = true;
        for (const auto& other : sample) {
          if (&other == &s) break;
          if (other == s) { fresh = false; break; }
        }
      } while (!fresh);
    }

    auto model = fit(sample);
    if (!model) continue;

    RansacResult<Model> cand;
    cand.model = *model;
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = error(*model, i);
      if (e <= opts.inlier_threshold) {
        cand.inliers.push_back(i);
        sq += e * e;
      }
    }
    if (cand.inliers.size() < static_cast<std::size_t>(opts.min_inliers))
      continue;
    cand.inlier_rms =
        std::sqrt(sq / static_cast<double>(cand.inliers.size()));

    const bool better =
        !best || cand.inliers.size() > best->inliers.size() ||
        (cand.inliers.size() == best->inliers.size() &&
         cand.inlier_rms < best->inlier_rms);
    if (better) best = std::move(cand);
  }

  if (best && opts.refit_on_inliers && !best->inliers.empty()) {
    // Two refit rounds with inlier re-selection (mini-IRLS): a refit can
    // both shed marginal outliers and adopt points the minimal-sample
    // hypothesis missed, which stabilizes the final model.
    for (int round = 0; round < 2; ++round) {
      auto refit = fit(best->inliers);
      if (!refit) break;
      RansacResult<Model> updated;
      updated.model = *refit;
      double sq = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double e = error(updated.model, i);
        if (e <= opts.inlier_threshold) {
          updated.inliers.push_back(i);
          sq += e * e;
        }
      }
      if (updated.inliers.size() < static_cast<std::size_t>(opts.min_inliers))
        break;
      updated.inlier_rms =
          std::sqrt(sq / static_cast<double>(updated.inliers.size()));
      const bool same = updated.inliers == best->inliers;
      *best = std::move(updated);
      if (same) break;
    }
  }
  return best;
}

}  // namespace dive::geom
