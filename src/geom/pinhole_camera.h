// Pinhole camera model and rigid camera pose (Sec. II-C of the paper).
//
// Conventions (match the paper's equations):
//  * Camera frame: x right, y DOWN, z forward (optical axis).
//  * Image coordinates are *centered*: the principal point is (0, 0), so a
//    camera-frame point (X, Y, Z) projects to (f X / Z, f Y / Z) — Eq. (1).
//  * Pixel coordinates put the origin at the top-left of the frame;
//    `to_pixel` / `to_centered` convert between the two.
//  * World frame: also y-down. The ground plane lies at Y = +camera_height,
//    i.e. "the same height" in the paper's Observation 2 means equal
//    world-frame Y.
#pragma once

#include <optional>

#include "geom/vec.h"

namespace dive::geom {

/// Rigid pose of a camera in the world: position plus pitch (about x) and
/// yaw (about y). Roll is not modelled — the paper's agents are wheeled
/// vehicles (Δφz = 0 in Eq. (6)).
struct CameraPose {
  Vec3 position;        ///< camera center in world coordinates
  double pitch = 0.0;   ///< rotation about camera x-axis, radians
  double yaw = 0.0;     ///< rotation about camera y-axis, radians

  /// Rotation taking camera-frame directions to world-frame directions.
  [[nodiscard]] Mat3 camera_to_world() const {
    return Mat3::rot_y(yaw) * Mat3::rot_x(pitch);
  }

  /// Transform a world point into this camera's frame.
  [[nodiscard]] Vec3 world_to_camera(Vec3 p_world) const {
    return camera_to_world().transpose() * (p_world - position);
  }

  /// Transform a camera-frame point into the world.
  [[nodiscard]] Vec3 camera_to_world_point(Vec3 p_cam) const {
    return camera_to_world() * p_cam + position;
  }
};

class PinholeCamera {
 public:
  PinholeCamera(double focal_px, int width, int height)
      : f_(focal_px), width_(width), height_(height) {}

  [[nodiscard]] double focal() const { return f_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Project a camera-frame point to centered image coordinates (Eq. 1).
  /// Empty when the point is at or behind the image plane (Z <= z_near).
  [[nodiscard]] std::optional<Vec2> project(Vec3 p_cam,
                                            double z_near = 0.1) const {
    if (p_cam.z <= z_near) return std::nullopt;
    return Vec2{f_ * p_cam.x / p_cam.z, f_ * p_cam.y / p_cam.z};
  }

  /// Back-project a centered image point at depth Z into the camera frame.
  [[nodiscard]] Vec3 back_project(Vec2 img, double depth) const {
    return {img.x * depth / f_, img.y * depth / f_, depth};
  }

  /// Centered image coords -> pixel coords (origin at top-left).
  [[nodiscard]] Vec2 to_pixel(Vec2 centered) const {
    return {centered.x + width_ / 2.0, centered.y + height_ / 2.0};
  }
  /// Pixel coords -> centered image coords.
  [[nodiscard]] Vec2 to_centered(Vec2 pixel) const {
    return {pixel.x - width_ / 2.0, pixel.y - height_ / 2.0};
  }

  [[nodiscard]] bool in_frame(Vec2 pixel) const {
    return pixel.x >= 0.0 && pixel.x < width_ && pixel.y >= 0.0 &&
           pixel.y < height_;
  }

  /// A camera with the same field of view at a different resolution
  /// (focal length scales with width). Used to run the evaluation at
  /// reduced resolution while preserving projective geometry.
  [[nodiscard]] PinholeCamera scaled_to(int new_width, int new_height) const;

 private:
  double f_;
  int width_;
  int height_;
};

}  // namespace dive::geom
