#include "geom/least_squares.h"

#include <cmath>

namespace dive::geom {

std::optional<Vec2> solve_least_squares_2(std::span<const LinearRow2> rows) {
  if (rows.size() < 2) return std::nullopt;
  // Normal equations: [saa sab; sab sbb] [u; v] = [sac; sbc].
  double saa = 0, sab = 0, sbb = 0, sac = 0, sbc = 0;
  for (const auto& r : rows) {
    saa += r.a * r.a;
    sab += r.a * r.b;
    sbb += r.b * r.b;
    sac += r.a * r.c;
    sbc += r.b * r.c;
  }
  const double det = saa * sbb - sab * sab;
  const double scale = saa + sbb;
  // Rank test relative to the magnitude of the system.
  if (std::abs(det) <= 1e-12 * scale * scale + 1e-30) return std::nullopt;
  return Vec2{(sac * sbb - sbc * sab) / det, (sbc * saa - sac * sab) / det};
}

double residual(const LinearRow2& row, Vec2 s) {
  return std::abs(row.a * s.x + row.b * s.y - row.c);
}

double rms_residual(std::span<const LinearRow2> rows, Vec2 s) {
  if (rows.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : rows) {
    const double e = residual(r, s);
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(rows.size()));
}

}  // namespace dive::geom
