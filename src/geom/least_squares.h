// Dense least-squares solvers for small systems.
//
// DiVE's rotational-component elimination (Sec. III-B3) solves the
// over-determined linear system of Eq. (7):
//     x_q f Δφx + y_q f Δφy = y_q vx_q - x_q vy_q
// one equation per selected motion vector, two unknowns. We solve via the
// normal equations, which is robust at this size.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geom/vec.h"

namespace dive::geom {

/// One row of a 2-unknown linear system: a*u + b*v = c.
struct LinearRow2 {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// Least-squares solution (u, v) of an over-determined 2-unknown system.
/// Empty when the system is rank-deficient (all rows parallel).
std::optional<Vec2> solve_least_squares_2(std::span<const LinearRow2> rows);

/// Residual |a*u + b*v - c| of one row at a candidate solution.
double residual(const LinearRow2& row, Vec2 solution);

/// Root-mean-square residual over all rows.
double rms_residual(std::span<const LinearRow2> rows, Vec2 solution);

}  // namespace dive::geom
