// Point-in-polygon and polygon rasterization helpers.
//
// Foreground extraction tests macroblock centers against the ground
// convex hull to find the foreground seed set S^t (Sec. III-C1), and the
// QP assigner rasterizes object hulls into the macroblock QP offset map.
#pragma once

#include <vector>

#include "geom/box.h"
#include "geom/vec.h"

namespace dive::geom {

/// True if `p` lies inside (or on the boundary of) the polygon.
/// Even-odd crossing rule with an explicit boundary check; vertices may be
/// in either winding order.
bool point_in_polygon(Vec2 p, const std::vector<Vec2>& polygon);

/// Bounding box of a polygon.
Box polygon_bounds(const std::vector<Vec2>& polygon);

/// Visits every integer cell (cx, cy) of a `grid_w` x `grid_h` grid whose
/// center lies inside the polygon; returns the cell list.
std::vector<std::pair<int, int>> rasterize_polygon(
    const std::vector<Vec2>& polygon, int grid_w, int grid_h);

}  // namespace dive::geom
