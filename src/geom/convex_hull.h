// Convex hull construction.
//
// The paper generates convex hulls twice: for the estimated ground region
// and for each merged foreground cluster (Sec. III-C), citing Sklansky's
// linear-time polygon hull. For general (unordered) macroblock point sets
// we use Andrew's monotone chain; for already-ordered simple polygons we
// provide Sklansky's scan, matching the paper's reference.
#pragma once

#include <vector>

#include "geom/vec.h"

namespace dive::geom {

/// Andrew's monotone chain over an unordered point set. Returns hull
/// vertices in counter-clockwise order (in a y-down frame this appears
/// clockwise on screen). Collinear boundary points are dropped. Degenerate
/// inputs (<3 distinct points) return the distinct points.
std::vector<Vec2> convex_hull(std::vector<Vec2> points);

/// Sklansky's 1972 scan for a *simple polygon* given in vertex order.
/// Runs one pass with a stack of provisional hull vertices. Input must be
/// a simple (non self-intersecting) polygon; unordered point clouds should
/// use convex_hull() instead.
std::vector<Vec2> sklansky_hull(const std::vector<Vec2>& polygon);

/// Area of a simple polygon (shoelace, absolute value).
double polygon_area(const std::vector<Vec2>& polygon);

}  // namespace dive::geom
