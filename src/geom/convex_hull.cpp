#include "geom/convex_hull.h"

#include <algorithm>
#include <cmath>

namespace dive::geom {

namespace {
double cross3(Vec2 o, Vec2 a, Vec2 b) { return (a - o).cross(b - o); }
}  // namespace

std::vector<Vec2> convex_hull(std::vector<Vec2> pts) {
  std::sort(pts.begin(), pts.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n < 3) return pts;

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && cross3(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) --k;
    hull[k++] = pts[i];
  }
  // Upper hull.
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {
    while (k >= t && cross3(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

std::vector<Vec2> sklansky_hull(const std::vector<Vec2>& polygon) {
  const std::size_t n = polygon.size();
  if (n < 3) return polygon;

  // Determine orientation so the convexity test has a consistent sign.
  double area2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = polygon[i];
    const Vec2 b = polygon[(i + 1) % n];
    area2 += a.cross(b);
  }
  const double sign = area2 >= 0.0 ? 1.0 : -1.0;

  // Start from the leftmost-lowest vertex, which is guaranteed on the hull.
  std::size_t start = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (polygon[i].x < polygon[start].x ||
        (polygon[i].x == polygon[start].x && polygon[i].y < polygon[start].y))
      start = i;
  }

  std::vector<Vec2> stack;
  stack.reserve(n);
  for (std::size_t step = 0; step <= n; ++step) {
    const Vec2 p = polygon[(start + step) % n];
    while (stack.size() >= 2 &&
           sign * cross3(stack[stack.size() - 2], stack.back(), p) <= 0.0) {
      stack.pop_back();
    }
    if (step < n) stack.push_back(p);
  }
  // The wrap-around step may have exposed a concavity at the seam; one
  // final sweep from the anchor removes it.
  while (stack.size() >= 3 &&
         sign * cross3(stack[stack.size() - 2], stack.back(), stack[0]) <=
             0.0) {
    stack.pop_back();
  }
  return stack;
}

double polygon_area(const std::vector<Vec2>& polygon) {
  const std::size_t n = polygon.size();
  if (n < 3) return 0.0;
  double area2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    area2 += polygon[i].cross(polygon[(i + 1) % n]);
  }
  return std::abs(area2) * 0.5;
}

}  // namespace dive::geom
