// Small fixed-size vector/matrix value types used across the geometry,
// rendering, and motion-vector pipelines. Deliberately minimal: only the
// operations this project needs, all constexpr-friendly.
#pragma once

#include <cmath>

namespace dive::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product — the signed parallelogram area.
  [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] constexpr double dot(Vec3 o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

constexpr Vec3 operator*(double s, Vec3 v) { return v * s; }

/// Row-major 3x3 matrix. Used for camera rotations.
struct Mat3 {
  double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  static constexpr Mat3 identity() { return {}; }

  /// Rotation about the x-axis (pitch), right-handed, radians.
  static Mat3 rot_x(double a) {
    Mat3 r;
    const double c = std::cos(a), s = std::sin(a);
    r.m[1][1] = c; r.m[1][2] = -s;
    r.m[2][1] = s; r.m[2][2] = c;
    return r;
  }
  /// Rotation about the y-axis (yaw).
  static Mat3 rot_y(double a) {
    Mat3 r;
    const double c = std::cos(a), s = std::sin(a);
    r.m[0][0] = c; r.m[0][2] = s;
    r.m[2][0] = -s; r.m[2][2] = c;
    return r;
  }
  /// Rotation about the z-axis (roll).
  static Mat3 rot_z(double a) {
    Mat3 r;
    const double c = std::cos(a), s = std::sin(a);
    r.m[0][0] = c; r.m[0][1] = -s;
    r.m[1][0] = s; r.m[1][1] = c;
    return r;
  }

  Vec3 operator*(Vec3 v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  Mat3 operator*(const Mat3& o) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        double s = 0.0;
        for (int k = 0; k < 3; ++k) s += m[i][k] * o.m[k][j];
        r.m[i][j] = s;
      }
    return r;
  }

  [[nodiscard]] Mat3 transpose() const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
    return r;
  }
};

}  // namespace dive::geom
