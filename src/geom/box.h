// Axis-aligned 2-D boxes (pixel space) and IoU math used by the detector,
// the AP evaluator, and the motion-vector tracker.
#pragma once

#include <algorithm>
#include <vector>

#include "geom/vec.h"

namespace dive::geom {

/// Half-open axis-aligned box: [x0, x1) x [y0, y1), pixel coordinates.
struct Box {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

  constexpr bool operator==(const Box&) const = default;

  [[nodiscard]] constexpr double width() const { return x1 - x0; }
  [[nodiscard]] constexpr double height() const { return y1 - y0; }
  [[nodiscard]] constexpr double area() const {
    return width() > 0.0 && height() > 0.0 ? width() * height() : 0.0;
  }
  [[nodiscard]] constexpr bool empty() const {
    return width() <= 0.0 || height() <= 0.0;
  }
  [[nodiscard]] constexpr Vec2 center() const {
    return {(x0 + x1) * 0.5, (y0 + y1) * 0.5};
  }
  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }

  /// Translate by a motion vector.
  [[nodiscard]] constexpr Box shifted(Vec2 d) const {
    return {x0 + d.x, y0 + d.y, x1 + d.x, y1 + d.y};
  }

  /// Clip to the frame rectangle [0,w) x [0,h).
  [[nodiscard]] Box clipped(double w, double h) const {
    return {std::clamp(x0, 0.0, w), std::clamp(y0, 0.0, h),
            std::clamp(x1, 0.0, w), std::clamp(y1, 0.0, h)};
  }

  [[nodiscard]] Box intersect(const Box& o) const {
    return {std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1),
            std::min(y1, o.y1)};
  }

  /// Smallest box containing both (ignores empty operands).
  [[nodiscard]] Box unite(const Box& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(x0, o.x0), std::min(y0, o.y0), std::max(x1, o.x1),
            std::max(y1, o.y1)};
  }
};

/// Intersection-over-union; 0 when either box is empty.
double iou(const Box& a, const Box& b);

/// Bounding box of a point set (empty Box for an empty set).
Box bounding_box(const std::vector<Vec2>& points);

}  // namespace dive::geom
