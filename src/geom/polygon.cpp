#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

namespace dive::geom {

namespace {
/// Distance from p to segment ab is ~0 (boundary tolerance).
bool on_segment(Vec2 p, Vec2 a, Vec2 b, double eps = 1e-9) {
  const Vec2 ab = b - a;
  const Vec2 ap = p - a;
  const double cross = ab.cross(ap);
  if (std::abs(cross) > eps * (ab.norm() + 1.0)) return false;
  const double dot = ap.dot(ab);
  return dot >= -eps && dot <= ab.norm2() + eps;
}
}  // namespace

bool point_in_polygon(Vec2 p, const std::vector<Vec2>& poly) {
  const std::size_t n = poly.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (on_segment(p, poly[i], poly[(i + 1) % n])) return true;
  }
  // Even-odd ray casting along +x.
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[j];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double x_at = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

Box polygon_bounds(const std::vector<Vec2>& polygon) {
  return bounding_box(polygon);
}

std::vector<std::pair<int, int>> rasterize_polygon(
    const std::vector<Vec2>& polygon, int grid_w, int grid_h) {
  std::vector<std::pair<int, int>> cells;
  if (polygon.size() < 3) return cells;
  const Box b = polygon_bounds(polygon);
  const int cx0 = std::max(0, static_cast<int>(std::floor(b.x0)));
  const int cy0 = std::max(0, static_cast<int>(std::floor(b.y0)));
  const int cx1 = std::min(grid_w - 1, static_cast<int>(std::ceil(b.x1)));
  const int cy1 = std::min(grid_h - 1, static_cast<int>(std::ceil(b.y1)));
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const Vec2 center{cx + 0.5, cy + 0.5};
      if (point_in_polygon(center, polygon)) cells.emplace_back(cx, cy);
    }
  }
  return cells;
}

}  // namespace dive::geom
