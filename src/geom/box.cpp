#include "geom/box.h"

namespace dive::geom {

double iou(const Box& a, const Box& b) {
  const double inter = a.intersect(b).area();
  if (inter <= 0.0) return 0.0;
  const double uni = a.area() + b.area() - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

Box bounding_box(const std::vector<Vec2>& points) {
  if (points.empty()) return {};
  Box b{points[0].x, points[0].y, points[0].x, points[0].y};
  for (const auto& p : points) {
    b.x0 = std::min(b.x0, p.x);
    b.y0 = std::min(b.y0, p.y);
    b.x1 = std::max(b.x1, p.x);
    b.y1 = std::max(b.y1, p.y);
  }
  return b;
}

}  // namespace dive::geom
