// Triangle (Zack) automatic threshold selection.
//
// DiVE statistically establishes the ground-magnitude threshold with the
// Triangle method (Zack et al., 1977; Sec. III-C1 of the paper): draw a
// line from the histogram peak to the far tail end, and place the
// threshold at the bin with the largest perpendicular distance below that
// line. Works well for the strongly unimodal distribution of normalized
// ground-MV magnitudes with a long foreground/noise tail.
#pragma once

#include <cstddef>

#include "util/histogram.h"

namespace dive::util {
class Histogram;
}

namespace dive::geom {

struct TriangleResult {
  std::size_t bin = 0;     ///< selected threshold bin
  double threshold = 0.0;  ///< value at the upper edge of the threshold bin
};

/// Applies the Triangle method on the side of the peak with the longer
/// tail. Returns the peak edge when the histogram is degenerate (empty or
/// single-bin).
TriangleResult triangle_threshold(const util::Histogram& hist);

}  // namespace dive::geom
