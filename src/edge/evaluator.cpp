#include "edge/evaluator.h"

#include <algorithm>

namespace dive::edge {

void ApEvaluator::add_frame(const DetectionList& detections,
                            const DetectionList& truths) {
  ++frames_;
  for (int c = 0; c < video::kNumDetectableClasses; ++c) {
    const auto cls = static_cast<video::ObjectClass>(c);
    ClassState& st = state(cls);

    std::vector<const Detection*> gt;
    for (const auto& t : truths)
      if (t.cls == cls) gt.push_back(&t);
    st.gt_total += static_cast<int>(gt.size());

    std::vector<const Detection*> dets;
    for (const auto& d : detections)
      if (d.cls == cls) dets.push_back(&d);
    std::sort(dets.begin(), dets.end(),
              [](const Detection* a, const Detection* b) {
                return a->confidence > b->confidence;
              });

    std::vector<bool> matched(gt.size(), false);
    for (const Detection* d : dets) {
      double best_iou = 0.0;
      std::size_t best_idx = gt.size();
      for (std::size_t g = 0; g < gt.size(); ++g) {
        if (matched[g]) continue;
        const double i = geom::iou(d->box, gt[g]->box);
        if (i > best_iou) {
          best_iou = i;
          best_idx = g;
        }
      }
      const bool tp =
          best_idx < gt.size() && best_iou >= config_.iou_threshold;
      if (tp) matched[best_idx] = true;
      st.scored.emplace_back(d->confidence, tp);
    }
  }
}

double average_precision(std::vector<std::pair<double, bool>> scored,
                         int gt_total) {
  if (gt_total <= 0) return 0.0;
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Precision/recall points, then the interpolated (monotone envelope)
  // area — VOC "all points" AP.
  std::vector<double> precision;
  std::vector<double> recall;
  precision.reserve(scored.size());
  recall.reserve(scored.size());
  int tp = 0;
  int fp = 0;
  for (const auto& [conf, is_tp] : scored) {
    if (is_tp) ++tp; else ++fp;
    precision.push_back(static_cast<double>(tp) / (tp + fp));
    recall.push_back(static_cast<double>(tp) / gt_total);
  }
  // Monotone non-increasing precision envelope from the right.
  for (std::size_t i = precision.size(); i-- > 1;) {
    precision[i - 1] = std::max(precision[i - 1], precision[i]);
  }
  double ap = 0.0;
  double prev_recall = 0.0;
  for (std::size_t i = 0; i < precision.size(); ++i) {
    ap += (recall[i] - prev_recall) * precision[i];
    prev_recall = recall[i];
  }
  return ap;
}

double ApEvaluator::ap(video::ObjectClass cls) const {
  const ClassState& st = state(cls);
  return average_precision(st.scored, st.gt_total);
}

double ApEvaluator::map() const {
  // Average over classes that actually appear in the ground truth.
  double acc = 0.0;
  int n = 0;
  for (int c = 0; c < video::kNumDetectableClasses; ++c) {
    const auto cls = static_cast<video::ObjectClass>(c);
    if (state(cls).gt_total > 0) {
      acc += ap(cls);
      ++n;
    }
  }
  return n > 0 ? acc / n : 0.0;
}

int ApEvaluator::ground_truth_count(video::ObjectClass cls) const {
  return state(cls).gt_total;
}

int ApEvaluator::detection_count(video::ObjectClass cls) const {
  return static_cast<int>(state(cls).scored.size());
}

void ApEvaluator::reset() {
  for (auto& st : states_) {
    st.scored.clear();
    st.gt_total = 0;
  }
  frames_ = 0;
}

}  // namespace dive::edge
