// Chroma-signature object detector — the reproduction's stand-in for the
// edge DNN (see DESIGN.md substitution table).
//
// Scene objects are rendered with class-distinctive chroma: cars push the
// U plane up, pedestrians push the V plane up, while background materials
// stay near neutral. The detector thresholds the chroma planes, extracts
// connected components, and scores each blob by its mean chroma excess.
// Codec quantization erodes chroma contrast, so detection quality
// degrades smoothly (and monotonically) with compression — the property
// the paper's AP-vs-QP and AP-vs-bandwidth experiments rely on.
#pragma once

#include "edge/detection.h"
#include "video/frame.h"

namespace dive::edge {

struct DetectorConfig {
  int chroma_excess_threshold = 18;  ///< min (plane - 128) to fire
  int cross_suppression = 150;       ///< reject if the *other* plane exceeds this
  int min_area_chroma_px = 10;       ///< min blob size (chroma-res pixels)
  double confidence_scale = 26.0;    ///< excess that maps to confidence 1.0
};

class ChromaDetector {
 public:
  explicit ChromaDetector(DetectorConfig config = {}) : config_(config) {}

  [[nodiscard]] const DetectorConfig& config() const { return config_; }

  /// Detects cars and pedestrians; boxes are in luma pixel coordinates,
  /// sorted by descending confidence.
  [[nodiscard]] DetectionList detect(const video::Frame& frame) const;

 private:
  DetectorConfig config_;
};

}  // namespace dive::edge
