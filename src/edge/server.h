// Edge-server model: decode + DNN inference + downlink return, with a
// simple latency model ("serverless edge computing" entity of Sec. II-A).
// The server is stateful because inter frames reference its decoder state.
#pragma once

#include <cstdint>
#include <span>

#include "codec/decoder.h"
#include "edge/detection.h"
#include "edge/detector.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace dive::edge {

struct ServerConfig {
  util::SimTime decode_latency = util::from_millis(3.0);
  util::SimTime inference_latency = util::from_millis(18.0);
  double inference_jitter_ms = 2.0;  ///< uniform +- jitter
  util::SimTime downlink_delay = util::from_millis(8.0);
  DetectorConfig detector;
};

/// Outcome of processing one uploaded frame.
struct InferenceResult {
  DetectionList detections;
  video::Frame decoded;
  util::SimTime result_at_agent = 0;  ///< when the agent holds the answer
};

class EdgeServer {
 public:
  EdgeServer(ServerConfig config, std::uint64_t seed)
      : config_(config), detector_(config.detector), rng_(seed) {}

  /// Decodes an uploaded frame that arrived at `arrival`, runs the
  /// detector, and reports when the result lands back on the agent.
  InferenceResult process(std::span<const std::uint8_t> data,
                          util::SimTime arrival);

  /// Runs the detector only (no codec) — used for the raw-frame
  /// ground-truth protocol and for DDS region re-inference.
  [[nodiscard]] DetectionList infer_raw(const video::Frame& frame) const {
    return detector_.detect(frame);
  }

  [[nodiscard]] const ChromaDetector& detector() const { return detector_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] bool has_reference() const { return decoder_.has_reference(); }

 private:
  ServerConfig config_;
  codec::Decoder decoder_;
  ChromaDetector detector_;
  util::Rng rng_;
};

}  // namespace dive::edge
