// Edge-server model: decode + DNN inference + downlink return, with a
// simple latency model ("serverless edge computing" entity of Sec. II-A).
// The server is stateful because inter frames reference its decoder state.
//
// Determinism contract (multi-session serving): the inference jitter
// applied to the k-th frame a server processes (k = 0, 1, ...) is a pure
// function of (seed, k) — each frame forks a fresh stream off the base
// seed instead of consuming a shared sequential engine. A serving layer
// that multiplexes many sessions therefore produces per-session results
// that are independent of scheduling order: give every session's server a
// distinct seed (serve:: uses util::Rng(node_seed).fork(session_id)) and
// a session's jitter sequence never shifts when other sessions process
// more or fewer frames, or when batches interleave sessions differently.
#pragma once

#include <cstdint>
#include <span>

#include "codec/decoder.h"
#include "edge/detection.h"
#include "edge/detector.h"
#include "obs/frame_context.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace dive::obs {
struct ObsContext;
}  // namespace dive::obs

namespace dive::edge {

struct ServerConfig {
  util::SimTime decode_latency = util::from_millis(3.0);
  util::SimTime inference_latency = util::from_millis(18.0);
  double inference_jitter_ms = 2.0;  ///< uniform +- jitter
  util::SimTime downlink_delay = util::from_millis(8.0);
  DetectorConfig detector;
};

/// Outcome of processing one uploaded frame.
struct InferenceResult {
  DetectionList detections;
  video::Frame decoded;
  util::SimTime result_at_agent = 0;  ///< when the agent holds the answer
};

class EdgeServer {
 public:
  EdgeServer(ServerConfig config, std::uint64_t seed)
      : config_(config), detector_(config.detector), rng_(seed) {}

  /// Decodes an uploaded frame that arrived at `arrival`, runs the
  /// detector, and reports when the result lands back on the agent. The
  /// jitter applied is inference_jitter(k) for the k-th process() call.
  InferenceResult process(std::span<const std::uint8_t> data,
                          util::SimTime arrival);

  /// Decodes + detects without applying the latency model (and without
  /// consuming jitter): the serving layer schedules decode/inference
  /// timing itself and pairs the result with inference_jitter().
  DetectionList decode_and_detect(std::span<const std::uint8_t> data);

  /// Decodes an uploaded frame, advancing the decoder reference state,
  /// without detecting and without the latency model. RoI gating decodes
  /// through this and then drives the detector itself on masked frames.
  codec::DecodedFrame decode(std::span<const std::uint8_t> data);

  /// Consumes one value from the sequential jitter stream — exactly what
  /// process() does internally for its k-th call. A gating front-end that
  /// replaces process() calls this once per frame so the (seed, k)
  /// pairing, and thus every downstream timestamp, is unchanged.
  util::SimTime take_jitter() { return inference_jitter(processed_++); }

  /// Inference jitter of the k-th frame — a pure function of (seed, k),
  /// uniform in [-inference_jitter_ms, +inference_jitter_ms]. See the
  /// determinism contract above.
  [[nodiscard]] util::SimTime inference_jitter(std::uint64_t frame_index) const;

  /// Runs the detector only (no codec) — used for the raw-frame
  /// ground-truth protocol and for DDS region re-inference.
  [[nodiscard]] DetectionList infer_raw(const video::Frame& frame) const {
    return detector_.detect(frame);
  }

  [[nodiscard]] const ChromaDetector& detector() const { return detector_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] bool has_reference() const { return decoder_.has_reference(); }
  /// Frames consumed through process() (decode_and_detect not counted;
  /// the serving layer indexes jitter by its own per-session counter).
  [[nodiscard]] std::uint64_t frames_processed() const { return processed_; }

  /// Attaches an observability context (non-owning, null detaches):
  /// "edge.*" counters and a per-frame service span on obs::kTrackEdge
  /// spanning arrival -> result-at-agent (simulated time).
  void set_obs(obs::ObsContext* obs) { obs_ = obs; }

  /// Causal identity of the frame the next process() call serves: its
  /// edge spans join the frame's flow and its inference/result stages
  /// land in the ledger. Set per frame by the agent; an invalid (default)
  /// context observes nothing extra.
  void set_frame_context(const obs::FrameTraceContext& ctx) {
    frame_ctx_ = ctx;
  }

 private:
  ServerConfig config_;
  codec::Decoder decoder_;
  ChromaDetector detector_;
  util::Rng rng_;  ///< base seed; per-frame streams are forked off it
  obs::ObsContext* obs_ = nullptr;
  obs::FrameTraceContext frame_ctx_;
  std::uint64_t processed_ = 0;
};

}  // namespace dive::edge
