// Average-Precision evaluation (the paper's accuracy metric, Sec. IV-A).
//
// Protocol follows the paper: detections produced on *raw* frames at the
// edge server serve as ground truth; a scheme's detections on its
// (compressed / tracked) frames are scored against them with greedy
// IoU >= 0.5 matching, and AP is the area under the interpolated
// precision-recall curve. mAP averages over the car and pedestrian
// classes.
#pragma once

#include <array>
#include <vector>

#include "edge/detection.h"

namespace dive::edge {

struct EvaluatorConfig {
  double iou_threshold = 0.5;
};

class ApEvaluator {
 public:
  explicit ApEvaluator(EvaluatorConfig config = {}) : config_(config) {}

  /// Scores one frame: `detections` against ground truth `truths`
  /// (both may contain both classes; matching is per class).
  void add_frame(const DetectionList& detections, const DetectionList& truths);

  /// AP of one class over everything added so far (0 when the class never
  /// appeared in the ground truth).
  [[nodiscard]] double ap(video::ObjectClass cls) const;

  /// Mean AP over car + pedestrian.
  [[nodiscard]] double map() const;

  [[nodiscard]] int ground_truth_count(video::ObjectClass cls) const;
  [[nodiscard]] int detection_count(video::ObjectClass cls) const;
  [[nodiscard]] int frames() const { return frames_; }

  void reset();

 private:
  struct ClassState {
    std::vector<std::pair<double, bool>> scored;  ///< (confidence, is_tp)
    int gt_total = 0;
  };

  [[nodiscard]] const ClassState& state(video::ObjectClass cls) const {
    return states_[static_cast<std::size_t>(cls)];
  }
  ClassState& state(video::ObjectClass cls) {
    return states_[static_cast<std::size_t>(cls)];
  }

  EvaluatorConfig config_;
  std::array<ClassState, video::kNumDetectableClasses> states_;
  int frames_ = 0;
};

/// AP of a single scored list (exposed for tests): `scored` is
/// (confidence, is_tp) pairs, `gt_total` the number of ground-truth boxes.
double average_precision(std::vector<std::pair<double, bool>> scored,
                         int gt_total);

}  // namespace dive::edge
