// Detection records exchanged between the edge server and mobile agents.
#pragma once

#include <vector>

#include "geom/box.h"
#include "video/scene.h"

namespace dive::edge {

struct Detection {
  video::ObjectClass cls = video::ObjectClass::kCar;
  geom::Box box;            ///< luma-pixel coordinates
  double confidence = 0.0;  ///< in [0, 1]
};

using DetectionList = std::vector<Detection>;

}  // namespace dive::edge
