#include "edge/box_shift.h"

namespace dive::edge {

DetectionList shift_by_mean_mv(const DetectionList& previous,
                               const codec::MotionField& field, int width,
                               int height, const BoxShiftOptions& options) {
  DetectionList out;
  out.reserve(previous.size());
  for (const auto& det : previous) {
    geom::Vec2 mean{};
    int n = 0;
    if (!field.empty()) {
      for (int row = 0; row < field.mb_rows; ++row) {
        for (int col = 0; col < field.mb_cols; ++col) {
          const geom::Vec2 center = field.mb_center(col, row);
          if (det.box.contains(center)) {
            mean += field.at(col, row).as_vec2();
            ++n;
          }
        }
      }
    }
    if (n > 0) mean = mean / static_cast<double>(n);

    Detection moved = det;
    moved.box = det.box.shifted(mean).clipped(width, height);
    moved.confidence *= options.confidence_decay;
    const double original = det.box.area();
    if (original <= 0.0 ||
        moved.box.area() < options.min_area_keep * original)
      continue;
    out.push_back(moved);
  }
  return out;
}

}  // namespace dive::edge
