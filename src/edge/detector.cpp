#include "edge/detector.h"

#include <algorithm>
#include <vector>

namespace dive::edge {

namespace {

struct Blob {
  int x0, y0, x1, y1;  // chroma-pixel bounds, half-open
  int area = 0;
  double excess_sum = 0.0;
};

/// 4-connected component extraction over a binary mask (chroma res).
/// `excess` holds the per-pixel chroma excess for confidence scoring.
std::vector<Blob> connected_components(const std::vector<std::uint8_t>& mask,
                                       const std::vector<std::int16_t>& excess,
                                       int w, int h) {
  std::vector<Blob> blobs;
  std::vector<std::uint8_t> visited(mask.size(), 0);
  std::vector<int> stack;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int idx = y * w + x;
      if (!mask[static_cast<std::size_t>(idx)] ||
          visited[static_cast<std::size_t>(idx)])
        continue;
      Blob b{x, y, x + 1, y + 1, 0, 0.0};
      stack.clear();
      stack.push_back(idx);
      visited[static_cast<std::size_t>(idx)] = 1;
      while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        const int cx = cur % w;
        const int cy = cur / w;
        ++b.area;
        b.excess_sum += excess[static_cast<std::size_t>(cur)];
        b.x0 = std::min(b.x0, cx);
        b.y0 = std::min(b.y0, cy);
        b.x1 = std::max(b.x1, cx + 1);
        b.y1 = std::max(b.y1, cy + 1);
        const int neighbors[4] = {cur - 1, cur + 1, cur - w, cur + w};
        const bool valid[4] = {cx > 0, cx < w - 1, cy > 0, cy < h - 1};
        for (int n = 0; n < 4; ++n) {
          if (!valid[n]) continue;
          const int ni = neighbors[n];
          if (mask[static_cast<std::size_t>(ni)] &&
              !visited[static_cast<std::size_t>(ni)]) {
            visited[static_cast<std::size_t>(ni)] = 1;
            stack.push_back(ni);
          }
        }
      }
      blobs.push_back(b);
    }
  }
  return blobs;
}

}  // namespace

DetectionList ChromaDetector::detect(const video::Frame& frame) const {
  const int w = frame.u.width;
  const int h = frame.u.height;
  DetectionList detections;

  const struct {
    video::ObjectClass cls;
    const video::Plane* key;    // plane the class pushes up
    const video::Plane* other;  // plane that must stay moderate
  } classes[2] = {
      {video::ObjectClass::kCar, &frame.u, &frame.v},
      {video::ObjectClass::kPedestrian, &frame.v, &frame.u},
  };

  std::vector<std::uint8_t> mask(static_cast<std::size_t>(w) * h);
  std::vector<std::int16_t> excess(static_cast<std::size_t>(w) * h);

  for (const auto& spec : classes) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const std::size_t idx = static_cast<std::size_t>(y) * w + x;
        const int e = static_cast<int>(spec.key->at(x, y)) - 128;
        const bool hit = e > config_.chroma_excess_threshold &&
                         static_cast<int>(spec.other->at(x, y)) <
                             config_.cross_suppression;
        mask[idx] = hit ? 1 : 0;
        excess[idx] = static_cast<std::int16_t>(e);
      }
    }
    for (const Blob& b : connected_components(mask, excess, w, h)) {
      if (b.area < config_.min_area_chroma_px) continue;
      Detection d;
      d.cls = spec.cls;
      // Chroma -> luma coordinates.
      d.box = {2.0 * b.x0, 2.0 * b.y0, 2.0 * b.x1, 2.0 * b.y1};
      const double mean_excess = b.excess_sum / b.area;
      d.confidence = std::clamp(
          (mean_excess - config_.chroma_excess_threshold) /
              (config_.confidence_scale - config_.chroma_excess_threshold),
          0.05, 1.0);
      detections.push_back(d);
    }
  }

  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              return a.confidence > b.confidence;
            });
  return detections;
}

}  // namespace dive::edge
