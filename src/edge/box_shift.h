// Mean-MV box propagation: shift each detection box by the mean motion
// vector of the macroblocks whose centers it contains. This is the
// primitive behind both the agent-side MOT fallback
// (core::OfflineTracker, Sec. III-E) and edge-side RoI gating
// (roi::RoiGate propagating background boxes between full inferences) —
// one definition so the two stay bit-identical.
#pragma once

#include "codec/types.h"
#include "edge/detection.h"

namespace dive::edge {

struct BoxShiftOptions {
  /// Boxes whose clipped area falls below this fraction of their original
  /// area are dropped (they left the frame).
  double min_area_keep = 0.25;
  /// Confidence decay per propagated frame (propagation degrades with
  /// horizon). 1.0 keeps confidences untouched.
  double confidence_decay = 0.92;
};

/// Advances `previous` detections by one frame using the frame's motion
/// field. `width`/`height` clip the results. An empty field shifts by
/// zero (boxes stay put, decay still applies).
[[nodiscard]] DetectionList shift_by_mean_mv(const DetectionList& previous,
                                             const codec::MotionField& field,
                                             int width, int height,
                                             const BoxShiftOptions& options);

}  // namespace dive::edge
