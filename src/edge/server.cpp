#include "edge/server.h"

namespace dive::edge {

InferenceResult EdgeServer::process(std::span<const std::uint8_t> data,
                                    util::SimTime arrival) {
  InferenceResult result;
  codec::DecodedFrame decoded = decoder_.decode(data);
  result.decoded = std::move(decoded.frame);
  result.detections = detector_.detect(result.decoded);

  const util::SimTime jitter = util::from_millis(
      rng_.uniform(-config_.inference_jitter_ms, config_.inference_jitter_ms));
  result.result_at_agent = arrival + config_.decode_latency +
                           config_.inference_latency + jitter +
                           config_.downlink_delay;
  return result;
}

}  // namespace dive::edge
