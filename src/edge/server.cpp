#include "edge/server.h"

#include "obs/obs.h"

namespace dive::edge {

InferenceResult EdgeServer::process(std::span<const std::uint8_t> data,
                                    util::SimTime arrival) {
  InferenceResult result;
  codec::DecodedFrame decoded = decoder_.decode(data);
  result.decoded = std::move(decoded.frame);
  result.detections = detector_.detect(result.decoded);

  const util::SimTime jitter = inference_jitter(processed_++);
  result.result_at_agent = arrival + config_.decode_latency +
                           config_.inference_latency + jitter +
                           config_.downlink_delay;

  if (obs_ != nullptr) {
    obs_->metrics.counter("edge.frames").add();
    obs_->metrics.counter("edge.detections")
        .add(static_cast<std::int64_t>(result.detections.size()));
    obs_->metrics.distribution("edge.service_ms", "ms")
        .add(util::to_millis(result.result_at_agent - arrival));
    const util::SimTime served =
        result.result_at_agent - config_.downlink_delay;
    const std::uint64_t flow = frame_ctx_.flow_id();
    obs_->tracer.span_at(
        "edge.process", obs::kTrackEdge, arrival, served,
        {{"detections", static_cast<long long>(result.detections.size())}},
        flow);
    obs_->tracer.span_at("edge.downlink", obs::kTrackEdge, served,
                         result.result_at_agent, {}, flow);
  }
  return result;
}

DetectionList EdgeServer::decode_and_detect(
    std::span<const std::uint8_t> data) {
  return detector_.detect(decode(data).frame);
}

codec::DecodedFrame EdgeServer::decode(std::span<const std::uint8_t> data) {
  codec::DecodedFrame decoded = decoder_.decode(data);
  if (obs_ != nullptr) obs_->metrics.counter("edge.decodes").add();
  return decoded;
}

util::SimTime EdgeServer::inference_jitter(std::uint64_t frame_index) const {
  util::Rng stream = rng_.fork(frame_index);
  return util::from_millis(stream.uniform(-config_.inference_jitter_ms,
                                          config_.inference_jitter_ms));
}

}  // namespace dive::edge
