#include "edge/server.h"

namespace dive::edge {

InferenceResult EdgeServer::process(std::span<const std::uint8_t> data,
                                    util::SimTime arrival) {
  InferenceResult result;
  codec::DecodedFrame decoded = decoder_.decode(data);
  result.decoded = std::move(decoded.frame);
  result.detections = detector_.detect(result.decoded);

  const util::SimTime jitter = inference_jitter(processed_++);
  result.result_at_agent = arrival + config_.decode_latency +
                           config_.inference_latency + jitter +
                           config_.downlink_delay;
  return result;
}

DetectionList EdgeServer::decode_and_detect(
    std::span<const std::uint8_t> data) {
  const codec::DecodedFrame decoded = decoder_.decode(data);
  return detector_.detect(decoded.frame);
}

util::SimTime EdgeServer::inference_jitter(std::uint64_t frame_index) const {
  util::Rng stream = rng_.fork(frame_index);
  return util::from_millis(stream.uniform(-config_.inference_jitter_ms,
                                          config_.inference_jitter_ms));
}

}  // namespace dive::edge
