// Low-overhead span tracer with a Chrome trace-event JSON exporter, so a
// run opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Every span carries a dual timestamp:
//   - sim time: the simulated clock the repo's latency model runs on.
//     Orchestrating code anchors it per frame via set_sim_now(), and
//     components with modelled intervals (uplink serialization, edge
//     service) emit explicit spans via span_at().
//   - wall time: captured automatically by ScopedSpan (steady_clock) for
//     real host profiling of the compute stages.
//
// Export clocks: TraceClock::kSim lays spans out on the simulated
// timeline and omits all wall-clock data — for a fixed seed the exported
// bytes are identical across runs and encoder thread counts (product
// instrumentation records spans from the orchestrating thread onto fixed
// logical tracks). TraceClock::kWall lays out the same spans by host
// time; those bytes naturally differ run to run.
//
// Flow events: spans tagged with a FrameTraceContext flow id are linked
// across tracks by Chrome flow events ("s"/"t"/"f") in the export, so
// Perfetto draws arrows following one frame through encode -> uplink ->
// admission -> batch -> inference. Flow ids are deterministic mint
// sequences, so the kSim export stays byte-identical across thread
// counts.
//
// Overhead: when tracing is disabled (the default) a span is one relaxed
// atomic load; compiling with DIVE_OBS_DISABLED removes the macro call
// sites entirely (see obs/obs.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/frame_context.h"
#include "util/sim_clock.h"

namespace dive::obs {

/// Logical tracks ("tid" in the exported trace). Fixed ids keep the
/// export independent of thread scheduling.
inline constexpr std::uint32_t kTrackAgent = 0;
inline constexpr std::uint32_t kTrackCodec = 1;
inline constexpr std::uint32_t kTrackNet = 2;
inline constexpr std::uint32_t kTrackEdge = 3;
inline constexpr std::uint32_t kTrackServe = 4;
/// Per-session serve tracks: kTrackSessionBase + session_id.
inline constexpr std::uint32_t kTrackSessionBase = 16;

enum class TraceClock { kSim, kWall };

struct TraceEvent {
  std::string name;
  std::uint32_t track = kTrackAgent;
  util::SimTime sim_begin = 0;
  util::SimTime sim_end = 0;
  std::uint64_t wall_begin_ns = 0;  ///< 0 for sim-only span_at events
  std::uint64_t wall_end_ns = 0;
  std::int64_t parent = -1;  ///< index of the enclosing ScopedSpan, or -1
  bool open = false;         ///< ScopedSpan not yet ended
  std::uint64_t flow = 0;    ///< frame flow id (FrameTraceContext), 0 = none
  std::vector<std::pair<std::string, long long>> args;
};

class Tracer {
 public:
  /// Disabled by default: begin_span/span_at/instant become a single
  /// relaxed atomic load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Sim-time anchor for subsequently opened ScopedSpans; the frame loop
  /// sets it to the capture time before running the pipeline.
  void set_sim_now(util::SimTime t) {
    sim_now_.store(t, std::memory_order_relaxed);
  }
  [[nodiscard]] util::SimTime sim_now() const {
    return sim_now_.load(std::memory_order_relaxed);
  }

  /// Record a completed span over an explicit simulated interval. A
  /// non-zero `flow` ties the span into a frame's cross-track flow
  /// (pass FrameTraceContext::flow_id()).
  void span_at(const std::string& name, std::uint32_t track,
               util::SimTime begin, util::SimTime end,
               std::vector<std::pair<std::string, long long>> args = {},
               std::uint64_t flow = 0);

  /// Zero-duration marker at a simulated instant.
  void instant(const std::string& name, std::uint32_t track, util::SimTime at,
               std::vector<std::pair<std::string, long long>> args = {},
               std::uint64_t flow = 0);

  /// ScopedSpan plumbing: returns the event index, or -1 when disabled.
  std::int64_t begin_span(const char* name, std::uint32_t track);
  void span_arg(std::int64_t index, const char* key, long long value);
  void span_flow(std::int64_t index, std::uint64_t flow);
  void end_span(std::int64_t index);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Chrome trace-event JSON ("traceEvents" array of complete events plus
  /// track-name metadata). See TraceClock above for determinism.
  [[nodiscard]] std::string to_chrome_json(
      TraceClock clock = TraceClock::kSim) const;
  /// Writes to_chrome_json to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path,
                         TraceClock clock = TraceClock::kSim) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<util::SimTime> sim_now_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  /// Open-span stack per thread; ScopedSpan nesting is LIFO per thread.
  std::map<std::thread::id, std::vector<std::int64_t>> open_stacks_;
};

/// RAII wall-clocked span anchored at the tracer's current sim time.
/// A default-constructed or null-tracer span is inert; all methods are
/// no-ops when the tracer is disabled.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, const char* name,
             std::uint32_t track = kTrackAgent) {
    if (tracer != nullptr && tracer->enabled()) {
      tracer_ = tracer;
      index_ = tracer->begin_span(name, track);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr && index_ >= 0) tracer_->end_span(index_);
  }

  void arg(const char* key, long long value) {
    if (tracer_ != nullptr && index_ >= 0)
      tracer_->span_arg(index_, key, value);
  }

  /// Tags the span with a frame's flow id plus session/frame args so it
  /// joins the frame's cross-track flow in the export. No-op on inert
  /// spans or unminted contexts.
  void flow(const FrameTraceContext& ctx) {
    if (tracer_ == nullptr || index_ < 0 || !ctx.valid()) return;
    tracer_->span_flow(index_, ctx.flow_id());
    tracer_->span_arg(index_, "session", static_cast<long long>(ctx.session_id));
    tracer_->span_arg(index_, "frame", static_cast<long long>(ctx.frame_index));
  }

 private:
  Tracer* tracer_ = nullptr;
  std::int64_t index_ = -1;
};

}  // namespace dive::obs
