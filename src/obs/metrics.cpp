#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace dive::obs {

namespace {

/// Shortest round-trippable-ish representation; deterministic for a given
/// value on a given libc, which is all the byte-identical exports need.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Distribution::Summary Distribution::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Summary s;
  s.count = samples_.count();
  if (s.count == 0) return s;
  std::vector<double> sorted = samples_.samples();
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double acc = 0.0;
  for (double x : sorted) acc += x;
  s.mean = acc / static_cast<double>(sorted.size());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p50 = at(0.5);
  s.p90 = at(0.9);
  s.p99 = at(0.99);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) || distributions_.count(name))
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already bound to another kind");
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(unit)))
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || distributions_.count(name))
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already bound to another kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(unit))).first;
  return *it->second;
}

Distribution& MetricsRegistry::distribution(const std::string& name,
                                            const std::string& unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || gauges_.count(name))
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already bound to another kind");
  auto it = distributions_.find(name);
  if (it == distributions_.end())
    it = distributions_
             .emplace(name, std::unique_ptr<Distribution>(new Distribution(
                                unit)))
             .first;
  return *it->second;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + distributions_.size();
}

util::TextTable MetricsRegistry::to_table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::TextTable table("metrics");
  table.set_header({"name", "kind", "count", "value", "mean", "min", "max",
                    "p50", "p99", "unit"});
  for (const auto& [name, c] : counters_) {
    table.add_row({name, "counter", "-", std::to_string(c->value()), "-", "-",
                   "-", "-", "-", c->unit()});
  }
  for (const auto& [name, g] : gauges_) {
    table.add_row({name, "gauge", "-", util::TextTable::fmt(g->value(), 3),
                   "-", "-", "-", "-", "-", g->unit()});
  }
  for (const auto& [name, d] : distributions_) {
    const auto s = d->summary();
    table.add_row({name, "dist", std::to_string(s.count), "-",
                   util::TextTable::fmt(s.mean, 3),
                   util::TextTable::fmt(s.min, 3),
                   util::TextTable::fmt(s.max, 3),
                   util::TextTable::fmt(s.p50, 3),
                   util::TextTable::fmt(s.p99, 3), d->unit()});
  }
  return table;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) +
           "\": {\"value\": " + std::to_string(c->value()) + ", \"unit\": \"" +
           json_escape(c->unit()) + "\"}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) +
           "\": {\"value\": " + fmt_double(g->value()) + ", \"unit\": \"" +
           json_escape(g->unit()) + "\"}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"distributions\": {";
  first = true;
  for (const auto& [name, d] : distributions_) {
    const auto s = d->summary();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) +
           "\": {\"count\": " + std::to_string(s.count) +
           ", \"min\": " + fmt_double(s.min) + ", \"max\": " +
           fmt_double(s.max) + ", \"mean\": " + fmt_double(s.mean) +
           ", \"p50\": " + fmt_double(s.p50) + ", \"p90\": " +
           fmt_double(s.p90) + ", \"p99\": " + fmt_double(s.p99) +
           ", \"unit\": \"" + json_escape(d->unit()) + "\"}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "name,kind,unit,count,value,min,max,mean,p50,p90,p99\n";
  for (const auto& [name, c] : counters_) {
    out += name + ",counter," + c->unit() + ",," +
           std::to_string(c->value()) + ",,,,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + ",gauge," + g->unit() + ",," + fmt_double(g->value()) +
           ",,,,,,\n";
  }
  for (const auto& [name, d] : distributions_) {
    const auto s = d->summary();
    out += name + ",dist," + d->unit() + "," + std::to_string(s.count) +
           ",," + fmt_double(s.min) + "," + fmt_double(s.max) + "," +
           fmt_double(s.mean) + "," + fmt_double(s.p50) + "," +
           fmt_double(s.p90) + "," + fmt_double(s.p99) + "\n";
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flatten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + 3 * distributions_.size());
  for (const auto& [name, c] : counters_)
    out.emplace_back(name, static_cast<double>(c->value()));
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  for (const auto& [name, d] : distributions_) {
    const auto s = d->summary();
    out.emplace_back(name + ".count", static_cast<double>(s.count));
    out.emplace_back(name + ".mean", s.mean);
    out.emplace_back(name + ".p99", s.p99);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

MetricsSnapshotter::MetricsSnapshotter(const MetricsRegistry* registry,
                                       util::SimTime period)
    : registry_(registry), period_(period > 0 ? period : 1), next_(0) {}

void MetricsSnapshotter::sample(util::SimTime now) {
  while (next_ <= now) {
    force_sample(next_);
    next_ += period_;
  }
}

void MetricsSnapshotter::force_sample(util::SimTime at) {
  Row row;
  row.at = at;
  if (registry_ != nullptr) row.values = registry_->flatten();
  rows_.push_back(std::move(row));
}

std::string MetricsSnapshotter::to_csv() const {
  // Column union across rows (late-registered metrics appear with empty
  // cells in earlier rows), in sorted name order.
  std::vector<std::string> columns;
  for (const Row& row : rows_)
    for (const auto& [name, value] : row.values) columns.push_back(name);
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());

  std::string out = "time_ms";
  for (const std::string& column : columns) out += "," + column;
  out += "\n";
  for (const Row& row : rows_) {
    out += fmt_double(util::to_millis(row.at));
    std::size_t i = 0;  // row.values is sorted: single merge pass
    for (const std::string& column : columns) {
      out += ",";
      while (i < row.values.size() && row.values[i].first < column) ++i;
      if (i < row.values.size() && row.values[i].first == column)
        out += fmt_double(row.values[i].second);
    }
    out += "\n";
  }
  return out;
}

util::TextTable MetricsSnapshotter::to_table(
    const std::vector<std::string>& columns) const {
  util::TextTable table("metrics timeline");
  std::vector<std::string> header = {"time_ms"};
  header.insert(header.end(), columns.begin(), columns.end());
  table.set_header(std::move(header));
  for (const Row& row : rows_) {
    std::vector<std::string> cells = {
        util::TextTable::fmt(util::to_millis(row.at), 1)};
    for (const std::string& column : columns) {
      const auto it = std::lower_bound(
          row.values.begin(), row.values.end(), column,
          [](const auto& kv, const std::string& name) {
            return kv.first < name;
          });
      if (it != row.values.end() && it->first == column)
        cells.push_back(util::TextTable::fmt(it->second));
      else
        cells.push_back("-");
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace dive::obs
