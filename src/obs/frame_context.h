// Per-frame causal identity, minted once at encode time and carried by
// value through every stage a frame touches (encoder -> sidecar/uplink ->
// admission -> scheduler -> edge inference -> result).
//
// The context is a plain struct on purpose: it is always compiled — even
// under DIVE_OBS_DISABLED — so the propagation plumbing through codec,
// net, serve, and edge never forks on the build flag. Only span emission
// and ledger bookkeeping are observability features; carrying three
// integers is not.
//
// `sequence` is a monotone, deterministic mint order (global capture
// order in the harness) and doubles as the Chrome-trace flow id tying a
// frame's spans together across tracks. Sequence 0 means "no context":
// spans fall back to untagged and the ledger ignores the frame.
#pragma once

#include <cstdint>

namespace dive::obs {

struct FrameTraceContext {
  std::uint32_t session_id = 0;
  std::uint64_t frame_index = 0;
  std::uint64_t sequence = 0;  ///< mint order; 0 = unminted/invalid

  [[nodiscard]] bool valid() const { return sequence != 0; }
  /// Flow-event id in the Chrome trace export (unique per frame).
  [[nodiscard]] std::uint64_t flow_id() const { return sequence; }
};

}  // namespace dive::obs
