// Unified metrics registry: named counters, gauges, and distributions
// shared by the agent pipeline, codec, network, edge, and serving layers.
//
// Naming scheme: dot-separated "<layer>.<subsystem>.<metric>" (e.g.
// "codec.rc.trials_encoded", "net.transmit_ms"); the prefix before the
// first dot is the layer and doubles as the trace category. Units are
// free-form short strings ("count", "bytes", "ms", "qp", "dB").
//
// Thread safety: handle creation takes the registry mutex; recording on a
// handle is lock-free for counters/gauges (relaxed atomics) and takes a
// per-distribution mutex for samples, so encoder worker-pool lanes can
// record concurrently.
//
// Determinism: every export walks the metric names in lexicographic
// order, and distribution summaries are computed from the *sorted* sample
// vector (order-independent floating-point sums), so two runs that record
// the same multiset of values export byte-identical text regardless of
// the interleaving that produced them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_clock.h"
#include "util/stats.h"
#include "util/table.h"

namespace dive::obs {

/// Monotonic (or set-on-publish) integer metric.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Overwrite, for idempotent re-publication of externally aggregated
  /// totals (serve::ServeMetrics::publish).
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& unit() const { return unit_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string unit) : unit_(std::move(unit)) {}
  std::atomic<std::int64_t> value_{0};
  std::string unit_;
};

/// Last-value floating-point metric.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& unit() const { return unit_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string unit) : unit_(std::move(unit)) {}
  std::atomic<double> value_{0.0};
  std::string unit_;
};

/// Sample distribution answering count/min/max/mean/quantile queries;
/// backed by util::SampleSet so bench CDF plots can reuse the samples.
class Distribution {
 public:
  void add(double x) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.add(x);
  }
  /// Replace the whole sample set (idempotent re-publication).
  void assign(const util::SampleSet& samples) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_ = samples;
  }

  struct Summary {
    std::size_t count = 0;
    double min = 0.0, max = 0.0, mean = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  /// Order-independent summary: stats are computed over the sorted
  /// samples so the result depends only on the multiset of values.
  [[nodiscard]] Summary summary() const;

  [[nodiscard]] std::size_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.count();
  }
  [[nodiscard]] util::SampleSet snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
  }
  [[nodiscard]] const std::string& unit() const { return unit_; }

 private:
  friend class MetricsRegistry;
  explicit Distribution(std::string unit) : unit_(std::move(unit)) {}
  mutable std::mutex mutex_;
  util::SampleSet samples_;
  std::string unit_;
};

/// Owns every named metric; handles stay valid for the registry lifetime.
/// A name is bound to one kind: asking for an existing name with a
/// different kind throws std::logic_error.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& unit = "count");
  Gauge& gauge(const std::string& name, const std::string& unit = "");
  Distribution& distribution(const std::string& name,
                             const std::string& unit = "");

  [[nodiscard]] std::size_t size() const;

  /// Deterministic exports, metrics sorted by name.
  [[nodiscard]] util::TextTable to_table() const;
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  /// Flat deterministic (name, value) view for time-series sampling:
  /// counters and gauges by current value, distributions expanded to
  /// <name>.count / <name>.mean / <name>.p99. Sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, double>> flatten() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Distribution>> distributions_;
};

/// Deterministic sim-clock time series over a registry: one row per
/// period boundary crossed, each row a full flatten() of the registry at
/// the moment sample() was called. Because sampling is driven from the
/// orchestrating loop at simulated boundaries (never from a wall timer),
/// the emitted CSV is byte-identical across runs and thread counts.
class MetricsSnapshotter {
 public:
  /// `registry` must outlive the snapshotter; `period` > 0 (sim micros).
  MetricsSnapshotter(const MetricsRegistry* registry, util::SimTime period);

  /// Emits one row per period boundary in (last sampled, now]; rows are
  /// stamped at the boundary time and carry the registry's current
  /// values. Call with monotone `now` from the sim loop.
  void sample(util::SimTime now);
  /// Unconditional row at `at` (e.g. the final drain snapshot).
  void force_sample(util::SimTime at);

  /// Next boundary sample() would emit a row for — lets callers skip
  /// expensive pre-sample work (metric publication) between boundaries.
  [[nodiscard]] util::SimTime next() const { return next_; }

  struct Row {
    util::SimTime at = 0;
    std::vector<std::pair<std::string, double>> values;  ///< sorted by name
  };
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

  /// time_ms plus the sorted union of all metric columns; rows missing a
  /// column (metric not yet registered) emit an empty cell.
  [[nodiscard]] std::string to_csv() const;
  /// Compact timeline for the named columns only.
  [[nodiscard]] util::TextTable to_table(
      const std::vector<std::string>& columns) const;

 private:
  const MetricsRegistry* registry_;
  util::SimTime period_;
  util::SimTime next_;
  std::vector<Row> rows_;
};

}  // namespace dive::obs
