// Observability context: one MetricsRegistry + one Tracer handed through
// the stack (agent, codec, net, edge, serve) as a non-owning pointer.
// A null context means "not observed" and costs a single pointer check
// at every instrumentation site.
//
// Compile-out: building with -DDIVE_OBS_DISABLED (CMake option
// DIVE_OBS_DISABLED) turns the DIVE_OBS_SPAN macro into an inert span so
// tracing call sites vanish from the binary; metric counters remain (they
// are already no-ops without a context).
#pragma once

#include "obs/frame_context.h"
#include "obs/frame_ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dive::obs {

struct ObsContext {
  MetricsRegistry metrics;
  Tracer tracer;
  FrameLedger ledger;
};

}  // namespace dive::obs

/// Declares a ScopedSpan named `var` on context pointer `ctx` (may be
/// null). Usage:
///   DIVE_OBS_SPAN(span, obs_, "codec.encode_to_target", obs::kTrackCodec);
///   span.arg("target_bytes", static_cast<long long>(target));
#if defined(DIVE_OBS_DISABLED)
#define DIVE_OBS_SPAN(var, ctx, name, track) ::dive::obs::ScopedSpan var
#else
#define DIVE_OBS_SPAN(var, ctx, name, track)            \
  ::dive::obs::ScopedSpan var(                          \
      (ctx) != nullptr ? &(ctx)->tracer : nullptr, (name), (track))
#endif
