#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>

namespace dive::obs {

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Category = metric-naming layer prefix ("agent.encode" -> "agent").
std::string category_of(const std::string& name) {
  const auto dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::string track_name(std::uint32_t track) {
  switch (track) {
    case kTrackAgent: return "agent";
    case kTrackCodec: return "codec";
    case kTrackNet: return "net";
    case kTrackEdge: return "edge";
    case kTrackServe: return "serve";
    default: break;
  }
  if (track >= kTrackSessionBase)
    return "session-" + std::to_string(track - kTrackSessionBase);
  return "track-" + std::to_string(track);
}

void append_args(std::string& out,
                 const std::vector<std::pair<std::string, long long>>& args) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    // Separate appends: the operator+ temporary chain trips a GCC 12
    // -Wrestrict false positive (PR 105329) under -Werror.
    out += "\"";
    out += json_escape(args[i].first);
    out += "\":";
    out += std::to_string(args[i].second);
  }
  out += "}";
}

}  // namespace

void Tracer::span_at(const std::string& name, std::uint32_t track,
                     util::SimTime begin, util::SimTime end,
                     std::vector<std::pair<std::string, long long>> args,
                     std::uint64_t flow) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.name = name;
  ev.track = track;
  ev.sim_begin = begin;
  ev.sim_end = std::max(begin, end);
  ev.flow = flow;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::instant(const std::string& name, std::uint32_t track,
                     util::SimTime at,
                     std::vector<std::pair<std::string, long long>> args,
                     std::uint64_t flow) {
  span_at(name, track, at, at, std::move(args), flow);
}

std::int64_t Tracer::begin_span(const char* name, std::uint32_t track) {
  if (!enabled()) return -1;
  const std::uint64_t now = wall_now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto index = static_cast<std::int64_t>(events_.size());
  TraceEvent ev;
  ev.name = name;
  ev.track = track;
  ev.sim_begin = ev.sim_end = sim_now();
  ev.wall_begin_ns = ev.wall_end_ns = now;
  ev.open = true;
  auto& stack = open_stacks_[std::this_thread::get_id()];
  if (!stack.empty()) ev.parent = stack.back();
  stack.push_back(index);
  events_.push_back(std::move(ev));
  return index;
}

void Tracer::span_arg(std::int64_t index, const char* key, long long value) {
  if (index < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= static_cast<std::int64_t>(events_.size())) return;
  events_[static_cast<std::size_t>(index)].args.emplace_back(key, value);
}

void Tracer::span_flow(std::int64_t index, std::uint64_t flow) {
  if (index < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= static_cast<std::int64_t>(events_.size())) return;
  events_[static_cast<std::size_t>(index)].flow = flow;
}

void Tracer::end_span(std::int64_t index) {
  if (index < 0) return;
  const std::uint64_t now = wall_now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= static_cast<std::int64_t>(events_.size())) return;
  TraceEvent& ev = events_[static_cast<std::size_t>(index)];
  ev.wall_end_ns = now;
  ev.sim_end = std::max(ev.sim_begin, sim_now());
  ev.open = false;
  auto& stack = open_stacks_[std::this_thread::get_id()];
  if (!stack.empty() && stack.back() == index) stack.pop_back();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  open_stacks_.clear();
}

std::string Tracer::to_chrome_json(TraceClock clock) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }

  // Wall export skips sim-only span_at events (they carry no wall data).
  std::vector<std::size_t> order;
  order.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (clock == TraceClock::kWall && events[i].wall_begin_ns == 0) continue;
    order.push_back(i);
  }
  std::uint64_t wall_base = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i : order)
    wall_base = std::min(wall_base, events[i].wall_begin_ns);
  // Stable sort by begin timestamp; record order breaks ties.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (clock == TraceClock::kSim)
                       return events[a].sim_begin < events[b].sim_begin;
                     return events[a].wall_begin_ns < events[b].wall_begin_ns;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Track-name metadata for every track in use, sorted by id.
  std::vector<std::uint32_t> tracks;
  for (std::size_t i : order) tracks.push_back(events[i].track);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  for (std::uint32_t t : tracks) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(track_name(t)) + "\"}}";
  }

  // Flow membership in output order: a flow with >= 2 events gets one
  // flow event per member ("s" first, "t" middle, "f" last) emitted
  // right after the member's "X" event at the same ts/tid, so viewers
  // bind the arrow to that slice. Deterministic: ids are mint sequences
  // and positions follow the sorted output order.
  std::map<std::uint64_t, std::uint32_t> flow_counts;
  for (std::size_t i : order)
    if (events[i].flow != 0) ++flow_counts[events[i].flow];
  std::map<std::uint64_t, std::uint32_t> flow_seen;

  char buf[64];
  for (std::size_t i : order) {
    const TraceEvent& ev = events[i];
    if (!first) out += ",";
    first = false;
    std::string ts;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(ev.track) +
           ",\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
           json_escape(category_of(ev.name)) + "\",";
    if (clock == TraceClock::kSim) {
      ts = std::to_string(ev.sim_begin);
      out += "\"ts\":" + ts +
             ",\"dur\":" + std::to_string(ev.sim_end - ev.sim_begin) + ",";
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(ev.wall_begin_ns - wall_base) /
                        1000.0);
      ts = buf;
      out += "\"ts\":" + ts;
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(ev.wall_end_ns - ev.wall_begin_ns) /
                        1000.0);
      out += std::string(",\"dur\":") + buf + ",";
    }
    append_args(out, ev.args);
    out += "}";
    if (ev.flow != 0 && flow_counts[ev.flow] >= 2) {
      const std::uint32_t k = flow_seen[ev.flow]++;
      const bool last = k + 1 == flow_counts[ev.flow];
      out += ",{\"ph\":\"";
      out += k == 0 ? "s" : (last ? "f" : "t");
      out += "\",\"pid\":1,\"tid\":" + std::to_string(ev.track) +
             ",\"name\":\"frame\",\"cat\":\"flow\",\"id\":" +
             std::to_string(ev.flow) + ",\"ts\":" + ts;
      if (k != 0) out += ",\"bp\":\"e\"";
      out += "}";
    }
  }
  out += "]}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path,
                               TraceClock clock) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string json = to_chrome_json(clock);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

}  // namespace dive::obs
