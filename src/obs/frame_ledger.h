// Per-frame latency ledger: the closing loop of the causal tracing
// pipeline. The harness mints a FrameTraceContext per captured frame
// (global capture order -> monotone sequence), each pipeline stage
// records its simulated interval against that context, and the terminal
// stage records an outcome. The ledger then answers the questions spans
// alone cannot:
//
//   - stage-by-stage latency breakdown per frame (encode / sidecar /
//     uplink queue / transmit / propagation / admission wait / batch
//     wait / inference / result), summing to the frame's end-to-end
//     latency, so >= 95% of every frame's budget is attributed by name;
//   - per-session and aggregate per-stage percentiles;
//   - a deadline-miss autopsy: every dropped-or-late frame names its
//     dominant stage (today drops are counted but causeless).
//
// Determinism: contexts are minted on the orchestrating thread in
// capture order and all stage times are simulated, so every export
// (JSON, tables) is byte-identical across encoder thread counts. All
// methods are mutex-guarded; recording from scheduler callbacks is safe.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/frame_context.h"
#include "util/sim_clock.h"
#include "util/table.h"

namespace dive::obs {

class MetricsRegistry;

/// Pipeline stages in causal order. A frame visits each at most once.
enum class FrameStage : std::uint8_t {
  kEncode = 0,      ///< capture -> bitstream ready (analysis + encode)
  kSidecar,         ///< RoI metadata serialization (zero sim latency today)
  kUplinkQueue,     ///< bitstream ready -> serialization starts
  kTransmit,        ///< uplink serialization (bytes / bandwidth)
  kPropagation,     ///< last byte sent -> arrival at edge
  kAdmissionWait,   ///< arrival -> batch window opens
  kBatchWait,       ///< batch window open -> batch dispatch
  kInference,       ///< batch dispatch -> inference done
  kResult,          ///< inference done -> result back at the agent
};
inline constexpr std::size_t kFrameStageCount = 9;

[[nodiscard]] const char* to_string(FrameStage stage);

enum class FrameOutcome : std::uint8_t {
  kPending = 0,      ///< no terminal event recorded (yet)
  kCompleted,        ///< result returned within deadline (or no deadline)
  kCompletedLate,    ///< result returned after the deadline
  kDroppedUplink,    ///< uplink gave up (outage / head-of-line timeout)
  kDroppedQueue,     ///< admission rejected: session queue full
  kDroppedDeadline,  ///< admission rejected: predicted completion too late
};

[[nodiscard]] const char* to_string(FrameOutcome outcome);
[[nodiscard]] bool is_drop(FrameOutcome outcome);

struct FrameRecord {
  FrameTraceContext ctx;
  util::SimTime capture = 0;
  util::SimTime deadline = 0;  ///< absolute; 0 = no deadline
  util::SimTime finished = 0;  ///< result at agent, or drop instant
  FrameOutcome outcome = FrameOutcome::kPending;

  struct StageSpan {
    util::SimTime begin = 0;
    util::SimTime end = 0;
    bool set = false;
  };
  std::array<StageSpan, kFrameStageCount> stages;

  [[nodiscard]] const StageSpan& stage(FrameStage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double stage_ms(FrameStage s) const;
  /// finished - capture (0 until a terminal outcome is recorded).
  [[nodiscard]] double e2e_ms() const;
  /// Sum of all recorded stage durations.
  [[nodiscard]] double attributed_ms() const;
  /// Longest recorded stage; ties break toward the earlier stage.
  /// Meaningful once at least one stage is recorded (kEncode otherwise).
  [[nodiscard]] FrameStage dominant_stage() const;
};

class FrameLedger {
 public:
  /// Mints the next context. Call in deterministic (capture) order on the
  /// orchestrating thread; `deadline` is absolute sim time, 0 = none.
  FrameTraceContext begin_frame(std::uint32_t session_id,
                                std::uint64_t frame_index,
                                util::SimTime capture,
                                util::SimTime deadline = 0);

  /// Records stage [begin, end] for the frame. Unminted contexts and
  /// unknown sequences are ignored; end is clamped to >= begin.
  void stage(const FrameTraceContext& ctx, FrameStage stage,
             util::SimTime begin, util::SimTime end);

  /// Terminal event. kCompleted past a configured deadline is recorded
  /// as kCompletedLate automatically.
  void outcome(const FrameTraceContext& ctx, FrameOutcome outcome,
               util::SimTime at);

  [[nodiscard]] std::size_t size() const;
  /// All records in mint (capture) order.
  [[nodiscard]] std::vector<FrameRecord> records() const;

  /// One entry per dropped / late / still-pending frame: which stage ate
  /// the budget.
  struct Autopsy {
    FrameTraceContext ctx;
    FrameOutcome outcome = FrameOutcome::kPending;
    FrameStage dominant = FrameStage::kEncode;
    double dominant_ms = 0.0;
    double elapsed_ms = 0.0;  ///< capture -> terminal event (or last stage)
  };
  [[nodiscard]] std::vector<Autopsy> autopsies() const;

  /// Aggregate per-stage latency: count / mean / p50 / p90 / p99 and
  /// share of total attributed time.
  [[nodiscard]] util::TextTable stage_table() const;
  /// Per-session e2e percentiles, outcome counts, and worst stage.
  [[nodiscard]] util::TextTable session_table() const;
  /// Deadline-miss autopsy rollup: outcome x dominant stage histogram.
  [[nodiscard]] util::TextTable autopsy_table() const;

  /// Full per-frame dump for tools/trace_report.py (schema 1);
  /// deterministic bytes (sim integers, mint order).
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

  /// Aggregates into the registry under obs.ledger.* (idempotent).
  void publish(MetricsRegistry& registry) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<FrameRecord> records_;                          // mint order
  std::map<std::uint64_t, std::size_t> by_sequence_;          // seq -> index
  std::uint64_t next_sequence_ = 1;
};

}  // namespace dive::obs
