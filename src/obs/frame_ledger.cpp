#include "obs/frame_ledger.h"

#include <algorithm>
#include <fstream>

#include "obs/metrics.h"
#include "util/stats.h"

namespace dive::obs {

namespace {

constexpr std::array<const char*, kFrameStageCount> kStageNames = {
    "encode",         "sidecar",    "uplink_queue",
    "transmit",       "propagation", "admission_wait",
    "batch_wait",     "inference",  "result",
};

double quantile_of(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

const char* to_string(FrameStage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

const char* to_string(FrameOutcome outcome) {
  switch (outcome) {
    case FrameOutcome::kPending: return "pending";
    case FrameOutcome::kCompleted: return "completed";
    case FrameOutcome::kCompletedLate: return "completed_late";
    case FrameOutcome::kDroppedUplink: return "dropped_uplink";
    case FrameOutcome::kDroppedQueue: return "dropped_queue";
    case FrameOutcome::kDroppedDeadline: return "dropped_deadline";
  }
  return "unknown";
}

bool is_drop(FrameOutcome outcome) {
  return outcome == FrameOutcome::kDroppedUplink ||
         outcome == FrameOutcome::kDroppedQueue ||
         outcome == FrameOutcome::kDroppedDeadline;
}

double FrameRecord::stage_ms(FrameStage s) const {
  const StageSpan& span = stage(s);
  return span.set ? util::to_millis(span.end - span.begin) : 0.0;
}

double FrameRecord::e2e_ms() const {
  if (outcome == FrameOutcome::kPending) return 0.0;
  return util::to_millis(finished - capture);
}

double FrameRecord::attributed_ms() const {
  double total = 0.0;
  for (const StageSpan& span : stages)
    if (span.set) total += util::to_millis(span.end - span.begin);
  return total;
}

FrameStage FrameRecord::dominant_stage() const {
  std::size_t best = 0;
  util::SimTime best_dur = -1;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (!stages[i].set) continue;
    const util::SimTime dur = stages[i].end - stages[i].begin;
    if (dur > best_dur) {
      best = i;
      best_dur = dur;
    }
  }
  return static_cast<FrameStage>(best);
}

FrameTraceContext FrameLedger::begin_frame(std::uint32_t session_id,
                                           std::uint64_t frame_index,
                                           util::SimTime capture,
                                           util::SimTime deadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  FrameTraceContext ctx;
  ctx.session_id = session_id;
  ctx.frame_index = frame_index;
  ctx.sequence = next_sequence_++;
  FrameRecord record;
  record.ctx = ctx;
  record.capture = capture;
  record.deadline = deadline;
  by_sequence_[ctx.sequence] = records_.size();
  records_.push_back(std::move(record));
  return ctx;
}

void FrameLedger::stage(const FrameTraceContext& ctx, FrameStage stage,
                        util::SimTime begin, util::SimTime end) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_sequence_.find(ctx.sequence);
  if (it == by_sequence_.end()) return;
  FrameRecord::StageSpan& span =
      records_[it->second].stages[static_cast<std::size_t>(stage)];
  span.begin = begin;
  span.end = std::max(begin, end);
  span.set = true;
}

void FrameLedger::outcome(const FrameTraceContext& ctx, FrameOutcome outcome,
                          util::SimTime at) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_sequence_.find(ctx.sequence);
  if (it == by_sequence_.end()) return;
  FrameRecord& record = records_[it->second];
  record.finished = at;
  if (outcome == FrameOutcome::kCompleted && record.deadline != 0 &&
      at > record.deadline) {
    record.outcome = FrameOutcome::kCompletedLate;
  } else {
    record.outcome = outcome;
  }
}

std::size_t FrameLedger::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<FrameRecord> FrameLedger::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::vector<FrameLedger::Autopsy> FrameLedger::autopsies() const {
  std::vector<Autopsy> out;
  for (const FrameRecord& record : records()) {
    if (record.outcome == FrameOutcome::kCompleted) continue;
    Autopsy a;
    a.ctx = record.ctx;
    a.outcome = record.outcome;
    a.dominant = record.dominant_stage();
    a.dominant_ms = record.stage_ms(a.dominant);
    util::SimTime last = record.finished;
    if (record.outcome == FrameOutcome::kPending) {
      for (const FrameRecord::StageSpan& span : record.stages)
        if (span.set) last = std::max(last, span.end);
    }
    a.elapsed_ms = util::to_millis(std::max<util::SimTime>(
        0, last - record.capture));
    out.push_back(a);
  }
  return out;
}

util::TextTable FrameLedger::stage_table() const {
  const std::vector<FrameRecord> records = this->records();
  util::TextTable table("frame ledger: per-stage latency");
  table.set_header(
      {"stage", "frames", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "share"});
  std::array<std::vector<double>, kFrameStageCount> samples;
  double attributed_total = 0.0;
  for (const FrameRecord& record : records) {
    for (std::size_t i = 0; i < kFrameStageCount; ++i) {
      if (!record.stages[i].set) continue;
      const double ms =
          util::to_millis(record.stages[i].end - record.stages[i].begin);
      samples[i].push_back(ms);
      attributed_total += ms;
    }
  }
  for (std::size_t i = 0; i < kFrameStageCount; ++i) {
    if (samples[i].empty()) continue;
    std::sort(samples[i].begin(), samples[i].end());
    double sum = 0.0;
    for (double x : samples[i]) sum += x;
    table.add_row(
        {kStageNames[i], std::to_string(samples[i].size()),
         util::TextTable::fmt(sum / static_cast<double>(samples[i].size())),
         util::TextTable::fmt(quantile_of(samples[i], 0.5)),
         util::TextTable::fmt(quantile_of(samples[i], 0.9)),
         util::TextTable::fmt(quantile_of(samples[i], 0.99)),
         util::TextTable::fmt_pct(
             attributed_total > 0.0 ? sum / attributed_total : 0.0)});
  }
  return table;
}

util::TextTable FrameLedger::session_table() const {
  const std::vector<FrameRecord> records = this->records();
  util::TextTable table("frame ledger: per-session end-to-end");
  table.set_header({"session", "frames", "completed", "late", "dropped",
                    "e2e_p50_ms", "e2e_p99_ms", "worst_stage"});
  std::map<std::uint32_t, std::vector<const FrameRecord*>> by_session;
  for (const FrameRecord& record : records)
    by_session[record.ctx.session_id].push_back(&record);
  for (const auto& [session, frames] : by_session) {
    std::size_t completed = 0, late = 0, dropped = 0;
    std::vector<double> e2e;
    std::array<double, kFrameStageCount> stage_sum{};
    for (const FrameRecord* record : frames) {
      if (record->outcome == FrameOutcome::kCompleted) ++completed;
      if (record->outcome == FrameOutcome::kCompletedLate) ++late;
      if (is_drop(record->outcome)) ++dropped;
      if (record->outcome == FrameOutcome::kCompleted ||
          record->outcome == FrameOutcome::kCompletedLate)
        e2e.push_back(record->e2e_ms());
      for (std::size_t i = 0; i < kFrameStageCount; ++i)
        if (record->stages[i].set)
          stage_sum[i] += util::to_millis(record->stages[i].end -
                                          record->stages[i].begin);
    }
    std::sort(e2e.begin(), e2e.end());
    const std::size_t worst = static_cast<std::size_t>(std::distance(
        stage_sum.begin(),
        std::max_element(stage_sum.begin(), stage_sum.end())));
    table.add_row({std::to_string(session), std::to_string(frames.size()),
                   std::to_string(completed), std::to_string(late),
                   std::to_string(dropped),
                   util::TextTable::fmt(quantile_of(e2e, 0.5)),
                   util::TextTable::fmt(quantile_of(e2e, 0.99)),
                   kStageNames[worst]});
  }
  return table;
}

util::TextTable FrameLedger::autopsy_table() const {
  util::TextTable table("deadline-miss autopsy: dominant stage per outcome");
  table.set_header({"outcome", "dominant_stage", "frames", "mean_dominant_ms",
                    "mean_elapsed_ms"});
  // outcome -> stage -> (count, dominant_ms sum, elapsed_ms sum)
  std::map<std::pair<int, int>, std::array<double, 3>> cells;
  for (const Autopsy& a : autopsies()) {
    auto& cell = cells[{static_cast<int>(a.outcome),
                        static_cast<int>(a.dominant)}];
    cell[0] += 1.0;
    cell[1] += a.dominant_ms;
    cell[2] += a.elapsed_ms;
  }
  for (const auto& [key, cell] : cells) {
    table.add_row({to_string(static_cast<FrameOutcome>(key.first)),
                   kStageNames[static_cast<std::size_t>(key.second)],
                   std::to_string(static_cast<long long>(cell[0])),
                   util::TextTable::fmt(cell[1] / cell[0]),
                   util::TextTable::fmt(cell[2] / cell[0])});
  }
  return table;
}

std::string FrameLedger::to_json() const {
  const std::vector<FrameRecord> records = this->records();
  std::string out = "{\"schema\":1,\"frames\":[";
  bool first = true;
  for (const FrameRecord& record : records) {
    if (!first) out += ",";
    first = false;
    out += "{\"session\":" + std::to_string(record.ctx.session_id) +
           ",\"frame\":" + std::to_string(record.ctx.frame_index) +
           ",\"seq\":" + std::to_string(record.ctx.sequence) +
           ",\"capture_us\":" + std::to_string(record.capture) +
           ",\"deadline_us\":" + std::to_string(record.deadline) +
           ",\"finished_us\":" + std::to_string(record.finished) +
           ",\"outcome\":\"";
    out += to_string(record.outcome);
    out += "\",\"stages\":[";
    bool first_stage = true;
    for (std::size_t i = 0; i < kFrameStageCount; ++i) {
      if (!record.stages[i].set) continue;
      if (!first_stage) out += ",";
      first_stage = false;
      out += "{\"stage\":\"";
      out += kStageNames[i];
      out += "\",\"begin_us\":" + std::to_string(record.stages[i].begin) +
             ",\"end_us\":" + std::to_string(record.stages[i].end) + "}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

bool FrameLedger::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string json = to_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

void FrameLedger::publish(MetricsRegistry& registry) const {
  const std::vector<FrameRecord> records = this->records();
  std::int64_t completed = 0, late = 0, dropped = 0;
  util::SampleSet e2e;
  std::array<util::SampleSet, kFrameStageCount> stage_sets;
  for (const FrameRecord& record : records) {
    if (record.outcome == FrameOutcome::kCompleted) ++completed;
    if (record.outcome == FrameOutcome::kCompletedLate) ++late;
    if (is_drop(record.outcome)) ++dropped;
    if (record.outcome == FrameOutcome::kCompleted ||
        record.outcome == FrameOutcome::kCompletedLate)
      e2e.add(record.e2e_ms());
    for (std::size_t i = 0; i < kFrameStageCount; ++i)
      if (record.stages[i].set)
        stage_sets[i].add(util::to_millis(record.stages[i].end -
                                          record.stages[i].begin));
  }
  registry.counter("obs.ledger.frames")
      .set(static_cast<std::int64_t>(records.size()));
  registry.counter("obs.ledger.completed").set(completed);
  registry.counter("obs.ledger.completed_late").set(late);
  registry.counter("obs.ledger.dropped").set(dropped);
  registry.distribution("obs.ledger.e2e_ms", "ms").assign(e2e);
  for (std::size_t i = 0; i < kFrameStageCount; ++i) {
    if (stage_sets[i].empty()) continue;
    // Cold aggregate export (one call per run), not a per-frame path —
    // building the name here does not violate the hot-path concat lint.
    const std::string name =
        std::string("obs.ledger.stage.") + kStageNames[i];
    registry.distribution(name, "ms").assign(stage_sets[i]);
  }
}

void FrameLedger::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  by_sequence_.clear();
  next_sequence_ = 1;
}

}  // namespace dive::obs
