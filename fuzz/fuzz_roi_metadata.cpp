// Fuzz target: roi::RoiMetadata::parse over arbitrary bytes.
//
// The sidecar parser feeds the edge-side RoI gate, so it must be a total
// function (parse returns nullopt, never UB/crash/unbounded allocation)
// AND a bijection on its accepted set: serialize(parse(b)) == b for every
// accepted b. The fix-point is what the gated-serving digest check rests
// on — if two byte strings parsed to the same metadata, a spoofed sidecar
// could re-encode to a colliding digest. Any accepted parse is also
// driven through the downstream accessors the gate uses.
//
// Seed corpus: fuzz/corpus/roi_metadata, real sidecars from gen_corpus.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>

#include "fuzz_driver.h"
#include "roi/metadata.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace dive;

  const std::span<const std::uint8_t> bytes(data, size);
  const auto meta = roi::RoiMetadata::parse(bytes);
  if (!meta) return 0;

  // Fix-point: an accepted wire form is canonical, so re-serializing the
  // parsed value must reproduce the input byte-for-byte.
  const std::vector<std::uint8_t> again = meta->serialize();
  if (again.size() != bytes.size() ||
      !std::equal(again.begin(), again.end(), bytes.begin()))
    std::abort();

  // And parsing the re-serialized bytes must accept and agree (decode →
  // encode → decode fix-point).
  const auto meta2 = roi::RoiMetadata::parse(again);
  if (!meta2 || !(*meta2 == *meta)) std::abort();

  // Exercise the consumers the gate touches on the hot path.
  (void)meta->motion_field();
  (void)meta->width();
  (void)meta->height();
  for (const auto& region : meta->regions) (void)region.hull_px();
  return 0;
}
