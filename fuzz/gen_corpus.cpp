// Seed-corpus generator for the wire-format fuzz targets.
//
// Emits REAL encodes — not hand-written bytes — so the fuzzers start
// from deep inside the accepted language of each parser:
//   <out>/bitstream/     one GOP of intra/inter/SKIP/HME frames
//   <out>/roi_metadata/  sidecars built from those encodes + hull regions
//
// Re-seeding after a format change (see DESIGN §14):
//   cmake --preset fuzz && cmake --build --preset fuzz --target gen_corpus
//   ./build-fuzz/fuzz/gen_corpus fuzz/corpus
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "codec/encoder.h"
#include "roi/metadata.h"
#include "video/frame.h"

namespace {

using namespace dive;

video::Frame moving_scene(int w, int h, int t) {
  video::Frame f(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      f.y.at(x, y) = static_cast<std::uint8_t>((x * 3 + y * 2 + t) & 0xFF);
  // A moving bright square (inter frames get real motion + residual).
  const int ox = 4 + 3 * t;
  for (int y = 8; y < 8 + 16 && y < h; ++y)
    for (int x = ox; x < ox + 16 && x < w; ++x) f.y.at(x, y) = 245;
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.u.at(x, y) = static_cast<std::uint8_t>(90 + ((x + t) & 0x3F));
      f.v.at(x, y) = static_cast<std::uint8_t>(170 - (y & 0x3F));
    }
  return f;
}

void write_file(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("%s: %zu bytes\n", path.string().c_str(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const fs::path root = argc > 1 ? argv[1] : "fuzz/corpus";
  fs::create_directories(root / "bitstream");
  fs::create_directories(root / "roi_metadata");

  // --- Bitstream corpus: one small GOP per interesting encoder mode. ---
  struct ModeSpec {
    const char* name;
    codec::MotionSearchMethod method;
    bool skip;
  };
  const ModeSpec modes[] = {
      {"hex", codec::MotionSearchMethod::kHex, true},
      {"hme", codec::MotionSearchMethod::kHme, true},
      {"noskip", codec::MotionSearchMethod::kHex, false},
  };
  std::vector<roi::RoiMetadata> sidecars;
  for (const auto& mode : modes) {
    codec::EncoderConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.threads = 1;
    cfg.search.method = mode.method;
    cfg.skip_blocks = mode.skip;
    codec::Encoder enc(cfg);
    for (int t = 0; t < 3; ++t) {
      const auto frame = moving_scene(cfg.width, cfg.height, t);
      const auto encoded =
          t == 1 ? enc.encode_to_target(frame, 900) : enc.encode(frame, 30);
      write_file(root / "bitstream" /
                     (std::string(mode.name) + "_f" + std::to_string(t)),
                 encoded.data);
      sidecars.push_back(roi::from_encoded(encoded, cfg.width, cfg.height));
    }
  }

  // --- RoI metadata corpus: sidecars from the encodes above, with and
  // without foreground hull regions (including a degenerate 2-pt hull,
  // which the wire format must carry verbatim). ---
  int idx = 0;
  for (auto& meta : sidecars) {
    if (idx % 3 == 1) {
      roi::add_region(meta,
                      {{8.0, 10.0}, {30.0, 9.5}, {31.0, 27.0}, {7.5, 26.0}},
                      {1.5, -0.5});
      roi::add_region(meta, {{40.0, 12.0}, {55.0, 14.0}, {48.0, 30.0}},
                      {-2.0, 0.0});
    } else if (idx % 3 == 2) {
      roi::add_region(meta, {{2.0, 2.0}, {5.0, 2.0}}, {0.0, 0.0});
    }
    write_file(root / "roi_metadata" / ("sidecar_" + std::to_string(idx)),
               meta.serialize());
    ++idx;
  }

  std::printf("corpus written under %s\n", root.string().c_str());
  return 0;
}
