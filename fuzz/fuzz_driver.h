// Shared entry-point shim for the wire-format fuzz targets.
//
// With clang the targets link -fsanitize=fuzzer (DIVE_LIBFUZZER defined)
// and libFuzzer provides main(). With any other compiler this header
// provides a standalone main() that replays corpus files — and, for each
// file, a deterministic set of single-bit-flip mutants — so the 60 s CI
// smoke run and local repros work without clang. Crash repro:
//   ./fuzz_bitstream_decode path/to/input            (single file)
//   ./fuzz_bitstream_decode fuzz/corpus/bitstream    (whole directory)
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#ifndef DIVE_LIBFUZZER

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace dive::fuzz {

inline std::vector<std::uint8_t> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Replays one input plus 64 deterministic single-bit-flip mutants
/// (positions stride the whole buffer), approximating one libFuzzer
/// mutation generation without libFuzzer.
inline void run_with_mutants(std::vector<std::uint8_t> bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  if (bytes.empty()) return;
  const std::size_t total_bits = bytes.size() * 8;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::size_t bit = (i * 2654435761u) % total_bits;
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

}  // namespace dive::fuzz

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::size_t inputs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind('-', 0) == 0) continue;  // ignore libFuzzer-style flags
    const fs::path p(arg);
    if (fs::is_directory(p)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(p))
        if (entry.is_regular_file()) files.push_back(entry.path());
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        dive::fuzz::run_with_mutants(dive::fuzz::read_file(f));
        ++inputs;
      }
    } else if (fs::is_regular_file(p)) {
      dive::fuzz::run_with_mutants(dive::fuzz::read_file(p));
      ++inputs;
    } else {
      std::fprintf(stderr, "fuzz driver: no such input: %s\n", arg.c_str());
      return 2;
    }
  }
  std::printf("fuzz driver: %zu corpus inputs x 65 variants, no crash\n",
              inputs);
  return 0;
}

#endif  // !DIVE_LIBFUZZER
