// Fuzz target: codec::Decoder over arbitrary bytes.
//
// The decoder is the edge server's first contact with radio bytes, so it
// must be a total function: any input either decodes or returns a clean
// BitstreamError via try_decode — never UB, never a crash, allocation
// bounded by the 1024x1024-macroblock geometry cap. Each input is
// decoded twice: against a fresh decoder (intra entry path) and against
// a decoder holding a real reference frame (inter/SKIP paths, which a
// fresh decoder rejects before touching MB data).
//
// Seed corpus: fuzz/corpus/bitstream, real encodes from gen_corpus.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "fuzz_driver.h"
#include "video/frame.h"

namespace {

using namespace dive;

/// Deterministic 64x64 test card (gradient + moving square), encoded once
/// per process to give the inter path a valid reference.
video::Frame test_card(int shift) {
  video::Frame f(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      f.y.at(x, y) = static_cast<std::uint8_t>((x * 3 + y * 2) & 0xFF);
  for (int y = 8; y < 24; ++y)
    for (int x = 8 + shift; x < 24 + shift; ++x)
      f.y.at(x, y) = 250;
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      f.u.at(x, y) = static_cast<std::uint8_t>(96 + x);
      f.v.at(x, y) = static_cast<std::uint8_t>(160 - y);
    }
  return f;
}

std::vector<std::uint8_t> reference_stream() {
  codec::EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.threads = 1;
  codec::Encoder enc(cfg);
  return enc.encode(test_card(0), 30).data;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  // Path 1: fresh decoder (intra-or-reject).
  {
    codec::Decoder dec;
    (void)dec.try_decode(bytes);
  }

  // Path 2: decoder with a real 64x64 reference, so inter frames survive
  // the header checks and exercise MV prediction, SKIP copy, and
  // residual decode.
  {
    static const std::vector<std::uint8_t> ref = reference_stream();
    codec::Decoder dec;
    if (!dec.try_decode(ref)) std::abort();  // our own encode must decode
    const bool accepted = dec.try_decode(bytes).has_value();
    // A REJECTED frame must leave the decoder state untouched, so the
    // session resumes on the next good frame. (An accepted input may
    // legitimately switch geometry, after which `ref` no longer fits.)
    if (!accepted && !dec.try_decode(ref)) std::abort();
  }
  return 0;
}
