#include "data/dataset.h"

#include <gtest/gtest.h>

namespace dive::data {
namespace {

TEST(DatasetSpecs, PaperFrameRates) {
  EXPECT_DOUBLE_EQ(nuscenes_like().fps, 12.0);
  EXPECT_DOUBLE_EQ(robotcar_like().fps, 16.0);
  EXPECT_DOUBLE_EQ(kitti_like().fps, 10.0);
}

TEST(DatasetSpecs, DimensionsAreMacroblockAligned) {
  for (const auto& spec : {nuscenes_like(), robotcar_like(), kitti_like()}) {
    EXPECT_EQ(spec.width % 16, 0) << to_string(spec.kind);
    EXPECT_EQ(spec.height % 16, 0) << to_string(spec.kind);
  }
}

TEST(DatasetSpecs, AspectRatiosMatchSources) {
  // nuScenes 16:9, RobotCar 4:3, KITTI ~3.3:1.
  const auto nu = nuscenes_like();
  EXPECT_NEAR(static_cast<double>(nu.width) / nu.height, 16.0 / 9.0, 0.01);
  const auto rc = robotcar_like();
  EXPECT_NEAR(static_cast<double>(rc.width) / rc.height, 4.0 / 3.0, 0.01);
  const auto ki = kitti_like();
  EXPECT_NEAR(static_cast<double>(ki.width) / ki.height, 1242.0 / 375.0, 0.25);
}

TEST(GenerateClip, DeterministicPerIndex) {
  const auto spec = nuscenes_like(2, 8);
  const Clip a = generate_clip(spec, 0);
  const Clip b = generate_clip(spec, 0);
  ASSERT_EQ(a.frame_count(), b.frame_count());
  EXPECT_EQ(a.frames[3].image, b.frames[3].image);

  const Clip c = generate_clip(spec, 1);
  EXPECT_NE(a.frames[3].image, c.frames[3].image);
}

TEST(GenerateClip, TimestampsFollowFps) {
  const auto spec = robotcar_like(1, 10);
  const Clip clip = generate_clip(spec, 0);
  ASSERT_EQ(clip.frame_count(), 10);
  EXPECT_DOUBLE_EQ(clip.frames[0].timestamp, 0.0);
  EXPECT_NEAR(clip.frames[9].timestamp - clip.frames[8].timestamp,
              1.0 / 16.0, 1e-12);
}

TEST(GenerateClip, KittiCarriesImu) {
  const auto kitti = generate_clip(kitti_like(1, 10), 0);
  EXPECT_FALSE(kitti.imu.empty());
  // ~100 Hz over the clip duration.
  EXPECT_GT(kitti.imu.size(), 90u);
  const auto nu = generate_clip(nuscenes_like(1, 10), 0);
  EXPECT_TRUE(nu.imu.empty());
}

TEST(GenerateClip, AnnotationsPresent) {
  const Clip clip = generate_clip(nuscenes_like(1, 12), 0);
  long objects = 0;
  for (const auto& f : clip.frames) objects += static_cast<long>(f.objects.size());
  EXPECT_GT(objects, 10);
}

TEST(ClassifyMotion, ThreeStates) {
  video::EgoState stopped;
  stopped.speed = 0.1;
  EXPECT_EQ(classify_motion(stopped), MotionState::kStatic);

  video::EgoState straight;
  straight.speed = 10.0;
  straight.yaw_rate = 0.001;
  EXPECT_EQ(classify_motion(straight), MotionState::kStraight);

  video::EgoState turning;
  turning.speed = 8.0;
  turning.yaw_rate = 0.3;
  EXPECT_EQ(classify_motion(turning), MotionState::kTurning);
}

TEST(DatasetStats, CountsPerClass) {
  const auto spec = nuscenes_like(1, 16);
  const auto clips = generate_dataset(spec);
  const auto stats = accumulate_stats(spec, clips);
  EXPECT_EQ(stats.clips, 1);
  EXPECT_EQ(stats.frames, 16);
  EXPECT_GT(stats.cars, 0);
  // nuScenes-like scenes are calibrated to several cars per frame.
  EXPECT_GT(static_cast<double>(stats.cars) / stats.frames, 2.0);
}

TEST(DatasetNames, Stable) {
  EXPECT_STREQ(to_string(DatasetKind::kNuScenesLike), "nuScenes");
  EXPECT_STREQ(to_string(DatasetKind::kRobotCarLike), "RobotCar");
  EXPECT_STREQ(to_string(DatasetKind::kKittiLike), "KITTI");
  EXPECT_STREQ(to_string(MotionState::kStatic), "static");
  EXPECT_STREQ(to_string(MotionState::kTurning), "turning");
}

}  // namespace
}  // namespace dive::data
