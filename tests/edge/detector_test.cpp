#include "edge/detector.h"

#include <gtest/gtest.h>

namespace dive::edge {
namespace {

/// Paints a chroma blob into a neutral frame.
void paint_blob(video::Frame& f, int x0, int y0, int x1, int y1,
                std::uint8_t u, std::uint8_t v) {
  for (int y = y0 / 2; y < y1 / 2; ++y)
    for (int x = x0 / 2; x < x1 / 2; ++x) {
      f.u.at(x, y) = u;
      f.v.at(x, y) = v;
    }
}

TEST(ChromaDetector, EmptyFrameNoDetections) {
  const ChromaDetector det;
  EXPECT_TRUE(det.detect(video::Frame(128, 128)).empty());
}

TEST(ChromaDetector, DetectsCarBlob) {
  video::Frame f(128, 128);
  paint_blob(f, 40, 60, 80, 84, 165, 120);  // +U: car signature
  const ChromaDetector det;
  const auto dets = det.detect(f);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].cls, video::ObjectClass::kCar);
  EXPECT_NEAR(dets[0].box.x0, 40, 2.1);
  EXPECT_NEAR(dets[0].box.x1, 80, 2.1);
  EXPECT_NEAR(dets[0].box.y0, 60, 2.1);
  EXPECT_GT(dets[0].confidence, 0.5);
}

TEST(ChromaDetector, DetectsPedestrianBlob) {
  video::Frame f(128, 128);
  paint_blob(f, 20, 30, 34, 70, 120, 165);  // +V: pedestrian signature
  const ChromaDetector det;
  const auto dets = det.detect(f);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].cls, video::ObjectClass::kPedestrian);
}

TEST(ChromaDetector, SeparatesTwoObjects) {
  video::Frame f(128, 128);
  paint_blob(f, 10, 10, 50, 40, 165, 120);   // car
  paint_blob(f, 80, 60, 100, 110, 120, 165); // pedestrian
  const ChromaDetector det;
  const auto dets = det.detect(f);
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_NE(dets[0].cls, dets[1].cls);
}

TEST(ChromaDetector, IgnoresSubthresholdChroma) {
  video::Frame f(128, 128);
  paint_blob(f, 20, 20, 60, 60, 140, 128);  // only +12 U: below threshold
  const ChromaDetector det;
  EXPECT_TRUE(det.detect(f).empty());
}

TEST(ChromaDetector, MinAreaFiltersSpecks) {
  video::Frame f(128, 128);
  paint_blob(f, 20, 20, 24, 24, 170, 120);  // 2x2 chroma pixels
  const ChromaDetector det;
  EXPECT_TRUE(det.detect(f).empty());
}

TEST(ChromaDetector, ConfidenceScalesWithExcess) {
  const ChromaDetector det;
  video::Frame weak(128, 128), strong(128, 128);
  paint_blob(weak, 20, 20, 60, 60, 150, 120);
  paint_blob(strong, 20, 20, 60, 60, 180, 120);
  const auto dw = det.detect(weak);
  const auto ds = det.detect(strong);
  ASSERT_EQ(dw.size(), 1u);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_LT(dw[0].confidence, ds[0].confidence);
}

TEST(ChromaDetector, SortedByConfidence) {
  video::Frame f(256, 128);
  paint_blob(f, 10, 10, 50, 50, 150, 120);
  paint_blob(f, 100, 10, 140, 50, 185, 120);
  paint_blob(f, 180, 10, 220, 50, 160, 120);
  const ChromaDetector det;
  const auto dets = det.detect(f);
  ASSERT_EQ(dets.size(), 3u);
  EXPECT_GE(dets[0].confidence, dets[1].confidence);
  EXPECT_GE(dets[1].confidence, dets[2].confidence);
}

TEST(ChromaDetector, BlurredBlobShrinksOrVanishes) {
  // Simulate chroma smearing by halving the excess at the border ring —
  // detection must survive but with a smaller/equal box; with the whole
  // blob attenuated below threshold it must vanish.
  video::Frame f(128, 128);
  paint_blob(f, 40, 40, 80, 80, 170, 120);
  const ChromaDetector det;
  const auto sharp = det.detect(f);
  ASSERT_EQ(sharp.size(), 1u);

  video::Frame faded(128, 128);
  paint_blob(faded, 40, 40, 80, 80, 143, 124);
  EXPECT_TRUE(det.detect(faded).empty());
}

TEST(ChromaDetector, CrossSuppressionBlocksMixedChroma) {
  // A blob pushing BOTH planes high matches neither class signature.
  video::Frame f(128, 128);
  paint_blob(f, 20, 20, 70, 70, 180, 180);
  const ChromaDetector det;
  EXPECT_TRUE(det.detect(f).empty());
}

}  // namespace
}  // namespace dive::edge
