#include "edge/evaluator.h"

#include <gtest/gtest.h>

namespace dive::edge {
namespace {

Detection det(video::ObjectClass cls, geom::Box box, double conf) {
  return {cls, box, conf};
}

constexpr auto kCar = video::ObjectClass::kCar;
constexpr auto kPed = video::ObjectClass::kPedestrian;

TEST(AveragePrecision, PerfectDetections) {
  // 3 TPs covering 3 GT boxes -> AP 1.
  std::vector<std::pair<double, bool>> scored = {
      {0.9, true}, {0.8, true}, {0.7, true}};
  EXPECT_DOUBLE_EQ(average_precision(scored, 3), 1.0);
}

TEST(AveragePrecision, AllFalsePositives) {
  std::vector<std::pair<double, bool>> scored = {{0.9, false}, {0.8, false}};
  EXPECT_DOUBLE_EQ(average_precision(scored, 2), 0.0);
}

TEST(AveragePrecision, MissedGroundTruthCapsRecall) {
  // 1 TP of 2 GT: AP = 0.5 (precision 1 up to recall 0.5).
  std::vector<std::pair<double, bool>> scored = {{0.9, true}};
  EXPECT_DOUBLE_EQ(average_precision(scored, 2), 0.5);
}

TEST(AveragePrecision, FalsePositiveAboveTruePositive) {
  // FP ranked first: precision at recall 1 is 1/2 -> AP 0.5.
  std::vector<std::pair<double, bool>> scored = {{0.9, false}, {0.8, true}};
  EXPECT_DOUBLE_EQ(average_precision(scored, 1), 0.5);
}

TEST(AveragePrecision, EnvelopeInterpolation) {
  // TP, FP, TP over 2 GT: precision points 1, 1/2, 2/3.
  // Envelope: [1, 2/3, 2/3]; AP = 0.5*1 + 0.5*(2/3) = 5/6.
  std::vector<std::pair<double, bool>> scored = {
      {0.9, true}, {0.8, false}, {0.7, true}};
  EXPECT_NEAR(average_precision(scored, 2), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecision, NoGroundTruthIsZero) {
  EXPECT_DOUBLE_EQ(average_precision({{0.9, false}}, 0), 0.0);
}

TEST(ApEvaluator, ExactMatchScoresOne) {
  ApEvaluator ev;
  const DetectionList truth = {det(kCar, {10, 10, 50, 40}, 1.0)};
  ev.add_frame({det(kCar, {10, 10, 50, 40}, 0.9)}, truth);
  EXPECT_DOUBLE_EQ(ev.ap(kCar), 1.0);
  EXPECT_DOUBLE_EQ(ev.map(), 1.0);
}

TEST(ApEvaluator, IouThresholdGates) {
  ApEvaluator ev;
  const DetectionList truth = {det(kCar, {0, 0, 100, 100}, 1.0)};
  // Shifted box with IoU just under 0.5 is a false positive.
  ev.add_frame({det(kCar, {60, 0, 160, 100}, 0.9)}, truth);
  EXPECT_DOUBLE_EQ(ev.ap(kCar), 0.0);

  ApEvaluator ev2;
  // IoU = 80/120 = 0.67 >= 0.5: true positive.
  ev2.add_frame({det(kCar, {20, 0, 120, 100}, 0.9)}, truth);
  EXPECT_DOUBLE_EQ(ev2.ap(kCar), 1.0);
}

TEST(ApEvaluator, ClassesScoredIndependently) {
  ApEvaluator ev;
  const DetectionList truth = {det(kCar, {0, 0, 50, 50}, 1.0),
                               det(kPed, {100, 0, 120, 60}, 1.0)};
  // Car box detected with pedestrian label: FP for ped, miss for car.
  ev.add_frame({det(kPed, {0, 0, 50, 50}, 0.9)}, truth);
  EXPECT_DOUBLE_EQ(ev.ap(kCar), 0.0);
  EXPECT_DOUBLE_EQ(ev.ap(kPed), 0.0);
}

TEST(ApEvaluator, DuplicateDetectionsPenalized) {
  ApEvaluator ev;
  const DetectionList truth = {det(kCar, {0, 0, 50, 50}, 1.0)};
  ev.add_frame({det(kCar, {0, 0, 50, 50}, 0.9),
                det(kCar, {1, 1, 51, 51}, 0.8)},
               truth);
  // Second detection cannot re-match the same GT: 1 TP + 1 FP.
  EXPECT_DOUBLE_EQ(ev.ap(kCar), 1.0);  // envelope: TP ranked first
  EXPECT_EQ(ev.detection_count(kCar), 2);
}

TEST(ApEvaluator, GreedyMatchPrefersBestIou) {
  ApEvaluator ev;
  const DetectionList truth = {det(kCar, {0, 0, 40, 40}, 1.0),
                               det(kCar, {100, 0, 140, 40}, 1.0)};
  // One detection overlapping both GTs a bit, better with the first.
  ev.add_frame({det(kCar, {5, 0, 45, 40}, 0.9),
                det(kCar, {100, 0, 140, 40}, 0.8)},
               truth);
  EXPECT_DOUBLE_EQ(ev.ap(kCar), 1.0);
}

TEST(ApEvaluator, AccumulatesAcrossFrames) {
  ApEvaluator ev;
  const DetectionList truth = {det(kCar, {0, 0, 50, 50}, 1.0)};
  ev.add_frame({det(kCar, {0, 0, 50, 50}, 0.9)}, truth);   // hit
  ev.add_frame({}, truth);                                  // miss
  EXPECT_DOUBLE_EQ(ev.ap(kCar), 0.5);
  EXPECT_EQ(ev.frames(), 2);
  EXPECT_EQ(ev.ground_truth_count(kCar), 2);
}

TEST(ApEvaluator, MapAveragesPresentClasses) {
  ApEvaluator ev;
  ev.add_frame({det(kCar, {0, 0, 50, 50}, 0.9)},
               {det(kCar, {0, 0, 50, 50}, 1.0)});
  // Pedestrians never appear in GT: mAP = AP(car).
  EXPECT_DOUBLE_EQ(ev.map(), 1.0);

  ev.add_frame({}, {det(kPed, {0, 0, 20, 60}, 1.0)});
  EXPECT_DOUBLE_EQ(ev.map(), 0.5);  // (1.0 + 0.0) / 2
}

TEST(ApEvaluator, ResetClearsState) {
  ApEvaluator ev;
  ev.add_frame({det(kCar, {0, 0, 50, 50}, 0.9)},
               {det(kCar, {0, 0, 50, 50}, 1.0)});
  ev.reset();
  EXPECT_EQ(ev.frames(), 0);
  EXPECT_EQ(ev.ground_truth_count(kCar), 0);
  EXPECT_DOUBLE_EQ(ev.map(), 0.0);
}

}  // namespace
}  // namespace dive::edge
