#include "edge/server.h"

#include <gtest/gtest.h>

#include "codec/encoder.h"

namespace dive::edge {
namespace {

video::Frame frame_with_car(int w, int h) {
  video::Frame f(w, h);
  for (int y = 10; y < 25; ++y)
    for (int x = 10; x < 40; ++x) {
      f.u.at(x, y) = 168;
      f.v.at(x, y) = 120;
    }
  return f;
}

TEST(EdgeServer, DecodesAndDetects) {
  codec::Encoder enc({.width = 128, .height = 64});
  const auto frame = frame_with_car(128, 64);
  const auto encoded = enc.encode(frame, 8);

  EdgeServer server(ServerConfig{}, 1);
  const auto result = server.process(encoded.data, util::from_seconds(1));
  ASSERT_EQ(result.detections.size(), 1u);
  EXPECT_EQ(result.detections[0].cls, video::ObjectClass::kCar);
  EXPECT_EQ(result.decoded.width(), 128);
}

TEST(EdgeServer, ResultTimeIncludesLatencies) {
  codec::Encoder enc({.width = 64, .height = 32});
  const auto encoded = enc.encode(video::Frame(64, 32), 20);
  ServerConfig cfg;
  cfg.decode_latency = util::from_millis(5);
  cfg.inference_latency = util::from_millis(20);
  cfg.inference_jitter_ms = 0.0;
  cfg.downlink_delay = util::from_millis(10);
  EdgeServer server(cfg, 2);
  const auto r = server.process(encoded.data, util::from_seconds(2));
  EXPECT_EQ(r.result_at_agent, util::from_seconds(2) + util::from_millis(35));
}

TEST(EdgeServer, JitterBoundsResultTime) {
  codec::Encoder enc({.width = 64, .height = 32});
  ServerConfig cfg;
  cfg.inference_jitter_ms = 3.0;
  EdgeServer server(cfg, 3);
  const util::SimTime nominal = cfg.decode_latency + cfg.inference_latency +
                                cfg.downlink_delay;
  for (int i = 0; i < 10; ++i) {
    const auto encoded = enc.encode(video::Frame(64, 32), 20);
    const auto r = server.process(encoded.data, 0);
    EXPECT_GE(r.result_at_agent, nominal - util::from_millis(3));
    EXPECT_LE(r.result_at_agent, nominal + util::from_millis(3));
  }
}

TEST(EdgeServer, JitterIsPerFrameStreamIndependentOfCallOrder) {
  // Determinism contract: inference_jitter(k) is a pure function of
  // (seed, k) — two servers with the same seed agree frame-by-frame no
  // matter how many frames either has processed, and querying out of
  // order changes nothing.
  ServerConfig cfg;
  cfg.inference_jitter_ms = 5.0;
  EdgeServer a(cfg, 7);
  EdgeServer b(cfg, 7);
  for (int k = 9; k >= 0; --k)
    EXPECT_EQ(a.inference_jitter(k), b.inference_jitter(k)) << "frame " << k;
  // Different seeds draw different streams (at least one frame differs).
  EdgeServer c(cfg, 8);
  bool any_diff = false;
  for (int k = 0; k < 10; ++k)
    any_diff = any_diff || a.inference_jitter(k) != c.inference_jitter(k);
  EXPECT_TRUE(any_diff);
}

TEST(EdgeServer, ProcessUsesPerFrameJitterStream) {
  codec::Encoder enc({.width = 64, .height = 32});
  ServerConfig cfg;
  cfg.inference_jitter_ms = 4.0;
  EdgeServer server(cfg, 11);
  const util::SimTime nominal =
      cfg.decode_latency + cfg.inference_latency + cfg.downlink_delay;
  for (std::uint64_t k = 0; k < 5; ++k) {
    const auto jitter = server.inference_jitter(k);
    EXPECT_EQ(server.frames_processed(), k);
    const auto r = server.process(enc.encode(video::Frame(64, 32), 20).data, 0);
    EXPECT_EQ(r.result_at_agent, nominal + jitter) << "frame " << k;
  }
}

TEST(EdgeServer, DecodeAndDetectSkipsLatencyModel) {
  codec::Encoder enc({.width = 128, .height = 64});
  EdgeServer server(ServerConfig{}, 12);
  const auto dets =
      server.decode_and_detect(enc.encode(frame_with_car(128, 64), 8).data);
  ASSERT_EQ(dets.size(), 1u);
  // decode_and_detect advances decoder state but not the jitter stream.
  EXPECT_EQ(server.frames_processed(), 0u);
  EXPECT_TRUE(server.has_reference());
}

TEST(EdgeServer, InferRawBypassesCodec) {
  EdgeServer server(ServerConfig{}, 4);
  const auto dets = server.infer_raw(frame_with_car(128, 64));
  ASSERT_EQ(dets.size(), 1u);
}

TEST(EdgeServer, StatefulAcrossInterFrames) {
  codec::Encoder enc({.width = 64, .height = 32});
  EdgeServer server(ServerConfig{}, 5);
  server.process(enc.encode(video::Frame(64, 32), 24).data, 0);
  EXPECT_TRUE(server.has_reference());
  // A subsequent inter frame decodes fine against the server's state.
  const auto inter = enc.encode(video::Frame(64, 32), 24);
  EXPECT_NO_THROW(server.process(inter.data, util::from_millis(100)));
}

}  // namespace
}  // namespace dive::edge
