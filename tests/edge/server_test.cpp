#include "edge/server.h"

#include <gtest/gtest.h>

#include "codec/encoder.h"

namespace dive::edge {
namespace {

video::Frame frame_with_car(int w, int h) {
  video::Frame f(w, h);
  for (int y = 10; y < 25; ++y)
    for (int x = 10; x < 40; ++x) {
      f.u.at(x, y) = 168;
      f.v.at(x, y) = 120;
    }
  return f;
}

TEST(EdgeServer, DecodesAndDetects) {
  codec::Encoder enc({.width = 128, .height = 64});
  const auto frame = frame_with_car(128, 64);
  const auto encoded = enc.encode(frame, 8);

  EdgeServer server(ServerConfig{}, 1);
  const auto result = server.process(encoded.data, util::from_seconds(1));
  ASSERT_EQ(result.detections.size(), 1u);
  EXPECT_EQ(result.detections[0].cls, video::ObjectClass::kCar);
  EXPECT_EQ(result.decoded.width(), 128);
}

TEST(EdgeServer, ResultTimeIncludesLatencies) {
  codec::Encoder enc({.width = 64, .height = 32});
  const auto encoded = enc.encode(video::Frame(64, 32), 20);
  ServerConfig cfg;
  cfg.decode_latency = util::from_millis(5);
  cfg.inference_latency = util::from_millis(20);
  cfg.inference_jitter_ms = 0.0;
  cfg.downlink_delay = util::from_millis(10);
  EdgeServer server(cfg, 2);
  const auto r = server.process(encoded.data, util::from_seconds(2));
  EXPECT_EQ(r.result_at_agent, util::from_seconds(2) + util::from_millis(35));
}

TEST(EdgeServer, JitterBoundsResultTime) {
  codec::Encoder enc({.width = 64, .height = 32});
  ServerConfig cfg;
  cfg.inference_jitter_ms = 3.0;
  EdgeServer server(cfg, 3);
  const util::SimTime nominal = cfg.decode_latency + cfg.inference_latency +
                                cfg.downlink_delay;
  for (int i = 0; i < 10; ++i) {
    const auto encoded = enc.encode(video::Frame(64, 32), 20);
    const auto r = server.process(encoded.data, 0);
    EXPECT_GE(r.result_at_agent, nominal - util::from_millis(3));
    EXPECT_LE(r.result_at_agent, nominal + util::from_millis(3));
  }
}

TEST(EdgeServer, JitterIsPerFrameStreamIndependentOfCallOrder) {
  // Determinism contract: inference_jitter(k) is a pure function of
  // (seed, k) — two servers with the same seed agree frame-by-frame no
  // matter how many frames either has processed, and querying out of
  // order changes nothing.
  ServerConfig cfg;
  cfg.inference_jitter_ms = 5.0;
  EdgeServer a(cfg, 7);
  EdgeServer b(cfg, 7);
  for (int k = 9; k >= 0; --k)
    EXPECT_EQ(a.inference_jitter(k), b.inference_jitter(k)) << "frame " << k;
  // Different seeds draw different streams (at least one frame differs).
  EdgeServer c(cfg, 8);
  bool any_diff = false;
  for (int k = 0; k < 10; ++k)
    any_diff = any_diff || a.inference_jitter(k) != c.inference_jitter(k);
  EXPECT_TRUE(any_diff);
}

TEST(EdgeServer, ProcessUsesPerFrameJitterStream) {
  codec::Encoder enc({.width = 64, .height = 32});
  ServerConfig cfg;
  cfg.inference_jitter_ms = 4.0;
  EdgeServer server(cfg, 11);
  const util::SimTime nominal =
      cfg.decode_latency + cfg.inference_latency + cfg.downlink_delay;
  for (std::uint64_t k = 0; k < 5; ++k) {
    const auto jitter = server.inference_jitter(k);
    EXPECT_EQ(server.frames_processed(), k);
    const auto r = server.process(enc.encode(video::Frame(64, 32), 20).data, 0);
    EXPECT_EQ(r.result_at_agent, nominal + jitter) << "frame " << k;
  }
}

TEST(EdgeServer, DecodeAndDetectSkipsLatencyModel) {
  codec::Encoder enc({.width = 128, .height = 64});
  EdgeServer server(ServerConfig{}, 12);
  const auto dets =
      server.decode_and_detect(enc.encode(frame_with_car(128, 64), 8).data);
  ASSERT_EQ(dets.size(), 1u);
  // decode_and_detect advances decoder state but not the jitter stream.
  EXPECT_EQ(server.frames_processed(), 0u);
  EXPECT_TRUE(server.has_reference());
}

TEST(EdgeServer, InferRawBypassesCodec) {
  EdgeServer server(ServerConfig{}, 4);
  const auto dets = server.infer_raw(frame_with_car(128, 64));
  ASSERT_EQ(dets.size(), 1u);
}

TEST(EdgeServer, ProcessAndSplitPathConsumeJitterIdentically) {
  // Regression for the serving/gating split: a layer that replaces
  // process() with decode_and_detect() + take_jitter() (serve::) or with
  // the RoI gate's decode + infer path must see the SAME jitter for the
  // k-th frame the server handles. Drive two same-seeded servers down
  // the two paths over a mixed I/P sequence and require identical
  // detections, identical jitter, and identical counter advance.
  codec::Encoder enc_a({.width = 128, .height = 64});
  codec::Encoder enc_b({.width = 128, .height = 64});
  ServerConfig cfg;
  cfg.inference_jitter_ms = 5.0;
  EdgeServer monolithic(cfg, 21);
  EdgeServer split(cfg, 21);
  const util::SimTime nominal =
      cfg.decode_latency + cfg.inference_latency + cfg.downlink_delay;
  for (std::uint64_t k = 0; k < 6; ++k) {
    const auto frame = frame_with_car(128, 64);
    const auto bytes_a = enc_a.encode(frame, 8).data;
    const auto bytes_b = enc_b.encode(frame, 8).data;
    ASSERT_EQ(bytes_a, bytes_b);

    const auto pure = split.inference_jitter(k);  // pure: consumes nothing
    const auto result = monolithic.process(bytes_a, 0);
    const auto dets = split.decode_and_detect(bytes_b);
    const auto taken = split.take_jitter();

    EXPECT_EQ(taken, pure) << "frame " << k;
    EXPECT_EQ(result.result_at_agent, nominal + taken) << "frame " << k;
    ASSERT_EQ(dets.size(), result.detections.size()) << "frame " << k;
    for (std::size_t i = 0; i < dets.size(); ++i) {
      EXPECT_EQ(dets[i].cls, result.detections[i].cls);
      EXPECT_EQ(dets[i].box.x0, result.detections[i].box.x0);
      EXPECT_EQ(dets[i].confidence, result.detections[i].confidence);
    }
    EXPECT_EQ(split.frames_processed(), monolithic.frames_processed())
        << "frame " << k;
  }
}

TEST(EdgeServer, StatefulAcrossInterFrames) {
  codec::Encoder enc({.width = 64, .height = 32});
  EdgeServer server(ServerConfig{}, 5);
  server.process(enc.encode(video::Frame(64, 32), 24).data, 0);
  EXPECT_TRUE(server.has_reference());
  // A subsequent inter frame decodes fine against the server's state.
  const auto inter = enc.encode(video::Frame(64, 32), 24);
  EXPECT_NO_THROW(server.process(inter.data, util::from_millis(100)));
}

}  // namespace
}  // namespace dive::edge
