#include "net/bandwidth.h"

#include <gtest/gtest.h>

namespace dive::net {
namespace {

using util::from_millis;
using util::from_seconds;

TEST(ConstantBandwidth, ExactIntegral) {
  ConstantBandwidth bw(1000.0);
  EXPECT_DOUBLE_EQ(bw.bytes_between(0, from_seconds(2.0)), 2000.0);
  EXPECT_DOUBLE_EQ(bw.bytes_between(from_seconds(5), from_seconds(5)), 0.0);
}

TEST(ConstantBandwidth, TimeToSend) {
  ConstantBandwidth bw(1000.0);
  const auto t = bw.time_to_send(from_seconds(1.0), 500.0, from_seconds(100));
  EXPECT_EQ(t, from_seconds(1.5));
  EXPECT_EQ(bw.time_to_send(0, 0.0, from_seconds(100)), 0);
}

TEST(MbpsConversion, PaperUnits) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(2.0), 250'000.0);
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(1.0), 125'000.0);
}

TEST(SteppedBandwidth, RatePerSegment) {
  SteppedBandwidth bw({{0, 100.0}, {from_seconds(1), 200.0}});
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(from_millis(500)), 100.0);
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(from_seconds(1)), 200.0);
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(from_seconds(10)), 200.0);
}

TEST(SteppedBandwidth, IntegralSpansSteps) {
  SteppedBandwidth bw({{0, 100.0}, {from_seconds(1), 300.0}});
  EXPECT_DOUBLE_EQ(bw.bytes_between(0, from_seconds(2)), 400.0);
  EXPECT_DOUBLE_EQ(
      bw.bytes_between(from_millis(500), from_millis(1500)), 50.0 + 150.0);
}

TEST(SteppedBandwidth, TimeToSendCrossesStep) {
  SteppedBandwidth bw({{0, 100.0}, {from_seconds(1), 400.0}});
  // 100 bytes in the first second + 200 bytes at 400 B/s = 1.5 s total.
  const auto t = bw.time_to_send(0, 300.0, from_seconds(100));
  EXPECT_EQ(t, from_millis(1500));
}

TEST(SteppedBandwidth, RejectsBadConfig) {
  EXPECT_THROW(SteppedBandwidth({}), std::invalid_argument);
  EXPECT_THROW(
      SteppedBandwidth({{from_seconds(2), 1.0}, {from_seconds(1), 2.0}}),
      std::invalid_argument);
}

TEST(FluctuatingBandwidth, StaysWithinDepth) {
  FluctuatingBandwidth bw(1000.0, 0.4, from_millis(100), 7);
  for (util::SimTime t = 0; t < from_seconds(10); t += from_millis(37)) {
    const double r = bw.bytes_per_sec(t);
    EXPECT_GE(r, 600.0 - 1e-9);
    EXPECT_LE(r, 1400.0 + 1e-9);
  }
}

TEST(FluctuatingBandwidth, DeterministicPerSeed) {
  FluctuatingBandwidth a(1000.0, 0.3, from_millis(100), 5);
  FluctuatingBandwidth b(1000.0, 0.3, from_millis(100), 5);
  FluctuatingBandwidth c(1000.0, 0.3, from_millis(100), 6);
  int differs = 0;
  for (util::SimTime t = 0; t < from_seconds(5); t += from_millis(100)) {
    EXPECT_DOUBLE_EQ(a.bytes_per_sec(t), b.bytes_per_sec(t));
    if (a.bytes_per_sec(t) != c.bytes_per_sec(t)) ++differs;
  }
  EXPECT_GT(differs, 30);
}

TEST(FluctuatingBandwidth, ConstantWithinBucket) {
  FluctuatingBandwidth bw(1000.0, 0.5, from_millis(200), 3);
  const double r0 = bw.bytes_per_sec(from_millis(100));
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(from_millis(199)), r0);
  EXPECT_EQ(bw.next_change(from_millis(100)), from_millis(200));
}

TEST(OutageBandwidth, ZeroDuringOutage) {
  auto base = std::make_shared<ConstantBandwidth>(1000.0);
  OutageBandwidth bw(base, {{from_seconds(2), from_seconds(3)}});
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(from_seconds(1)), 1000.0);
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(from_millis(2500)), 0.0);
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(from_seconds(3)), 1000.0);
}

TEST(OutageBandwidth, IntegralSkipsOutage) {
  auto base = std::make_shared<ConstantBandwidth>(1000.0);
  OutageBandwidth bw(base, {{from_seconds(1), from_seconds(2)}});
  EXPECT_DOUBLE_EQ(bw.bytes_between(0, from_seconds(3)), 2000.0);
}

TEST(OutageBandwidth, TransferStallsThroughOutage) {
  auto base = std::make_shared<ConstantBandwidth>(1000.0);
  OutageBandwidth bw(base, {{from_millis(500), from_millis(1500)}});
  // 600 bytes: 500 in the first 0.5 s, stall 1 s, 100 more at 0.1 s.
  const auto t = bw.time_to_send(0, 600.0, from_seconds(100));
  EXPECT_EQ(t, from_millis(1600));
}

// time_to_send must be conservative: by the returned completion time, at
// least the requested bytes have actually drained. Truncating the
// fractional microsecond (the old behavior) violated this whenever the
// transfer didn't end on an exact microsecond.
TEST(BandwidthTrace, TimeToSendCoversRequestedBytes) {
  // Rates chosen so remaining/rate lands between microsecond ticks.
  const double rates[] = {3.0, 7.0, 333.0, 999.0, 1e6, 123456.789};
  const double byte_counts[] = {1.0, 2.0, 10.0, 997.0, 12345.0};
  for (const double rate : rates) {
    ConstantBandwidth bw(rate);
    for (const double bytes : byte_counts) {
      const util::SimTime t0 = from_millis(250);
      const auto done = bw.time_to_send(t0, bytes, from_seconds(1'000'000));
      EXPECT_GE(bw.bytes_between(t0, done), bytes)
          << "rate=" << rate << " bytes=" << bytes;
      // ...and conservative by less than one microsecond's worth of data.
      EXPECT_LE(bw.bytes_between(t0, done), bytes + rate * 1e-6 + 1e-9)
          << "rate=" << rate << " bytes=" << bytes;
    }
  }
}

TEST(BandwidthTrace, TimeToSendCoversBytesAcrossRateBoundary) {
  // The transfer finishes mid-segment after crossing a rate change; the
  // completion must still cover the requested bytes exactly as integrated
  // by bytes_between.
  SteppedBandwidth bw({{0, 777.0}, {from_millis(900), 131.0}});
  const double bytes = 1000.0;
  const auto done = bw.time_to_send(from_millis(100), bytes,
                                    from_seconds(1'000'000));
  EXPECT_GT(done, from_millis(900));  // sanity: it does cross the step
  EXPECT_GE(bw.bytes_between(from_millis(100), done), bytes);
}

TEST(OutageBandwidth, PeriodicRejectsBadConfig) {
  EXPECT_THROW(OutageBandwidth::periodic(0, 0, from_seconds(1),
                                         from_seconds(10)),
               std::invalid_argument);
  EXPECT_THROW(OutageBandwidth::periodic(0, from_seconds(-5), from_seconds(1),
                                         from_seconds(10)),
               std::invalid_argument);
  EXPECT_THROW(OutageBandwidth::periodic(0, from_seconds(5), from_seconds(-1),
                                         from_seconds(10)),
               std::invalid_argument);
}

TEST(OutageBandwidth, PeriodicSchedule) {
  const auto outages = OutageBandwidth::periodic(
      from_seconds(3), from_seconds(5), from_seconds(1), from_seconds(20));
  ASSERT_EQ(outages.size(), 4u);
  EXPECT_EQ(outages[0].start, from_seconds(3));
  EXPECT_EQ(outages[1].start, from_seconds(8));
  EXPECT_EQ(outages[3].end, from_seconds(19));
}

TEST(OutageBandwidth, HorizonCapsUnfinishableTransfer) {
  auto base = std::make_shared<ConstantBandwidth>(1000.0);
  OutageBandwidth bw(base, {{0, from_seconds(1000)}});
  const auto horizon = from_seconds(10);
  EXPECT_EQ(bw.time_to_send(0, 100.0, horizon), horizon);
}

}  // namespace
}  // namespace dive::net
