#include "net/uplink.h"

#include <gtest/gtest.h>

namespace dive::net {
namespace {

using util::from_millis;
using util::from_seconds;

UplinkConfig test_config() {
  UplinkConfig cfg;
  cfg.propagation_delay = from_millis(10);
  cfg.head_timeout = from_millis(300);
  return cfg;
}

TEST(Uplink, SerializationPlusPropagation) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto r = link.transmit(500.0, from_seconds(1));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.started, from_seconds(1));
  EXPECT_EQ(r.sent_complete, from_millis(1500));
  EXPECT_EQ(r.arrival, from_millis(1510));
}

TEST(Uplink, FifoQueueing) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  link.transmit(1000.0, 0);  // busy until t=1s
  const auto r = link.transmit(500.0, from_millis(100));
  EXPECT_EQ(r.started, from_seconds(1));  // waited for the queue head
  EXPECT_EQ(r.sent_complete, from_millis(1500));
}

TEST(Uplink, IdleGapBetweenTransmissions) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  link.transmit(100.0, 0);
  const auto r = link.transmit(100.0, from_seconds(5));
  EXPECT_EQ(r.started, from_seconds(5));  // link was idle
}

TEST(Uplink, TimeoutDropsSlowFrame) {
  // 1000 B at 1000 B/s takes 1 s > 300 ms timeout.
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto r = link.transmit_with_timeout(1000.0, from_seconds(2));
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.gave_up_at, from_seconds(2) + from_millis(300));
  // The radio is idle again after the drop.
  EXPECT_EQ(link.busy_until(), r.gave_up_at);
}

TEST(Uplink, TimeoutPassesFastFrame) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto r = link.transmit_with_timeout(200.0, 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.sent_complete, from_millis(200));
}

TEST(Uplink, TimeoutCountsFromQueueHead) {
  // The paper's timer starts when the frame becomes the queue head.
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  link.transmit(1000.0, 0);  // head until 1 s
  const auto r = link.transmit_with_timeout(250.0, from_millis(100));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.started, from_seconds(1));
  EXPECT_EQ(r.sent_complete, from_millis(1250));
}

TEST(Uplink, OutageTriggersTimeout) {
  auto base = std::make_shared<ConstantBandwidth>(10'000.0);
  auto trace = std::make_shared<OutageBandwidth>(
      base, std::vector<OutageBandwidth::Outage>{
                {from_seconds(1), from_seconds(2)}});
  Uplink link(trace, test_config());
  // Before the outage: fine.
  EXPECT_TRUE(link.transmit_with_timeout(1000.0, 0).delivered);
  // During the outage: dropped after the timeout.
  const auto r = link.transmit_with_timeout(1000.0, from_millis(1100));
  EXPECT_FALSE(r.delivered);
  // After the outage: recovers.
  EXPECT_TRUE(link.transmit_with_timeout(1000.0, from_millis(2100)).delivered);
}

TEST(Uplink, OutageLongerThanHorizonReportsFailure) {
  // Regression: a trace with zero capacity made time_to_send return its
  // horizon clamp, which transmit() used to report as a successful
  // delivery at exactly horizon time. It must fail instead.
  Uplink link(std::make_shared<ConstantBandwidth>(0.0), test_config());
  const auto r = link.transmit(1000.0, from_seconds(3));
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.started, from_seconds(3));
  EXPECT_EQ(r.gave_up_at, from_seconds(3) + from_seconds(600));
  EXPECT_EQ(link.busy_until(), r.gave_up_at);
}

TEST(Uplink, ExactFitAtHorizonStillDelivers) {
  // 600 B at 1 B/s completes exactly at the 600 s horizon — delivered.
  Uplink link(std::make_shared<ConstantBandwidth>(1.0), test_config());
  const auto r = link.transmit(600.0, 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.sent_complete, from_seconds(600));
}

TEST(Uplink, TimeoutExactlyEqualToSerializationDelivers) {
  // Boundary: 300 B at 1000 B/s serializes in exactly the 300 ms
  // head-of-line timeout. The drop condition is strictly `complete >
  // deadline`, so an exact fit still goes through.
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto r = link.transmit_with_timeout(300.0, from_seconds(1));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.sent_complete, from_seconds(1) + from_millis(300));
  // One byte more and the same frame is dropped at the deadline.
  Uplink slow(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto d = slow.transmit_with_timeout(301.0, from_seconds(1));
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.gave_up_at, from_seconds(1) + from_millis(300));
}

TEST(Uplink, HorizonGiveUpJustPastExactFit) {
  // Boundary of the 600 s give-up horizon in transmit(): 601 B at 1 B/s
  // completes 1 s past the horizon and must report failure (the exact-fit
  // companion case is ExactFitAtHorizonStillDelivers).
  Uplink link(std::make_shared<ConstantBandwidth>(1.0), test_config());
  const auto r = link.transmit(601.0, 0);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.gave_up_at, from_seconds(600));
  EXPECT_EQ(link.busy_until(), from_seconds(600));
}

TEST(Uplink, HorizonCountsFromQueueHeadNotEnqueue) {
  // The 600 s horizon starts when the frame reaches the queue head: with
  // the link busy until t = 5 s and dead afterwards, a frame enqueued at
  // t = 1 s gives up at 5 s + 600 s.
  auto trace = std::make_shared<SteppedBandwidth>(
      std::vector<SteppedBandwidth::Step>{{0, 1000.0}, {from_seconds(5), 0.0}});
  Uplink link(trace, test_config());
  EXPECT_TRUE(link.transmit(5000.0, 0).delivered);  // busy until 5 s
  const auto r = link.transmit(100.0, from_seconds(1));
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.started, from_seconds(5));
  EXPECT_EQ(r.gave_up_at, from_seconds(5) + from_seconds(600));
}

TEST(Uplink, RecoversAfterHorizonGiveUp) {
  // An outage longer than the horizon kills one frame; once capacity
  // returns, the link serves later traffic normally.
  auto trace = std::make_shared<SteppedBandwidth>(
      std::vector<SteppedBandwidth::Step>{{0, 0.0}, {from_seconds(700), 1000.0}});
  Uplink link(trace, test_config());
  EXPECT_FALSE(link.transmit(100.0, 0).delivered);  // gave up at 600 s
  const auto r = link.transmit(100.0, from_seconds(700));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.sent_complete, from_seconds(700) + from_millis(100));
}

TEST(Uplink, CapacityBetweenMatchesTrace) {
  Uplink link(std::make_shared<ConstantBandwidth>(2000.0), test_config());
  EXPECT_DOUBLE_EQ(link.capacity_between(0, from_seconds(3)), 6000.0);
}

TEST(Uplink, NullTraceRejected) {
  EXPECT_THROW(Uplink(nullptr, test_config()), std::invalid_argument);
}

}  // namespace
}  // namespace dive::net
