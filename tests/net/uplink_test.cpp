#include "net/uplink.h"

#include <gtest/gtest.h>

namespace dive::net {
namespace {

using util::from_millis;
using util::from_seconds;

UplinkConfig test_config() {
  UplinkConfig cfg;
  cfg.propagation_delay = from_millis(10);
  cfg.head_timeout = from_millis(300);
  return cfg;
}

TEST(Uplink, SerializationPlusPropagation) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto r = link.transmit(500.0, from_seconds(1));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.started, from_seconds(1));
  EXPECT_EQ(r.sent_complete, from_millis(1500));
  EXPECT_EQ(r.arrival, from_millis(1510));
}

TEST(Uplink, FifoQueueing) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  link.transmit(1000.0, 0);  // busy until t=1s
  const auto r = link.transmit(500.0, from_millis(100));
  EXPECT_EQ(r.started, from_seconds(1));  // waited for the queue head
  EXPECT_EQ(r.sent_complete, from_millis(1500));
}

TEST(Uplink, IdleGapBetweenTransmissions) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  link.transmit(100.0, 0);
  const auto r = link.transmit(100.0, from_seconds(5));
  EXPECT_EQ(r.started, from_seconds(5));  // link was idle
}

TEST(Uplink, TimeoutDropsSlowFrame) {
  // 1000 B at 1000 B/s takes 1 s > 300 ms timeout.
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto r = link.transmit_with_timeout(1000.0, from_seconds(2));
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.gave_up_at, from_seconds(2) + from_millis(300));
  // The radio is idle again after the drop.
  EXPECT_EQ(link.busy_until(), r.gave_up_at);
}

TEST(Uplink, TimeoutPassesFastFrame) {
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  const auto r = link.transmit_with_timeout(200.0, 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.sent_complete, from_millis(200));
}

TEST(Uplink, TimeoutCountsFromQueueHead) {
  // The paper's timer starts when the frame becomes the queue head.
  Uplink link(std::make_shared<ConstantBandwidth>(1000.0), test_config());
  link.transmit(1000.0, 0);  // head until 1 s
  const auto r = link.transmit_with_timeout(250.0, from_millis(100));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.started, from_seconds(1));
  EXPECT_EQ(r.sent_complete, from_millis(1250));
}

TEST(Uplink, OutageTriggersTimeout) {
  auto base = std::make_shared<ConstantBandwidth>(10'000.0);
  auto trace = std::make_shared<OutageBandwidth>(
      base, std::vector<OutageBandwidth::Outage>{
                {from_seconds(1), from_seconds(2)}});
  Uplink link(trace, test_config());
  // Before the outage: fine.
  EXPECT_TRUE(link.transmit_with_timeout(1000.0, 0).delivered);
  // During the outage: dropped after the timeout.
  const auto r = link.transmit_with_timeout(1000.0, from_millis(1100));
  EXPECT_FALSE(r.delivered);
  // After the outage: recovers.
  EXPECT_TRUE(link.transmit_with_timeout(1000.0, from_millis(2100)).delivered);
}

TEST(Uplink, OutageLongerThanHorizonReportsFailure) {
  // Regression: a trace with zero capacity made time_to_send return its
  // horizon clamp, which transmit() used to report as a successful
  // delivery at exactly horizon time. It must fail instead.
  Uplink link(std::make_shared<ConstantBandwidth>(0.0), test_config());
  const auto r = link.transmit(1000.0, from_seconds(3));
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.started, from_seconds(3));
  EXPECT_EQ(r.gave_up_at, from_seconds(3) + from_seconds(600));
  EXPECT_EQ(link.busy_until(), r.gave_up_at);
}

TEST(Uplink, ExactFitAtHorizonStillDelivers) {
  // 600 B at 1 B/s completes exactly at the 600 s horizon — delivered.
  Uplink link(std::make_shared<ConstantBandwidth>(1.0), test_config());
  const auto r = link.transmit(600.0, 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.sent_complete, from_seconds(600));
}

TEST(Uplink, CapacityBetweenMatchesTrace) {
  Uplink link(std::make_shared<ConstantBandwidth>(2000.0), test_config());
  EXPECT_DOUBLE_EQ(link.capacity_between(0, from_seconds(3)), 6000.0);
}

TEST(Uplink, NullTraceRejected) {
  EXPECT_THROW(Uplink(nullptr, test_config()), std::invalid_argument);
}

}  // namespace
}  // namespace dive::net
