// Cross-module property tests: invariants that must hold over swept
// parameters and randomized inputs, not just hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/preprocess.h"
#include "edge/evaluator.h"
#include "geom/convex_hull.h"
#include "geom/polygon.h"
#include "net/bandwidth.h"
#include "util/rng.h"
#include "video/image_ops.h"

namespace dive {
namespace {

// ---------------------------------------------------------------------
// Codec: for every QP and every search method, the decoder reproduces the
// encoder's reconstruction bit-exactly over an I+P sequence.
// ---------------------------------------------------------------------

video::Frame noisy_frame(int w, int h, std::uint64_t seed, int shift) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const double v = 100 + 70 * std::sin((x - shift) * 0.12) * std::sin(y * 0.15) +
                       rng.uniform(-4, 4);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  return f;
}

struct CodecParam {
  int qp;
  codec::MotionSearchMethod method;
};

class CodecSweep : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CodecSweep, ReconstructionRoundTrip) {
  const auto [qp, method] = GetParam();
  codec::EncoderConfig cfg{.width = 96, .height = 48};
  cfg.search.method = method;
  codec::Encoder enc(cfg);
  codec::Decoder dec;
  for (int i = 0; i < 4; ++i) {
    const auto frame = noisy_frame(96, 48, 50, i * 2);
    const auto encoded = enc.encode(frame, qp);
    const auto decoded = dec.decode(encoded.data);
    ASSERT_EQ(decoded.frame, enc.reference())
        << "qp=" << qp << " method=" << codec::to_string(method)
        << " frame=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    QpAndMethod, CodecSweep,
    ::testing::Values(CodecParam{0, codec::MotionSearchMethod::kHex},
                      CodecParam{13, codec::MotionSearchMethod::kDia},
                      CodecParam{26, codec::MotionSearchMethod::kHex},
                      CodecParam{26, codec::MotionSearchMethod::kUmh},
                      CodecParam{26, codec::MotionSearchMethod::kEsa},
                      CodecParam{39, codec::MotionSearchMethod::kTesa},
                      CodecParam{51, codec::MotionSearchMethod::kHex}),
    [](const auto& info) {
      return std::string(codec::to_string(info.param.method)) + "_qp" +
             std::to_string(info.param.qp);
    });

// PSNR is monotone non-increasing in QP (averaged over a short sequence).
TEST(CodecProperty, PsnrMonotoneInQp) {
  double prev = 1e9;
  for (int qp = 0; qp <= 48; qp += 8) {
    codec::Encoder enc({.width = 96, .height = 48});
    double psnr = 0;
    for (int i = 0; i < 3; ++i)
      psnr += enc.encode(noisy_frame(96, 48, 60, i), qp).psnr_y;
    psnr /= 3;
    EXPECT_LE(psnr, prev + 0.5) << "qp=" << qp;
    prev = psnr;
  }
}

// ---------------------------------------------------------------------
// Net: byte integrals are additive and consistent with time_to_send.
// ---------------------------------------------------------------------

TEST(NetProperty, IntegralAdditivity) {
  net::FluctuatingBandwidth bw(10'000.0, 0.5, util::from_millis(100), 99);
  util::Rng rng(100);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = util::from_millis(rng.uniform(0, 5000));
    const auto b = a + util::from_millis(rng.uniform(0, 3000));
    const auto c = b + util::from_millis(rng.uniform(0, 3000));
    const double whole = bw.bytes_between(a, c);
    const double split = bw.bytes_between(a, b) + bw.bytes_between(b, c);
    EXPECT_NEAR(whole, split, 1e-6);
  }
}

TEST(NetProperty, TimeToSendInverseOfIntegral) {
  net::FluctuatingBandwidth bw(20'000.0, 0.4, util::from_millis(200), 7);
  util::Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const auto t0 = util::from_millis(rng.uniform(0, 4000));
    const double bytes = rng.uniform(100, 50'000);
    const auto done =
        bw.time_to_send(t0, bytes, t0 + util::from_seconds(100));
    // The integral up to the completion time equals the payload.
    EXPECT_NEAR(bw.bytes_between(t0, done), bytes, bytes * 1e-3 + 1.0);
  }
}

// ---------------------------------------------------------------------
// Geometry: hull idempotence and containment on random point clouds.
// ---------------------------------------------------------------------

TEST(GeomProperty, HullIdempotent) {
  util::Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 40; ++i)
      pts.push_back({rng.uniform(-30, 30), rng.uniform(-30, 30)});
    const auto hull = geom::convex_hull(pts);
    const auto hull2 = geom::convex_hull(hull);
    EXPECT_NEAR(geom::polygon_area(hull), geom::polygon_area(hull2), 1e-9);
    EXPECT_EQ(hull.size(), hull2.size());
  }
}

TEST(GeomProperty, RasterizedCellsInsideBounds) {
  util::Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 10; ++i)
      pts.push_back({rng.uniform(0, 20), rng.uniform(0, 12)});
    const auto hull = geom::convex_hull(pts);
    if (hull.size() < 3) continue;
    for (const auto& [cx, cy] : geom::rasterize_polygon(hull, 20, 12)) {
      EXPECT_GE(cx, 0);
      EXPECT_LT(cx, 20);
      EXPECT_GE(cy, 0);
      EXPECT_LT(cy, 12);
      EXPECT_TRUE(geom::point_in_polygon({cx + 0.5, cy + 0.5}, hull));
    }
  }
}

// ---------------------------------------------------------------------
// Evaluator: AP is invariant under strictly monotone confidence
// transforms and never exceeds 1.
// ---------------------------------------------------------------------

TEST(EvaluatorProperty, ApInvariantUnderMonotoneConfidence) {
  util::Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::pair<double, bool>> scored;
    const int gt = 20;
    for (int i = 0; i < 30; ++i)
      scored.emplace_back(rng.uniform(0.0, 1.0), rng.chance(0.6));
    const double base = edge::average_precision(scored, gt);
    auto squashed = scored;
    for (auto& [conf, tp] : squashed) conf = conf * conf * 0.5;  // monotone
    EXPECT_NEAR(edge::average_precision(squashed, gt), base, 1e-12);
    EXPECT_GE(base, 0.0);
    EXPECT_LE(base, 1.0);
  }
}

TEST(EvaluatorProperty, MoreTruePositivesNeverHurt) {
  // Appending a lowest-ranked TP must not decrease AP.
  util::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::pair<double, bool>> scored;
    for (int i = 0; i < 20; ++i)
      scored.emplace_back(rng.uniform(0.2, 1.0), rng.chance(0.5));
    const int gt = 30;
    const double base = edge::average_precision(scored, gt);
    auto extended = scored;
    extended.emplace_back(0.05, true);
    EXPECT_GE(edge::average_precision(extended, gt) + 1e-12, base);
  }
}

// ---------------------------------------------------------------------
// Core: rotation removal commutes with the model — for any synthetic
// rotation, corrected vectors match the pure-translation field.
// ---------------------------------------------------------------------

class RotationSweep : public ::testing::TestWithParam<double> {};

TEST_P(RotationSweep, CorrectionRecoversTranslation) {
  const double dphi_y = GetParam();
  const geom::PinholeCamera cam(400.0, 512, 288);
  codec::MotionField field(32, 18);
  std::vector<geom::Vec2> pure(32 * 18);
  for (int row = 0; row < 18; ++row)
    for (int col = 0; col < 32; ++col) {
      const geom::Vec2 p = cam.to_centered(field.mb_center(col, row));
      const double depth = p.y > 4.0 ? 400.0 * 1.5 / p.y : 30.0;
      const geom::Vec2 trans = core::translational_mv(p, 0.9, depth);
      pure[static_cast<std::size_t>(row * 32 + col)] = trans;
      const geom::Vec2 mv =
          trans + core::rotational_mv(p, {0.0, dphi_y}, cam.focal());
      field.at(col, row) = {static_cast<int>(std::lround(mv.x * 2)),
                            static_cast<int>(std::lround(mv.y * 2))};
    }
  core::Preprocessor pre({}, 55);
  const auto result = pre.run(field, cam);
  ASSERT_TRUE(result.rotation_valid);
  double err = 0;
  int n = 0;
  for (std::size_t i = 0; i < result.mvs.size(); ++i) {
    if (pure[i].norm() < 1.0 || pure[i].norm() > 20.0) continue;
    err += (result.mvs[i].corrected - pure[i]).norm();
    ++n;
  }
  ASSERT_GT(n, 50);
  EXPECT_LT(err / n, 0.8) << "dphi_y=" << dphi_y;
}

INSTANTIATE_TEST_SUITE_P(YawSweep, RotationSweep,
                         ::testing::Values(-0.02, -0.008, -0.002, 0.002,
                                           0.008, 0.02),
                         [](const auto& info) {
                           const int milli =
                               static_cast<int>(std::lround(info.param * 1000));
                           return std::string(milli < 0 ? "neg" : "pos") +
                                  std::to_string(std::abs(milli)) + "mrad";
                         });

}  // namespace
}  // namespace dive
