// Annotation invariants under every hostile condition (DESIGN.md §16):
// whatever the weather does to the pixels, the renderer's ground truth
// must stay well-formed — boxes inside the frame, every annotation above
// the visibility floor, and occluded pixels never double-counted.
#include <gtest/gtest.h>

#include <string>

#include "data/dataset.h"
#include "harness/scenario_fuzzer.h"

namespace dive {
namespace {

class ConditionSweep : public ::testing::TestWithParam<harness::Condition> {};

TEST_P(ConditionSweep, AnnotationsWellFormed) {
  data::DatasetSpec spec;
  spec.kind = data::DatasetKind::kNuScenesLike;
  spec.width = 256;
  spec.height = 144;
  spec.focal_px = 1260.0 * 256.0 / 1600.0;
  spec.clip_count = 1;
  spec.frames_per_clip = 24;
  spec.seed = 515;
  harness::apply_condition(spec, GetParam());

  const data::Clip clip = data::generate_clip(spec, 0);
  const video::RenderOptions defaults;
  ASSERT_FALSE(clip.frames.empty());

  for (const data::FrameRecord& rec : clip.frames) {
    const int W = rec.image.width();
    const int H = rec.image.height();
    long visible_total = 0;
    for (const video::RenderedObject& obj : rec.objects) {
      // Boxes stay inside the frame under every condition.
      EXPECT_GE(obj.pixel_box.x0, 0.0);
      EXPECT_GE(obj.pixel_box.y0, 0.0);
      EXPECT_LE(obj.pixel_box.x1, static_cast<double>(W));
      EXPECT_LE(obj.pixel_box.y1, static_cast<double>(H));
      EXPECT_LT(obj.pixel_box.x0, obj.pixel_box.x1);
      EXPECT_LT(obj.pixel_box.y0, obj.pixel_box.y1);

      // Every annotation clears the visibility floor.
      EXPECT_GE(obj.pixel_count, defaults.min_annotation_pixels);

      // Visible pixels fit inside the tight box: occluded pixels are not
      // counted as visible.
      const double area = obj.pixel_box.width() * obj.pixel_box.height();
      EXPECT_LE(obj.pixel_count, static_cast<long>(area + 0.5));

      EXPECT_GT(obj.depth, 0.0);
      visible_total += obj.pixel_count;
    }
    // Each pixel is attributed to at most one (the nearest) object: the
    // per-frame sum of visible pixels can never exceed the pixel budget.
    EXPECT_LE(visible_total, static_cast<long>(W) * H);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, ConditionSweep,
    ::testing::Values(harness::Condition::kClear, harness::Condition::kNight,
                      harness::Condition::kFog, harness::Condition::kRain,
                      harness::Condition::kVibration,
                      harness::Condition::kTunnel, harness::Condition::kCrowd),
    [](const auto& info) { return std::string(to_string(info.param)); });

}  // namespace
}  // namespace dive
