#include "geom/triangle_threshold.h"

#include <gtest/gtest.h>

#include "util/histogram.h"
#include "util/rng.h"

namespace dive::geom {
namespace {

TEST(TriangleThreshold, EmptyHistogram) {
  util::Histogram h(0, 1, 10);
  const auto r = triangle_threshold(h);
  EXPECT_EQ(r.bin, 0u);
}

TEST(TriangleThreshold, SingleSpike) {
  util::Histogram h(0, 10, 10);
  for (int i = 0; i < 50; ++i) h.add(3.5);
  const auto r = triangle_threshold(h);
  // Degenerate: the peak is the only mass; threshold sits at its edge.
  EXPECT_EQ(r.bin, 3u);
}

TEST(TriangleThreshold, SeparatesPeakFromTail) {
  // Strong unimodal peak near 1.0 with a sparse long tail to 10 — the
  // ground-magnitude shape. The threshold must land after the peak and
  // before the deep tail.
  util::Rng rng(3);
  util::Histogram h(0, 10, 50);
  for (int i = 0; i < 2000; ++i) h.add(std::abs(rng.gaussian(1.0, 0.25)));
  for (int i = 0; i < 120; ++i) h.add(rng.uniform(2.5, 10.0));
  const auto r = triangle_threshold(h);
  EXPECT_GT(r.threshold, 1.0);
  EXPECT_LT(r.threshold, 4.0);
}

TEST(TriangleThreshold, UsesLongerTail) {
  // Peak at the right end with a tail extending left: the method must
  // walk the left side.
  util::Rng rng(8);
  util::Histogram h(0, 10, 40);
  for (int i = 0; i < 2000; ++i) h.add(9.0 + rng.gaussian(0, 0.2));
  for (int i = 0; i < 150; ++i) h.add(rng.uniform(0.0, 7.0));
  const auto r = triangle_threshold(h);
  EXPECT_LT(r.threshold, 9.0);
  EXPECT_GT(r.threshold, 1.0);
}

TEST(TriangleThreshold, ThresholdCoversPeakMass) {
  // Classifying "below threshold" must retain the bulk of a dominant
  // low mode (that is its job in ground estimation).
  util::Rng rng(5);
  util::Histogram h(0, 5, 50);
  std::vector<double> lows;
  for (int i = 0; i < 3000; ++i) {
    const double v = std::abs(rng.gaussian(0.5, 0.1));
    lows.push_back(v);
    h.add(v);
  }
  for (int i = 0; i < 200; ++i) h.add(rng.uniform(1.5, 5.0));
  const auto r = triangle_threshold(h);
  int kept = 0;
  for (double v : lows)
    if (v <= r.threshold) ++kept;
  EXPECT_GT(static_cast<double>(kept) / lows.size(), 0.95);
}

}  // namespace
}  // namespace dive::geom
