#include "geom/vec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace dive::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2};
  const Vec2 b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2}));
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1, 0}), 3.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 0}.cross({0, 1})), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 1}.cross({1, 0})), -1.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{}));
  const Vec2 n = Vec2{0, 5}.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
  EXPECT_DOUBLE_EQ(n.y, 1.0);
}

TEST(Vec3, CrossProductOrthogonal) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
  EXPECT_EQ(y.cross(x), (Vec3{0, 0, -1}));
  const Vec3 a{1, 2, 3};
  const Vec3 b{-2, 1, 4};
  EXPECT_NEAR(a.cross(b).dot(a), 0.0, 1e-12);
  EXPECT_NEAR(a.cross(b).dot(b), 0.0, 1e-12);
}

TEST(Mat3, IdentityIsNoOp) {
  const Vec3 v{1, -2, 3};
  EXPECT_EQ(Mat3::identity() * v, v);
}

TEST(Mat3, RotYMovesZTowardX) {
  const Mat3 r = Mat3::rot_y(std::numbers::pi / 2.0);
  const Vec3 v = r * Vec3{0, 0, 1};
  EXPECT_NEAR(v.x, 1.0, 1e-12);
  EXPECT_NEAR(v.y, 0.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(Mat3, RotXMovesZTowardNegY) {
  const Mat3 r = Mat3::rot_x(std::numbers::pi / 2.0);
  const Vec3 v = r * Vec3{0, 0, 1};
  EXPECT_NEAR(v.y, -1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(Mat3, TransposeInvertsRotation) {
  const Mat3 r = Mat3::rot_y(0.3) * Mat3::rot_x(-0.2);
  const Vec3 v{0.5, -1.5, 2.0};
  const Vec3 round = r.transpose() * (r * v);
  EXPECT_NEAR(round.x, v.x, 1e-12);
  EXPECT_NEAR(round.y, v.y, 1e-12);
  EXPECT_NEAR(round.z, v.z, 1e-12);
}

TEST(Mat3, CompositionAssociativity) {
  const Mat3 a = Mat3::rot_y(0.4);
  const Mat3 b = Mat3::rot_x(0.7);
  const Vec3 v{1, 2, 3};
  const Vec3 lhs = (a * b) * v;
  const Vec3 rhs = a * (b * v);
  EXPECT_NEAR(lhs.x, rhs.x, 1e-12);
  EXPECT_NEAR(lhs.y, rhs.y, 1e-12);
  EXPECT_NEAR(lhs.z, rhs.z, 1e-12);
}

}  // namespace
}  // namespace dive::geom
