#include "geom/ransac.h"

#include <gtest/gtest.h>

#include <vector>

#include "geom/least_squares.h"
#include "util/rng.h"

namespace dive::geom {
namespace {

/// Line fit y = m*x + b as a 2-parameter RANSAC model.
struct LineData {
  std::vector<Vec2> points;
};

std::optional<RansacResult<Vec2>> fit_line(const LineData& data,
                                           const RansacOptions& opts,
                                           util::Rng& rng) {
  auto fit = [&data](std::span<const std::size_t> idx)
      -> std::optional<Vec2> {
    std::vector<LinearRow2> rows;
    for (auto i : idx)
      rows.push_back({data.points[i].x, 1.0, data.points[i].y});
    return solve_least_squares_2(rows);
  };
  auto error = [&data](const Vec2& model, std::size_t i) {
    return std::abs(model.x * data.points[i].x + model.y - data.points[i].y);
  };
  return ransac<Vec2>(data.points.size(), opts, rng, fit, error);
}

TEST(Ransac, RecoversLineDespiteOutliers) {
  util::Rng rng(5);
  LineData data;
  // 70 inliers on y = 2x + 1 with small noise, 30 wild outliers.
  for (int i = 0; i < 70; ++i) {
    const double x = rng.uniform(-10, 10);
    data.points.push_back({x, 2.0 * x + 1.0 + rng.gaussian(0, 0.05)});
  }
  for (int i = 0; i < 30; ++i) {
    data.points.push_back({rng.uniform(-10, 10), rng.uniform(-50, 50)});
  }
  RansacOptions opts;
  opts.iterations = 100;
  opts.inlier_threshold = 0.3;
  const auto result = fit_line(data, opts, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->model.x, 2.0, 0.05);
  EXPECT_NEAR(result->model.y, 1.0, 0.2);
  EXPECT_GE(result->inliers.size(), 60u);
  EXPECT_LE(result->inlier_rms, opts.inlier_threshold);
}

TEST(Ransac, FailsWithTooFewPoints) {
  util::Rng rng(1);
  LineData data;
  data.points.push_back({0, 0});
  RansacOptions opts;
  EXPECT_FALSE(fit_line(data, opts, rng).has_value());
}

TEST(Ransac, MinInliersRejectsNonConsensus) {
  util::Rng rng(2);
  LineData data;
  // Pure noise: no line should gather 80% consensus at a tight threshold.
  for (int i = 0; i < 50; ++i)
    data.points.push_back({rng.uniform(-10, 10), rng.uniform(-100, 100)});
  RansacOptions opts;
  opts.iterations = 50;
  opts.inlier_threshold = 0.05;
  opts.min_inliers = 40;
  EXPECT_FALSE(fit_line(data, opts, rng).has_value());
}

TEST(Ransac, RefitTightensModel) {
  util::Rng rng(9);
  LineData data;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-10, 10);
    data.points.push_back({x, -1.5 * x + 4.0 + rng.gaussian(0, 0.1)});
  }
  RansacOptions opts;
  opts.iterations = 30;
  opts.inlier_threshold = 0.5;
  opts.refit_on_inliers = true;
  const auto refit = fit_line(data, opts, rng);
  ASSERT_TRUE(refit.has_value());
  // With all points inliers, the refit equals the global LS fit.
  EXPECT_NEAR(refit->model.x, -1.5, 0.02);
  EXPECT_NEAR(refit->model.y, 4.0, 0.05);
  EXPECT_EQ(refit->inliers.size(), 100u);
}

TEST(Ransac, DeterministicGivenSeed) {
  LineData data;
  util::Rng gen(33);
  for (int i = 0; i < 60; ++i) {
    const double x = gen.uniform(-5, 5);
    data.points.push_back({x, 0.5 * x - 2 + gen.gaussian(0, 0.2)});
  }
  RansacOptions opts;
  opts.iterations = 40;
  opts.inlier_threshold = 0.5;
  util::Rng r1(7), r2(7);
  const auto a = fit_line(data, opts, r1);
  const auto b = fit_line(data, opts, r2);
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->model.x, b->model.x);
  EXPECT_DOUBLE_EQ(a->model.y, b->model.y);
  EXPECT_EQ(a->inliers, b->inliers);
}

}  // namespace
}  // namespace dive::geom
