#include "geom/polygon.h"

#include <gtest/gtest.h>

namespace dive::geom {
namespace {

const std::vector<Vec2> kSquare = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};

TEST(PointInPolygon, InsideOutside) {
  EXPECT_TRUE(point_in_polygon({5, 5}, kSquare));
  EXPECT_FALSE(point_in_polygon({15, 5}, kSquare));
  EXPECT_FALSE(point_in_polygon({-1, -1}, kSquare));
}

TEST(PointInPolygon, BoundaryCounts) {
  EXPECT_TRUE(point_in_polygon({0, 5}, kSquare));
  EXPECT_TRUE(point_in_polygon({10, 10}, kSquare));
  EXPECT_TRUE(point_in_polygon({5, 0}, kSquare));
}

TEST(PointInPolygon, WindingOrderIrrelevant) {
  std::vector<Vec2> reversed(kSquare.rbegin(), kSquare.rend());
  EXPECT_TRUE(point_in_polygon({5, 5}, reversed));
  EXPECT_FALSE(point_in_polygon({15, 5}, reversed));
}

TEST(PointInPolygon, ConcavePolygon) {
  // A "U" shape: the notch interior must be outside.
  const std::vector<Vec2> u = {{0, 0}, {10, 0}, {10, 10}, {7, 10},
                               {7, 3},  {3, 3},  {3, 10},  {0, 10}};
  EXPECT_TRUE(point_in_polygon({1, 5}, u));
  EXPECT_TRUE(point_in_polygon({8, 5}, u));
  EXPECT_FALSE(point_in_polygon({5, 8}, u));  // inside the notch
  EXPECT_TRUE(point_in_polygon({5, 1}, u));   // in the base
}

TEST(PointInPolygon, DegenerateInputs) {
  EXPECT_FALSE(point_in_polygon({0, 0}, {}));
  EXPECT_FALSE(point_in_polygon({0, 0}, {{0, 0}, {1, 1}}));
}

TEST(RasterizePolygon, TriangleCells) {
  // Right triangle covering roughly half of a 4x4 grid. Cell centers
  // (x+0.5, y+0.5) with x + y + 1 <= 4 qualify (boundary inclusive):
  // 6 strictly interior + 4 on the hypotenuse.
  const std::vector<Vec2> tri = {{0, 0}, {4, 0}, {0, 4}};
  const auto cells = rasterize_polygon(tri, 4, 4);
  EXPECT_EQ(cells.size(), 10u);
  for (const auto& [cx, cy] : cells) {
    EXPECT_LE(cx + 0.5 + cy + 0.5, 4.001);
  }
}

TEST(RasterizePolygon, ClipsToGrid) {
  const std::vector<Vec2> big = {{-100, -100}, {100, -100}, {100, 100},
                                 {-100, 100}};
  const auto cells = rasterize_polygon(big, 3, 2);
  EXPECT_EQ(cells.size(), 6u);
}

TEST(RasterizePolygon, DegeneratePolygonEmpty) {
  EXPECT_TRUE(rasterize_polygon({{0, 0}, {1, 1}}, 4, 4).empty());
}

}  // namespace
}  // namespace dive::geom
