#include "geom/box.h"

#include <gtest/gtest.h>

namespace dive::geom {
namespace {

TEST(Box, BasicGeometry) {
  const Box b{10, 20, 30, 60};
  EXPECT_DOUBLE_EQ(b.width(), 20);
  EXPECT_DOUBLE_EQ(b.height(), 40);
  EXPECT_DOUBLE_EQ(b.area(), 800);
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.center(), (Vec2{20, 40}));
}

TEST(Box, EmptyWhenInverted) {
  const Box b{10, 10, 5, 20};
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
}

TEST(Box, ContainsHalfOpen) {
  const Box b{0, 0, 10, 10};
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_TRUE(b.contains({9.99, 9.99}));
  EXPECT_FALSE(b.contains({10, 5}));
  EXPECT_FALSE(b.contains({-0.01, 5}));
}

TEST(Box, ShiftAndClip) {
  const Box b{0, 0, 10, 10};
  const Box s = b.shifted({-5, 3});
  EXPECT_EQ(s, (Box{-5, 3, 5, 13}));
  const Box c = s.clipped(10, 10);
  EXPECT_EQ(c, (Box{0, 3, 5, 10}));
}

TEST(Box, IntersectAndUnite) {
  const Box a{0, 0, 10, 10};
  const Box b{5, 5, 15, 15};
  EXPECT_EQ(a.intersect(b), (Box{5, 5, 10, 10}));
  EXPECT_EQ(a.unite(b), (Box{0, 0, 15, 15}));
  const Box empty{};
  EXPECT_EQ(a.unite(empty), a);
  EXPECT_EQ(empty.unite(a), a);
}

TEST(Iou, IdenticalBoxesIsOne) {
  const Box a{2, 2, 8, 8};
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
}

TEST(Iou, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(iou({0, 0, 1, 1}, {5, 5, 6, 6}), 0.0);
}

TEST(Iou, HalfOverlap) {
  // Two 10x10 boxes overlapping in a 5x10 strip: IoU = 50/150.
  EXPECT_NEAR(iou({0, 0, 10, 10}, {5, 0, 15, 10}), 1.0 / 3.0, 1e-12);
}

TEST(Iou, EmptyBoxIsZero) {
  EXPECT_DOUBLE_EQ(iou({0, 0, 0, 0}, {0, 0, 10, 10}), 0.0);
}

TEST(Iou, SymmetricAndBounded) {
  const Box a{0, 0, 7, 3};
  const Box b{2, 1, 9, 8};
  EXPECT_DOUBLE_EQ(iou(a, b), iou(b, a));
  EXPECT_GT(iou(a, b), 0.0);
  EXPECT_LT(iou(a, b), 1.0);
}

TEST(BoundingBox, OfPoints) {
  const Box b = bounding_box({{1, 5}, {-2, 3}, {4, -1}});
  EXPECT_EQ(b, (Box{-2, -1, 4, 5}));
  EXPECT_TRUE(bounding_box({}).empty());
}

}  // namespace
}  // namespace dive::geom
