#include "geom/convex_hull.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/polygon.h"
#include "util/rng.h"

namespace dive::geom {
namespace {

bool hull_contains_all(const std::vector<Vec2>& hull,
                       const std::vector<Vec2>& points) {
  return std::all_of(points.begin(), points.end(), [&](Vec2 p) {
    return point_in_polygon(p, hull);
  });
}

TEST(ConvexHull, Square) {
  const std::vector<Vec2> pts = {
      {0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 16.0, 1e-12);
  EXPECT_TRUE(hull_contains_all(hull, pts));
}

TEST(ConvexHull, CollinearPointsDegenerate) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = convex_hull(pts);
  // Degenerate: all points on a line — no area.
  EXPECT_DOUBLE_EQ(polygon_area(hull), 0.0);
}

TEST(ConvexHull, DuplicatesRemoved) {
  const std::vector<Vec2> pts = {{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull, FewPointsPassThrough) {
  EXPECT_TRUE(convex_hull({}).empty());
  EXPECT_EQ(convex_hull({{1, 2}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 2}, {3, 4}}).size(), 2u);
}

TEST(ConvexHull, RandomPointsPropertyCheck) {
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 60; ++i)
      pts.push_back({rng.uniform(-50, 50), rng.uniform(-50, 50)});
    const auto hull = convex_hull(pts);
    ASSERT_GE(hull.size(), 3u);
    // Convexity: every consecutive triple turns the same way.
    const std::size_t n = hull.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 a = hull[i];
      const Vec2 b = hull[(i + 1) % n];
      const Vec2 c = hull[(i + 2) % n];
      EXPECT_GT((b - a).cross(c - b), 0.0) << "trial " << trial;
    }
    EXPECT_TRUE(hull_contains_all(hull, pts)) << "trial " << trial;
  }
}

TEST(SklanskyHull, ConvexPolygonUnchanged) {
  const std::vector<Vec2> square = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  const auto hull = sklansky_hull(square);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 16.0, 1e-12);
}

TEST(SklanskyHull, RemovesConcavity) {
  // An arrow-like simple polygon with one reflex vertex.
  const std::vector<Vec2> arrow = {{0, 0}, {4, 0}, {4, 4}, {2, 1.5}, {0, 4}};
  const auto hull = sklansky_hull(arrow);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 16.0, 1e-12);
  for (const auto& v : arrow) EXPECT_TRUE(point_in_polygon(v, hull));
}

TEST(SklanskyHull, MatchesMonotoneChainOnSimplePolygons) {
  // Star-shaped simple polygon around the origin.
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec2> poly;
    const int n = 12;
    for (int i = 0; i < n; ++i) {
      const double ang = 2.0 * 3.14159265358979 * i / n;
      const double r = rng.uniform(2.0, 10.0);
      poly.push_back({r * std::cos(ang), r * std::sin(ang)});
    }
    const auto a = sklansky_hull(poly);
    const auto b = convex_hull(poly);
    EXPECT_NEAR(polygon_area(a), polygon_area(b), 1e-9) << "trial " << trial;
  }
}

TEST(PolygonArea, Triangle) {
  EXPECT_DOUBLE_EQ(polygon_area({{0, 0}, {4, 0}, {0, 3}}), 6.0);
  // Orientation-independent.
  EXPECT_DOUBLE_EQ(polygon_area({{0, 0}, {0, 3}, {4, 0}}), 6.0);
}

}  // namespace
}  // namespace dive::geom
