#include "geom/least_squares.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dive::geom {
namespace {

TEST(LeastSquares2, ExactSystem) {
  // u = 2, v = -3: rows a*u + b*v = c.
  const std::vector<LinearRow2> rows = {
      {1, 0, 2}, {0, 1, -3}, {1, 1, -1}};
  const auto sol = solve_least_squares_2(rows);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->x, 2.0, 1e-12);
  EXPECT_NEAR(sol->y, -3.0, 1e-12);
}

TEST(LeastSquares2, TooFewRows) {
  const std::vector<LinearRow2> rows = {{1, 0, 2}};
  EXPECT_FALSE(solve_least_squares_2(rows).has_value());
}

TEST(LeastSquares2, RankDeficient) {
  // All rows parallel: u + v is determined but not (u, v) individually.
  const std::vector<LinearRow2> rows = {{1, 1, 2}, {2, 2, 4}, {3, 3, 6}};
  EXPECT_FALSE(solve_least_squares_2(rows).has_value());
}

TEST(LeastSquares2, MinimizesResidualUnderNoise) {
  util::Rng rng(17);
  const Vec2 truth{0.7, -1.3};
  std::vector<LinearRow2> rows;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-5, 5);
    const double b = rng.uniform(-5, 5);
    rows.push_back({a, b, a * truth.x + b * truth.y + rng.gaussian(0, 0.05)});
  }
  const auto sol = solve_least_squares_2(rows);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->x, truth.x, 0.01);
  EXPECT_NEAR(sol->y, truth.y, 0.01);
  // The LS solution beats any perturbed solution in RMS residual.
  const double base = rms_residual(rows, *sol);
  for (const Vec2 perturbed :
       {Vec2{sol->x + 0.1, sol->y}, Vec2{sol->x, sol->y - 0.1}}) {
    EXPECT_LE(base, rms_residual(rows, perturbed));
  }
}

TEST(Residual, SingleRow) {
  const LinearRow2 row{2, 3, 10};
  EXPECT_DOUBLE_EQ(residual(row, {2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(residual(row, {0, 0}), 10.0);
}

TEST(RmsResidual, EmptyRowsIsZero) {
  EXPECT_DOUBLE_EQ(rms_residual({}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace dive::geom
