#include "geom/pinhole_camera.h"

#include <gtest/gtest.h>

namespace dive::geom {
namespace {

TEST(PinholeCamera, ProjectsEq1) {
  // Eq. (1): x = f X/Z, y = f Y/Z.
  const PinholeCamera cam(500.0, 640, 360);
  const auto p = cam.project({1.0, 0.5, 10.0});
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->x, 50.0);
  EXPECT_DOUBLE_EQ(p->y, 25.0);
}

TEST(PinholeCamera, RejectsBehindCamera) {
  const PinholeCamera cam(500.0, 640, 360);
  EXPECT_FALSE(cam.project({0, 0, -1}).has_value());
  EXPECT_FALSE(cam.project({0, 0, 0.05}).has_value());
}

TEST(PinholeCamera, BackProjectInvertsProject) {
  const PinholeCamera cam(420.0, 512, 288);
  const Vec3 p_cam{2.0, -1.0, 15.0};
  const auto img = cam.project(p_cam);
  ASSERT_TRUE(img.has_value());
  const Vec3 back = cam.back_project(*img, p_cam.z);
  EXPECT_NEAR(back.x, p_cam.x, 1e-12);
  EXPECT_NEAR(back.y, p_cam.y, 1e-12);
  EXPECT_NEAR(back.z, p_cam.z, 1e-12);
}

TEST(PinholeCamera, PixelCenteredRoundTrip) {
  const PinholeCamera cam(400.0, 640, 480);
  const Vec2 pixel{100.0, 50.0};
  const Vec2 round = cam.to_pixel(cam.to_centered(pixel));
  EXPECT_DOUBLE_EQ(round.x, pixel.x);
  EXPECT_DOUBLE_EQ(round.y, pixel.y);
  EXPECT_EQ(cam.to_pixel({0, 0}), (Vec2{320, 240}));
}

TEST(PinholeCamera, InFrame) {
  const PinholeCamera cam(400.0, 640, 480);
  EXPECT_TRUE(cam.in_frame({0, 0}));
  EXPECT_TRUE(cam.in_frame({639.9, 479.9}));
  EXPECT_FALSE(cam.in_frame({640, 100}));
  EXPECT_FALSE(cam.in_frame({-1, 100}));
}

TEST(PinholeCamera, ScaledPreservesFieldOfView) {
  const PinholeCamera full(1260.0, 1600, 900);
  const PinholeCamera small = full.scaled_to(512, 288);
  // Same world point projects to proportionally scaled coordinates.
  const Vec3 p{3.0, 1.0, 20.0};
  const auto a = full.project(p);
  const auto b = small.project(p);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(b->x / a->x, 512.0 / 1600.0, 1e-12);
}

TEST(CameraPose, IdentityPose) {
  const CameraPose pose{};
  const Vec3 p{1, 2, 3};
  EXPECT_EQ(pose.world_to_camera(p), p);
}

TEST(CameraPose, TranslationOnly) {
  CameraPose pose;
  pose.position = {10, -1.5, 100};
  const Vec3 cam = pose.world_to_camera({11, -1.5, 105});
  EXPECT_NEAR(cam.x, 1.0, 1e-12);
  EXPECT_NEAR(cam.y, 0.0, 1e-12);
  EXPECT_NEAR(cam.z, 5.0, 1e-12);
}

TEST(CameraPose, YawRotatesView) {
  CameraPose pose;
  pose.yaw = 0.1;
  // A point dead ahead in the world appears shifted left in the camera
  // when the camera yaws right (toward +x).
  const Vec3 cam = pose.world_to_camera({0, 0, 50});
  EXPECT_LT(cam.x, 0.0);
}

TEST(CameraPose, WorldCameraRoundTrip) {
  CameraPose pose;
  pose.position = {3, -1.5, 42};
  pose.yaw = 0.3;
  pose.pitch = -0.05;
  const Vec3 p{-7, 0.2, 60};
  const Vec3 round = pose.camera_to_world_point(pose.world_to_camera(p));
  EXPECT_NEAR(round.x, p.x, 1e-10);
  EXPECT_NEAR(round.y, p.y, 1e-10);
  EXPECT_NEAR(round.z, p.z, 1e-10);
}

}  // namespace
}  // namespace dive::geom
