// Decoder robustness: the deterministic twin of fuzz_bitstream_decode.
//
// The edge server decodes radio bytes; a truncated burst or a single
// flipped bit must surface as a clean BitstreamError (via try_decode's
// nullopt), never as UB, a crash, or a poisoned decoder. This test walks
// EVERY prefix length and EVERY 1-bit corruption of a small golden
// two-frame stream (intra + inter with motion/SKIP/residual), so the
// exhaustive small-corruption neighborhood is pinned in tier-1 while the
// fuzzers explore the rest of the input space.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "util/rng.h"
#include "video/frame.h"

namespace dive::codec {
namespace {

video::Frame textured_frame(int w, int h, std::uint64_t seed, int shift) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      int v = 60 + ((x - shift) / 8 + y / 8) * 16 + rng.uniform(-6, 6);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
    }
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.u.at(x, y) = static_cast<std::uint8_t>(110 + x % 24);
      f.v.at(x, y) = static_cast<std::uint8_t>(140 - y % 24);
    }
  return f;
}

struct GoldenStreams {
  std::vector<std::uint8_t> intra;
  std::vector<std::uint8_t> inter;
};

const GoldenStreams& golden() {
  static const GoldenStreams streams = [] {
    EncoderConfig cfg;
    cfg.width = 48;
    cfg.height = 32;
    cfg.threads = 1;
    Encoder enc(cfg);
    GoldenStreams s;
    s.intra = enc.encode(textured_frame(48, 32, 7, 0), 30).data;
    s.inter = enc.encode(textured_frame(48, 32, 7, 3), 30).data;
    return s;
  }();
  return streams;
}

/// Fresh decoder with the golden intra frame already decoded (the state
/// the inter stream was encoded against).
Decoder decoder_with_reference() {
  Decoder dec;
  EXPECT_TRUE(dec.try_decode(golden().intra).has_value());
  return dec;
}

TEST(DecoderRobustness, GoldenStreamsDecode) {
  Decoder dec;
  ASSERT_TRUE(dec.try_decode(golden().intra).has_value());
  const auto inter = dec.try_decode(golden().inter);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(inter->type, FrameType::kInter);
}

TEST(DecoderRobustness, EveryIntraPrefixCleanlyDecodesOrRejects) {
  const auto& bytes = golden().intra;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Decoder dec;
    std::string error;
    const auto out = dec.try_decode(
        std::span<const std::uint8_t>(bytes.data(), len), &error);
    // A strict prefix can only fail; it must do so with a message and
    // without establishing a reference.
    EXPECT_FALSE(out.has_value()) << "prefix length " << len;
    EXPECT_FALSE(error.empty()) << "prefix length " << len;
    EXPECT_FALSE(dec.has_reference()) << "prefix length " << len;
  }
}

TEST(DecoderRobustness, EveryInterPrefixCleanlyDecodesOrRejects) {
  const auto& bytes = golden().inter;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Decoder dec = decoder_with_reference();
    const auto out =
        dec.try_decode(std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_FALSE(out.has_value()) << "prefix length " << len;
    // The failed frame must not have poisoned the session: the same
    // inter stream still decodes against the preserved reference.
    EXPECT_TRUE(dec.try_decode(bytes).has_value()) << "prefix length " << len;
  }
}

TEST(DecoderRobustness, EveryIntraBitFlipDecodesOrRejects) {
  const auto& bytes = golden().intra;
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Decoder dec;
    // Either outcome is legal — flips in residual coefficients still
    // decode to SOME frame — but it must be a clean outcome.
    (void)dec.try_decode(corrupt);
  }
}

TEST(DecoderRobustness, EveryInterBitFlipDecodesOrRejects) {
  const auto& bytes = golden().inter;
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Decoder dec = decoder_with_reference();
    const bool accepted = dec.try_decode(corrupt).has_value();
    if (!accepted) {
      // Rejection must leave the reference intact for the next frame.
      EXPECT_TRUE(dec.try_decode(bytes).has_value()) << "bit " << bit;
    }
  }
}

TEST(DecoderRobustness, EmptyAndGarbageInputsReject) {
  Decoder dec;
  EXPECT_FALSE(dec.try_decode({}).has_value());
  const std::vector<std::uint8_t> garbage(64, 0xFF);
  EXPECT_FALSE(dec.try_decode(garbage).has_value());
  std::string error;
  const std::vector<std::uint8_t> bad_magic = {0x00, 0x01, 0x02, 0x03};
  EXPECT_FALSE(dec.try_decode(bad_magic, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(DecoderRobustness, InterWithoutReferenceRejects) {
  // Valid inter stream, fresh decoder: must reject, not read a null
  // reference.
  Decoder dec;
  std::string error;
  EXPECT_FALSE(dec.try_decode(golden().inter, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(DecoderRobustness, ThrowingDecodeStillAvailable) {
  // The throwing API is the hot-path contract (no optional overhead);
  // try_decode is the same function with the error folded. Both must
  // agree on every outcome.
  Decoder a;
  Decoder b;
  EXPECT_THROW(a.decode(std::vector<std::uint8_t>{0xD1}), BitstreamError);
  EXPECT_FALSE(b.try_decode(std::vector<std::uint8_t>{0xD1}).has_value());
}

}  // namespace
}  // namespace dive::codec
