#include "codec/motion_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dive::codec {
namespace {

/// A textured plane with genuine 2-D structure: smooth aperiodic waves
/// (a descent gradient for pattern searches) plus per-pixel hash noise
/// (a unique global optimum for exhaustive searches).
video::Plane textured_plane(int w, int h, std::uint64_t seed) {
  video::Plane p(w, h);
  const double s = static_cast<double>(seed % 17) * 0.05;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double v = 128.0 + 55.0 * std::sin(x * (0.11 + s * 0.3)) * std::sin(y * 0.13) +
                 35.0 * std::sin((x + 2 * y) * 0.045);
      const std::uint32_t hash = (static_cast<std::uint32_t>(x) * 73856093u) ^
                                 (static_cast<std::uint32_t>(y) * 19349663u) ^
                                 static_cast<std::uint32_t>(seed);
      v += static_cast<double>(hash % 11) - 5.0;
      p.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 5.0, 250.0));
    }
  }
  return p;
}

video::Plane shifted(const video::Plane& src, int dx, int dy) {
  video::Plane out(src.width, src.height);
  for (int y = 0; y < src.height; ++y)
    for (int x = 0; x < src.width; ++x)
      out.at(x, y) = src.at_clamped(x - dx, y - dy);
  return out;
}

TEST(Sad, ZeroForIdenticalBlocks) {
  const auto p = textured_plane(64, 64, 1);
  EXPECT_EQ(sad_16x16(p, p, 16, 16, {0, 0}), 0u);
}

TEST(Sad, DetectsShift) {
  const auto ref = textured_plane(64, 64, 2);
  const auto cur = shifted(ref, 3, -2);
  // True motion (3, -2) full-pel = (6, -4) half-pel.
  EXPECT_EQ(sad_16x16(cur, ref, 32, 32, {6, -4}), 0u);
  EXPECT_GT(sad_16x16(cur, ref, 32, 32, {0, 0}), 500u);
}

TEST(Sad, HalfPelInterpolates) {
  // A ramp plane: half-pel sample halfway between neighbors.
  video::Plane ref(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      ref.at(x, y) = static_cast<std::uint8_t>(x * 8);
  video::Plane cur(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      cur.at(x, y) = static_cast<std::uint8_t>(
          std::min(255, x * 8 + 4));  // cur(x) = ref(x + 0.5): mv = -0.5px
  const auto full = sad_16x16(cur, ref, 8, 8, {0, 0});
  const auto half = sad_16x16(cur, ref, 8, 8, {-1, 0});
  EXPECT_LT(half, full);
}

TEST(HalfPelSample, MatchesBilinear) {
  video::Plane p(4, 4);
  p.at(1, 1) = 100;
  p.at(2, 1) = 200;
  p.at(1, 2) = 50;
  p.at(2, 2) = 150;
  EXPECT_EQ(half_pel_sample(p, 2, 2), 100);
  EXPECT_EQ(half_pel_sample(p, 3, 2), 150);  // horizontal average
  EXPECT_EQ(half_pel_sample(p, 2, 3), 75);   // vertical average
  EXPECT_EQ(half_pel_sample(p, 3, 3), 125);  // 4-tap average
}

class SearchMethodTest
    : public ::testing::TestWithParam<MotionSearchMethod> {};

TEST_P(SearchMethodTest, FindsKnownTranslation) {
  const auto ref = textured_plane(96, 96, 5);
  // Pattern searches descend a cost gradient; very large displacements
  // are only guaranteed for the exhaustive methods — and for HME, whose
  // coarse-level full search covers the whole (downsampled) range.
  const bool wide_range = GetParam() == MotionSearchMethod::kEsa ||
                          GetParam() == MotionSearchMethod::kTesa ||
                          GetParam() == MotionSearchMethod::kHme;
  const std::vector<std::pair<int, int>> small = {
      {0, 0}, {2, 1}, {-4, 3}, {6, -5}};
  std::vector<std::pair<int, int>> shifts = small;
  if (wide_range) shifts.push_back({-12, -12});
  for (const auto [dx, dy] : shifts) {
    const auto cur = shifted(ref, dx, dy);
    MotionSearchConfig cfg;
    cfg.method = GetParam();
    const MotionSearcher searcher(cfg);
    const auto field = searcher.search_frame(cur, ref);
    // Interior macroblock (border MBs see clamped content).
    const auto mv = field.at(2, 2);
    EXPECT_EQ(mv.dx, 2 * dx) << to_string(GetParam());
    EXPECT_EQ(mv.dy, 2 * dy) << to_string(GetParam());
  }
}

TEST_P(SearchMethodTest, RespectsRange) {
  const auto ref = textured_plane(96, 96, 8);
  const auto cur = shifted(ref, 40, 0);  // beyond any range
  MotionSearchConfig cfg;
  cfg.method = GetParam();
  cfg.range = 8;
  const MotionSearcher searcher(cfg);
  const auto field = searcher.search_frame(cur, ref);
  for (const auto& mv : field.mvs) {
    EXPECT_LE(std::abs(mv.dx), 2 * cfg.range + 1);
    EXPECT_LE(std::abs(mv.dy), 2 * cfg.range + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SearchMethodTest,
                         ::testing::Values(MotionSearchMethod::kDia,
                                           MotionSearchMethod::kHex,
                                           MotionSearchMethod::kUmh,
                                           MotionSearchMethod::kTesa,
                                           MotionSearchMethod::kEsa,
                                           MotionSearchMethod::kHme),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(MotionField, NonzeroRatio) {
  MotionField f(4, 2);
  EXPECT_DOUBLE_EQ(f.nonzero_ratio(), 0.0);
  f.at(0, 0) = {2, 0};
  f.at(3, 1) = {0, -2};
  EXPECT_DOUBLE_EQ(f.nonzero_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(MotionField{}.nonzero_ratio(), 0.0);
}

TEST(MotionField, CenterCoordinates) {
  MotionField f(4, 4);
  const auto c = f.mb_center(1, 2);
  EXPECT_DOUBLE_EQ(c.x, 24.0);
  EXPECT_DOUBLE_EQ(c.y, 40.0);
}

TEST(MotionVector, HalfPelConversions) {
  const MotionVector mv{3, -5};
  EXPECT_DOUBLE_EQ(mv.as_vec2().x, 1.5);
  EXPECT_DOUBLE_EQ(mv.as_vec2().y, -2.5);
  EXPECT_EQ(MotionVector::from_fullpel(2, -3), (MotionVector{4, -6}));
  EXPECT_TRUE((MotionVector{0, 0}).is_zero());
  EXPECT_FALSE((MotionVector{1, 0}).is_zero());
}

TEST(LumaPyramid, HalvesDimensionsAndAveragesQuads) {
  video::Plane base(8, 4);
  // Quad (0,0): 10,20,30,40 -> rounded mean 25.
  base.at(0, 0) = 10;
  base.at(1, 0) = 20;
  base.at(0, 1) = 30;
  base.at(1, 1) = 40;
  const auto pyr = build_pyramid(base, 2);
  ASSERT_EQ(pyr.levels.size(), 2u);
  EXPECT_EQ(pyr.levels[0].width, 4);
  EXPECT_EQ(pyr.levels[0].height, 2);
  EXPECT_EQ(pyr.levels[1].width, 2);
  EXPECT_EQ(pyr.levels[1].height, 1);
  EXPECT_EQ(pyr.levels[0].at(0, 0), 25);
}

TEST(MotionSearch, HmeFindsLargeShiftPatternSearchesMiss) {
  // A displacement well beyond the hex pattern's descent basin: the
  // pyramid's coarse full search must still land on the true motion.
  const auto ref = textured_plane(128, 128, 21);
  const auto cur = shifted(ref, -18, 14);
  MotionSearchConfig cfg;
  cfg.method = MotionSearchMethod::kHme;
  const MotionSearcher searcher(cfg);
  const auto field = searcher.search_frame(cur, ref);
  const auto mv = field.at(3, 3);  // interior macroblock
  EXPECT_EQ(mv.dx, 2 * -18);
  EXPECT_EQ(mv.dy, 2 * 14);
}

TEST(MotionSearch, HmeMatchesConfiguredLevelClamp) {
  // hme_levels outside [1, 2] must clamp rather than misbehave; the
  // found field on a plain translation is the same either way.
  const auto ref = textured_plane(96, 96, 23);
  const auto cur = shifted(ref, 5, -3);
  for (const int levels : {0, 1, 2, 7}) {
    MotionSearchConfig cfg;
    cfg.method = MotionSearchMethod::kHme;
    cfg.hme_levels = levels;
    const MotionSearcher searcher(cfg);
    const auto field = searcher.search_frame(cur, ref);
    const auto mv = field.at(2, 2);
    EXPECT_EQ(mv.dx, 2 * 5) << "levels=" << levels;
    EXPECT_EQ(mv.dy, 2 * -3) << "levels=" << levels;
  }
}

TEST(MotionSearch, ZeroBiasOnStaticNoise) {
  // Static content plus small independent noise: pattern searches must
  // report (almost) all-zero motion.
  auto ref = textured_plane(96, 96, 11);
  auto cur = ref;
  util::Rng rng(12);
  for (auto& px : cur.data) {
    const int v = px + rng.uniform_int(-2, 2);
    px = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
  }
  const MotionSearcher searcher{MotionSearchConfig{}};  // HEX default
  const auto field = searcher.search_frame(cur, ref);
  EXPECT_LT(field.nonzero_ratio(), 0.1);
}

}  // namespace
}  // namespace dive::codec
