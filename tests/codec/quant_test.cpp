#include "codec/quant.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace dive::codec {
namespace {

TEST(Quant, StepDoublesEverySixQp) {
  EXPECT_DOUBLE_EQ(qp_step(0), 0.625);
  EXPECT_NEAR(qp_step(6), 1.25, 1e-12);
  EXPECT_NEAR(qp_step(12), 2.5, 1e-12);
  EXPECT_NEAR(qp_step(24) / qp_step(18), 2.0, 1e-12);
}

TEST(Quant, ClampsQpRange) {
  EXPECT_DOUBLE_EQ(qp_step(-10), qp_step(kMinQp));
  EXPECT_DOUBLE_EQ(qp_step(100), qp_step(kMaxQp));
}

TEST(Quant, RoundTripErrorBounded) {
  util::Rng rng(2);
  for (int qp : {0, 12, 24, 36, 51}) {
    Block8x8 coeffs;
    for (auto& c : coeffs) c = rng.uniform(-500, 500);
    QuantBlock levels;
    quantize(coeffs, qp, levels);
    Block8x8 recon;
    dequantize(levels, qp, recon);
    const double step = qp_step(qp);
    for (int i = 0; i < 64; ++i) {
      EXPECT_LE(std::abs(recon[static_cast<std::size_t>(i)] -
                         coeffs[static_cast<std::size_t>(i)]),
                step * 0.51 + 1e-9)
          << "qp=" << qp;
    }
  }
}

TEST(Quant, DeadZoneSuppressesSmallCoefficients) {
  Block8x8 coeffs{};
  coeffs[5] = qp_step(24) / 8.0;  // below the dead zone
  QuantBlock levels;
  quantize(coeffs, 24, levels);
  EXPECT_TRUE(all_zero(levels));
}

TEST(Quant, HigherQpCoarserLevels) {
  Block8x8 coeffs;
  util::Rng rng(7);
  for (auto& c : coeffs) c = rng.uniform(-200, 200);
  QuantBlock lo, hi;
  quantize(coeffs, 10, lo);
  quantize(coeffs, 40, hi);
  long lo_energy = 0, hi_energy = 0;
  for (int i = 0; i < 64; ++i) {
    lo_energy += std::abs(lo[static_cast<std::size_t>(i)]);
    hi_energy += std::abs(hi[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(lo_energy, hi_energy * 4);
}

TEST(Zigzag, IsAPermutation) {
  const auto& zz = zigzag_order();
  std::set<int> seen(zz.begin(), zz.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(Zigzag, StartsLowFrequency) {
  const auto& zz = zigzag_order();
  EXPECT_EQ(zz[0], 0);       // DC first
  EXPECT_EQ(zz[1], 1);       // (0,1)
  EXPECT_EQ(zz[2], 8);       // (1,0)
  EXPECT_EQ(zz[63], 63);     // highest frequency last
}

TEST(AllZero, DetectsZeroAndNonzero) {
  QuantBlock z{};
  EXPECT_TRUE(all_zero(z));
  z[17] = -1;
  EXPECT_FALSE(all_zero(z));
}

}  // namespace
}  // namespace dive::codec
