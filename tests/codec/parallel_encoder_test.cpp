// Determinism of the parallel encode pipeline: encoded bytes must be
// bit-identical for every thread count and with trial reuse on or off,
// and the trial-reuse rate control must actually skip redundant
// transform passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/motion_search.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dive::codec {
namespace {

video::Frame synthetic_frame(int w, int h, std::uint64_t seed, int shift = 0) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int xs = x - shift;
      double v = 60 + 0.3 * xs + 0.2 * y;
      if ((xs / 20 + y / 14) % 2 == 0) v += 55;
      v += rng.uniform(-3, 3);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.u.at(x, y) =
          static_cast<std::uint8_t>(120 + ((x - shift / 2) / 10) % 20);
      f.v.at(x, y) = static_cast<std::uint8_t>(130 + (y / 8) % 12);
    }
  return f;
}

/// A short sequence with real motion (shift grows per frame). Same seed
/// per index so every encoder sees identical input.
std::vector<video::Frame> moving_sequence(int w, int h, int n) {
  std::vector<video::Frame> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    seq.push_back(synthetic_frame(w, h, 700 + static_cast<std::uint64_t>(i), i * 3));
  return seq;
}

std::vector<EncodedFrame> encode_all(EncoderConfig cfg,
                                     const std::vector<video::Frame>& seq,
                                     int base_qp) {
  Encoder enc(cfg);
  std::vector<EncodedFrame> out;
  out.reserve(seq.size());
  for (const auto& f : seq) out.push_back(enc.encode(f, base_qp));
  return out;
}

TEST(ParallelEncoder, EncodeBitIdenticalAcrossThreadCounts) {
  const auto seq = moving_sequence(128, 64, 4);
  const auto serial = encode_all({.width = 128, .height = 64, .threads = 1},
                                 seq, 26);
  for (int threads : {2, 4}) {
    const auto parallel = encode_all(
        {.width = 128, .height = 64, .threads = threads}, seq, 26);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].data, serial[i].data)
          << "threads=" << threads << " frame=" << i;
      EXPECT_EQ(parallel[i].base_qp, serial[i].base_qp);
      EXPECT_DOUBLE_EQ(parallel[i].psnr_y, serial[i].psnr_y);
    }
  }
}

TEST(ParallelEncoder, MotionSearchParityWithPool) {
  const auto ref = synthetic_frame(192, 96, 42, 0);
  const auto cur = synthetic_frame(192, 96, 42, 5);
  MotionSearcher searcher;
  const MotionField serial = searcher.search_frame(cur.y, ref.y);
  util::ThreadPool pool(4);
  const MotionField parallel = searcher.search_frame(cur.y, ref.y, &pool);
  EXPECT_EQ(parallel.mvs, serial.mvs);
  EXPECT_EQ(parallel.sad, serial.sad);
}

TEST(ParallelEncoder, EncodeToTargetParityAcrossThreadsAndReuse) {
  const auto seq = moving_sequence(128, 64, 4);
  const std::size_t target = 900;

  std::vector<std::vector<EncodedFrame>> runs;
  for (int threads : {1, 4})
    for (bool reuse : {true, false}) {
      Encoder enc({.width = 128,
                   .height = 64,
                   .threads = threads,
                   .reuse_trials = reuse});
      std::vector<EncodedFrame> out;
      for (const auto& f : seq) out.push_back(enc.encode_to_target(f, target));
      runs.push_back(std::move(out));
    }

  const auto& baseline = runs.front();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(runs[r][i].data, baseline[i].data)
          << "run=" << r << " frame=" << i;
      EXPECT_EQ(runs[r][i].base_qp, baseline[i].base_qp);
    }
  }
}

TEST(ParallelEncoder, TrialReuseSkipsTransformPasses) {
  const auto seq = moving_sequence(128, 64, 2);
  const std::size_t target = 900;

  Encoder with_reuse(
      {.width = 128, .height = 64, .threads = 1, .reuse_trials = true});
  Encoder without_reuse(
      {.width = 128, .height = 64, .threads = 1, .reuse_trials = false});

  // Frame 0 is intra; frame 1 exercises the inter-frame plan reuse.
  for (const auto& f : seq) {
    const auto a = with_reuse.encode_to_target(f, target);
    const auto b = without_reuse.encode_to_target(f, target);
    EXPECT_EQ(a.data, b.data);  // reuse is purely a caching layer
  }

  const RateControlStats reuse = with_reuse.rate_control_stats();
  const RateControlStats full = without_reuse.rate_control_stats();
  EXPECT_EQ(reuse.trials_attempted, full.trials_attempted);
  ASSERT_GT(full.trials_attempted, 1);
  EXPECT_EQ(full.full_transform_passes, full.trials_attempted);
  EXPECT_EQ(reuse.full_transform_passes, 1);
  EXPECT_LT(reuse.full_transform_passes, full.full_transform_passes);
}

TEST(ParallelEncoder, DecoderAgreesWithParallelEncoder) {
  Encoder enc({.width = 128, .height = 64, .threads = 4});
  Decoder dec;
  const auto seq = moving_sequence(128, 64, 4);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const auto encoded = enc.encode(seq[i], 24);
    const auto decoded = dec.decode(encoded.data);
    ASSERT_EQ(decoded.frame, enc.reference()) << "frame " << i;
  }
}

}  // namespace
}  // namespace dive::codec
