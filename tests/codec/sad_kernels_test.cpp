// Differential verification of the SIMD SAD kernels against the
// canonical scalar reference (codec/sad_kernels.h). The contract is
// EXACT equality: SAD is an integer sum, so the dispatched kernel must
// reproduce the scalar result bit-for-bit on every input — randomized
// planes, odd strides, saturating extremes, and every displacement a
// diamond/hex search can visit, including half-pel and border reads via
// the sad_16x16 wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "codec/motion_search.h"
#include "codec/sad_kernels.h"
#include "util/rng.h"
#include "video/frame.h"

namespace dive::codec {
namespace {

constexpr int kMb = kMacroblockSize;

/// Buffer of `w * h` random bytes acting as a plane with stride `w`.
std::vector<std::uint8_t> random_buffer(int w, int h, std::uint64_t seed) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(w) *
                                static_cast<std::size_t>(h));
  util::Rng rng(seed);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return buf;
}

video::Plane random_plane(int w, int h, std::uint64_t seed) {
  video::Plane p(w, h);
  p.data = random_buffer(w, h, seed);
  return p;
}

/// Independent reference: textbook double loop, no shared code with the
/// production scalar kernel beyond the definition of SAD itself.
std::uint32_t reference_sad(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride) {
  std::uint32_t acc = 0;
  for (int y = 0; y < kMb; ++y)
    for (int x = 0; x < kMb; ++x) {
      const int c = cur[y * cur_stride + x];
      const int r = ref[y * ref_stride + x];
      acc += static_cast<std::uint32_t>(c > r ? c - r : r - c);
    }
  return acc;
}

TEST(SadKernels, DispatchReportsAKernel) {
  const SadKernel k = active_sad_kernel();
  EXPECT_NE(to_string(k), nullptr);
  EXPECT_NE(sad_16x16_fn(), nullptr);
  // The env override must pin the dispatch to the scalar kernel.
  const char* force = std::getenv("DIVE_FORCE_SCALAR");
  if (force != nullptr && std::string_view(force) != "0")
    EXPECT_EQ(k, SadKernel::kScalar);
}

TEST(SadKernels, MatchesScalarOnRandomBlocks) {
  const Sad16Fn fast = sad_16x16_fn();
  const int w = 160, h = 96;
  const auto cur = random_buffer(w, h, 11);
  const auto ref = random_buffer(w, h, 22);
  util::Rng rng(33);
  for (int trial = 0; trial < 2000; ++trial) {
    const int cx = rng.uniform_int(0, w - kMb);
    const int cy = rng.uniform_int(0, h - kMb);
    const int rx = rng.uniform_int(0, w - kMb);
    const int ry = rng.uniform_int(0, h - kMb);
    const std::uint8_t* c = &cur[static_cast<std::size_t>(cy) * w + cx];
    const std::uint8_t* r = &ref[static_cast<std::size_t>(ry) * w + rx];
    const std::uint32_t want = sad_16x16_scalar(c, w, r, w);
    ASSERT_EQ(fast(c, w, r, w), want)
        << "kernel=" << to_string(active_sad_kernel()) << " cur=(" << cx
        << "," << cy << ") ref=(" << rx << "," << ry << ")";
    ASSERT_EQ(want, reference_sad(c, w, r, w));
  }
}

TEST(SadKernels, MatchesScalarOnOddStrides) {
  const Sad16Fn fast = sad_16x16_fn();
  // Odd, mutually different strides: catches kernels that assume
  // 16-aligned or equal strides for the two operands.
  for (const auto [cw, rw] : {std::pair{67, 131}, {131, 67}, {17, 23}}) {
    const int h = 40;
    const auto cur = random_buffer(cw, h, 44);
    const auto ref = random_buffer(rw, h, 55);
    util::Rng rng(66);
    for (int trial = 0; trial < 500; ++trial) {
      const int cx = rng.uniform_int(0, cw - kMb);
      const int cy = rng.uniform_int(0, h - kMb);
      const int rx = rng.uniform_int(0, rw - kMb);
      const int ry = rng.uniform_int(0, h - kMb);
      const std::uint8_t* c = &cur[static_cast<std::size_t>(cy) * cw + cx];
      const std::uint8_t* r = &ref[static_cast<std::size_t>(ry) * rw + rx];
      ASSERT_EQ(fast(c, cw, r, rw), sad_16x16_scalar(c, cw, r, rw))
          << "strides " << cw << "/" << rw;
    }
  }
}

TEST(SadKernels, SaturatingExtremes) {
  // All-255 vs all-0 maximizes every per-pixel difference: 16*16*255 =
  // 65280, which overflows a u16 accumulator — exactly the mistake a
  // hand-rolled reduction makes.
  std::vector<std::uint8_t> hi(kMb * kMb, 255);
  std::vector<std::uint8_t> lo(kMb * kMb, 0);
  const Sad16Fn fast = sad_16x16_fn();
  EXPECT_EQ(fast(hi.data(), kMb, lo.data(), kMb), 65280u);
  EXPECT_EQ(fast(lo.data(), kMb, hi.data(), kMb), 65280u);
  EXPECT_EQ(sad_16x16_scalar(hi.data(), kMb, lo.data(), kMb), 65280u);
  EXPECT_EQ(fast(hi.data(), kMb, hi.data(), kMb), 0u);
  // Alternating extremes exercise both signs of the per-pixel abs-diff.
  std::vector<std::uint8_t> alt(kMb * kMb);
  for (std::size_t i = 0; i < alt.size(); ++i) alt[i] = i % 2 ? 255 : 0;
  EXPECT_EQ(fast(alt.data(), kMb, lo.data(), kMb),
            sad_16x16_scalar(alt.data(), kMb, lo.data(), kMb));
  EXPECT_EQ(fast(alt.data(), kMb, hi.data(), kMb),
            sad_16x16_scalar(alt.data(), kMb, hi.data(), kMb));
}

TEST(SadKernels, WrapperMatchesScalarForAllSearchCandidates) {
  // Sweep every displacement a search can evaluate — full-pel interior
  // (SIMD path), full-pel straddling the border (clamped scalar path),
  // and half-pel (interpolated scalar path) — and require the wrapper
  // under the dispatched kernel to equal the wrapper pinned to scalar.
  const auto cur = random_plane(96, 64, 77);
  const auto ref = random_plane(96, 64, 88);
  const Sad16Fn fast = sad_16x16_fn();
  for (const auto [cx, cy] : {std::pair{0, 0}, {80, 48}, {32, 16}}) {
    for (int hdy = -9; hdy <= 9; ++hdy)
      for (int hdx = -9; hdx <= 9; ++hdx) {
        const MotionVector mv{hdx, hdy};
        ASSERT_EQ(sad_16x16(cur, ref, cx, cy, mv, fast),
                  sad_16x16(cur, ref, cx, cy, mv, &sad_16x16_scalar))
            << "block (" << cx << "," << cy << ") mv (" << hdx << "," << hdy
            << ")";
      }
  }
}

TEST(SadKernels, PolicyResolution) {
  EXPECT_EQ(resolve_sad_fn(SadKernelPolicy::kScalar), &sad_16x16_scalar);
  EXPECT_EQ(resolve_sad_fn(SadKernelPolicy::kAuto), sad_16x16_fn());
}

TEST(SadKernels, SearcherFieldsIdenticalAcrossKernels) {
  // End-to-end differential: a full motion search over a frame with real
  // structure must produce the identical field (vectors AND costs) with
  // the kernel pinned to scalar vs. auto-dispatched.
  video::Plane ref(160, 96);
  video::Plane cur(160, 96);
  util::Rng rng(99);
  for (int y = 0; y < 96; ++y)
    for (int x = 0; x < 160; ++x) {
      const double v = 90 + 50 * ((x / 13 + y / 9) % 2) + rng.uniform(-6, 6);
      ref.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
      cur.at(x, y) = ref.at_clamped(x - 5, y - 2);  // global (5,2) shift
    }
  for (const MotionSearchMethod m :
       {MotionSearchMethod::kDia, MotionSearchMethod::kHex,
        MotionSearchMethod::kUmh, MotionSearchMethod::kEsa}) {
    const MotionSearcher scalar({.method = m, .sad = SadKernelPolicy::kScalar});
    const MotionSearcher autod({.method = m, .sad = SadKernelPolicy::kAuto});
    const MotionField a = scalar.search_frame(cur, ref);
    const MotionField b = autod.search_frame(cur, ref);
    EXPECT_EQ(a.mvs, b.mvs) << "method " << to_string(m);
    EXPECT_EQ(a.sad, b.sad) << "method " << to_string(m);
  }
}

}  // namespace
}  // namespace dive::codec
