#include "codec/bitstream.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dive::codec {
namespace {

TEST(Bitstream, BitRoundTrip) {
  BitWriter bw;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) bw.put_bit(b);
  const auto data = bw.finish();
  BitReader br(data);
  for (bool b : pattern) EXPECT_EQ(br.get_bit(), b);
}

TEST(Bitstream, FixedWidthRoundTrip) {
  BitWriter bw;
  bw.put_bits(0xABC, 12);
  bw.put_bits(0x3, 2);
  const auto data = bw.finish();
  BitReader br(data);
  EXPECT_EQ(br.get_bits(12), 0xABCu);
  EXPECT_EQ(br.get_bits(2), 0x3u);
}

TEST(Bitstream, UeGolombKnownCodes) {
  // value 0 -> "1" (1 bit), 1 -> "010", 2 -> "011", 3 -> "00100".
  EXPECT_EQ(BitWriter::ue_bits(0), 1);
  EXPECT_EQ(BitWriter::ue_bits(1), 3);
  EXPECT_EQ(BitWriter::ue_bits(2), 3);
  EXPECT_EQ(BitWriter::ue_bits(3), 5);
  EXPECT_EQ(BitWriter::ue_bits(6), 5);
  EXPECT_EQ(BitWriter::ue_bits(7), 7);
}

TEST(Bitstream, UeRoundTripSweep) {
  BitWriter bw;
  for (std::uint32_t v = 0; v < 300; ++v) bw.put_ue(v);
  const auto data = bw.finish();
  BitReader br(data);
  for (std::uint32_t v = 0; v < 300; ++v) EXPECT_EQ(br.get_ue(), v);
}

TEST(Bitstream, SeRoundTripSweep) {
  BitWriter bw;
  for (std::int32_t v = -200; v <= 200; ++v) bw.put_se(v);
  const auto data = bw.finish();
  BitReader br(data);
  for (std::int32_t v = -200; v <= 200; ++v) EXPECT_EQ(br.get_se(), v);
}

TEST(Bitstream, SeBitsMatchesActualWidth) {
  for (std::int32_t v : {-100, -5, -1, 0, 1, 7, 99}) {
    BitWriter bw;
    bw.put_se(v);
    EXPECT_EQ(static_cast<int>(bw.bit_count()), BitWriter::se_bits(v)) << v;
  }
}

TEST(Bitstream, MixedPayloadRandomized) {
  util::Rng rng(77);
  std::vector<std::int32_t> values;
  BitWriter bw;
  for (int i = 0; i < 1000; ++i) {
    const std::int32_t v = rng.uniform_int(-1000, 1000);
    values.push_back(v);
    bw.put_se(v);
  }
  const auto data = bw.finish();
  BitReader br(data);
  for (std::int32_t v : values) EXPECT_EQ(br.get_se(), v);
}

TEST(Bitstream, ReadPastEndThrows) {
  BitWriter bw;
  bw.put_bits(0x5, 3);
  const auto data = bw.finish();
  BitReader br(data);
  br.get_bits(8);  // consumes the padded byte
  EXPECT_THROW(br.get_bit(), BitstreamError);
}

TEST(Bitstream, MalformedUeThrows) {
  // 5 zero bytes: > 32 leading zeros with no terminator.
  const std::vector<std::uint8_t> zeros(5, 0);
  BitReader br(zeros);
  EXPECT_THROW(br.get_ue(), BitstreamError);
}

TEST(Bitstream, BitCountTracksPayload) {
  BitWriter bw;
  bw.put_bit(true);
  bw.put_bits(0, 5);
  EXPECT_EQ(bw.bit_count(), 6u);
  const auto data = bw.finish();
  EXPECT_EQ(data.size(), 1u);  // padded to one byte
}

}  // namespace
}  // namespace dive::codec
