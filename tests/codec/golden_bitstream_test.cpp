// Golden bitstream regression: the encoder's output for a fixed seeded
// sequence is pinned by checksum at two operating points. Any change to
// motion search, transforms, quantization, entropy coding, SIMD kernels,
// or the pipelined schedule that alters a single output bit trips this
// test.
//
// We check in CHECKSUMS, not bytes: the bitstream is a few KB per QP and
// churns entirely on any intentional format change, while a 64-bit FNV-1a
// digest pins the same contract reviewably.
//
// If this test fails and the change is INTENTIONAL (a deliberate format
// or rate-distortion change), re-bake the constants: run the test, copy
// the "actual" values it prints into kGolden below, and call out the
// bitstream change explicitly in the commit message. If the change is NOT
// intentional, the encoder regressed — bisect before touching this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "util/rng.h"

namespace dive::codec {
namespace {

/// Seeded sequence with global motion and texture; must never change, or
/// the golden constants lose their meaning.
video::Frame golden_frame(int w, int h, std::uint64_t seed, int shift) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int xs = x - shift;
      double v = 70 + 0.25 * xs + 0.15 * y;
      if ((xs / 16 + y / 12) % 2 == 0) v += 48;
      v += rng.uniform(-4, 4);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.u.at(x, y) = static_cast<std::uint8_t>(118 + ((x + shift) / 9) % 16);
      f.v.at(x, y) = static_cast<std::uint8_t>(132 + (y / 7) % 10);
    }
  return f;
}

std::uint64_t fnv1a(std::uint64_t h, const std::vector<std::uint8_t>& bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Digest of the full encoded sequence (6 frames, 1 intra + 5 inter) at
/// one base QP and search method, frame boundaries mixed in via the
/// per-frame size.
std::uint64_t sequence_digest(int qp,
                              MotionSearchMethod method =
                                  MotionSearchMethod::kHex) {
  Encoder enc({.width = 128,
               .height = 64,
               .search = {.method = method},
               .threads = 2});
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 6; ++i) {
    const video::Frame next = golden_frame(
        128, 64, 1200 + static_cast<std::uint64_t>(i) + 1, (i + 1) * 4);
    const video::Frame cur =
        golden_frame(128, 64, 1200 + static_cast<std::uint64_t>(i), i * 4);
    const EncodedFrame out =
        enc.encode(cur, qp, nullptr, nullptr, i < 5 ? &next : nullptr);
    h ^= out.data.size();
    h *= 0x100000001b3ULL;
    h = fnv1a(h, out.data);
  }
  return h;
}

/// Tunnel variant of the golden sequence: frames 2..3 are darkened to a
/// quarter of their luma, so the encoder's scene-change detection forces
/// I-frames at the entry (frame 2) and exit (frame 4) steps. Pins the
/// forced-intra path (mid-GoP reset) alongside the steady-state points.
std::uint64_t tunnel_sequence_digest(int qp) {
  Encoder enc({.width = 128, .height = 64, .threads = 2});
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto tunnel_frame = [](int i) {
    video::Frame f = golden_frame(
        128, 64, 1200 + static_cast<std::uint64_t>(i), i * 4);
    if (i >= 2 && i < 4)
      for (auto& v : f.y.data) v = static_cast<std::uint8_t>(v / 4);
    return f;
  };
  for (int i = 0; i < 6; ++i) {
    const video::Frame next = tunnel_frame(i + 1);
    const EncodedFrame out =
        enc.encode(tunnel_frame(i), qp, nullptr, nullptr,
                   i < 5 ? &next : nullptr);
    h ^= out.data.size();
    h *= 0x100000001b3ULL;
    h = fnv1a(h, out.data);
  }
  return h;
}

struct GoldenPoint {
  int qp;
  MotionSearchMethod method;
  std::uint64_t digest;
};

// Baked from the canonical scalar serial encode; every {kernel, thread
// count, overlap} cell must reproduce these exactly (see the determinism
// matrix test for the cross-cell proof, this test for drift vs. history).
//
// Re-baked when per-macroblock SKIP coding landed: the skip bit changed
// from "zero MV and no residual" to "MV equals its predictor and no
// residual" (reference copy at the PREDICTED MV), and low-residual
// macroblocks are now forced to SKIP below the encoder's SAD threshold.
// Only the qp=38 digest moved (at qp=22 no macroblock of this sequence
// satisfies either skip predicate). The hme point pins the hierarchical
// pyramid search alongside the default hex.
constexpr GoldenPoint kGolden[] = {
    {22, MotionSearchMethod::kHex, 0x5d6f40da263a3402ULL},
    {38, MotionSearchMethod::kHex, 0x8e7244f23a7bb49eULL},
    {30, MotionSearchMethod::kHme, 0x5494e2988427b784ULL},
};

TEST(GoldenBitstream, DigestsMatchCheckedInConstants) {
  for (const auto& point : kGolden) {
    const std::uint64_t actual = sequence_digest(point.qp, point.method);
    EXPECT_EQ(actual, point.digest)
        << "\n"
        << "GOLDEN BITSTREAM MISMATCH at qp=" << point.qp << " method="
        << to_string(point.method) << "\n"
        << "  expected digest: 0x" << std::hex << point.digest << "\n"
        << "  actual digest:   0x" << std::hex << actual << "\n"
        << "The encoder's output changed for the pinned seeded sequence.\n"
        << "If this is an INTENTIONAL format/RD change: update kGolden in\n"
        << "tests/codec/golden_bitstream_test.cpp with the actual value\n"
        << "above and describe the bitstream change in the commit message.\n"
        << "If not intentional: you broke the encoder — bisect, do not\n"
        << "re-bake.";
  }
}

// Baked from the canonical run the same way as kGolden. The existing
// points above did NOT move when scene-change detection landed (the
// steady-luma golden sequence never trips the 24 DN threshold); this
// point is new and covers the sequence that does.
constexpr std::uint64_t kTunnelGoldenQp30 = 0x7b8578602feff239ULL;

TEST(GoldenBitstream, TunnelDigestMatchesCheckedInConstant) {
  const std::uint64_t actual = tunnel_sequence_digest(30);
  EXPECT_EQ(actual, kTunnelGoldenQp30)
      << "\n"
      << "GOLDEN BITSTREAM MISMATCH on the tunnel (scene-cut) sequence\n"
      << "  expected digest: 0x" << std::hex << kTunnelGoldenQp30 << "\n"
      << "  actual digest:   0x" << std::hex << actual << "\n"
      << "Re-bake kTunnelGoldenQp30 only for INTENTIONAL format, RD, or\n"
      << "scene-change-policy changes, and say so in the commit message.";
}

TEST(GoldenBitstream, GoldenSequenceStillDecodes) {
  // Guards the golden points themselves: the pinned stream must remain a
  // valid, decodable bitstream whose reconstruction tracks the encoder.
  Encoder enc({.width = 128, .height = 64, .threads = 2});
  Decoder dec;
  for (int i = 0; i < 6; ++i) {
    const video::Frame cur =
        golden_frame(128, 64, 1200 + static_cast<std::uint64_t>(i), i * 4);
    const EncodedFrame out = enc.encode(cur, 22);
    const auto decoded = dec.decode(out.data);
    ASSERT_EQ(decoded.frame, enc.reference()) << "frame " << i;
  }
}

}  // namespace
}  // namespace dive::codec
