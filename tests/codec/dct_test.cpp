#include "codec/dct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dive::codec {
namespace {

TEST(Dct, RoundTripIsIdentity) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Block8x8 input;
    for (auto& v : input) v = rng.uniform(-128, 128);
    Block8x8 coeffs, output;
    forward_dct(input, coeffs);
    inverse_dct(coeffs, output);
    for (int i = 0; i < 64; ++i)
      EXPECT_NEAR(output[static_cast<std::size_t>(i)],
                  input[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Dct, ConstantBlockIsPureDc) {
  Block8x8 input;
  input.fill(50.0);
  Block8x8 coeffs;
  forward_dct(input, coeffs);
  // Orthonormal DCT: DC = 8 * mean.
  EXPECT_NEAR(coeffs[0], 400.0, 1e-9);
  for (int i = 1; i < 64; ++i)
    EXPECT_NEAR(coeffs[static_cast<std::size_t>(i)], 0.0, 1e-9);
}

TEST(Dct, ParsevalEnergyPreserved) {
  util::Rng rng(5);
  Block8x8 input;
  for (auto& v : input) v = rng.uniform(-100, 100);
  Block8x8 coeffs;
  forward_dct(input, coeffs);
  double e_in = 0, e_out = 0;
  for (int i = 0; i < 64; ++i) {
    e_in += input[static_cast<std::size_t>(i)] * input[static_cast<std::size_t>(i)];
    e_out += coeffs[static_cast<std::size_t>(i)] * coeffs[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(e_in, e_out, 1e-6);
}

TEST(Dct, HorizontalCosineHitsSingleBin) {
  // input(x) = cos((2x+1) * u0 * pi / 16) excites exactly coefficient u0.
  const int u0 = 3;
  Block8x8 input;
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      input[static_cast<std::size_t>(y * 8 + x)] =
          std::cos((2.0 * x + 1.0) * u0 * M_PI / 16.0);
  Block8x8 coeffs;
  forward_dct(input, coeffs);
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u) {
      const double c = coeffs[static_cast<std::size_t>(v * 8 + u)];
      if (u == u0 && v == 0) {
        EXPECT_GT(std::abs(c), 1.0);
      } else {
        EXPECT_NEAR(c, 0.0, 1e-9);
      }
    }
}

TEST(Dct, Linearity) {
  util::Rng rng(9);
  Block8x8 a, b, sum;
  for (int i = 0; i < 64; ++i) {
    a[static_cast<std::size_t>(i)] = rng.uniform(-50, 50);
    b[static_cast<std::size_t>(i)] = rng.uniform(-50, 50);
    sum[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
  }
  Block8x8 ca, cb, cs;
  forward_dct(a, ca);
  forward_dct(b, cb);
  forward_dct(sum, cs);
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(cs[static_cast<std::size_t>(i)],
                ca[static_cast<std::size_t>(i)] + cb[static_cast<std::size_t>(i)],
                1e-9);
}

}  // namespace
}  // namespace dive::codec
