#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "util/rng.h"

namespace dive::codec {
namespace {

video::Frame busy_frame(int w, int h, std::uint64_t seed) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (auto& px : f.y.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(30, 220));
  for (auto& px : f.u.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(110, 150));
  for (auto& px : f.v.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(110, 150));
  return f;
}

TEST(RateControl, FitsGenerousBudget) {
  Encoder enc({.width = 128, .height = 64});
  const auto frame = busy_frame(128, 64, 1);
  const auto encoded = enc.encode_to_target(frame, 20'000);
  EXPECT_LE(encoded.bytes(), 20'000u);
}

TEST(RateControl, FitsTightBudget) {
  Encoder enc({.width = 128, .height = 64});
  const auto frame = busy_frame(128, 64, 2);
  const auto encoded = enc.encode_to_target(frame, 2'000);
  EXPECT_LE(encoded.bytes(), 2'000u);
  EXPECT_GT(encoded.base_qp, 25);
}

TEST(RateControl, PicksBestQualityThatFits) {
  // With a large budget the selected QP should be near the minimum
  // reachable within the trial count.
  Encoder enc({.width = 64, .height = 32});
  const auto frame = busy_frame(64, 32, 3);
  const auto encoded = enc.encode_to_target(frame, 1'000'000);
  EXPECT_LE(encoded.base_qp, 6);
}

TEST(RateControl, ImpossibleBudgetStillEncodes) {
  Encoder enc({.width = 128, .height = 64});
  const auto frame = busy_frame(128, 64, 4);  // noise: inherently expensive
  const auto encoded = enc.encode_to_target(frame, 10);
  // Cannot fit 10 bytes, but returns the smallest stream the QP search
  // reached (within one step of the maximum).
  EXPECT_GT(encoded.bytes(), 10u);
  EXPECT_GE(encoded.base_qp, kMaxQp - 1);
}

TEST(RateControl, SuccessiveFramesTrackBudget) {
  Encoder enc({.width = 128, .height = 64});
  std::size_t total = 0;
  const std::size_t per_frame = 4'000;
  for (int i = 0; i < 6; ++i) {
    const auto frame = busy_frame(128, 64, 10 + i);
    const auto encoded = enc.encode_to_target(frame, per_frame);
    EXPECT_LE(encoded.bytes(), per_frame) << "frame " << i;
    total += encoded.bytes();
  }
  EXPECT_LE(total, per_frame * 6);
}

TEST(RateControl, OffsetsReduceSizeAtEqualBaseQp) {
  const auto frame = busy_frame(128, 64, 7);
  Encoder a({.width = 128, .height = 64});
  const auto plain = a.encode(frame, 20);
  QpOffsetMap offsets(8, 4, 16);  // everything compressed harder
  Encoder b({.width = 128, .height = 64});
  const auto squeezed = b.encode(frame, 20, &offsets);
  EXPECT_LT(squeezed.bytes(), plain.bytes());
}

}  // namespace
}  // namespace dive::codec
