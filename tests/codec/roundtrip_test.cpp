// Encoder/decoder agreement: decoding must reproduce the encoder's
// reconstruction bit-exactly, for every frame type, QP, offset map, and
// motion-search method.
#include <gtest/gtest.h>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "util/rng.h"
#include "video/image_ops.h"

namespace dive::codec {
namespace {

/// Structured synthetic frame: gradient + blocks + noise, so the codec
/// has both smooth and detailed content.
video::Frame synthetic_frame(int w, int h, std::uint64_t seed, int shift = 0) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int xs = x - shift;
      double v = 60 + 0.3 * xs + 0.2 * y;
      if ((xs / 20 + y / 14) % 2 == 0) v += 55;
      v += rng.uniform(-3, 3);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.u.at(x, y) = static_cast<std::uint8_t>(120 + ((x - shift / 2) / 10) % 20);
      f.v.at(x, y) = static_cast<std::uint8_t>(130 + (y / 8) % 12);
    }
  return f;
}

TEST(Codec, IntraRoundTripExactRecon) {
  Encoder enc({.width = 128, .height = 64});
  Decoder dec;
  const auto frame = synthetic_frame(128, 64, 1);
  const auto encoded = enc.encode(frame, 20);
  EXPECT_EQ(encoded.type, FrameType::kIntra);
  const auto decoded = dec.decode(encoded.data);
  EXPECT_EQ(decoded.frame, enc.reference());
  EXPECT_EQ(decoded.base_qp, 20);
}

TEST(Codec, InterSequenceStaysInSync) {
  Encoder enc({.width = 128, .height = 64});
  Decoder dec;
  for (int i = 0; i < 8; ++i) {
    const auto frame = synthetic_frame(128, 64, 100 + i, i * 3);
    const auto encoded = enc.encode(frame, 26);
    const auto decoded = dec.decode(encoded.data);
    ASSERT_EQ(decoded.frame, enc.reference()) << "frame " << i;
    if (i > 0) EXPECT_EQ(decoded.type, FrameType::kInter);
  }
}

TEST(Codec, SkipBlocksRoundTripAndFireOnStaticContent) {
  // A static scene: nearly every inter macroblock should be coded as a
  // one-bit SKIP, the stream must shrink accordingly, and the decoder's
  // reference-copy reconstruction must track the encoder exactly.
  Encoder skip_enc({.width = 128, .height = 64, .skip_blocks = true});
  Encoder nosk_enc({.width = 128, .height = 64, .skip_blocks = false});
  Decoder dec;
  const auto frame = synthetic_frame(128, 64, 7);
  // Frame 0 (intra) seeds encoder and decoder references alike.
  (void)dec.decode(skip_enc.encode(frame, 30).data);
  (void)nosk_enc.encode(frame, 30);
  // Encode the SAME frame again: the reference now matches the source at
  // zero MV, so the skip threshold fires everywhere.
  const auto with_skip = skip_enc.encode(frame, 30);
  const auto without = nosk_enc.encode(frame, 30);
  EXPECT_EQ(with_skip.type, FrameType::kInter);
  // The reference is the QP-30 intra RECONSTRUCTION, not the source, so
  // demand most (not all) macroblocks under the SAD threshold.
  const int mb_count = (128 / 16) * (64 / 16);
  EXPECT_GT(with_skip.skipped_mbs, mb_count / 2);
  const auto decoded = dec.decode(with_skip.data);
  EXPECT_EQ(decoded.frame, skip_enc.reference());
  // ~1 bit/MB + header vs. whatever the residual path costs.
  EXPECT_LE(with_skip.bytes(), without.bytes());
  const auto& stats = skip_enc.skip_stats();
  EXPECT_GT(stats.skipped_mbs, 0);
  EXPECT_GT(stats.inter_mbs, 0);
}

TEST(Codec, SkipDisabledStreamsStillDecode) {
  // skip_blocks=false only disables FORCED skips; naturally skippable
  // macroblocks (MV == predictor, no residual) still use the skip bit,
  // so one decoder serves both encoder configurations.
  Encoder enc({.width = 128, .height = 64, .skip_blocks = false});
  Decoder dec;
  for (int i = 0; i < 4; ++i) {
    const auto frame = synthetic_frame(128, 64, 300 + i, i * 2);
    const auto encoded = enc.encode(frame, 28);
    const auto decoded = dec.decode(encoded.data);
    ASSERT_EQ(decoded.frame, enc.reference()) << "frame " << i;
  }
}

TEST(Codec, SkipCarriesPredictedMotionThroughDecoder) {
  // A globally panning scene: once the left-neighbor predictor locks
  // onto the pan, low-residual macroblocks skip WITH the predicted
  // (nonzero) motion — the decoded motion field must equal the coded
  // field the encoder reports, including skip macroblocks.
  Encoder enc({.width = 128, .height = 64, .skip_blocks = true});
  Decoder dec;
  for (int i = 0; i < 4; ++i) {
    const auto frame = synthetic_frame(128, 64, 9, i * 4);  // same texture
    const auto encoded = enc.encode(frame, 30);
    const auto decoded = dec.decode(encoded.data);
    ASSERT_EQ(decoded.frame, enc.reference()) << "frame " << i;
    if (encoded.type == FrameType::kInter) {
      ASSERT_EQ(decoded.motion.mvs, encoded.motion.mvs) << "frame " << i;
      EXPECT_GT(decoded.motion.nonzero_ratio(), 0.5) << "frame " << i;
    }
  }
  EXPECT_GT(enc.skip_stats().skipped_mbs, 0);
}

TEST(Codec, LowQpHighFidelity) {
  Encoder enc({.width = 128, .height = 64});
  const auto frame = synthetic_frame(128, 64, 2);
  const auto encoded = enc.encode(frame, 2);
  EXPECT_GT(encoded.psnr_y, 46.0);
}

TEST(Codec, QpControlsRateAndQuality) {
  const auto frame = synthetic_frame(128, 64, 3);
  std::size_t prev_bytes = SIZE_MAX;
  double prev_psnr = 1e9;
  for (int qp : {8, 20, 32, 44}) {
    Encoder enc({.width = 128, .height = 64});
    const auto encoded = enc.encode(frame, qp);
    EXPECT_LT(encoded.bytes(), prev_bytes) << "qp=" << qp;
    EXPECT_LT(encoded.psnr_y, prev_psnr + 0.2) << "qp=" << qp;
    prev_bytes = encoded.bytes();
    prev_psnr = encoded.psnr_y;
  }
}

TEST(Codec, QpOffsetMapDegradesMarkedBlocks) {
  const int w = 128, h = 64;
  const auto frame = synthetic_frame(w, h, 4);
  // Left half offset 0, right half +24.
  QpOffsetMap offsets(w / 16, h / 16, 0);
  for (int row = 0; row < h / 16; ++row)
    for (int col = w / 32; col < w / 16; ++col) offsets.at(col, row) = 24;

  Encoder enc({.width = w, .height = h});
  const auto encoded = enc.encode(frame, 16, &offsets);
  Decoder dec;
  const auto decoded = dec.decode(encoded.data);

  auto half_mse = [&](int x0, int x1) {
    double acc = 0;
    int n = 0;
    for (int y = 0; y < h; ++y)
      for (int x = x0; x < x1; ++x) {
        const double d = static_cast<double>(decoded.frame.y.at(x, y)) -
                         frame.y.at(x, y);
        acc += d * d;
        ++n;
      }
    return acc / n;
  };
  EXPECT_LT(half_mse(0, w / 2) * 2.5, half_mse(w / 2, w));
}

TEST(Codec, SkipBlocksOnStaticContent) {
  Encoder enc({.width = 128, .height = 64});
  const auto frame = synthetic_frame(128, 64, 5);
  enc.encode(frame, 24);
  // Encoding the identical frame again: almost everything skips.
  const auto encoded = enc.encode(frame, 24);
  EXPECT_EQ(encoded.type, FrameType::kInter);
  EXPECT_LT(encoded.bytes(), 300u);
}

TEST(Codec, MotionCompensationShrinksInterFrames) {
  Encoder enc({.width = 128, .height = 64});
  enc.encode(synthetic_frame(128, 64, 6, 0), 24);
  const auto inter = enc.encode(synthetic_frame(128, 64, 6, 4), 24);

  Encoder intra_only({.width = 128, .height = 64});
  const auto intra = intra_only.encode(synthetic_frame(128, 64, 6, 4), 24);
  EXPECT_LT(inter.bytes() * 2, intra.bytes());
}

TEST(Codec, GopInsertsPeriodicIntra) {
  EncoderConfig cfg{.width = 64, .height = 32};
  cfg.gop_length = 4;
  Encoder enc(cfg);
  std::vector<FrameType> types;
  for (int i = 0; i < 9; ++i)
    types.push_back(enc.encode(synthetic_frame(64, 32, 7, i), 28).type);
  EXPECT_EQ(types[0], FrameType::kIntra);
  EXPECT_EQ(types[4], FrameType::kIntra);
  EXPECT_EQ(types[8], FrameType::kIntra);
  EXPECT_EQ(types[1], FrameType::kInter);
  EXPECT_EQ(types[5], FrameType::kInter);
}

TEST(Codec, RequestIntraForcesStandalone) {
  Encoder enc({.width = 64, .height = 32});
  enc.encode(synthetic_frame(64, 32, 8, 0), 28);
  enc.request_intra();
  const auto forced = enc.encode(synthetic_frame(64, 32, 8, 2), 28);
  EXPECT_EQ(forced.type, FrameType::kIntra);
  // A fresh decoder can pick up the stream from this frame.
  Decoder dec;
  EXPECT_NO_THROW(dec.decode(forced.data));
}

TEST(Codec, DecoderRejectsGarbage) {
  Decoder dec;
  const std::vector<std::uint8_t> garbage = {0xFF, 0x00, 0x12, 0x34};
  EXPECT_THROW(dec.decode(garbage), BitstreamError);
}

TEST(Codec, DecoderRejectsInterWithoutReference) {
  Encoder enc({.width = 64, .height = 32});
  enc.encode(synthetic_frame(64, 32, 9, 0), 28);
  const auto inter = enc.encode(synthetic_frame(64, 32, 9, 1), 28);
  Decoder fresh;
  EXPECT_THROW(fresh.decode(inter.data), BitstreamError);
}

TEST(Codec, RejectsBadDimensions) {
  EXPECT_THROW(Encoder({.width = 100, .height = 64}), std::invalid_argument);
  EXPECT_THROW(Encoder({.width = 0, .height = 64}), std::invalid_argument);
  Encoder ok({.width = 64, .height = 32});
  EXPECT_THROW(ok.encode(synthetic_frame(128, 64, 1), 20),
               std::invalid_argument);
}

TEST(Codec, MotionFieldExportedOnInterFrames) {
  Encoder enc({.width = 128, .height = 64});
  enc.encode(synthetic_frame(128, 64, 10, 0), 24);
  const auto inter = enc.encode(synthetic_frame(128, 64, 10, 5), 24);
  ASSERT_FALSE(inter.motion.empty());
  EXPECT_EQ(inter.motion.mb_cols, 8);
  EXPECT_EQ(inter.motion.mb_rows, 4);
  // The dominant motion is the +5px horizontal shift (half-pel 10).
  int votes = 0;
  for (const auto& mv : inter.motion.mvs)
    if (std::abs(mv.dx - 10) <= 1) ++votes;
  EXPECT_GT(votes, static_cast<int>(inter.motion.size()) / 2);
}

TEST(Codec, DecoderMotionMatchesEncoder) {
  Encoder enc({.width = 128, .height = 64});
  Decoder dec;
  dec.decode(enc.encode(synthetic_frame(128, 64, 11, 0), 24).data);
  const auto encoded = enc.encode(synthetic_frame(128, 64, 11, 3), 24);
  const auto decoded = dec.decode(encoded.data);
  ASSERT_EQ(decoded.motion.size(), encoded.motion.size());
  for (std::size_t i = 0; i < encoded.motion.size(); ++i) {
    // Skip macroblocks read back as zero (the encoder's skip MBs).
    if (decoded.motion.mvs[i].is_zero()) continue;
    EXPECT_EQ(decoded.motion.mvs[i], encoded.motion.mvs[i]);
  }
}

}  // namespace
}  // namespace dive::codec
