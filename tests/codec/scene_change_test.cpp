// Scene-change detection (EncoderConfig::scene_change_detection): a
// global mean-luma step between the incoming frame and the reference —
// tunnel entry/exit, headlight loss, exposure slam — forces an I-frame
// mid-GoP, fully resetting SKIP and temporal carry. The forced intra
// must be byte-identical to a cold-start encode of the same frame, and
// the decoder must track across the cut without drift.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "util/rng.h"

namespace dive::codec {
namespace {

/// Textured frame with a controllable mean luma (flat frames would make
/// every macroblock SKIP-eligible and prove nothing).
video::Frame lit_frame(int w, int h, double mean, std::uint64_t seed) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      double v = mean + 18.0 * ((x / 16 + y / 12) % 2) - 9.0 +
                 rng.uniform(-3, 3);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  return f;
}

TEST(SceneChange, GlobalLumaStepForcesIntra) {
  Encoder enc({.width = 128, .height = 64});
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 140, 1), 26).type,
            FrameType::kIntra);  // first frame: GoP start, not a cut
  EXPECT_EQ(enc.scene_change_count(), 0);
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 140, 2), 26).type,
            FrameType::kInter);
  // Tunnel entry: mean luma drops 140 -> 50 (delta 90 >> threshold 24).
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 50, 3), 26).type,
            FrameType::kIntra);
  EXPECT_EQ(enc.scene_change_count(), 1);
  // Inside the tunnel: stable luma, back to inter coding.
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 50, 4), 26).type,
            FrameType::kInter);
  // Tunnel exit: step back up, second cut.
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 140, 5), 26).type,
            FrameType::kIntra);
  EXPECT_EQ(enc.scene_change_count(), 2);
}

TEST(SceneChange, SubThresholdStepStaysInter) {
  Encoder enc({.width = 128, .height = 64});
  (void)enc.encode(lit_frame(128, 64, 120, 1), 26);
  // 15 DN is a lighting drift, not a cut (threshold 24).
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 135, 2), 26).type,
            FrameType::kInter);
  EXPECT_EQ(enc.scene_change_count(), 0);
}

TEST(SceneChange, DetectionOffKeepsInterCoding) {
  EncoderConfig cfg{.width = 128, .height = 64};
  cfg.scene_change_detection = false;
  Encoder enc(cfg);
  (void)enc.encode(lit_frame(128, 64, 140, 1), 26);
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 50, 3), 26).type,
            FrameType::kInter);
  EXPECT_EQ(enc.scene_change_count(), 0);
}

TEST(SceneChange, ThresholdIsConfigurable) {
  EncoderConfig cfg{.width = 128, .height = 64};
  cfg.scene_change_luma_delta = 8.0;
  Encoder enc(cfg);
  (void)enc.encode(lit_frame(128, 64, 120, 1), 26);
  EXPECT_EQ(enc.encode(lit_frame(128, 64, 135, 2), 26).type,
            FrameType::kIntra);
  EXPECT_EQ(enc.scene_change_count(), 1);
}

TEST(SceneChange, ForcedIntraIdenticalToColdStart) {
  // The forced I-frame must carry no history: its bytes equal a fresh
  // encoder's encode of the same frame. This is the "SKIP and temporal
  // carry fully reset" guarantee in its strongest form.
  const video::Frame pre = lit_frame(128, 64, 150, 10);
  const video::Frame cut = lit_frame(128, 64, 40, 11);

  Encoder warm({.width = 128, .height = 64});
  (void)warm.encode(pre, 26);
  (void)warm.encode(lit_frame(128, 64, 150, 12), 26);
  const EncodedFrame forced = warm.encode(cut, 26);
  ASSERT_EQ(forced.type, FrameType::kIntra);

  Encoder cold({.width = 128, .height = 64});
  const EncodedFrame fresh = cold.encode(cut, 26);
  ASSERT_EQ(fresh.type, FrameType::kIntra);

  EXPECT_EQ(forced.data, fresh.data);
  EXPECT_DOUBLE_EQ(forced.psnr_y, fresh.psnr_y);
  EXPECT_TRUE(forced.motion.empty());  // no motion field on an I-frame
  EXPECT_EQ(forced.skipped_mbs, 0);
}

TEST(SceneChange, DecoderTracksAcrossCutAndMatchesColdDecode) {
  Encoder enc({.width = 128, .height = 64});
  Decoder streaming;
  std::vector<video::Frame> seq = {
      lit_frame(128, 64, 150, 20), lit_frame(128, 64, 150, 21),
      lit_frame(128, 64, 45, 22),  // cut
      lit_frame(128, 64, 45, 23),
  };
  std::vector<EncodedFrame> encoded;
  for (const video::Frame& f : seq) {
    encoded.push_back(enc.encode(f, 26));
    const auto dec = streaming.decode(encoded.back().data);
    ASSERT_EQ(dec.frame, enc.reference());
  }
  ASSERT_EQ(encoded[2].type, FrameType::kIntra);

  // A decoder that joins AT the cut (cold start) reconstructs the cut
  // frame and everything after it identically to the streaming decoder.
  Decoder cold;
  Encoder replay({.width = 128, .height = 64});
  const auto cut_cold = cold.decode(encoded[2].data);
  (void)replay.encode(seq[2], 26);
  EXPECT_EQ(cut_cold.frame, replay.reference());
  const auto post_cold = cold.decode(encoded[3].data);
  (void)replay.encode(seq[3], 26);
  EXPECT_EQ(post_cold.frame, replay.reference());
}

TEST(SceneChange, SkipCodingResumesAgainstNewReference) {
  // After the cut, SKIP coding restarts against the post-cut reference:
  // a static post-cut frame skips heavily and still decodes exactly.
  Encoder enc({.width = 128, .height = 64});
  Decoder dec;
  (void)enc.encode(lit_frame(128, 64, 150, 30), 26);
  const EncodedFrame cut = enc.encode(lit_frame(128, 64, 45, 31), 26);
  ASSERT_EQ(cut.type, FrameType::kIntra);
  (void)dec.decode(cut.data);

  const EncodedFrame post = enc.encode(lit_frame(128, 64, 45, 31), 26);
  EXPECT_EQ(post.type, FrameType::kInter);
  EXPECT_GT(post.skipped_mbs, 0);  // identical frame: mostly SKIP
  EXPECT_EQ(dec.decode(post.data).frame, enc.reference());
}

}  // namespace
}  // namespace dive::codec
