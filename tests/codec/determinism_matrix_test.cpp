// Determinism matrix for the encode pipeline: the encoded bytes (and
// PSNR) of a seeded sequence must be identical across every cell of
//   {1, 2, 8 threads} x {scalar, auto SAD kernel} x {overlap on, off}
//     x {hex, hme search} x {skip on, off},
// where "overlap" is the frame-pipelined schedule that prefetches the
// next frame's motion search while the current bitstream is emitted
// (encoder.h), "hme" is the hierarchical pyramid search, and "skip" is
// per-macroblock SKIP coding. Threads/kernel/overlap may only change
// speed, never bytes; hme and skip DO change bytes, so each (hme, skip)
// pair forms its own baseline group and every cell must match its
// group's serial-scalar baseline exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/sad_kernels.h"
#include "util/rng.h"

namespace dive::codec {
namespace {

video::Frame matrix_frame(int w, int h, std::uint64_t seed, int shift = 0) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int xs = x - shift;
      double v = 60 + 0.3 * xs + 0.2 * y;
      if ((xs / 20 + y / 14) % 2 == 0) v += 55;
      v += rng.uniform(-3, 3);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.u.at(x, y) =
          static_cast<std::uint8_t>(120 + ((x - shift / 2) / 10) % 20);
      f.v.at(x, y) = static_cast<std::uint8_t>(130 + (y / 8) % 12);
    }
  return f;
}

std::vector<video::Frame> matrix_sequence(int w, int h, int n) {
  std::vector<video::Frame> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    seq.push_back(matrix_frame(w, h, 900 + static_cast<std::uint64_t>(i),
                               i * 3));
  return seq;
}

struct Cell {
  int threads;
  SadKernelPolicy sad;
  bool overlap;
  bool hint;  ///< feed next_src lookahead hints
  bool hme = false;  ///< hierarchical pyramid search instead of hex
  /// Per-macroblock SKIP coding; defaults to the EncoderConfig default so
  /// partially-braced Cells compare against default-config encoders.
  bool skip = true;
};

std::string cell_name(const Cell& c) {
  return "threads=" + std::to_string(c.threads) +
         (c.sad == SadKernelPolicy::kScalar ? " sad=scalar" : " sad=auto") +
         (c.overlap ? " overlap=on" : " overlap=off") +
         (c.hint ? " hint=on" : " hint=off") +
         (c.hme ? " search=hme" : " search=hex") +
         (c.skip ? " skip=on" : " skip=off");
}

EncoderConfig cell_config(const Cell& c, int w, int h) {
  EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.threads = c.threads;
  cfg.search.method =
      c.hme ? MotionSearchMethod::kHme : MotionSearchMethod::kHex;
  cfg.search.sad = c.sad;
  cfg.pipeline_overlap = c.overlap;
  cfg.skip_blocks = c.skip;
  return cfg;
}

std::vector<EncodedFrame> encode_fixed_qp(const Cell& c,
                                          const std::vector<video::Frame>& seq,
                                          int qp) {
  Encoder enc(cell_config(c, seq[0].width(), seq[0].height()));
  std::vector<EncodedFrame> out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const video::Frame* next =
        (c.hint && i + 1 < seq.size()) ? &seq[i + 1] : nullptr;
    out.push_back(enc.encode(seq[i], qp, nullptr, nullptr, next));
  }
  return out;
}

std::vector<EncodedFrame> encode_targeted(const Cell& c,
                                          const std::vector<video::Frame>& seq,
                                          std::size_t target) {
  Encoder enc(cell_config(c, seq[0].width(), seq[0].height()));
  std::vector<EncodedFrame> out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const video::Frame* next =
        (c.hint && i + 1 < seq.size()) ? &seq[i + 1] : nullptr;
    out.push_back(enc.encode_to_target(seq[i], target, nullptr, nullptr,
                                       next));
  }
  return out;
}

std::vector<Cell> matrix_cells(bool hme, bool skip) {
  std::vector<Cell> cells;
  for (int threads : {1, 2, 8})
    for (SadKernelPolicy sad :
         {SadKernelPolicy::kScalar, SadKernelPolicy::kAuto})
      for (bool overlap : {false, true})
        cells.push_back({threads, sad, overlap, /*hint=*/overlap, hme, skip});
  // One extra cell: overlap enabled in config but no hints delivered
  // (the common caller that never learns the next frame).
  cells.push_back({8, SadKernelPolicy::kAuto, true, false, hme, skip});
  return cells;
}

TEST(DeterminismMatrix, FixedQpBytesAndPsnrIdentical) {
  const auto seq = matrix_sequence(128, 64, 5);
  for (bool hme : {false, true}) {
    for (bool skip : {false, true}) {
      const Cell base{1, SadKernelPolicy::kScalar, false, false, hme, skip};
      const auto baseline = encode_fixed_qp(base, seq, 26);
      for (const Cell& c : matrix_cells(hme, skip)) {
        const auto run = encode_fixed_qp(c, seq, 26);
        ASSERT_EQ(run.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); ++i) {
          ASSERT_EQ(run[i].data, baseline[i].data)
              << cell_name(c) << " frame=" << i;
          ASSERT_EQ(run[i].base_qp, baseline[i].base_qp) << cell_name(c);
          ASSERT_EQ(run[i].skipped_mbs, baseline[i].skipped_mbs)
              << cell_name(c);
          ASSERT_DOUBLE_EQ(run[i].psnr_y, baseline[i].psnr_y)
              << cell_name(c);
        }
      }
    }
  }
}

TEST(DeterminismMatrix, RateControlledBytesAndPsnrIdentical) {
  const auto seq = matrix_sequence(128, 64, 5);
  for (bool hme : {false, true}) {
    for (bool skip : {false, true}) {
      const Cell base{1, SadKernelPolicy::kScalar, false, false, hme, skip};
      const auto baseline = encode_targeted(base, seq, 900);
      for (const Cell& c : matrix_cells(hme, skip)) {
        const auto run = encode_targeted(c, seq, 900);
        ASSERT_EQ(run.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); ++i) {
          ASSERT_EQ(run[i].data, baseline[i].data)
              << cell_name(c) << " frame=" << i;
          ASSERT_EQ(run[i].base_qp, baseline[i].base_qp) << cell_name(c);
          ASSERT_EQ(run[i].skipped_mbs, baseline[i].skipped_mbs)
              << cell_name(c);
          ASSERT_DOUBLE_EQ(run[i].psnr_y, baseline[i].psnr_y)
              << cell_name(c);
        }
      }
    }
  }
}

TEST(DeterminismMatrix, PrefetchHitsWhenHintsAreAccurate) {
  const auto seq = matrix_sequence(128, 64, 5);
  Encoder enc({.width = 128, .height = 64, .threads = 2});
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const video::Frame* next = i + 1 < seq.size() ? &seq[i + 1] : nullptr;
    (void)enc.encode(seq[i], 26, nullptr, nullptr, next);
  }
  const auto& stats = enc.prefetch_stats();
  // Frames 0..n-2 carry hints; every hinted search is consumed by the
  // next frame (frame 0 is intra and launches after its reconstruction).
  EXPECT_EQ(stats.launched, static_cast<long>(seq.size()) - 1);
  EXPECT_EQ(stats.hits, static_cast<long>(seq.size()) - 1);
  EXPECT_EQ(stats.misses, 0);
}

TEST(DeterminismMatrix, MismatchedHintFallsBackIdentically) {
  const auto seq = matrix_sequence(128, 64, 4);
  const Cell base{2, SadKernelPolicy::kAuto, false, false};
  const auto baseline = encode_fixed_qp(base, seq, 26);

  // Deliberately hint the WRONG frame: the prefetch must be detected as
  // stale (byte compare of the hinted luma) and discarded, with a fresh
  // search producing exactly the baseline bytes.
  Encoder enc({.width = 128, .height = 64, .threads = 2});
  std::vector<EncodedFrame> out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const video::Frame* wrong =
        i + 1 < seq.size() ? &seq[(i + 2) % seq.size()] : nullptr;
    out.push_back(enc.encode(seq[i], 26, nullptr, nullptr, wrong));
  }
  ASSERT_EQ(out.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i)
    ASSERT_EQ(out[i].data, baseline[i].data) << "frame " << i;
  EXPECT_GT(enc.prefetch_stats().misses, 0);
  EXPECT_EQ(enc.prefetch_stats().hits, 0);
}

TEST(DeterminismMatrix, AnalyzeMotionConsumesPrefetch) {
  // The agent flow: analyze_motion(next) between encodes must consume the
  // prefetch (hit) and hand back the identical field.
  const auto seq = matrix_sequence(128, 64, 3);
  Encoder plain({.width = 128, .height = 64, .threads = 2});
  Encoder hinted({.width = 128, .height = 64, .threads = 2});
  (void)plain.encode(seq[0], 26);
  (void)hinted.encode(seq[0], 26, nullptr, nullptr, &seq[1]);
  const MotionField a = plain.analyze_motion(seq[1]);
  const MotionField b = hinted.analyze_motion(seq[1]);
  EXPECT_EQ(a.mvs, b.mvs);
  EXPECT_EQ(a.sad, b.sad);
  EXPECT_EQ(hinted.prefetch_stats().hits, 1);
  // And the fields feed back into identical encodes.
  const auto ea = plain.encode(seq[1], 26, nullptr, &a);
  const auto eb = hinted.encode(seq[1], 26, nullptr, &b);
  EXPECT_EQ(ea.data, eb.data);
}

TEST(DeterminismMatrix, TunnelSequenceBytesIdentical) {
  // Tunnel regression cell: a mid-sequence global luma step trips the
  // encoder's scene-change detection, so this sequence exercises the
  // forced-intra path (mid-GoP reset, discarded prefetch) in every cell.
  // Threads x kernel x overlap must still agree byte-for-byte, including
  // ON the cut frame.
  std::vector<video::Frame> seq;
  for (int i = 0; i < 6; ++i) {
    video::Frame f = matrix_frame(128, 64, 900 + static_cast<std::uint64_t>(i),
                                  i * 3);
    if (i >= 2 && i < 4)  // frames 2..3 are "inside the tunnel"
      for (auto& v : f.y.data)
        v = static_cast<std::uint8_t>(v / 4);
    seq.push_back(std::move(f));
  }

  const Cell base{1, SadKernelPolicy::kScalar, false, false};
  const auto baseline = encode_fixed_qp(base, seq, 26);
  // Entry (frame 2) and exit (frame 4) both force I-frames.
  ASSERT_EQ(baseline[2].type, FrameType::kIntra);
  ASSERT_EQ(baseline[3].type, FrameType::kInter);
  ASSERT_EQ(baseline[4].type, FrameType::kIntra);

  for (const Cell& c : matrix_cells(/*hme=*/false, /*skip=*/true)) {
    const auto run = encode_fixed_qp(c, seq, 26);
    ASSERT_EQ(run.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(run[i].type, baseline[i].type)
          << cell_name(c) << " frame=" << i;
      ASSERT_EQ(run[i].data, baseline[i].data)
          << cell_name(c) << " frame=" << i;
    }
  }
}

TEST(DeterminismMatrix, DecoderAgreesUnderOverlap) {
  // The decoder's reconstruction must still track the encoder's reference
  // when frames are encoded with hints (early reference handoff).
  const auto seq = matrix_sequence(128, 64, 4);
  Encoder enc({.width = 128, .height = 64, .threads = 2});
  Decoder dec;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const video::Frame* next = i + 1 < seq.size() ? &seq[i + 1] : nullptr;
    const auto encoded = enc.encode(seq[i], 24, nullptr, nullptr, next);
    const auto decoded = dec.decode(encoded.data);
    ASSERT_EQ(decoded.frame, enc.reference()) << "frame " << i;
  }
}

}  // namespace
}  // namespace dive::codec
