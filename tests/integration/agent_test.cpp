// End-to-end DiVE agent behaviour over rendered clips and a simulated
// uplink.
#include <gtest/gtest.h>

#include "core/agent.h"
#include "data/dataset.h"
#include "edge/evaluator.h"
#include "harness/experiment.h"

namespace dive::core {
namespace {

data::Clip small_clip(int frames = 24) {
  auto spec = data::nuscenes_like(1, frames);
  spec.width = 256;
  spec.height = 144;
  spec.focal_px = 1260.0 * 256.0 / 1600.0;
  return data::generate_clip(spec, 0);
}

std::unique_ptr<DiveAgent> make_agent(
    const data::Clip& clip, double mbps,
    std::shared_ptr<edge::EdgeServer>* server_out = nullptr,
    DiveConfig cfg = {}) {
  auto trace = std::make_shared<net::ConstantBandwidth>(
      net::mbps_to_bytes_per_sec(mbps));
  auto uplink = std::make_shared<net::Uplink>(trace, net::UplinkConfig{});
  auto server = std::make_shared<edge::EdgeServer>(edge::ServerConfig{}, 1);
  if (server_out != nullptr) *server_out = server;
  cfg.fps = clip.fps;
  codec::EncoderConfig enc;
  enc.width = clip.camera.width();
  enc.height = clip.camera.height();
  return std::make_unique<DiveAgent>(cfg, enc, clip.camera, uplink, server);
}

TEST(DiveAgent, ProcessesClipAndDetects) {
  const auto clip = small_clip();
  auto agent = make_agent(clip, 2.0);
  edge::ChromaDetector gt_detector;
  edge::ApEvaluator evaluator;
  for (const auto& rec : clip.frames) {
    const auto outcome = agent->process_frame(
        rec.image, util::from_seconds(rec.timestamp));
    evaluator.add_frame(outcome.detections, gt_detector.detect(rec.image));
    EXPECT_TRUE(outcome.offloaded);
    EXPECT_GT(outcome.bytes_sent, 0u);
    EXPECT_GT(outcome.response_time, 0);
  }
  EXPECT_GT(evaluator.map(), 0.5);
}

TEST(DiveAgent, RespectsBandwidthBudget) {
  const auto clip = small_clip();
  const double mbps = 1.0;
  auto agent = make_agent(clip, mbps);
  std::size_t total_bytes = 0;
  for (const auto& rec : clip.frames) {
    total_bytes += agent->process_frame(rec.image,
                                        util::from_seconds(rec.timestamp))
                       .bytes_sent;
  }
  const double duration = clip.frame_count() / clip.fps;
  const double capacity = net::mbps_to_bytes_per_sec(mbps) * duration;
  EXPECT_LT(static_cast<double>(total_bytes), capacity * 1.15);
}

TEST(DiveAgent, ResponseTimeWithinRealTimeBounds) {
  const auto clip = small_clip();
  auto agent = make_agent(clip, 2.0);
  util::RunningStats response_ms;
  for (const auto& rec : clip.frames) {
    const auto outcome = agent->process_frame(
        rec.image, util::from_seconds(rec.timestamp));
    response_ms.add(util::to_millis(outcome.response_time));
  }
  // At 2 Mbps the paper reports <= ~134-156 ms; our reduced frames are
  // cheaper, so the mean must land comfortably under 200 ms.
  EXPECT_LT(response_ms.mean(), 200.0);
  EXPECT_GT(response_ms.mean(), 10.0);
}

TEST(DiveAgent, OutageTriggersOfflineTracking) {
  const auto clip = small_clip(30);
  const double duration = clip.frame_count() / clip.fps;
  auto base = std::make_shared<net::ConstantBandwidth>(
      net::mbps_to_bytes_per_sec(2.0));
  auto trace = std::make_shared<net::OutageBandwidth>(
      base, net::OutageBandwidth::periodic(util::from_seconds(0.8),
                                           util::from_seconds(10),
                                           util::from_seconds(1.0),
                                           util::from_seconds(duration)));
  net::UplinkConfig ucfg;
  ucfg.head_timeout = util::from_millis(250);
  auto uplink = std::make_shared<net::Uplink>(trace, ucfg);
  auto server = std::make_shared<edge::EdgeServer>(edge::ServerConfig{}, 2);
  DiveConfig cfg;
  cfg.fps = clip.fps;
  codec::EncoderConfig enc;
  enc.width = clip.camera.width();
  enc.height = clip.camera.height();
  DiveAgent agent(cfg, enc, clip.camera, uplink, server);

  int offloaded = 0, tracked = 0;
  for (const auto& rec : clip.frames) {
    const auto outcome =
        agent.process_frame(rec.image, util::from_seconds(rec.timestamp));
    (outcome.offloaded ? offloaded : tracked)++;
  }
  EXPECT_GT(offloaded, 5);
  EXPECT_GT(tracked, 3);  // frames during the outage fell back to MOT
}

TEST(DiveAgent, ForegroundStateExposed) {
  const auto clip = small_clip();
  auto agent = make_agent(clip, 2.0);
  for (int i = 0; i < 6; ++i) {
    agent->process_frame(clip.frames[static_cast<std::size_t>(i)].image,
                         util::from_seconds(clip.frames[static_cast<std::size_t>(i)].timestamp));
  }
  EXPECT_GT(agent->last_preprocess().eta, 0.1);
  EXPECT_TRUE(agent->last_preprocess().agent_moving);
  EXPECT_GE(agent->last_background_delta(), 0);
}

TEST(DiveAgent, FixedDeltaConfigHonored) {
  const auto clip = small_clip();
  DiveConfig cfg;
  cfg.qp.fixed_delta = 25;
  auto agent = make_agent(clip, 2.0, nullptr, cfg);
  for (int i = 0; i < 4; ++i)
    agent->process_frame(clip.frames[static_cast<std::size_t>(i)].image,
                         util::from_seconds(clip.frames[static_cast<std::size_t>(i)].timestamp));
  EXPECT_EQ(agent->last_background_delta(), 25);
}

}  // namespace
}  // namespace dive::core
