// Experiment-harness plumbing: scenario construction, aggregation, and
// determinism.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.h"

namespace dive::harness {
namespace {

data::DatasetSpec tiny_spec() {
  auto spec = data::nuscenes_like(1, 16);
  spec.width = 256;
  spec.height = 144;
  spec.focal_px = 1260.0 * 256.0 / 1600.0;
  return spec;
}

TEST(NetworkScenario, ConstantTrace) {
  NetworkScenario net;
  net.mbps = 3.0;
  const auto trace = net.make_trace(10.0, 1);
  EXPECT_DOUBLE_EQ(trace->bytes_per_sec(0), 375'000.0);
}

TEST(NetworkScenario, OutageTrace) {
  NetworkScenario net;
  net.mbps = 2.0;
  net.outage_interval_s = 5.0;
  net.outage_duration_s = 1.0;
  net.first_outage_s = 2.0;
  const auto trace = net.make_trace(12.0, 1);
  EXPECT_GT(trace->bytes_per_sec(util::from_seconds(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(trace->bytes_per_sec(util::from_seconds(2.5)), 0.0);
  EXPECT_GT(trace->bytes_per_sec(util::from_seconds(3.5)), 0.0);
  EXPECT_DOUBLE_EQ(trace->bytes_per_sec(util::from_seconds(7.5)), 0.0);
}

TEST(NetworkScenario, FluctuatingTrace) {
  NetworkScenario net;
  net.mbps = 2.0;
  net.fluctuation_depth = 0.3;
  const auto trace = net.make_trace(10.0, 3);
  double lo = 1e18, hi = 0.0;
  for (util::SimTime t = 0; t < util::from_seconds(10); t += util::from_millis(100)) {
    lo = std::min(lo, trace->bytes_per_sec(t));
    hi = std::max(hi, trace->bytes_per_sec(t));
  }
  EXPECT_LT(lo, hi);
  EXPECT_GE(lo, 250'000.0 * 0.7 - 1.0);
  EXPECT_LE(hi, 250'000.0 * 1.3 + 1.0);
}

TEST(RunExperiment, ProducesSaneAggregates) {
  const auto clips = data::generate_dataset(tiny_spec());
  NetworkScenario net;
  net.mbps = 2.0;
  const auto result = run_experiment(SchemeKind::kDive, clips, net);
  EXPECT_EQ(result.scheme, "DiVE");
  EXPECT_EQ(result.frames, 16);
  EXPECT_GE(result.map, 0.0);
  EXPECT_LE(result.map, 1.0);
  EXPECT_GT(result.mean_response_ms, 0.0);
  EXPECT_GE(result.p95_response_ms, result.mean_response_ms * 0.5);
  long state_frames = 0;
  for (int s = 0; s < 3; ++s)
    state_frames += result.frames_by_state[static_cast<std::size_t>(s)];
  EXPECT_EQ(state_frames, result.frames);
}

TEST(RunExperiment, DeterministicAcrossRuns) {
  const auto clips = data::generate_dataset(tiny_spec());
  NetworkScenario net;
  net.mbps = 2.0;
  const auto a = run_experiment(SchemeKind::kDive, clips, net);
  const auto b = run_experiment(SchemeKind::kDive, clips, net);
  EXPECT_DOUBLE_EQ(a.map, b.map);
  EXPECT_DOUBLE_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_DOUBLE_EQ(a.mean_kbytes_per_frame, b.mean_kbytes_per_frame);
}

TEST(RunExperiment, AllSchemesRun) {
  const auto clips = data::generate_dataset(tiny_spec());
  NetworkScenario net;
  net.mbps = 2.0;
  for (auto kind : {SchemeKind::kDive, SchemeKind::kO3, SchemeKind::kEaar,
                    SchemeKind::kDds, SchemeKind::kUniform}) {
    const auto result = run_experiment(kind, clips, net);
    EXPECT_EQ(result.frames, 16) << to_string(kind);
  }
}

TEST(MakeScheme, AppliesOptions) {
  const auto clips = data::generate_dataset(tiny_spec());
  NetworkScenario net;
  SchemeOptions opts;
  opts.search = codec::MotionSearchMethod::kDia;
  opts.fixed_delta = 10;
  auto scheme = make_scheme(SchemeKind::kDive, opts, net, clips[0], 2.0);
  ASSERT_NE(scheme, nullptr);
  EXPECT_STREQ(scheme->name(), "DiVE");
}

TEST(EnvInt, ParsesAndFallsBack) {
  ::setenv("DIVE_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(env_int("DIVE_TEST_ENV_INT", 7), 42);
  ::unsetenv("DIVE_TEST_ENV_INT");
  EXPECT_EQ(env_int("DIVE_TEST_ENV_INT", 7), 7);
  ::setenv("DIVE_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(env_int("DIVE_TEST_ENV_INT", 7), 7);
  ::unsetenv("DIVE_TEST_ENV_INT");
}

TEST(SchemeNames, Stable) {
  EXPECT_STREQ(to_string(SchemeKind::kDive), "DiVE");
  EXPECT_STREQ(to_string(SchemeKind::kO3), "O3");
  EXPECT_STREQ(to_string(SchemeKind::kEaar), "EAAR");
  EXPECT_STREQ(to_string(SchemeKind::kDds), "DDS");
  EXPECT_STREQ(to_string(SchemeKind::kUniform), "Uniform");
}

}  // namespace
}  // namespace dive::harness
