// Baseline schemes (O3, EAAR, DDS, Uniform) driven over rendered clips.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "edge/evaluator.h"
#include "harness/experiment.h"

namespace dive::baselines {
namespace {

data::Clip small_clip(int frames = 24) {
  auto spec = data::nuscenes_like(1, frames);
  spec.width = 256;
  spec.height = 144;
  spec.focal_px = 1260.0 * 256.0 / 1600.0;
  return data::generate_clip(spec, 0);
}

std::unique_ptr<core::AnalyticsScheme> scheme_for(harness::SchemeKind kind,
                                                  const data::Clip& clip,
                                                  double mbps = 2.0) {
  harness::NetworkScenario net;
  net.mbps = mbps;
  return harness::make_scheme(kind, {}, net, clip,
                              clip.frame_count() / clip.fps);
}

double run_map(core::AnalyticsScheme& scheme, const data::Clip& clip) {
  edge::ChromaDetector gt;
  edge::ApEvaluator ev;
  for (const auto& rec : clip.frames) {
    const auto outcome =
        scheme.process_frame(rec.image, util::from_seconds(rec.timestamp));
    ev.add_frame(outcome.detections, gt.detect(rec.image));
  }
  return ev.map();
}

TEST(Baselines, O3ProducesUsableDetections) {
  const auto clip = small_clip(30);
  auto scheme = scheme_for(harness::SchemeKind::kO3, clip);
  EXPECT_STREQ(scheme->name(), "O3");
  EXPECT_GT(run_map(*scheme, clip), 0.05);
}

TEST(Baselines, EaarProducesUsableDetections) {
  const auto clip = small_clip(30);
  auto scheme = scheme_for(harness::SchemeKind::kEaar, clip);
  EXPECT_STREQ(scheme->name(), "EAAR");
  EXPECT_GT(run_map(*scheme, clip), 0.05);
}

TEST(Baselines, DdsTwoPassCloseToUpperBound) {
  const auto clip = small_clip(30);
  auto dds = scheme_for(harness::SchemeKind::kDds, clip);
  auto uniform = scheme_for(harness::SchemeKind::kUniform, clip);
  const double dds_map = run_map(*dds, clip);
  const double uni_map = run_map(*uniform, clip);
  EXPECT_GT(dds_map, 0.3);
  EXPECT_LE(dds_map, uni_map + 0.1);
}

TEST(Baselines, KeyframeSchemesCheaperThanFullStreaming) {
  const auto clip = small_clip(30);
  auto eaar = scheme_for(harness::SchemeKind::kEaar, clip);
  auto uniform = scheme_for(harness::SchemeKind::kUniform, clip);
  std::size_t eaar_bytes = 0, uniform_bytes = 0;
  for (const auto& rec : clip.frames) {
    eaar_bytes += eaar->process_frame(rec.image,
                                      util::from_seconds(rec.timestamp))
                      .bytes_sent;
    uniform_bytes += uniform->process_frame(rec.image,
                                            util::from_seconds(rec.timestamp))
                         .bytes_sent;
  }
  EXPECT_LT(eaar_bytes, uniform_bytes / 2);
}

TEST(Baselines, KeyframeResponseBimodal) {
  // Tracked frames answer in a few ms, keyframes take a round trip.
  const auto clip = small_clip(24);
  auto scheme = scheme_for(harness::SchemeKind::kO3, clip);
  int fast = 0, slow = 0;
  for (const auto& rec : clip.frames) {
    const auto outcome =
        scheme->process_frame(rec.image, util::from_seconds(rec.timestamp));
    if (util::to_millis(outcome.response_time) < 20.0) ++fast;
    else ++slow;
  }
  EXPECT_GT(fast, 10);
  EXPECT_GT(slow, 2);
}

TEST(Baselines, DdsSkipsWhenBacklogged) {
  // At a crawling uplink DDS must skip frames rather than queue forever.
  const auto clip = small_clip(24);
  auto scheme = scheme_for(harness::SchemeKind::kDds, clip, 0.4);
  int skipped = 0;
  for (const auto& rec : clip.frames) {
    const auto outcome =
        scheme->process_frame(rec.image, util::from_seconds(rec.timestamp));
    if (outcome.bytes_sent == 0) ++skipped;
  }
  EXPECT_GT(skipped, 3);
}

TEST(Baselines, DiveOutperformsKeyframeSchemes) {
  // The paper's headline ordering at moderate bandwidth.
  const auto clip = small_clip(36);
  auto dive = scheme_for(harness::SchemeKind::kDive, clip);
  auto o3 = scheme_for(harness::SchemeKind::kO3, clip);
  const double dive_map = run_map(*dive, clip);
  const double o3_map = run_map(*o3, clip);
  EXPECT_GT(dive_map, o3_map);
}

}  // namespace
}  // namespace dive::baselines
