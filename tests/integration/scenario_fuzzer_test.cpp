// Scenario fuzzer: sweeps hostile conditions x motion states x bandwidth
// traces through the full agent -> uplink -> serve path and asserts the
// per-condition accuracy / response-time envelopes hold (DESIGN.md §16).
// The ctest sweep is a reduced-frame version of bench_scenarios; a failing
// case is reproducible from its repro_line().
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "harness/scenario_fuzzer.h"

namespace dive::harness {
namespace {

FuzzerOptions test_options() {
  FuzzerOptions opt;
  // Smaller clips than the bench: the sweep breadth is the point here,
  // not the per-case sample size.
  opt.frames_per_clip = 32;
  return opt;
}

// The headline acceptance sweep: every condition x every motion state
// under the ample uplink stays inside its accuracy/latency envelope.
TEST(ScenarioFuzzer, ConditionMotionMatrixInsideEnvelopes) {
  FuzzerOptions opt = test_options();
  opt.bandwidths = {BandwidthProfile::kAmple};
  const FuzzerReport report = run_scenario_fuzzer(opt);

  EXPECT_EQ(report.outcomes.size(),
            static_cast<std::size_t>(kConditionCount * kMotionProfileCount));
  for (const ScenarioOutcome& out : report.outcomes) {
    EXPECT_TRUE(out.pass()) << repro_line(out.scenario) << " violated: "
                            << (out.violations.empty()
                                    ? std::string("?")
                                    : out.violations.front());
  }
  EXPECT_EQ(report.failures, 0);
  EXPECT_TRUE(report.failing_repro_lines.empty());

  // Coverage: all conditions and all motion states actually appeared.
  std::set<Condition> conds;
  std::set<MotionProfile> motions;
  for (const ScenarioOutcome& out : report.outcomes) {
    conds.insert(out.scenario.condition);
    motions.insert(out.scenario.motion);
  }
  EXPECT_EQ(conds.size(), static_cast<std::size_t>(kConditionCount));
  EXPECT_GE(conds.size(), 5u);  // ISSUE floor: >= 5 conditions
  EXPECT_EQ(motions.size(), static_cast<std::size_t>(kMotionProfileCount));
}

// Hostile networks on the clear world: constrained and outage profiles
// stay inside their (relaxed) envelopes.
TEST(ScenarioFuzzer, BandwidthSweepInsideEnvelopes) {
  FuzzerOptions opt = test_options();
  opt.conditions = {Condition::kClear};
  opt.motions = {MotionProfile::kStraight};
  const FuzzerReport report = run_scenario_fuzzer(opt);

  EXPECT_EQ(report.outcomes.size(),
            static_cast<std::size_t>(kBandwidthProfileCount));
  for (const ScenarioOutcome& out : report.outcomes)
    EXPECT_TRUE(out.pass()) << repro_line(out.scenario);
  EXPECT_EQ(report.failures, 0);
}

// Conditions must actually bite: night degrades accuracy relative to the
// clear daylight run of the same motion profile (otherwise the envelopes
// are testing nothing).
TEST(ScenarioFuzzer, NightDegradesAccuracyVsClear) {
  FuzzerOptions opt = test_options();
  opt.motions = {MotionProfile::kStraight};
  opt.bandwidths = {BandwidthProfile::kAmple};

  opt.conditions = {Condition::kClear};
  const FuzzerReport clear = run_scenario_fuzzer(opt);
  opt.conditions = {Condition::kNight};
  const FuzzerReport night = run_scenario_fuzzer(opt);

  ASSERT_EQ(clear.outcomes.size(), 1u);
  ASSERT_EQ(night.outcomes.size(), 1u);
  EXPECT_LT(night.outcomes[0].result.map, clear.outcomes[0].result.map);
  // ... but the envelope still guarantees it tracks.
  EXPECT_TRUE(night.outcomes[0].pass());
}

// Same options -> same report (the repro-line contract depends on it).
TEST(ScenarioFuzzer, Deterministic) {
  FuzzerOptions opt = test_options();
  opt.conditions = {Condition::kTunnel, Condition::kVibration};
  opt.motions = {MotionProfile::kTurning};
  opt.bandwidths = {BandwidthProfile::kAmple};

  const FuzzerReport a = run_scenario_fuzzer(opt);
  const FuzzerReport b = run_scenario_fuzzer(opt);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].result.map, b.outcomes[i].result.map);
    EXPECT_EQ(a.outcomes[i].result.mean_response_ms,
              b.outcomes[i].result.mean_response_ms);
    EXPECT_EQ(a.outcomes[i].scenario.seed, b.outcomes[i].scenario.seed);
  }
}

// Seed derivation is a pure function of the tuple: sweeping a subset of
// the cross product yields the same per-case seed as the full sweep.
TEST(ScenarioFuzzer, SeedsStableAcrossSubsetSweeps) {
  FuzzerOptions full = test_options();
  full.frames_per_clip = 8;  // seeds only; keep the run cheap
  full.bandwidths = {BandwidthProfile::kAmple};
  const FuzzerReport full_report = run_scenario_fuzzer(full);

  FuzzerOptions sub = full;
  sub.conditions = {Condition::kFog};
  sub.motions = {MotionProfile::kTurning};
  const FuzzerReport sub_report = run_scenario_fuzzer(sub);
  ASSERT_EQ(sub_report.outcomes.size(), 1u);

  bool found = false;
  for (const ScenarioOutcome& out : full_report.outcomes) {
    if (out.scenario.condition == Condition::kFog &&
        out.scenario.motion == MotionProfile::kTurning) {
      EXPECT_EQ(out.scenario.seed, sub_report.outcomes[0].scenario.seed);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScenarioFuzzer, ReproLineFormat) {
  ScenarioCase c;
  c.condition = Condition::kFog;
  c.motion = MotionProfile::kTurning;
  c.bandwidth = BandwidthProfile::kOutage;
  c.seed = 12345;
  EXPECT_EQ(repro_line(c),
            "scenario_fuzzer --condition fog --motion turning "
            "--bandwidth outage --seed 12345");
}

TEST(ScenarioFuzzer, EnvelopeRelaxesUnderHostileNetworks) {
  const ScenarioEnvelope ample =
      envelope_for(Condition::kNight, BandwidthProfile::kAmple);
  const ScenarioEnvelope outage =
      envelope_for(Condition::kNight, BandwidthProfile::kOutage);
  EXPECT_LT(outage.min_map, ample.min_map);
  EXPECT_GT(outage.max_mean_response_ms, ample.max_mean_response_ms);
  EXPECT_GT(outage.max_p95_response_ms, ample.max_p95_response_ms);
}

}  // namespace
}  // namespace dive::harness
