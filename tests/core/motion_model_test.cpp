#include "core/motion_model.h"

#include <gtest/gtest.h>

namespace dive::core {
namespace {

constexpr double kFocal = 400.0;

TEST(MotionModel, PureYawUniformAtCenterRow) {
  // Eq. (5): at the principal point a yaw of dphi_y shifts the image by
  // -dphi_y * f horizontally.
  const Rotation rot{0.0, 0.01};
  const auto mv = rotational_mv({0, 0}, rot, kFocal);
  EXPECT_DOUBLE_EQ(mv.x, -4.0);
  EXPECT_DOUBLE_EQ(mv.y, 0.0);
}

TEST(MotionModel, PurePitchShiftsVertically) {
  const Rotation rot{0.005, 0.0};
  const auto mv = rotational_mv({0, 0}, rot, kFocal);
  EXPECT_DOUBLE_EQ(mv.x, 0.0);
  EXPECT_DOUBLE_EQ(mv.y, 2.0);
}

TEST(MotionModel, YawQuadraticTermGrowsOffAxis) {
  const Rotation rot{0.0, 0.01};
  const auto center = rotational_mv({0, 0}, rot, kFocal);
  const auto edge = rotational_mv({200, 0}, rot, kFocal);
  // |vx| grows with x^2/f away from the axis.
  EXPECT_GT(std::abs(edge.x), std::abs(center.x));
  EXPECT_NEAR(edge.x, -0.01 * kFocal - 0.01 * 200.0 * 200.0 / kFocal, 1e-9);
}

TEST(MotionModel, TranslationalFlowRadial) {
  // Eq. (2): flow points away from the FOE, scaled by depth.
  const auto mv = translational_mv({100, 50}, 1.0, 20.0);
  EXPECT_DOUBLE_EQ(mv.x, 5.0);
  EXPECT_DOUBLE_EQ(mv.y, 2.5);
  // Parallel to the position vector.
  EXPECT_NEAR(mv.x * 50 - mv.y * 100, 0.0, 1e-12);
}

TEST(MotionModel, TranslationalFlowInverseDepth) {
  const auto near_mv = translational_mv({100, 50}, 1.0, 10.0);
  const auto far_mv = translational_mv({100, 50}, 1.0, 40.0);
  EXPECT_NEAR(near_mv.norm() / far_mv.norm(), 4.0, 1e-12);
}

TEST(MotionModel, NormalizedMagnitudeConstantPerHeight) {
  // Observation 2: points at the same world height Y share the same
  // normalized magnitude regardless of image position/depth.
  const double f = kFocal;
  const double dz = 0.8;
  const double height = 1.5;  // ground, camera frame y-down
  for (double depth : {8.0, 15.0, 40.0}) {
    for (double x_img : {-150.0, 0.0, 120.0}) {
      const double y_img = f * height / depth;
      const geom::Vec2 p{x_img, y_img};
      const auto mv = translational_mv(p, dz, depth);
      const double nm = normalized_magnitude(p, mv, {0, 0});
      EXPECT_NEAR(nm, dz / (f * height), 1e-12)
          << "depth=" << depth << " x=" << x_img;
    }
  }
}

TEST(MotionModel, NormalizedMagnitudeOrdersByHeight) {
  // Lower world points (larger Y, the ground) have *smaller* normalized
  // magnitude than elevated points — the ground-estimation premise.
  const double f = kFocal;
  const double dz = 0.8;
  const double depth = 20.0;
  const double y_ground = f * 1.5 / depth;
  const double y_mid = f * 0.7 / depth;
  const auto nm_ground = normalized_magnitude(
      {50, y_ground}, translational_mv({50, y_ground}, dz, depth), {0, 0});
  const auto nm_mid = normalized_magnitude(
      {50, y_mid}, translational_mv({50, y_mid}, dz, depth), {0, 0});
  EXPECT_LT(nm_ground, nm_mid);
}

TEST(MotionModel, NormalizedMagnitudeInvalidAboveHorizon) {
  EXPECT_DOUBLE_EQ(normalized_magnitude({10, -5}, {1, 1}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(normalized_magnitude({0, 0}, {1, 1}, {0, 0}), 0.0);
}

TEST(MotionModel, FoeShiftChangesNormalization) {
  const geom::Vec2 p{60, 40};
  const geom::Vec2 mv{3, 2};
  const double centered = normalized_magnitude(p, mv, {0, 0});
  const double shifted = normalized_magnitude(p, mv, {30, 0});
  EXPECT_NE(centered, shifted);
}

}  // namespace
}  // namespace dive::core
