#include "core/foe_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/motion_model.h"
#include "util/rng.h"

namespace dive::core {
namespace {

const geom::PinholeCamera kCamera(400.0, 512, 288);

/// Radial expansion field around a given FOE, over ground+wall depths.
codec::MotionField expansion_field(geom::Vec2 foe, double dz,
                                   util::Rng* noise = nullptr,
                                   double outlier_fraction = 0.0) {
  codec::MotionField field(32, 18);
  for (int row = 0; row < 18; ++row)
    for (int col = 0; col < 32; ++col) {
      const geom::Vec2 p = kCamera.to_centered(field.mb_center(col, row));
      const geom::Vec2 rel = p - foe;
      const double depth = rel.y > 4.0 ? 400.0 * 1.5 / rel.y : 25.0;
      geom::Vec2 mv = translational_mv(rel, dz, depth);
      if (noise != nullptr && noise->chance(outlier_fraction))
        mv = {noise->uniform(-10, 10), noise->uniform(-10, 10)};
      field.at(col, row) = {static_cast<int>(std::lround(mv.x * 2)),
                            static_cast<int>(std::lround(mv.y * 2))};
    }
  return field;
}

TEST(FoeEstimator, FindsCenteredFoe) {
  FoeEstimator est({}, 1);
  const auto result = est.estimate(expansion_field({0, 0}, 1.2), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->foe.x, 0.0, 5.0);
  EXPECT_NEAR(result->foe.y, 0.0, 5.0);
}

TEST(FoeEstimator, FindsOffsetFoe) {
  // A camera mounted at a slight angle: the FOE sits off-center.
  FoeEstimator est({}, 2);
  const geom::Vec2 truth{40.0, -12.0};
  const auto result = est.estimate(expansion_field(truth, 1.2), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->foe.x, truth.x, 6.0);
  EXPECT_NEAR(result->foe.y, truth.y, 6.0);
}

TEST(FoeEstimator, RobustToOutliers) {
  util::Rng noise(3);
  FoeEstimator est({}, 4);
  const auto result = est.estimate(
      expansion_field({0, 0}, 1.2, &noise, 0.2), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->foe.x, 0.0, 8.0);
  EXPECT_NEAR(result->foe.y, 0.0, 8.0);
}

TEST(FoeEstimator, RejectsEmptyAndStaticFields) {
  FoeEstimator est({}, 5);
  EXPECT_FALSE(est.estimate({}, kCamera).has_value());
  EXPECT_FALSE(est.estimate(codec::MotionField(32, 18), kCamera).has_value());
}

TEST(FoeEstimator, RejectsParallelField) {
  // Pure pan: all MVs identical -> lines parallel -> no intersection.
  codec::MotionField field(32, 18);
  for (auto& mv : field.mvs) mv = {10, 0};
  FoeEstimator est({}, 6);
  EXPECT_FALSE(est.estimate(field, kCamera).has_value());
}

TEST(FoeEstimator, CalibrationConvergesAcrossFrames) {
  FoeEstimator est({}, 7);
  util::Rng noise(8);
  const geom::Vec2 truth{10.0, 4.0};
  for (int i = 0; i < 20; ++i) {
    est.update_calibration(expansion_field(truth, 1.0, &noise, 0.08), kCamera);
  }
  ASSERT_TRUE(est.calibrated().has_value());
  EXPECT_GT(est.calibration_frames(), 10);
  EXPECT_NEAR(est.calibrated()->x, truth.x, 5.0);
  EXPECT_NEAR(est.calibrated()->y, truth.y, 5.0);
}

TEST(FoeEstimator, ResetClearsCalibration) {
  FoeEstimator est({}, 9);
  est.update_calibration(expansion_field({0, 0}, 1.0), kCamera);
  ASSERT_TRUE(est.calibrated().has_value());
  est.reset();
  EXPECT_FALSE(est.calibrated().has_value());
  EXPECT_EQ(est.calibration_frames(), 0);
}

TEST(FoeEstimator, DeterministicPerSeed) {
  const auto field = expansion_field({5, 5}, 1.0);
  FoeEstimator a({}, 11), b({}, 11);
  const auto ra = a.estimate(field, kCamera);
  const auto rb = b.estimate(field, kCamera);
  ASSERT_TRUE(ra && rb);
  EXPECT_DOUBLE_EQ(ra->foe.x, rb->foe.x);
  EXPECT_DOUBLE_EQ(ra->foe.y, rb->foe.y);
}

}  // namespace
}  // namespace dive::core
