#include "core/ground_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/preprocess.h"
#include "geom/polygon.h"

namespace dive::core {
namespace {

const geom::PinholeCamera kCamera(400.0, 512, 288);

/// Synthetic preprocessed frame: translational flow over a ground plane,
/// plus an optional standing object at given MB columns/rows with
/// distinct motion.
PreprocessResult scene_result(double dz, bool with_object,
                              double object_extra_mv = 4.0) {
  PreprocessResult pre;
  pre.mb_cols = 32;
  pre.mb_rows = 18;
  pre.agent_moving = true;
  pre.eta = 0.6;
  codec::MotionField geometry(pre.mb_cols, pre.mb_rows);
  for (int row = 0; row < pre.mb_rows; ++row) {
    for (int col = 0; col < pre.mb_cols; ++col) {
      CorrectedMv m;
      m.col = col;
      m.row = row;
      m.position = kCamera.to_centered(geometry.mb_center(col, row));
      geom::Vec2 mv{};
      if (m.position.y > 4.0) {
        const double depth = 400.0 * 1.5 / m.position.y;  // ground geometry
        mv = translational_mv(m.position, dz, depth);
      }
      // An "object" column block: taller than ground, different motion.
      if (with_object && col >= 14 && col <= 17 && row >= 9 && row <= 12) {
        const double depth = 18.0;
        mv = translational_mv(m.position, dz, depth) +
             geom::Vec2{object_extra_mv, 0.0};
      }
      m.raw = mv;
      m.corrected = mv;
      m.nonzero = mv.norm() > 0.01;
      pre.mvs.push_back(m);
    }
  }
  return pre;
}

TEST(GroundEstimator, FindsGroundOnPlainRoad) {
  const GroundEstimator est;
  const auto pre = scene_result(0.9, false);
  const auto g = est.estimate(pre, kCamera);
  ASSERT_TRUE(g.valid);
  EXPECT_GT(g.ground_count, 50);
  EXPECT_GE(g.hull.size(), 3u);
  // With nothing standing on the road, the only seeds are blocks whose
  // MVs were too small/noisy to classify — they live near the horizon,
  // not in the near field.
  for (int idx : g.seed_indices) {
    EXPECT_LT(pre.mvs[static_cast<std::size_t>(idx)].position.y, 40.0)
        << "unexpected near-field seed at MB " << idx;
  }
}

TEST(GroundEstimator, ObjectBecomesSeeds) {
  const GroundEstimator est;
  const auto g = est.estimate(scene_result(0.9, true), kCamera);
  ASSERT_TRUE(g.valid);
  EXPECT_GE(g.seed_indices.size(), 4u);
  // Seeds cluster at the object's columns.
  int on_object = 0;
  for (int idx : g.seed_indices) {
    const int col = idx % 32;
    const int row = idx / 32;
    if (col >= 13 && col <= 18 && row >= 8 && row <= 13) ++on_object;
  }
  EXPECT_GT(on_object, static_cast<int>(g.seed_indices.size()) / 2);
}

TEST(GroundEstimator, ObjectBlocksNotGround) {
  const GroundEstimator est;
  const auto g = est.estimate(scene_result(0.9, true), kCamera);
  ASSERT_TRUE(g.valid);
  // The object's elevated blocks must not be classified as ground.
  for (int row = 9; row <= 11; ++row)
    for (int col = 14; col <= 17; ++col)
      EXPECT_FALSE(g.ground_mask[static_cast<std::size_t>(row) * 32 + col])
          << "(" << col << "," << row << ")";
}

TEST(GroundEstimator, StationaryFrameInvalid) {
  PreprocessResult pre;
  pre.mb_cols = 32;
  pre.mb_rows = 18;
  codec::MotionField geometry(32, 18);
  for (int row = 0; row < 18; ++row)
    for (int col = 0; col < 32; ++col) {
      CorrectedMv m;
      m.col = col;
      m.row = row;
      m.position = kCamera.to_centered(geometry.mb_center(col, row));
      pre.mvs.push_back(m);  // all-zero MVs
    }
  const GroundEstimator est;
  EXPECT_FALSE(est.estimate(pre, kCamera).valid);
}

TEST(GroundEstimator, RadialFilterDropsNoise) {
  // Tangential (non-FOE-pointing) vectors must not enter the ground set.
  auto pre = scene_result(0.9, false);
  int poisoned = 0;
  for (auto& m : pre.mvs) {
    if (m.position.y > 30.0 && m.position.x > 50.0 && poisoned < 20) {
      m.corrected = {-m.corrected.y, m.corrected.x};  // rotate 90 deg
      ++poisoned;
    }
  }
  const GroundEstimator est;
  const auto g = est.estimate(pre, kCamera);
  ASSERT_TRUE(g.valid);
  for (std::size_t i = 0; i < pre.mvs.size(); ++i) {
    const auto& m = pre.mvs[i];
    if (m.position.y > 30.0 && m.position.x > 50.0 && g.ground_mask[i]) {
      // Any such block marked ground must still be radially consistent
      // (i.e., it was not one of the poisoned ones).
      const double cosine =
          m.corrected.normalized().dot(m.position.normalized());
      EXPECT_GT(cosine, 0.9);
    }
  }
}

TEST(GroundEstimator, HullContainsGroundCenters) {
  const GroundEstimator est;
  const auto pre = scene_result(0.9, false);
  const auto g = est.estimate(pre, kCamera);
  ASSERT_TRUE(g.valid);
  for (std::size_t i = 0; i < pre.mvs.size(); ++i) {
    if (!g.ground_mask[i]) continue;
    const geom::Vec2 pixel = kCamera.to_pixel(pre.mvs[i].position);
    EXPECT_TRUE(geom::point_in_polygon(pixel, g.hull));
  }
}

TEST(GroundEstimator, HoleFillAbsorbsIsolatedNoise) {
  auto pre = scene_result(0.9, false);
  // Make one mid-road block non-radial (noise): it would become a seed
  // without hole filling.
  const int idx = 14 * 32 + 16;
  pre.mvs[static_cast<std::size_t>(idx)].corrected = {
      -pre.mvs[static_cast<std::size_t>(idx)].corrected.y,
      pre.mvs[static_cast<std::size_t>(idx)].corrected.x};
  const GroundEstimator est;
  const auto g = est.estimate(pre, kCamera);
  ASSERT_TRUE(g.valid);
  EXPECT_TRUE(g.ground_mask[static_cast<std::size_t>(idx)]);
}

}  // namespace
}  // namespace dive::core
