#include "core/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dive::core {
namespace {

const geom::PinholeCamera kCamera(400.0, 512, 288);

codec::MotionField field_of(Rotation rot, double dz) {
  codec::MotionField field(32, 18);
  for (int row = 0; row < field.mb_rows; ++row)
    for (int col = 0; col < field.mb_cols; ++col) {
      const geom::Vec2 p = kCamera.to_centered(field.mb_center(col, row));
      const double depth = p.y > 4.0 ? 400.0 * 1.5 / p.y : 30.0;
      const geom::Vec2 mv = translational_mv(p, dz, depth) +
                            rotational_mv(p, rot, kCamera.focal());
      field.at(col, row) = {static_cast<int>(std::lround(mv.x * 2)),
                            static_cast<int>(std::lround(mv.y * 2))};
    }
  return field;
}

TEST(Preprocess, EmptyFieldIsInert) {
  Preprocessor pre({}, 1);
  const auto result = pre.run({}, kCamera);
  EXPECT_TRUE(result.mvs.empty());
  EXPECT_FALSE(result.agent_moving);
}

TEST(Preprocess, MovingJudgedByEta) {
  Preprocessor pre({}, 2);
  const auto moving = pre.run(field_of({}, 1.0), kCamera);
  EXPECT_GT(moving.eta, 0.15);
  EXPECT_TRUE(moving.agent_moving);

  const auto stopped = pre.run(codec::MotionField(32, 18), kCamera);
  EXPECT_DOUBLE_EQ(stopped.eta, 0.0);
  EXPECT_FALSE(stopped.agent_moving);
}

TEST(Preprocess, EtaThresholdConfigurable) {
  PreprocessConfig cfg;
  cfg.eta_threshold = 1.0;  // unreachable: eta can never exceed 1
  Preprocessor pre(cfg, 3);
  const auto result = pre.run(field_of({}, 1.0), kCamera);
  EXPECT_FALSE(result.agent_moving);
}

TEST(Preprocess, RotationRemovedFromVectors) {
  Preprocessor pre({}, 4);
  const Rotation rot{0.002, -0.008};
  const auto result = pre.run(field_of(rot, 0.9), kCamera);
  ASSERT_TRUE(result.rotation_valid);
  EXPECT_NEAR(result.rotation.dphi_y, rot.dphi_y, 1e-3);

  // After correction, every static vector should again point away from
  // the FOE (radial): check alignment for vectors with usable magnitude.
  int checked = 0;
  for (const auto& m : result.mvs) {
    if (m.corrected.norm() < 2.0 || m.position.y < 8.0) continue;
    const geom::Vec2 radial = (m.position - geom::Vec2{0, 0}).normalized();
    const double cosine = m.corrected.normalized().dot(radial);
    EXPECT_GT(cosine, 0.85) << "at (" << m.position.x << "," << m.position.y
                            << ")";
    ++checked;
  }
  EXPECT_GT(checked, 30);
}

TEST(Preprocess, NoRotationEstimateWhenStopped) {
  Preprocessor pre({}, 5);
  const auto result = pre.run(codec::MotionField(32, 18), kCamera);
  EXPECT_FALSE(result.rotation_valid);
  // Corrected equals raw in that case.
  for (const auto& m : result.mvs) {
    EXPECT_EQ(m.corrected.x, m.raw.x);
    EXPECT_EQ(m.corrected.y, m.raw.y);
  }
}

TEST(Preprocess, GeometryMatchesField) {
  Preprocessor pre({}, 6);
  const auto result = pre.run(field_of({}, 1.0), kCamera);
  EXPECT_EQ(result.mb_cols, 32);
  EXPECT_EQ(result.mb_rows, 18);
  ASSERT_EQ(result.mvs.size(), 32u * 18u);
  // Entries are row-major with centered positions.
  const auto& first = result.mvs.front();
  EXPECT_EQ(first.col, 0);
  EXPECT_EQ(first.row, 0);
  EXPECT_LT(first.position.x, 0.0);
  EXPECT_LT(first.position.y, 0.0);
}

TEST(Preprocess, NonzeroFlagTracksRawVector) {
  codec::MotionField field(4, 4);
  field.at(2, 2) = {4, 0};
  Preprocessor pre({}, 7);
  const auto result = pre.run(field, kCamera);
  int nonzero = 0;
  for (const auto& m : result.mvs) nonzero += m.nonzero ? 1 : 0;
  EXPECT_EQ(nonzero, 1);
}

}  // namespace
}  // namespace dive::core
