#include "core/foreground_extractor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/motion_model.h"
#include "geom/polygon.h"

namespace dive::core {
namespace {

const geom::PinholeCamera kCamera(400.0, 512, 288);

/// Moving scene with one standing object around MB cols 14..17, rows 9..12.
PreprocessResult object_scene(double object_extra = 4.0) {
  PreprocessResult pre;
  pre.mb_cols = 32;
  pre.mb_rows = 18;
  pre.agent_moving = true;
  pre.eta = 0.5;
  codec::MotionField geometry(32, 18);
  for (int row = 0; row < 18; ++row)
    for (int col = 0; col < 32; ++col) {
      CorrectedMv m;
      m.col = col;
      m.row = row;
      m.position = kCamera.to_centered(geometry.mb_center(col, row));
      if (m.position.y > 4.0) {
        const double depth = 400.0 * 1.5 / m.position.y;
        m.corrected = translational_mv(m.position, 0.9, depth);
      }
      if (col >= 14 && col <= 17 && row >= 9 && row <= 12) {
        m.corrected = translational_mv(m.position, 0.9, 18.0) +
                      geom::Vec2{object_extra, 0.0};
      }
      m.raw = m.corrected;
      m.nonzero = m.corrected.norm() > 0.01;
      pre.mvs.push_back(m);
    }
  return pre;
}

PreprocessResult stopped_scene() {
  PreprocessResult pre;
  pre.mb_cols = 32;
  pre.mb_rows = 18;
  pre.agent_moving = false;
  pre.eta = 0.02;
  codec::MotionField geometry(32, 18);
  for (int row = 0; row < 18; ++row)
    for (int col = 0; col < 32; ++col) {
      CorrectedMv m;
      m.col = col;
      m.row = row;
      m.position = kCamera.to_centered(geometry.mb_center(col, row));
      pre.mvs.push_back(m);
    }
  return pre;
}

TEST(ForegroundExtractor, ExtractsObjectRegion) {
  ForegroundExtractor fe;
  const auto result = fe.extract(object_scene(), kCamera);
  ASSERT_TRUE(result.valid);
  ASSERT_FALSE(result.regions.empty());
  EXPECT_FALSE(result.from_fallback);

  // Some region covers the object's pixel area (MB cols 14-17 => pixels
  // 224-288, rows 9-12 => 144-208).
  const geom::Box object_box{224, 144, 288, 208};
  double best_iou = 0.0;
  for (const auto& r : result.regions)
    best_iou = std::max(best_iou, geom::iou(r.bounds, object_box));
  EXPECT_GT(best_iou, 0.25);
}

TEST(ForegroundExtractor, FallbackWhenStopped) {
  ForegroundExtractor fe;
  const auto first = fe.extract(object_scene(), kCamera);
  ASSERT_TRUE(first.valid);
  const auto fallback = fe.extract(stopped_scene(), kCamera);
  EXPECT_TRUE(fallback.from_fallback);
  EXPECT_TRUE(fallback.valid);
  EXPECT_EQ(fallback.regions.size(), first.regions.size());
}

TEST(ForegroundExtractor, NoHistoryFallbackIsEmpty) {
  ForegroundExtractor fe;
  const auto result = fe.extract(stopped_scene(), kCamera);
  EXPECT_TRUE(result.from_fallback);
  EXPECT_FALSE(result.valid);
  EXPECT_TRUE(result.regions.empty());
}

TEST(ForegroundExtractor, ResetClearsFallback) {
  ForegroundExtractor fe;
  fe.extract(object_scene(), kCamera);
  fe.reset();
  const auto result = fe.extract(stopped_scene(), kCamera);
  EXPECT_FALSE(result.valid);
}

TEST(ForegroundExtractor, RegionsStayInsideFrame) {
  ForegroundExtractor fe;
  const auto result = fe.extract(object_scene(), kCamera);
  for (const auto& r : result.regions) {
    EXPECT_GE(r.bounds.x0, 0.0);
    EXPECT_GE(r.bounds.y0, 0.0);
    EXPECT_LE(r.bounds.x1, 512.0);
    EXPECT_LE(r.bounds.y1, 288.0);
  }
}

TEST(ForegroundExtractor, TemporalCarryBridgesMissedFrame) {
  ForegroundExtractorConfig cfg;
  cfg.temporal_carry_frames = 2;
  ForegroundExtractor fe(cfg);
  const auto with_object = fe.extract(object_scene(), kCamera);
  ASSERT_TRUE(with_object.valid);
  const std::size_t with_count = with_object.regions.size();

  // Next frame: the object's motion vanishes (extraction would miss it),
  // but carried regions keep covering it.
  const auto missed = fe.extract(object_scene(0.0), kCamera);
  ASSERT_TRUE(missed.valid);
  int carried = 0;
  for (const auto& r : missed.regions) carried += r.age > 0 ? 1 : 0;
  EXPECT_GT(carried, 0);
  EXPECT_GE(missed.regions.size(), 1u);
  (void)with_count;
}

TEST(ForegroundExtractor, CarriedRegionsExpire) {
  ForegroundExtractorConfig cfg;
  cfg.temporal_carry_frames = 1;
  ForegroundExtractor fe(cfg);
  fe.extract(object_scene(), kCamera);
  fe.extract(object_scene(0.0), kCamera);  // carries (age 1)
  const auto third = fe.extract(object_scene(0.0), kCamera);
  for (const auto& r : third.regions) EXPECT_LE(r.age, 1);
}

TEST(ForegroundExtractor, CarryAnchorsToOriginalGeometry) {
  // Regression: carried regions used to be re-shifted and re-clipped from
  // the previous frame's carried copy, so clipping losses and motion
  // error compounded over the carry window. An age-N carried region must
  // equal the age-0 original shifted by N * mean_mv (then clipped once).
  ForegroundExtractorConfig cfg;
  cfg.temporal_carry_frames = 2;
  ForegroundExtractor fe(cfg);

  const geom::Box object_box{224, 144, 288, 208};
  const auto first = fe.extract(object_scene(), kCamera);
  ASSERT_TRUE(first.valid);
  const ForegroundRegion* original = nullptr;
  double best_iou = 0.0;
  for (const auto& r : first.regions) {
    const double iou = geom::iou(r.bounds, object_box);
    if (iou > best_iou) {
      best_iou = iou;
      original = &r;
    }
  }
  ASSERT_NE(original, nullptr);
  ASSERT_GT(best_iou, 0.25);

  // Two missed frames: the object region rides forward as age 1, then 2.
  fe.extract(object_scene(0.0), kCamera);
  const auto second_miss = fe.extract(object_scene(0.0), kCamera);

  const geom::Box expected =
      original->bounds.shifted(original->mean_mv * 2.0).clipped(512, 288);
  const ForegroundRegion* aged = nullptr;
  double aged_iou = 0.0;
  for (const auto& r : second_miss.regions) {
    if (r.age != 2) continue;
    const double iou = geom::iou(r.bounds, expected);
    if (iou > aged_iou) {
      aged_iou = iou;
      aged = &r;
    }
  }
  ASSERT_NE(aged, nullptr);
  EXPECT_NEAR(aged->bounds.x0, expected.x0, 1e-9);
  EXPECT_NEAR(aged->bounds.y0, expected.y0, 1e-9);
  EXPECT_NEAR(aged->bounds.x1, expected.x1, 1e-9);
  EXPECT_NEAR(aged->bounds.y1, expected.y1, 1e-9);
}

TEST(ForegroundExtractor, FreshDetectionReplacesCarrySource) {
  // A fresh extraction covering a carried region replaces its carry
  // source, so the carry age restarts from the newest sighting instead
  // of the oldest one accumulating.
  ForegroundExtractorConfig cfg;
  cfg.temporal_carry_frames = 2;
  ForegroundExtractor fe(cfg);
  fe.extract(object_scene(), kCamera);  // sighting 1
  fe.extract(object_scene(), kCamera);  // sighting 2 replaces the source
  const auto missed = fe.extract(object_scene(0.0), kCamera);
  for (const auto& r : missed.regions)
    EXPECT_LE(r.age, 1) << "carry source should restart at each sighting";
}

TEST(ForegroundResult, AreaFractionUnionsOverlap) {
  // Regression: overlapping regions were summed, double-counting the
  // intersection. {0,0,100,100} U {50,0,150,100} covers 15000 of 20000.
  ForegroundResult r;
  r.valid = true;
  ForegroundRegion a;
  a.bounds = {0, 0, 100, 100};
  ForegroundRegion b;
  b.bounds = {50, 0, 150, 100};
  r.regions.push_back(a);
  r.regions.push_back(b);
  EXPECT_DOUBLE_EQ(r.area_fraction(200, 100), 0.75);
}

TEST(ForegroundResult, AreaFractionBounds) {
  ForegroundResult r;
  EXPECT_DOUBLE_EQ(r.area_fraction(512, 288), 0.0);
  ForegroundRegion big;
  big.bounds = {0, 0, 512, 288};
  r.regions.push_back(big);
  r.valid = true;
  EXPECT_DOUBLE_EQ(r.area_fraction(512, 288), 1.0);
  // Overlapping regions clamp at 1.
  r.regions.push_back(big);
  EXPECT_DOUBLE_EQ(r.area_fraction(512, 288), 1.0);
}

}  // namespace
}  // namespace dive::core
