#include "core/bandwidth_estimator.h"

#include <gtest/gtest.h>

namespace dive::core {
namespace {

using util::from_millis;
using util::from_seconds;

TEST(BandwidthEstimator, PriorBeforeAnyAck) {
  BandwidthEstimatorConfig cfg;
  cfg.prior_bytes_per_sec = 5000.0;
  const BandwidthEstimator est(cfg);
  EXPECT_DOUBLE_EQ(est.estimate(from_seconds(1)), 5000.0);
}

TEST(BandwidthEstimator, SingleBurstGoodput) {
  BandwidthEstimator est;
  // 1000 bytes over 0.1 s = 10 kB/s.
  est.add_transmission(1000.0, from_seconds(1), from_millis(1100));
  EXPECT_NEAR(est.estimate(from_millis(1100)), 10'000.0, 1e-6);
}

TEST(BandwidthEstimator, DurationWeightedAverage) {
  BandwidthEstimator est;
  // 0.3 s at 10 kB/s and 0.1 s at 2 kB/s.
  est.add_transmission(3000.0, 0, from_millis(300));
  est.add_transmission(200.0, from_millis(300), from_millis(400));
  const double expected = (3000.0 + 200.0) / 0.4;
  EXPECT_NEAR(est.estimate(from_millis(400)), expected, 1e-6);
}

TEST(BandwidthEstimator, WindowForgetsOldBursts) {
  BandwidthEstimatorConfig cfg;
  cfg.window = from_seconds(2);
  BandwidthEstimator est(cfg);
  est.add_transmission(10'000.0, 0, from_millis(500));  // 20 kB/s, old
  est.add_transmission(1000.0, from_seconds(5), from_millis(5500));  // 2 kB/s
  EXPECT_NEAR(est.estimate(from_millis(5500)), 2000.0, 1e-6);
}

TEST(BandwidthEstimator, SafetyFactorApplied) {
  BandwidthEstimatorConfig cfg;
  cfg.safety = 0.8;
  BandwidthEstimator est(cfg);
  est.add_transmission(1000.0, 0, from_millis(100));  // 10 kB/s
  EXPECT_NEAR(est.target_bytes_per_sec(from_millis(100)), 8000.0, 1e-6);
}

TEST(BandwidthEstimator, IgnoresDegenerateSamples) {
  BandwidthEstimator est;
  est.add_transmission(0.0, 0, from_millis(100));
  est.add_transmission(100.0, from_millis(100), from_millis(100));
  est.add_transmission(100.0, from_millis(200), from_millis(150));
  // Still on the prior.
  EXPECT_DOUBLE_EQ(est.estimate(from_millis(200)),
                   BandwidthEstimatorConfig{}.prior_bytes_per_sec);
}

TEST(BandwidthEstimator, TracksRateChange) {
  BandwidthEstimatorConfig cfg;
  cfg.window = from_seconds(1);
  BandwidthEstimator est(cfg);
  // Old regime: 10 kB/s bursts.
  for (int i = 0; i < 5; ++i)
    est.add_transmission(1000.0, from_millis(i * 200),
                         from_millis(i * 200 + 100));
  // New regime: 2 kB/s bursts, pushing the window past the old ones.
  for (int i = 0; i < 10; ++i)
    est.add_transmission(200.0, from_millis(2000 + i * 200),
                         from_millis(2000 + i * 200 + 100));
  EXPECT_NEAR(est.estimate(from_millis(4100)), 2000.0, 1.0);
}

TEST(BandwidthEstimator, ProratesStraddlingSample) {
  // Regression: a long transmission straddling the window edge used to
  // contribute its full duration and bytes, dragging in goodput from
  // before the window. Only the overlap with [now - window, now] counts.
  BandwidthEstimatorConfig cfg;
  cfg.window = from_seconds(2);
  BandwidthEstimator est(cfg);
  // ~9523.8 B/s for 10.5 s — only its last 0.1 s is inside the window.
  est.add_transmission(100'000.0, 0, from_millis(10'500));
  // 500 B/s for 0.1 s, fully inside the window.
  est.add_transmission(50.0, from_millis(12'300), from_millis(12'400));
  const double fast_rate = 100'000.0 / 10.5;
  const double expected = (fast_rate * 0.1 + 500.0 * 0.1) / 0.2;
  EXPECT_NEAR(est.estimate(from_millis(12'400)), expected, 1e-6);
}

TEST(BandwidthEstimator, ResetRestoresPrior) {
  BandwidthEstimator est;
  est.add_transmission(1000.0, 0, from_millis(100));
  est.reset();
  EXPECT_DOUBLE_EQ(est.estimate(from_millis(100)),
                   BandwidthEstimatorConfig{}.prior_bytes_per_sec);
}

}  // namespace
}  // namespace dive::core
