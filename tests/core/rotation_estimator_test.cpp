#include "core/rotation_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dive::core {
namespace {

const geom::PinholeCamera kCamera(400.0, 512, 288);

/// Builds a synthetic field: translation at scene depths + rotation, with
/// optional noise vectors.
codec::MotionField make_field(Rotation rot, double dz, util::Rng* noise_rng,
                              double outlier_fraction = 0.0) {
  codec::MotionField field(512 / 16, 288 / 16);
  for (int row = 0; row < field.mb_rows; ++row) {
    for (int col = 0; col < field.mb_cols; ++col) {
      const geom::Vec2 p = kCamera.to_centered(field.mb_center(col, row));
      // Ground below the horizon, building wall above.
      const double depth =
          p.y > 4.0 ? 400.0 * 1.5 / p.y : 30.0;
      geom::Vec2 mv = translational_mv(p, dz, depth) +
                      rotational_mv(p, rot, kCamera.focal());
      if (noise_rng != nullptr && noise_rng->chance(outlier_fraction)) {
        mv = {noise_rng->uniform(-12, 12), noise_rng->uniform(-12, 12)};
      }
      field.at(col, row) = {static_cast<int>(std::lround(mv.x * 2)),
                            static_cast<int>(std::lround(mv.y * 2))};
    }
  }
  return field;
}

TEST(RotationEstimator, RecoversPureYaw) {
  RotationEstimator est({}, 1);
  const Rotation truth{0.0, 0.012};
  const auto result = est.estimate(make_field(truth, 0.8, nullptr), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->rotation.dphi_y, truth.dphi_y, 5e-4);
  EXPECT_NEAR(result->rotation.dphi_x, 0.0, 5e-4);
}

TEST(RotationEstimator, RecoversPurePitch) {
  RotationEstimator est({}, 2);
  const Rotation truth{0.004, 0.0};
  const auto result = est.estimate(make_field(truth, 0.8, nullptr), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->rotation.dphi_x, truth.dphi_x, 5e-4);
  EXPECT_NEAR(result->rotation.dphi_y, 0.0, 5e-4);
}

TEST(RotationEstimator, RecoversCompoundRotation) {
  RotationEstimator est({}, 3);
  const Rotation truth{-0.003, 0.008};
  const auto result = est.estimate(make_field(truth, 1.0, nullptr), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->rotation.dphi_x, truth.dphi_x, 6e-4);
  EXPECT_NEAR(result->rotation.dphi_y, truth.dphi_y, 6e-4);
}

TEST(RotationEstimator, ZeroRotationGivesZero) {
  RotationEstimator est({}, 4);
  const auto result = est.estimate(make_field({}, 1.0, nullptr), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->rotation.dphi_x, 0.0, 4e-4);
  EXPECT_NEAR(result->rotation.dphi_y, 0.0, 4e-4);
}

TEST(RotationEstimator, RobustToOutliers) {
  util::Rng noise(9);
  RotationEstimator est({}, 5);
  const Rotation truth{0.002, -0.01};
  const auto field = make_field(truth, 0.9, &noise, 0.25);
  const auto result = est.estimate(field, kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->rotation.dphi_y, truth.dphi_y, 2e-3);
}

TEST(RotationEstimator, EmptyFieldFails) {
  RotationEstimator est({}, 6);
  EXPECT_FALSE(est.estimate(codec::MotionField{}, kCamera).has_value());
}

TEST(RotationEstimator, SaturatedVectorsExcluded) {
  // A field whose near blocks saturate must still estimate from the rest.
  RotationEstimator est({}, 7);
  auto field = make_field({0.0, 0.01}, 0.8, nullptr);
  for (int col = 0; col < field.mb_cols; ++col) {
    field.at(col, field.mb_rows - 1) = {60, 0};  // 30 px: saturated
  }
  const auto result = est.estimate(field, kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->rotation.dphi_y, 0.01, 1e-3);
}

TEST(RotationEstimator, RSamplingBeatsRandomUnderFarNoise) {
  // Corrupt the far-from-FOE half of the field: R-sampling (near-FOE)
  // survives; random sampling degrades.
  util::Rng noise(11);
  const Rotation truth{0.0, 0.01};
  auto field = make_field(truth, 0.8, nullptr);
  for (int row = 0; row < field.mb_rows; ++row)
    for (int col = 0; col < field.mb_cols; ++col) {
      const geom::Vec2 p = kCamera.to_centered(field.mb_center(col, row));
      if (p.norm() > 130.0) {
        field.at(col, row) = {noise.uniform_int(-20, 20),
                              noise.uniform_int(-20, 20)};
      }
    }

  RotationEstimatorConfig r_cfg;
  r_cfg.policy = SamplingPolicy::kRSampling;
  RotationEstimator r_est(r_cfg, 13);
  const auto r = r_est.estimate(field, kCamera);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->rotation.dphi_y, truth.dphi_y, 1e-3);

  RotationEstimatorConfig rand_cfg;
  rand_cfg.policy = SamplingPolicy::kRandom;
  rand_cfg.sample_count = 70;
  RotationEstimator rand_est(rand_cfg, 13);
  double rand_err_sum = 0.0;
  int rand_n = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto res = rand_est.estimate(field, kCamera);
    if (res) {
      rand_err_sum += std::abs(res->rotation.dphi_y - truth.dphi_y);
      ++rand_n;
    }
  }
  const double r_err = std::abs(r->rotation.dphi_y - truth.dphi_y);
  if (rand_n > 0) {
    EXPECT_GE(rand_err_sum / rand_n + 1e-6, r_err);
  }
}

TEST(RotationEstimator, KControlsSampleCount) {
  RotationEstimatorConfig cfg;
  cfg.sample_count = 30;
  RotationEstimator est(cfg, 8);
  const auto result = est.estimate(make_field({0, 0.01}, 0.8, nullptr), kCamera);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->samples_used, 30);
}

}  // namespace
}  // namespace dive::core
