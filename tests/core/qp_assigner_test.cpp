#include "core/qp_assigner.h"

#include <gtest/gtest.h>

namespace dive::core {
namespace {

ForegroundResult result_with_region(geom::Box bounds) {
  ForegroundResult fg;
  fg.valid = true;
  ForegroundRegion region;
  region.hull = {{bounds.x0, bounds.y0},
                 {bounds.x1, bounds.y0},
                 {bounds.x1, bounds.y1},
                 {bounds.x0, bounds.y1}};
  region.bounds = bounds;
  fg.regions.push_back(region);
  return fg;
}

TEST(QpAssigner, ForegroundZeroBackgroundDelta) {
  const QpAssigner qa;
  const auto fg = result_with_region({64, 64, 192, 160});
  const auto map = qa.build_map(fg, 32, 18);
  // Inside the region: offset 0.
  EXPECT_EQ(map.at(6, 6), 0);
  EXPECT_EQ(map.at(10, 8), 0);
  // Outside: positive delta.
  EXPECT_GT(map.at(0, 0), 0);
  EXPECT_GT(map.at(31, 17), 0);
}

TEST(QpAssigner, AdaptiveDeltaGrowsWithForeground) {
  const QpAssigner qa;
  const int small = qa.background_delta(
      result_with_region({0, 0, 64, 64}), 32, 18);
  const int large = qa.background_delta(
      result_with_region({0, 0, 400, 250}), 32, 18);
  EXPECT_GT(large, small);
}

TEST(QpAssigner, DeltaClampedToRange) {
  QpAssignerConfig cfg;
  cfg.delta_min = 4;
  cfg.delta_max = 26;
  const QpAssigner qa(cfg);
  EXPECT_EQ(qa.background_delta(result_with_region({0, 0, 512, 288}), 32, 18),
            26);
  EXPECT_EQ(qa.background_delta(result_with_region({0, 0, 16, 16}), 32, 18),
            4);
}

TEST(QpAssigner, FixedDeltaOverridesAdaptive) {
  QpAssignerConfig cfg;
  cfg.fixed_delta = 15;
  const QpAssigner qa(cfg);
  EXPECT_EQ(qa.background_delta(result_with_region({0, 0, 512, 288}), 32, 18),
            15);
  EXPECT_EQ(qa.background_delta(ForegroundResult{}, 32, 18), 15);
}

TEST(QpAssigner, NoForegroundUsesGentleDelta) {
  QpAssignerConfig cfg;
  cfg.delta_min = 4;
  const QpAssigner qa(cfg);
  ForegroundResult none;
  EXPECT_EQ(qa.background_delta(none, 32, 18), 4);
  const auto map = qa.build_map(none, 4, 4);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(map.at(c, r), 4);
}

TEST(QpAssigner, MaskMatchesMap) {
  const QpAssigner qa;
  const auto fg = result_with_region({64, 64, 160, 160});
  const auto mask = QpAssigner::foreground_mask(fg, 32, 18);
  const auto map = qa.build_map(fg, 32, 18);
  for (int r = 0; r < 18; ++r)
    for (int c = 0; c < 32; ++c) {
      const bool is_fg = mask[static_cast<std::size_t>(r) * 32 + c];
      EXPECT_EQ(map.at(c, r) == 0, is_fg) << c << "," << r;
    }
}

TEST(QpAssigner, OverlappingRegionsCountOnce) {
  const QpAssigner qa;
  auto fg = result_with_region({0, 0, 256, 144});
  // Duplicate the same region: union area unchanged, delta unchanged.
  fg.regions.push_back(fg.regions[0]);
  const int twice = qa.background_delta(fg, 32, 18);
  const int once = qa.background_delta(result_with_region({0, 0, 256, 144}),
                                       32, 18);
  EXPECT_EQ(twice, once);
}

}  // namespace
}  // namespace dive::core
