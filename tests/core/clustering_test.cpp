#include "core/clustering.h"

#include <gtest/gtest.h>

namespace dive::core {
namespace {

/// Builds a PreprocessResult grid with explicit per-block MVs.
PreprocessResult grid(int cols, int rows) {
  PreprocessResult pre;
  pre.mb_cols = cols;
  pre.mb_rows = rows;
  pre.agent_moving = true;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      CorrectedMv m;
      m.col = c;
      m.row = r;
      m.position = {c * 16.0 + 8.0, r * 16.0 + 8.0};
      pre.mvs.push_back(m);
    }
  return pre;
}

void set_mv(PreprocessResult& pre, int col, int row, geom::Vec2 mv) {
  pre.mvs[static_cast<std::size_t>(row) * pre.mb_cols + col].corrected = mv;
}

TEST(Clustering, GrowsUniformBlob) {
  auto pre = grid(10, 10);
  for (int r = 2; r <= 5; ++r)
    for (int c = 3; c <= 6; ++c) set_mv(pre, c, r, {5, 1});
  const ForegroundClusterer fc;
  const auto clusters = fc.grow(pre, {4 * 10 + 4});  // seed inside blob
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 16);
  EXPECT_NEAR(clusters[0].mean_mv.x, 5.0, 1e-9);
  EXPECT_EQ(clusters[0].col_min, 3);
  EXPECT_EQ(clusters[0].col_max, 6);
}

TEST(Clustering, StopsAtDissimilarMotion) {
  auto pre = grid(10, 4);
  for (int c = 0; c <= 4; ++c) set_mv(pre, c, 1, {6, 0});
  for (int c = 5; c <= 9; ++c) set_mv(pre, c, 1, {-6, 0});
  const ForegroundClusterer fc;
  const auto clusters = fc.grow(pre, {1 * 10 + 1});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].col_max, 4);
}

TEST(Clustering, SeedsInSameBlobShareCluster) {
  auto pre = grid(8, 8);
  for (int r = 1; r <= 3; ++r)
    for (int c = 1; c <= 3; ++c) set_mv(pre, c, r, {4, 4});
  const ForegroundClusterer fc;
  const auto clusters = fc.grow(pre, {1 * 8 + 1, 2 * 8 + 2, 3 * 8 + 3});
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(Clustering, MinSizeFiltersNoise) {
  auto pre = grid(8, 8);
  set_mv(pre, 4, 4, {9, 0});  // isolated single block
  ClusteringConfig cfg;
  cfg.min_cluster_mbs = 2;
  const ForegroundClusterer fc(cfg);
  EXPECT_TRUE(fc.grow(pre, {4 * 8 + 4}).empty());
}

TEST(Clustering, GroundMaskBlocksGrowth) {
  auto pre = grid(10, 4);
  for (int c = 0; c <= 9; ++c) set_mv(pre, c, 2, {5, 0});
  std::vector<bool> ground(pre.mvs.size(), false);
  for (int c = 5; c <= 9; ++c) ground[2 * 10 + c] = true;
  const ForegroundClusterer fc;
  const auto clusters = fc.grow(pre, {2 * 10 + 1}, ground, {});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].col_max, 4);
}

TEST(Clustering, OutsideHullNeedsMotionEvidence) {
  auto pre = grid(6, 6);
  // A blob of near-zero vectors; the seed sits in-hull, the rest outside.
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c) set_mv(pre, c, r, {0.4, 0.0});
  std::vector<bool> hull(pre.mvs.size(), false);
  hull[3 * 6 + 3] = true;
  const ForegroundClusterer fc;
  const auto clusters = fc.grow(pre, {3 * 6 + 3}, {}, hull);
  // Growth outside the hull is blocked (|mv| < min_outside_mv).
  EXPECT_TRUE(clusters.empty() || clusters[0].size() <= 2);
}

TEST(Clustering, AnchorStopsGradualDrift) {
  // MV magnitude ramps along a column; without the anchor bound a single
  // cluster would creep down the whole ramp, each step individually
  // "similar". Side columns carry dissimilar motion so only the ramp is
  // in play.
  auto pre = grid(3, 12);
  for (int r = 0; r < 12; ++r) {
    set_mv(pre, 0, r, {30.0, 0.0});
    set_mv(pre, 2, r, {-30.0, 0.0});
    set_mv(pre, 1, r, {0.0, 1.0 + r * 0.9});
  }
  ClusteringConfig cfg;
  cfg.pair_distance = 1.0;
  cfg.mean_distance = 100.0;  // disable the mean check for this test
  cfg.anchor_abs = 2.0;
  cfg.anchor_rel = 0.0;
  cfg.min_cluster_mbs = 2;
  const ForegroundClusterer fc(cfg);
  const auto clusters = fc.grow(pre, {0 * 3 + 1});
  ASSERT_EQ(clusters.size(), 1u);
  // Anchor bound 2.0 around seed MV magnitude 1.0 admits rows 0-3 only.
  EXPECT_LE(clusters[0].row_max, 3);
  EXPECT_GE(clusters[0].size(), 2);
}

TEST(ClusterMerge, JoinsAdjacentSimilarClusters) {
  Cluster a, b;
  a.members = {0, 1, 2};
  a.mean_mv = {5, 0};
  a.col_min = 0; a.col_max = 2; a.row_min = 0; a.row_max = 0;
  b.members = {4, 5, 6};
  b.mean_mv = {5.3, 0.2};
  b.col_min = 4; b.col_max = 6; b.row_min = 0; b.row_max = 0;
  const ForegroundClusterer fc;
  const auto merged = fc.merge({a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].size(), 6);
  EXPECT_EQ(merged[0].col_max, 6);
}

TEST(ClusterMerge, KeepsOpposedDirectionsApart) {
  Cluster a, b;
  a.members = {0, 1};
  a.mean_mv = {5, 0};
  a.col_min = 0; a.col_max = 1; a.row_min = 0; a.row_max = 0;
  b.members = {2, 3};
  b.mean_mv = {-5, 0};  // oncoming traffic
  b.col_min = 2; b.col_max = 3; b.row_min = 0; b.row_max = 0;
  const ForegroundClusterer fc;
  EXPECT_EQ(fc.merge({a, b}).size(), 2u);
}

TEST(ClusterMerge, DistantClustersStaySeparate) {
  Cluster a, b;
  a.members = {0};
  a.mean_mv = {5, 0};
  a.col_min = 0; a.col_max = 1; a.row_min = 0; a.row_max = 1;
  b.members = {50};
  b.mean_mv = {5, 0};
  b.col_min = 10; b.col_max = 12; b.row_min = 0; b.row_max = 1;
  const ForegroundClusterer fc;
  EXPECT_EQ(fc.merge({a, b}).size(), 2u);
}

TEST(ClusterMerge, CascadesUntilFixedPoint) {
  // Three chained clusters: a-b adjacent, b-c adjacent, a-c not. All must
  // collapse into one through the transitive merge.
  Cluster a, b, c;
  a.members = {0}; a.mean_mv = {4, 0};
  a.col_min = 0; a.col_max = 1; a.row_min = 0; a.row_max = 0;
  b.members = {1}; b.mean_mv = {4.2, 0};
  b.col_min = 3; b.col_max = 4; b.row_min = 0; b.row_max = 0;
  c.members = {2}; c.mean_mv = {4.4, 0};
  c.col_min = 6; c.col_max = 7; c.row_min = 0; c.row_max = 0;
  const ForegroundClusterer fc;
  EXPECT_EQ(fc.merge({a, b, c}).size(), 1u);
}

TEST(ClusterMerge, MagnitudeRatioGate) {
  Cluster slow, fast;
  slow.members = {0};
  slow.mean_mv = {1, 0};
  slow.col_min = 0; slow.col_max = 1; slow.row_min = 0; slow.row_max = 0;
  fast.members = {1};
  fast.mean_mv = {10, 0};  // same direction, 10x magnitude
  fast.col_min = 2; fast.col_max = 3; fast.row_min = 0; fast.row_max = 0;
  const ForegroundClusterer fc;
  EXPECT_EQ(fc.merge({slow, fast}).size(), 2u);
}

}  // namespace
}  // namespace dive::core
