#include "core/offline_tracker.h"

#include <gtest/gtest.h>

namespace dive::core {
namespace {

constexpr auto kCar = video::ObjectClass::kCar;

codec::MotionField uniform_field(int cols, int rows, codec::MotionVector mv) {
  codec::MotionField f(cols, rows);
  for (auto& v : f.mvs) v = mv;
  return f;
}

TEST(OfflineTracker, ShiftsBoxByMeanMv) {
  const OfflineTracker tracker;
  // Uniform field of +4 px horizontal motion (8 half-pel).
  const auto field = uniform_field(8, 8, {8, 0});
  const edge::DetectionList prev = {{kCar, {32, 32, 64, 64}, 0.9}};
  const auto out = tracker.track(prev, field, 128, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].box.x0, 36.0);
  EXPECT_DOUBLE_EQ(out[0].box.x1, 68.0);
  EXPECT_DOUBLE_EQ(out[0].box.y0, 32.0);
}

TEST(OfflineTracker, UsesOnlyVectorsInsideBox) {
  const OfflineTracker tracker;
  codec::MotionField field(8, 8);
  // Box covers MB (2,2)-(3,3); give those +6 px, everything else -20.
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      field.at(c, r) = (c >= 2 && c <= 3 && r >= 2 && r <= 3)
                           ? codec::MotionVector{12, 0}
                           : codec::MotionVector{-40, 0};
  const edge::DetectionList prev = {{kCar, {32, 32, 64, 64}, 0.9}};
  const auto out = tracker.track(prev, field, 128, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].box.x0, 38.0);
}

TEST(OfflineTracker, EmptyFieldKeepsBoxes) {
  const OfflineTracker tracker;
  const edge::DetectionList prev = {{kCar, {10, 10, 30, 30}, 0.8}};
  const auto out = tracker.track(prev, {}, 128, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].box.x0, 10.0);
}

TEST(OfflineTracker, DropsBoxesLeavingFrame) {
  const OfflineTracker tracker;
  const auto field = uniform_field(8, 8, {-60, 0});  // -30 px per frame
  edge::DetectionList boxes = {{kCar, {5, 40, 45, 80}, 0.9}};
  boxes = tracker.track(boxes, field, 128, 128);
  // First step clips hard; within a couple of steps the box is gone.
  for (int i = 0; i < 3 && !boxes.empty(); ++i)
    boxes = tracker.track(boxes, field, 128, 128);
  EXPECT_TRUE(boxes.empty());
}

TEST(OfflineTracker, ConfidenceDecays) {
  OfflineTrackerConfig cfg;
  cfg.confidence_decay = 0.9;
  const OfflineTracker tracker(cfg);
  const auto field = uniform_field(8, 8, {0, 0});
  edge::DetectionList boxes = {{kCar, {32, 32, 64, 64}, 1.0}};
  boxes = tracker.track(boxes, field, 128, 128);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_DOUBLE_EQ(boxes[0].confidence, 0.9);
  boxes = tracker.track(boxes, field, 128, 128);
  EXPECT_DOUBLE_EQ(boxes[0].confidence, 0.81);
}

TEST(OfflineTracker, TracksMultipleObjectsIndependently) {
  const OfflineTracker tracker;
  codec::MotionField field(8, 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      field.at(c, r) = c < 4 ? codec::MotionVector{8, 0}
                             : codec::MotionVector{0, 8};
  const edge::DetectionList prev = {
      {kCar, {16, 16, 48, 48}, 0.9},
      {video::ObjectClass::kPedestrian, {80, 16, 112, 48}, 0.8}};
  const auto out = tracker.track(prev, field, 128, 128);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].box.x0, 20.0);  // moved right
  EXPECT_DOUBLE_EQ(out[1].box.y0, 20.0);  // moved down
}

}  // namespace
}  // namespace dive::core
