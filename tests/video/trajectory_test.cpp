#include "video/trajectory.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dive::video {
namespace {

TEST(EgoTrajectory, StraightConstantSpeed) {
  const auto t = EgoTrajectory::straight(10.0, 5.0, 1.5);
  const auto s0 = t.state_at(0.0);
  const auto s2 = t.state_at(2.0);
  EXPECT_NEAR(s0.speed, 10.0, 1e-9);
  EXPECT_NEAR(s2.position.z - s0.position.z, 20.0, 0.05);
  EXPECT_NEAR(s2.position.x, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(s2.position.y, -1.5);  // y-down: camera above ground
  EXPECT_NEAR(s2.yaw, 0.0, 1e-9);
}

TEST(EgoTrajectory, ParkedStaysPut) {
  const auto t = EgoTrajectory::parked(3.0);
  const auto s = t.state_at(2.5);
  EXPECT_TRUE(s.is_stopped());
  EXPECT_NEAR(s.position.z, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.pitch, 0.0);  // wobble gated off at zero speed
}

TEST(EgoTrajectory, StopAndGoProfile) {
  // 2s drive @8, brake 1s, dwell 2s, accel 1s, tail 2s.
  const auto t = EgoTrajectory::stop_and_go(8.0, 2.0, 1.0, 2.0, 1.0, 2.0);
  EXPECT_NEAR(t.state_at(1.0).speed, 8.0, 1e-6);
  EXPECT_NEAR(t.state_at(3.5).speed, 0.0, 0.05);   // during dwell
  EXPECT_NEAR(t.state_at(4.0).speed, 0.0, 0.05);   // dwell end
  EXPECT_NEAR(t.state_at(5.5).speed, 4.0, 0.25);   // mid re-acceleration
  EXPECT_NEAR(t.state_at(6.5).speed, 8.0, 0.25);   // back to speed
  EXPECT_TRUE(t.state_at(3.5).is_stopped());
}

TEST(EgoTrajectory, TurnChangesHeading) {
  const auto t = EgoTrajectory::with_turn(8.0, 1.0, 90.0, 2.0, 1.0);
  const auto before = t.state_at(0.5);
  const auto after = t.state_at(3.5);
  EXPECT_NEAR(before.yaw, 0.0, 1e-9);
  EXPECT_NEAR(after.yaw, M_PI / 2.0, 0.02);
  // During the turn the yaw rate matches the commanded value.
  EXPECT_NEAR(t.state_at(2.0).yaw_rate, M_PI / 2.0 / 2.0, 1e-9);
  // After the turn the vehicle travels along +x.
  const auto later = t.state_at(4.0);
  EXPECT_GT(later.position.x - after.position.x, 3.0);
}

TEST(EgoTrajectory, PitchWobbleActiveOnlyWhenMoving) {
  PitchWobble wobble;
  wobble.amplitude = 0.01;
  wobble.frequency = 1.0;
  const EgoTrajectory moving({{5.0, 0.0, 0.0}}, 1.5, 10.0, wobble);
  double max_pitch = 0.0;
  for (double t = 0; t < 5.0; t += 0.01)
    max_pitch = std::max(max_pitch, std::abs(moving.state_at(t).pitch));
  EXPECT_NEAR(max_pitch, 0.01, 0.002);

  const EgoTrajectory parked({{5.0, 0.0, 0.0}}, 1.5, 0.0, wobble);
  for (double t = 0; t < 5.0; t += 0.5)
    EXPECT_DOUBLE_EQ(parked.state_at(t).pitch, 0.0);
}

TEST(EgoTrajectory, ClampedBeyondDuration) {
  const auto t = EgoTrajectory::straight(5.0, 2.0);
  const auto end = t.state_at(2.0);
  const auto past = t.state_at(100.0);
  EXPECT_NEAR(end.position.z, past.position.z, 1e-9);
}

TEST(EgoTrajectory, SpeedNeverNegative) {
  // Braking far longer than needed: speed must clamp at zero.
  const EgoTrajectory t({{10.0, -5.0, 0.0}}, 1.5, 5.0);
  for (double time = 0; time < 10.0; time += 0.25)
    EXPECT_GE(t.state_at(time).speed, 0.0);
}

TEST(ObjectTrack, LinearMotionAndHeading) {
  ObjectTrack track;
  track.base_xz = {1.0, 2.0};
  track.velocity_xz = {0.0, 5.0};
  EXPECT_EQ(track.position_at(2.0), (geom::Vec2{1.0, 12.0}));
  EXPECT_TRUE(track.moving());
  EXPECT_NEAR(track.heading_at(0.0), 0.0, 1e-9);  // along +z

  ObjectTrack parked;
  parked.heading = 1.0;
  EXPECT_FALSE(parked.moving());
  EXPECT_DOUBLE_EQ(parked.heading_at(5.0), 1.0);
}

}  // namespace
}  // namespace dive::video
