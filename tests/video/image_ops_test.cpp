#include "video/image_ops.h"

#include <gtest/gtest.h>

namespace dive::video {
namespace {

TEST(PlaneMse, IdenticalIsZero) {
  Plane a(8, 8, 100), b(8, 8, 100);
  EXPECT_DOUBLE_EQ(plane_mse(a, b), 0.0);
}

TEST(PlaneMse, UniformDifference) {
  Plane a(8, 8, 100), b(8, 8, 110);
  EXPECT_DOUBLE_EQ(plane_mse(a, b), 100.0);
}

TEST(PlaneMse, DimensionMismatchThrows) {
  Plane a(8, 8), b(8, 4);
  EXPECT_THROW(plane_mse(a, b), std::invalid_argument);
}

TEST(Psnr, IdenticalCapsAt100) {
  Frame a(16, 16), b(16, 16);
  EXPECT_DOUBLE_EQ(psnr_y(a, b), 100.0);
  EXPECT_DOUBLE_EQ(psnr_yuv(a, b), 100.0);
}

TEST(Psnr, KnownValue) {
  Frame a(16, 16), b(16, 16);
  for (auto& px : b.y.data) px = 26;  // diff 10 everywhere -> MSE 100
  EXPECT_NEAR(psnr_y(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
}

TEST(Psnr, MoreDistortionLowerPsnr) {
  Frame ref(16, 16);
  Frame small = ref, big = ref;
  for (auto& px : small.y.data) px += 2;
  for (auto& px : big.y.data) px += 20;
  EXPECT_GT(psnr_y(ref, small), psnr_y(ref, big));
}

TEST(MeanAbsDiff, Basics) {
  Frame a(16, 16), b(16, 16);
  EXPECT_DOUBLE_EQ(mean_abs_diff_y(a, b), 0.0);
  for (auto& px : b.y.data) px = 21;  // +5
  EXPECT_DOUBLE_EQ(mean_abs_diff_y(a, b), 5.0);
}

TEST(RegionMean, ClampsAndAverages) {
  Plane p(4, 4, 10);
  p.at(0, 0) = 50;
  EXPECT_DOUBLE_EQ(region_mean(p, 0, 0, 1, 1), 50.0);
  EXPECT_DOUBLE_EQ(region_mean(p, 0, 0, 2, 1), 30.0);
  EXPECT_DOUBLE_EQ(region_mean(p, -10, -10, 100, 100),
                   (50.0 + 15 * 10.0) / 16.0);
  EXPECT_DOUBLE_EQ(region_mean(p, 3, 3, 2, 2), 0.0);  // inverted: empty
}

TEST(DrawBox, MarksOutline) {
  Frame f(32, 32);
  draw_box(f, {4, 4, 12, 12}, 255);
  EXPECT_EQ(f.y.at(4, 4), 255);
  EXPECT_EQ(f.y.at(11, 4), 255);
  EXPECT_EQ(f.y.at(4, 11), 255);
  EXPECT_EQ(f.y.at(8, 8), 16);  // interior untouched
}

TEST(DrawBox, ClipsToFrame) {
  Frame f(16, 16);
  draw_box(f, {-10, -10, 100, 100}, 200);  // must not crash
  EXPECT_EQ(f.y.at(0, 0), 200);
  EXPECT_EQ(f.y.at(15, 15), 200);
}

TEST(ToPgm, HeaderAndSize) {
  Plane p(4, 2, 7);
  const std::string pgm = to_pgm(p);
  EXPECT_EQ(pgm.substr(0, 3), "P5\n");
  EXPECT_NE(pgm.find("4 2"), std::string::npos);
  EXPECT_EQ(pgm.size(), pgm.find("255\n") + 4 + 8);
}

}  // namespace
}  // namespace dive::video
