// Differential verification of the SIMD sum-of-squared-errors kernels
// against the canonical scalar reference (video/sse_kernels.h). The
// contract is EXACT equality: squared u8 differences are integers, so
// the dispatched kernel must reproduce the scalar sum bit-for-bit on
// every input — random buffers, every tail length around the vector
// width, saturating extremes, and the plane_mse/psnr wrappers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "video/frame.h"
#include "video/image_ops.h"
#include "video/sse_kernels.h"

namespace dive::video {
namespace {

std::vector<std::uint8_t> random_buffer(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> buf(n);
  util::Rng rng(seed);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return buf;
}

/// Independent reference: textbook loop in double precision, no shared
/// code with the production scalar kernel. Exact for any realistic size
/// (the sum stays far below 2^53).
double reference_sse(const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

TEST(SseKernels, DispatchReportsAKernel) {
  const SseKernel k = active_sse_kernel();
  EXPECT_NE(to_string(k), nullptr);
  EXPECT_NE(sse_u8_fn(), nullptr);
  const char* force = std::getenv("DIVE_FORCE_SCALAR");
  if (force != nullptr && std::string_view(force) != "0")
    EXPECT_EQ(k, SseKernel::kScalar);
}

TEST(SseKernels, MatchesScalarOnRandomBuffers) {
  const SseU8Fn fast = sse_u8_fn();
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 5000));
    const auto a = random_buffer(n, 100 + static_cast<std::uint64_t>(trial));
    const auto b = random_buffer(n, 900 + static_cast<std::uint64_t>(trial));
    const std::uint64_t want = sse_u8_scalar(a.data(), b.data(), n);
    ASSERT_EQ(fast(a.data(), b.data(), n), want)
        << "kernel=" << to_string(active_sse_kernel()) << " n=" << n;
    ASSERT_EQ(static_cast<double>(want), reference_sse(a.data(), b.data(), n));
  }
}

TEST(SseKernels, EveryTailLengthAroundVectorWidth) {
  // 0..97 covers every remainder mod 16 and mod 32 several times over —
  // the off-by-one classic is mishandling the scalar tail after the
  // vector loop.
  const SseU8Fn fast = sse_u8_fn();
  const auto a = random_buffer(97, 1);
  const auto b = random_buffer(97, 2);
  for (std::size_t n = 0; n <= 97; ++n)
    ASSERT_EQ(fast(a.data(), b.data(), n), sse_u8_scalar(a.data(), b.data(), n))
        << "n=" << n;
}

TEST(SseKernels, SaturatingExtremes) {
  // All-255 vs all-0 maximizes every squared difference; 1e6 samples of
  // 255^2 also exercises the 32-bit-lane block drain (a lane overflows
  // u32 after ~66k such samples if the kernel never drains).
  const std::size_t n = 1'000'000;
  std::vector<std::uint8_t> hi(n, 255);
  std::vector<std::uint8_t> lo(n, 0);
  const SseU8Fn fast = sse_u8_fn();
  const std::uint64_t want = static_cast<std::uint64_t>(n) * 255u * 255u;
  EXPECT_EQ(fast(hi.data(), lo.data(), n), want);
  EXPECT_EQ(fast(lo.data(), hi.data(), n), want);
  EXPECT_EQ(sse_u8_scalar(hi.data(), lo.data(), n), want);
  EXPECT_EQ(fast(hi.data(), hi.data(), n), 0u);
}

TEST(SseKernels, PlaneMseMatchesNaiveAccumulation) {
  Plane a(67, 41), b(67, 41);
  a.data = random_buffer(a.data.size(), 31);
  b.data = random_buffer(b.data.size(), 32);
  const double naive =
      reference_sse(a.data.data(), b.data.data(), a.data.size()) /
      static_cast<double>(a.data.size());
  EXPECT_EQ(plane_mse(a, b), naive);
  EXPECT_EQ(plane_sse(a, b),
            sse_u8_scalar(a.data.data(), b.data.data(), a.data.size()));
}

TEST(SseKernels, PsnrIdenticalPlanesCapped) {
  Frame f(32, 32);
  EXPECT_EQ(psnr_y(f, f), 100.0);
  EXPECT_EQ(plane_sse(f.y, f.y), 0u);
}

}  // namespace
}  // namespace dive::video
