#include "video/scene.h"

#include <gtest/gtest.h>

namespace dive::video {
namespace {

TEST(SceneObject, RestsOnGround) {
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {2.0, 30.0};
  const geom::Vec3 c = car.center_at(0.0);
  // y-down: center at -half.y puts the base exactly on Y = 0.
  EXPECT_DOUBLE_EQ(c.y, -0.75);
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.z, 30.0);
}

TEST(SceneObject, MovesAlongTrack) {
  SceneObject car;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {0.0, 0.0};
  car.track.velocity_xz = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(car.center_at(3.0).z, 30.0);
  EXPECT_NEAR(car.yaw_at(1.0), 0.0, 1e-9);
}

TEST(Scene, PopulationCountsApproximate) {
  Scene scene;
  util::Rng rng(10);
  scene.add_parked_cars(10, 0, 200, rng);
  scene.add_moving_cars(5, 0, 200, rng);
  scene.add_pedestrians(7, 0, 200, rng);
  EXPECT_EQ(scene.objects().size(), 22u);
  int cars = 0, peds = 0;
  for (const auto& o : scene.objects()) {
    if (o.cls == ObjectClass::kCar) ++cars;
    if (o.cls == ObjectClass::kPedestrian) ++peds;
  }
  EXPECT_EQ(cars, 15);
  EXPECT_EQ(peds, 7);
}

TEST(Scene, BuildingsOutsideRoad) {
  Scene scene;
  util::Rng rng(11);
  scene.add_buildings(0, 300, rng);
  ASSERT_GT(scene.objects().size(), 5u);
  for (const auto& b : scene.objects()) {
    EXPECT_EQ(b.cls, ObjectClass::kBuilding);
    EXPECT_GE(std::abs(b.track.base_xz.x),
              scene.params().building_band_near);
  }
}

TEST(Scene, ParkedCarsOnShoulder) {
  Scene scene;
  util::Rng rng(12);
  scene.add_parked_cars(20, 0, 500, rng);
  for (const auto& c : scene.objects()) {
    EXPECT_LT(std::abs(c.track.base_xz.x), scene.params().road_half_width);
    EXPECT_DOUBLE_EQ(c.track.velocity_xz.norm(), 0.0);
  }
}

TEST(Scene, MovingCarsInLanes) {
  Scene scene;
  util::Rng rng(13);
  scene.add_moving_cars(20, 0, 500, rng);
  for (const auto& c : scene.objects()) {
    EXPECT_TRUE(c.track.moving());
    EXPECT_LT(std::abs(c.track.base_xz.x), scene.params().lane_width);
  }
}

TEST(ObjectClassNames, Stable) {
  EXPECT_STREQ(to_string(ObjectClass::kCar), "car");
  EXPECT_STREQ(to_string(ObjectClass::kPedestrian), "pedestrian");
  EXPECT_STREQ(to_string(ObjectClass::kBuilding), "building");
}

// --- SceneParams / condition-knob validation (one case per knob) ---

TEST(SceneParamsValidate, AcceptsDefaultsAndConditions) {
  SceneParams p;
  p.conditions.luma_scale = 0.4;
  p.conditions.fog_attenuation = 0.03;
  TunnelSegment seg;
  seg.enter_t = 1.0;
  seg.exit_t = 2.0;
  p.conditions.tunnels = {seg};
  EXPECT_NO_THROW(Scene{p});
}

TEST(SceneParamsValidate, RejectsNegativeNoiseAmplitude) {
  SceneParams p;
  p.luma_noise_amplitude = -0.5;
  EXPECT_THROW(Scene{p}, std::invalid_argument);
}

TEST(SceneParamsValidate, RejectsNonPositiveTextureScale) {
  SceneParams p;
  p.texture_scale = 0.0;
  EXPECT_THROW(Scene{p}, std::invalid_argument);
}

TEST(SceneParamsValidate, RejectsNonPositiveLumaScale) {
  SceneParams p;
  p.conditions.luma_scale = 0.0;
  EXPECT_THROW(Scene{p}, std::invalid_argument);
}

TEST(SceneParamsValidate, RejectsFogAttenuationOutsideUnitInterval) {
  SceneParams p;
  p.conditions.fog_attenuation = -0.01;
  EXPECT_THROW(Scene{p}, std::invalid_argument);
  p.conditions.fog_attenuation = 1.01;
  EXPECT_THROW(Scene{p}, std::invalid_argument);
}

TEST(SceneParamsValidate, RejectsFogLumaOutsideByteRange) {
  SceneParams p;
  p.conditions.fog_luma = 260.0;
  EXPECT_THROW(Scene{p}, std::invalid_argument);
}

TEST(SceneParamsValidate, RejectsDegenerateTunnel) {
  SceneParams p;
  TunnelSegment seg;
  seg.enter_t = 2.0;
  seg.exit_t = 2.0;  // exit must be strictly after entry
  p.conditions.tunnels = {seg};
  EXPECT_THROW(Scene{p}, std::invalid_argument);

  seg.exit_t = 3.0;
  seg.luma_scale = 0.0;
  p.conditions.tunnels = {seg};
  EXPECT_THROW(Scene{p}, std::invalid_argument);
}

TEST(SceneConditionsModel, TunnelScalesLumaInsideSegmentOnly) {
  SceneConditions cond;
  cond.luma_scale = 0.8;
  TunnelSegment seg;
  seg.enter_t = 1.0;
  seg.exit_t = 2.0;
  seg.luma_scale = 0.25;
  cond.tunnels = {seg};
  EXPECT_DOUBLE_EQ(cond.luma_scale_at(0.5), 0.8);
  EXPECT_DOUBLE_EQ(cond.luma_scale_at(1.5), 0.8 * 0.25);
  EXPECT_DOUBLE_EQ(cond.luma_scale_at(2.0), 0.8);  // exit is exclusive
}

}  // namespace
}  // namespace dive::video
