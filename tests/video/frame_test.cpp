#include "video/frame.h"

#include <gtest/gtest.h>

namespace dive::video {
namespace {

TEST(Plane, DefaultAndFill) {
  Plane p(8, 4, 77);
  EXPECT_EQ(p.size(), 32u);
  EXPECT_EQ(p.at(0, 0), 77);
  EXPECT_EQ(p.at(7, 3), 77);
}

TEST(Plane, ClampedAccess) {
  Plane p(4, 4);
  p.at(0, 0) = 10;
  p.at(3, 3) = 20;
  EXPECT_EQ(p.at_clamped(-5, -5), 10);
  EXPECT_EQ(p.at_clamped(100, 100), 20);
  EXPECT_EQ(p.at_clamped(0, 100), p.at(0, 3));
}

TEST(Frame, ChromaHalfResolution) {
  Frame f(64, 32);
  EXPECT_EQ(f.width(), 64);
  EXPECT_EQ(f.height(), 32);
  EXPECT_EQ(f.u.width, 32);
  EXPECT_EQ(f.u.height, 16);
  EXPECT_EQ(f.v.width, 32);
  EXPECT_EQ(f.byte_size(), 64u * 32 + 2u * 32 * 16);
}

TEST(Frame, DefaultPixelValues) {
  Frame f(16, 16);
  EXPECT_EQ(f.y.at(5, 5), 16);    // dark luma
  EXPECT_EQ(f.u.at(2, 2), 128);   // neutral chroma
  EXPECT_EQ(f.v.at(2, 2), 128);
}

TEST(Frame, ChromaCoSiting) {
  Frame f(16, 16);
  f.u.at(3, 2) = 200;
  EXPECT_EQ(f.u_at_luma(6, 4), 200);
  EXPECT_EQ(f.u_at_luma(7, 5), 200);
  EXPECT_NE(f.u_at_luma(8, 4), 200);
}

TEST(Frame, EqualityAndEmpty) {
  Frame a(16, 16), b(16, 16);
  EXPECT_EQ(a, b);
  b.y.at(0, 0) = 99;
  EXPECT_NE(a, b);
  EXPECT_TRUE(Frame().empty());
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace dive::video
