#include "video/imu.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dive::video {
namespace {

TEST(Imu, SampleRateAndDuration) {
  const auto traj = EgoTrajectory::straight(10.0, 2.0);
  util::Rng rng(1);
  const auto samples = synthesize_imu(traj, {}, rng);
  EXPECT_NEAR(static_cast<double>(samples.size()), 201.0, 1.0);
  EXPECT_NEAR(samples[1].timestamp - samples[0].timestamp, 0.01, 1e-9);
}

TEST(Imu, GravityOnYAxis) {
  const auto traj = EgoTrajectory::parked(1.0);
  util::Rng rng(2);
  ImuOptions opts;
  opts.accel_noise = 0.0;
  opts.gyro_noise = 0.0;
  const auto samples = synthesize_imu(traj, opts, rng);
  for (const auto& s : samples) {
    EXPECT_DOUBLE_EQ(s.accel.y, 9.81);  // y-down frame: gravity positive
    EXPECT_DOUBLE_EQ(s.gyro.y, 0.0);
  }
}

TEST(Imu, YawRateDuringTurn) {
  const auto traj = EgoTrajectory::with_turn(8.0, 1.0, 45.0, 2.0, 1.0);
  util::Rng rng(3);
  ImuOptions opts;
  opts.gyro_noise = 0.0;
  const auto samples = synthesize_imu(traj, opts, rng);
  const double expected = 45.0 * M_PI / 180.0 / 2.0;
  // Mid-turn samples report the commanded yaw rate.
  const auto mid = mean_gyro(samples, 1.5, 2.5);
  EXPECT_NEAR(mid.y, expected, 1e-6);
  // Straight sections report none.
  const auto head = mean_gyro(samples, 0.0, 0.9);
  EXPECT_NEAR(head.y, 0.0, 1e-9);
}

TEST(Imu, LongitudinalAccelVisible) {
  const EgoTrajectory traj({{1.0, 2.0, 0.0}}, 1.5, 5.0);  // 2 m/s^2
  util::Rng rng(4);
  ImuOptions opts;
  opts.accel_noise = 0.0;
  const auto samples = synthesize_imu(traj, opts, rng);
  EXPECT_NEAR(samples[50].accel.z, 2.0, 1e-6);
}

TEST(Imu, MeanGyroEmptyWindow) {
  const auto traj = EgoTrajectory::straight(10.0, 1.0);
  util::Rng rng(5);
  const auto samples = synthesize_imu(traj, {}, rng);
  const auto g = mean_gyro(samples, 100.0, 101.0);
  EXPECT_DOUBLE_EQ(g.x, 0.0);
  EXPECT_DOUBLE_EQ(g.y, 0.0);
}

TEST(Imu, NoiseHasConfiguredScale) {
  const auto traj = EgoTrajectory::parked(20.0);
  util::Rng rng(6);
  ImuOptions opts;
  opts.gyro_noise = 0.01;
  const auto samples = synthesize_imu(traj, opts, rng);
  double sq = 0.0;
  for (const auto& s : samples) sq += s.gyro.z * s.gyro.z;
  const double rms = std::sqrt(sq / static_cast<double>(samples.size()));
  EXPECT_NEAR(rms, 0.01, 0.002);
}

}  // namespace
}  // namespace dive::video
