#include "video/renderer.h"

#include <gtest/gtest.h>

#include "video/image_ops.h"
#include "video/trajectory.h"

namespace dive::video {
namespace {

geom::PinholeCamera test_camera() { return {400.0, 256, 144}; }

Scene road_scene(std::uint64_t seed = 99) {
  Scene scene;
  util::Rng rng(seed);
  scene.add_buildings(-20, 200, rng);
  return scene;
}

TEST(Renderer, EmptySceneHasGroundAndSky) {
  const Renderer ren(test_camera());
  Scene empty;
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto result = ren.render(empty, 0.0, pose, 1);
  EXPECT_EQ(result.frame.width(), 256);
  EXPECT_EQ(result.frame.height(), 144);
  EXPECT_TRUE(result.objects.empty());
  // Sky at the top (bright), road at the bottom (dark asphalt).
  const double sky = region_mean(result.frame.y, 0, 0, 256, 20);
  const double road = region_mean(result.frame.y, 100, 120, 156, 144);
  EXPECT_GT(sky, 150.0);
  EXPECT_LT(road, 130.0);
}

TEST(Renderer, CarAnnotationMatchesProjection) {
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {0.0, 15.0};
  scene.add_object(car);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto result = ren.render(scene, 0.0, pose, 1);
  ASSERT_EQ(result.objects.size(), 1u);
  const auto& ann = result.objects[0];
  EXPECT_EQ(ann.cls, ObjectClass::kCar);
  EXPECT_NEAR(ann.depth, 15.0, 2.5);
  // Center of the box is near the image center column.
  EXPECT_NEAR(ann.pixel_box.center().x, 128.0, 6.0);
  // The projected width of a 1.8m car at 15m with f=400 is ~48px.
  EXPECT_NEAR(ann.pixel_box.width(), 48.0, 10.0);
}

TEST(Renderer, CarChromaSignature) {
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {0.0, 12.0};
  scene.add_object(car);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto r = ren.render(scene, 0.0, pose, 1);
  ASSERT_EQ(r.objects.size(), 1u);
  const auto& b = r.objects[0].pixel_box;
  const double u_mean = region_mean(
      r.frame.u, static_cast<int>(b.x0 / 2) + 1, static_cast<int>(b.y0 / 2) + 1,
      static_cast<int>(b.x1 / 2) - 1, static_cast<int>(b.y1 / 2) - 1);
  EXPECT_GT(u_mean, 145.0);  // car pushes U well above neutral
}

TEST(Renderer, OcclusionShrinksAnnotation) {
  Scene scene;
  SceneObject far_car;
  far_car.cls = ObjectClass::kCar;
  far_car.half = {0.9, 0.75, 2.2};
  far_car.track.base_xz = {0.0, 30.0};
  scene.add_object(far_car);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const int far_pixels = [&] {
    const auto r = ren.render(scene, 0.0, pose, 1);
    return r.objects.empty() ? 0 : r.objects[0].pixel_count;
  }();
  ASSERT_GT(far_pixels, 0);

  SceneObject near_car = far_car;
  near_car.track.base_xz = {0.0, 15.0};
  scene.add_object(near_car);
  const auto r2 = ren.render(scene, 0.0, pose, 1);
  int far_now = 0;
  for (const auto& o : r2.objects)
    if (o.object_index == 0) far_now = o.pixel_count;
  EXPECT_LT(far_now, far_pixels);  // partially or fully hidden
}

TEST(Renderer, DeterministicForSameSeed) {
  const Renderer ren(test_camera());
  const Scene scene = road_scene();
  geom::CameraPose pose;
  pose.position = {0, -1.5, 10};
  const auto a = ren.render(scene, 1.0, pose, 42);
  const auto b = ren.render(scene, 1.0, pose, 42);
  EXPECT_EQ(a.frame, b.frame);
  const auto c = ren.render(scene, 1.0, pose, 43);
  EXPECT_NE(a.frame, c.frame);  // sensor noise differs
}

TEST(Renderer, SensorNoiseToggle) {
  RenderOptions opts;
  opts.sensor_noise = false;
  const Renderer ren(test_camera(), opts);
  const Scene scene = road_scene();
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto a = ren.render(scene, 0.0, pose, 1);
  const auto b = ren.render(scene, 0.0, pose, 2);
  EXPECT_EQ(a.frame, b.frame);  // noise seed has no effect when disabled
}

TEST(Renderer, ForwardMotionExpandsImage) {
  // Content flows outward from the center when the camera advances:
  // a right-side object's box moves right.
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {3.0, 25.0};
  scene.add_object(car);
  const Renderer ren(test_camera());
  geom::CameraPose p0, p1;
  p0.position = {0, -1.5, 0};
  p1.position = {0, -1.5, 1.0};
  const auto a = ren.render(scene, 0.0, p0, 1);
  const auto b = ren.render(scene, 0.0, p1, 1);
  ASSERT_EQ(a.objects.size(), 1u);
  ASSERT_EQ(b.objects.size(), 1u);
  EXPECT_GT(b.objects[0].pixel_box.center().x, a.objects[0].pixel_box.center().x);
  EXPECT_GT(b.objects[0].pixel_box.area(), a.objects[0].pixel_box.area());
}

TEST(Renderer, TinyObjectsNotAnnotated) {
  RenderOptions opts;
  opts.min_annotation_pixels = 1000000;  // absurd threshold
  const Renderer ren(test_camera(), opts);
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {0.0, 15.0};
  scene.add_object(car);
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  EXPECT_TRUE(ren.render(scene, 0.0, pose, 1).objects.empty());
}

}  // namespace
}  // namespace dive::video
