#include "video/renderer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "video/image_ops.h"
#include "video/trajectory.h"

namespace dive::video {
namespace {

geom::PinholeCamera test_camera() { return {400.0, 256, 144}; }

Scene road_scene(std::uint64_t seed = 99) {
  Scene scene;
  util::Rng rng(seed);
  scene.add_buildings(-20, 200, rng);
  return scene;
}

TEST(Renderer, EmptySceneHasGroundAndSky) {
  const Renderer ren(test_camera());
  Scene empty;
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto result = ren.render(empty, 0.0, pose, 1);
  EXPECT_EQ(result.frame.width(), 256);
  EXPECT_EQ(result.frame.height(), 144);
  EXPECT_TRUE(result.objects.empty());
  // Sky at the top (bright), road at the bottom (dark asphalt).
  const double sky = region_mean(result.frame.y, 0, 0, 256, 20);
  const double road = region_mean(result.frame.y, 100, 120, 156, 144);
  EXPECT_GT(sky, 150.0);
  EXPECT_LT(road, 130.0);
}

TEST(Renderer, CarAnnotationMatchesProjection) {
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {0.0, 15.0};
  scene.add_object(car);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto result = ren.render(scene, 0.0, pose, 1);
  ASSERT_EQ(result.objects.size(), 1u);
  const auto& ann = result.objects[0];
  EXPECT_EQ(ann.cls, ObjectClass::kCar);
  EXPECT_NEAR(ann.depth, 15.0, 2.5);
  // Center of the box is near the image center column.
  EXPECT_NEAR(ann.pixel_box.center().x, 128.0, 6.0);
  // The projected width of a 1.8m car at 15m with f=400 is ~48px.
  EXPECT_NEAR(ann.pixel_box.width(), 48.0, 10.0);
}

TEST(Renderer, CarChromaSignature) {
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {0.0, 12.0};
  scene.add_object(car);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto r = ren.render(scene, 0.0, pose, 1);
  ASSERT_EQ(r.objects.size(), 1u);
  const auto& b = r.objects[0].pixel_box;
  const double u_mean = region_mean(
      r.frame.u, static_cast<int>(b.x0 / 2) + 1, static_cast<int>(b.y0 / 2) + 1,
      static_cast<int>(b.x1 / 2) - 1, static_cast<int>(b.y1 / 2) - 1);
  EXPECT_GT(u_mean, 145.0);  // car pushes U well above neutral
}

TEST(Renderer, OcclusionShrinksAnnotation) {
  Scene scene;
  SceneObject far_car;
  far_car.cls = ObjectClass::kCar;
  far_car.half = {0.9, 0.75, 2.2};
  far_car.track.base_xz = {0.0, 30.0};
  scene.add_object(far_car);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const int far_pixels = [&] {
    const auto r = ren.render(scene, 0.0, pose, 1);
    return r.objects.empty() ? 0 : r.objects[0].pixel_count;
  }();
  ASSERT_GT(far_pixels, 0);

  SceneObject near_car = far_car;
  near_car.track.base_xz = {0.0, 15.0};
  scene.add_object(near_car);
  const auto r2 = ren.render(scene, 0.0, pose, 1);
  int far_now = 0;
  for (const auto& o : r2.objects)
    if (o.object_index == 0) far_now = o.pixel_count;
  EXPECT_LT(far_now, far_pixels);  // partially or fully hidden
}

TEST(Renderer, DeterministicForSameSeed) {
  const Renderer ren(test_camera());
  const Scene scene = road_scene();
  geom::CameraPose pose;
  pose.position = {0, -1.5, 10};
  const auto a = ren.render(scene, 1.0, pose, 42);
  const auto b = ren.render(scene, 1.0, pose, 42);
  EXPECT_EQ(a.frame, b.frame);
  const auto c = ren.render(scene, 1.0, pose, 43);
  EXPECT_NE(a.frame, c.frame);  // sensor noise differs
}

TEST(Renderer, SensorNoiseToggle) {
  RenderOptions opts;
  opts.sensor_noise = false;
  const Renderer ren(test_camera(), opts);
  const Scene scene = road_scene();
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto a = ren.render(scene, 0.0, pose, 1);
  const auto b = ren.render(scene, 0.0, pose, 2);
  EXPECT_EQ(a.frame, b.frame);  // noise seed has no effect when disabled
}

TEST(Renderer, ForwardMotionExpandsImage) {
  // Content flows outward from the center when the camera advances:
  // a right-side object's box moves right.
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {3.0, 25.0};
  scene.add_object(car);
  const Renderer ren(test_camera());
  geom::CameraPose p0, p1;
  p0.position = {0, -1.5, 0};
  p1.position = {0, -1.5, 1.0};
  const auto a = ren.render(scene, 0.0, p0, 1);
  const auto b = ren.render(scene, 0.0, p1, 1);
  ASSERT_EQ(a.objects.size(), 1u);
  ASSERT_EQ(b.objects.size(), 1u);
  EXPECT_GT(b.objects[0].pixel_box.center().x, a.objects[0].pixel_box.center().x);
  EXPECT_GT(b.objects[0].pixel_box.area(), a.objects[0].pixel_box.area());
}

TEST(Renderer, TinyObjectsNotAnnotated) {
  RenderOptions opts;
  opts.min_annotation_pixels = 1000000;  // absurd threshold
  const Renderer ren(test_camera(), opts);
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.half = {0.9, 0.75, 2.2};
  car.track.base_xz = {0.0, 15.0};
  scene.add_object(car);
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  EXPECT_TRUE(ren.render(scene, 0.0, pose, 1).objects.empty());
}

// --- Hostile-condition rendering (DESIGN.md §16) ---

TEST(RenderOptionsValidate, RejectsBadConditionKnobs) {
  RenderOptions opts;
  opts.min_annotation_pixels = -1;
  EXPECT_THROW(Renderer(test_camera(), opts), std::invalid_argument);

  opts = RenderOptions{};
  opts.rain_streak_density = 1.5;
  EXPECT_THROW(Renderer(test_camera(), opts), std::invalid_argument);

  opts = RenderOptions{};
  opts.rain_streak_luma = -1.0;
  EXPECT_THROW(Renderer(test_camera(), opts), std::invalid_argument);
}

TEST(RendererConditions, NightDimsLumaAndCompressesChroma) {
  Scene day = road_scene();
  SceneParams night_params;
  night_params.conditions.luma_scale = 0.45;
  Scene night(night_params);
  {
    util::Rng rng(99);
    night.add_buildings(-20, 200, rng);
  }

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto rd = ren.render(day, 0.0, pose, 1);
  const auto rn = ren.render(night, 0.0, pose, 1);
  const double day_y = region_mean(rd.frame.y, 0, 0, 256, 144);
  const double night_y = region_mean(rn.frame.y, 0, 0, 256, 144);
  EXPECT_LT(night_y, 0.6 * day_y);

  // Chroma contrast collapses toward neutral at night: the spread of U
  // around 128 shrinks.
  double day_dev = 0.0, night_dev = 0.0;
  for (const std::uint8_t v : rd.frame.u.data) day_dev += std::abs(v - 128.0);
  for (const std::uint8_t v : rn.frame.u.data)
    night_dev += std::abs(v - 128.0);
  EXPECT_LT(night_dev, day_dev);
}

TEST(RendererConditions, FogHazesFarBeforeNear) {
  // Two identical cars, near and far: fog pulls the far one toward the
  // haze tone much harder than the near one.
  SceneParams fog_params;
  fog_params.conditions.fog_attenuation = 0.05;
  fog_params.conditions.fog_luma = 170.0;
  auto build = [](const SceneParams& p) {
    Scene scene(p);
    for (double z : {8.0, 45.0}) {
      SceneObject car;
      car.cls = ObjectClass::kCar;
      car.half = {0.9, 0.75, 2.2};
      car.track.base_xz = {z > 20 ? 2.5 : -2.5, z};
      scene.add_object(car);
    }
    return scene;
  };
  Scene clear = build(SceneParams{});
  Scene foggy = build(fog_params);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto rc = ren.render(clear, 0.0, pose, 1);
  const auto rf = ren.render(foggy, 0.0, pose, 1);
  ASSERT_EQ(rc.objects.size(), 2u);

  // Per-object |luma - fog_luma| inside the box: fog moves far objects
  // much closer to the haze tone.
  auto haze_gap = [&](const RenderResult& r, std::size_t i) {
    const auto& b = r.objects[i].pixel_box;
    return std::abs(region_mean(r.frame.y, static_cast<int>(b.x0) + 1,
                                static_cast<int>(b.y0) + 1,
                                static_cast<int>(b.x1) - 1,
                                static_cast<int>(b.y1) - 1) -
                    170.0);
  };
  std::size_t near_i = rc.objects[0].depth < rc.objects[1].depth ? 0 : 1;
  std::size_t far_i = 1 - near_i;
  if (rf.objects.size() == 2) {
    const double near_shift = haze_gap(rc, near_i) - haze_gap(rf, near_i);
    const double far_shift = haze_gap(rc, far_i) - haze_gap(rf, far_i);
    EXPECT_GT(far_shift, near_shift);
  } else {
    // The far car hazed out below the annotation threshold entirely —
    // the strongest possible form of "far hazes first".
    ASSERT_EQ(rf.objects.size(), 1u);
    EXPECT_NEAR(rf.objects[0].depth, rc.objects[near_i].depth, 1.0);
  }
}

TEST(RendererConditions, RainStreaksDeterministicPerFrameSeed) {
  RenderOptions opts;
  opts.rain_streak_density = 0.5;
  const Renderer rainy(test_camera(), opts);
  const Renderer dry(test_camera());
  Scene scene = road_scene();
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};

  const auto a = rainy.render(scene, 0.0, pose, 7);
  const auto b = rainy.render(scene, 0.0, pose, 7);
  EXPECT_EQ(a.frame.y.data, b.frame.y.data);  // same seed -> same streaks

  const auto c = rainy.render(scene, 0.0, pose, 8);
  EXPECT_NE(a.frame.y.data, c.frame.y.data);  // streaks move with the seed

  const auto d = dry.render(scene, 0.0, pose, 7);
  EXPECT_NE(a.frame.y.data, d.frame.y.data);  // streaks actually drawn
  EXPECT_EQ(a.frame.u.data, d.frame.u.data);  // luma-only artifact
}

TEST(RendererConditions, TunnelStepsGlobalLumaAtEntry) {
  SceneParams p;
  TunnelSegment seg;
  seg.enter_t = 1.0;
  seg.exit_t = 2.0;
  seg.luma_scale = 0.25;
  p.conditions.tunnels = {seg};
  Scene scene(p);

  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto before = ren.render(scene, 0.9, pose, 1);
  const auto inside = ren.render(scene, 1.1, pose, 1);
  const auto after = ren.render(scene, 2.1, pose, 1);
  const double y_before = region_mean(before.frame.y, 0, 0, 256, 144);
  const double y_inside = region_mean(inside.frame.y, 0, 0, 256, 144);
  const double y_after = region_mean(after.frame.y, 0, 0, 256, 144);
  EXPECT_LT(y_inside, 0.5 * y_before);
  EXPECT_GT(y_after, 0.9 * y_before);
}

TEST(RendererConditions, DefaultConditionsAreByteIdentical) {
  // The no-op guard: explicit default conditions must not perturb a
  // single byte relative to the implicit defaults.
  Scene a = road_scene();
  SceneParams p;
  p.conditions = SceneConditions{};
  Scene b(p);
  {
    util::Rng rng(99);
    b.add_buildings(-20, 200, rng);
  }
  const Renderer ren(test_camera());
  geom::CameraPose pose;
  pose.position = {0, -1.5, 0};
  const auto ra = ren.render(a, 0.0, pose, 3);
  const auto rb = ren.render(b, 0.0, pose, 3);
  EXPECT_EQ(ra.frame.y.data, rb.frame.y.data);
  EXPECT_EQ(ra.frame.u.data, rb.frame.u.data);
  EXPECT_EQ(ra.frame.v.data, rb.frame.v.data);
}

}  // namespace
}  // namespace dive::video
