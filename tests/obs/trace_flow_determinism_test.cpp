// Causal-tracing determinism (the tentpole acceptance check): the
// multi-agent serve scenario with observability attached must export
// byte-identical sim-clock traces, frame ledgers, and metric timelines
// for every encoder thread count. Flow ids are ledger mint sequences
// assigned in global capture order on the orchestrating thread, and
// every span/stage timestamp is simulated — nothing observable may
// depend on worker interleaving.
//
// The same run also locks the attribution contract: every terminal
// frame's stage intervals sum to its end-to-end latency (100%, well
// past the >= 95% acceptance floor) and every dropped-or-late frame
// names a dominant stage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/serve_scenario.h"
#include "obs/obs.h"

namespace dive {
namespace {

struct ObsExports {
  std::string trace;
  std::string ledger;
  std::string timeline;
  std::vector<obs::FrameRecord> records;
  long completed = 0, dropped = 0, mot = 0;
};

/// Heavier load than the tier-1 serve tests (20 sessions at ~12 fps =
/// ~240 inferred frames/s against the default node's ~163 f/s) so the
/// scenario exercises admission waits, deadline drops, and MOT
/// fallbacks — the paths whose observability is under test — while
/// staying fast enough for the differential label.
ObsExports run_observed(int encoder_threads, bool roi_metadata) {
  obs::ObsContext ctx;
  ctx.tracer.set_enabled(true);
  obs::MetricsSnapshotter timeline(&ctx.metrics, util::from_millis(250.0));

  harness::ServeScenarioOptions opt = harness::default_serve_options();
  opt.sessions = 20;
  opt.frames_per_session = 12;
  opt.encoder_threads = encoder_threads;
  opt.roi_metadata = roi_metadata;
  opt.obs = &ctx;
  opt.timeline = &timeline;
  const harness::ServeScenarioResult r = harness::run_serve_scenario(opt);

  ObsExports out;
  out.trace = ctx.tracer.to_chrome_json(obs::TraceClock::kSim);
  out.ledger = ctx.ledger.to_json();
  out.timeline = timeline.to_csv();
  out.records = ctx.ledger.records();
  out.completed = r.completed;
  out.dropped = r.dropped_queue + r.dropped_deadline + r.dropped_uplink;
  out.mot = r.mot;
  return out;
}

TEST(TraceFlowDeterminism, ExportsByteIdenticalAcrossEncoderThreads) {
  const ObsExports one = run_observed(1, false);
  ASSERT_FALSE(one.trace.empty());
  ASSERT_FALSE(one.records.empty());
  for (const int threads : {2, 8}) {
    const ObsExports other = run_observed(threads, false);
    EXPECT_EQ(one.trace, other.trace) << "threads=" << threads;
    EXPECT_EQ(one.ledger, other.ledger) << "threads=" << threads;
    EXPECT_EQ(one.timeline, other.timeline) << "threads=" << threads;
  }
}

TEST(TraceFlowDeterminism, RoiLaneExportsAreDeterministicToo) {
  const ObsExports one = run_observed(1, true);
  const ObsExports eight = run_observed(8, true);
  EXPECT_EQ(one.trace, eight.trace);
  EXPECT_EQ(one.ledger, eight.ledger);
  EXPECT_EQ(one.timeline, eight.timeline);
  // The sidecar stage appears exactly on the metadata lane.
  EXPECT_NE(one.ledger.find("\"stage\":\"sidecar\""), std::string::npos);
}

TEST(TraceFlowDeterminism, StagesAttributeEveryTerminalFrame) {
  const ObsExports run = run_observed(1, false);
  // The load must actually exercise the contested paths.
  EXPECT_GT(run.completed, 0);
  EXPECT_GT(run.dropped, 0) << "load too light to test the autopsy";

  long terminal = 0, autopsied = 0;
  for (const obs::FrameRecord& rec : run.records) {
    if (rec.outcome == obs::FrameOutcome::kPending) continue;
    ++terminal;
    // Stage intervals tile [capture, finished] with no gaps: attribution
    // is exact, not just >= 95%.
    EXPECT_NEAR(rec.attributed_ms(), rec.e2e_ms(), 1e-9)
        << "seq " << rec.ctx.sequence << " outcome "
        << obs::to_string(rec.outcome);
    if (obs::is_drop(rec.outcome) ||
        rec.outcome == obs::FrameOutcome::kCompletedLate) {
      ++autopsied;
      // Every miss names a cause: at least one stage recorded, and the
      // dominant one holds real time.
      EXPECT_GT(rec.attributed_ms(), 0.0);
      EXPECT_GT(rec.stage_ms(rec.dominant_stage()), 0.0);
    }
  }
  EXPECT_EQ(terminal, static_cast<long>(run.records.size()))
      << "every minted frame must reach a terminal outcome after drain";
  EXPECT_GT(autopsied, 0);
}

TEST(TraceFlowDeterminism, FlowChainsAreWellFormedInTheExport) {
  const ObsExports run = run_observed(1, false);
  // Chrome flow semantics: every chain is s (t)* f with a shared id.
  // Count phases per id with a cheap scan (the export is one line).
  std::size_t starts = 0, finishes = 0;
  for (std::size_t pos = run.trace.find("\"cat\":\"flow\"");
       pos != std::string::npos;
       pos = run.trace.find("\"cat\":\"flow\"", pos + 1)) {
    // The ph key precedes cat within the same object in our emitter.
    const std::size_t obj = run.trace.rfind("{\"ph\":\"", pos);
    ASSERT_NE(obj, std::string::npos);
    const char ph = run.trace[obj + 7];
    if (ph == 's') ++starts;
    if (ph == 'f') ++finishes;
  }
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);  // every opened chain terminates
}

}  // namespace
}  // namespace dive
