// Observability layer: registry semantics, deterministic exports, tracer
// span bookkeeping, and — under the tsan preset — concurrent recording
// from the encoder worker pool. The determinism tests pin the acceptance
// contract: a same-seed run exports byte-identical metrics and (sim
// clock) traces for every encode thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "codec/encoder.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dive::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeDistributionBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("codec.frames");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5);
  c.set(2);
  EXPECT_EQ(c.value(), 2);

  Gauge& g = reg.gauge("agent.last_eta", "ratio");
  g.set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);

  Distribution& d = reg.distribution("net.transmit_ms", "ms");
  for (double x : {3.0, 1.0, 2.0}) d.add(x);
  const Distribution::Summary s = d.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Metrics, HandlesAreStableAndNamesAreKindBound) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);  // same handle on re-request
  EXPECT_THROW(reg.gauge("x.count"), std::logic_error);
  EXPECT_THROW(reg.distribution("x.count"), std::logic_error);
}

TEST(Metrics, EmptyDistributionSummaryIsZeros) {
  MetricsRegistry reg;
  const Distribution::Summary s = reg.distribution("empty").summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Metrics, ExportsAreSortedAndWellFormed) {
  MetricsRegistry reg;
  reg.counter("b.count").add(7);
  reg.counter("a.count", "bytes").add(1);
  reg.gauge("c.gauge", "ratio").set(0.5);
  reg.distribution("d.dist", "ms").add(10.0);

  const std::string json = reg.to_json();
  // Counters appear sorted by name inside their section.
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"distributions\""), std::string::npos);

  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("name,kind,unit,count,value,min,max,mean,p50,p90,p99",
                      0),
            0u);
  // One header plus four metric rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);

  EXPECT_NE(reg.to_table().to_string().find("a.count"), std::string::npos);
}

TEST(Metrics, ExportIsOrderIndependent) {
  MetricsRegistry fwd, rev;
  std::vector<double> xs;
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  for (double x : xs) fwd.distribution("d", "ms").add(x);
  std::reverse(xs.begin(), xs.end());
  for (double x : xs) rev.distribution("d", "ms").add(x);
  EXPECT_EQ(fwd.to_json(), rev.to_json());
  EXPECT_EQ(fwd.to_csv(), rev.to_csv());
}

// Exercised by the tsan preset: concurrent recording through shared
// handles must be race-free and lose no updates.
TEST(Metrics, ConcurrentRecordingFromWorkerPool) {
  MetricsRegistry reg;
  Counter& c = reg.counter("pool.count");
  Gauge& g = reg.gauge("pool.gauge");
  Distribution& d = reg.distribution("pool.dist");

  util::ThreadPool pool(4);
  constexpr int kIters = 2000;
  pool.parallel_for(0, kIters, [&](int i) {
    c.add();
    g.set(static_cast<double>(i));
    d.add(static_cast<double>(i % 50));
  });
  EXPECT_EQ(c.value(), kIters);
  EXPECT_EQ(d.count(), static_cast<std::size_t>(kIters));
  const Distribution::Summary s = d.summary();
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 49.0);
}

// Handle *creation* racing against recording (two threads asking the
// registry for overlapping names while others record).
TEST(Metrics, ConcurrentHandleCreation) {
  MetricsRegistry reg;
  util::ThreadPool pool(4);
  pool.parallel_for(0, 256, [&](int i) {
    reg.counter("shared.c" + std::to_string(i % 8)).add();
    reg.distribution("shared.d" + std::to_string(i % 8))
        .add(static_cast<double>(i));
  });
  EXPECT_EQ(reg.size(), 16u);
  std::int64_t total = 0;
  for (int k = 0; k < 8; ++k)
    total += reg.counter("shared.c" + std::to_string(k)).value();
  EXPECT_EQ(total, 256);
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.begin_span("x", kTrackAgent), -1);
  tracer.span_at("y", kTrackAgent, 0, 10);
  tracer.instant("z", kTrackAgent, 5);
  { ScopedSpan span(&tracer, "scoped"); }
  { ScopedSpan inert; inert.arg("k", 1); }  // default-constructed: no-op
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Tracer, ScopedSpansNestWithParents) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sim_now(1000);
  {
    ScopedSpan outer(&tracer, "agent.frame", kTrackAgent);
    {
      ScopedSpan inner(&tracer, "agent.encode", kTrackAgent);
      inner.arg("qp", 26);
    }
  }
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "agent.frame");
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_FALSE(events[0].open);
  EXPECT_EQ(events[1].name, "agent.encode");
  EXPECT_EQ(events[1].parent, 0);
  EXPECT_EQ(events[1].sim_begin, 1000);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "qp");
  EXPECT_EQ(events[1].args[0].second, 26);
  EXPECT_GE(events[0].wall_end_ns, events[0].wall_begin_ns);
}

TEST(Tracer, SpanAtAndInstantCarrySimInterval) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.span_at("net.transmit", kTrackNet, 2000, 2500, {{"bytes", 128}});
  tracer.instant("serve.drop_queue", kTrackServe, 3000, {{"session", 2}});
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sim_begin, 2000);
  EXPECT_EQ(events[0].sim_end, 2500);
  EXPECT_EQ(events[0].wall_begin_ns, 0u);  // sim-only
  EXPECT_EQ(events[1].sim_begin, events[1].sim_end);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

/// Minimal structural validation: balanced braces/brackets outside
/// strings and the mandatory Chrome trace-event keys.
void expect_valid_chrome_json(const std::string& json) {
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  long brace = 0, bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++brace;
    else if (c == '}') --brace;
    else if (c == '[') ++bracket;
    else if (c == ']') --bracket;
    EXPECT_GE(brace, 0);
    EXPECT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_FALSE(in_string);
}

TEST(Tracer, ChromeExportIsStructurallyValidJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sim_now(500);
  {
    ScopedSpan span(&tracer, "agent.frame", kTrackAgent);
    span.arg("index", 7);
    tracer.span_at("net.transmit", kTrackNet, 500, 900, {{"bytes", 42}});
  }
  tracer.instant("serve.queued", kTrackSessionBase + 3, 950);

  for (TraceClock clock : {TraceClock::kSim, TraceClock::kWall}) {
    const std::string json = tracer.to_chrome_json(clock);
    expect_valid_chrome_json(json);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"agent.frame\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"agent\""), std::string::npos);
  }
  // Sim-only events are present on the sim clock, skipped on wall.
  EXPECT_NE(tracer.to_chrome_json(TraceClock::kSim).find("net.transmit"),
            std::string::npos);
  EXPECT_EQ(tracer.to_chrome_json(TraceClock::kWall).find("net.transmit"),
            std::string::npos);
  // Session tracks get readable names.
  EXPECT_NE(tracer.to_chrome_json(TraceClock::kSim).find("session-3"),
            std::string::npos);
}

// tsan preset: spans opened/closed concurrently from pool lanes.
TEST(Tracer, ConcurrentSpansFromWorkerPool) {
  Tracer tracer;
  tracer.set_enabled(true);
  util::ThreadPool pool(4);
  pool.parallel_for(0, 512, [&](int i) {
    ScopedSpan span(&tracer, "codec.lane", kTrackCodec);
    span.arg("i", i);
  });
  EXPECT_EQ(tracer.event_count(), 512u);
  for (const TraceEvent& ev : tracer.snapshot()) EXPECT_FALSE(ev.open);
}

// ----------------------------------------------- end-to-end determinism

video::Frame synthetic_frame(int w, int h, std::uint64_t seed, int shift) {
  video::Frame f(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int xs = x - shift;
      double v = 60 + 0.3 * xs + 0.2 * y;
      if ((xs / 20 + y / 14) % 2 == 0) v += 55;
      v += rng.uniform(-3, 3);
      f.y.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  return f;
}

/// Runs a short encode sequence with obs attached and returns the
/// deterministic export bundle (metrics JSON + sim-clock trace).
std::string obs_export_for_thread_count(int threads) {
  ObsContext ctx;
  ctx.tracer.set_enabled(true);
  codec::Encoder enc({.width = 128, .height = 64, .threads = threads});
  enc.set_obs(&ctx);
  for (int i = 0; i < 4; ++i) {
    ctx.tracer.set_sim_now(i * 33'000);
    enc.encode(synthetic_frame(128, 64, 700 + static_cast<std::uint64_t>(i),
                               i * 3),
               26);
  }
  ctx.tracer.set_sim_now(4 * 33'000);
  enc.encode_to_target(synthetic_frame(128, 64, 704, 12), 6000);
  return ctx.metrics.to_json() + "\n---\n" +
         ctx.tracer.to_chrome_json(TraceClock::kSim);
}

// The acceptance contract: same seed, different encode_threads, byte-
// identical metric and trace exports (wall data is excluded by kSim).
TEST(ObsDeterminism, ExportBytesIdenticalAcrossEncodeThreadCounts) {
  const std::string one = obs_export_for_thread_count(1);
  const std::string four = obs_export_for_thread_count(4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("codec.frames"), std::string::npos);
#if !defined(DIVE_OBS_DISABLED)
  // Spans exist only when the macro path is compiled in; the metrics
  // and byte-identity checks above hold in both modes.
  EXPECT_NE(one.find("codec.encode"), std::string::npos);
#endif
}

// --------------------------------------------------- frame causality

TEST(FrameContext, DefaultIsInvalidAndFlowIdIsSequence) {
  FrameTraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  ctx.sequence = 42;
  ctx.session_id = 3;
  ctx.frame_index = 7;
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.flow_id(), 42u);
}

TEST(Tracer, FlowEventsChainAcrossTracks) {
  Tracer tracer;
  tracer.set_enabled(true);
  // Three member spans of flow 5 on three tracks, plus one span of
  // flow 9 (single member: no arrows) and one unflowed span.
  tracer.span_at("agent.encode", kTrackSessionBase, 0, 16'000, {}, 5);
  tracer.span_at("net.transmit", kTrackNet, 16'000, 36'000, {}, 5);
  tracer.span_at("serve.infer", kTrackSessionBase, 50'000, 67'000, {}, 5);
  tracer.span_at("edge.process", kTrackEdge, 70'000, 80'000, {}, 9);
  tracer.span_at("agent.frame", kTrackAgent, 0, 80'000);

  const std::string json = tracer.to_chrome_json(TraceClock::kSim);
  expect_valid_chrome_json(json);
  // One s, one t, one f for flow 5, bound to the enclosing slice on the
  // non-first members; nothing for the single-member flow 9.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\",\"id\":5"), std::string::npos);
  EXPECT_EQ(json.find("\"id\":9"), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // s before t before f (emission follows the sorted output order).
  const std::size_t s_at = json.find("\"ph\":\"s\"");
  const std::size_t t_at = json.find("\"ph\":\"t\"");
  const std::size_t f_at = json.find("\"ph\":\"f\"");
  EXPECT_LT(s_at, t_at);
  EXPECT_LT(t_at, f_at);
}

TEST(Tracer, ScopedSpanFlowTagsEventAndArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sim_now(100);
  FrameTraceContext ctx{/*session_id=*/2, /*frame_index=*/11,
                        /*sequence=*/77};
  {
    ScopedSpan span(&tracer, "agent.frame", kTrackAgent);
    span.flow(ctx);
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].flow, 77u);
  // flow() also attaches session/frame args for readability.
  const std::string json = tracer.to_chrome_json(TraceClock::kSim);
  EXPECT_NE(json.find("\"session\":2"), std::string::npos);
  EXPECT_NE(json.find("\"frame\":11"), std::string::npos);

  // An invalid context is a no-op tag.
  tracer.clear();
  {
    ScopedSpan span(&tracer, "agent.frame", kTrackAgent);
    span.flow(FrameTraceContext{});
  }
  EXPECT_EQ(tracer.snapshot().at(0).flow, 0u);
}

// ------------------------------------------------------- frame ledger

TEST(FrameLedger, MintsMonotoneSequencesInCallOrder) {
  FrameLedger ledger;
  const FrameTraceContext a = ledger.begin_frame(0, 0, 0);
  const FrameTraceContext b = ledger.begin_frame(1, 0, 10);
  const FrameTraceContext c = ledger.begin_frame(0, 1, 20);
  EXPECT_EQ(a.sequence, 1u);
  EXPECT_EQ(b.sequence, 2u);
  EXPECT_EQ(c.sequence, 3u);
  EXPECT_TRUE(a.valid());
  ASSERT_EQ(ledger.size(), 3u);
  const auto records = ledger.records();
  EXPECT_EQ(records[1].ctx.session_id, 1u);
  EXPECT_EQ(records[2].capture, 20);
}

TEST(FrameLedger, StagesAttributeTheFullEndToEnd) {
  FrameLedger ledger;
  const FrameTraceContext ctx =
      ledger.begin_frame(0, 0, 0, /*deadline=*/400'000);
  ledger.stage(ctx, FrameStage::kEncode, 0, 16'000);
  ledger.stage(ctx, FrameStage::kUplinkQueue, 16'000, 16'000);
  ledger.stage(ctx, FrameStage::kTransmit, 16'000, 36'000);
  ledger.stage(ctx, FrameStage::kPropagation, 36'000, 46'000);
  ledger.stage(ctx, FrameStage::kAdmissionWait, 46'000, 48'000);
  ledger.stage(ctx, FrameStage::kBatchWait, 48'000, 50'000);
  ledger.stage(ctx, FrameStage::kInference, 50'000, 67'000);
  ledger.stage(ctx, FrameStage::kResult, 67'000, 75'000);
  ledger.outcome(ctx, FrameOutcome::kCompleted, 75'000);

  const FrameRecord rec = ledger.records().at(0);
  EXPECT_EQ(rec.outcome, FrameOutcome::kCompleted);
  EXPECT_DOUBLE_EQ(rec.e2e_ms(), 75.0);
  EXPECT_DOUBLE_EQ(rec.attributed_ms(), 75.0);  // gapless tiling
  EXPECT_EQ(rec.dominant_stage(), FrameStage::kTransmit);  // 20 ms wins
  EXPECT_DOUBLE_EQ(rec.stage_ms(FrameStage::kTransmit), 20.0);
  EXPECT_TRUE(ledger.autopsies().empty());
}

TEST(FrameLedger, CompletionPastDeadlineBecomesLate) {
  FrameLedger ledger;
  const FrameTraceContext ctx =
      ledger.begin_frame(0, 0, 0, /*deadline=*/50'000);
  ledger.stage(ctx, FrameStage::kEncode, 0, 16'000);
  ledger.stage(ctx, FrameStage::kAdmissionWait, 16'000, 60'000);
  ledger.outcome(ctx, FrameOutcome::kCompleted, 70'000);
  const FrameRecord rec = ledger.records().at(0);
  EXPECT_EQ(rec.outcome, FrameOutcome::kCompletedLate);
  const auto autopsies = ledger.autopsies();
  ASSERT_EQ(autopsies.size(), 1u);
  EXPECT_EQ(autopsies[0].dominant, FrameStage::kAdmissionWait);
  EXPECT_DOUBLE_EQ(autopsies[0].dominant_ms, 44.0);
}

TEST(FrameLedger, DropsCarryTheirDominantStage) {
  FrameLedger ledger;
  const FrameTraceContext ctx = ledger.begin_frame(2, 5, 0);
  ledger.stage(ctx, FrameStage::kEncode, 0, 16'000);
  ledger.stage(ctx, FrameStage::kTransmit, 16'000, 300'000);
  ledger.outcome(ctx, FrameOutcome::kDroppedUplink, 300'000);
  const auto autopsies = ledger.autopsies();
  ASSERT_EQ(autopsies.size(), 1u);
  EXPECT_EQ(autopsies[0].outcome, FrameOutcome::kDroppedUplink);
  EXPECT_EQ(autopsies[0].dominant, FrameStage::kTransmit);
  EXPECT_TRUE(is_drop(FrameOutcome::kDroppedUplink));
  EXPECT_FALSE(is_drop(FrameOutcome::kCompletedLate));
}

TEST(FrameLedger, InvalidContextAndUnknownSequenceAreIgnored) {
  FrameLedger ledger;
  ledger.stage(FrameTraceContext{}, FrameStage::kEncode, 0, 1000);
  FrameTraceContext bogus;
  bogus.sequence = 999;
  ledger.stage(bogus, FrameStage::kEncode, 0, 1000);
  ledger.outcome(bogus, FrameOutcome::kCompleted, 1000);
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(FrameLedger, JsonExportIsDeterministicAndWellFormed) {
  auto build = [] {
    FrameLedger ledger;
    const FrameTraceContext a = ledger.begin_frame(0, 0, 0, 400'000);
    ledger.stage(a, FrameStage::kEncode, 0, 16'000);
    ledger.outcome(a, FrameOutcome::kCompleted, 40'000);
    const FrameTraceContext b = ledger.begin_frame(1, 0, 5'000);
    ledger.stage(b, FrameStage::kEncode, 5'000, 21'000);
    ledger.outcome(b, FrameOutcome::kDroppedQueue, 60'000);
    return ledger.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());
  EXPECT_NE(json.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"dropped_queue\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"encode\""), std::string::npos);
}

TEST(FrameLedger, TablesAndPublishSummarize) {
  FrameLedger ledger;
  for (int i = 0; i < 4; ++i) {
    const FrameTraceContext ctx = ledger.begin_frame(
        static_cast<std::uint32_t>(i % 2), static_cast<std::uint64_t>(i),
        i * 10'000, i * 10'000 + 100'000);
    ledger.stage(ctx, FrameStage::kEncode, i * 10'000, i * 10'000 + 16'000);
    if (i == 3) {
      ledger.outcome(ctx, FrameOutcome::kDroppedDeadline,
                     i * 10'000 + 20'000);
    } else {
      ledger.outcome(ctx, FrameOutcome::kCompleted, i * 10'000 + 40'000);
    }
  }
  const std::string stages = ledger.stage_table().to_string();
  EXPECT_NE(stages.find("encode"), std::string::npos);
  const std::string sessions = ledger.session_table().to_string();
  EXPECT_NE(sessions.find("0"), std::string::npos);
  const std::string autopsy = ledger.autopsy_table().to_string();
  EXPECT_NE(autopsy.find("dropped_deadline"), std::string::npos);

  MetricsRegistry reg;
  ledger.publish(reg);
  EXPECT_EQ(reg.counter("obs.ledger.frames").value(), 4);
  EXPECT_EQ(reg.counter("obs.ledger.completed").value(), 3);
  EXPECT_EQ(reg.counter("obs.ledger.dropped").value(), 1);
}

// -------------------------------------------------- metric snapshotter

TEST(MetricsSnapshotter, EmitsOneRowPerBoundaryCrossed) {
  MetricsRegistry reg;
  Counter& frames = reg.counter("agent.frames");
  MetricsSnapshotter snap(&reg, 10'000);
  EXPECT_EQ(snap.next(), 0);

  frames.add(3);
  snap.sample(5'000);  // crosses the t=0 boundary only
  ASSERT_EQ(snap.rows().size(), 1u);
  EXPECT_EQ(snap.rows()[0].at, 0);

  frames.add(2);
  snap.sample(35'000);  // crosses 10k, 20k, 30k
  ASSERT_EQ(snap.rows().size(), 4u);
  EXPECT_EQ(snap.rows()[3].at, 30'000);
  // Rows carry the value at sample time (5 for all three crossings).
  EXPECT_DOUBLE_EQ(snap.rows()[3].values.at(0).second, 5.0);
  EXPECT_EQ(snap.next(), 40'000);

  snap.sample(35'000);  // no boundary, no row
  EXPECT_EQ(snap.rows().size(), 4u);
  snap.force_sample(36'000);  // unconditional drain row
  EXPECT_EQ(snap.rows().size(), 5u);
  EXPECT_EQ(snap.rows()[4].at, 36'000);
}

TEST(MetricsSnapshotter, CsvIsColumnUnionAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("agent.frames").add(1);
  MetricsSnapshotter snap(&reg, 1'000);
  snap.force_sample(0);
  reg.gauge("serve.queue_depth_mean").set(2.5);  // appears later
  reg.distribution("serve.e2e_ms", "ms").add(80.0);
  snap.force_sample(1'000);

  const std::string csv = snap.to_csv();
  EXPECT_EQ(csv, snap.to_csv());
  // Header = time_ms + sorted union; first row misses the late columns.
  EXPECT_NE(csv.find("time_ms"), std::string::npos);
  EXPECT_NE(csv.find("agent.frames"), std::string::npos);
  EXPECT_NE(csv.find("serve.e2e_ms.p99"), std::string::npos);
  EXPECT_NE(csv.find("serve.queue_depth_mean"), std::string::npos);

  const std::string table =
      snap.to_table({"agent.frames", "serve.queue_depth_mean"}).to_string();
  EXPECT_NE(table.find("agent.frames"), std::string::npos);
  EXPECT_NE(table.find("-"), std::string::npos);  // missing-cell marker
}

// ------------------------------------------ SampleSet query contract

// tsan preset: after an explicit sort_samples(), const quantile queries
// are safe from multiple threads (see the contract in util/stats.h).
TEST(SampleSetContract, SortedConstQueriesAreThreadSafe) {
  util::SampleSet samples;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) samples.add(rng.uniform(0.0, 1.0));
  samples.sort_samples();

  util::ThreadPool pool(4);
  std::vector<double> results(64);
  pool.parallel_for(0, 64, [&](int i) {
    results[static_cast<std::size_t>(i)] =
        samples.quantile(static_cast<double>(i) / 64.0) +
        samples.cdf_at(0.5);
  });
  for (std::size_t i = 1; i < 32; ++i)
    EXPECT_GE(results[i] , results[0] - 1.0);  // sanity: all finite
}

}  // namespace
}  // namespace dive::obs
