// Unit tests of the RoiGate planning/inference policy (roi/gate.h):
// full-frame fallbacks, refresh cadence, horizon band, scan stripes,
// coverage threshold, the scheduler work floor, and the process() path's
// jitter pairing against a plain EdgeServer.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codec/encoder.h"
#include "edge/server.h"
#include "roi/gate.h"
#include "roi/metadata.h"
#include "util/rng.h"
#include "video/frame.h"

namespace dive::roi {
namespace {

constexpr int kW = 128;
constexpr int kH = 96;

/// Sidecar with a quiet motion field (all-zero MVs, nothing skipped) and
/// no regions unless added — plans against it light only policy tiles
/// (horizon band, stripes).
RoiMetadata quiet_meta() {
  RoiMetadata m;
  m.mb_cols = kW / codec::kMacroblockSize;
  m.mb_rows = kH / codec::kMacroblockSize;
  m.mvs.assign(static_cast<std::size_t>(m.mb_cols) * m.mb_rows, {0, 0});
  m.skip.assign(m.mvs.size(), 0);
  return m;
}

RoiGateConfig quiet_config() {
  RoiGateConfig cfg;
  cfg.tile_px = 16;
  cfg.halo_tiles = 0;
  cfg.full_refresh_interval = 0;  // no periodic full pass
  cfg.scan_stripes = 0;
  cfg.horizon_rows = 0;
  return cfg;
}

bool tile_at(const GatePlan& p, int tx, int ty) {
  return p.tiles[static_cast<std::size_t>(ty) * p.tile_cols + tx] != 0;
}

TEST(RoiGatePlan, NullOrMismatchedMetadataFallsBackToFullFrame) {
  edge::EdgeServer server({}, 1);
  RoiGate gate(quiet_config(), &server);
  EXPECT_FALSE(gate.plan(nullptr, kW, kH).gated);
  const RoiMetadata wrong = quiet_meta();
  EXPECT_FALSE(gate.plan(&wrong, kW * 2, kH).gated);  // dimension mismatch
  EXPECT_EQ(gate.plan(nullptr, kW, kH).work, 1.0);
}

TEST(RoiGatePlan, FullRefreshCadence) {
  edge::EdgeServer server({}, 1);
  RoiGateConfig cfg = quiet_config();
  cfg.full_refresh_interval = 4;
  cfg.horizon_rows = 1;  // something to gate on between refreshes
  RoiGate gate(cfg, &server);
  const RoiMetadata m = quiet_meta();
  for (int k = 0; k < 12; ++k) {
    const GatePlan p = gate.plan(&m, kW, kH);
    EXPECT_EQ(p.gated, k % 4 != 0) << "frame " << k;
  }
  EXPECT_EQ(gate.stats().planned, 12);
}

TEST(RoiGatePlan, HorizonBandStaysLit) {
  edge::EdgeServer server({}, 1);
  RoiGateConfig cfg = quiet_config();
  cfg.horizon_rows = 1;
  RoiGate gate(cfg, &server);
  const RoiMetadata m = quiet_meta();
  const GatePlan p = gate.plan(&m, kW, kH);
  ASSERT_TRUE(p.gated);
  const int horizon_ty = (kH / 2) / cfg.tile_px;
  for (int tx = 0; tx < p.tile_cols; ++tx)
    EXPECT_TRUE(tile_at(p, tx, horizon_ty)) << "tx=" << tx;
  // Only the band is lit: work is the floored fraction of one tile row.
  EXPECT_LT(p.coverage, 0.3);
  EXPECT_GE(p.work, cfg.min_work_fraction);
}

TEST(RoiGatePlan, ScanStripesRotate) {
  edge::EdgeServer server({}, 1);
  RoiGateConfig cfg = quiet_config();
  cfg.scan_stripes = 4;
  RoiGate gate(cfg, &server);
  const RoiMetadata m = quiet_meta();
  for (int k = 0; k < 8; ++k) {
    const GatePlan p = gate.plan(&m, kW, kH);
    ASSERT_TRUE(p.gated) << "frame " << k;
    for (int tx = 0; tx < p.tile_cols; ++tx) {
      const bool expect_lit = tx % 4 == k % 4;
      EXPECT_EQ(tile_at(p, tx, 0), expect_lit) << "k=" << k << " tx=" << tx;
    }
  }
}

TEST(RoiGatePlan, MotionDeviationLightsOutliersNotEgoMotion) {
  edge::EdgeServer server({}, 1);
  RoiGateConfig cfg = quiet_config();
  cfg.motion_deviation = 4;
  RoiGate gate(cfg, &server);
  // Uniform pan (pure ego motion) + one deviating macroblock.
  RoiMetadata m = quiet_meta();
  for (auto& mv : m.mvs) mv = {10, -6};
  m.mvs[static_cast<std::size_t>(2) * m.mb_cols + 3] = {30, -6};
  const GatePlan p = gate.plan(&m, kW, kH);
  ASSERT_TRUE(p.gated);
  EXPECT_TRUE(tile_at(p, 3, 2));
  // The pan itself lights nothing — median-MV compensation absorbs it.
  EXPECT_FALSE(tile_at(p, 0, 0));
  EXPECT_FALSE(tile_at(p, p.tile_cols - 1, p.tile_rows - 1));
}

TEST(RoiGatePlan, CoverageThresholdForcesFullFrame) {
  edge::EdgeServer server({}, 1);
  RoiGateConfig cfg = quiet_config();
  cfg.motion_deviation = 1;
  cfg.max_coverage = 0.5;
  RoiGate gate(cfg, &server);
  // Every MB deviates wildly: post-plan coverage 1.0 >= threshold.
  RoiMetadata m = quiet_meta();
  util::Rng rng(5);
  for (auto& mv : m.mvs) mv = {rng.uniform_int(-40, 40), rng.uniform_int(-40, 40)};
  const GatePlan p = gate.plan(&m, kW, kH);
  EXPECT_FALSE(p.gated);
  EXPECT_EQ(p.work, 1.0);
  EXPECT_EQ(p.pixel_fraction, 1.0);
}

TEST(RoiGateRun, FullFramePlanSeedsHeldBoxes) {
  codec::Encoder enc({.width = kW, .height = kH});
  video::Frame frame(kW, kH);
  for (int y = 40; y < 60; ++y)
    for (int x = 30; x < 70; ++x) {
      frame.u.at(x / 2, y / 2) = 168;
      frame.v.at(x / 2, y / 2) = 120;
    }
  const auto encoded = enc.encode(frame, 8);
  edge::EdgeServer server({}, 1);
  RoiGate gate(quiet_config(), &server);
  const GatePlan full = gate.plan(nullptr, kW, kH);
  const GatedDetections out = gate.run(encoded.data, nullptr, full);
  EXPECT_FALSE(out.gated);
  EXPECT_EQ(out.pixel_fraction, 1.0);
  ASSERT_GE(out.fresh, 1);
  EXPECT_EQ(gate.held().size(), out.detections.size());
  EXPECT_EQ(gate.stats().full, 1);
  EXPECT_EQ(gate.stats().gated, 0);
}

TEST(RoiGateProcess, MatchesEdgeServerOnFullFramePlans) {
  // process() with no metadata must be byte-for-byte EdgeServer::process:
  // same detections, same latency, same jitter stream position.
  codec::Encoder enc_a({.width = kW, .height = kH});
  codec::Encoder enc_b({.width = kW, .height = kH});
  edge::ServerConfig sc;
  sc.inference_jitter_ms = 3.0;
  edge::EdgeServer plain(sc, 9);
  edge::EdgeServer wrapped(sc, 9);
  RoiGate gate(quiet_config(), &wrapped);
  util::Rng rng(3);
  video::Frame frame(kW, kH);
  for (auto& px : frame.y.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  for (std::uint64_t k = 0; k < 4; ++k) {
    const auto bytes_a = enc_a.encode(frame, 20).data;
    const auto bytes_b = enc_b.encode(frame, 20).data;
    ASSERT_EQ(bytes_a, bytes_b);
    const auto want = plain.process(bytes_a, util::from_millis(10.0 * k));
    GatePlan used;
    const auto got =
        gate.process(bytes_b, nullptr, util::from_millis(10.0 * k), &used);
    EXPECT_FALSE(used.gated);
    EXPECT_EQ(got.result_at_agent, want.result_at_agent) << "frame " << k;
    EXPECT_EQ(got.detections.size(), want.detections.size());
    EXPECT_EQ(wrapped.frames_processed(), plain.frames_processed());
  }
}

}  // namespace
}  // namespace dive::roi
